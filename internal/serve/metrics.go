package serve

import (
	"context"
	"encoding/json"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"topmine/internal/obs"
)

// metrics holds the serve-path instruments that accumulate state of
// their own: request/latency series keyed by the registered endpoint
// pattern (a small fixed set, so the vecs stay tiny) and the panic
// counter. Everything else on /metrics — cache, batch slots, per-model
// registry state — is not stored here at all: those collectors read
// their owners live at scrape time, which keeps a single source of
// truth and makes the series impossible to leave stale. The instruments
// come from internal/obs (extracted from this file) and are assembled
// into an exposition registry by buildMetricsRegistry.
type metrics struct {
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	panics   *obs.Counter
	start    time.Time
}

// latencyBuckets spans sub-millisecond cache hits up to multi-second
// heavy batched inference.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newMetrics() *metrics {
	return &metrics{
		requests: obs.NewCounterVec("topmined_requests_total",
			"Requests served, by endpoint and status code.", "endpoint", "code"),
		latency: obs.NewHistogramVec("topmined_request_duration_seconds",
			"Request latency by endpoint.", latencyBuckets[:], "endpoint"),
		panics: obs.NewCounter("topmined_panics_total",
			"Handler panics recovered into 500 responses."),
		start: time.Now(),
	}
}

// observe records one finished request. Three-digit status codes sort
// the same lexically as numerically, so the vec's sorted exposition
// matches the old (endpoint, numeric code) ordering byte for byte.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.requests.Inc(endpoint, strconv.Itoa(code))
	m.latency.Observe(seconds, endpoint)
}

// statusWriter captures the response code and byte count for
// instrumentation, and tracks whether anything has been written so the
// panic-recovery path knows whether a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	// An implicit WriteHeader(200) happens on first Write; record it so
	// the recovery path never writes headers onto a started response.
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying writer's http.Flusher so
// wrapping a handler for instrumentation does not silently disable
// streaming (net/http sniffs the writer for the interface; an opaque
// wrapper would hide it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqTimings is the per-request latency breakdown handlers fill in:
// model resolution, inference/segmentation compute (or coalesced wait),
// and response marshalling. instrument creates one per request and
// hands it to the handler via the request context.
type reqTimings struct {
	model   string
	resolve time.Duration
	infer   time.Duration
	marshal time.Duration
	// text and iters are the warm-replay fields: the single document a
	// /v1/infer or /v1/segment request computed over and the effective
	// (clamped) iteration count behind its cache key. Handlers set them
	// only for warmable requests — batch infers, listings, and health
	// checks leave them empty, and WarmFromLog ignores those lines.
	text  string
	iters int
}

type timingsCtxKey struct{}

// timingsFrom returns the request's breakdown slot; callers outside an
// instrumented request (tests driving handlers directly) get a discard
// slot so handlers never nil-check.
func timingsFrom(ctx context.Context) *reqTimings {
	if tm, ok := ctx.Value(timingsCtxKey{}).(*reqTimings); ok {
		return tm
	}
	return &reqTimings{}
}

// accessRecord is one structured request-log line. Text and Iters make
// the log replayable through WarmFromLog: a cache key is
// (model, gen, op, iters, text), so a record without the text could
// never warm anything. Request logging is opt-in precisely because the
// log therefore contains request payloads.
type accessRecord struct {
	Time      string  `json:"time"`
	Method    string  `json:"method"`
	Endpoint  string  `json:"endpoint"`
	Model     string  `json:"model,omitempty"`
	Text      string  `json:"text,omitempty"`
	Iters     int     `json:"iters,omitempty"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	Ms        float64 `json:"ms"`
	ResolveMs float64 `json:"resolve_ms"`
	InferMs   float64 `json:"infer_ms"`
	MarshalMs float64 `json:"marshal_ms"`
	Panic     bool    `json:"panic,omitempty"`
}

func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// logRequest emits one JSON line to Options.RequestLog. The marshal
// happens outside the mutex; only the write is serialised.
func (s *Server) logRequest(r *http.Request, endpoint string, sw *statusWriter, tm *reqTimings, total time.Duration, panicked bool) {
	if s.opt.RequestLog == nil {
		return
	}
	rec := accessRecord{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Method:    r.Method,
		Endpoint:  endpoint,
		Model:     tm.model,
		Text:      tm.text,
		Iters:     tm.iters,
		Status:    sw.code,
		Bytes:     sw.bytes,
		Ms:        ms(total),
		ResolveMs: ms(tm.resolve),
		InferMs:   ms(tm.infer),
		MarshalMs: ms(tm.marshal),
		Panic:     panicked,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.logMu.Lock()
	s.opt.RequestLog.Write(b)
	s.logMu.Unlock()
}

// instrument wraps a handler so every request is counted and timed
// under the given endpoint label, optionally logged, and — critically —
// recovered if it panics: without the recover here, a panicking handler
// (including inferBatch's deliberate worker re-panic) would unwind past
// the metrics observation and leave the client with a bare connection
// reset. Recovery responds with the standard JSON 500 shape when
// nothing has been written yet (if the response already started, the
// connection is poisoned and all that remains is accounting), records
// the request in metrics like any other, and logs the stack.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		tm := &reqTimings{}
		r = r.WithContext(context.WithValue(r.Context(), timingsCtxKey{}, tm))
		panicked := false
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				s.met.panics.Add(1)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal server error")
				}
				log.Printf("serve: panic in %s handler: %v\n%s", endpoint, p, debug.Stack())
			}
			s.inflight.Add(-1)
			total := time.Since(start)
			s.met.observe(endpoint, sw.code, total.Seconds())
			s.logRequest(r, endpoint, sw, tm, total, panicked)
		}()
		h(sw, r)
	}
}

// buildMetricsRegistry assembles every serve-path series into one
// obs.Registry in the exact family order (and with the exact series
// names) the pre-extraction hand-rolled writer emitted, so scrapes
// stay byte-compatible across the refactor. Called once at
// construction, after the owners the live collectors read (cache,
// flights, batch slots, model registry) exist.
func (s *Server) buildMetricsRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Register(
		s.met.requests,
		s.met.latency,
		// Cache effectiveness, read live from the LRU — one stats()
		// snapshot feeds all six families so they stay mutually
		// consistent within a scrape.
		obs.CollectorFunc(s.collectCache),
		// Batch fan-out occupancy, read live from the slot pool.
		obs.CollectorFunc(func(w *obs.Writer) {
			w.Family("topmined_batch_slots_in_use", "gauge", "Batch fan-out worker slots currently claimed.")
			w.Sample("topmined_batch_slots_in_use", nil, obs.Int(int64(cap(s.batchSlots)-len(s.batchSlots))))
			w.Family("topmined_batch_slots_capacity", "gauge", "Total batch fan-out worker slots.")
			w.Sample("topmined_batch_slots_capacity", nil, obs.Int(int64(cap(s.batchSlots))))
		}),
		// Coalescing and robustness, read live from their owners.
		obs.CounterFunc("topmined_coalesced_total",
			"Requests served a shared in-flight computation instead of running their own.",
			s.coalesced.Load),
		obs.GaugeFunc("topmined_inflight_requests",
			"Requests currently being handled.",
			func() obs.Value { return obs.Int(s.inflight.Load()) }),
		obs.GaugeFunc("topmined_inflight_computations",
			"Distinct coalesced computations currently running.",
			func() obs.Value { return obs.Int(int64(s.flights.active())) }),
		s.met.panics,
		// Per-model load/reload state, read live from the registry.
		obs.CollectorFunc(s.collectModels),
		obs.GaugeFunc("topmined_uptime_seconds",
			"Seconds since the server was constructed.",
			func() obs.Value { return obs.Float(time.Since(s.met.start).Seconds()) }),
	)
	return reg
}

func (s *Server) collectCache(w *obs.Writer) {
	cs := s.cache.stats()
	w.Family("topmined_cache_hits_total", "counter", "Response cache hits.")
	w.Sample("topmined_cache_hits_total", nil, obs.Uint(cs.Hits))
	w.Family("topmined_cache_misses_total", "counter", "Response cache misses.")
	w.Sample("topmined_cache_misses_total", nil, obs.Uint(cs.Misses))
	w.Family("topmined_cache_evictions_total", "counter", "Response cache LRU evictions.")
	w.Sample("topmined_cache_evictions_total", nil, obs.Uint(cs.Evictions))
	w.Family("topmined_cache_entries", "gauge", "Cached responses currently held.")
	w.Sample("topmined_cache_entries", nil, obs.Int(int64(cs.Entries)))
	w.Family("topmined_cache_bytes", "gauge", "Bytes of cached responses currently held.")
	w.Sample("topmined_cache_bytes", nil, obs.Int(cs.Bytes))
	w.Family("topmined_cache_max_bytes", "gauge", "Response cache byte budget (0 when disabled).")
	w.Sample("topmined_cache_max_bytes", nil, obs.Int(cs.MaxBytes))
}

func (s *Server) collectModels(w *obs.Writer) {
	names := s.reg.Names()
	w.Family("topmined_model_ready", "gauge", "Whether the model currently holds a servable snapshot.")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		ready := int64(0)
		if e.Ready() {
			ready = 1
		}
		w.Sample("topmined_model_ready", []obs.Label{{Name: "model", Value: n}}, obs.Int(ready))
	}
	w.Family("topmined_model_generation", "gauge", "Model content generation; changes on every successful reload.")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		w.Sample("topmined_model_generation", []obs.Label{{Name: "model", Value: n}}, obs.Uint(e.Generation()))
	}
	w.Family("topmined_model_reloads_total", "counter", "Successful hot reloads per model.")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		w.Sample("topmined_model_reloads_total", []obs.Label{{Name: "model", Value: n}}, obs.Uint(e.Reloads()))
	}
	w.Family("topmined_model_loaded_timestamp_seconds", "gauge", "Unix time of the model's last successful (re)load.")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		w.Sample("topmined_model_loaded_timestamp_seconds", []obs.Label{{Name: "model", Value: n}},
			obs.Float(float64(e.LoadedAt().UnixNano())/1e9))
	}
	// Every registered model gets a sample even while unready (0
	// topics): dropping the series during a failed load leaves gaps
	// that break dashboards and rate() queries exactly when the model
	// needs watching most.
	w.Family("topmined_model_topics", "gauge", "Topic count per model (0 = mining-only or unready; segment may work but infer does not).")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		topics := 0
		if inf := e.Inferencer(); inf != nil {
			topics = inf.Stats().Topics
		}
		w.Sample("topmined_model_topics", []obs.Label{{Name: "model", Value: n}}, obs.Int(int64(topics)))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metricsReg.WriteText(w)
}
