package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// metrics instruments the serve path with stdlib-only counters and
// histograms rendered in the Prometheus text exposition format
// (version 0.0.4). Request/latency series are keyed by the registered
// endpoint pattern (a small fixed set), so the maps stay tiny; one
// mutex guards them — an increment is nanoseconds against the
// milliseconds of an inference request, so contention is irrelevant.
// Cache, batch-slot, and per-model series are not stored here at all:
// they are read live from their owners at scrape time, which keeps a
// single source of truth and makes them impossible to leave stale.
type metrics struct {
	mu       sync.Mutex
	requests map[requestKey]uint64
	latency  map[string]*histogram
	start    time.Time
	// panics counts handler panics recovered by instrument; lock-free
	// because the increment happens on the recovery path, outside the
	// map-guarding critical section.
	panics atomic.Uint64
}

type requestKey struct {
	endpoint string
	code     int
}

// histogram is a fixed-bucket cumulative latency histogram in seconds.
type histogram struct {
	counts [len(latencyBuckets) + 1]uint64 // +1 for +Inf
	sum    float64
	count  uint64
}

// latencyBuckets spans sub-millisecond cache hits up to multi-second
// heavy batched inference.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[requestKey]uint64),
		latency:  make(map[string]*histogram),
		start:    time.Now(),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{endpoint, code}]++
	h := m.latency[endpoint]
	if h == nil {
		h = &histogram{}
		m.latency[endpoint] = h
	}
	i := sort.SearchFloat64s(latencyBuckets[:], seconds)
	h.counts[i]++
	h.sum += seconds
	h.count++
}

// statusWriter captures the response code and byte count for
// instrumentation, and tracks whether anything has been written so the
// panic-recovery path knows whether a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	// An implicit WriteHeader(200) happens on first Write; record it so
	// the recovery path never writes headers onto a started response.
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying writer's http.Flusher so
// wrapping a handler for instrumentation does not silently disable
// streaming (net/http sniffs the writer for the interface; an opaque
// wrapper would hide it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqTimings is the per-request latency breakdown handlers fill in:
// model resolution, inference/segmentation compute (or coalesced wait),
// and response marshalling. instrument creates one per request and
// hands it to the handler via the request context.
type reqTimings struct {
	model   string
	resolve time.Duration
	infer   time.Duration
	marshal time.Duration
	// text and iters are the warm-replay fields: the single document a
	// /v1/infer or /v1/segment request computed over and the effective
	// (clamped) iteration count behind its cache key. Handlers set them
	// only for warmable requests — batch infers, listings, and health
	// checks leave them empty, and WarmFromLog ignores those lines.
	text  string
	iters int
}

type timingsCtxKey struct{}

// timingsFrom returns the request's breakdown slot; callers outside an
// instrumented request (tests driving handlers directly) get a discard
// slot so handlers never nil-check.
func timingsFrom(ctx context.Context) *reqTimings {
	if tm, ok := ctx.Value(timingsCtxKey{}).(*reqTimings); ok {
		return tm
	}
	return &reqTimings{}
}

// accessRecord is one structured request-log line. Text and Iters make
// the log replayable through WarmFromLog: a cache key is
// (model, gen, op, iters, text), so a record without the text could
// never warm anything. Request logging is opt-in precisely because the
// log therefore contains request payloads.
type accessRecord struct {
	Time      string  `json:"time"`
	Method    string  `json:"method"`
	Endpoint  string  `json:"endpoint"`
	Model     string  `json:"model,omitempty"`
	Text      string  `json:"text,omitempty"`
	Iters     int     `json:"iters,omitempty"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	Ms        float64 `json:"ms"`
	ResolveMs float64 `json:"resolve_ms"`
	InferMs   float64 `json:"infer_ms"`
	MarshalMs float64 `json:"marshal_ms"`
	Panic     bool    `json:"panic,omitempty"`
}

func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// logRequest emits one JSON line to Options.RequestLog. The marshal
// happens outside the mutex; only the write is serialised.
func (s *Server) logRequest(r *http.Request, endpoint string, sw *statusWriter, tm *reqTimings, total time.Duration, panicked bool) {
	if s.opt.RequestLog == nil {
		return
	}
	rec := accessRecord{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Method:    r.Method,
		Endpoint:  endpoint,
		Model:     tm.model,
		Text:      tm.text,
		Iters:     tm.iters,
		Status:    sw.code,
		Bytes:     sw.bytes,
		Ms:        ms(total),
		ResolveMs: ms(tm.resolve),
		InferMs:   ms(tm.infer),
		MarshalMs: ms(tm.marshal),
		Panic:     panicked,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.logMu.Lock()
	s.opt.RequestLog.Write(b)
	s.logMu.Unlock()
}

// instrument wraps a handler so every request is counted and timed
// under the given endpoint label, optionally logged, and — critically —
// recovered if it panics: without the recover here, a panicking handler
// (including inferBatch's deliberate worker re-panic) would unwind past
// the metrics observation and leave the client with a bare connection
// reset. Recovery responds with the standard JSON 500 shape when
// nothing has been written yet (if the response already started, the
// connection is poisoned and all that remains is accounting), records
// the request in metrics like any other, and logs the stack.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		tm := &reqTimings{}
		r = r.WithContext(context.WithValue(r.Context(), timingsCtxKey{}, tm))
		panicked := false
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				s.met.panics.Add(1)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal server error")
				}
				log.Printf("serve: panic in %s handler: %v\n%s", endpoint, p, debug.Stack())
			}
			s.inflight.Add(-1)
			total := time.Since(start)
			s.met.observe(endpoint, sw.code, total.Seconds())
			s.logRequest(r, endpoint, sw, tm, total, panicked)
		}()
		h(sw, r)
	}
}

func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePrometheus renders every serve-path series into an in-memory
// buffer and writes it out in one shot: the metrics mutex is shared
// with every request's observe() call, so it must never be held while
// blocked on a scraper's connection. Map iteration is sorted so
// scrapes are deterministic (and diffable in tests).
func (s *Server) writePrometheus(out io.Writer) {
	var buf bytes.Buffer
	w := &buf
	m := s.met
	m.mu.Lock()
	reqKeys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	sort.Strings(latKeys)

	fmt.Fprintf(w, "# HELP topmined_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE topmined_requests_total counter\n")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "topmined_requests_total{endpoint=%q,code=\"%d\"} %d\n",
			k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP topmined_request_duration_seconds Request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE topmined_request_duration_seconds histogram\n")
	for _, ep := range latKeys {
		h := m.latency[ep]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "topmined_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, fmtFloat(ub), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "topmined_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "topmined_request_duration_seconds_sum{endpoint=%q} %s\n", ep, fmtFloat(h.sum))
		fmt.Fprintf(w, "topmined_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}
	uptime := time.Since(m.start).Seconds()
	m.mu.Unlock()

	// Cache effectiveness, read live from the LRU.
	cs := s.cache.stats()
	fmt.Fprintf(w, "# HELP topmined_cache_hits_total Response cache hits.\n# TYPE topmined_cache_hits_total counter\n")
	fmt.Fprintf(w, "topmined_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP topmined_cache_misses_total Response cache misses.\n# TYPE topmined_cache_misses_total counter\n")
	fmt.Fprintf(w, "topmined_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP topmined_cache_evictions_total Response cache LRU evictions.\n# TYPE topmined_cache_evictions_total counter\n")
	fmt.Fprintf(w, "topmined_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# HELP topmined_cache_entries Cached responses currently held.\n# TYPE topmined_cache_entries gauge\n")
	fmt.Fprintf(w, "topmined_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP topmined_cache_bytes Bytes of cached responses currently held.\n# TYPE topmined_cache_bytes gauge\n")
	fmt.Fprintf(w, "topmined_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "# HELP topmined_cache_max_bytes Response cache byte budget (0 when disabled).\n# TYPE topmined_cache_max_bytes gauge\n")
	fmt.Fprintf(w, "topmined_cache_max_bytes %d\n", cs.MaxBytes)

	// Batch fan-out occupancy, read live from the slot pool.
	fmt.Fprintf(w, "# HELP topmined_batch_slots_in_use Batch fan-out worker slots currently claimed.\n# TYPE topmined_batch_slots_in_use gauge\n")
	fmt.Fprintf(w, "topmined_batch_slots_in_use %d\n", cap(s.batchSlots)-len(s.batchSlots))
	fmt.Fprintf(w, "# HELP topmined_batch_slots_capacity Total batch fan-out worker slots.\n# TYPE topmined_batch_slots_capacity gauge\n")
	fmt.Fprintf(w, "topmined_batch_slots_capacity %d\n", cap(s.batchSlots))

	// Coalescing and robustness, read live from their owners.
	fmt.Fprintf(w, "# HELP topmined_coalesced_total Requests served a shared in-flight computation instead of running their own.\n# TYPE topmined_coalesced_total counter\n")
	fmt.Fprintf(w, "topmined_coalesced_total %d\n", s.coalesced.Load())
	fmt.Fprintf(w, "# HELP topmined_inflight_requests Requests currently being handled.\n# TYPE topmined_inflight_requests gauge\n")
	fmt.Fprintf(w, "topmined_inflight_requests %d\n", s.inflight.Load())
	fmt.Fprintf(w, "# HELP topmined_inflight_computations Distinct coalesced computations currently running.\n# TYPE topmined_inflight_computations gauge\n")
	fmt.Fprintf(w, "topmined_inflight_computations %d\n", s.flights.active())
	fmt.Fprintf(w, "# HELP topmined_panics_total Handler panics recovered into 500 responses.\n# TYPE topmined_panics_total counter\n")
	fmt.Fprintf(w, "topmined_panics_total %d\n", s.met.panics.Load())

	// Per-model load/reload state, read live from the registry.
	names := s.reg.Names()
	fmt.Fprintf(w, "# HELP topmined_model_ready Whether the model currently holds a servable snapshot.\n# TYPE topmined_model_ready gauge\n")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		ready := 0
		if e.Ready() {
			ready = 1
		}
		fmt.Fprintf(w, "topmined_model_ready{model=%q} %d\n", n, ready)
	}
	fmt.Fprintf(w, "# HELP topmined_model_generation Model content generation; changes on every successful reload.\n# TYPE topmined_model_generation gauge\n")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		fmt.Fprintf(w, "topmined_model_generation{model=%q} %d\n", n, e.Generation())
	}
	fmt.Fprintf(w, "# HELP topmined_model_reloads_total Successful hot reloads per model.\n# TYPE topmined_model_reloads_total counter\n")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		fmt.Fprintf(w, "topmined_model_reloads_total{model=%q} %d\n", n, e.Reloads())
	}
	fmt.Fprintf(w, "# HELP topmined_model_loaded_timestamp_seconds Unix time of the model's last successful (re)load.\n# TYPE topmined_model_loaded_timestamp_seconds gauge\n")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		fmt.Fprintf(w, "topmined_model_loaded_timestamp_seconds{model=%q} %s\n",
			n, fmtFloat(float64(e.LoadedAt().UnixNano())/1e9))
	}
	// Every registered model gets a sample even while unready (0
	// topics): dropping the series during a failed load leaves gaps
	// that break dashboards and rate() queries exactly when the model
	// needs watching most.
	fmt.Fprintf(w, "# HELP topmined_model_topics Topic count per model (0 = mining-only or unready; segment may work but infer does not).\n# TYPE topmined_model_topics gauge\n")
	for _, n := range names {
		e, _ := s.reg.Lookup(n)
		topics := 0
		if inf := e.Inferencer(); inf != nil {
			topics = inf.Stats().Topics
		}
		fmt.Fprintf(w, "topmined_model_topics{model=%q} %d\n", n, topics)
	}

	fmt.Fprintf(w, "# HELP topmined_uptime_seconds Seconds since the server was constructed.\n# TYPE topmined_uptime_seconds gauge\n")
	fmt.Fprintf(w, "topmined_uptime_seconds %s\n", fmtFloat(uptime))

	out.Write(buf.Bytes())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writePrometheus(w)
}
