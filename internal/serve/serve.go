// Package serve exposes a trained ToPMine pipeline over HTTP: topic
// inference, phrase segmentation, and topic listing against a loaded
// snapshot. The handlers hold no mutable state beyond the shared
// Inferencer (which is safe for concurrent use), so one Server can
// take arbitrarily many concurrent requests.
//
// Endpoints (all JSON):
//
//	POST /v1/infer    {"text": "...", "iters": 50}      one document
//	POST /v1/infer    {"texts": ["...", ...]}           batched documents
//	POST /v1/segment  {"text": "..."}                   phrase partition
//	GET  /v1/topics                                     trained topic summaries
//	GET  /healthz                                       liveness probe
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"topmine"
)

// Options configures request handling limits.
type Options struct {
	// MaxBodyBytes caps request body size; larger bodies get 413.
	// 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of texts in one batched /v1/infer call;
	// 0 means 256.
	MaxBatch int
	// DefaultIters is the Gibbs sweep count used when a request omits
	// or zeroes "iters"; 0 means 50.
	DefaultIters int
	// MaxIters caps per-request sweeps so a single request cannot
	// monopolise a core; 0 means 500.
	MaxIters int
}

func (o *Options) fill() {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.DefaultIters <= 0 {
		o.DefaultIters = 50
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	// An operator-raised default must never be silently clamped back.
	if o.MaxIters < o.DefaultIters {
		o.MaxIters = o.DefaultIters
	}
}

// Server routes serving-API requests to an Inferencer. It implements
// http.Handler.
type Server struct {
	inf *topmine.Inferencer
	opt Options
	mux *http.ServeMux
	// batchSlots is a server-wide token pool bounding the extra
	// goroutines all concurrent batch requests may spawn combined, so
	// overlapping batches cannot oversubscribe the CPUs and starve
	// single-document or health requests.
	batchSlots chan struct{}
}

// New builds a Server around a ready Inferencer.
func New(inf *topmine.Inferencer, opt Options) *Server {
	opt.fill()
	s := &Server{inf: inf, opt: opt, mux: http.NewServeMux()}
	s.batchSlots = make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < cap(s.batchSlots); i++ {
		s.batchSlots <- struct{}{}
	}
	s.mux.HandleFunc("/v1/infer", s.handleInfer)
	s.mux.HandleFunc("/v1/segment", s.handleSegment)
	s.mux.HandleFunc("/v1/topics", s.handleTopics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP dispatches to the registered endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// inferRequest accepts either a single text or a batch; exactly one of
// Text/Texts must be set.
type inferRequest struct {
	Text  *string  `json:"text,omitempty"`
	Texts []string `json:"texts,omitempty"`
	Iters int      `json:"iters,omitempty"`
}

// inferResult is the inference output for one document.
type inferResult struct {
	Topics []float64 `json:"topics"`
	Best   int       `json:"best"`
}

type inferResponse struct {
	Result  *inferResult  `json:"result,omitempty"`
	Results []inferResult `json:"results,omitempty"`
}

type segmentRequest struct {
	Text string `json:"text"`
}

type segmentResponse struct {
	Segments [][]string `json:"segments"`
}

type topicPhrase struct {
	Display string `json:"display"`
	TF      int    `json:"tf"`
}

type topicSummary struct {
	Topic    int           `json:"topic"`
	Unigrams []string      `json:"unigrams"`
	Phrases  []topicPhrase `json:"phrases"`
}

type topicsResponse struct {
	NumTopics int            `json:"num_topics"`
	Topics    []topicSummary `json:"topics"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON marshals v with status code. Encoding a fully materialised
// response value cannot fail, so errors here are ignored beyond the
// best-effort write.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses the size-limited JSON body into dst, translating
// oversized bodies to 413 and malformed JSON to 400. It returns false
// after writing the error response.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON body: %v", err)
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	return true
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if s.inf.NumTopics() == 0 {
		// A mining-only Inferencer (no trained model) supports
		// /v1/segment but not inference.
		writeError(w, http.StatusServiceUnavailable, "no trained topic model loaded")
		return
	}
	var req inferRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	iters := req.Iters
	if iters <= 0 {
		iters = s.opt.DefaultIters
	}
	if iters > s.opt.MaxIters {
		iters = s.opt.MaxIters
	}
	switch {
	case req.Text != nil && req.Texts != nil:
		writeError(w, http.StatusBadRequest, `provide "text" or "texts", not both`)
	case req.Text != nil:
		res := s.infer(*req.Text, iters)
		writeJSON(w, http.StatusOK, inferResponse{Result: &res})
	case req.Texts != nil:
		if len(req.Texts) == 0 {
			writeError(w, http.StatusBadRequest, `"texts" must not be empty`)
			return
		}
		if len(req.Texts) > s.opt.MaxBatch {
			writeError(w, http.StatusBadRequest,
				"batch of %d exceeds limit %d", len(req.Texts), s.opt.MaxBatch)
			return
		}
		writeJSON(w, http.StatusOK, inferResponse{Results: s.inferBatch(req.Texts, iters)})
	default:
		writeError(w, http.StatusBadRequest, `provide "text" or "texts"`)
	}
}

func (s *Server) infer(text string, iters int) inferResult {
	theta := s.inf.InferTopics(text, iters)
	return inferResult{Topics: theta, Best: topmine.BestTopic(theta)}
}

// inferBatch fans a batch out across the CPUs — the Inferencer is
// safe for concurrent use and each text's result is deterministic
// regardless of scheduling, so batch output matches the equivalent
// sequence of single-document requests. Extra workers are drawn from
// the server-wide slot pool: an idle server gives one batch near-
// linear speedup, while overlapping batches share the same bounded
// pool instead of multiplying goroutines. The request's own goroutine
// always participates, so progress never depends on slot availability.
func (s *Server) inferBatch(texts []string, iters int) []inferResult {
	results := make([]inferResult, len(texts))
	var next atomic.Int64
	// A panic on a spawned worker would crash the whole process (only
	// the request goroutine enjoys net/http's per-connection recovery),
	// so workers capture it and the request goroutine re-panics —
	// giving a batched request the same blast radius as a single one.
	// The value is boxed in a one-field struct pointer: atomic.Value
	// itself panics on stores of inconsistently typed values, which two
	// workers panicking with different types would otherwise trigger.
	type panicBox struct{ v any }
	var panicked atomic.Value
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(texts) {
				return
			}
			results[i] = s.infer(texts[i], iters)
		}
	}
	var wg sync.WaitGroup
	for extra := 0; extra < len(texts)-1; extra++ {
		select {
		case <-s.batchSlots:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { s.batchSlots <- struct{}{} }()
				defer func() {
					if p := recover(); p != nil {
						panicked.Store(&panicBox{p})
					}
				}()
				work()
			}()
			continue
		default:
		}
		break // pool exhausted: remaining items run on this goroutine
	}
	work()
	wg.Wait()
	if p, ok := panicked.Load().(*panicBox); ok {
		panic(p.v)
	}
	return results
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req segmentRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	segs := s.inf.Segment(req.Text)
	if segs == nil {
		segs = [][]string{}
	}
	writeJSON(w, http.StatusOK, segmentResponse{Segments: segs})
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := topicsResponse{NumTopics: s.inf.NumTopics(), Topics: []topicSummary{}}
	for _, t := range s.inf.Topics() {
		sum := topicSummary{Topic: t.Topic, Unigrams: t.Unigrams, Phrases: []topicPhrase{}}
		if sum.Unigrams == nil {
			sum.Unigrams = []string{}
		}
		for _, p := range t.Phrases {
			sum.Phrases = append(sum.Phrases, topicPhrase{Display: p.Display, TF: p.TF})
		}
		resp.Topics = append(resp.Topics, sum)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
