// Package serve exposes trained ToPMine pipelines over HTTP: topic
// inference, phrase segmentation, and topic listing against one or
// more loaded snapshots. A Server routes requests through a model
// Registry (any number of named models, each hot-reloadable with zero
// dropped requests), answers repeated requests from an exact response
// cache (inference is deterministic per input text, so cached answers
// are not approximations), and exports Prometheus metrics. The
// handlers hold no per-request mutable state beyond what they load
// atomically, so one Server takes arbitrarily many concurrent
// requests.
//
// Endpoints (JSON unless noted):
//
//	POST /v1/infer                    {"text": "...", "iters": 50, "model": "name"?}
//	POST /v1/infer                    {"texts": ["...", ...]}        batched documents
//	POST /v1/segment                  {"text": "...", "model": "name"?}
//	GET  /v1/topics[?model=name]      trained topic summaries
//	GET  /v1/models                   registered models and their stats
//	POST /v1/models/{name}/reload     atomic hot reload from the model's source
//	GET  /healthz                     liveness probe
//	GET  /readyz                      per-model readiness
//	GET  /metrics                     Prometheus text exposition
//
// The "model" field/parameter is optional everywhere; omitting it
// routes to the registry's default model, which preserves the
// single-model API of earlier versions.
package serve

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"topmine"
	"topmine/internal/obs"
)

// Options configures request handling limits.
type Options struct {
	// MaxBodyBytes caps request body size; larger bodies get 413.
	// 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of texts in one batched /v1/infer call;
	// 0 means 256.
	MaxBatch int
	// DefaultIters is the sampling sweep count used when a request
	// omits or zeroes "iters"; 0 means 50. Note one inference runs an
	// equal burn-in first, so a request costs 2×iters total sweeps
	// (see topicmodel.Model.InferTheta's burn-in contract).
	DefaultIters int
	// MaxIters caps the TOTAL Gibbs sweeps (burn-in + sampling) one
	// request may cost, so a single request cannot monopolise a core;
	// 0 means 1000 (i.e. up to 500 requested sampling sweeps). A
	// request asking for more is clamped to MaxIters/2 sampling
	// sweeps. Earlier versions compared the cap against the requested
	// sampling sweeps alone and therefore allowed double the work.
	MaxIters int
	// CacheBytes bounds the exact response cache; 0 means 32 MiB,
	// negative disables caching.
	CacheBytes int64
	// AdminToken, when non-empty, is required (as
	// "Authorization: Bearer <token>") on admin endpoints — currently
	// POST /v1/models/{name}/reload. Reloads are expensive (full
	// snapshot re-read) and each generation bump strands the model's
	// cached responses (unreachable until LRU churn evicts them), so
	// on a port exposed to untrusted clients the endpoint must not be
	// free to call. Empty leaves the endpoint open (suitable only
	// behind a trusted network boundary).
	AdminToken string
	// RequestLog, when non-nil, receives one JSON line per finished
	// request: timestamp, method, endpoint, model, status, response
	// bytes, total latency, and the per-phase breakdown (resolve vs.
	// infer vs. marshal) that tells an operator whether a slow request
	// spent its time looking up the model, running Gibbs sweeps, or
	// serialising the answer. Writes are serialised by the Server, so
	// any io.Writer works; /metrics requests are not logged.
	RequestLog io.Writer
}

func (o *Options) fill() {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.DefaultIters <= 0 {
		o.DefaultIters = 50
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 1000
	}
	// An operator-raised default must never be silently clamped back:
	// a DefaultIters of n costs 2n total sweeps, so the cap must admit
	// that much.
	if o.MaxIters < 2*o.DefaultIters {
		o.MaxIters = 2 * o.DefaultIters
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 32 << 20
	}
}

// clampIters converts a request's sampling-sweep ask into the served
// count under the total-sweep budget. The comparison divides the cap
// rather than doubling the request: iters is attacker-controlled and
// 2*iters overflows for huge values, which would skip the clamp
// entirely.
func (o *Options) clampIters(iters int) int {
	if iters <= 0 {
		iters = o.DefaultIters
	}
	if iters > o.MaxIters/2 {
		iters = o.MaxIters / 2
	}
	if iters < 1 {
		iters = 1
	}
	return iters
}

// Server routes serving-API requests across a model registry. It
// implements http.Handler.
type Server struct {
	reg   *Registry
	opt   Options
	mux   *http.ServeMux
	cache *respCache
	met   *metrics
	// metricsReg is the assembled exposition registry behind /metrics;
	// see buildMetricsRegistry for the series and their ordering.
	metricsReg *obs.Registry
	// batchSlots is a server-wide token pool bounding the extra
	// goroutines all concurrent batch requests may spawn combined, so
	// overlapping batches cannot oversubscribe the CPUs and starve
	// single-document or health requests.
	batchSlots chan struct{}
	// flights coalesces concurrent identical cache misses: N requests
	// for the same (model, gen, kind, iters, text) key run one
	// computation and share its bytes (see coalesce.go).
	flights *flightGroup
	// coalesced counts requests that received a shared in-flight
	// result instead of computing their own (topmined_coalesced_total).
	coalesced atomic.Uint64
	// inflight tracks requests currently inside an instrumented
	// handler (topmined_inflight_requests).
	inflight atomic.Int64
	// logMu serialises RequestLog writes so concurrent requests never
	// interleave bytes within one JSON line.
	logMu sync.Mutex
	// infer performs one document inference against a model
	// publication. It defaults to the snapshot's Inferencer and exists
	// as a seam so tests can count, gate, or fail computations without
	// training instrumented pipelines.
	infer func(st *modelState, text string, iters int) ([]float64, int)
}

// New builds a single-model Server around a ready Inferencer,
// registered under the name "default" — the compatibility constructor
// for callers that never deal with multiple models.
func New(inf *topmine.Inferencer, opt Options) *Server {
	reg := NewRegistry()
	if err := reg.AddInferencer("default", inf); err != nil {
		// Only a nil Inferencer can fail here; that is a programming
		// error on the caller's side, same as it always was.
		panic(err)
	}
	return NewWithRegistry(reg, opt)
}

// NewWithRegistry builds a Server over an already-populated registry.
// Models may still be reloaded afterwards; adding models after
// construction is supported too (the registry is referenced, not
// copied).
func NewWithRegistry(reg *Registry, opt Options) *Server {
	opt.fill()
	s := &Server{
		reg:     reg,
		opt:     opt,
		mux:     http.NewServeMux(),
		cache:   newRespCache(opt.CacheBytes),
		met:     newMetrics(),
		flights: newFlightGroup(),
	}
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		return st.inf.InferTopicsTokens(text, iters)
	}
	s.batchSlots = make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < cap(s.batchSlots); i++ {
		s.batchSlots <- struct{}{}
	}
	s.metricsReg = s.buildMetricsRegistry()
	s.mux.HandleFunc("/v1/infer", s.instrument("/v1/infer", s.handleInfer))
	s.mux.HandleFunc("/v1/segment", s.instrument("/v1/segment", s.handleSegment))
	s.mux.HandleFunc("/v1/topics", s.instrument("/v1/topics", s.handleTopics))
	s.mux.HandleFunc("/v1/models", s.instrument("/v1/models", s.handleModels))
	s.mux.HandleFunc("/v1/models/{name}/reload", s.instrument("/v1/models/reload", s.handleReload))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	s.mux.HandleFunc("/readyz", s.instrument("/readyz", s.handleReady))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Registry returns the server's model registry (for signal-driven
// reloads and startup registration by the daemon).
func (s *Server) Registry() *Registry { return s.reg }

// ServeHTTP dispatches to the registered endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// inferRequest accepts either a single text or a batch; exactly one of
// Text/Texts must be set. Model is optional ("" = default model).
type inferRequest struct {
	Text  *string  `json:"text,omitempty"`
	Texts []string `json:"texts,omitempty"`
	Iters int      `json:"iters,omitempty"`
	Model string   `json:"model,omitempty"`
}

// inferResult is the inference output for one document. Tokens is the
// number of in-vocabulary tokens the text mapped to: when it is 0
// (empty or fully out-of-vocabulary input) the mixture is the bare
// prior and Best carries no signal — clients must treat it as "no
// answer", not as a confident topic.
type inferResult struct {
	Topics []float64 `json:"topics"`
	Best   int       `json:"best"`
	Tokens int       `json:"tokens"`
}

// inferResponse carries pre-marshalled per-document results so cached
// and freshly computed documents assemble into byte-identical
// responses.
type inferResponse struct {
	Result  json.RawMessage   `json:"result,omitempty"`
	Results []json.RawMessage `json:"results,omitempty"`
}

type segmentRequest struct {
	Text  string `json:"text"`
	Model string `json:"model,omitempty"`
}

type segmentResponse struct {
	Segments [][]string `json:"segments"`
}

type topicPhrase struct {
	Display string `json:"display"`
	TF      int    `json:"tf"`
}

type topicSummary struct {
	Topic    int           `json:"topic"`
	Unigrams []string      `json:"unigrams"`
	Phrases  []topicPhrase `json:"phrases"`
}

type topicsResponse struct {
	Model     string         `json:"model"`
	NumTopics int            `json:"num_topics"`
	Topics    []topicSummary `json:"topics"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON marshals v with status code. Encoding a fully materialised
// response value cannot fail, so errors here are ignored beyond the
// best-effort write.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeRawJSON writes an already-marshalled JSON body (the cache-hit
// path), appending the same trailing newline json.Encoder emits so
// hits and misses are byte-identical on the wire.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte{'\n'})
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses the size-limited JSON body into dst, translating
// oversized bodies to 413 and malformed JSON to 400. It returns false
// after writing the error response.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON body: %v", err)
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	return true
}

// requireGet also admits HEAD: a resource supporting GET should
// support HEAD (RFC 9110), load balancers commonly probe /healthz
// with it, and net/http discards the body of HEAD responses itself.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return false
	}
	return true
}

// resolveModel routes a request's model name through the registry,
// writing the 404/503 itself on failure. The returned state is one
// (Inferencer, generation) publication loaded exactly once — callers
// must use it for the whole request so a concurrent hot reload cannot
// switch models (or cache keying) mid-request.
func (s *Server) resolveModel(w http.ResponseWriter, name string) (*ModelEntry, *modelState, bool) {
	entry, ok := s.reg.Lookup(name)
	if !ok {
		if name == "" {
			writeError(w, http.StatusServiceUnavailable, "no models loaded")
		} else {
			writeError(w, http.StatusNotFound, "unknown model %q", name)
		}
		return nil, nil, false
	}
	st := entry.snapshot()
	if st == nil || st.inf == nil {
		writeError(w, http.StatusServiceUnavailable, "model %q is not loaded", entry.Name())
		return nil, nil, false
	}
	return entry, st, true
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req inferRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	tm := timingsFrom(r.Context())
	t := time.Now()
	entry, st, ok := s.resolveModel(w, req.Model)
	tm.resolve = time.Since(t)
	if !ok {
		return
	}
	tm.model = entry.Name()
	if st.inf.NumTopics() == 0 {
		// A mining-only model (no trained topic model) supports
		// /v1/segment but not inference.
		writeError(w, http.StatusServiceUnavailable,
			"model %q has no trained topic model", entry.Name())
		return
	}
	iters := s.opt.clampIters(req.Iters)
	switch {
	case req.Text != nil && req.Texts != nil:
		writeError(w, http.StatusBadRequest, `provide "text" or "texts", not both`)
	case req.Text != nil:
		tm.text, tm.iters = *req.Text, iters
		t = time.Now()
		raw := s.inferDoc(entry, st, *req.Text, iters)
		tm.infer = time.Since(t)
		t = time.Now()
		writeJSON(w, http.StatusOK, inferResponse{Result: raw})
		tm.marshal = time.Since(t)
	case req.Texts != nil:
		if len(req.Texts) == 0 {
			writeError(w, http.StatusBadRequest, `"texts" must not be empty`)
			return
		}
		if len(req.Texts) > s.opt.MaxBatch {
			writeError(w, http.StatusBadRequest,
				"batch of %d exceeds limit %d", len(req.Texts), s.opt.MaxBatch)
			return
		}
		t = time.Now()
		raws := s.inferBatch(entry, st, req.Texts, iters)
		tm.infer = time.Since(t)
		t = time.Now()
		writeJSON(w, http.StatusOK, inferResponse{Results: raws})
		tm.marshal = time.Since(t)
	default:
		writeError(w, http.StatusBadRequest, `provide "text" or "texts"`)
	}
}

// inferDoc answers one document, through the exact response cache:
// the cache key pins the model content by (name, generation) from the
// request's single state snapshot — computing with st.inf and keying
// with st.gen can never mix two loads — and the cached value is the
// marshalled result JSON, so a hit is byte-for-byte the response a
// fresh computation would produce.
//
// Misses run through the flight group: concurrent identical misses —
// across requests or between items of one batch — share a single
// computation, so a stampede of N requests for one cold key costs one
// Gibbs inference, not N. Determinism makes the shared bytes exact.
func (s *Server) inferDoc(entry *ModelEntry, st *modelState, text string, iters int) json.RawMessage {
	key := cacheKey{model: entry.Name(), gen: st.gen, kind: kindInfer, iters: iters, text: text}
	if b, ok := s.cache.get(key); ok {
		return b
	}
	b, shared := s.flights.do(key, func() []byte {
		theta, tokens := s.infer(st, text, iters)
		b, err := json.Marshal(inferResult{Topics: theta, Best: topmine.BestTopic(theta), Tokens: tokens})
		if err != nil {
			// Marshalling a plain struct of floats/ints cannot fail.
			panic(err)
		}
		s.cache.put(key, b)
		return b
	})
	if shared {
		s.coalesced.Add(1)
	}
	return b
}

// inferBatch fans a batch out across the CPUs — the Inferencer is
// safe for concurrent use and each text's result is deterministic
// regardless of scheduling, so batch output matches the equivalent
// sequence of single-document requests (and shares cache entries with
// them). Extra workers are drawn from the server-wide slot pool: an
// idle server gives one batch near-linear speedup, while overlapping
// batches share the same bounded pool instead of multiplying
// goroutines. The request's own goroutine always participates, so
// progress never depends on slot availability.
func (s *Server) inferBatch(entry *ModelEntry, st *modelState, texts []string, iters int) []json.RawMessage {
	results := make([]json.RawMessage, len(texts))
	var next atomic.Int64
	// A panic on a spawned worker would crash the whole process (only
	// the request goroutine enjoys net/http's per-connection recovery),
	// so workers capture it and the request goroutine re-panics —
	// giving a batched request the same blast radius as a single one.
	// The value is boxed in a one-field struct pointer: atomic.Value
	// itself panics on stores of inconsistently typed values, which two
	// workers panicking with different types would otherwise trigger.
	type panicBox struct{ v any }
	var panicked atomic.Value
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(texts) {
				return
			}
			results[i] = s.inferDoc(entry, st, texts[i], iters)
		}
	}
	var wg sync.WaitGroup
	for extra := 0; extra < len(texts)-1; extra++ {
		select {
		case <-s.batchSlots:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { s.batchSlots <- struct{}{} }()
				defer func() {
					if p := recover(); p != nil {
						panicked.Store(&panicBox{p})
					}
				}()
				work()
			}()
			continue
		default:
		}
		break // pool exhausted: remaining items run on this goroutine
	}
	work()
	wg.Wait()
	if p, ok := panicked.Load().(*panicBox); ok {
		panic(p.v)
	}
	return results
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req segmentRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	tm := timingsFrom(r.Context())
	t := time.Now()
	entry, st, ok := s.resolveModel(w, req.Model)
	tm.resolve = time.Since(t)
	if !ok {
		return
	}
	tm.model = entry.Name()
	tm.text = req.Text
	t = time.Now()
	b := s.segmentDoc(entry, st, req.Text)
	tm.infer = time.Since(t)
	t = time.Now()
	writeRawJSON(w, http.StatusOK, b)
	tm.marshal = time.Since(t)
}

// segmentDoc answers one segmentation through the cache and flight
// group, mirroring inferDoc (shared with WarmFromLog).
func (s *Server) segmentDoc(entry *ModelEntry, st *modelState, text string) json.RawMessage {
	key := cacheKey{model: entry.Name(), gen: st.gen, kind: kindSegment, text: text}
	if b, ok := s.cache.get(key); ok {
		return b
	}
	b, shared := s.flights.do(key, func() []byte {
		segs := st.inf.Segment(text)
		if segs == nil {
			segs = [][]string{}
		}
		b, err := json.Marshal(segmentResponse{Segments: segs})
		if err != nil {
			panic(err)
		}
		s.cache.put(key, b)
		return b
	})
	if shared {
		s.coalesced.Add(1)
	}
	return b
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	entry, st, ok := s.resolveModel(w, r.URL.Query().Get("model"))
	if !ok {
		return
	}
	resp := topicsResponse{
		Model:     entry.Name(),
		NumTopics: st.inf.NumTopics(),
		Topics:    []topicSummary{},
	}
	for _, t := range st.inf.Topics() {
		sum := topicSummary{Topic: t.Topic, Unigrams: t.Unigrams, Phrases: []topicPhrase{}}
		if sum.Unigrams == nil {
			sum.Unigrams = []string{}
		}
		for _, p := range t.Phrases {
			sum.Phrases = append(sum.Phrases, topicPhrase{Display: p.Display, TF: p.TF})
		}
		resp.Topics = append(resp.Topics, sum)
	}
	writeJSON(w, http.StatusOK, resp)
}

// modelInfo is one registry entry's public description.
type modelInfo struct {
	Name       string `json:"name"`
	Default    bool   `json:"default"`
	Path       string `json:"path,omitempty"`
	Ready      bool   `json:"ready"`
	Reloadable bool   `json:"reloadable"`
	Generation uint64 `json:"generation"`
	Reloads    uint64 `json:"reloads"`
	LoadedAt   string `json:"loaded_at"`
	// Topics is 0 for mining-only models: /v1/segment works, /v1/infer
	// answers 503.
	Topics    int    `json:"topics"`
	VocabSize int    `json:"vocab_size"`
	Phrases   int    `json:"phrases"`
	Seed      uint64 `json:"seed"`
}

type modelsResponse struct {
	Default string      `json:"default"`
	Models  []modelInfo `json:"models"`
}

func (s *Server) describeModel(e *ModelEntry) modelInfo {
	st := e.snapshot()
	info := modelInfo{
		Name:       e.Name(),
		Default:    e.Name() == s.reg.DefaultName(),
		Path:       e.Path(),
		Ready:      st != nil && st.inf != nil,
		Reloadable: e.loader != nil,
		Reloads:    e.Reloads(),
		LoadedAt:   e.LoadedAt().UTC().Format(time.RFC3339Nano),
	}
	if st != nil {
		info.Generation = st.gen
		if st.inf != nil {
			stats := st.inf.Stats()
			info.Topics = stats.Topics
			info.VocabSize = stats.VocabSize
			info.Phrases = stats.Phrases
			info.Seed = stats.Seed
		}
	}
	return info
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	resp := modelsResponse{Default: s.reg.DefaultName(), Models: []modelInfo{}}
	for _, name := range s.reg.Names() {
		e, ok := s.reg.Lookup(name)
		if !ok {
			continue
		}
		resp.Models = append(resp.Models, s.describeModel(e))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if s.opt.AdminToken != "" {
		// Compare SHA-256 digests in constant time: a plain string
		// compare leaks a byte-by-byte timing oracle, and hashing first
		// also masks the token length.
		got := sha256.Sum256([]byte(r.Header.Get("Authorization")))
		want := sha256.Sum256([]byte("Bearer " + s.opt.AdminToken))
		if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="topmined admin"`)
			writeError(w, http.StatusUnauthorized, "admin token required")
			return
		}
	}
	name := r.PathValue("name")
	e, ok := s.reg.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	if e.loader == nil {
		writeError(w, http.StatusConflict,
			"model %q was registered in-memory and has no reloadable source", e.Name())
		return
	}
	if err := s.reg.Reload(e.Name()); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.describeModel(e))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyResponse reports per-model readiness; Ready is the conjunction,
// and the HTTP status mirrors it (200 / 503) so load balancers can use
// /readyz without parsing the body.
type readyResponse struct {
	Ready  bool            `json:"ready"`
	Models map[string]bool `json:"models"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	resp := readyResponse{Ready: true, Models: map[string]bool{}}
	for _, name := range s.reg.Names() {
		e, ok := s.reg.Lookup(name)
		if !ok {
			continue
		}
		ready := e.Ready()
		resp.Models[name] = ready
		resp.Ready = resp.Ready && ready
	}
	if s.reg.Len() == 0 {
		resp.Ready = false
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
