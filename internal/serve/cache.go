package serve

import (
	"runtime"

	"topmine/internal/lru"
)

// The response cache is exact, not approximate: inference is fully
// deterministic (the Inferencer seeds a per-call RNG from the pipeline
// seed and a hash of the input text — see topmine.Inferencer), so for
// a fixed model content the response to a given (text, iters) request
// is a pure function of the key. Model content is pinned by the
// (name, generation) pair from the registry: a hot reload bumps the
// generation, so cached responses for the old model can never be
// served against the new one. Cached values are the final marshalled
// JSON bytes, which makes a hit byte-for-byte identical to the miss
// that populated it.

type cacheKind uint8

const (
	kindInfer cacheKind = iota
	kindSegment
)

// cacheKey identifies one deterministic response: which model content
// (name + generation), which operation, and its inputs. Segment
// lookups use iters=0 — segmentation has no iteration parameter.
type cacheKey struct {
	model string
	gen   uint64
	kind  cacheKind
	iters int
	text  string
}

// respCache wraps the generic sharded LRU with the serve-path key and
// a nil-receiver-safe API so a disabled cache costs one branch.
type respCache struct {
	lru *lru.Cache[cacheKey, []byte]
	// maxEntry caps one entry's charge at the per-shard budget:
	// lru.Put keeps an over-budget entry alone in its shard, so
	// without this bound N shards could each retain one huge entry
	// and the cache would exceed the operator's byte budget by up to
	// shards × largest-entry. Oversized responses just go uncached.
	maxEntry int
}

// entrySize is the byte charge of one cached response; the key's text
// is charged too, since for short responses it dominates retained
// memory.
func entrySize(k cacheKey, v []byte) int {
	return len(k.text) + len(k.model) + len(v) + 64
}

// newRespCache builds a cache bounded to maxBytes; maxBytes <= 0
// disables caching entirely (returns nil, and nil methods no-op).
func newRespCache(maxBytes int64) *respCache {
	if maxBytes <= 0 {
		return nil
	}
	// One shard per CPU, with a floor so small machines still spread
	// contention across a few locks.
	shards := runtime.GOMAXPROCS(0)
	if shards < 4 {
		shards = 4
	}
	return &respCache{
		lru:      lru.New(maxBytes, shards, entrySize),
		maxEntry: int(maxBytes / int64(shards)),
	}
}

func (c *respCache) get(k cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	return c.lru.Get(k)
}

func (c *respCache) put(k cacheKey, v []byte) {
	if c == nil || entrySize(k, v) > c.maxEntry {
		return
	}
	c.lru.Put(k, v)
}

// stats returns cache counters for /metrics; the zero Stats for a
// disabled cache keeps the metric series present (and flat).
func (c *respCache) stats() lru.Stats {
	if c == nil {
		return lru.Stats{}
	}
	return c.lru.Stats()
}
