package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topmine"
)

// post issues one request without test assertions, safe to call from
// spawned goroutines (testing.T.Fatal must not be).
func post(s *Server, path, body string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalesceExactlyOneInference is the stampede pin: N concurrent
// identical cache misses must run exactly one inference, and every
// response must be byte-identical to the answer an uncoalesced request
// would compute. The instrumented inferencer is gated so the test
// deterministically holds all N requests in one flight before releasing
// the single leader.
func TestCoalesceExactlyOneInference(t *testing.T) {
	s := newTestServer(t, Options{})
	var calls atomic.Int32
	gate := make(chan struct{})
	theta := []float64{0.55, 0.25, 0.15, 0.05}
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		calls.Add(1)
		<-gate
		return theta, 3
	}

	const n = 8
	body := `{"text": "stampede of identical requests", "iters": 7}`
	responses := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(s, "/v1/infer", body)
			codes[i], responses[i] = w.Code, w.Body.Bytes()
		}(i)
	}

	key := cacheKey{model: "default", gen: 1, kind: kindInfer, iters: 7, text: "stampede of identical requests"}
	waitFor(t, "all requests to join one flight", func() bool { return s.flights.waiting(key) == n-1 })
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical misses ran %d inferences, want exactly 1", n, got)
	}
	raw, err := json.Marshal(inferResult{Topics: theta, Best: topmine.BestTopic(theta), Tokens: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"result":` + string(raw) + "}\n"
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], responses[i])
		}
		if string(responses[i]) != want {
			t.Fatalf("request %d differs from the uncoalesced answer:\ngot  %s\nwant %s", i, responses[i], want)
		}
	}
	if got := s.coalesced.Load(); got != n-1 {
		t.Fatalf("coalesced counter = %d, want %d", got, n-1)
	}
	if st := s.cache.stats(); st.Misses != uint64(n) || st.Hits != 0 {
		// Every request checked the cache before the flight and missed;
		// none may have been answered from a cache hit.
		t.Fatalf("cache stats = %+v, want %d misses 0 hits", st, n)
	}
	// The flight's result populated the cache: one more request is a
	// pure hit, no new inference.
	if w := post(s, "/v1/infer", body); w.Code != http.StatusOK || w.Body.String() != want {
		t.Fatalf("post-flight request = %d %s", w.Code, w.Body.String())
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("cache hit after the flight still ran inference (calls=%d)", got)
	}
}

// TestCoalesceWithinBatch: duplicate texts inside one batched request
// share a computation too — the batch workers call the same coalesced
// path concurrently.
func TestCoalesceWithinBatch(t *testing.T) {
	s := newTestServer(t, Options{})
	var calls atomic.Int32
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		calls.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the overlap window
		return []float64{1, 0, 0, 0}, 2
	}
	body := `{"texts": ["same text", "same text", "same text", "same text"], "iters": 3}`
	w := post(s, "/v1/infer", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", w.Code, w.Body.String())
	}
	var resp testInferResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("batch returned %d results", len(resp.Results))
	}
	for i := 1; i < 4; i++ {
		if fmt.Sprint(resp.Results[i]) != fmt.Sprint(resp.Results[0]) {
			t.Fatalf("duplicate batch items disagree: %+v", resp.Results)
		}
	}
	// The first item computes and caches; later duplicates either
	// coalesced onto its flight or hit the cache it populated. Either
	// way the inference ran at most... exactly once after the first
	// completes; concurrent overlap can only reduce the count to 1.
	if got := calls.Load(); got != 1 {
		t.Fatalf("4 identical batch items ran %d inferences, want 1", got)
	}
}

// TestCoalescePanicSharedAcrossWaiters: a panicking computation must
// turn into a clean 500 for the leader AND every coalesced waiter —
// never a hang or a half-shared result.
func TestCoalescePanicSharedAcrossWaiters(t *testing.T) {
	s := newTestServer(t, Options{})
	gate := make(chan struct{})
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		<-gate
		panic("inference exploded")
	}
	const n = 3
	body := `{"text": "poisoned key", "iters": 9}`
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(s, "/v1/infer", body)
			codes[i], bodies[i] = w.Code, w.Body.Bytes()
		}(i)
	}
	key := cacheKey{model: "default", gen: 1, kind: kindInfer, iters: 9, text: "poisoned key"}
	waitFor(t, "waiters on the poisoned flight", func() bool { return s.flights.waiting(key) == n-1 })
	close(gate)
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500 (%s)", i, codes[i], bodies[i])
		}
		var e errorResponse
		if err := json.Unmarshal(bodies[i], &e); err != nil || e.Error == "" {
			t.Fatalf("request %d: 500 body is not the standard error shape: %s", i, bodies[i])
		}
	}
	if got := s.met.panics.Value(); got != n {
		t.Fatalf("panics_total = %d, want %d (each request recovers its own copy)", got, n)
	}
	// The poisoned flight must be gone so the key can recover.
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		return []float64{0.25, 0.25, 0.25, 0.25}, 1
	}
	if w := post(s, "/v1/infer", body); w.Code != http.StatusOK {
		t.Fatalf("key did not recover after poisoned flight: %d %s", w.Code, w.Body.String())
	}
}

// TestCoalesceOldGenerationStaysOld is the hot-reload pin: a
// computation in flight when the model reloads completes against — and
// caches under — the OLD generation's key; a new request for the same
// text resolves the new generation and must recompute, never read the
// old flight's result.
func TestCoalesceOldGenerationStaysOld(t *testing.T) {
	testFixtures(t)
	reg := NewRegistry()
	if err := reg.Add("m", "", func() (*topmine.Inferencer, error) { return testInf, nil }); err != nil {
		t.Fatal(err)
	}
	s := NewWithRegistry(reg, Options{})
	var calls atomic.Int32
	gate := make(chan struct{})
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		calls.Add(1)
		<-gate
		return []float64{0.5, 0.3, 0.1, 0.1}, 2
	}

	body := `{"text": "reload straddler", "iters": 4, "model": "m"}`
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- post(s, "/v1/infer", body) }()
	waitFor(t, "the gen-1 flight to start", func() bool { return s.flights.active() == 1 })

	if err := reg.Reload("m"); err != nil {
		t.Fatal(err)
	}
	close(gate)
	w1 := <-done
	if w1.Code != http.StatusOK {
		t.Fatalf("straddling request = %d: %s", w1.Code, w1.Body.String())
	}

	// Same text against the (now gen-2) model: the gen-1 cached result
	// must be invisible — a fresh inference runs.
	w2 := post(s, "/v1/infer", body)
	if w2.Code != http.StatusOK {
		t.Fatalf("post-reload request = %d: %s", w2.Code, w2.Body.String())
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("post-reload request reused the old generation's result (calls=%d, want 2)", got)
	}
	if st := s.cache.stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("cache stats = %+v, want 2 misses 0 hits (distinct generation keys)", st)
	}
}

// TestCoalesceHotReloadRace hammers one hot text from many goroutines
// while the model reloads continuously; under -race this is the
// coalescing counterpart of TestHotReloadUnderLoad. Every response must
// be a well-formed 200 from one generation or another.
func TestCoalesceHotReloadRace(t *testing.T) {
	testFixtures(t)
	var flips atomic.Uint64
	reg := NewRegistry()
	err := reg.Add("live", "", func() (*topmine.Inferencer, error) {
		if flips.Add(1)%2 == 0 {
			return testInf2, nil
		}
		return testInf, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithRegistry(reg, Options{})

	const workers, requests, reloads = 8, 15, 10
	var wg sync.WaitGroup
	errs := make(chan string, workers*requests)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				// One shared hot text maximises coalescing pressure.
				w := post(s, "/v1/infer", `{"text": "database systems hot key", "iters": 8}`)
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("goroutine %d: status %d: %s", g, w.Code, w.Body.String())
					return
				}
				var resp testInferResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Result == nil {
					errs <- fmt.Sprintf("goroutine %d: bad body %q", g, w.Body.String())
					return
				}
				if k := len(resp.Result.Topics); k != testK && k != testK2 {
					errs <- fmt.Sprintf("goroutine %d: %d topics matches neither model", g, k)
					return
				}
			}
		}(g)
	}
	for i := 0; i < reloads; i++ {
		if err := reg.Reload("live"); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestSegmentCoalesces: the segment path shares the flight machinery.
func TestSegmentCoalesces(t *testing.T) {
	s := newTestServer(t, Options{})
	// No seam exists for Segment, so drive real concurrency and assert
	// only the invariant that must hold either way: identical bytes and
	// exactly one cache entry for N concurrent identical requests.
	const n = 6
	body := `{"text": "support vector machines classify documents"}`
	responses := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i] = post(s, "/v1/segment", body).Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("concurrent segment responses diverge:\n%s\n%s", responses[0], responses[i])
		}
	}
	if st := s.cache.stats(); st.Entries != 1 {
		t.Fatalf("cache holds %d entries for one distinct request", st.Entries)
	}
}
