package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// warmEntry is one access-log line in its structured form. The plain
// form — a bare line of text — is shorthand for {"text": line}.
type warmEntry struct {
	Text  string `json:"text"`
	Model string `json:"model,omitempty"`
	Iters int    `json:"iters,omitempty"`
	// Op selects the operation: "infer" (default) or "segment".
	Op string `json:"op,omitempty"`
}

// WarmStats summarises one WarmFromLog pass.
type WarmStats struct {
	// Lines is how many non-empty log lines were read.
	Lines int
	// Warmed counts computations performed (a fresh inference or
	// segmentation whose response is now cached).
	Warmed int
	// Hits counts lines whose response was already cached — duplicate
	// log lines after the first, or entries warm across overlapping
	// logs.
	Hits int
	// Skipped counts lines that could not be warmed (unknown model,
	// unready model, unknown op, inference against a mining-only
	// model); each is reported in Errors up to a small cap.
	Skipped int
	// Ignored counts valid JSON records that are not warmable requests
	// and carry no text to warm — health checks, metrics scrapes,
	// listings, and batch-infer records in a -request-log stream. They
	// are expected in any real access log and are not errors.
	Ignored int
	// Errors carries the first few skip reasons for operator logs.
	Errors []string
}

// maxWarmErrors caps how many skip reasons WarmStats retains: warming
// is best-effort, and a mis-rotated log must not balloon memory.
const maxWarmErrors = 10

// WarmFromLog replays a newline-delimited access log through the
// inference and segmentation paths so their responses are cached before
// real traffic arrives — a cold cache otherwise pays one full Gibbs
// inference per distinct hot text exactly when the fleet is least
// warmed up (startup, post-deploy). Each line is either a bare text
// (inferred on the default model at the default iteration count) or a
// JSON object {"text": ..., "model": ..., "iters": ..., "op":
// "infer"|"segment"}. cmd/topmined's -request-log output is accepted
// directly: lines carrying an "endpoint" field are mapped onto the
// matching op.
//
// Warming is strictly best-effort: malformed or unservable lines are
// counted and skipped, never fatal. The replay shares the response
// cache and flight group with live traffic, so warming concurrently
// with serving is safe and never duplicates in-flight work.
func (s *Server) WarmFromLog(r io.Reader) (WarmStats, error) {
	var st WarmStats
	sc := bufio.NewScanner(r)
	// A request-log line wraps the text in JSON (escaping can double
	// it) plus the record's other fields: allow twice the body cap.
	sc.Buffer(make([]byte, 64<<10), 2*int(s.opt.MaxBodyBytes)+(64<<10))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		st.Lines++
		entry := parseWarmLine(line)
		if entry == nil {
			st.Ignored++
			continue
		}
		if err := s.warmOne(entry); err != nil {
			st.Skipped++
			if len(st.Errors) < maxWarmErrors {
				st.Errors = append(st.Errors, err.Error())
			}
			continue
		}
		if entry.hit {
			st.Hits++
		} else {
			st.Warmed++
		}
	}
	return st, sc.Err()
}

// parsedWarm is a warmEntry plus the outcome flag warmOne fills in.
type parsedWarm struct {
	warmEntry
	hit bool
}

// parseWarmLine decodes one log line. A line that fails to decode as
// JSON is treated as plain text — a warming pass must make the most of
// whatever log it is given. A line that IS valid JSON but carries no
// text returns nil (ignored): request logs interleave health checks,
// scrapes, and batch records with warmable requests, and replaying
// those as literal document text would fill the cache with garbage.
func parseWarmLine(line string) *parsedWarm {
	e := &parsedWarm{}
	if strings.HasPrefix(line, "{") {
		var raw struct {
			warmEntry
			Endpoint string `json:"endpoint"`
		}
		if err := json.Unmarshal([]byte(line), &raw); err == nil {
			if raw.Text == "" {
				return nil
			}
			e.warmEntry = raw.warmEntry
			if e.Op == "" && strings.HasSuffix(raw.Endpoint, "/segment") {
				e.Op = "segment"
			}
			return e
		}
	}
	e.Text = line
	return e
}

// warmOne performs one entry's computation through the same cached,
// coalesced paths live requests use. It records in e.hit whether the
// response was already cached.
func (s *Server) warmOne(e *parsedWarm) error {
	entry, ok := s.reg.Lookup(e.Model)
	if !ok {
		return fmt.Errorf("unknown model %q", e.Model)
	}
	st := entry.snapshot()
	if st == nil || st.inf == nil {
		return fmt.Errorf("model %q is not loaded", entry.Name())
	}
	switch e.Op {
	case "", "infer":
		if st.inf.NumTopics() == 0 {
			return fmt.Errorf("model %q has no trained topic model", entry.Name())
		}
		iters := s.opt.clampIters(e.Iters)
		key := cacheKey{model: entry.Name(), gen: st.gen, kind: kindInfer, iters: iters, text: e.Text}
		if _, ok := s.cache.get(key); ok {
			e.hit = true
			return nil
		}
		s.inferDoc(entry, st, e.Text, iters)
	case "segment":
		key := cacheKey{model: entry.Name(), gen: st.gen, kind: kindSegment, text: e.Text}
		if _, ok := s.cache.get(key); ok {
			e.hit = true
			return nil
		}
		s.segmentDoc(entry, st, e.Text)
	default:
		return fmt.Errorf("unknown op %q", e.Op)
	}
	return nil
}
