package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"topmine"
)

var (
	testInfOnce sync.Once
	testInf     *topmine.Inferencer
	testK       int
)

// testInferencer trains one small pipeline, round-trips it through the
// snapshot format (the production serving path), and shares the
// resulting Inferencer across tests.
func testInferencer(t *testing.T) *topmine.Inferencer {
	t.Helper()
	testInfOnce.Do(func() {
		docs, err := topmine.GenerateExampleCorpus("20conf", 400, 11)
		if err != nil {
			t.Fatal(err)
		}
		opt := topmine.DefaultOptions()
		opt.Topics = 4
		opt.Iterations = 50
		opt.SigThreshold = 4
		opt.Seed = 42
		opt.Workers = 1
		res, err := topmine.Run(docs, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := topmine.SaveSnapshot(&buf, res); err != nil {
			t.Fatal(err)
		}
		loaded, err := topmine.LoadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		inf, err := loaded.Inferencer()
		if err != nil {
			t.Fatal(err)
		}
		testInf, testK = inf, opt.Topics
	})
	if testInf == nil {
		t.Fatal("test inferencer failed to build")
	}
	return testInf
}

func newTestServer(t *testing.T, opt Options) *Server {
	return New(testInferencer(t), opt)
}

// do issues one in-process request and decodes the JSON response.
func do(t *testing.T, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: invalid JSON response %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp map[string]string
	w := do(t, s, http.MethodGet, "/healthz", "", &resp)
	if w.Code != http.StatusOK || resp["status"] != "ok" {
		t.Fatalf("healthz = %d %q", w.Code, w.Body.String())
	}
}

func TestTopicsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp topicsResponse
	w := do(t, s, http.MethodGet, "/v1/topics", "", &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("topics status = %d: %s", w.Code, w.Body.String())
	}
	if resp.NumTopics != testK {
		t.Fatalf("num_topics = %d, want %d", resp.NumTopics, testK)
	}
	if len(resp.Topics) != testK {
		t.Fatalf("topics list length = %d, want %d", len(resp.Topics), testK)
	}
	nonEmpty := 0
	for _, tp := range resp.Topics {
		if len(tp.Unigrams) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every topic summary is empty")
	}
	if w := do(t, s, http.MethodPost, "/v1/topics", "{}", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/topics = %d, want 405", w.Code)
	}
}

func TestInferSingle(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp inferResponse
	w := do(t, s, http.MethodPost, "/v1/infer",
		`{"text": "support vector machines for text classification", "iters": 20}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("infer status = %d: %s", w.Code, w.Body.String())
	}
	if resp.Result == nil || resp.Results != nil {
		t.Fatalf("want single result, got %+v", resp)
	}
	if len(resp.Result.Topics) != testK {
		t.Fatalf("theta length = %d, want %d", len(resp.Result.Topics), testK)
	}
	var sum float64
	for _, v := range resp.Result.Topics {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %v", sum)
	}
	if resp.Result.Best < 0 || resp.Result.Best >= testK {
		t.Fatalf("best topic %d out of range", resp.Result.Best)
	}
}

func TestInferBatchMatchesSingle(t *testing.T) {
	s := newTestServer(t, Options{})
	texts := []string{
		"support vector machines for text classification",
		"query processing in database systems",
		"zzzzz out of vocabulary",
	}
	body, _ := json.Marshal(map[string]any{"texts": texts, "iters": 15})
	var batch inferResponse
	w := do(t, s, http.MethodPost, "/v1/infer", string(body), &batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", w.Code, w.Body.String())
	}
	if batch.Result != nil || len(batch.Results) != len(texts) {
		t.Fatalf("want %d batch results, got %+v", len(texts), batch)
	}
	for i, text := range texts {
		single, _ := json.Marshal(map[string]any{"text": text, "iters": 15})
		var one inferResponse
		do(t, s, http.MethodPost, "/v1/infer", string(single), &one)
		for k := range one.Result.Topics {
			if one.Result.Topics[k] != batch.Results[i].Topics[k] {
				t.Fatalf("text %d: batch and single inference disagree at topic %d", i, k)
			}
		}
	}
}

func TestInferErrors(t *testing.T) {
	s := newTestServer(t, Options{MaxBatch: 2})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"text": `, http.StatusBadRequest},
		{"unknown field", `{"document": "x"}`, http.StatusBadRequest},
		{"neither text nor texts", `{}`, http.StatusBadRequest},
		{"both text and texts", `{"text": "a", "texts": ["b"]}`, http.StatusBadRequest},
		{"empty batch", `{"texts": []}`, http.StatusBadRequest},
		{"oversized batch", `{"texts": ["a", "b", "c"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp errorResponse
			w := do(t, s, http.MethodPost, "/v1/infer", tc.body, &resp)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d (%s)", w.Code, tc.want, w.Body.String())
			}
			if resp.Error == "" {
				t.Fatal("error response has no message")
			}
		})
	}
	if w := do(t, s, http.MethodGet, "/v1/infer", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/infer = %d, want 405", w.Code)
	}
}

func TestInferOversizedBody(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 64})
	body := `{"text": "` + strings.Repeat("padding ", 64) + `"}`
	var resp errorResponse
	w := do(t, s, http.MethodPost, "/v1/infer", body, &resp)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", w.Code, w.Body.String())
	}
	if resp.Error == "" {
		t.Fatal("413 response has no message")
	}
}

func TestSegmentEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp segmentResponse
	w := do(t, s, http.MethodPost, "/v1/segment",
		`{"text": "support vector machines classify documents, query processing in database systems"}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("segment status = %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Segments) == 0 {
		t.Fatal("no segments returned for in-vocabulary text")
	}
	multi := false
	for _, seg := range resp.Segments {
		for _, p := range seg {
			if strings.Contains(p, " ") {
				multi = true
			}
		}
	}
	if !multi {
		t.Fatalf("no multi-word phrase in %v", resp.Segments)
	}

	// All-OOV text yields an empty (but present, non-null) list.
	var empty segmentResponse
	do(t, s, http.MethodPost, "/v1/segment", `{"text": "zzzzz qqqqq"}`, &empty)
	if empty.Segments == nil || len(empty.Segments) != 0 {
		t.Fatalf("OOV text segments = %#v, want []", empty.Segments)
	}

	if w := do(t, s, http.MethodPost, "/v1/segment", `not json`, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed segment body = %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/v1/segment", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/segment = %d, want 405", w.Code)
	}
}

// TestModelLessServerRejectsInfer serves a mining-only pipeline (no
// trained topic model): /v1/segment must work, /v1/infer must return
// 503 instead of panicking the connection.
func TestModelLessServerRejectsInfer(t *testing.T) {
	docs, err := topmine.GenerateExampleCorpus("20conf", 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	opt := topmine.DefaultOptions()
	opt.Topics = 3
	c := topmine.BuildCorpus(docs, topmine.DefaultCorpusOptions())
	res := &topmine.Result{Corpus: c, Mined: topmine.MinePhrases(c, opt), Options: opt}
	inf, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	s := New(inf, Options{})

	var resp errorResponse
	w := do(t, s, http.MethodPost, "/v1/infer", `{"text": "support vector machines"}`, &resp)
	if w.Code != http.StatusServiceUnavailable || resp.Error == "" {
		t.Fatalf("model-less infer = %d %q, want 503 with message", w.Code, w.Body.String())
	}
	var seg segmentResponse
	if w := do(t, s, http.MethodPost, "/v1/segment", `{"text": "support vector machines"}`, &seg); w.Code != http.StatusOK || len(seg.Segments) == 0 {
		t.Fatalf("model-less segment = %d %v", w.Code, seg.Segments)
	}
}

// TestInferBatchParallelPathDeterministic forces the batched fan-out
// onto its multi-worker branch (dead code on single-CPU machines
// otherwise) and checks the results still match serial single-doc
// inference exactly; under -race this also exercises the workers'
// shared access to the results slice and Inferencer.
func TestInferBatchParallelPathDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	s := newTestServer(t, Options{})
	texts := make([]string, 16)
	for i := range texts {
		texts[i] = fmt.Sprintf("support vector machines batch item %d", i)
	}
	got := s.inferBatch(texts, 10)
	if len(got) != len(texts) {
		t.Fatalf("batch returned %d results for %d texts", len(got), len(texts))
	}
	for i, text := range texts {
		want := s.infer(text, 10)
		for k := range want.Topics {
			if got[i].Topics[k] != want.Topics[k] {
				t.Fatalf("text %d topic %d: parallel batch %v, serial %v", i, k, got[i].Topics[k], want.Topics[k])
			}
		}
	}
}

func TestRaisedDefaultItersNotClamped(t *testing.T) {
	s := newTestServer(t, Options{DefaultIters: 1000})
	if s.opt.MaxIters < 1000 {
		t.Fatalf("MaxIters = %d silently clamps the operator's DefaultIters 1000", s.opt.MaxIters)
	}
}

func TestUnknownPath(t *testing.T) {
	s := newTestServer(t, Options{})
	if w := do(t, s, http.MethodGet, "/v1/nope", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", w.Code)
	}
}

// TestConcurrentInferRequests drives the full HTTP stack from many
// goroutines against one snapshot-backed server; under -race this is
// the serving-path counterpart of the Inferencer race test.
func TestConcurrentInferRequests(t *testing.T) {
	s := newTestServer(t, Options{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	texts := []string{
		`{"text": "support vector machines for text classification", "iters": 10}`,
		`{"text": "query processing in database systems", "iters": 10}`,
		`{"texts": ["machine learning models", "information retrieval"], "iters": 10}`,
	}
	want := make([]string, len(texts))
	for i, body := range texts {
		resp, err := http.Post(srv.URL+"/v1/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("priming request %d: %d %s", i, resp.StatusCode, buf.String())
		}
		want[i] = buf.String()
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < 10; op++ {
				i := (g + op) % len(texts)
				resp, err := http.Post(srv.URL+"/v1/infer", "application/json", strings.NewReader(texts[i]))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || buf.String() != want[i] {
					t.Errorf("goroutine %d: response diverged for request %d: %d %s", g, i, resp.StatusCode, buf.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
