package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"topmine"
	"topmine/internal/obs"
)

var (
	testFixOnce sync.Once
	testInf     *topmine.Inferencer // 20conf pipeline, K=4 ("default" model)
	testSnap    []byte              // its snapshot bytes (for file-backed reload tests)
	testK       int
	testInf2    *topmine.Inferencer // dblp-titles pipeline, K=3 (second model)
	testK2      int
)

// testFixtures trains two small pipelines from different domains,
// round-trips the first through the snapshot format (the production
// serving path), and shares the Inferencers across tests and
// benchmarks.
func testFixtures(t testing.TB) {
	t.Helper()
	testFixOnce.Do(func() {
		docs, err := topmine.GenerateExampleCorpus("20conf", 400, 11)
		if err != nil {
			t.Fatal(err)
		}
		opt := topmine.DefaultOptions()
		opt.Topics = 4
		opt.Iterations = 50
		opt.SigThreshold = 4
		opt.Seed = 42
		opt.Workers = 1
		res, err := topmine.Run(docs, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := topmine.SaveSnapshot(&buf, res); err != nil {
			t.Fatal(err)
		}
		testSnap = buf.Bytes()
		loaded, err := topmine.LoadSnapshot(bytes.NewReader(testSnap))
		if err != nil {
			t.Fatal(err)
		}
		inf, err := loaded.Inferencer()
		if err != nil {
			t.Fatal(err)
		}
		testInf, testK = inf, opt.Topics

		docs2, err := topmine.GenerateExampleCorpus("dblp-titles", 250, 7)
		if err != nil {
			t.Fatal(err)
		}
		opt2 := topmine.DefaultOptions()
		opt2.Topics = 3
		opt2.Iterations = 30
		opt2.SigThreshold = 4
		opt2.Seed = 9
		opt2.Workers = 1
		res2, err := topmine.Run(docs2, opt2)
		if err != nil {
			t.Fatal(err)
		}
		inf2, err := res2.Inferencer()
		if err != nil {
			t.Fatal(err)
		}
		testInf2, testK2 = inf2, opt2.Topics
	})
	if testInf == nil || testInf2 == nil {
		t.Fatal("test fixtures failed to build")
	}
}

func testInferencer(t testing.TB) *topmine.Inferencer {
	testFixtures(t)
	return testInf
}

func newTestServer(t testing.TB, opt Options) *Server {
	return New(testInferencer(t), opt)
}

// newTwoModelServer serves the 20conf pipeline as the default model
// and the dblp-titles pipeline as "dblp".
func newTwoModelServer(t *testing.T, opt Options) *Server {
	testFixtures(t)
	reg := NewRegistry()
	if err := reg.AddInferencer("default", testInf); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddInferencer("dblp", testInf2); err != nil {
		t.Fatal(err)
	}
	return NewWithRegistry(reg, opt)
}

// testInferResult mirrors the wire shape of one inference result.
type testInferResult struct {
	Topics []float64 `json:"topics"`
	Best   int       `json:"best"`
	Tokens int       `json:"tokens"`
}

type testInferResponse struct {
	Result  *testInferResult  `json:"result"`
	Results []testInferResult `json:"results"`
}

// do issues one in-process request and decodes the JSON response.
func do(t *testing.T, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: invalid JSON response %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp map[string]string
	w := do(t, s, http.MethodGet, "/healthz", "", &resp)
	if w.Code != http.StatusOK || resp["status"] != "ok" {
		t.Fatalf("healthz = %d %q", w.Code, w.Body.String())
	}
	// HEAD must work (load balancers probe with it); other methods 405
	// like every other endpoint.
	if w := do(t, s, http.MethodHead, "/healthz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("HEAD /healthz = %d, want 200", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/healthz", "{}", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", w.Code)
	}
}

func TestRegistryDuplicateNameRejected(t *testing.T) {
	testFixtures(t)
	reg := NewRegistry()
	if err := reg.AddInferencer("m", testInf); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddInferencer("m", testInf2); err == nil {
		t.Fatal("duplicate AddInferencer succeeded")
	}
	loaderCalls := 0
	err := reg.Add("m", "", func() (*topmine.Inferencer, error) {
		loaderCalls++
		return testInf, nil
	})
	if err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if loaderCalls != 0 {
		t.Fatalf("duplicate Add still paid the snapshot load (%d loader calls)", loaderCalls)
	}
}

func TestReadyz(t *testing.T) {
	s := newTwoModelServer(t, Options{})
	var resp struct {
		Ready  bool            `json:"ready"`
		Models map[string]bool `json:"models"`
	}
	w := do(t, s, http.MethodGet, "/readyz", "", &resp)
	if w.Code != http.StatusOK || !resp.Ready {
		t.Fatalf("readyz = %d %q", w.Code, w.Body.String())
	}
	if len(resp.Models) != 2 || !resp.Models["default"] || !resp.Models["dblp"] {
		t.Fatalf("readyz models = %v", resp.Models)
	}
	if w := do(t, s, http.MethodPost, "/readyz", "{}", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /readyz = %d, want 405", w.Code)
	}
}

func TestTopicsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp topicsResponse
	w := do(t, s, http.MethodGet, "/v1/topics", "", &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("topics status = %d: %s", w.Code, w.Body.String())
	}
	if resp.NumTopics != testK {
		t.Fatalf("num_topics = %d, want %d", resp.NumTopics, testK)
	}
	if resp.Model != "default" {
		t.Fatalf("model = %q, want default", resp.Model)
	}
	if len(resp.Topics) != testK {
		t.Fatalf("topics list length = %d, want %d", len(resp.Topics), testK)
	}
	nonEmpty := 0
	for _, tp := range resp.Topics {
		if len(tp.Unigrams) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every topic summary is empty")
	}
	if w := do(t, s, http.MethodPost, "/v1/topics", "{}", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/topics = %d, want 405", w.Code)
	}
}

func TestInferSingle(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp testInferResponse
	w := do(t, s, http.MethodPost, "/v1/infer",
		`{"text": "support vector machines for text classification", "iters": 20}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("infer status = %d: %s", w.Code, w.Body.String())
	}
	if resp.Result == nil || resp.Results != nil {
		t.Fatalf("want single result, got %+v", resp)
	}
	if len(resp.Result.Topics) != testK {
		t.Fatalf("theta length = %d, want %d", len(resp.Result.Topics), testK)
	}
	var sum float64
	for _, v := range resp.Result.Topics {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %v", sum)
	}
	if resp.Result.Best < 0 || resp.Result.Best >= testK {
		t.Fatalf("best topic %d out of range", resp.Result.Best)
	}
	if resp.Result.Tokens == 0 {
		t.Fatal("in-vocabulary text reported 0 tokens")
	}
}

// TestInferTokensDetectsNoSignal is the all-OOV path: the response
// still carries a mixture (the bare prior) and a best topic, but
// tokens=0 lets clients tell "no signal" from a confident answer.
func TestInferTokensDetectsNoSignal(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, text := range []string{"zzzzz qqqqq xxxxx", ""} {
		body, _ := json.Marshal(map[string]any{"text": text, "iters": 5})
		var resp testInferResponse
		w := do(t, s, http.MethodPost, "/v1/infer", string(body), &resp)
		if w.Code != http.StatusOK {
			t.Fatalf("infer(%q) = %d: %s", text, w.Code, w.Body.String())
		}
		if resp.Result.Tokens != 0 {
			t.Fatalf("infer(%q) tokens = %d, want 0", text, resp.Result.Tokens)
		}
		if len(resp.Result.Topics) != testK {
			t.Fatalf("infer(%q) still returns the prior mixture, got %d topics", text, len(resp.Result.Topics))
		}
	}
}

func TestInferBatchMatchesSingle(t *testing.T) {
	// Cache disabled so batch and single genuinely recompute.
	s := newTestServer(t, Options{CacheBytes: -1})
	texts := []string{
		"support vector machines for text classification",
		"query processing in database systems",
		"zzzzz out of vocabulary",
	}
	body, _ := json.Marshal(map[string]any{"texts": texts, "iters": 15})
	var batch testInferResponse
	w := do(t, s, http.MethodPost, "/v1/infer", string(body), &batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", w.Code, w.Body.String())
	}
	if batch.Result != nil || len(batch.Results) != len(texts) {
		t.Fatalf("want %d batch results, got %+v", len(texts), batch)
	}
	for i, text := range texts {
		single, _ := json.Marshal(map[string]any{"text": text, "iters": 15})
		var one testInferResponse
		do(t, s, http.MethodPost, "/v1/infer", string(single), &one)
		for k := range one.Result.Topics {
			if one.Result.Topics[k] != batch.Results[i].Topics[k] {
				t.Fatalf("text %d: batch and single inference disagree at topic %d", i, k)
			}
		}
		if one.Result.Tokens != batch.Results[i].Tokens {
			t.Fatalf("text %d: token counts disagree", i)
		}
	}
}

func TestInferErrors(t *testing.T) {
	s := newTestServer(t, Options{MaxBatch: 2})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"text": `, http.StatusBadRequest},
		{"unknown field", `{"document": "x"}`, http.StatusBadRequest},
		{"neither text nor texts", `{}`, http.StatusBadRequest},
		{"both text and texts", `{"text": "a", "texts": ["b"]}`, http.StatusBadRequest},
		{"empty batch", `{"texts": []}`, http.StatusBadRequest},
		{"oversized batch", `{"texts": ["a", "b", "c"]}`, http.StatusBadRequest},
		{"unknown model", `{"text": "a", "model": "nope"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp errorResponse
			w := do(t, s, http.MethodPost, "/v1/infer", tc.body, &resp)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d (%s)", w.Code, tc.want, w.Body.String())
			}
			if resp.Error == "" {
				t.Fatal("error response has no message")
			}
		})
	}
	if w := do(t, s, http.MethodGet, "/v1/infer", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/infer = %d, want 405", w.Code)
	}
}

func TestInferOversizedBody(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 64})
	body := `{"text": "` + strings.Repeat("padding ", 64) + `"}`
	var resp errorResponse
	w := do(t, s, http.MethodPost, "/v1/infer", body, &resp)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", w.Code, w.Body.String())
	}
	if resp.Error == "" {
		t.Fatal("413 response has no message")
	}
}

func TestSegmentEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp segmentResponse
	w := do(t, s, http.MethodPost, "/v1/segment",
		`{"text": "support vector machines classify documents, query processing in database systems"}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("segment status = %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Segments) == 0 {
		t.Fatal("no segments returned for in-vocabulary text")
	}
	multi := false
	for _, seg := range resp.Segments {
		for _, p := range seg {
			if strings.Contains(p, " ") {
				multi = true
			}
		}
	}
	if !multi {
		t.Fatalf("no multi-word phrase in %v", resp.Segments)
	}

	// All-OOV text yields an empty (but present, non-null) list.
	var empty segmentResponse
	do(t, s, http.MethodPost, "/v1/segment", `{"text": "zzzzz qqqqq"}`, &empty)
	if empty.Segments == nil || len(empty.Segments) != 0 {
		t.Fatalf("OOV text segments = %#v, want []", empty.Segments)
	}

	if w := do(t, s, http.MethodPost, "/v1/segment", `not json`, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed segment body = %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/v1/segment", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/segment = %d, want 405", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/segment", `{"text": "a", "model": "nope"}`, nil); w.Code != http.StatusNotFound {
		t.Fatalf("segment with unknown model = %d, want 404", w.Code)
	}
}

// TestModelLessServerRejectsInfer serves a mining-only pipeline (no
// trained topic model): /v1/segment must work, /v1/infer must return
// 503 instead of panicking the connection.
func TestModelLessServerRejectsInfer(t *testing.T) {
	docs, err := topmine.GenerateExampleCorpus("20conf", 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	opt := topmine.DefaultOptions()
	opt.Topics = 3
	c := topmine.BuildCorpus(docs, topmine.DefaultCorpusOptions())
	res := &topmine.Result{Corpus: c, Mined: topmine.MinePhrases(c, opt), Options: opt}
	inf, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	s := New(inf, Options{})

	var resp errorResponse
	w := do(t, s, http.MethodPost, "/v1/infer", `{"text": "support vector machines"}`, &resp)
	if w.Code != http.StatusServiceUnavailable || resp.Error == "" {
		t.Fatalf("model-less infer = %d %q, want 503 with message", w.Code, w.Body.String())
	}
	var seg segmentResponse
	if w := do(t, s, http.MethodPost, "/v1/segment", `{"text": "support vector machines"}`, &seg); w.Code != http.StatusOK || len(seg.Segments) == 0 {
		t.Fatalf("model-less segment = %d %v", w.Code, seg.Segments)
	}
}

// TestInferBatchParallelPathDeterministic forces the batched fan-out
// onto its multi-worker branch (dead code on single-CPU machines
// otherwise) and checks the results still match serial single-doc
// inference exactly; under -race this also exercises the workers'
// shared access to the results slice and Inferencer. The cache is
// disabled so every result is genuinely recomputed.
func TestInferBatchParallelPathDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	s := newTestServer(t, Options{CacheBytes: -1})
	entry, ok := s.reg.Lookup("")
	if !ok {
		t.Fatal("default model missing")
	}
	st := entry.snapshot()
	texts := make([]string, 16)
	for i := range texts {
		texts[i] = fmt.Sprintf("support vector machines batch item %d", i)
	}
	got := s.inferBatch(entry, st, texts, 10)
	if len(got) != len(texts) {
		t.Fatalf("batch returned %d results for %d texts", len(got), len(texts))
	}
	for i, text := range texts {
		want := s.inferDoc(entry, st, text, 10)
		if !bytes.Equal(got[i], want) {
			t.Fatalf("text %d: parallel batch %s, serial %s", i, got[i], want)
		}
	}
}

func TestRaisedDefaultItersNotClamped(t *testing.T) {
	s := newTestServer(t, Options{DefaultIters: 1000})
	if s.opt.MaxIters < 2000 {
		t.Fatalf("MaxIters = %d silently clamps the operator's DefaultIters 1000 (2000 total sweeps)", s.opt.MaxIters)
	}
}

// TestMaxItersBoundsTotalSweeps pins the corrected iters accounting:
// MaxIters caps burn-in + sampling, so a request may be served at most
// MaxIters/2 sampling sweeps.
func TestMaxItersBoundsTotalSweeps(t *testing.T) {
	var o Options
	o.fill()
	if o.MaxIters != 1000 {
		t.Fatalf("default MaxIters = %d, want 1000 total sweeps", o.MaxIters)
	}
	if got := o.clampIters(600); got != 500 {
		t.Fatalf("clampIters(600) = %d, want 500 (2×500 = MaxIters)", got)
	}
	if got := o.clampIters(0); got != o.DefaultIters {
		t.Fatalf("clampIters(0) = %d, want default %d", got, o.DefaultIters)
	}
	tight := Options{DefaultIters: 10, MaxIters: 100}
	tight.fill()
	if got := tight.clampIters(80); got != 50 {
		t.Fatalf("clampIters(80) under MaxIters=100 = %d, want 50", got)
	}
	if got := tight.clampIters(1); got != 1 {
		t.Fatalf("clampIters(1) = %d, want 1", got)
	}
	// A huge request must clamp, not overflow past the cap: doubling
	// attacker-controlled iters would wrap negative and skip the clamp.
	if got := o.clampIters(math.MaxInt); got != o.MaxIters/2 {
		t.Fatalf("clampIters(MaxInt) = %d, want %d", got, o.MaxIters/2)
	}
}

func TestUnknownPath(t *testing.T) {
	s := newTestServer(t, Options{})
	if w := do(t, s, http.MethodGet, "/v1/nope", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", w.Code)
	}
}

func TestModelsEndpoint(t *testing.T) {
	s := newTwoModelServer(t, Options{})
	var resp modelsResponse
	w := do(t, s, http.MethodGet, "/v1/models", "", &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("models status = %d: %s", w.Code, w.Body.String())
	}
	if resp.Default != "default" || len(resp.Models) != 2 {
		t.Fatalf("models = %+v", resp)
	}
	byName := map[string]modelInfo{}
	for _, m := range resp.Models {
		byName[m.Name] = m
	}
	def, dblp := byName["default"], byName["dblp"]
	if !def.Default || dblp.Default {
		t.Fatalf("default flags wrong: %+v", resp.Models)
	}
	if def.Topics != testK || dblp.Topics != testK2 {
		t.Fatalf("topics = %d/%d, want %d/%d", def.Topics, dblp.Topics, testK, testK2)
	}
	for _, m := range resp.Models {
		if !m.Ready || m.Generation != 1 || m.Reloads != 0 {
			t.Fatalf("model %s state: %+v", m.Name, m)
		}
		if m.VocabSize == 0 || m.Phrases == 0 {
			t.Fatalf("model %s stats empty: %+v", m.Name, m)
		}
		if m.Reloadable {
			t.Fatalf("in-memory model %s claims to be reloadable", m.Name)
		}
	}
	if w := do(t, s, http.MethodPost, "/v1/models", "{}", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/models = %d, want 405", w.Code)
	}
}

// TestMultiModelRouting routes the same text to two models and checks
// each answers with its own topic count; unknown names 404 everywhere.
func TestMultiModelRouting(t *testing.T) {
	s := newTwoModelServer(t, Options{})
	var def, dblp testInferResponse
	do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 10}`, &def)
	do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 10, "model": "dblp"}`, &dblp)
	if len(def.Result.Topics) != testK {
		t.Fatalf("default model returned %d topics, want %d", len(def.Result.Topics), testK)
	}
	if len(dblp.Result.Topics) != testK2 {
		t.Fatalf("dblp model returned %d topics, want %d", len(dblp.Result.Topics), testK2)
	}

	var topics topicsResponse
	if w := do(t, s, http.MethodGet, "/v1/topics?model=dblp", "", &topics); w.Code != http.StatusOK || topics.NumTopics != testK2 {
		t.Fatalf("topics?model=dblp = %d, num_topics %d", w.Code, topics.NumTopics)
	}
	if w := do(t, s, http.MethodGet, "/v1/topics?model=nope", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("topics?model=nope = %d, want 404", w.Code)
	}
}

// TestCacheDeterminism verifies the exactness claim end to end: a
// cache hit must be byte-for-byte the response an uncached server
// computes fresh, and the hit must actually come from the cache
// (visible in /metrics counters).
func TestCacheDeterminism(t *testing.T) {
	cached := newTestServer(t, Options{})
	uncached := newTestServer(t, Options{CacheBytes: -1})
	body := `{"text": "support vector machines for text classification", "iters": 25}`

	w1 := do(t, cached, http.MethodPost, "/v1/infer", body, nil) // miss, populates
	w2 := do(t, cached, http.MethodPost, "/v1/infer", body, nil) // hit
	w3 := do(t, uncached, http.MethodPost, "/v1/infer", body, nil)
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK || w3.Code != http.StatusOK {
		t.Fatalf("statuses = %d/%d/%d", w1.Code, w2.Code, w3.Code)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("cache hit differs from the miss that populated it:\n%s\n%s", w1.Body, w2.Body)
	}
	if !bytes.Equal(w2.Body.Bytes(), w3.Body.Bytes()) {
		t.Fatalf("cache hit differs from a fresh uncached computation:\n%s\n%s", w2.Body, w3.Body)
	}

	segBody := `{"text": "the craft beer selection, query processing in database systems"}`
	s1 := do(t, cached, http.MethodPost, "/v1/segment", segBody, nil)
	s2 := do(t, cached, http.MethodPost, "/v1/segment", segBody, nil)
	s3 := do(t, uncached, http.MethodPost, "/v1/segment", segBody, nil)
	if !bytes.Equal(s1.Body.Bytes(), s2.Body.Bytes()) || !bytes.Equal(s2.Body.Bytes(), s3.Body.Bytes()) {
		t.Fatalf("segment responses diverge across cache paths:\n%s\n%s\n%s", s1.Body, s2.Body, s3.Body)
	}

	metrics := do(t, cached, http.MethodGet, "/metrics", "", nil).Body.String()
	for _, want := range []string{
		"topmined_cache_hits_total 2",
		"topmined_cache_misses_total 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestCacheKeyedByIters: the same text at different iteration counts
// must not share a cache entry.
func TestCacheKeyedByIters(t *testing.T) {
	s := newTestServer(t, Options{})
	a := do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 5}`, nil)
	b := do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 40}`, nil)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("statuses = %d/%d", a.Code, b.Code)
	}
	st := s.cache.stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("cache stats = %+v, want 2 misses 0 hits", st)
	}
}

// TestCacheSkipsOversizedEntries: a response larger than the
// per-shard budget is served but never cached, so N shards can never
// each pin one huge entry and blow the operator's byte budget.
func TestCacheSkipsOversizedEntries(t *testing.T) {
	s := newTestServer(t, Options{CacheBytes: 256})
	body, _ := json.Marshal(map[string]any{
		"text": "support vector machines " + strings.Repeat("padding ", 40), "iters": 5})
	for i := 0; i < 2; i++ {
		if w := do(t, s, http.MethodPost, "/v1/infer", string(body), nil); w.Code != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, w.Code, w.Body.String())
		}
	}
	st := s.cache.stats()
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("oversized response was cached anyway: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("budget violated: %+v", st)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTwoModelServer(t, Options{})
	do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 5}`, nil)
	do(t, s, http.MethodGet, "/healthz", "", nil)
	do(t, s, http.MethodPost, "/v1/infer", `bad json`, nil)

	w := do(t, s, http.MethodGet, "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	bodyText := w.Body.String()
	for _, want := range []string{
		`topmined_requests_total{endpoint="/v1/infer",code="200"} 1`,
		`topmined_requests_total{endpoint="/v1/infer",code="400"} 1`,
		`topmined_requests_total{endpoint="/healthz",code="200"} 1`,
		`topmined_request_duration_seconds_bucket{endpoint="/v1/infer",le="+Inf"} 2`,
		`topmined_request_duration_seconds_count{endpoint="/v1/infer"} 2`,
		`topmined_model_ready{model="dblp"} 1`,
		`topmined_model_generation{model="default"} 1`,
		`topmined_model_topics{model="default"} 4`,
		"topmined_batch_slots_capacity",
		"topmined_cache_max_bytes",
		"topmined_uptime_seconds",
	} {
		if !strings.Contains(bodyText, want) {
			t.Fatalf("metrics missing %q:\n%s", want, bodyText)
		}
	}
	if w := do(t, s, http.MethodPost, "/metrics", "{}", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", w.Code)
	}
}

// TestMetricsExpositionParsesBack pins the whole /metrics payload
// against the obs parse-back linter: every line well-formed per the
// 0.0.4 text format, histograms cumulative with +Inf buckets, no
// duplicate series — after enough traffic to populate every family.
func TestMetricsExpositionParsesBack(t *testing.T) {
	s := newTwoModelServer(t, Options{CacheBytes: 1 << 20})
	do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 5}`, nil)
	do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 5}`, nil) // cache hit
	do(t, s, http.MethodPost, "/v1/infer", `bad json`, nil)
	do(t, s, http.MethodPost, "/v1/segment", `{"text": "database systems"}`, nil)
	do(t, s, http.MethodGet, "/v1/models", "", nil)
	do(t, s, http.MethodGet, "/healthz", "", nil)
	do(t, s, http.MethodGet, "/readyz", "", nil)

	w := do(t, s, http.MethodGet, "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	if err := obs.Lint(w.Body.Bytes()); err != nil {
		t.Fatalf("exposition fails parse-back lint: %v\n%s", err, w.Body.String())
	}
}

// TestReloadEndpoint exercises the admin reload path: 404 for unknown
// models, 409 for in-memory models, and a real snapshot-file reload
// that bumps the generation and invalidates cached responses.
func TestReloadEndpoint(t *testing.T) {
	testFixtures(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.tpm")
	if err := os.WriteFile(path, testSnap, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.AddSnapshotFile("filemodel", path); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddInferencer("mem", testInf2); err != nil {
		t.Fatal(err)
	}
	s := NewWithRegistry(reg, Options{})

	if w := do(t, s, http.MethodPost, "/v1/models/nope/reload", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("reload unknown = %d, want 404", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/models/mem/reload", "", nil); w.Code != http.StatusConflict {
		t.Fatalf("reload in-memory = %d, want 409", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/v1/models/filemodel/reload", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload = %d, want 405", w.Code)
	}

	// Prime the cache, reload, and confirm the entry is keyed away.
	body := `{"text": "support vector machines", "iters": 10}`
	first := do(t, s, http.MethodPost, "/v1/infer", body, nil)
	var info modelInfo
	if w := do(t, s, http.MethodPost, "/v1/models/filemodel/reload", "", &info); w.Code != http.StatusOK {
		t.Fatalf("reload = %d: %s", w.Code, w.Body.String())
	}
	if info.Generation != 2 || info.Reloads != 1 || !info.Ready {
		t.Fatalf("after reload: %+v", info)
	}
	misses := s.cache.stats().Misses
	second := do(t, s, http.MethodPost, "/v1/infer", body, nil)
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		// Same snapshot content, so the recomputed answer is identical
		// — but it must have been recomputed under the new generation.
		t.Fatalf("reloaded model answers differently for identical content:\n%s\n%s", first.Body, second.Body)
	}
	if got := s.cache.stats().Misses; got != misses+1 {
		t.Fatalf("post-reload request hit the stale generation (misses %d -> %d)", misses, got)
	}
}

// TestReloadAdminToken: with AdminToken set, reload requires the
// bearer token; data-plane endpoints stay open.
func TestReloadAdminToken(t *testing.T) {
	testFixtures(t)
	reg := NewRegistry()
	if err := reg.Add("m", "", func() (*topmine.Inferencer, error) { return testInf, nil }); err != nil {
		t.Fatal(err)
	}
	s := NewWithRegistry(reg, Options{AdminToken: "s3cret"})

	if w := do(t, s, http.MethodPost, "/v1/models/m/reload", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless reload = %d, want 401", w.Code)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/models/m/reload", nil)
	r.Header.Set("Authorization", "Bearer wrong")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("wrong-token reload = %d, want 401", w.Code)
	}
	r = httptest.NewRequest(http.MethodPost, "/v1/models/m/reload", nil)
	r.Header.Set("Authorization", "Bearer s3cret")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("authorised reload = %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 5}`, nil); w.Code != http.StatusOK {
		t.Fatalf("data-plane infer needs no token but got %d", w.Code)
	}
}

// TestHotReloadUnderLoad is the zero-dropped-requests guarantee:
// requests race repeated atomic swaps between two different models,
// and every response must be a valid 200 from one model or the other.
// Run under -race this is the registry's swap-safety proof.
func TestHotReloadUnderLoad(t *testing.T) {
	testFixtures(t)
	var flips atomic.Uint64
	reg := NewRegistry()
	err := reg.Add("live", "", func() (*topmine.Inferencer, error) {
		if flips.Add(1)%2 == 0 {
			return testInf2, nil
		}
		return testInf, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithRegistry(reg, Options{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	const (
		workers  = 8
		requests = 20
		reloads  = 15
	)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < requests; i++ {
				body := fmt.Sprintf(`{"text": "database systems request %d %d", "iters": 5}`, g, i)
				resp, err := http.Post(srv.URL+"/v1/infer", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: dropped request during reload: %d %s", g, resp.StatusCode, buf.String())
					return
				}
				var decoded testInferResponse
				if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil || decoded.Result == nil {
					t.Errorf("goroutine %d: bad body %q: %v", g, buf.String(), err)
					return
				}
				if k := len(decoded.Result.Topics); k != testK && k != testK2 {
					t.Errorf("goroutine %d: %d topics matches neither model (%d/%d)", g, k, testK, testK2)
					return
				}
			}
		}(g)
	}
	reloadDone := make(chan error, 1)
	go func() {
		<-start
		for i := 0; i < reloads; i++ {
			if err := reg.Reload("live"); err != nil {
				reloadDone <- err
				return
			}
		}
		reloadDone <- nil
	}()
	close(start)
	wg.Wait()
	if err := <-reloadDone; err != nil {
		t.Fatalf("reload failed under load: %v", err)
	}
	e, _ := reg.Lookup("live")
	if got := e.Generation(); got != uint64(1+reloads) {
		t.Fatalf("generation = %d after %d reloads, want %d", got, reloads, 1+reloads)
	}
	if got := e.Reloads(); got != uint64(reloads) {
		t.Fatalf("reload counter = %d, want %d", got, reloads)
	}
}

// TestConcurrentInferRequests drives the full HTTP stack from many
// goroutines against one snapshot-backed server; under -race this is
// the serving-path counterpart of the Inferencer race test.
func TestConcurrentInferRequests(t *testing.T) {
	s := newTestServer(t, Options{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	texts := []string{
		`{"text": "support vector machines for text classification", "iters": 10}`,
		`{"text": "query processing in database systems", "iters": 10}`,
		`{"texts": ["machine learning models", "information retrieval"], "iters": 10}`,
	}
	want := make([]string, len(texts))
	for i, body := range texts {
		resp, err := http.Post(srv.URL+"/v1/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("priming request %d: %d %s", i, resp.StatusCode, buf.String())
		}
		want[i] = buf.String()
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < 10; op++ {
				i := (g + op) % len(texts)
				resp, err := http.Post(srv.URL+"/v1/infer", "application/json", strings.NewReader(texts[i]))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || buf.String() != want[i] {
					t.Errorf("goroutine %d: response diverged for request %d: %d %s", g, i, resp.StatusCode, buf.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
