package serve

import "sync"

// flightGroup coalesces concurrent identical computations (singleflight
// semantics, specialised to the serve path's cacheKey): when N requests
// miss the response cache on the same key at the same time, exactly one
// of them — the leader — runs the computation, and the other N-1 block
// until it publishes the result. Without this, a burst of identical
// requests behind a cold or just-invalidated cache entry (the classic
// cache stampede: a hot text right after startup or a hot reload) pays
// N full Gibbs inferences for one answer. Because inference is
// deterministic per key (the property the exact response cache is built
// on), sharing the leader's bytes is not an approximation — every
// waiter receives exactly the bytes it would have computed itself.
//
// The key embeds the model generation, so a computation started against
// one generation can only ever be joined by requests for that same
// generation: requests racing a hot reload either share the old
// publication's flight (and cache under the old generation's key) or
// start a fresh flight for the new one. Old-generation results can
// never leak into the new generation's cache entries.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]*flight
}

// flight is one in-progress computation. done is closed after val (or
// panicked) is set and the flight has been removed from the map, so a
// waiter that wakes up reads a fully published result.
type flight struct {
	done     chan struct{}
	val      []byte
	panicked any
	waiters  int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[cacheKey]*flight)}
}

// do returns fn's result for key, running fn at most once across
// concurrent callers. shared reports whether this caller received
// another caller's computation rather than running fn itself.
//
// A panic in fn propagates to every caller (leader and waiters alike):
// each request's instrument wrapper recovers it individually, so one
// poisoned computation turns into N clean 500s, not N hung requests or
// a crashed process.
func (g *flightGroup) do(key cacheKey, fn func() []byte) (val []byte, shared bool) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		f.waiters++
		g.mu.Unlock()
		<-f.done
		if f.panicked != nil {
			panic(f.panicked)
		}
		return f.val, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	defer func() {
		if p := recover(); p != nil {
			f.panicked = p
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		if f.panicked != nil {
			panic(f.panicked)
		}
	}()
	f.val = fn()
	return f.val, false
}

// waiting reports how many callers are currently blocked on key's
// in-flight computation (0 when no flight is active). Tests use it to
// deterministically wait for N concurrent requests to converge on one
// leader before releasing a gated computation.
func (g *flightGroup) waiting(key cacheKey) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.waiters
	}
	return 0
}

// active reports the number of distinct in-flight computations, for the
// /metrics in-flight gauge.
func (g *flightGroup) active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
