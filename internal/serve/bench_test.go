package serve

// Serve-path benchmarks: the acceptance numbers for the exact
// response cache. The HTTP pair drives the full handler stack
// (routing, JSON decode, cache lookup, encode), so the cached/uncached
// ratio is the end-to-end speedup a repeated request sees:
//
//	go test ./internal/serve -bench=BenchmarkHTTPInfer -benchmem
//
// The library-level pair lives in the repository root bench_test.go
// (BenchmarkServeInferCached / BenchmarkServeInferUncached).

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchRequest(b *testing.B, s *Server, body string) {
	b.Helper()
	r := httptest.NewRequest(http.MethodPost, "/v1/infer", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("infer = %d: %s", w.Code, w.Body.String())
	}
}

// benchBody is a realistic multi-sentence document: the uncached cost
// scales with tokens and sweeps, while a cache hit costs the same flat
// lookup regardless.
const benchBody = `{"text": "support vector machines for text classification, ` +
	`query processing in large database systems, machine learning models ` +
	`for information retrieval and data mining, topic models over document ` +
	`collections, efficient algorithms for frequent pattern mining", "iters": 100}`

// BenchmarkHTTPInferCached measures the steady-state repeated-request
// path: every iteration after the first is a cache hit.
func BenchmarkHTTPInferCached(b *testing.B) {
	s := newTestServer(b, Options{})
	benchRequest(b, s, benchBody) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, s, benchBody)
	}
}

// BenchmarkHTTPInferUncached disables the cache, so every iteration
// pays the full Gibbs inference cost.
func BenchmarkHTTPInferUncached(b *testing.B) {
	s := newTestServer(b, Options{CacheBytes: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, s, benchBody)
	}
}
