package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"topmine"
)

// Registry holds the set of named models a Server routes between. The
// name map is fixed after startup registration (Add); what can change
// at runtime is the Inferencer *behind* each name, swapped atomically
// by Reload. Requests therefore never take the registry lock on the
// hot path beyond an RWMutex read, and a reload drops zero requests:
// in-flight requests keep using the Inferencer pointer they loaded,
// new requests see the new one.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*ModelEntry
	def     string
}

// modelState is one immutable (inferencer, generation) publication.
// The pair is swapped as a single pointer so no reader can ever pair
// one load's Inferencer with another load's generation — the torn
// combination would let a request compute with the old model and
// cache the answer under the new generation's key, silently poisoning
// the "exact" response cache.
type modelState struct {
	inf *topmine.Inferencer
	gen uint64
}

// ModelEntry is one named model: an atomically swappable
// (Inferencer, generation) pair plus the provenance needed to reload
// it and report on it.
type ModelEntry struct {
	name string
	path string // snapshot file, or "" for in-memory models
	// loader rebuilds the Inferencer from its source; nil means the
	// model was registered in-memory and cannot be reloaded.
	loader func() (*topmine.Inferencer, error)

	state atomic.Pointer[modelState]
	// reloadMu serialises Reload calls so two concurrent reloads can
	// never publish the same generation for different content.
	reloadMu sync.Mutex
	reloads  atomic.Uint64 // successful reloads (not counting initial load)
	loadedAt atomic.Int64  // unix nanos of the last successful (re)load
}

// Name returns the registration name.
func (e *ModelEntry) Name() string { return e.name }

// Path returns the snapshot path backing this model ("" if in-memory).
func (e *ModelEntry) Path() string { return e.path }

// snapshot returns the current (inferencer, generation) publication.
// Request handlers must call this once and use the pair throughout, so
// a concurrent reload cannot change the model — or its cache keying —
// mid-request.
func (e *ModelEntry) snapshot() *modelState { return e.state.Load() }

// Inferencer returns the current Inferencer.
func (e *ModelEntry) Inferencer() *topmine.Inferencer {
	if st := e.state.Load(); st != nil {
		return st.inf
	}
	return nil
}

// Generation returns the load generation, starting at 1; it changes
// exactly when the Inferencer does, so (name, generation) uniquely
// identifies model content — the property the response cache keys on
// to stay exact across hot reloads.
func (e *ModelEntry) Generation() uint64 {
	if st := e.state.Load(); st != nil {
		return st.gen
	}
	return 0
}

// Reloads returns how many successful hot reloads the entry has seen.
func (e *ModelEntry) Reloads() uint64 { return e.reloads.Load() }

// LoadedAt returns the time of the last successful (re)load.
func (e *ModelEntry) LoadedAt() time.Time { return time.Unix(0, e.loadedAt.Load()) }

// Ready reports whether the entry currently holds a usable Inferencer.
func (e *ModelEntry) Ready() bool { return e.Inferencer() != nil }

// NewRegistry returns an empty registry; the first model added becomes
// the default until SetDefault overrides it.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*ModelEntry)}
}

func validModelName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: model name must not be empty")
	}
	if strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("serve: model name %q must not contain slashes or whitespace", name)
	}
	return nil
}

// insert publishes a freshly built entry's initial state and adds it
// to the name map — the single place registration invariants
// (duplicate rejection, first-model-is-default election) live.
func (r *Registry) insert(e *ModelEntry, inf *topmine.Inferencer) error {
	e.state.Store(&modelState{inf: inf, gen: 1})
	e.loadedAt.Store(time.Now().UnixNano())

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("serve: duplicate model name %q", e.name)
	}
	r.entries[e.name] = e
	if r.def == "" {
		r.def = e.name
	}
	return nil
}

// has reports whether name is registered (a cheap pre-check; insert
// under the lock remains authoritative).
func (r *Registry) has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[name]
	return ok
}

// Add registers a model by calling loader for its initial Inferencer.
// The loader is retained for hot reloads. The first model added
// becomes the default route.
func (r *Registry) Add(name string, path string, loader func() (*topmine.Inferencer, error)) error {
	if err := validModelName(name); err != nil {
		return err
	}
	if loader == nil {
		return fmt.Errorf("serve: model %q needs a loader", name)
	}
	// Fail duplicate names before the (potentially very expensive)
	// snapshot load; insert re-checks under the lock.
	if r.has(name) {
		return fmt.Errorf("serve: duplicate model name %q", name)
	}
	inf, err := loader()
	if err != nil {
		return fmt.Errorf("serve: loading model %q: %w", name, err)
	}
	return r.insert(&ModelEntry{name: name, path: path, loader: loader}, inf)
}

// AddInferencer registers an already-built in-memory model; Reload on
// it rebuilds nothing and returns an error.
func (r *Registry) AddInferencer(name string, inf *topmine.Inferencer) error {
	if inf == nil {
		return fmt.Errorf("serve: model %q: nil Inferencer", name)
	}
	if err := validModelName(name); err != nil {
		return err
	}
	return r.insert(&ModelEntry{name: name}, inf)
}

// AddSnapshotFile registers a model backed by a snapshot file written
// by topmine -save; Reload re-reads the same path.
func (r *Registry) AddSnapshotFile(name, path string) error {
	return r.Add(name, path, func() (*topmine.Inferencer, error) {
		res, err := topmine.LoadSnapshotFile(path)
		if err != nil {
			return nil, err
		}
		return res.Inferencer()
	})
}

// SetDefault picks which model unnamed requests route to.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	r.def = name
	return nil
}

// DefaultName returns the name unnamed requests route to ("" when the
// registry is empty).
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Lookup resolves a request's model name; "" means the default model.
func (r *Registry) Lookup(name string) (*ModelEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.def
	}
	e, ok := r.entries[name]
	return e, ok
}

// Names lists registered models in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Reload rebuilds one model from its loader and atomically swaps it
// in. On failure the previous Inferencer stays live and keeps serving
// — a bad snapshot on disk can never take a healthy model down. A
// successful swap bumps the generation, which implicitly invalidates
// every cached response for the old content (the cache key embeds the
// generation; stale entries age out by LRU).
func (r *Registry) Reload(name string) error {
	e, ok := r.Lookup(name)
	if !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	if e.loader == nil {
		return fmt.Errorf("serve: model %q was registered in-memory and has no reloadable source", e.name)
	}
	// Serialise reloads per entry: the read-increment-publish of the
	// generation must not interleave, or two concurrent reloads could
	// publish the same generation for different model content.
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	inf, err := e.loader()
	if err != nil {
		return fmt.Errorf("serve: reloading model %q: %w", e.name, err)
	}
	e.state.Store(&modelState{inf: inf, gen: e.state.Load().gen + 1})
	e.reloads.Add(1)
	e.loadedAt.Store(time.Now().UnixNano())
	return nil
}

// ReloadAll reloads every model with a loader (in-memory models are
// skipped), collecting per-model failures into one joined error that
// preserves each cause for errors.Is/As.
func (r *Registry) ReloadAll() error {
	var errs []error
	for _, name := range r.Names() {
		e, _ := r.Lookup(name)
		if e == nil || e.loader == nil {
			continue
		}
		if err := r.Reload(name); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
