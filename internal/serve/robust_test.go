package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPanicRecoverySingle: a panicking handler must produce a JSON 500
// and a metrics observation, not an uncounted connection reset.
func TestPanicRecoverySingle(t *testing.T) {
	s := newTestServer(t, Options{})
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		panic("gibbs sampler exploded")
	}
	var resp errorResponse
	w := do(t, s, http.MethodPost, "/v1/infer", `{"text": "x", "iters": 5}`, &resp)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", w.Code)
	}
	if resp.Error == "" {
		t.Fatalf("500 body is not the standard JSON error shape: %s", w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("500 content type = %q", ct)
	}

	metrics := do(t, s, http.MethodGet, "/metrics", "", nil).Body.String()
	for _, want := range []string{
		`topmined_requests_total{endpoint="/v1/infer",code="500"} 1`,
		"topmined_panics_total 1",
		`topmined_request_duration_seconds_count{endpoint="/v1/infer"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q after panic:\n%s", want, metrics)
		}
	}
}

// TestPanicRecoveryBatch: the deliberate worker re-panic in inferBatch
// must surface as the same clean 500 on the request goroutine.
func TestPanicRecoveryBatch(t *testing.T) {
	s := newTestServer(t, Options{})
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		panic("worker exploded")
	}
	var resp errorResponse
	w := do(t, s, http.MethodPost, "/v1/infer", `{"texts": ["a", "b", "c", "d"], "iters": 5}`, &resp)
	if w.Code != http.StatusInternalServerError || resp.Error == "" {
		t.Fatalf("panicking batch = %d %q, want JSON 500", w.Code, w.Body.String())
	}
	// The server must remain fully serviceable afterwards (slots
	// returned, flights cleaned up).
	s.infer = func(st *modelState, text string, iters int) ([]float64, int) {
		return []float64{0.25, 0.25, 0.25, 0.25}, 1
	}
	if w := do(t, s, http.MethodPost, "/v1/infer", `{"texts": ["a", "b"], "iters": 5}`, nil); w.Code != http.StatusOK {
		t.Fatalf("server unhealthy after recovered batch panic: %d %s", w.Code, w.Body.String())
	}
}

// TestStatusWriterPassesThroughFlusher: instrumentation must not hide
// the underlying writer's streaming capability.
func TestStatusWriterPassesThroughFlusher(t *testing.T) {
	s := newTestServer(t, Options{})
	sawFlusher := false
	h := s.instrument("/stream", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		w.Write([]byte("chunk"))
		if ok {
			f.Flush()
		}
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !sawFlusher {
		t.Fatal("instrumented writer does not expose http.Flusher")
	}
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}

// TestModelTopicsSeriesCoversUnreadyModels: every registered model gets
// a topmined_model_topics sample even while unready — a gap would break
// dashboards and rate() queries exactly during an incident.
func TestModelTopicsSeriesCoversUnreadyModels(t *testing.T) {
	testFixtures(t)
	reg := NewRegistry()
	if err := reg.AddInferencer("ok", testInf); err != nil {
		t.Fatal(err)
	}
	// Simulate a registered-but-unready model (load failed / pending):
	// an entry with no published state.
	reg.mu.Lock()
	reg.entries["cold"] = &ModelEntry{name: "cold"}
	reg.mu.Unlock()

	s := NewWithRegistry(reg, Options{})
	metrics := do(t, s, http.MethodGet, "/metrics", "", nil).Body.String()
	for _, want := range []string{
		`topmined_model_topics{model="ok"} 4`,
		`topmined_model_topics{model="cold"} 0`,
		`topmined_model_ready{model="cold"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestWarmFromLog replays a mixed plain/JSON access log and verifies
// the warmed entries answer later requests from the cache.
func TestWarmFromLog(t *testing.T) {
	s := newTestServer(t, Options{})
	logData := strings.Join([]string{
		"support vector machines for text classification",
		`{"text": "query processing in database systems", "op": "segment"}`,
		"support vector machines for text classification", // duplicate → hit
		`{"text": "x", "model": "nope"}`,                  // unknown model → skipped
		"",
		`{"text": "machine learning models", "iters": 25}`,
		`{"method": "GET", "endpoint": "/readyz", "status": 200}`, // no text → ignored
	}, "\n")
	st, err := s.WarmFromLog(strings.NewReader(logData))
	if err != nil {
		t.Fatal(err)
	}
	if st.Lines != 6 || st.Warmed != 3 || st.Hits != 1 || st.Skipped != 1 || st.Ignored != 1 {
		t.Fatalf("warm stats = %+v, want 6 lines / 3 warmed / 1 hit / 1 skipped / 1 ignored", st)
	}
	if len(st.Errors) != 1 || !strings.Contains(st.Errors[0], "nope") {
		t.Fatalf("warm errors = %v", st.Errors)
	}

	// A live request for a warmed text must be a pure cache hit: the
	// warm pass used the default iteration count, like a request that
	// omits "iters".
	hits := s.cache.stats().Hits
	w := do(t, s, http.MethodPost, "/v1/infer", `{"text": "support vector machines for text classification"}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("warmed request = %d", w.Code)
	}
	if got := s.cache.stats().Hits; got != hits+1 {
		t.Fatalf("warmed text was not served from cache (hits %d -> %d)", hits, got)
	}
	w = do(t, s, http.MethodPost, "/v1/segment", `{"text": "query processing in database systems"}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("warmed segment = %d", w.Code)
	}
	if got := s.cache.stats().Hits; got != hits+2 {
		t.Fatal("warmed segment was not served from cache")
	}
}

// TestRequestLogBreakdown: the structured request log carries the
// resolve/infer/marshal breakdown and the warm-log-compatible shape.
func TestRequestLogBreakdown(t *testing.T) {
	testFixtures(t)
	reg := NewRegistry()
	if err := reg.AddInferencer("default", testInf); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s := NewWithRegistry(reg, Options{RequestLog: &buf})
	if w := do(t, s, http.MethodPost, "/v1/infer", `{"text": "database systems", "iters": 10}`, nil); w.Code != http.StatusOK {
		t.Fatalf("infer = %d", w.Code)
	}
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want exactly one log line, got %q", buf.String())
	}
	var rec struct {
		Method    string  `json:"method"`
		Endpoint  string  `json:"endpoint"`
		Model     string  `json:"model"`
		Text      string  `json:"text"`
		Iters     int     `json:"iters"`
		Status    int     `json:"status"`
		Bytes     int64   `json:"bytes"`
		Ms        float64 `json:"ms"`
		ResolveMs float64 `json:"resolve_ms"`
		InferMs   float64 `json:"infer_ms"`
		MarshalMs float64 `json:"marshal_ms"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not JSON: %q: %v", line, err)
	}
	if rec.Method != "POST" || rec.Endpoint != "/v1/infer" || rec.Model != "default" || rec.Status != 200 {
		t.Fatalf("log record = %+v", rec)
	}
	if rec.Text != "database systems" || rec.Iters != 10 {
		t.Fatalf("log record not warm-replayable (text/iters missing): %+v", rec)
	}
	if rec.Bytes == 0 {
		t.Fatal("log record missing response bytes")
	}
	if rec.InferMs <= 0 {
		t.Fatalf("log record missing infer time: %+v", rec)
	}
	if rec.Ms < rec.InferMs {
		t.Fatalf("total %v ms < infer %v ms", rec.Ms, rec.InferMs)
	}
}

// TestRequestLogWarmRoundTrip pins the contract the -warm-log flag
// help promises: a -request-log capture replays directly through
// WarmFromLog, and the warmed server answers the same traffic from
// cache. The log deliberately interleaves non-warmable records
// (health checks, batch infers) with the warmable ones.
func TestRequestLogWarmRoundTrip(t *testing.T) {
	var captured bytes.Buffer
	s1 := newTestServer(t, Options{RequestLog: &captured})
	for _, req := range []struct{ path, body string }{
		{"/healthz", ""},
		{"/v1/infer", `{"text": "support vector machines", "iters": 15}`},
		{"/v1/infer", `{"texts": ["a", "b"]}`}, // batch: logged without text
		{"/v1/segment", `{"text": "query processing in database systems"}`},
		{"/v1/infer", `{"text": "machine learning models"}`}, // default iters
	} {
		method := http.MethodPost
		if req.body == "" {
			method = http.MethodGet
		}
		if w := do(t, s1, method, req.path, req.body, nil); w.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", req.path, w.Code, w.Body.String())
		}
	}

	s2 := newTestServer(t, Options{})
	st, err := s2.WarmFromLog(bytes.NewReader(captured.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Warmed != 3 || st.Skipped != 0 || st.Ignored != 2 {
		t.Fatalf("replaying a request log = %+v, want 3 warmed / 0 skipped / 2 ignored", st)
	}
	misses := s2.cache.stats().Misses
	for _, req := range []struct{ path, body string }{
		{"/v1/infer", `{"text": "support vector machines", "iters": 15}`},
		{"/v1/segment", `{"text": "query processing in database systems"}`},
		{"/v1/infer", `{"text": "machine learning models"}`},
	} {
		if w := do(t, s2, http.MethodPost, req.path, req.body, nil); w.Code != http.StatusOK {
			t.Fatalf("%s after warm = %d", req.path, w.Code)
		}
	}
	if got := s2.cache.stats().Misses; got != misses {
		t.Fatalf("warmed traffic still missed the cache (%d -> %d misses)", misses, got)
	}
}
