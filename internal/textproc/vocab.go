package textproc

import (
	"fmt"
	"sort"
)

// Vocab interns stemmed word forms as dense int32 ids and remembers,
// for each stem, the most frequent surface form seen in the corpus so
// phrases can be displayed un-stemmed ("mine" -> "mining") as the paper
// does for its visualisations (§7.1).
//
// Vocab is not safe for concurrent mutation; build it single-threaded
// (or per-shard and merge) and then share it read-only.
type Vocab struct {
	byWord  map[string]int32
	words   []string         // id -> stem
	counts  []int64          // id -> total corpus frequency
	surface []map[string]int // id -> surface form -> count
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byWord: make(map[string]int32)}
}

// Intern returns the id for stem, adding it if absent, and records one
// occurrence with the given surface form.
func (v *Vocab) Intern(stem, surfaceForm string) int32 {
	id, ok := v.byWord[stem]
	if !ok {
		id = int32(len(v.words))
		v.byWord[stem] = id
		v.words = append(v.words, stem)
		v.counts = append(v.counts, 0)
		v.surface = append(v.surface, nil)
	}
	v.counts[id]++
	m := v.surface[id]
	if m == nil {
		m = make(map[string]int, 1)
		v.surface[id] = m
	}
	m[surfaceForm]++
	return id
}

// ID returns the id for stem and whether it is present.
func (v *Vocab) ID(stem string) (int32, bool) {
	id, ok := v.byWord[stem]
	return id, ok
}

// Word returns the stem for id. It panics on out-of-range ids.
func (v *Vocab) Word(id int32) string { return v.words[id] }

// Count returns the corpus frequency recorded for id.
func (v *Vocab) Count(id int32) int64 { return v.counts[id] }

// Size returns the number of distinct stems.
func (v *Vocab) Size() int { return len(v.words) }

// Unstem returns the most frequent surface form recorded for id,
// falling back to the stem itself. Ties break lexicographically so the
// result is deterministic.
func (v *Vocab) Unstem(id int32) string {
	if int(id) >= len(v.surface) || v.surface[id] == nil {
		return v.Word(id)
	}
	best, bestN := "", -1
	for s, n := range v.surface[id] {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	if best == "" {
		return v.Word(id)
	}
	return best
}

// TopWords returns the n most frequent word ids, ties broken by id.
func (v *Vocab) TopWords(n int) []int32 {
	ids := make([]int32, len(v.words))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := v.counts[ids[a]], v.counts[ids[b]]
		if ca != cb {
			return ca > cb
		}
		return ids[a] < ids[b]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

// String summarises the vocabulary for debugging.
func (v *Vocab) String() string {
	return fmt.Sprintf("Vocab(%d stems)", len(v.words))
}
