package textproc

import (
	"fmt"
	"sort"
)

// Vocab interns stemmed word forms as dense int32 ids and remembers,
// for each stem, the most frequent surface form seen in the corpus so
// phrases can be displayed un-stemmed ("mine" -> "mining") as the paper
// does for its visualisations (§7.1).
//
// Vocab is not safe for concurrent mutation; build it single-threaded
// (or per-shard and merge) and then share it read-only.
type Vocab struct {
	byWord  map[string]int32
	words   []string        // id -> stem
	counts  []int64         // id -> total corpus frequency
	surface [][]surfaceVote // id -> surface-form tallies
}

// surfaceVote is one surface form's occurrence count for a stem. A
// stem typically sees one to three distinct surface forms, so a small
// linearly-scanned slice beats a map both in memory (a map costs
// hundreds of bytes even for one entry) and in Intern's hot path.
type surfaceVote struct {
	form string
	n    int
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byWord: make(map[string]int32)}
}

// Intern returns the id for stem, adding it if absent, and records one
// occurrence with the given surface form.
func (v *Vocab) Intern(stem, surfaceForm string) int32 {
	id, ok := v.byWord[stem]
	if !ok {
		id = int32(len(v.words))
		v.byWord[stem] = id
		v.words = append(v.words, stem)
		v.counts = append(v.counts, 0)
		v.surface = append(v.surface, nil)
	}
	v.counts[id]++
	votes := v.surface[id]
	for i := range votes {
		if votes[i].form == surfaceForm {
			votes[i].n++
			return id
		}
	}
	v.surface[id] = append(votes, surfaceVote{form: surfaceForm, n: 1})
	return id
}

// MergeInto folds v's stems, counts and surface tallies into dst,
// walking v in id order (which is v's first-occurrence order) and
// interning each stem absent from dst. It returns the remap table from
// v's ids to dst's. Merging shard vocabularies into a global one in
// corpus order is therefore equivalent to replaying every Intern call
// against the global vocabulary directly: ids, counts and surface
// tallies all come out identical.
//
// This is the one remap primitive behind every vocabulary-growth path:
// the parallel builder folds ingest shards with it, k-way corpus-file
// merge unions source vocabularies through it (deterministic id
// assignment = source order), and corpus append is its degenerate case
// (interning straight into the shared vocabulary, remap = identity).
func (v *Vocab) MergeInto(dst *Vocab) []int32 {
	remap := make([]int32, len(v.words))
	for lid, stem := range v.words {
		gid, ok := dst.byWord[stem]
		if !ok {
			gid = int32(len(dst.words))
			dst.byWord[stem] = gid
			dst.words = append(dst.words, stem)
			dst.counts = append(dst.counts, 0)
			dst.surface = append(dst.surface, nil)
		}
		dst.counts[gid] += v.counts[lid]
		for _, sv := range v.surface[lid] {
			votes := dst.surface[gid]
			found := false
			for i := range votes {
				if votes[i].form == sv.form {
					votes[i].n += sv.n
					found = true
					break
				}
			}
			if !found {
				dst.surface[gid] = append(votes, sv)
			}
		}
		remap[lid] = gid
	}
	return remap
}

// IsPrefixOf reports whether w extends v: every stem of v is present
// in w under the same id. Vocabularies only ever grow by appending
// ids, so a model trained against v remains valid against any w that
// v is a prefix of — the check incremental training runs before
// resuming a snapshot on a grown corpus. Counts and surface tallies
// are not compared; they legitimately grow with the corpus.
func (v *Vocab) IsPrefixOf(w *Vocab) bool {
	if len(v.words) > len(w.words) {
		return false
	}
	for i, stem := range v.words {
		if w.words[i] != stem {
			return false
		}
	}
	return true
}

// ID returns the id for stem and whether it is present.
func (v *Vocab) ID(stem string) (int32, bool) {
	id, ok := v.byWord[stem]
	return id, ok
}

// Word returns the stem for id. It panics on out-of-range ids.
func (v *Vocab) Word(id int32) string { return v.words[id] }

// Count returns the corpus frequency recorded for id.
func (v *Vocab) Count(id int32) int64 { return v.counts[id] }

// Size returns the number of distinct stems.
func (v *Vocab) Size() int { return len(v.words) }

// Unstem returns the most frequent surface form recorded for id,
// falling back to the stem itself. Ties break lexicographically so the
// result is deterministic.
func (v *Vocab) Unstem(id int32) string {
	if int(id) >= len(v.surface) || len(v.surface[id]) == 0 {
		return v.Word(id)
	}
	best, bestN := "", -1
	for _, sv := range v.surface[id] {
		if sv.n > bestN || (sv.n == bestN && sv.form < best) {
			best, bestN = sv.form, sv.n
		}
	}
	if best == "" {
		return v.Word(id)
	}
	return best
}

// TopWords returns the n most frequent word ids, ties broken by id.
func (v *Vocab) TopWords(n int) []int32 {
	ids := make([]int32, len(v.words))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := v.counts[ids[a]], v.counts[ids[b]]
		if ca != cb {
			return ca > cb
		}
		return ids[a] < ids[b]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

// String summarises the vocabulary for debugging.
func (v *Vocab) String() string {
	return fmt.Sprintf("Vocab(%d stems)", len(v.words))
}
