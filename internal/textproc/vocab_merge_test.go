package textproc

import "testing"

// TestMergeIntoMatchesReplay pins the property the parallel corpus
// builder rests on: merging shard vocabularies into a global one in
// shard order produces exactly the state of replaying every Intern
// call serially — same ids, same counts, same un-stemmed forms.
func TestMergeIntoMatchesReplay(t *testing.T) {
	type occ struct{ stem, surface string }
	chunks := [][]occ{
		{{"mine", "mining"}, {"pattern", "patterns"}, {"mine", "mine"}},
		{{"tree", "trees"}, {"mine", "mining"}, {"vector", "vector"}},
		{{"pattern", "pattern"}, {"pattern", "patterns"}, {"stream", "streams"}},
	}

	serial := NewVocab()
	for _, chunk := range chunks {
		for _, o := range chunk {
			serial.Intern(o.stem, o.surface)
		}
	}

	merged := NewVocab()
	for _, chunk := range chunks {
		shard := NewVocab()
		var localIDs []int32
		for _, o := range chunk {
			localIDs = append(localIDs, shard.Intern(o.stem, o.surface))
		}
		remap := shard.MergeInto(merged)
		for i, o := range chunk {
			gid, ok := merged.ID(o.stem)
			if !ok || remap[localIDs[i]] != gid {
				t.Fatalf("remap[%q] = %d, vocabulary says %d (ok=%v)", o.stem, remap[localIDs[i]], gid, ok)
			}
		}
	}

	if serial.Size() != merged.Size() {
		t.Fatalf("sizes differ: serial=%d merged=%d", serial.Size(), merged.Size())
	}
	for id := int32(0); int(id) < serial.Size(); id++ {
		if serial.Word(id) != merged.Word(id) {
			t.Fatalf("id %d: serial stem %q, merged stem %q", id, serial.Word(id), merged.Word(id))
		}
		if serial.Count(id) != merged.Count(id) {
			t.Fatalf("id %d (%q): serial count %d, merged count %d", id, serial.Word(id), serial.Count(id), merged.Count(id))
		}
		if serial.Unstem(id) != merged.Unstem(id) {
			t.Fatalf("id %d (%q): serial unstem %q, merged unstem %q", id, serial.Word(id), serial.Unstem(id), merged.Unstem(id))
		}
	}
}
