package textproc

import (
	"testing"
	"testing/quick"
)

// Vectors from Porter's 1980 paper and the reference implementation.
func TestStemKnownVectors(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress", "ponies": "poni", "ties": "ti",
		"caress": "caress", "cats": "cat",
		// step 1b
		"feed": "feed", "agreed": "agre", "plastered": "plaster",
		"bled": "bled", "motoring": "motor", "sing": "sing",
		"conflated": "conflat", "troubled": "troubl", "sized": "size",
		"hopping": "hop", "tanned": "tan", "falling": "fall",
		"hissing": "hiss", "fizzed": "fizz", "failing": "fail",
		"filing": "file",
		// step 1c
		"happy": "happi", "sky": "sky",
		// step 2
		"relational": "relat", "conditional": "condit",
		"rational": "ration", "valenci": "valenc", "hesitanci": "hesit",
		"digitizer": "digit", "conformabli": "conform",
		"radicalli": "radic", "differentli": "differ", "vileli": "vile",
		"analogousli": "analog", "vietnamization": "vietnam",
		"predication": "predic", "operator": "oper",
		"feudalism": "feudal", "decisiveness": "decis",
		"hopefulness": "hope", "callousness": "callous",
		"formaliti": "formal", "sensitiviti": "sensit",
		"sensibiliti": "sensibl",
		// step 3
		"triplicate": "triplic", "formative": "form",
		"formalize": "formal", "electriciti": "electr",
		"electrical": "electr", "hopeful": "hope", "goodness": "good",
		// step 4
		"revival": "reviv", "allowance": "allow", "inference": "infer",
		"airliner": "airlin", "gyroscopic": "gyroscop",
		"adjustable": "adjust", "defensible": "defens",
		"irritant": "irrit", "replacement": "replac",
		"adjustment": "adjust", "dependent": "depend",
		"adoption": "adopt", "homologou": "homolog",
		"communism": "commun", "activate": "activ",
		"angulariti": "angular", "homologous": "homolog",
		"effective": "effect", "bowdlerize": "bowdler",
		// step 5
		"probate": "probat", "rate": "rate", "cease": "ceas",
		"controll": "control", "roll": "roll",
		// pipeline-relevant whole words
		"mining": "mine", "patterns": "pattern", "frequent": "frequent",
		"databases": "databas", "retrieval": "retriev",
		"cooking": "cook", "cooked": "cook", "cooks": "cook",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

// Note: the canonical reductions above were cross-checked against the
// definitions in the 1980 paper; a few (relational->relat etc.) chain
// through multiple steps.

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by", "go"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonASCIIUnchanged(t *testing.T) {
	for _, w := range []string{"café", "naïve", "日本語", "word2vec"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCorpusWords(t *testing.T) {
	// Stemming a stem should usually be a no-op; Porter is not exactly
	// idempotent in general, so check the common vocabulary words the
	// pipeline actually produces.
	words := []string{
		"mine", "pattern", "frequent", "algorithm", "model", "topic",
		"support", "vector", "machine", "learn", "network", "databas",
		"queri", "index", "optim", "cluster", "classif",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemNeverPanicsAndShrinks(t *testing.T) {
	f := func(s string) bool {
		out := Stem(s)
		// The stem is never longer than input + 1 ('e' restoration).
		return len(out) <= len(s)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2, "orrery": 2,
	}
	for in, want := range cases {
		if got := measure([]byte(in)); got != want {
			t.Errorf("measure(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestEndsCVC(t *testing.T) {
	cases := map[string]bool{
		"hop": true, "fil": true, "hil": true,
		"snow": false, "box": false, "tray": false,
		"ho": false, "fail": false,
	}
	for in, want := range cases {
		if got := endsCVC([]byte(in)); got != want {
			t.Errorf("endsCVC(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestIsConsonantYRule(t *testing.T) {
	// y in "sky" (after consonant) is a vowel; y in "yes" (initial) is
	// a consonant; y in "toy" (after vowel) is a consonant.
	if isConsonant([]byte("sky"), 2) {
		t.Error("y after consonant should be vowel (sky)")
	}
	if !isConsonant([]byte("yes"), 0) {
		t.Error("initial y should be consonant (yes)")
	}
	if !isConsonant([]byte("toy"), 2) {
		t.Error("y after vowel should be consonant (toy)")
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"mining", "relational", "generalizations", "trouble",
		"classification", "effectiveness", "databases"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Stem(words[i%len(words)])
	}
}
