// Package textproc supplies the text-processing substrate for ToPMine:
// a segmenting tokenizer, the Porter stemmer, an English stop-word
// table, and a vocabulary that interns words and remembers how to
// un-stem them for display.
//
// The paper (§4.1) splits each document on "phrase-invariant
// punctuation (commas, periods, semicolons, etc)" so that frequent
// phrase mining and phrase construction operate on constant-size
// chunks, making the whole pipeline linear in corpus size. The
// tokenizer here performs exactly that split.
package textproc

import (
	"strings"
	"unicode"
)

// A RawToken is a surface token together with the stop words (or other
// dropped tokens) that immediately preceded it inside the same segment.
// The gap is what the paper re-inserts after mining so that phrases
// such as "house and senate" display naturally (§7.1).
type RawToken struct {
	Surface string // lowercased surface form, e.g. "mining"
	Gap     string // dropped words between the previous kept token and this one, e.g. "and"
}

// IsPhraseInvariantPunct reports whether r is punctuation across which
// no phrase may extend (§4.1). Hyphens and apostrophes are handled
// separately because they may occur inside a token.
func IsPhraseInvariantPunct(r rune) bool {
	switch r {
	case '.', ',', ';', ':', '!', '?', '(', ')', '[', ']', '{', '}',
		'"', '“', '”', '‘', '’', '…', '—', '–', '/', '\\', '|', '<', '>',
		'=', '+', '*', '&', '%', '$', '#', '@', '~', '^', '`':
		return true
	}
	return false
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize splits text into segments of lowercased surface tokens.
// Segment boundaries occur at phrase-invariant punctuation; token
// boundaries occur at whitespace. Hyphens and apostrophes are kept when
// they join two word characters ("state-of-the-art", "don't") and act
// as punctuation otherwise. Empty segments are omitted.
func Tokenize(text string) [][]string {
	var (
		segments [][]string
		segment  []string
		token    []rune
	)
	runes := []rune(text)
	flushToken := func() {
		if len(token) > 0 {
			segment = append(segment, strings.ToLower(string(token)))
			token = token[:0]
		}
	}
	flushSegment := func() {
		flushToken()
		if len(segment) > 0 {
			segments = append(segments, segment)
			segment = nil
		}
	}
	for i, r := range runes {
		switch {
		case isWordRune(r):
			token = append(token, unicode.ToLower(r))
		case r == '-' || r == '\'':
			// Keep only when joining word characters on both sides.
			if len(token) > 0 && i+1 < len(runes) && isWordRune(runes[i+1]) {
				token = append(token, r)
			} else {
				flushSegment()
			}
		case unicode.IsSpace(r):
			flushToken()
		case IsPhraseInvariantPunct(r):
			flushSegment()
		default:
			// Unknown symbol: treat conservatively as punctuation.
			flushSegment()
		}
	}
	flushSegment()
	return segments
}

// hasLetter reports whether the token contains at least one letter;
// pure numbers and symbol runs are dropped from the mining stream.
func hasLetter(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

// Filter applies stop-word and non-word removal to one tokenized
// segment, recording removed words in the Gap of the following kept
// token so they can be re-inserted into displayed phrases. Dropped
// words at the end of a segment vanish (they can never be phrase-
// internal). If stem is true each kept token's Surface remains the raw
// surface form; stemming happens later so the surface is preserved.
func Filter(segment []string, dropStopwords bool) []RawToken {
	var (
		kept []RawToken
		gap  []string
	)
	for _, tok := range segment {
		drop := !hasLetter(tok) || (dropStopwords && IsStopword(tok))
		if drop {
			gap = append(gap, tok)
			continue
		}
		kept = append(kept, RawToken{Surface: tok, Gap: strings.Join(gap, " ")})
		gap = gap[:0]
	}
	if len(kept) > 0 {
		kept[0].Gap = "" // a leading gap is not phrase-internal
	}
	return kept
}
