package textproc

// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3) 1980), implemented from the original paper.
// The paper's pipeline stems every token before mining "to address the
// various forms of words (e.g. cooking, cook, cooked) and phrase
// sparsity" (§7.1).
//
// The implementation operates on ASCII lowercase bytes; tokens with
// non-ASCII letters are returned unchanged.

// Stem returns the Porter stem of a lowercase word.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			if c == '-' || c == '\'' {
				continue // stem compound words as-is below
			}
			return word
		}
	}
	b := []byte(word)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isConsonant reports whether b[i] is a consonant per Porter's
// definition: a letter other than a,e,i,o,u, and y preceded by a vowel
// is also a vowel (y after a consonant is a consonant... precisely: y is
// a consonant when at position 0 or preceded by a vowel).
func isConsonant(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(b, i-1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:k].
func measure(b []byte) int {
	n := len(b)
	m := 0
	i := 0
	// skip initial consonants
	for i < n && isConsonant(b, i) {
		i++
	}
	for i < n {
		// in vowel run
		for i < n && !isConsonant(b, i) {
			i++
		}
		if i >= n {
			break
		}
		// in consonant run -> one VC completed
		m++
		for i < n && isConsonant(b, i) {
			i++
		}
	}
	return m
}

// containsVowel reports *v*: the stem contains a vowel.
func containsVowel(b []byte) bool {
	for i := range b {
		if !isConsonant(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports *d: the stem ends with a double consonant.
func endsDoubleConsonant(b []byte) bool {
	n := len(b)
	return n >= 2 && b[n-1] == b[n-2] && isConsonant(b, n-1)
}

// endsCVC reports *o: stem ends cvc where the final c is not w, x or y.
func endsCVC(b []byte) bool {
	n := len(b)
	if n < 3 {
		return false
	}
	if !isConsonant(b, n-3) || isConsonant(b, n-2) || !isConsonant(b, n-1) {
		return false
	}
	switch b[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r when the measure of the stem
// (b without s) satisfies cond. Returns (newWord, true) if replaced.
func replaceSuffix(b []byte, s, r string, minMeasure int) ([]byte, bool) {
	if !hasSuffix(b, s) {
		return b, false
	}
	stem := b[:len(b)-len(s)]
	if measure(stem) <= minMeasure-1 {
		return b, false
	}
	out := make([]byte, 0, len(stem)+len(r))
	out = append(out, stem...)
	out = append(out, r...)
	return out, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2] // sses -> ss
	case hasSuffix(b, "ies"):
		return b[:len(b)-2] // ies -> i
	case hasSuffix(b, "ss"):
		return b // ss -> ss
	case hasSuffix(b, "s"):
		return b[:len(b)-1] // s -> ""
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1] // eed -> ee
		}
		return b
	}
	fired := false
	if hasSuffix(b, "ed") && containsVowel(b[:len(b)-2]) {
		b = b[:len(b)-2]
		fired = true
	} else if hasSuffix(b, "ing") && containsVowel(b[:len(b)-3]) {
		b = b[:len(b)-3]
		fired = true
	}
	if !fired {
		return b
	}
	switch {
	case hasSuffix(b, "at"), hasSuffix(b, "bl"), hasSuffix(b, "iz"):
		return append(b, 'e')
	case endsDoubleConsonant(b):
		last := b[len(b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return b[:len(b)-1]
		}
		return b
	case measure(b) == 1 && endsCVC(b):
		return append(b, 'e')
	}
	return b
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && containsVowel(b[:len(b)-1]) {
		b = append(b[:len(b)-1], 'i')
	}
	return b
}

// step2 maps double suffixes to single ones when m(stem) > 0. The pairs
// follow Porter's original table (with the published LOGI/BLI revisions
// omitted to stay faithful to the 1980 text).
var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, rule := range step2Rules {
		if out, ok := replaceSuffix(b, rule.from, rule.to, 1); ok {
			return out
		} else if hasSuffix(b, rule.from) {
			return b // matched longest suffix but condition failed: stop
		}
	}
	return b
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
	{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, rule := range step3Rules {
		if out, ok := replaceSuffix(b, rule.from, rule.to, 1); ok {
			return out
		} else if hasSuffix(b, rule.from) {
			return b
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stem := b[:len(b)-len(s)]
		if s == "ion" {
			n := len(stem)
			if n == 0 || (stem[n-1] != 's' && stem[n-1] != 't') {
				return b
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return b
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := b[:len(b)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return b
}

func step5b(b []byte) []byte {
	if measure(b) > 1 && endsDoubleConsonant(b) && b[len(b)-1] == 'l' {
		return b[:len(b)-1]
	}
	return b
}
