package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Mining frequent patterns without candidate generation")
	want := [][]string{{"mining", "frequent", "patterns", "without", "candidate", "generation"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeSegmentsOnPunctuation(t *testing.T) {
	got := Tokenize("Mining frequent patterns: a tree approach, revisited.")
	want := [][]string{
		{"mining", "frequent", "patterns"},
		{"a", "tree", "approach"},
		{"revisited"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeLowercases(t *testing.T) {
	got := Tokenize("Markov Blanket Feature Selection")
	want := [][]string{{"markov", "blanket", "feature", "selection"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeKeepsInnerHyphenApostrophe(t *testing.T) {
	got := Tokenize("state-of-the-art don't stop")
	want := [][]string{{"state-of-the-art", "don't", "stop"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeTrailingHyphenBreaks(t *testing.T) {
	got := Tokenize("pre- and post-processing")
	// "pre-" has a dangling hyphen: token closes, segment breaks.
	want := [][]string{{"pre"}, {"and", "post-processing"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeQuotesBreakSegments(t *testing.T) {
	got := Tokenize(`he said "strong tea" loudly`)
	want := [][]string{{"he", "said"}, {"strong", "tea"}, {"loudly"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndWhitespace(t *testing.T) {
	for _, in := range []string{"", "   ", "...", "?!,;:"} {
		if got := Tokenize(in); len(got) != 0 {
			t.Errorf("Tokenize(%q) = %v, want empty", in, got)
		}
	}
}

func TestTokenizeParentheses(t *testing.T) {
	got := Tokenize("support vector machines (SVM) rock")
	want := [][]string{{"support", "vector", "machines"}, {"svm"}, {"rock"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeNumbersKeptAsTokens(t *testing.T) {
	got := Tokenize("top 10 results")
	want := [][]string{{"top", "10", "results"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeNeverEmitsEmptyTokensOrSegments(t *testing.T) {
	f := func(s string) bool {
		for _, seg := range Tokenize(s) {
			if len(seg) == 0 {
				return false
			}
			for _, tok := range seg {
				if tok == "" || tok != strings.ToLower(tok) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterRemovesStopwordsAndTracksGaps(t *testing.T) {
	seg := []string{"house", "and", "senate", "committee"}
	got := Filter(seg, true)
	want := []RawToken{
		{Surface: "house", Gap: ""},
		{Surface: "senate", Gap: "and"},
		{Surface: "committee", Gap: ""},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestFilterDropsPureNumbers(t *testing.T) {
	got := Filter([]string{"top", "10", "results"}, true)
	want := []RawToken{
		{Surface: "top", Gap: ""},
		{Surface: "results", Gap: "10"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestFilterLeadingGapCleared(t *testing.T) {
	got := Filter([]string{"the", "house"}, true)
	if len(got) != 1 || got[0].Gap != "" {
		t.Fatalf("leading stopword should not create a gap: %+v", got)
	}
}

func TestFilterAllStopwords(t *testing.T) {
	if got := Filter([]string{"the", "of", "and"}, true); len(got) != 0 {
		t.Fatalf("all-stopword segment should filter to empty, got %+v", got)
	}
}

func TestFilterNoStopwordRemoval(t *testing.T) {
	got := Filter([]string{"the", "house"}, false)
	if len(got) != 2 {
		t.Fatalf("with dropStopwords=false expected 2 tokens, got %+v", got)
	}
}

func TestFilterMultiWordGap(t *testing.T) {
	got := Filter([]string{"rice", "and", "the", "beans"}, true)
	if len(got) != 2 || got[1].Gap != "and the" {
		t.Fatalf("multi-word gap mis-tracked: %+v", got)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is", "we"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"mining", "database", "topic", "phrase"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
	if StopwordCount() < 100 {
		t.Errorf("suspiciously small stop-word table: %d", StopwordCount())
	}
}

func TestIsPhraseInvariantPunct(t *testing.T) {
	for _, r := range ".,;:!?()[]{}" {
		if !IsPhraseInvariantPunct(r) {
			t.Errorf("IsPhraseInvariantPunct(%q) = false", r)
		}
	}
	for _, r := range "ab1-' " {
		if IsPhraseInvariantPunct(r) {
			t.Errorf("IsPhraseInvariantPunct(%q) = true", r)
		}
	}
}
