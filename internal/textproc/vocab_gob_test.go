package textproc

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestVocabGobRoundTrip(t *testing.T) {
	v := NewVocab()
	v.Intern("mine", "mining")
	v.Intern("mine", "mining")
	v.Intern("mine", "mines")
	v.Intern("topic", "topics")
	v.Intern("phrase", "phrase")

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got Vocab
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}

	if got.Size() != v.Size() {
		t.Fatalf("size = %d, want %d", got.Size(), v.Size())
	}
	for id := int32(0); int(id) < v.Size(); id++ {
		if got.Word(id) != v.Word(id) {
			t.Fatalf("word %d = %q, want %q", id, got.Word(id), v.Word(id))
		}
		if got.Count(id) != v.Count(id) {
			t.Fatalf("count %d = %d, want %d", id, got.Count(id), v.Count(id))
		}
		if got.Unstem(id) != v.Unstem(id) {
			t.Fatalf("unstem %d = %q, want %q", id, got.Unstem(id), v.Unstem(id))
		}
	}
	// The rebuilt index must resolve stems, including after new interns.
	if id, ok := got.ID("topic"); !ok || got.Word(id) != "topic" {
		t.Fatalf("ID(topic) = %d, %v", id, ok)
	}
	next := got.Intern("corpus", "corpora")
	if int(next) != v.Size() {
		t.Fatalf("post-decode intern id = %d, want %d", next, v.Size())
	}
}

func TestVocabGobDeterministic(t *testing.T) {
	build := func() *Vocab {
		v := NewVocab()
		v.Intern("mine", "mining")
		v.Intern("mine", "mined")
		v.Intern("mine", "mines")
		v.Intern("text", "texts")
		return v
	}
	enc := func(v *Vocab) []byte {
		b, err := v.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := enc(build()), enc(build())
	if !bytes.Equal(a, b) {
		t.Fatal("identical vocabularies encoded to different bytes")
	}
}

func TestVocabGobEmptyAndCorrupt(t *testing.T) {
	var empty Vocab
	data, err := empty.GobEncode()
	if err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	var got Vocab
	if err := got.GobDecode(data); err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if got.Size() != 0 {
		t.Fatalf("empty vocab decoded to size %d", got.Size())
	}
	if err := got.GobDecode([]byte("junk")); err == nil {
		t.Fatal("corrupt vocab bytes accepted")
	}
}
