package textproc

import (
	"reflect"
	"strings"
	"testing"
)

func TestTokenizeUnicodePunctuation(t *testing.T) {
	got := Tokenize("models — fast, robust… and “cheap”")
	want := [][]string{{"models"}, {"fast"}, {"robust"}, {"and"}, {"cheap"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeApostropheEdge(t *testing.T) {
	// Possessive trailing apostrophe (plural) acts as punctuation.
	got := Tokenize("the workers' union")
	want := [][]string{{"the", "workers"}, {"union"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeLeadingApostrophe(t *testing.T) {
	got := Tokenize("'tis the season")
	// Leading apostrophe is punctuation (breaks segment before 'tis).
	if len(got) == 0 {
		t.Fatal("no tokens")
	}
	joined := ""
	for _, seg := range got {
		joined += strings.Join(seg, " ") + "|"
	}
	if !strings.Contains(joined, "tis the season") {
		t.Fatalf("unexpected tokens: %v", got)
	}
}

func TestTokenizeMixedDigitsLetters(t *testing.T) {
	got := Tokenize("b2b sales via web2.0 apps")
	want := [][]string{{"b2b", "sales", "via", "web2"}, {"0", "apps"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeVeryLongToken(t *testing.T) {
	long := strings.Repeat("a", 10000)
	got := Tokenize(long + " end")
	if len(got) != 1 || len(got[0]) != 2 || len(got[0][0]) != 10000 {
		t.Fatal("long token mangled")
	}
}

func TestTokenizeOnlyHyphens(t *testing.T) {
	if got := Tokenize("--- -- -"); len(got) != 0 {
		t.Fatalf("hyphen runs should produce no tokens: %v", got)
	}
}

func TestTokenizeCRLFAndTabs(t *testing.T) {
	got := Tokenize("one\ttwo\r\nthree")
	want := [][]string{{"one", "two", "three"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestStemHyphenatedCompound(t *testing.T) {
	// Hyphenated tokens pass through the stemmer without panicking.
	got := Stem("state-of-the-art")
	if got == "" {
		t.Fatal("empty stem")
	}
}

func TestStemAllConsonants(t *testing.T) {
	for _, w := range []string{"rhythm", "tsk", "crwth"} {
		if got := Stem(w); got == "" {
			t.Fatalf("Stem(%q) empty", w)
		}
	}
}

func TestStemRepeatedLetters(t *testing.T) {
	// Pathological repeats must terminate and stay non-empty.
	for _, w := range []string{"aaaaaa", "ssssss", "eeeeee", "yyyyyy"} {
		if got := Stem(w); got == "" {
			t.Fatalf("Stem(%q) empty", w)
		}
	}
}

func TestFilterKeepsHyphenatedWords(t *testing.T) {
	kept := Filter([]string{"state-of-the-art", "method"}, true)
	if len(kept) != 2 {
		t.Fatalf("hyphenated token dropped: %+v", kept)
	}
}

func TestVocabUnstemUnknownID(t *testing.T) {
	v := NewVocab()
	id := v.Intern("mine", "mining")
	// Unstem of an id with surface data works; word lookup for a fresh
	// vocab id panics out of range — verify the supported path only.
	if v.Unstem(id) != "mining" {
		t.Fatal("unstem failed")
	}
}
