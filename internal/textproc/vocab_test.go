package textproc

import (
	"testing"
	"testing/quick"
)

func TestVocabInternAssignsDenseIDs(t *testing.T) {
	v := NewVocab()
	a := v.Intern("mine", "mining")
	b := v.Intern("pattern", "patterns")
	c := v.Intern("mine", "mining")
	if a != c {
		t.Fatalf("same stem got different ids: %d vs %d", a, c)
	}
	if a == b {
		t.Fatalf("different stems share id %d", a)
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d, want 2", v.Size())
	}
	if v.Word(a) != "mine" || v.Word(b) != "pattern" {
		t.Fatalf("Word round-trip failed")
	}
}

func TestVocabCounts(t *testing.T) {
	v := NewVocab()
	id := v.Intern("mine", "mining")
	v.Intern("mine", "mined")
	v.Intern("mine", "mining")
	if got := v.Count(id); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestVocabUnstemPicksMostFrequentSurface(t *testing.T) {
	v := NewVocab()
	id := v.Intern("mine", "mined")
	v.Intern("mine", "mining")
	v.Intern("mine", "mining")
	if got := v.Unstem(id); got != "mining" {
		t.Fatalf("Unstem = %q, want %q", got, "mining")
	}
}

func TestVocabUnstemTieBreaksLexicographically(t *testing.T) {
	v := NewVocab()
	id := v.Intern("mine", "mining")
	v.Intern("mine", "mined")
	if got := v.Unstem(id); got != "mined" {
		t.Fatalf("Unstem tie = %q, want %q (lexicographic)", got, "mined")
	}
}

func TestVocabIDMissing(t *testing.T) {
	v := NewVocab()
	if _, ok := v.ID("absent"); ok {
		t.Fatal("ID reported presence for absent stem")
	}
}

func TestVocabTopWords(t *testing.T) {
	v := NewVocab()
	for i := 0; i < 5; i++ {
		v.Intern("common", "common")
	}
	for i := 0; i < 2; i++ {
		v.Intern("rare", "rare")
	}
	v.Intern("once", "once")
	top := v.TopWords(2)
	if len(top) != 2 || v.Word(top[0]) != "common" || v.Word(top[1]) != "rare" {
		t.Fatalf("TopWords mis-ordered: %v", top)
	}
	if got := v.TopWords(100); len(got) != 3 {
		t.Fatalf("TopWords(100) len = %d, want 3", len(got))
	}
}

func TestVocabBijectionProperty(t *testing.T) {
	v := NewVocab()
	seen := map[string]int32{}
	f := func(raw uint8) bool {
		stem := "w" + string(rune('a'+raw%26)) // cheap deterministic word-ish key
		id := v.Intern(stem, stem)
		if prev, ok := seen[stem]; ok && prev != id {
			return false
		}
		seen[stem] = id
		return v.Word(id) == stem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
