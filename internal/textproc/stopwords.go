package textproc

import "strings"

// stopwordList is a standard English stop-word list (the classic
// snowball/NLTK set plus a handful of corpus-frequent function words).
// The paper removes stop words "for the mining and topic modeling
// steps" and re-inserts them for display (§7.1).
var stopwordList = strings.Fields(`
a about above after again against all am an and any are aren't as at
be because been before being below between both but by
can cannot can't could couldn't
did didn't do does doesn't doing don't down during
each
few for from further
had hadn't has hasn't have haven't having he he'd he'll he's her here
here's hers herself him himself his how how's
i i'd i'll i'm i've if in into is isn't it it's its itself
let's
me more most mustn't my myself
no nor not
of off on once only or other ought our ours ourselves out over own
same shan't she she'd she'll she's should shouldn't so some such
than that that's the their theirs them themselves then there there's
these they they'd they'll they're they've this those through to too
under until up upon us
very via
was wasn't we we'd we'll we're we've were weren't what what's when
when's where where's which while who who's whom why why's will with
won't would wouldn't
you you'd you'll you're you've your yours yourself yourselves
also among amongst anyhow anyway became become becomes becoming
besides beyond cant co con could de describe done due eg etc even ever
every everyone everything everywhere except fifty first five former
formerly four found get give go had hence hereafter hereby herein
hereupon however hundred ie inc indeed interest latter latterly least
less ltd made many may meanwhile might mine moreover much must namely
neither never nevertheless next nine nobody none noone nothing now
nowhere often one onto others otherwise part per perhaps please put
rather re seem seemed seeming seems several she since six sixty
someone something sometime sometimes somewhere still take ten thence
thereafter thereby therefore therein thereupon thick thin third three
thru thus together toward towards twelve twenty two un unless
us used using various want wants well whatever whence whenever
whereafter whereas whereby wherein whereupon wherever whether whither
whoever whole whose within without yet
`)

var stopwords = func() map[string]bool {
	m := make(map[string]bool, len(stopwordList))
	for _, w := range stopwordList {
		m[w] = true
	}
	return m
}()

// IsStopword reports whether the lowercase token w is an English stop
// word.
func IsStopword(w string) bool { return stopwords[w] }

// StopwordCount returns the size of the stop-word table (useful for
// sanity checks and documentation).
func StopwordCount() int { return len(stopwords) }
