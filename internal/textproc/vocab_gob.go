package textproc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// vocabWire is the gob wire form of a Vocab. The byWord index is not
// transmitted (it is rebuilt on decode from the word list), and each
// stem's surface-form votes are flattened to parallel slices sorted by
// form — gob encodes maps in random iteration order, and a sorted wire
// form keeps serialisation byte-deterministic for identical inputs.
type vocabWire struct {
	Words         []string
	Counts        []int64
	SurfaceForms  [][]string
	SurfaceCounts [][]int
}

// GobEncode serialises the vocabulary (stems, frequencies, surface-form
// votes) so corpora and pipeline snapshots can be persisted. Identical
// vocabularies encode to identical bytes.
func (v *Vocab) GobEncode() ([]byte, error) {
	w := vocabWire{
		Words:         v.words,
		Counts:        v.counts,
		SurfaceForms:  make([][]string, len(v.surface)),
		SurfaceCounts: make([][]int, len(v.surface)),
	}
	for id, votes := range v.surface {
		if len(votes) == 0 {
			continue
		}
		sorted := make([]surfaceVote, len(votes))
		copy(sorted, votes)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].form < sorted[b].form })
		forms := make([]string, len(sorted))
		counts := make([]int, len(sorted))
		for i, sv := range sorted {
			forms[i] = sv.form
			counts[i] = sv.n
		}
		w.SurfaceForms[id] = forms
		w.SurfaceCounts[id] = counts
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("textproc: encoding vocab: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode restores a vocabulary serialised by GobEncode, rebuilding
// the stem-to-id index and the surface-form maps.
func (v *Vocab) GobDecode(data []byte) error {
	var w vocabWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("textproc: decoding vocab: %w", err)
	}
	if len(w.Counts) != len(w.Words) ||
		len(w.SurfaceForms) != len(w.Words) || len(w.SurfaceCounts) != len(w.Words) {
		return fmt.Errorf("textproc: decoding vocab: inconsistent lengths (%d words, %d counts, %d surface lists)",
			len(w.Words), len(w.Counts), len(w.SurfaceForms))
	}
	v.words = w.Words
	v.counts = w.Counts
	v.byWord = make(map[string]int32, len(w.Words))
	for i, s := range w.Words {
		v.byWord[s] = int32(i)
	}
	v.surface = make([][]surfaceVote, len(w.Words))
	for id, forms := range w.SurfaceForms {
		if len(forms) != len(w.SurfaceCounts[id]) {
			return fmt.Errorf("textproc: decoding vocab: stem %d has %d surface forms but %d counts",
				id, len(forms), len(w.SurfaceCounts[id]))
		}
		if len(forms) == 0 {
			continue
		}
		votes := make([]surfaceVote, len(forms))
		for i, s := range forms {
			votes[i] = surfaceVote{form: s, n: w.SurfaceCounts[id][i]}
		}
		v.surface[id] = votes
	}
	return nil
}
