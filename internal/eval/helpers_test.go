package eval

import (
	"strings"

	"topmine/internal/textproc"
)

func splitFields(s string) []string { return strings.Fields(s) }
func isStop(w string) bool          { return textproc.IsStopword(w) }
func stem(w string) string          { return textproc.Stem(w) }
