package eval

import (
	"math"

	"topmine/internal/baselines"
	"topmine/internal/xrand"
)

// IntrusionResult reports the phrase-intrusion task of Figure 3.
type IntrusionResult struct {
	Method    string
	Questions int
	// CorrectPerAnnotator[i] is annotator i's number of correct
	// answers; Avg is their mean (the paper's y-axis).
	CorrectPerAnnotator []int
	Avg                 float64
}

// Intrusion builds the paper's intrusion questions from a method's
// topics — three phrases sampled from one topic's top list plus one
// intruder from another topic — and has simulated annotators identify
// the intruder. An annotator ranks each candidate by its mean document
// co-occurrence NPMI with the other three and picks the lowest;
// annotators differ by zero-mean noise on the similarities, emulating
// inter-annotator variance.
func Intrusion(idx *Index, method string, topics []baselines.TopicPhrases,
	questions, annotators int, noise float64, seed uint64) IntrusionResult {

	rng := xrand.New(seed)
	res := IntrusionResult{Method: method, CorrectPerAnnotator: make([]int, annotators)}

	// Topics eligible as question sources need >= 3 phrases; intruder
	// sources need >= 1.
	var sources []int
	for i, tp := range topics {
		if len(tp.Phrases) >= 3 {
			sources = append(sources, i)
		}
	}
	if len(sources) < 2 {
		return res // method produced too few phrases to be evaluated
	}
	type question struct {
		cands    [4][]int32
		intruder int
	}
	var qs []question
	for len(qs) < questions {
		src := sources[rng.Intn(len(sources))]
		oth := sources[rng.Intn(len(sources))]
		if oth == src {
			continue
		}
		ps := topics[src].Phrases
		perm := rng.Perm(len(ps))
		var q question
		for i := 0; i < 3; i++ {
			q.cands[i] = ps[perm[i%len(perm)]].Words
		}
		q.intruder = rng.Intn(4)
		intr := topics[oth].Phrases[rng.Intn(len(topics[oth].Phrases))].Words
		if q.intruder != 3 {
			q.cands[3] = q.cands[q.intruder]
		}
		q.cands[q.intruder] = intr
		qs = append(qs, q)
	}
	res.Questions = len(qs)

	// Pre-compute pairwise NPMI per question, then let each annotator
	// answer with their own noise stream.
	type simMatrix [4][4]float64
	sims := make([]simMatrix, len(qs))
	for qi, q := range qs {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				s := idx.PhraseSim(q.cands[i], q.cands[j])
				sims[qi][i][j] = s
				sims[qi][j][i] = s
			}
		}
	}
	for a := 0; a < annotators; a++ {
		arng := xrand.New(seed + 1000 + uint64(a))
		correct := 0
		for qi, q := range qs {
			worst, worstScore := 0, math.Inf(1)
			for i := 0; i < 4; i++ {
				var mean float64
				for j := 0; j < 4; j++ {
					if j != i {
						mean += sims[qi][i][j]
					}
				}
				mean = mean/3 + noise*arng.Normal()
				if mean < worstScore {
					worst, worstScore = i, mean
				}
			}
			if worst == q.intruder {
				correct++
			}
		}
		res.CorrectPerAnnotator[a] = correct
		res.Avg += float64(correct)
	}
	res.Avg /= float64(annotators)
	return res
}

// Coherence rates each topic's phrase list by mean pairwise document
// NPMI of its top phrases — the automatic stand-in for the experts'
// 1-10 coherence ratings of Figure 4 — and returns the mean over
// topics. Topics with fewer than two phrases rate 0 (uninterpretable).
func Coherence(idx *Index, topics []baselines.TopicPhrases, topN int) float64 {
	var total float64
	n := 0
	for _, tp := range topics {
		ps := tp.Phrases
		if len(ps) > topN {
			ps = ps[:topN]
		}
		if len(ps) < 2 {
			n++
			continue
		}
		var sum float64
		pairs := 0
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				sum += idx.PhraseSim(ps[i].Words, ps[j].Words)
				pairs++
			}
		}
		total += sum / float64(pairs)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Quality rates phrase lists by collocation strength: the mean
// adjacency NPMI of the top phrases — the automatic stand-in for the
// experts' phrase-quality ratings of Figure 5. Methods that emit
// unordered or non-contiguous word sets score poorly because their
// "phrases" are not realised in text.
func Quality(idx *Index, topics []baselines.TopicPhrases, topN int) float64 {
	var total float64
	n := 0
	for _, tp := range topics {
		ps := tp.Phrases
		if len(ps) > topN {
			ps = ps[:topN]
		}
		for _, p := range ps {
			total += idx.AdjacencyNPMI(p.Words)
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return total / float64(n)
}

// ZScores standardises values to zero mean, unit variance — the
// normalisation the paper applies to each expert's ratings before
// averaging (Figures 4-5). A constant slice maps to all zeros.
func ZScores(values []float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 {
		return out
	}
	var mean float64
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	var variance float64
	for _, v := range values {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(values))
	sd := math.Sqrt(variance)
	if sd == 0 {
		return out
	}
	for i, v := range values {
		out[i] = (v - mean) / sd
	}
	return out
}
