package eval

import (
	"math"
	"strings"

	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/textproc"
)

// Ground-truth evaluation against synthetic corpora. The paper's real
// datasets provide no labels, so its evaluation leans on human studies;
// planted corpora let us additionally measure, mechanically, (a) how
// many planted collocations a method surfaces and (b) how pure the
// learned document-topic structure is versus the planted topics.

// ResolvePhrase maps a planted surface phrase to the id sequence the
// pipeline produces for it (stop words removed, words stemmed). The
// second result is false when any non-stop word is missing from the
// vocabulary.
func ResolvePhrase(c *corpus.Corpus, phrase string) ([]int32, bool) {
	var out []int32
	for _, w := range strings.Fields(phrase) {
		if textproc.IsStopword(w) {
			continue
		}
		id, ok := c.Vocab.ID(textproc.Stem(w))
		if !ok {
			return nil, false
		}
		out = append(out, id)
	}
	return out, true
}

// Recovery reports planted-phrase recovery of one method's output.
type Recovery struct {
	Planted   int // planted phrases resolvable to >= 2 pipeline tokens
	Recovered int // of those, surfaced in some topic's list
	Extra     int // surfaced phrases that were not planted
	Precision float64
	Recall    float64
}

// PhraseRecovery measures how many planted multi-word phrases appear
// anywhere in the method's per-topic phrase lists, and how many listed
// phrases are not planted. Reordered itemsets count as recovered only
// if they match a planted phrase exactly, which penalises unordered
// methods the same way a human reader would.
func PhraseRecovery(c *corpus.Corpus, planted []string, topics []baselines.TopicPhrases) Recovery {
	plantedKeys := make(map[string]bool)
	var rec Recovery
	for _, p := range planted {
		ids, ok := ResolvePhrase(c, p)
		if !ok || len(ids) < 2 {
			continue
		}
		rec.Planted++
		plantedKeys[counter.Key(ids)] = true
	}
	listed := make(map[string]bool)
	for _, tp := range topics {
		for _, p := range tp.Phrases {
			listed[counter.Key(p.Words)] = true
		}
	}
	recovered := make(map[string]bool)
	for key := range listed {
		if plantedKeys[key] {
			recovered[key] = true
		} else {
			rec.Extra++
		}
	}
	rec.Recovered = len(recovered)
	if len(listed) > 0 {
		rec.Precision = float64(rec.Recovered) / float64(len(listed))
	}
	if rec.Planted > 0 {
		rec.Recall = float64(rec.Recovered) / float64(rec.Planted)
	}
	return rec
}

// Purity measures document-cluster purity: assign every document to
// its model topic (argmax), then score the fraction of documents whose
// cluster's majority ground-truth label matches their own.
func Purity(docTopics, labels []int, k int) float64 {
	if len(docTopics) != len(labels) || len(labels) == 0 {
		return 0
	}
	// counts[cluster][label]
	counts := make(map[int]map[int]int)
	for i, c := range docTopics {
		m := counts[c]
		if m == nil {
			m = make(map[int]int)
			counts[c] = m
		}
		m[labels[i]]++
	}
	correct := 0
	for _, m := range counts {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(labels))
}

// NMI computes normalised mutual information between the model's
// document-topic assignment and the ground-truth labels (arithmetic
// normalisation), in [0, 1].
func NMI(docTopics, labels []int) float64 {
	n := len(docTopics)
	if n == 0 || n != len(labels) {
		return 0
	}
	joint := make(map[[2]int]float64)
	ca := make(map[int]float64)
	cb := make(map[int]float64)
	for i := range docTopics {
		joint[[2]int{docTopics[i], labels[i]}]++
		ca[docTopics[i]]++
		cb[labels[i]]++
	}
	fn := float64(n)
	var mi float64
	for key, nij := range joint {
		pij := nij / fn
		pi := ca[key[0]] / fn
		pj := cb[key[1]] / fn
		mi += pij * math.Log(pij/(pi*pj))
	}
	entropy := func(m map[int]float64) float64 {
		var h float64
		for _, c := range m {
			p := c / fn
			h -= p * math.Log(p)
		}
		return h
	}
	ha, hb := entropy(ca), entropy(cb)
	if ha == 0 || hb == 0 {
		return 0
	}
	return 2 * mi / (ha + hb)
}
