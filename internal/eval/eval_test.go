package eval

import (
	"math"
	"testing"

	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/synth"
)

func buildIdx(t *testing.T) (*Index, *corpus.Corpus) {
	t.Helper()
	docs := []string{
		"data mining conference on data mining",
		"data mining and machine learning",
		"machine learning models learn",
		"deep machine learning advances",
		"the weather is sunny today",
		"sunny weather continues all week",
	}
	c := corpus.FromStrings(docs, corpus.DefaultBuildOptions())
	return BuildIndex(c), c
}

func ids(t *testing.T, c *corpus.Corpus, words ...string) []int32 {
	t.Helper()
	out := make([]int32, len(words))
	for i, w := range words {
		id, ok := c.Vocab.ID(w)
		if !ok {
			t.Fatalf("word %q missing", w)
		}
		out[i] = id
	}
	return out
}

func TestDocFreqSingleWord(t *testing.T) {
	idx, c := buildIdx(t)
	if got := idx.DocFreq(ids(t, c, "data")); got != 2 {
		t.Fatalf("DocFreq(data) = %d, want 2", got)
	}
	if got := idx.DocFreq(ids(t, c, "sunni")); got != 2 { // "sunny" stems to "sunni"
		t.Fatalf("DocFreq(sunny) = %d, want 2", got)
	}
}

func TestDocFreqPhrase(t *testing.T) {
	idx, c := buildIdx(t)
	if got := idx.DocFreq(ids(t, c, "machin", "learn")); got != 3 {
		t.Fatalf("DocFreq(machine learning) = %d, want 3", got)
	}
}

func TestDocFreqAbsentWord(t *testing.T) {
	idx, _ := buildIdx(t)
	if got := idx.DocFreq([]int32{9999}); got != 0 {
		t.Fatalf("DocFreq(absent) = %d, want 0", got)
	}
}

func TestDocFreqDuplicateWords(t *testing.T) {
	idx, c := buildIdx(t)
	a := idx.DocFreq(ids(t, c, "data", "data"))
	b := idx.DocFreq(ids(t, c, "data"))
	if a != b {
		t.Fatalf("duplicate words changed DocFreq: %d vs %d", a, b)
	}
}

func TestNPMIRelatedVsUnrelated(t *testing.T) {
	idx, c := buildIdx(t)
	related := idx.NPMI(ids(t, c, "data"), ids(t, c, "mine"))
	unrelated := idx.NPMI(ids(t, c, "data"), ids(t, c, "weather"))
	if related <= unrelated {
		t.Fatalf("NPMI(data,mining)=%v should exceed NPMI(data,weather)=%v", related, unrelated)
	}
	if unrelated != -1 {
		t.Fatalf("never-co-occurring pair should be -1, got %v", unrelated)
	}
	if related < -1 || related > 1 {
		t.Fatalf("NPMI out of range: %v", related)
	}
}

func TestAdjacencyNPMIOrderedVsScrambled(t *testing.T) {
	idx, c := buildIdx(t)
	good := idx.AdjacencyNPMI(ids(t, c, "machin", "learn"))
	bad := idx.AdjacencyNPMI(ids(t, c, "learn", "machin")) // reversed order never adjacent
	if good <= bad {
		t.Fatalf("ordered phrase %v should beat scrambled %v", good, bad)
	}
	if bad != -1 {
		t.Fatalf("non-adjacent pair should be -1, got %v", bad)
	}
}

func TestAdjacencyNPMIUnigram(t *testing.T) {
	idx, c := buildIdx(t)
	if got := idx.AdjacencyNPMI(ids(t, c, "data")); got != 0 {
		t.Fatalf("unigram adjacency = %v, want 0", got)
	}
}

func TestZScores(t *testing.T) {
	z := ZScores([]float64{1, 2, 3, 4, 5})
	var mean, variance float64
	for _, v := range z {
		mean += v
	}
	mean /= float64(len(z))
	for _, v := range z {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(z))
	if math.Abs(mean) > 1e-12 || math.Abs(variance-1) > 1e-12 {
		t.Fatalf("z-scores mean=%v var=%v", mean, variance)
	}
	if z[0] >= z[4] {
		t.Fatal("z-scores must preserve order")
	}
}

func TestZScoresConstant(t *testing.T) {
	for _, v := range ZScores([]float64{2, 2, 2}) {
		if v != 0 {
			t.Fatal("constant input should map to zeros")
		}
	}
	if got := ZScores(nil); len(got) != 0 {
		t.Fatal("nil input should map to empty")
	}
}

// syntheticTopics builds two well-separated topics plus helpers from a
// planted corpus for the task-level tests.
func syntheticTopics(t *testing.T) (*Index, []baselines.TopicPhrases, []baselines.TopicPhrases) {
	t.Helper()
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 800, Seed: 51}, corpus.DefaultBuildOptions())
	idx := BuildIndex(c)
	// "Good" topics: phrases drawn from the planted per-topic phrase
	// inventories, resolved through the pipeline vocabulary.
	var good []baselines.TopicPhrases
	for ti, topic := range spec.Topics {
		tp := baselines.TopicPhrases{Topic: ti}
		for _, p := range topic.Phrases {
			if words, ok := resolvePhrase(c, p); ok && len(words) >= 2 {
				tp.Phrases = append(tp.Phrases, baselines.RankedPhrase{
					Words: words, Display: p, Score: 1,
				})
			}
		}
		good = append(good, tp)
	}
	// "Bad" topics: same phrases dealt round-robin so every list mixes
	// all themes.
	bad := make([]baselines.TopicPhrases, len(good))
	for i := range bad {
		bad[i].Topic = i
	}
	n := 0
	for _, tp := range good {
		for _, p := range tp.Phrases {
			bad[n%len(bad)].Phrases = append(bad[n%len(bad)].Phrases, p)
			n++
		}
	}
	return idx, good, bad
}

func resolvePhrase(c *corpus.Corpus, phrase string) ([]int32, bool) {
	var out []int32
	for _, w := range splitFields(phrase) {
		if isStop(w) {
			continue
		}
		id, ok := c.Vocab.ID(stem(w))
		if !ok {
			return nil, false
		}
		out = append(out, id)
	}
	return out, true
}

func TestCoherenceSeparatesGoodFromBad(t *testing.T) {
	idx, good, bad := syntheticTopics(t)
	cg := Coherence(idx, good, 10)
	cb := Coherence(idx, bad, 10)
	if cg <= cb {
		t.Fatalf("coherent topics %v should beat mixed topics %v", cg, cb)
	}
}

func TestIntrusionEasierOnSeparatedTopics(t *testing.T) {
	idx, good, bad := syntheticTopics(t)
	rg := Intrusion(idx, "good", good, 20, 3, 0.02, 99)
	rb := Intrusion(idx, "bad", bad, 20, 3, 0.02, 99)
	if rg.Questions != 20 || len(rg.CorrectPerAnnotator) != 3 {
		t.Fatalf("question bookkeeping wrong: %+v", rg)
	}
	if rg.Avg <= rb.Avg {
		t.Fatalf("intrusion on separated topics (%v) should beat mixed (%v)", rg.Avg, rb.Avg)
	}
	if rg.Avg < 10 {
		t.Fatalf("separated topics should be mostly solvable, got %v/20", rg.Avg)
	}
}

func TestIntrusionTooFewPhrases(t *testing.T) {
	idx, _, _ := syntheticTopics(t)
	empty := []baselines.TopicPhrases{{Topic: 0}, {Topic: 1}}
	r := Intrusion(idx, "empty", empty, 20, 3, 0.02, 1)
	if r.Questions != 0 || r.Avg != 0 {
		t.Fatalf("empty method should yield zero questions: %+v", r)
	}
}

func TestQualityRealPhrasesBeatScrambled(t *testing.T) {
	idx, good, _ := syntheticTopics(t)
	// Scramble: reverse each phrase's word order.
	scrambled := make([]baselines.TopicPhrases, len(good))
	for i, tp := range good {
		scrambled[i].Topic = tp.Topic
		for _, p := range tp.Phrases {
			rev := make([]int32, len(p.Words))
			for j, w := range p.Words {
				rev[len(p.Words)-1-j] = w
			}
			scrambled[i].Phrases = append(scrambled[i].Phrases,
				baselines.RankedPhrase{Words: rev, Display: p.Display, Score: 1})
		}
	}
	qg := Quality(idx, good, 10)
	qs := Quality(idx, scrambled, 10)
	if qg <= qs {
		t.Fatalf("real phrases %v should beat scrambled %v", qg, qs)
	}
}
