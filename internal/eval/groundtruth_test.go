package eval

import (
	"math"
	"testing"

	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/synth"
)

func TestResolvePhrase(t *testing.T) {
	c := corpus.FromStrings([]string{"support vector machines rock"}, corpus.DefaultBuildOptions())
	ids, ok := ResolvePhrase(c, "support vector machines")
	if !ok || len(ids) != 3 {
		t.Fatalf("resolve failed: %v %v", ids, ok)
	}
	// Stop words inside phrases are skipped.
	c2 := corpus.FromStrings([]string{"house and senate pass bills"}, corpus.DefaultBuildOptions())
	ids2, ok := ResolvePhrase(c2, "house and senate")
	if !ok || len(ids2) != 2 {
		t.Fatalf("stop-word skip failed: %v", ids2)
	}
	if _, ok := ResolvePhrase(c, "totally absent words"); ok {
		t.Fatal("absent words resolved")
	}
}

func TestPhraseRecovery(t *testing.T) {
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 800, Seed: 61}, corpus.DefaultBuildOptions())
	// Perfect method: lists exactly the planted phrases of each topic.
	var perfect []baselines.TopicPhrases
	for ti, topic := range spec.Topics {
		tp := baselines.TopicPhrases{Topic: ti}
		for _, p := range topic.Phrases {
			if ids, ok := ResolvePhrase(c, p); ok && len(ids) >= 2 {
				tp.Phrases = append(tp.Phrases, baselines.RankedPhrase{Words: ids, Display: p, Score: 1})
			}
		}
		perfect = append(perfect, tp)
	}
	rec := PhraseRecovery(c, spec.PlantedPhrases(), perfect)
	if rec.Planted == 0 {
		t.Fatal("no resolvable planted phrases")
	}
	if rec.Recall < 0.95 {
		t.Fatalf("perfect method recall = %v", rec.Recall)
	}
	if rec.Precision < 0.95 {
		t.Fatalf("perfect method precision = %v (extra=%d)", rec.Precision, rec.Extra)
	}

	// Junk method: random scrambles of vocabulary ids.
	junk := []baselines.TopicPhrases{{Topic: 0, Phrases: []baselines.RankedPhrase{
		{Words: []int32{1, 3}, Display: "junk a", Score: 1},
		{Words: []int32{5, 7}, Display: "junk b", Score: 1},
	}}}
	jrec := PhraseRecovery(c, spec.PlantedPhrases(), junk)
	if jrec.Recall >= rec.Recall {
		t.Fatal("junk method should recall less than the perfect method")
	}
}

func TestPhraseRecoveryDeduplicates(t *testing.T) {
	c := corpus.FromStrings([]string{"support vector machines rock"}, corpus.DefaultBuildOptions())
	ids, _ := ResolvePhrase(c, "support vector machines")
	// The same phrase listed in two topics counts once.
	topics := []baselines.TopicPhrases{
		{Topic: 0, Phrases: []baselines.RankedPhrase{{Words: ids, Display: "x", Score: 1}}},
		{Topic: 1, Phrases: []baselines.RankedPhrase{{Words: ids, Display: "x", Score: 1}}},
	}
	rec := PhraseRecovery(c, []string{"support vector machines"}, topics)
	if rec.Recovered != 1 || rec.Extra != 0 {
		t.Fatalf("dedup failed: %+v", rec)
	}
	_ = counter.Key(ids)
}

func TestPurityPerfectAndRandom(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	perfect := []int{2, 2, 2, 0, 0, 0, 1, 1, 1} // relabeled but pure
	if got := Purity(perfect, labels, 3); got != 1 {
		t.Fatalf("pure clustering purity = %v", got)
	}
	mixed := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if got := Purity(mixed, labels, 3); got >= 0.5 {
		t.Fatalf("mixed clustering purity = %v, want < 0.5", got)
	}
}

func TestPurityEdgeCases(t *testing.T) {
	if Purity(nil, nil, 3) != 0 {
		t.Fatal("empty purity should be 0")
	}
	if Purity([]int{0}, []int{0, 1}, 2) != 0 {
		t.Fatal("misaligned purity should be 0")
	}
}

func TestNMIBounds(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	if got := NMI([]int{1, 1, 2, 2, 0, 0}, labels); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect NMI = %v, want 1", got)
	}
	same := NMI([]int{0, 0, 0, 0, 0, 0}, labels)
	if same != 0 {
		t.Fatalf("single-cluster NMI = %v, want 0", same)
	}
	random := NMI([]int{0, 1, 0, 1, 0, 1}, labels)
	if random < 0 || random > 0.5 {
		t.Fatalf("random-ish NMI = %v", random)
	}
}

func TestGenerateLabeledMatchesGenerate(t *testing.T) {
	spec := synth.TwentyConf()
	opt := synth.Options{Docs: 50, Seed: 67}
	plain := synth.Generate(spec, opt)
	labeled, labels := synth.GenerateLabeled(spec, opt)
	if len(labeled) != len(plain) || len(labels) != len(plain) {
		t.Fatal("length mismatch")
	}
	for i := range plain {
		if plain[i] != labeled[i] {
			t.Fatalf("doc %d differs between Generate and GenerateLabeled", i)
		}
	}
	for _, l := range labels {
		if l < 0 || l >= spec.NumTopics() {
			t.Fatalf("label %d out of range", l)
		}
	}
	// With a sparse Dirichlet the labels should span several topics.
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) < 2 {
		t.Fatal("labels degenerate")
	}
}

func TestPhraseSimProperties(t *testing.T) {
	docs := []string{
		"data mining and machine learning",
		"data mining conferences on data",
		"machine learning with data mining",
		"sunny weather all week",
		"weather stays sunny",
	}
	c := corpus.FromStrings(docs, corpus.DefaultBuildOptions())
	idx := BuildIndex(c)
	dm, _ := ResolvePhrase(c, "data mining")
	ml, _ := ResolvePhrase(c, "machine learning")
	sw, _ := ResolvePhrase(c, "sunny weather")
	related := idx.PhraseSim(dm, ml)
	unrelated := idx.PhraseSim(dm, sw)
	if related <= unrelated {
		t.Fatalf("PhraseSim(data mining, machine learning)=%v should beat vs sunny weather=%v",
			related, unrelated)
	}
	self := idx.PhraseSim(dm, dm)
	if self < related {
		t.Fatalf("self-similarity %v below cross similarity %v", self, related)
	}
}
