// Package eval implements the paper's evaluation harness (§7.2): the
// phrase-intrusion task of Figure 3 and the coherence / phrase-quality
// ratings of Figures 4-5, with automatic raters standing in for the
// human annotators and domain experts (the substitution is documented
// in DESIGN.md §5), plus the z-score standardisation the paper applies
// to expert ratings.
package eval

import (
	"math"
	"sort"

	"topmine/internal/corpus"
)

// Index holds document-co-occurrence statistics: for every word, the
// sorted list of documents containing it, and corpus-level adjacency
// (bigram) counts for collocation-strength scoring.
type Index struct {
	numDocs int
	docsOf  map[int32][]int32
	bigram  map[int64]int64
	uniTok  map[int32]int64
	tokens  int64
}

func pairKey(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

// BuildIndex scans the corpus once.
func BuildIndex(c *corpus.Corpus) *Index {
	idx := &Index{
		numDocs: c.NumDocs(),
		docsOf:  make(map[int32][]int32),
		bigram:  make(map[int64]int64),
		uniTok:  make(map[int32]int64),
	}
	for d, doc := range c.Docs {
		seen := make(map[int32]bool)
		for si := range doc.Segments {
			words := doc.Segments[si].Words()
			for i, w := range words {
				idx.uniTok[w]++
				idx.tokens++
				if !seen[w] {
					seen[w] = true
					idx.docsOf[w] = append(idx.docsOf[w], int32(d))
				}
				if i+1 < len(words) {
					idx.bigram[pairKey(w, words[i+1])]++
				}
			}
		}
	}
	return idx
}

// NumDocs returns the corpus size.
func (idx *Index) NumDocs() int { return idx.numDocs }

// DocFreq returns the number of documents containing every word of the
// phrase (bag co-occurrence, the standard basis for topic coherence).
func (idx *Index) DocFreq(words []int32) int {
	lists := make([][]int32, 0, len(words))
	seen := map[int32]bool{}
	for _, w := range words {
		if seen[w] {
			continue
		}
		seen[w] = true
		l, ok := idx.docsOf[w]
		if !ok {
			return 0
		}
		lists = append(lists, l)
	}
	if len(lists) == 0 {
		return 0
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cur := lists[0]
	for _, l := range lists[1:] {
		cur = intersect(cur, l)
		if len(cur) == 0 {
			return 0
		}
	}
	return len(cur)
}

// JointDocFreq returns the number of documents containing every word
// of both phrases.
func (idx *Index) JointDocFreq(a, b []int32) int {
	merged := make([]int32, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	return idx.DocFreq(merged)
}

func intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NPMI computes normalised pointwise mutual information between two
// phrases at the document level, in [-1, 1]; -1 when they never
// co-occur. A smoothing count of 1 keeps the measure defined for rare
// phrases.
func (idx *Index) NPMI(a, b []int32) float64 {
	dfA, dfB := idx.DocFreq(a), idx.DocFreq(b)
	dfAB := idx.JointDocFreq(a, b)
	if dfAB == 0 {
		return -1
	}
	d := float64(idx.numDocs)
	pA, pB := float64(dfA)/d, float64(dfB)/d
	pAB := float64(dfAB) / d
	pmi := math.Log(pAB / (pA * pB))
	denom := -math.Log(pAB)
	if denom <= 0 {
		return 1 // co-occur in every document
	}
	return pmi / denom
}

// wordNPMI is document-level NPMI between two single words.
func (idx *Index) wordNPMI(a, b int32) float64 {
	if a == b {
		return 1
	}
	la, lb := idx.docsOf[a], idx.docsOf[b]
	if len(la) == 0 || len(lb) == 0 {
		return -1
	}
	joint := len(intersect(la, lb))
	if joint == 0 {
		return -1
	}
	d := float64(idx.numDocs)
	pA, pB := float64(len(la))/d, float64(len(lb))/d
	pAB := float64(joint) / d
	pmi := math.Log(pAB / (pA * pB))
	denom := -math.Log(pAB)
	if denom <= 0 {
		return 1
	}
	return pmi / denom
}

// PhraseSim scores the topical relatedness of two phrases as the mean
// document-level NPMI over all cross pairs of their constituent words.
// This is the standard automatic topic-coherence measure (NPMI over
// top terms) generalised to phrases; it is far less sparse than whole-
// phrase containment, which matters on short documents such as titles.
func (idx *Index) PhraseSim(a, b []int32) float64 {
	var sum float64
	n := 0
	for _, wa := range a {
		for _, wb := range b {
			sum += idx.wordNPMI(wa, wb)
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// AdjacencyNPMI measures collocation strength of an *ordered* phrase:
// the mean NPMI of its adjacent word pairs computed from corpus
// bigram-adjacency counts. Phrases whose words never actually occur
// next to each other — e.g. unordered itemsets — score -1 on the
// missing pairs, which is exactly how a human rater penalises
// "agglomerations of words assigned to the same topic" (§7.2).
func (idx *Index) AdjacencyNPMI(words []int32) float64 {
	if len(words) < 2 {
		return 0
	}
	var sum float64
	n := 0
	for i := 0; i+1 < len(words); i++ {
		sum += idx.bigramNPMI(words[i], words[i+1])
		n++
	}
	return sum / float64(n)
}

func (idx *Index) bigramNPMI(a, b int32) float64 {
	nab := idx.bigram[pairKey(a, b)]
	if nab == 0 {
		return -1
	}
	na, nb := idx.uniTok[a], idx.uniTok[b]
	pa := float64(na) / float64(idx.tokens)
	pb := float64(nb) / float64(idx.tokens)
	pab := float64(nab) / float64(idx.tokens)
	pmi := math.Log(pab / (pa * pb))
	denom := -math.Log(pab)
	if denom <= 0 {
		return 1
	}
	return pmi / denom
}
