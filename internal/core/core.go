// Package core orchestrates the ToPMine framework — the paper's
// primary contribution: frequent contiguous phrase mining (Algorithm
// 1), significance-guided agglomerative segmentation (Algorithm 2) and
// phrase-constrained topic modeling (PhraseLDA) chained into one
// pipeline (§3). The public topmine package and the comparison
// harness both delegate here, so there is exactly one definition of
// "running ToPMine".
package core

import (
	"topmine/internal/corpus"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/topicmodel"
)

// Config is the complete parameterisation of the framework.
type Config struct {
	// MinSupport is the paper's ε; RelativeSupport, when positive,
	// raises it to that fraction of the corpus tokens (the paper's
	// "minimum support that grows linearly with corpus size", §4.1).
	MinSupport      int
	RelativeSupport float64
	// MaxPhraseLen bounds phrases (0 = unbounded).
	MaxPhraseLen int
	// SigAlpha is Algorithm 2's merge threshold α.
	SigAlpha float64
	// Score overrides the significance measure (nil = Eq. 1 t-stat).
	Score segment.ScoreFunc
	// K, Iterations, Alpha, Beta, OptimizeHyper parameterise PhraseLDA.
	K             int
	Iterations    int
	Alpha, Beta   float64
	OptimizeHyper bool
	// Seed drives all randomness; Workers parallelises mining and
	// segmentation; TopicWorkers > 1 selects the approximate parallel
	// Gibbs sampler.
	Seed         uint64
	Workers      int
	TopicWorkers int
	// OnIteration, when set, observes every Gibbs sweep.
	OnIteration func(int, *topicmodel.Model)
	// SweepStats, when set, receives per-sweep timing breakdowns from
	// parallel training (TopicWorkers > 1); serial sweeps do not report.
	SweepStats func(topicmodel.SweepStats)
}

// Artifacts carries every intermediate and final product of a run.
type Artifacts struct {
	Mined *phrasemine.Result
	Segs  []*segment.SegmentedDoc
	Docs  []topicmodel.Doc
	Model *topicmodel.Model
}

// EffectiveSupport resolves the support threshold for a corpus.
func (cfg Config) EffectiveSupport(c *corpus.Corpus) int {
	sup := cfg.MinSupport
	if cfg.RelativeSupport > 0 {
		if rs := int(cfg.RelativeSupport * float64(c.TotalTokens)); rs > sup {
			sup = rs
		}
	}
	if sup < 1 {
		sup = 1
	}
	return sup
}

// Mine runs Algorithm 1.
func Mine(c *corpus.Corpus, cfg Config) *phrasemine.Result {
	return phrasemine.Mine(c, phrasemine.Options{
		MinSupport: cfg.EffectiveSupport(c),
		MaxLen:     cfg.MaxPhraseLen,
		Workers:    cfg.Workers,
	})
}

// Segment runs Algorithm 2 on mined counts.
func Segment(c *corpus.Corpus, mined *phrasemine.Result, cfg Config) []*segment.SegmentedDoc {
	return segment.NewSegmenter(mined, segment.Options{
		Alpha:        cfg.SigAlpha,
		MaxPhraseLen: cfg.MaxPhraseLen,
		Score:        cfg.Score,
		Workers:      cfg.Workers,
	}).SegmentCorpus(c)
}

// Train fits PhraseLDA to a segmented corpus.
func Train(c *corpus.Corpus, segs []*segment.SegmentedDoc, cfg Config) ([]topicmodel.Doc, *topicmodel.Model) {
	docs := topicmodel.DocsFromSegmentation(c, segs)
	opt := topicmodel.Options{
		K:             cfg.K,
		Alpha:         cfg.Alpha,
		Beta:          cfg.Beta,
		Iterations:    cfg.Iterations,
		OptimizeHyper: cfg.OptimizeHyper,
		Seed:          cfg.Seed,
		OnIteration:   cfg.OnIteration,
		SweepStats:    cfg.SweepStats,
	}
	if cfg.TopicWorkers > 1 {
		return docs, topicmodel.TrainParallel(docs, c.Vocab.Size(), opt, cfg.TopicWorkers)
	}
	return docs, topicmodel.Train(docs, c.Vocab.Size(), opt)
}

// Run executes the full framework.
func Run(c *corpus.Corpus, cfg Config) *Artifacts {
	a := &Artifacts{}
	a.Mined = Mine(c, cfg)
	a.Segs = Segment(c, a.Mined, cfg)
	a.Docs, a.Model = Train(c, a.Segs, cfg)
	return a
}
