package core

import (
	"testing"

	"topmine/internal/corpus"
	"topmine/internal/synth"
	"topmine/internal/topicmodel"
)

func testConfig() Config {
	return Config{
		MinSupport: 5, MaxPhraseLen: 6, SigAlpha: 3,
		K: 5, Iterations: 40, Seed: 42, Workers: 1,
	}
}

func testCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	return synth.GenerateCorpus(synth.TwentyConf(),
		synth.Options{Docs: 300, Seed: 9}, corpus.DefaultBuildOptions())
}

func TestRunProducesAllArtifacts(t *testing.T) {
	c := testCorpus(t)
	a := Run(c, testConfig())
	if a.Mined == nil || a.Mined.Counts.Len() == 0 {
		t.Fatal("no mined phrases")
	}
	if len(a.Segs) != c.NumDocs() {
		t.Fatal("segmentation incomplete")
	}
	if len(a.Docs) != c.NumDocs() {
		t.Fatal("modeling docs incomplete")
	}
	if a.Model == nil || a.Model.K != 5 {
		t.Fatal("model missing")
	}
	if err := a.Model.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveSupport(t *testing.T) {
	c := testCorpus(t)
	cfg := testConfig()
	if got := cfg.EffectiveSupport(c); got != 5 {
		t.Fatalf("absolute support = %d, want 5", got)
	}
	cfg.RelativeSupport = 0.01
	if got := cfg.EffectiveSupport(c); got <= 5 {
		t.Fatalf("relative support not applied: %d", got)
	}
	cfg = Config{}
	if got := cfg.EffectiveSupport(c); got != 1 {
		t.Fatalf("support floor = %d, want 1", got)
	}
}

func TestOnIterationObserved(t *testing.T) {
	c := testCorpus(t)
	cfg := testConfig()
	cfg.Iterations = 7
	count := 0
	cfg.OnIteration = func(it int, m *topicmodel.Model) {
		count++
		if it != count {
			t.Fatalf("iteration %d reported as %d", count, it)
		}
		if m == nil {
			t.Fatal("nil model in callback")
		}
	}
	Run(c, cfg)
	if count != 7 {
		t.Fatalf("callback ran %d times, want 7", count)
	}
}

func TestParallelWorkersMatchSerialMining(t *testing.T) {
	c := testCorpus(t)
	cfg := testConfig()
	serial := Mine(c, cfg)
	cfg.Workers = 4
	parallel := Mine(c, cfg)
	if serial.Counts.Len() != parallel.Counts.Len() {
		t.Fatal("parallel mining diverges")
	}
}
