package corpus

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// ErrZstd marks zstd-compressed input, which this build cannot
// decompress natively (the Go standard library has no zstd reader and
// the project deliberately carries no third-party dependencies). Pipe
// the data through `zstd -dc` instead.
var ErrZstd = errors.New("corpus: zstd-compressed input is not supported; pipe it through `zstd -dc`")

// Compression magic bytes.
var (
	gzipMagic = []byte{0x1f, 0x8b}
	zstdMagic = []byte{0x28, 0xb5, 0x2f, 0xfd}
)

// MaybeDecompress sniffs the stream's leading magic bytes and, when
// they identify a gzip member, returns a reader of the decompressed
// stream — so `.gz` corpora load without a manual `zcat |` pipe.
// Uncompressed input passes through untouched (buffered); zstd input
// returns ErrZstd rather than feeding binary garbage to a tokenizer.
// Every file-opening corpus loader (LoadFile, LoadJSONLFile) and the
// CLI input path route through this.
func MaybeDecompress(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("corpus: sniffing input: %w", err)
	}
	if len(head) >= 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("corpus: opening gzip input: %w", err)
		}
		// Multi-member gzip files (e.g. from parallel compressors like
		// pigz) concatenate members; the reader consumes them all by
		// default, which is what a corpus loader wants.
		return zr, nil
	}
	if len(head) >= 4 && head[0] == zstdMagic[0] && head[1] == zstdMagic[1] &&
		head[2] == zstdMagic[2] && head[3] == zstdMagic[3] {
		return nil, ErrZstd
	}
	return br, nil
}
