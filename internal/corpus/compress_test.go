package corpus

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func gzipBytes(t *testing.T, chunks ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	// One gzip member per chunk: multi-member files are what parallel
	// compressors (pigz, bgzip) emit, and the reader must consume all.
	for _, c := range chunks {
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write([]byte(c)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestMaybeDecompressGzip(t *testing.T) {
	want := "alpha beta.\ngamma delta.\n"
	r, err := MaybeDecompress(bytes.NewReader(gzipBytes(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestMaybeDecompressMultiMember(t *testing.T) {
	r, err := MaybeDecompress(bytes.NewReader(gzipBytes(t, "first line\n", "second line\n")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first line\nsecond line\n" {
		t.Fatalf("multi-member gzip not fully consumed: %q", got)
	}
}

func TestMaybeDecompressPassthrough(t *testing.T) {
	for _, in := range []string{"plain text, no magic", "", "\x1f", "ab"} {
		r, err := MaybeDecompress(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != in {
			t.Fatalf("passthrough mangled %q into %q", in, got)
		}
	}
}

func TestMaybeDecompressZstd(t *testing.T) {
	_, err := MaybeDecompress(bytes.NewReader([]byte{0x28, 0xb5, 0x2f, 0xfd, 0, 0, 0}))
	if !errors.Is(err, ErrZstd) {
		t.Fatalf("want ErrZstd, got %v", err)
	}
}

// TestLoadFileGzip pins the satellite behaviour end to end: a .gz
// corpus file loads identically to its uncompressed twin, with no
// manual pipe.
func TestLoadFileGzip(t *testing.T) {
	docs := "good coffee great service.\nterrible coffee rude service.\n"
	dir := t.TempDir()
	plain := filepath.Join(dir, "docs.txt")
	gz := filepath.Join(dir, "docs.txt.gz")
	if err := os.WriteFile(plain, []byte(docs), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gz, gzipBytes(t, docs), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := LoadFile(plain, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(gz, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if w, g := want.ComputeStats(), got.ComputeStats(); w != g {
		t.Fatalf("gzip corpus differs: %v vs %v", w, g)
	}
}

func TestLoadJSONLFileGzip(t *testing.T) {
	jsonl := `{"text":"good coffee great service"}` + "\n" + `{"text":"rude service"}` + "\n"
	gz := filepath.Join(t.TempDir(), "docs.jsonl.gz")
	if err := os.WriteFile(gz, gzipBytes(t, jsonl), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadJSONLFile(gz, "text", DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 {
		t.Fatalf("got %d docs, want 2", c.NumDocs())
	}
}
