package corpus

import "topmine/internal/textproc"

// MapText tokenizes raw text against an existing vocabulary without
// mutating it: out-of-vocabulary words are dropped (treated like stop
// words, joining the following token's gap). This is the read-only
// path used when folding new documents into a trained model. The
// returned document owns a private token arena sized to the text, so
// mapped documents are independent of any training corpus.
func MapText(text string, v *textproc.Vocab, opt BuildOptions) *Document {
	doc := &Document{ID: -1}
	ar := newArena(opt.KeepSurface)
	for _, rawSeg := range textproc.Tokenize(text) {
		kept := textproc.Filter(rawSeg, opt.RemoveStopwords)
		if len(kept) == 0 {
			continue
		}
		off := ar.mark()
		var pendingGap string
		for _, tok := range kept {
			stem := tok.Surface
			if opt.Stem {
				stem = textproc.Stem(stem)
			}
			id, ok := v.ID(stem)
			if !ok {
				// OOV: absorb into the gap before the next kept token.
				// Gap strings are assembled only when they will be
				// stored — MapText runs on the serving hot path.
				if opt.KeepSurface {
					if pendingGap != "" {
						pendingGap += " "
					}
					if tok.Gap != "" {
						pendingGap += tok.Gap + " "
					}
					pendingGap += tok.Surface
				}
				continue
			}
			var gap string
			if opt.KeepSurface {
				gap = tok.Gap
				if pendingGap != "" {
					if gap != "" {
						gap = pendingGap + " " + gap
					} else {
						gap = pendingGap
					}
					pendingGap = ""
				}
				if ar.mark() == off {
					gap = "" // leading gap is never phrase-internal
				}
			}
			ar.push(id, tok.Surface, gap)
		}
		if seg := ar.seg(off); seg.Len() > 0 {
			doc.Segments = append(doc.Segments, seg)
		}
	}
	return doc
}
