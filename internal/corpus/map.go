package corpus

import "topmine/internal/textproc"

// MapText tokenizes raw text against an existing vocabulary without
// mutating it: out-of-vocabulary words are dropped (treated like stop
// words, joining the following token's gap). This is the read-only
// path used when folding new documents into a trained model.
func MapText(text string, v *textproc.Vocab, opt BuildOptions) *Document {
	doc := &Document{ID: -1}
	for _, rawSeg := range textproc.Tokenize(text) {
		kept := textproc.Filter(rawSeg, opt.RemoveStopwords)
		if len(kept) == 0 {
			continue
		}
		seg := Segment{}
		var pendingGap string
		for _, tok := range kept {
			stem := tok.Surface
			if opt.Stem {
				stem = textproc.Stem(stem)
			}
			id, ok := v.ID(stem)
			if !ok {
				// OOV: absorb into the gap before the next kept token.
				if pendingGap != "" {
					pendingGap += " "
				}
				if tok.Gap != "" {
					pendingGap += tok.Gap + " "
				}
				pendingGap += tok.Surface
				continue
			}
			seg.Words = append(seg.Words, id)
			if opt.KeepSurface {
				gap := tok.Gap
				if pendingGap != "" {
					if gap != "" {
						gap = pendingGap + " " + gap
					} else {
						gap = pendingGap
					}
					pendingGap = ""
				}
				if len(seg.Words) == 1 {
					gap = "" // leading gap is never phrase-internal
				}
				seg.Surface = append(seg.Surface, tok.Surface)
				seg.Gaps = append(seg.Gaps, gap)
			} else {
				pendingGap = ""
			}
		}
		if len(seg.Words) > 0 {
			doc.Segments = append(doc.Segments, seg)
		}
	}
	return doc
}
