package corpus

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// A Source yields raw documents one at a time, letting corpora of any
// size be built without materialising every document in memory. Next
// returns ok=false with a nil error when the source is exhausted; an
// error aborts the build and is returned to the caller verbatim.
type Source interface {
	Next() (doc string, ok bool, err error)
}

// maxLineBytes is the longest input line every corpus loader accepts.
const maxLineBytes = 16 * 1024 * 1024

// lineReader is the one bufio.Scanner wrapper behind every line-based
// loader: it applies the shared 16 MiB line cap, counts lines for
// error messages, and turns the scanner's bare bufio.ErrTooLong into
// an error naming the offending line and the limit.
type lineReader struct {
	sc   *bufio.Scanner
	line int // 1-based number of the last line returned by next
	max  int
}

func newLineReader(r io.Reader) *lineReader {
	return newLineReaderSize(r, maxLineBytes)
}

func newLineReaderSize(r io.Reader, max int) *lineReader {
	sc := bufio.NewScanner(r)
	buf := 64 * 1024
	if buf > max {
		buf = max
	}
	sc.Buffer(make([]byte, 0, buf), max)
	return &lineReader{sc: sc, max: max}
}

func (lr *lineReader) next() (string, bool) {
	if !lr.sc.Scan() {
		return "", false
	}
	lr.line++
	return lr.sc.Text(), true
}

// finish reports the terminal scanner state: nil at clean EOF, or an
// error prefixed with the loader context otherwise.
func (lr *lineReader) finish(what string) error {
	err := lr.sc.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("corpus: %s: line %d exceeds %d MiB", what, lr.line+1, lr.max>>20)
	}
	return fmt.Errorf("corpus: %s: %w", what, err)
}

// SliceSource yields each element of docs as one document.
func SliceSource(docs []string) Source { return &sliceSource{docs: docs} }

type sliceSource struct {
	docs []string
	i    int
}

func (s *sliceSource) Next() (string, bool, error) {
	if s.i >= len(s.docs) {
		return "", false, nil
	}
	doc := s.docs[s.i]
	s.i++
	return doc, true, nil
}

// LineSource yields one document per line of r. Lines up to 16 MiB are
// supported.
func LineSource(r io.Reader) Source { return &lineSource{lr: newLineReader(r)} }

type lineSource struct{ lr *lineReader }

func (s *lineSource) Next() (string, bool, error) {
	line, ok := s.lr.next()
	if !ok {
		return "", false, s.lr.finish("reading documents")
	}
	return line, true, nil
}

// JSONLSource yields one document per JSON-lines object of r, taking
// the document text from the given field (e.g. "text" for Yelp-style
// review dumps, "title" for DBLP-style records). Blank lines are
// skipped; lines that fail to parse or lack the field produce an error
// naming the line.
func JSONLSource(r io.Reader, field string) Source {
	return &jsonlSource{lr: newLineReader(r), field: field}
}

type jsonlSource struct {
	lr    *lineReader
	field string
}

func (s *jsonlSource) Next() (string, bool, error) {
	if s.field == "" {
		return "", false, fmt.Errorf("corpus: a JSONL source requires a field name")
	}
	for {
		line, ok := s.lr.next()
		if !ok {
			return "", false, s.lr.finish("reading JSONL")
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			return "", false, fmt.Errorf("corpus: line %d: %w", s.lr.line, err)
		}
		raw, ok := obj[s.field]
		if !ok {
			return "", false, fmt.Errorf("corpus: line %d: field %q missing", s.lr.line, s.field)
		}
		var text string
		if err := json.Unmarshal(raw, &text); err != nil {
			return "", false, fmt.Errorf("corpus: line %d: field %q is not a string: %w", s.lr.line, s.field, err)
		}
		return text, true, nil
	}
}

// TSVSource yields one document per row of tab-separated input, using
// the given zero-based column as the document text (other columns —
// ids, labels, dates — are ignored). Blank lines are skipped; rows
// with too few columns produce an error naming the line.
func TSVSource(r io.Reader, column int) Source {
	return &tsvSource{lr: newLineReader(r), column: column}
}

type tsvSource struct {
	lr     *lineReader
	column int
}

func (s *tsvSource) Next() (string, bool, error) {
	if s.column < 0 {
		return "", false, fmt.Errorf("corpus: a TSV source requires column >= 0")
	}
	for {
		line, ok := s.lr.next()
		if !ok {
			return "", false, s.lr.finish("reading TSV")
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		cols := strings.Split(line, "\t")
		if s.column >= len(cols) {
			return "", false, fmt.Errorf("corpus: line %d: column %d of %d missing", s.lr.line, s.column, len(cols))
		}
		return cols[s.column], true, nil
	}
}
