package corpus

import (
	"strings"
	"testing"
)

func buildTiny(t *testing.T) *Corpus {
	t.Helper()
	docs := []string{
		"Mining frequent patterns without candidate generation: a frequent pattern tree approach.",
		"Frequent pattern mining: current status and future directions.",
		"The house and senate passed the bill.",
	}
	return FromStrings(docs, DefaultBuildOptions())
}

func TestBuilderBasicShape(t *testing.T) {
	c := buildTiny(t)
	if c.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d, want 3", c.NumDocs())
	}
	// Doc 0 splits on ':' and '.' into two segments with content.
	if got := len(c.Docs[0].Segments); got != 2 {
		t.Fatalf("doc0 segments = %d, want 2", got)
	}
	if c.TotalTokens == 0 || c.Vocab.Size() == 0 {
		t.Fatal("empty corpus built from non-empty docs")
	}
}

func TestBuilderStemsAndSharesIDs(t *testing.T) {
	c := buildTiny(t)
	// "mining" (doc0) and "mining" (doc1) stem to "mine" and share an id.
	id, ok := c.Vocab.ID("mine")
	if !ok {
		t.Fatal("stem 'mine' missing from vocabulary")
	}
	if c.Vocab.Count(id) < 2 {
		t.Fatalf("'mine' count = %d, want >= 2", c.Vocab.Count(id))
	}
	// "pattern" and "patterns" share a stem as well.
	pid, ok := c.Vocab.ID("pattern")
	if !ok {
		t.Fatal("stem 'pattern' missing")
	}
	if c.Vocab.Count(pid) < 3 {
		t.Fatalf("'pattern' count = %d, want >= 3", c.Vocab.Count(pid))
	}
}

func TestBuilderRemovesStopwords(t *testing.T) {
	c := buildTiny(t)
	if _, ok := c.Vocab.ID("the"); ok {
		t.Fatal("stop word 'the' leaked into vocabulary")
	}
	if _, ok := c.Vocab.ID("without"); ok {
		t.Fatal("stop word 'without' leaked into vocabulary")
	}
}

func TestBuilderEmptyDocKeepsSlot(t *testing.T) {
	c := FromStrings([]string{"", "real content here", "..."}, DefaultBuildOptions())
	if c.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d, want 3", c.NumDocs())
	}
	if len(c.Docs[0].Segments) != 0 || len(c.Docs[2].Segments) != 0 {
		t.Fatal("empty docs should have zero segments")
	}
	if c.Docs[1].ID != 1 {
		t.Fatalf("doc id misaligned: %d", c.Docs[1].ID)
	}
}

func TestDocumentTokensOrder(t *testing.T) {
	c := buildTiny(t)
	d := c.Docs[1]
	toks := d.Tokens()
	if len(toks) != d.Len() {
		t.Fatalf("Tokens len %d != Len %d", len(toks), d.Len())
	}
	// First segment first token should be the stem of "frequent".
	fid, _ := c.Vocab.ID("frequent")
	if toks[0] != fid {
		t.Fatalf("first token = %q, want 'frequent'", c.Vocab.Word(toks[0]))
	}
}

func TestDisplayPhraseReinsertsStopwords(t *testing.T) {
	c := buildTiny(t)
	d := c.Docs[2] // "The house and senate passed the bill."
	seg := &d.Segments[0]
	if seg.Len() < 3 {
		t.Fatalf("unexpected segment: %v", seg.Words())
	}
	got := c.DisplayPhrase(seg, 0, 2)
	if got != "house and senate" {
		t.Fatalf("DisplayPhrase = %q, want %q", got, "house and senate")
	}
}

func TestDisplayPhraseSingleToken(t *testing.T) {
	c := buildTiny(t)
	seg := &c.Docs[2].Segments[0]
	if got := c.DisplayPhrase(seg, 0, 1); got != "house" {
		t.Fatalf("DisplayPhrase = %q, want %q", got, "house")
	}
}

func TestDisplayWordsUnstems(t *testing.T) {
	c := buildTiny(t)
	id, _ := c.Vocab.ID("mine")
	got := c.DisplayWords([]int32{id})
	if got != "mining" {
		t.Fatalf("DisplayWords = %q, want %q (most frequent surface)", got, "mining")
	}
}

func TestComputeStats(t *testing.T) {
	c := buildTiny(t)
	st := c.ComputeStats()
	if st.Docs != 3 || st.Tokens != c.TotalTokens || st.VocabSize != c.Vocab.Size() {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.AvgDocLen <= 0 || st.MaxDocLen <= 0 {
		t.Fatalf("stats not computed: %+v", st)
	}
	if !strings.Contains(st.String(), "docs=3") {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestReadLines(t *testing.T) {
	input := "first document about data mining\nsecond document about topic models\n"
	c, err := ReadLines(strings.NewReader(input), DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", c.NumDocs())
	}
}

func TestBuildWithoutSurface(t *testing.T) {
	opt := DefaultBuildOptions()
	opt.KeepSurface = false
	c := FromStrings([]string{"support vector machines"}, opt)
	seg := &c.Docs[0].Segments[0]
	if seg.HasSurface() || seg.Surface(0) != "" || seg.Gap(0) != "" {
		t.Fatal("surface kept despite KeepSurface=false")
	}
	// DisplayPhrase must fall back to unstemming.
	got := c.DisplayPhrase(seg, 0, seg.Len())
	if !strings.Contains(got, "vector") {
		t.Fatalf("fallback display = %q", got)
	}
}

func TestSplitDocumentCompletion(t *testing.T) {
	docs := make([]string, 10)
	for i := range docs {
		docs[i] = "alpha beta gamma delta epsilon zeta eta theta iota kappa"
	}
	c := FromStrings(docs, DefaultBuildOptions())
	ho := SplitDocumentCompletion(c, 0.2, 1)
	if ho.TestTokens == 0 {
		t.Fatal("no tokens withheld")
	}
	wantTotal := c.TotalTokens
	if got := ho.Train.TotalTokens + ho.TestTokens; got != wantTotal {
		t.Fatalf("token conservation violated: %d + %d != %d",
			ho.Train.TotalTokens, ho.TestTokens, wantTotal)
	}
	// Each doc of 10 tokens should hold out 2.
	if len(ho.Test[0]) != 2 {
		t.Fatalf("held out %d tokens, want 2", len(ho.Test[0]))
	}
	// Held-out tokens are the document's final tokens in order.
	orig := c.Docs[0].Tokens()
	if ho.Test[0][0] != orig[8] || ho.Test[0][1] != orig[9] {
		t.Fatal("held-out tokens are not the document tail in order")
	}
}

func TestSplitRespectsMinTrainTokens(t *testing.T) {
	c := FromStrings([]string{"alpha beta"}, DefaultBuildOptions())
	ho := SplitDocumentCompletion(c, 0.9, 2)
	if ho.TestTokens != 0 {
		t.Fatalf("short doc should not be split, withheld %d", ho.TestTokens)
	}
	if ho.Train.Docs[0].Len() != 2 {
		t.Fatal("train doc mangled")
	}
}

func TestSplitMultiSegmentBoundary(t *testing.T) {
	// 6 tokens in two segments of 3; withhold 4 => spans a boundary.
	c := FromStrings([]string{"alpha beta gamma, delta epsilon zeta"}, DefaultBuildOptions())
	d := c.Docs[0]
	if len(d.Segments) != 2 {
		t.Fatalf("want 2 segments, got %d", len(d.Segments))
	}
	ho := SplitDocumentCompletion(c, 0.67, 1)
	hold := len(ho.Test[0])
	if hold < 3 {
		t.Fatalf("expected to withhold across the segment boundary, got %d", hold)
	}
	train := ho.Train.Docs[0]
	if train.Len()+hold != 6 {
		t.Fatalf("token conservation: %d + %d != 6", train.Len(), hold)
	}
	// Order check: test tokens are the last `hold` of the original.
	orig := d.Tokens()
	for i, tok := range ho.Test[0] {
		if tok != orig[6-hold+i] {
			t.Fatalf("held-out order wrong at %d", i)
		}
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for frac=1")
		}
	}()
	SplitDocumentCompletion(&Corpus{}, 1.0, 0)
}
