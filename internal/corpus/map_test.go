package corpus

import "testing"

func TestMapTextKnownWords(t *testing.T) {
	c := buildTiny(t)
	before := c.Vocab.Size()
	doc := MapText("frequent pattern mining rocks", c.Vocab, DefaultBuildOptions())
	if c.Vocab.Size() != before {
		t.Fatal("MapText mutated the vocabulary")
	}
	if len(doc.Segments) != 1 {
		t.Fatalf("segments = %d", len(doc.Segments))
	}
	// "frequent", "pattern", "mining" are known; "rocks" is OOV.
	if got := doc.Segments[0].Len(); got != 3 {
		t.Fatalf("kept tokens = %d, want 3", got)
	}
	fid, _ := c.Vocab.ID("frequent")
	if doc.Segments[0].Words()[0] != fid {
		t.Fatal("first token should be 'frequent'")
	}
}

func TestMapTextAllOOV(t *testing.T) {
	c := buildTiny(t)
	doc := MapText("zzz qqq unseen tokens", c.Vocab, DefaultBuildOptions())
	if len(doc.Segments) != 0 {
		t.Fatalf("all-OOV text should map to no segments, got %d", len(doc.Segments))
	}
}

func TestMapTextOOVJoinsGap(t *testing.T) {
	c := buildTiny(t)
	// "house <OOV> senate": the OOV word lands in senate's gap so the
	// display still reads naturally.
	doc := MapText("house zweistein senate", c.Vocab, DefaultBuildOptions())
	if len(doc.Segments) != 1 || doc.Segments[0].Len() != 2 {
		t.Fatalf("unexpected mapping: %+v", doc.Segments)
	}
	got := c.DisplayPhrase(&doc.Segments[0], 0, 2)
	if got != "house zweistein senate" {
		t.Fatalf("display = %q", got)
	}
}

func TestMapTextSegmentBoundaries(t *testing.T) {
	c := buildTiny(t)
	doc := MapText("frequent pattern, mining", c.Vocab, DefaultBuildOptions())
	if len(doc.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(doc.Segments))
	}
}

func TestMapTextEmpty(t *testing.T) {
	c := buildTiny(t)
	doc := MapText("", c.Vocab, DefaultBuildOptions())
	if len(doc.Segments) != 0 {
		t.Fatal("empty text should map to empty document")
	}
}
