package corpus

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"topmine/internal/textproc"
)

// BuildOptions controls how raw text becomes a Corpus.
type BuildOptions struct {
	// Stem applies the Porter stemmer to every kept token (paper §7.1).
	Stem bool
	// RemoveStopwords drops stop words and letter-free tokens from the
	// mining stream, tracking them in Gaps for later re-insertion.
	RemoveStopwords bool
	// KeepSurface stores the surface form and gap of every kept token.
	// Required for stop-word re-insertion in displayed phrases; costs
	// memory proportional to the corpus, so benchmarks disable it.
	KeepSurface bool
}

// DefaultBuildOptions mirrors the paper's preprocessing: stemming on,
// stop-word removal on, surfaces kept for display.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Stem: true, RemoveStopwords: true, KeepSurface: true}
}

// Builder incrementally assembles a Corpus from raw document strings.
type Builder struct {
	opt   BuildOptions
	vocab *textproc.Vocab
	docs  []*Document
	total int
}

// NewBuilder returns a Builder with the given options.
func NewBuilder(opt BuildOptions) *Builder {
	return &Builder{opt: opt, vocab: textproc.NewVocab()}
}

// Add processes one raw document and appends it to the corpus.
// Documents that tokenize to nothing still occupy a slot (so external
// ids stay aligned) but contain zero segments.
func (b *Builder) Add(text string) *Document {
	doc := &Document{ID: len(b.docs)}
	for _, rawSeg := range textproc.Tokenize(text) {
		kept := textproc.Filter(rawSeg, b.opt.RemoveStopwords)
		if len(kept) == 0 {
			continue
		}
		seg := Segment{Words: make([]int32, len(kept))}
		if b.opt.KeepSurface {
			seg.Surface = make([]string, len(kept))
			seg.Gaps = make([]string, len(kept))
		}
		for i, tok := range kept {
			stem := tok.Surface
			if b.opt.Stem {
				stem = textproc.Stem(stem)
			}
			seg.Words[i] = b.vocab.Intern(stem, tok.Surface)
			if b.opt.KeepSurface {
				seg.Surface[i] = tok.Surface
				seg.Gaps[i] = tok.Gap
			}
		}
		doc.Segments = append(doc.Segments, seg)
		b.total += len(kept)
	}
	b.docs = append(b.docs, doc)
	return doc
}

// Corpus finalises and returns the built corpus. The Builder may keep
// being used; later Adds extend the same underlying corpus.
func (b *Builder) Corpus() *Corpus {
	return &Corpus{Docs: b.docs, Vocab: b.vocab, TotalTokens: b.total, BuildOpts: b.opt}
}

// FromStrings builds a corpus treating each element as one document.
func FromStrings(docs []string, opt BuildOptions) *Corpus {
	b := NewBuilder(opt)
	for _, d := range docs {
		b.Add(d)
	}
	return b.Corpus()
}

// ReadLines builds a corpus from r, one document per line. Long lines
// (up to 16 MiB) are supported.
func ReadLines(r io.Reader, opt BuildOptions) (*Corpus, error) {
	b := NewBuilder(opt)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		b.Add(sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading documents: %w", err)
	}
	return b.Corpus(), nil
}

// LoadFile builds a corpus from a one-document-per-line text file.
func LoadFile(path string, opt BuildOptions) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	return ReadLines(f, opt)
}
