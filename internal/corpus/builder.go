package corpus

import (
	"fmt"
	"io"
	"os"

	"topmine/internal/textproc"
)

// BuildOptions controls how raw text becomes a Corpus.
type BuildOptions struct {
	// Stem applies the Porter stemmer to every kept token (paper §7.1).
	Stem bool
	// RemoveStopwords drops stop words and letter-free tokens from the
	// mining stream, tracking them in Gaps for later re-insertion.
	RemoveStopwords bool
	// KeepSurface stores the surface form and gap of every kept token.
	// Required for stop-word re-insertion in displayed phrases; costs
	// memory proportional to the corpus, so benchmarks disable it.
	KeepSurface bool
	// Workers sets how many goroutines BuildFromSource tokenizes with
	// (0 = GOMAXPROCS). It affects only build speed: the built corpus
	// is bit-identical for every worker count.
	Workers int
}

// DefaultBuildOptions mirrors the paper's preprocessing: stemming on,
// stop-word removal on, surfaces kept for display.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Stem: true, RemoveStopwords: true, KeepSurface: true}
}

// Builder incrementally assembles a Corpus from raw document strings.
type Builder struct {
	opt   BuildOptions
	vocab *textproc.Vocab
	ar    *tokenArena
	docs  []*Document
	total int
}

// NewBuilder returns a Builder with the given options.
func NewBuilder(opt BuildOptions) *Builder {
	return &Builder{opt: opt, vocab: textproc.NewVocab(), ar: newArena(opt.KeepSurface)}
}

// Add processes one raw document and appends it to the corpus.
// Documents that tokenize to nothing still occupy a slot (so external
// ids stay aligned) but contain zero segments.
func (b *Builder) Add(text string) *Document {
	doc := addDocument(b.ar, b.vocab, b.opt, text, len(b.docs))
	b.total += doc.Len()
	b.docs = append(b.docs, doc)
	return doc
}

// Corpus returns a snapshot of everything added so far: the returned
// Corpus's document list and TotalTokens are fixed at the moment of
// the call and are not extended by later Adds — call Corpus again for
// an updated view. Snapshots are cheap: the documents, token arena and
// vocabulary are shared with the Builder (the arena only ever grows,
// so earlier snapshots stay valid), which also means vocabulary counts
// visible through a snapshot keep growing while the Builder is in use.
func (b *Builder) Corpus() *Corpus {
	return &Corpus{Docs: b.docs[:len(b.docs):len(b.docs)], Vocab: b.vocab,
		TotalTokens: b.total, BuildOpts: b.opt}
}

// FromStrings builds a corpus treating each element as one document.
func FromStrings(docs []string, opt BuildOptions) *Corpus {
	c, err := BuildFromSource(SliceSource(docs), opt)
	if err != nil {
		// SliceSource never fails and the builder itself has no error
		// paths, so this is unreachable.
		panic(err)
	}
	return c
}

// ReadLines builds a corpus from r, one document per line. Long lines
// (up to 16 MiB) are supported.
func ReadLines(r io.Reader, opt BuildOptions) (*Corpus, error) {
	return BuildFromSource(LineSource(r), opt)
}

// LoadFile builds a corpus from a one-document-per-line text file.
// gzip-compressed files are detected by their magic bytes and
// decompressed transparently.
func LoadFile(path string, opt BuildOptions) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	r, err := MaybeDecompress(f)
	if err != nil {
		return nil, err
	}
	return ReadLines(r, opt)
}
