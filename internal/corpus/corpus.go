// Package corpus defines the document representation shared by every
// stage of the ToPMine pipeline and the loaders that build it from raw
// text.
//
// A document is a sequence of segments — maximal stretches of text
// between phrase-invariant punctuation (§4.1 of the paper) — and each
// segment is a sequence of interned, stemmed, stop-word-free token ids.
// Phrases never cross segment boundaries, which is what makes frequent
// phrase mining linear in corpus size.
package corpus

import (
	"fmt"
	"strings"

	"topmine/internal/textproc"
)

// Segment is one punctuation-delimited chunk of a document: an offset
// range into its corpus's token arena (see arena.go). Segments are
// cheap 16-byte values; the token data lives once per corpus.
type Segment struct {
	ar  *tokenArena
	off int32
	n   int32
}

// Words returns the stemmed vocabulary ids of the kept tokens. The
// returned slice aliases the corpus token arena; callers must not
// mutate it.
func (s *Segment) Words() []int32 {
	if s.ar == nil {
		return nil
	}
	return s.ar.words[s.off : s.off+s.n : s.off+s.n]
}

// Len returns the number of kept tokens in the segment.
func (s *Segment) Len() int { return int(s.n) }

// HasSurface reports whether the segment retains surface forms and
// gaps (see BuildOptions.KeepSurface).
func (s *Segment) HasSurface() bool { return s.ar != nil && s.ar.keep }

// Surface returns the original lowercase surface form of kept token i,
// or "" when surfaces were not retained. It panics on out-of-range i:
// the arena is shared by every segment of the corpus, so an unchecked
// read past s.Len() would silently return a neighboring segment's
// token.
func (s *Segment) Surface(i int) string {
	if uint32(i) >= uint32(s.n) {
		panic("corpus: Segment.Surface index out of range")
	}
	if !s.HasSurface() {
		return ""
	}
	return s.ar.pool.strs[s.ar.surface[s.off+int32(i)]]
}

// Gap returns the dropped words (stop words, numbers) between kept
// token i and the previous kept token, or "" when surfaces were not
// retained. Like Surface, it panics on out-of-range i.
func (s *Segment) Gap(i int) string {
	if uint32(i) >= uint32(s.n) {
		panic("corpus: Segment.Gap index out of range")
	}
	if !s.HasSurface() {
		return ""
	}
	return s.ar.pool.strs[s.ar.gaps[s.off+int32(i)]]
}

// prefix returns the segment's first n tokens as a segment sharing the
// same arena.
func (s Segment) prefix(n int) Segment {
	return Segment{ar: s.ar, off: s.off, n: int32(n)}
}

// Document is an ordered list of segments.
type Document struct {
	ID       int
	Segments []Segment
}

// Len returns the total number of kept tokens in the document.
func (d *Document) Len() int {
	n := 0
	for i := range d.Segments {
		n += d.Segments[i].Len()
	}
	return n
}

// Tokens returns all kept token ids of the document in reading order.
func (d *Document) Tokens() []int32 {
	out := make([]int32, 0, d.Len())
	for i := range d.Segments {
		out = append(out, d.Segments[i].Words()...)
	}
	return out
}

// Corpus is a collection of documents sharing one vocabulary.
type Corpus struct {
	Docs  []*Document
	Vocab *textproc.Vocab
	// TotalTokens is N, the number of kept tokens across the corpus; it
	// is the L of the significance score's Bernoulli null model (§4.2).
	TotalTokens int
	// BuildOpts records the preprocessing this corpus was built with,
	// so unseen text folded in later (MapText via an Inferencer) is
	// normalised the same way. Hand-constructed corpora leave it zero.
	BuildOpts BuildOptions
}

// NumDocs returns the number of documents.
func (c *Corpus) NumDocs() int { return len(c.Docs) }

// DocRange returns a zero-copy view of documents [lo, hi): the
// returned corpus shares the vocabulary, token arena and surface pool
// with c — no token data is copied, and for an mmap-backed corpus only
// the pages the range actually touches ever fault in. Document IDs are
// rebased to 0..hi-lo-1 so downstream stages that index by ID
// (segmentation, topic-model doc construction) see a self-consistent
// corpus. TotalTokens is recomputed over the range, keeping the
// significance score's null model local to the view.
func (c *Corpus) DocRange(lo, hi int) (*Corpus, error) {
	if lo < 0 || hi < lo || hi > len(c.Docs) {
		return nil, fmt.Errorf("corpus: doc range [%d, %d) outside [0, %d)", lo, hi, len(c.Docs))
	}
	sub := &Corpus{
		Docs:      make([]*Document, hi-lo),
		Vocab:     c.Vocab,
		BuildOpts: c.BuildOpts,
	}
	for i := range sub.Docs {
		src := c.Docs[lo+i]
		sub.Docs[i] = &Document{ID: i, Segments: src.Segments}
		sub.TotalTokens += src.Len()
	}
	return sub, nil
}

// Stats summarises a corpus.
type Stats struct {
	Docs      int
	Segments  int
	Tokens    int
	VocabSize int
	AvgDocLen float64
	MaxDocLen int
}

// ComputeStats walks the corpus and returns summary statistics.
func (c *Corpus) ComputeStats() Stats {
	st := Stats{Docs: len(c.Docs), Tokens: c.TotalTokens, VocabSize: c.Vocab.Size()}
	for _, d := range c.Docs {
		st.Segments += len(d.Segments)
		if n := d.Len(); n > st.MaxDocLen {
			st.MaxDocLen = n
		}
	}
	if st.Docs > 0 {
		st.AvgDocLen = float64(st.Tokens) / float64(st.Docs)
	}
	return st
}

func (st Stats) String() string {
	return fmt.Sprintf("docs=%d segments=%d tokens=%d vocab=%d avgLen=%.1f maxLen=%d",
		st.Docs, st.Segments, st.Tokens, st.VocabSize, st.AvgDocLen, st.MaxDocLen)
}

// DisplayPhrase reconstructs the human-readable form of the phrase
// spanning tokens [start, end) of the given segment: surface forms with
// dropped stop words re-inserted when the segment retains them, or
// un-stemmed vocabulary forms otherwise.
func (c *Corpus) DisplayPhrase(seg *Segment, start, end int) string {
	var b strings.Builder
	hasSurface := seg.HasSurface()
	for i := start; i < end; i++ {
		if i > start {
			if g := seg.Gap(i); g != "" {
				b.WriteByte(' ')
				b.WriteString(g)
			}
			b.WriteByte(' ')
		}
		if hasSurface {
			b.WriteString(seg.Surface(i))
		} else {
			b.WriteString(c.Vocab.Unstem(seg.Words()[i]))
		}
	}
	return b.String()
}

// DisplayWords renders a phrase given only its word ids, using the
// vocabulary's un-stemming map (no stop-word re-insertion).
func (c *Corpus) DisplayWords(words []int32) string {
	parts := make([]string, len(words))
	for i, w := range words {
		parts[i] = c.Vocab.Unstem(w)
	}
	return strings.Join(parts, " ")
}
