package corpus

import (
	"strings"
	"testing"
)

type failingReader struct{ data string }

func (f *failingReader) Read(p []byte) (int, error) {
	if f.data != "" {
		n := copy(p, f.data)
		f.data = f.data[n:]
		return n, nil
	}
	return 0, errBoom
}

var errBoom = &readerError{}

type readerError struct{}

func (*readerError) Error() string { return "boom: injected read failure" }

func TestReadJSONL(t *testing.T) {
	input := `{"id": 1, "text": "data mining rocks"}
{"id": 2, "text": "topic models for text"}`
	c, err := ReadJSONL(strings.NewReader(input), "text", DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
	if _, ok := c.Vocab.ID("mine"); !ok {
		t.Fatal("text field not processed")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	input := "\n{\"text\": \"hello world\"}\n\n"
	c, err := ReadJSONL(strings.NewReader(input), "text", DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 1 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{not json}`,
		"missing field": `{"title": "x"}`,
		"non-string":    `{"text": 42}`,
	}
	for name, input := range cases {
		if _, err := ReadJSONL(strings.NewReader(input), "text", DefaultBuildOptions()); err == nil {
			t.Errorf("%s: no error", name)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error does not name the line: %v", name, err)
		}
	}
	if _, err := ReadJSONL(strings.NewReader(""), "", DefaultBuildOptions()); err == nil {
		t.Error("empty field name accepted")
	}
}

func TestReadJSONLReaderFailure(t *testing.T) {
	r := &failingReader{data: `{"text": "partial"}` + "\n"}
	if _, err := ReadJSONL(r, "text", DefaultBuildOptions()); err == nil {
		t.Fatal("injected read failure not surfaced")
	}
}

func TestReadTSV(t *testing.T) {
	input := "1\tfirst document text\n2\tsecond document text\n"
	c, err := ReadTSV(strings.NewReader(input), 1, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("only-one-col\n"), 1, DefaultBuildOptions()); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := ReadTSV(strings.NewReader(""), -1, DefaultBuildOptions()); err == nil {
		t.Error("negative column accepted")
	}
}

func TestReadLinesReaderFailure(t *testing.T) {
	r := &failingReader{data: "first doc\n"}
	if _, err := ReadLines(r, DefaultBuildOptions()); err == nil {
		t.Fatal("injected read failure not surfaced")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/path/xyz.txt", DefaultBuildOptions()); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadJSONLFileMissing(t *testing.T) {
	if _, err := LoadJSONLFile("/nonexistent/path/xyz.jsonl", "text", DefaultBuildOptions()); err == nil {
		t.Fatal("missing file accepted")
	}
}
