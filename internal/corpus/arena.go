package corpus

// The columnar corpus layout: instead of every Segment owning three
// parallel slices (Words []int32, Surface []string, Gaps []string — 3
// slice headers plus 2 string headers and a fresh string allocation per
// token), all tokens of a corpus live in one flat arena and a Segment
// is just an offset range into it. Surface forms and gaps are interned
// in a shared string pool — gaps like " the " and " of " repeat
// massively, and surface forms repeat once per word occurrence — so the
// per-token cost drops from ~36 bytes of headers plus two string
// bodies to 12 bytes of ids (4 when surfaces are not kept).
//
// Appending to the arena never invalidates existing Segments: they
// address the arena through a stable *tokenArena pointer and the arena
// only grows, so offsets taken before an append remain correct after
// the backing slices are reallocated.

// stringPool interns strings as dense uint32 ids. Id 0 is always the
// empty string, letting absent gaps cost nothing to represent.
type stringPool struct {
	ids  map[string]uint32
	strs []string
}

func (p *stringPool) init() {
	p.ids = map[string]uint32{"": 0}
	p.strs = []string{""}
}

func (p *stringPool) intern(s string) uint32 {
	if p.ids == nil {
		panic("corpus: intern on a compacted string pool")
	}
	if id, ok := p.ids[s]; ok {
		return id
	}
	id := uint32(len(p.strs))
	p.ids[s] = id
	p.strs = append(p.strs, s)
	return id
}

// tokenArena is the flat token store shared by every Segment of one
// corpus (or one MapText document). words holds the vocabulary id of
// every kept token in corpus order; surface and gaps, when surfaces are
// kept, hold pool ids parallel to words.
type tokenArena struct {
	words   []int32
	surface []uint32
	gaps    []uint32
	pool    stringPool
	keep    bool
	// sealed marks an arena whose backing storage is borrowed — a
	// mmap'd corpus-file region, or slices handed to FromRaw — rather
	// than owned append-grown memory. Pushing to a sealed arena would
	// either fault (read-only mapping) or silently detach the borrowed
	// view, so it panics instead.
	sealed bool
	// prev chains this arena to the one holding the corpus's earlier
	// tokens. A freshly built corpus has a single arena (prev nil);
	// every Append — in memory via Appender, or on disk via a corpus
	// file's appended segment groups — adds one arena to the chain
	// instead of copying the existing (possibly mmap'd, read-only)
	// token columns. Chained arenas keep cumulative string pools: an
	// arena's pool always extends its prev's, so pool ids from earlier
	// arenas stay valid everywhere down the chain.
	prev *tokenArena
}

func newArena(keepSurface bool) *tokenArena {
	ar := &tokenArena{keep: keepSurface}
	if keepSurface {
		// Without surfaces nothing is ever interned (push skips the
		// side tables), so skip the map allocation — MapText builds
		// one arena per served request.
		ar.pool.init()
	}
	return ar
}

// maxArenaTokens is the arena's capacity ceiling: offsets are int32,
// so one corpus holds at most 2^31-1 kept tokens (roughly 13 GB of
// English text). grow panics past it rather than letting the cast in
// mark wrap silently and corrupt segment offsets.
const maxArenaTokens = 1<<31 - 1

func (ar *tokenArena) grow(n int) {
	if ar.sealed {
		panic("corpus: append to a sealed (borrowed-storage) token arena")
	}
	if len(ar.words)+n > maxArenaTokens {
		panic("corpus: corpus exceeds 2^31 tokens; shard the input into multiple corpora")
	}
}

// mark returns the current end of the arena — the offset the next
// pushed token will occupy.
func (ar *tokenArena) mark() int32 { return int32(len(ar.words)) }

// push appends one kept token. surface and gap are ignored unless the
// arena keeps surfaces.
func (ar *tokenArena) push(w int32, surface, gap string) {
	ar.words = append(ar.words, w)
	if ar.keep {
		ar.surface = append(ar.surface, ar.pool.intern(surface))
		ar.gaps = append(ar.gaps, ar.pool.intern(gap))
	}
}

// seg closes the segment opened at mark() == off, spanning every token
// pushed since.
func (ar *tokenArena) seg(off int32) Segment {
	return Segment{ar: ar, off: off, n: int32(len(ar.words)) - off}
}
