package corpus

import (
	"strings"
	"testing"
)

func rawTestCorpus(t *testing.T) *Corpus {
	t.Helper()
	return FromStrings([]string{
		"frequent pattern mining finds frequent patterns.",
		"",
		"support vector machines; support vector regression.",
	}, DefaultBuildOptions())
}

func TestRawRoundTrip(t *testing.T) {
	c := rawTestCorpus(t)
	r, err := c.Raw()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromRaw(r)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := c.ComputeStats(), got.ComputeStats(); w != g {
		t.Fatalf("stats differ: %v vs %v", w, g)
	}
	for d := range c.Docs {
		for si := range c.Docs[d].Segments {
			ws, gs := &c.Docs[d].Segments[si], &got.Docs[d].Segments[si]
			if c.DisplayPhrase(ws, 0, ws.Len()) != got.DisplayPhrase(gs, 0, gs.Len()) {
				t.Fatalf("doc %d seg %d display differs", d, si)
			}
		}
	}
}

func TestFromRawRejectsCorruptColumns(t *testing.T) {
	c := rawTestCorpus(t)
	fresh := func() *Raw {
		r, err := c.Raw()
		if err != nil {
			t.Fatal(err)
		}
		// Copy the mutable columns so each case corrupts its own.
		r.Words = append([]int32(nil), r.Words...)
		r.Surface = append([]uint32(nil), r.Surface...)
		r.Gaps = append([]uint32(nil), r.Gaps...)
		r.SegOffs = append([]int32(nil), r.SegOffs...)
		r.SegLens = append([]int32(nil), r.SegLens...)
		r.SegCounts = append([]int32(nil), r.SegCounts...)
		return r
	}
	cases := []struct {
		name   string
		mutate func(*Raw)
		want   string
	}{
		{"word id past vocab", func(r *Raw) { r.Words[0] = int32(r.Vocab.Size()) }, "word id"},
		{"negative word id", func(r *Raw) { r.Words[1] = -1 }, "word id"},
		{"segment past arena", func(r *Raw) { r.SegLens[0] = int32(len(r.Words)) + 1 }, "arena"},
		{"negative offset", func(r *Raw) { r.SegOffs[0] = -1 }, "arena"},
		{"pool id out of range", func(r *Raw) { r.Surface[0] = uint32(len(r.Pool)) }, "pool"},
		{"seg count mismatch", func(r *Raw) { r.SegCounts[0]++ }, "segments"},
		{"missing vocab", func(r *Raw) { r.Vocab = nil }, "vocabulary"},
		{"pool without empty head", func(r *Raw) { r.Pool = []string{"x"} }, "empty string"},
	}
	for _, tc := range cases {
		r := fresh()
		tc.mutate(r)
		_, err := FromRaw(r)
		if err == nil {
			t.Errorf("%s: FromRaw accepted corrupt input", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestFromRawArenaSealed(t *testing.T) {
	c := rawTestCorpus(t)
	r, err := c.Raw()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromRaw(r)
	if err != nil {
		t.Fatal(err)
	}
	ar := got.Docs[0].Segments[0].ar
	defer func() {
		if recover() == nil {
			t.Fatal("grow on a sealed arena did not panic")
		}
	}()
	ar.grow(1)
}
