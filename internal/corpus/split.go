package corpus

// HeldOut is the result of a document-completion split used for the
// perplexity experiments (Figs. 6-7): the tail of each document is
// withheld from training and scored against the model's per-document
// topic estimates.
type HeldOut struct {
	// Train shares the vocabulary with the source corpus but holds the
	// truncated documents.
	Train *Corpus
	// Test holds, for each document, the withheld token ids in order.
	Test [][]int32
	// TestTokens is the total number of withheld tokens.
	TestTokens int
}

// SplitDocumentCompletion withholds approximately frac of each
// document's tokens (the final ones, truncating whole segments last-
// first token-by-token) for held-out evaluation. Documents shorter than
// minTrainTokens keep all their tokens. frac must be in [0, 1).
func SplitDocumentCompletion(c *Corpus, frac float64, minTrainTokens int) *HeldOut {
	if frac < 0 || frac >= 1 {
		panic("corpus: SplitDocumentCompletion frac must be in [0,1)")
	}
	out := &HeldOut{
		Train: &Corpus{Vocab: c.Vocab, BuildOpts: c.BuildOpts},
		Test:  make([][]int32, len(c.Docs)),
	}
	for di, d := range c.Docs {
		n := d.Len()
		hold := int(float64(n) * frac)
		if n-hold < minTrainTokens {
			hold = n - minTrainTokens
		}
		if hold <= 0 {
			out.Train.Docs = append(out.Train.Docs, d)
			out.Train.TotalTokens += n
			continue
		}
		nd := &Document{ID: d.ID}
		test := make([]int32, 0, hold)
		remaining := hold
		// Walk segments from the back, withholding tokens.
		segs := make([]Segment, 0, len(d.Segments))
		for i := len(d.Segments) - 1; i >= 0; i-- {
			seg := d.Segments[i]
			if remaining == 0 {
				segs = append(segs, seg)
				continue
			}
			words := seg.Words()
			if remaining >= len(words) {
				// entire segment withheld
				test = append(test, reverse32(words)...)
				remaining -= len(words)
				continue
			}
			keep := len(words) - remaining
			test = append(test, reverse32(words[keep:])...)
			// The truncated segment shares the source arena: surfaces
			// and gaps of the kept prefix come along for free.
			segs = append(segs, seg.prefix(keep))
			remaining = 0
		}
		// segs and test were collected back-to-front; restore order.
		for l, r := 0, len(segs)-1; l < r; l, r = l+1, r-1 {
			segs[l], segs[r] = segs[r], segs[l]
		}
		for l, r := 0, len(test)-1; l < r; l, r = l+1, r-1 {
			test[l], test[r] = test[r], test[l]
		}
		nd.Segments = segs
		out.Train.Docs = append(out.Train.Docs, nd)
		out.Train.TotalTokens += nd.Len()
		out.Test[di] = test
		out.TestTokens += len(test)
	}
	return out
}

// reverse32 returns a reversed copy of s.
func reverse32(s []int32) []int32 {
	out := make([]int32, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
