package corpus

import (
	"fmt"

	"topmine/internal/textproc"
)

// Raw is the flat columnar view of a Corpus — exactly the arrays the
// on-disk corpus format (internal/corpusfile) persists and restores.
// Words/Surface/Gaps are the token arena columns; Pool is the interned
// surface/gap string table (Pool[0] is always ""); SegCounts, SegOffs
// and SegLens encode the document/segment structure as per-document
// segment counts plus one (offset, length) pair per segment into the
// arena. The per-document boundaries are what lets a future sharded
// trainer assign token ranges to workers without parsing documents.
type Raw struct {
	Words   []int32
	Surface []uint32 // nil unless KeepSurface
	Gaps    []uint32 // nil unless KeepSurface
	Pool    []string // nil unless KeepSurface
	// KeepSurface mirrors the arena's surface retention (it always
	// equals BuildOpts.KeepSurface for corpora built by this package).
	KeepSurface bool

	SegCounts []int32 // segments per document, len == number of docs
	SegOffs   []int32 // arena offset per segment, len == total segments
	SegLens   []int32 // kept-token count per segment

	Vocab       *textproc.Vocab
	TotalTokens int
	BuildOpts   BuildOptions
}

// Raw flattens the corpus into its columnar view. The returned slices
// alias the corpus storage — they are a view, not a copy — so the
// caller must treat them as read-only. It errors on corpora whose
// segments do not all share one token arena (impossible for corpora
// built by this package, but representable by hand-assembled literals).
func (c *Corpus) Raw() (*Raw, error) {
	if c.Vocab == nil {
		return nil, fmt.Errorf("corpus: Raw: corpus has no vocabulary")
	}
	r := &Raw{
		SegCounts:   make([]int32, len(c.Docs)),
		Vocab:       c.Vocab,
		TotalTokens: c.TotalTokens,
		BuildOpts:   c.BuildOpts,
	}
	var ar *tokenArena
	total := 0
	for _, d := range c.Docs {
		total += len(d.Segments)
	}
	r.SegOffs = make([]int32, 0, total)
	r.SegLens = make([]int32, 0, total)
	for i, d := range c.Docs {
		r.SegCounts[i] = int32(len(d.Segments))
		for si := range d.Segments {
			sg := &d.Segments[si]
			if sg.ar == nil {
				return nil, fmt.Errorf("corpus: Raw: doc %d segment %d has no token arena", i, si)
			}
			if ar == nil {
				ar = sg.ar
			} else if sg.ar != ar {
				return nil, fmt.Errorf("corpus: Raw: doc %d segment %d uses a different token arena; corpora must share one arena to be persisted", i, si)
			}
			r.SegOffs = append(r.SegOffs, sg.off)
			r.SegLens = append(r.SegLens, sg.n)
		}
	}
	if ar != nil {
		r.Words = ar.words
		r.KeepSurface = ar.keep
		if ar.keep {
			r.Surface = ar.surface
			r.Gaps = ar.gaps
			r.Pool = ar.pool.strs
		}
	}
	return r, nil
}

// FromRaw assembles a Corpus over the given columns without copying
// them: the token arena borrows Words/Surface/Gaps (which may live in
// a read-only mmap'd region) and is sealed against growth. Every
// offset, pool id and word id is validated before a Segment is built,
// so a corrupt but well-framed file fails here with an error instead
// of panicking inside a later pipeline stage.
func FromRaw(r *Raw) (*Corpus, error) {
	if r.Vocab == nil {
		return nil, fmt.Errorf("corpus: FromRaw: missing vocabulary")
	}
	if len(r.SegOffs) != len(r.SegLens) {
		return nil, fmt.Errorf("corpus: FromRaw: %d segment offsets but %d lengths", len(r.SegOffs), len(r.SegLens))
	}
	totalSegs := 0
	for i, n := range r.SegCounts {
		if n < 0 {
			return nil, fmt.Errorf("corpus: FromRaw: doc %d has negative segment count %d", i, n)
		}
		totalSegs += int(n)
	}
	if totalSegs != len(r.SegOffs) {
		return nil, fmt.Errorf("corpus: FromRaw: documents claim %d segments, table has %d", totalSegs, len(r.SegOffs))
	}
	nTok := len(r.Words)
	if nTok > maxArenaTokens {
		return nil, fmt.Errorf("corpus: FromRaw: arena holds %d tokens, limit is %d", nTok, maxArenaTokens)
	}
	for i := range r.SegOffs {
		off, n := r.SegOffs[i], r.SegLens[i]
		if off < 0 || n < 0 || int(off)+int(n) > nTok {
			return nil, fmt.Errorf("corpus: FromRaw: segment %d spans [%d,%d) of a %d-token arena", i, off, int(off)+int(n), nTok)
		}
	}
	V := int32(r.Vocab.Size())
	for i, w := range r.Words {
		if w < 0 || w >= V {
			return nil, fmt.Errorf("corpus: FromRaw: token %d has word id %d, vocabulary size is %d", i, w, V)
		}
	}
	ar := &tokenArena{words: r.Words, keep: r.KeepSurface, sealed: true}
	if r.KeepSurface {
		if len(r.Surface) != nTok || len(r.Gaps) != nTok {
			return nil, fmt.Errorf("corpus: FromRaw: %d tokens but %d surfaces and %d gaps", nTok, len(r.Surface), len(r.Gaps))
		}
		if len(r.Pool) == 0 || r.Pool[0] != "" {
			return nil, fmt.Errorf("corpus: FromRaw: string pool must start with the empty string")
		}
		P := uint32(len(r.Pool))
		for i := range r.Surface {
			if r.Surface[i] >= P || r.Gaps[i] >= P {
				return nil, fmt.Errorf("corpus: FromRaw: token %d references string pool entry %d/%d, pool size is %d",
					i, r.Surface[i], r.Gaps[i], P)
			}
		}
		ar.surface = r.Surface
		ar.gaps = r.Gaps
		ar.pool = stringPool{strs: r.Pool}
	}
	c := &Corpus{
		Docs:        make([]*Document, len(r.SegCounts)),
		Vocab:       r.Vocab,
		TotalTokens: r.TotalTokens,
		BuildOpts:   r.BuildOpts,
	}
	docBlock := make([]Document, len(r.SegCounts))
	segBlock := make([]Segment, totalSegs)
	next := 0
	for i, n := range r.SegCounts {
		docBlock[i] = Document{ID: i, Segments: segBlock[next : next+int(n) : next+int(n)]}
		for j := 0; j < int(n); j++ {
			segBlock[next+j] = Segment{ar: ar, off: r.SegOffs[next+j], n: r.SegLens[next+j]}
		}
		next += int(n)
		c.Docs[i] = &docBlock[i]
	}
	return c, nil
}
