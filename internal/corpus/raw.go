package corpus

import (
	"fmt"

	"topmine/internal/textproc"
)

// Raw is the flat columnar view of a Corpus — exactly the arrays the
// on-disk corpus format (internal/corpusfile) persists and restores.
// Words/Surface/Gaps are the token arena columns; Pool is the interned
// surface/gap string table (Pool[0] is always ""); SegCounts, SegOffs
// and SegLens encode the document/segment structure as per-document
// segment counts plus one (offset, length) pair per segment into the
// arena. The per-document boundaries are what lets a future sharded
// trainer assign token ranges to workers without parsing documents.
type Raw struct {
	Words   []int32
	Surface []uint32 // nil unless KeepSurface
	Gaps    []uint32 // nil unless KeepSurface
	Pool    []string // nil unless KeepSurface
	// KeepSurface mirrors the arena's surface retention (it always
	// equals BuildOpts.KeepSurface for corpora built by this package).
	KeepSurface bool

	SegCounts []int32 // segments per document, len == number of docs
	SegOffs   []int32 // arena offset per segment, len == total segments
	SegLens   []int32 // kept-token count per segment

	Vocab       *textproc.Vocab
	TotalTokens int
	BuildOpts   BuildOptions
}

// Raw flattens the corpus into its columnar view. For a single-arena
// corpus (anything built in one pass) the returned slices alias the
// corpus storage — a view, not a copy. A corpus whose documents span a
// chain of arenas (it was grown by Appender or assembled from a
// multi-segment corpus file) is materialised: the chained token
// columns are concatenated into fresh slices with absolute offsets, so
// the result is indistinguishable from a from-scratch single-arena
// build over the same documents. It errors on corpora whose segments
// reference arenas outside one chain (impossible for corpora built by
// this package, but representable by hand-assembled literals).
func (c *Corpus) Raw() (*Raw, error) {
	if c.Vocab == nil {
		return nil, fmt.Errorf("corpus: Raw: corpus has no vocabulary")
	}
	r := &Raw{
		SegCounts:   make([]int32, len(c.Docs)),
		Vocab:       c.Vocab,
		TotalTokens: c.TotalTokens,
		BuildOpts:   c.BuildOpts,
	}
	total := 0
	for _, d := range c.Docs {
		total += len(d.Segments)
	}
	r.SegOffs = make([]int32, 0, total)
	r.SegLens = make([]int32, 0, total)
	// Walk documents in order, collecting the distinct arenas they
	// reference. Documents are appended in chain order, so each newly
	// seen arena must chain (via prev) to the one seen before it;
	// anything else is a foreign arena and is rejected.
	var arenas []*tokenArena
	baseOf := map[*tokenArena]int32{}
	arenaBase := func(ar *tokenArena) (int32, error) {
		if b, ok := baseOf[ar]; ok {
			return b, nil
		}
		var last *tokenArena
		base := 0
		if n := len(arenas); n > 0 {
			last = arenas[n-1]
			base = int(baseOf[last]) + len(last.words)
		}
		if ar.prev != last {
			return 0, fmt.Errorf("corpus: Raw: segment uses a token arena outside the corpus's arena chain")
		}
		if base+len(ar.words) > maxArenaTokens {
			return 0, fmt.Errorf("corpus: Raw: chained arenas hold over %d tokens; shard the corpus", maxArenaTokens)
		}
		arenas = append(arenas, ar)
		baseOf[ar] = int32(base)
		return int32(base), nil
	}
	for i, d := range c.Docs {
		r.SegCounts[i] = int32(len(d.Segments))
		for si := range d.Segments {
			sg := &d.Segments[si]
			if sg.ar == nil {
				return nil, fmt.Errorf("corpus: Raw: doc %d segment %d has no token arena", i, si)
			}
			base, err := arenaBase(sg.ar)
			if err != nil {
				return nil, fmt.Errorf("%w (doc %d segment %d)", err, i, si)
			}
			r.SegOffs = append(r.SegOffs, base+sg.off)
			r.SegLens = append(r.SegLens, sg.n)
		}
	}
	switch len(arenas) {
	case 0:
		return r, nil
	case 1:
		ar := arenas[0]
		r.Words = ar.words
		r.KeepSurface = ar.keep
		if ar.keep {
			r.Surface = ar.surface
			r.Gaps = ar.gaps
			r.Pool = ar.pool.strs
		}
		return r, nil
	}
	nTok := 0
	keep := arenas[0].keep
	for _, ar := range arenas {
		if ar.keep != keep {
			return nil, fmt.Errorf("corpus: Raw: arenas disagree on surface retention")
		}
		nTok += len(ar.words)
	}
	r.Words = make([]int32, 0, nTok)
	if keep {
		r.Surface = make([]uint32, 0, nTok)
		r.Gaps = make([]uint32, 0, nTok)
	}
	for _, ar := range arenas {
		r.Words = append(r.Words, ar.words...)
		if keep {
			r.Surface = append(r.Surface, ar.surface...)
			r.Gaps = append(r.Gaps, ar.gaps...)
		}
	}
	r.KeepSurface = keep
	if keep {
		// Chained pools are cumulative: the last arena's pool extends
		// every earlier one, so its ids cover all columns.
		r.Pool = arenas[len(arenas)-1].pool.strs
	}
	return r, nil
}

// FromRaw assembles a Corpus over the given columns without copying
// them: the token arena borrows Words/Surface/Gaps (which may live in
// a read-only mmap'd region) and is sealed against growth. Every
// offset, pool id and word id is validated before a Segment is built,
// so a corrupt but well-framed file fails here with an error instead
// of panicking inside a later pipeline stage.
func FromRaw(r *Raw) (*Corpus, error) {
	c, _, err := fromRawArena(r)
	return c, err
}

// fromRawArena is FromRaw exposing the built arena, so FromRawGroups
// can chain appended groups onto it.
func fromRawArena(r *Raw) (*Corpus, *tokenArena, error) {
	if r.Vocab == nil {
		return nil, nil, fmt.Errorf("corpus: FromRaw: missing vocabulary")
	}
	if len(r.SegOffs) != len(r.SegLens) {
		return nil, nil, fmt.Errorf("corpus: FromRaw: %d segment offsets but %d lengths", len(r.SegOffs), len(r.SegLens))
	}
	totalSegs := 0
	for i, n := range r.SegCounts {
		if n < 0 {
			return nil, nil, fmt.Errorf("corpus: FromRaw: doc %d has negative segment count %d", i, n)
		}
		totalSegs += int(n)
	}
	if totalSegs != len(r.SegOffs) {
		return nil, nil, fmt.Errorf("corpus: FromRaw: documents claim %d segments, table has %d", totalSegs, len(r.SegOffs))
	}
	nTok := len(r.Words)
	if nTok > maxArenaTokens {
		return nil, nil, fmt.Errorf("corpus: FromRaw: arena holds %d tokens, limit is %d", nTok, maxArenaTokens)
	}
	for i := range r.SegOffs {
		off, n := r.SegOffs[i], r.SegLens[i]
		if off < 0 || n < 0 || int(off)+int(n) > nTok {
			return nil, nil, fmt.Errorf("corpus: FromRaw: segment %d spans [%d,%d) of a %d-token arena", i, off, int(off)+int(n), nTok)
		}
	}
	V := int32(r.Vocab.Size())
	for i, w := range r.Words {
		if w < 0 || w >= V {
			return nil, nil, fmt.Errorf("corpus: FromRaw: token %d has word id %d, vocabulary size is %d", i, w, V)
		}
	}
	ar := &tokenArena{words: r.Words, keep: r.KeepSurface, sealed: true}
	if r.KeepSurface {
		if len(r.Surface) != nTok || len(r.Gaps) != nTok {
			return nil, nil, fmt.Errorf("corpus: FromRaw: %d tokens but %d surfaces and %d gaps", nTok, len(r.Surface), len(r.Gaps))
		}
		if len(r.Pool) == 0 || r.Pool[0] != "" {
			return nil, nil, fmt.Errorf("corpus: FromRaw: string pool must start with the empty string")
		}
		P := uint32(len(r.Pool))
		for i := range r.Surface {
			if r.Surface[i] >= P || r.Gaps[i] >= P {
				return nil, nil, fmt.Errorf("corpus: FromRaw: token %d references string pool entry %d/%d, pool size is %d",
					i, r.Surface[i], r.Gaps[i], P)
			}
		}
		ar.surface = r.Surface
		ar.gaps = r.Gaps
		ar.pool = stringPool{strs: r.Pool}
	}
	c := &Corpus{
		Docs:        make([]*Document, len(r.SegCounts)),
		Vocab:       r.Vocab,
		TotalTokens: r.TotalTokens,
		BuildOpts:   r.BuildOpts,
	}
	docBlock := make([]Document, len(r.SegCounts))
	segBlock := make([]Segment, totalSegs)
	next := 0
	for i, n := range r.SegCounts {
		docBlock[i] = Document{ID: i, Segments: segBlock[next : next+int(n) : next+int(n)]}
		for j := 0; j < int(n); j++ {
			segBlock[next+j] = Segment{ar: ar, off: r.SegOffs[next+j], n: r.SegLens[next+j]}
		}
		next += int(n)
		c.Docs[i] = &docBlock[i]
	}
	return c, ar, nil
}

// RawGroup is the columnar delta one corpus-file append adds: the new
// documents' token columns, the string-pool entries they introduced
// beyond the previous group's pool, and their segment table with
// offsets relative to this group's own arena. FromRawGroups chains
// groups onto a base Raw without copying either side.
type RawGroup struct {
	Words   []int32
	Surface []uint32 // nil unless the corpus keeps surfaces
	Gaps    []uint32
	// PoolDelta holds only the strings first interned by this group;
	// the group's effective pool is the previous pool plus this delta.
	PoolDelta []string

	SegCounts []int32 // segments per appended document
	SegOffs   []int32 // arena offsets relative to this group's columns
	SegLens   []int32

	// TotalTokens is the kept-token count this group's documents add.
	TotalTokens int
}

// FromRawGroups assembles a corpus from a base columnar view plus a
// chain of appended groups — the in-memory shape of a multi-segment
// corpus file. base.Vocab must be the final (union) vocabulary; base
// token columns are validated against it, which is safe because ids
// only ever grow. Like FromRaw, nothing is copied: every group gets
// its own sealed arena chained onto the previous one, with a
// cumulative string pool built by appending each delta (string headers
// are copied once per group; the bytes are shared).
func FromRawGroups(base *Raw, groups []RawGroup) (*Corpus, error) {
	c, prev, err := fromRawArena(base)
	if err != nil {
		return nil, err
	}
	// A segmentless base builds an arena no Segment references, which
	// Raw's chain walk would never discover; the first group's arena
	// starts the chain instead (the cumulative pool still begins with
	// base.Pool below).
	if len(base.SegOffs) == 0 {
		prev = nil
	}
	V := int32(base.Vocab.Size())
	pool := base.Pool
	for gi := range groups {
		g := &groups[gi]
		nTok := len(g.Words)
		if nTok > maxArenaTokens {
			return nil, fmt.Errorf("corpus: FromRawGroups: group %d holds %d tokens, limit is %d", gi, nTok, maxArenaTokens)
		}
		for i, w := range g.Words {
			if w < 0 || w >= V {
				return nil, fmt.Errorf("corpus: FromRawGroups: group %d token %d has word id %d, vocabulary size is %d", gi, i, w, V)
			}
		}
		if len(g.SegOffs) != len(g.SegLens) {
			return nil, fmt.Errorf("corpus: FromRawGroups: group %d has %d segment offsets but %d lengths", gi, len(g.SegOffs), len(g.SegLens))
		}
		totalSegs := 0
		for i, n := range g.SegCounts {
			if n < 0 {
				return nil, fmt.Errorf("corpus: FromRawGroups: group %d doc %d has negative segment count %d", gi, i, n)
			}
			totalSegs += int(n)
		}
		if totalSegs != len(g.SegOffs) {
			return nil, fmt.Errorf("corpus: FromRawGroups: group %d documents claim %d segments, table has %d", gi, totalSegs, len(g.SegOffs))
		}
		for i := range g.SegOffs {
			off, n := g.SegOffs[i], g.SegLens[i]
			if off < 0 || n < 0 || int(off)+int(n) > nTok {
				return nil, fmt.Errorf("corpus: FromRawGroups: group %d segment %d spans [%d,%d) of a %d-token group", gi, i, off, int(off)+int(n), nTok)
			}
		}
		ar := &tokenArena{words: g.Words, keep: base.KeepSurface, sealed: true, prev: prev}
		if base.KeepSurface {
			if len(g.Surface) != nTok || len(g.Gaps) != nTok {
				return nil, fmt.Errorf("corpus: FromRawGroups: group %d has %d tokens but %d surfaces and %d gaps", gi, nTok, len(g.Surface), len(g.Gaps))
			}
			if len(g.PoolDelta) > 0 {
				grown := make([]string, 0, len(pool)+len(g.PoolDelta))
				grown = append(append(grown, pool...), g.PoolDelta...)
				pool = grown
			}
			P := uint32(len(pool))
			for i := range g.Surface {
				if g.Surface[i] >= P || g.Gaps[i] >= P {
					return nil, fmt.Errorf("corpus: FromRawGroups: group %d token %d references string pool entry %d/%d, pool size is %d",
						gi, i, g.Surface[i], g.Gaps[i], P)
				}
			}
			ar.surface = g.Surface
			ar.gaps = g.Gaps
			ar.pool = stringPool{strs: pool}
		} else if len(g.Surface) != 0 || len(g.Gaps) != 0 || len(g.PoolDelta) != 0 {
			return nil, fmt.Errorf("corpus: FromRawGroups: group %d carries surface columns but the corpus keeps none", gi)
		}
		docBase := len(c.Docs)
		docBlock := make([]Document, len(g.SegCounts))
		segBlock := make([]Segment, totalSegs)
		next := 0
		for i, n := range g.SegCounts {
			docBlock[i] = Document{ID: docBase + i, Segments: segBlock[next : next+int(n) : next+int(n)]}
			for j := 0; j < int(n); j++ {
				segBlock[next+j] = Segment{ar: ar, off: g.SegOffs[next+j], n: g.SegLens[next+j]}
			}
			next += int(n)
			c.Docs = append(c.Docs, &docBlock[i])
		}
		c.TotalTokens += g.TotalTokens
		prev = ar
	}
	return c, nil
}
