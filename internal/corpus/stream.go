package corpus

import (
	"runtime"
	"sync"
)

// chunkDocs is how many documents one worker chunk holds. Chunk
// boundaries are a function of document position only, so the merged
// corpus is identical for every worker count; the value trades
// scheduling overhead against merge-reorder buffering (at most
// ~2×workers chunks are in flight).
const chunkDocs = 256

// BuildFromSource builds a corpus by streaming documents out of src:
// nothing but the finished columnar corpus and a bounded window of
// in-flight chunks is ever resident, so multi-gigabyte inputs ingest
// in memory proportional to their token count, not their raw text.
//
// Tokenizing, stemming and interning run on opt.Workers goroutines
// (0 = GOMAXPROCS), each building an isolated shard with its own
// vocabulary; shards are then folded into the global corpus in input
// order, which replays vocabulary interning deterministically. The
// result is bit-identical to feeding every document to Builder.Add
// serially, for any worker count.
func BuildFromSource(src Source, opt BuildOptions) (*Corpus, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	serial := func(docs []string) (*Corpus, error) {
		b := NewBuilder(opt)
		for _, d := range docs {
			b.Add(d)
		}
		for {
			doc, ok, err := src.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				b.compact()
				return b.Corpus(), nil
			}
			b.Add(doc)
		}
	}
	if workers == 1 {
		return serial(nil)
	}

	// Pre-read the first chunk: a source that fits in one chunk (the
	// common case for tests, examples and small FromStrings calls)
	// takes the plain serial path instead of paying for goroutines and
	// a shard merge.
	first := make([]string, 0, chunkDocs)
	for len(first) < chunkDocs {
		doc, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return serial(first)
		}
		first = append(first, doc)
	}

	type job struct {
		seq  int
		docs []string
	}
	type shard struct {
		seq int
		b   *Builder
	}
	jobs := make(chan job, workers)
	shards := make(chan shard, workers)
	errc := make(chan error, 1)
	// inflight bounds dispatched-but-unmerged chunks, keeping peak
	// memory at a fixed multiple of the worker count even when one
	// slow chunk lets the rest of the corpus race ahead of the
	// in-order merge. The merge releases a slot per folded chunk, and
	// every dispatched chunk is eventually folded, so the reader can
	// never deadlock on a full window.
	inflight := make(chan struct{}, 2*workers)

	// Reader: pull documents, cut fixed-size chunks. On a source error
	// it records the error and stops; the deferred close drains the
	// pipeline so the error check below runs after all workers exit.
	go func() {
		defer close(jobs)
		seq := 0
		dispatch := func(docs []string) {
			inflight <- struct{}{}
			jobs <- job{seq, docs}
			seq++
		}
		dispatch(first)
		docs := make([]string, 0, chunkDocs)
		for {
			doc, ok, err := src.Next()
			if err != nil {
				errc <- err
				return
			}
			if !ok {
				break
			}
			docs = append(docs, doc)
			if len(docs) == chunkDocs {
				dispatch(docs)
				docs = make([]string, 0, chunkDocs)
			}
		}
		if len(docs) > 0 {
			dispatch(docs)
		}
	}()

	// Workers: tokenize+stem+intern each chunk into a private shard.
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				sb := NewBuilder(opt)
				for _, d := range j.docs {
					sb.Add(d)
				}
				shards <- shard{j.seq, sb}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(shards)
	}()

	// Merge: fold shards into the global corpus strictly in input
	// order, buffering the few that finish early. The first shard is
	// adopted wholesale — merging into an empty builder would assign
	// identical ids, so the copy is pure waste.
	var g *Builder
	next := 0
	pending := make(map[int]*Builder)
	for s := range shards {
		pending[s.seq] = s.b
		for {
			sb, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if g == nil {
				g = sb
			} else {
				g.merge(sb)
			}
			<-inflight
			next++
		}
	}
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	g.compact()
	return g.Corpus(), nil
}

// compact repacks the builder's storage into exactly-sized blocks: the
// arena sheds append slack, and the per-document Document structs and
// Segments slices — one heap object each during building — are rewritten
// into two shared blocks. On short-document corpora this allocator
// overhead rivals the token data itself, so BuildFromSource compacts
// once before returning. Safe only while no snapshot shares the
// builder, which is why incremental Builder.Add users are not
// compacted behind their backs.
func (b *Builder) compact() {
	b.ar.words = append(make([]int32, 0, len(b.ar.words)), b.ar.words...)
	if b.opt.KeepSurface {
		b.ar.surface = append(make([]uint32, 0, len(b.ar.surface)), b.ar.surface...)
		b.ar.gaps = append(make([]uint32, 0, len(b.ar.gaps)), b.ar.gaps...)
		b.ar.pool.strs = append(make([]string, 0, len(b.ar.pool.strs)), b.ar.pool.strs...)
	}
	// The intern index is only needed while building; reads go through
	// pool.strs. Dropping it here frees ~50+ bytes per distinct
	// surface/gap string for the corpus's whole lifetime. Adding to
	// this builder afterwards would repopulate a fresh index with
	// colliding ids, which is why compact is finalisation-only.
	b.ar.pool.ids = nil
	totalSegs := 0
	for _, d := range b.docs {
		totalSegs += len(d.Segments)
	}
	segBlock := make([]Segment, 0, totalSegs)
	docBlock := make([]Document, len(b.docs))
	for i, d := range b.docs {
		start := len(segBlock)
		segBlock = append(segBlock, d.Segments...)
		docBlock[i] = Document{ID: d.ID, Segments: segBlock[start:len(segBlock):len(segBlock)]}
		b.docs[i] = &docBlock[i]
	}
}

// merge folds a shard builder into b: stems are re-interned into b's
// vocabulary in the shard's first-occurrence order (matching what
// serial Adds of the same documents would have produced), token and
// string-pool ids are remapped, and the shard's documents are
// renumbered onto the end of b's document list.
func (b *Builder) merge(s *Builder) {
	remap := s.vocab.MergeInto(b.vocab)
	b.ar.grow(len(s.ar.words))
	base := b.ar.mark()
	for _, w := range s.ar.words {
		b.ar.words = append(b.ar.words, remap[w])
	}
	if b.opt.KeepSurface {
		poolRemap := make([]uint32, len(s.ar.pool.strs))
		for i, str := range s.ar.pool.strs {
			poolRemap[i] = b.ar.pool.intern(str)
		}
		for _, id := range s.ar.surface {
			b.ar.surface = append(b.ar.surface, poolRemap[id])
		}
		for _, id := range s.ar.gaps {
			b.ar.gaps = append(b.ar.gaps, poolRemap[id])
		}
	}
	for _, d := range s.docs {
		nd := &Document{ID: len(b.docs), Segments: make([]Segment, len(d.Segments))}
		for i, sg := range d.Segments {
			nd.Segments[i] = Segment{ar: b.ar, off: base + sg.off, n: sg.n}
		}
		b.docs = append(b.docs, nd)
	}
	b.total += s.total
}
