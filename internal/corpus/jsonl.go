package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadJSONL builds a corpus from JSON-lines input, extracting the
// document text from the given field of each object (e.g. "text" for
// Yelp-style review dumps, "title" for DBLP-style records). Lines that
// fail to parse or lack the field produce an error naming the line.
func ReadJSONL(r io.Reader, field string, opt BuildOptions) (*Corpus, error) {
	if field == "" {
		return nil, fmt.Errorf("corpus: ReadJSONL requires a field name")
	}
	b := NewBuilder(opt)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", lineNo, err)
		}
		raw, ok := obj[field]
		if !ok {
			return nil, fmt.Errorf("corpus: line %d: field %q missing", lineNo, field)
		}
		var text string
		if err := json.Unmarshal(raw, &text); err != nil {
			return nil, fmt.Errorf("corpus: line %d: field %q is not a string: %w", lineNo, field, err)
		}
		b.Add(text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading JSONL: %w", err)
	}
	return b.Corpus(), nil
}

// LoadJSONLFile is ReadJSONL over a file.
func LoadJSONLFile(path, field string, opt BuildOptions) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f, field, opt)
}

// ReadTSV builds a corpus from tab-separated input, using the given
// zero-based column as the document text (other columns — ids, labels,
// dates — are ignored). Rows with too few columns produce an error.
func ReadTSV(r io.Reader, column int, opt BuildOptions) (*Corpus, error) {
	if column < 0 {
		return nil, fmt.Errorf("corpus: ReadTSV requires column >= 0")
	}
	b := NewBuilder(opt)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		cols := strings.Split(sc.Text(), "\t")
		if column >= len(cols) {
			return nil, fmt.Errorf("corpus: line %d: column %d of %d missing", lineNo, column, len(cols))
		}
		b.Add(cols[column])
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading TSV: %w", err)
	}
	return b.Corpus(), nil
}
