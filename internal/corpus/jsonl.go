package corpus

import (
	"fmt"
	"io"
	"os"
)

// ReadJSONL builds a corpus from JSON-lines input, extracting the
// document text from the given field of each object (e.g. "text" for
// Yelp-style review dumps, "title" for DBLP-style records). Lines that
// fail to parse or lack the field produce an error naming the line.
func ReadJSONL(r io.Reader, field string, opt BuildOptions) (*Corpus, error) {
	return BuildFromSource(JSONLSource(r, field), opt)
}

// LoadJSONLFile is ReadJSONL over a file. gzip-compressed files are
// detected by their magic bytes and decompressed transparently.
func LoadJSONLFile(path, field string, opt BuildOptions) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	r, err := MaybeDecompress(f)
	if err != nil {
		return nil, err
	}
	return ReadJSONL(r, field, opt)
}

// ReadTSV builds a corpus from tab-separated input, using the given
// zero-based column as the document text (other columns — ids, labels,
// dates — are ignored). Rows with too few columns produce an error.
func ReadTSV(r io.Reader, column int, opt BuildOptions) (*Corpus, error) {
	return BuildFromSource(TSVSource(r, column), opt)
}
