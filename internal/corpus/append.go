package corpus

import (
	"fmt"

	"topmine/internal/textproc"
)

// Appender extends an existing corpus with new documents in place.
// The corpus's own token columns are never copied or mutated — they
// may be zero-copy views into a read-only mmap'd corpus file — so
// appended tokens go to a fresh growable arena chained onto the last
// existing one (see tokenArena.prev). The shared vocabulary keeps
// interning exactly as a serial build would, which makes appending
// observationally identical to rebuilding from the concatenated
// input: same ids, same counts, same string pool, and therefore the
// same bytes when the grown corpus is persisted.
type Appender struct {
	c        *Corpus
	opt      BuildOptions
	ar       *tokenArena
	poolBase int // pool entries inherited from the base corpus
	docsBase int
	tokens   int // kept tokens appended so far
}

// NewAppender prepares c for in-place growth. The corpus must carry a
// vocabulary that still supports interning (true for corpora built by
// this package and for corpora opened from .tpc files).
func NewAppender(c *Corpus) (*Appender, error) {
	if c == nil || c.Vocab == nil {
		return nil, fmt.Errorf("corpus: NewAppender: corpus has no vocabulary")
	}
	base := lastArena(c)
	keep := c.BuildOpts.KeepSurface
	if base != nil && base.keep != keep {
		return nil, fmt.Errorf("corpus: NewAppender: corpus arena and build options disagree on surface retention")
	}
	a := &Appender{c: c, opt: c.BuildOpts, docsBase: len(c.Docs)}
	a.ar = &tokenArena{keep: keep, prev: base}
	if keep {
		// The new arena's pool is cumulative: the base strings keep
		// their ids (only the headers are copied; bytes are shared) and
		// the intern index is rebuilt over them once, so appended
		// tokens intern against the full pool exactly like a serial
		// build over the concatenated input would.
		if base == nil || len(base.pool.strs) == 0 {
			a.ar.pool.init()
		} else {
			strs := base.pool.strs
			a.ar.pool.strs = append(make([]string, 0, len(strs)), strs...)
			a.ar.pool.ids = make(map[string]uint32, len(strs))
			for i, s := range strs {
				a.ar.pool.ids[s] = uint32(i)
			}
		}
		a.poolBase = len(a.ar.pool.strs)
	}
	return a, nil
}

// lastArena returns the arena holding the corpus's final tokens — the
// chain head a new append arena must link to. Nil for corpora with no
// segments.
func lastArena(c *Corpus) *tokenArena {
	for i := len(c.Docs) - 1; i >= 0; i-- {
		if segs := c.Docs[i].Segments; len(segs) > 0 {
			return segs[len(segs)-1].ar
		}
	}
	return nil
}

// Add processes one raw document with the corpus's build options and
// appends it: the corpus's document list, token total and vocabulary
// all grow immediately. Like Builder.Add, documents that tokenize to
// nothing still occupy a slot.
func (a *Appender) Add(text string) *Document {
	doc := addDocument(a.ar, a.c.Vocab, a.opt, text, len(a.c.Docs))
	n := doc.Len()
	a.c.TotalTokens += n
	a.tokens += n
	a.c.Docs = append(a.c.Docs, doc)
	return doc
}

// AddSource drains src into the corpus and returns how many documents
// were appended. Unlike BuildFromSource, appending is serial: growth
// batches are incremental by nature, and serial interning is what
// keeps the grown corpus bit-identical to a from-scratch build.
func (a *Appender) AddSource(src Source) (int, error) {
	n := 0
	for {
		doc, ok, err := src.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		a.Add(doc)
		n++
	}
}

// DocsAdded returns how many documents this appender has added.
func (a *Appender) DocsAdded() int { return len(a.c.Docs) - a.docsBase }

// TokensAdded returns how many kept tokens this appender has added.
func (a *Appender) TokensAdded() int { return a.tokens }

// Group returns the columnar delta of everything appended so far —
// the RawGroup a corpus file's appended segment persists. The slices
// alias the appender's arena; the caller must treat them as read-only
// and must not interleave further Adds with their use.
func (a *Appender) Group() *RawGroup {
	g := &RawGroup{Words: a.ar.words, TotalTokens: a.tokens}
	if a.ar.keep {
		g.Surface = a.ar.surface
		g.Gaps = a.ar.gaps
		g.PoolDelta = a.ar.pool.strs[a.poolBase:]
	}
	docs := a.c.Docs[a.docsBase:]
	g.SegCounts = make([]int32, len(docs))
	for i, d := range docs {
		g.SegCounts[i] = int32(len(d.Segments))
		for si := range d.Segments {
			g.SegOffs = append(g.SegOffs, d.Segments[si].off)
			g.SegLens = append(g.SegLens, d.Segments[si].n)
		}
	}
	return g
}

// addDocument is the one tokenize→filter→stem→intern path shared by
// Builder.Add and Appender.Add, so appending replays serial building
// exactly rather than approximating it in a second copy of the loop.
func addDocument(ar *tokenArena, vocab *textproc.Vocab, opt BuildOptions, text string, id int) *Document {
	doc := &Document{ID: id}
	for _, rawSeg := range textproc.Tokenize(text) {
		kept := textproc.Filter(rawSeg, opt.RemoveStopwords)
		if len(kept) == 0 {
			continue
		}
		ar.grow(len(kept))
		off := ar.mark()
		for _, tok := range kept {
			stem := tok.Surface
			if opt.Stem {
				stem = textproc.Stem(stem)
			}
			ar.push(vocab.Intern(stem, tok.Surface), tok.Surface, tok.Gap)
		}
		doc.Segments = append(doc.Segments, ar.seg(off))
	}
	return doc
}
