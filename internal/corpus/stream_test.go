package corpus

import (
	"fmt"
	"strings"
	"testing"
)

// genDocs produces a deterministic, vocabulary-rich document set large
// enough to span several builder chunks (so parallel merges are
// actually exercised) without importing the synth package (which would
// cycle back into corpus).
func genDocs(n int) []string {
	subjects := []string{"frequent pattern", "support vector", "topic model",
		"neural network", "query optimization", "data stream"}
	verbs := []string{"mining", "learning", "indexing", "ranking", "sampling"}
	tails := []string{"for large databases", "over evolving text corpora",
		"with bounded memory", "at web scale", "under noisy labels"}
	docs := make([]string, n)
	state := uint64(88172645463325252)
	next := func(m int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(m))
	}
	for i := range docs {
		docs[i] = fmt.Sprintf("%s %s %s: novel%d results, and the %s approach.",
			subjects[next(len(subjects))], verbs[next(len(verbs))],
			tails[next(len(tails))], next(37), subjects[next(len(subjects))])
	}
	return docs
}

// renderCorpus serialises everything observable about a corpus —
// document/segment structure, token ids, surfaces, gaps, display
// forms, vocabulary contents, counts and un-stemmed forms — so two
// corpora can be compared for exact equivalence.
func renderCorpus(c *Corpus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "docs=%d total=%d vocab=%d\n", c.NumDocs(), c.TotalTokens, c.Vocab.Size())
	for id := int32(0); int(id) < c.Vocab.Size(); id++ {
		fmt.Fprintf(&b, "w%d=%s count=%d unstem=%s\n", id, c.Vocab.Word(id), c.Vocab.Count(id), c.Vocab.Unstem(id))
	}
	for _, d := range c.Docs {
		fmt.Fprintf(&b, "doc%d:", d.ID)
		for si := range d.Segments {
			seg := &d.Segments[si]
			fmt.Fprintf(&b, " [%v", seg.Words())
			for i := 0; i < seg.Len(); i++ {
				fmt.Fprintf(&b, " %q/%q", seg.Surface(i), seg.Gap(i))
			}
			fmt.Fprintf(&b, " disp=%q]", c.DisplayPhrase(seg, 0, seg.Len()))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestBuildFromSourceMatchesFromStrings(t *testing.T) {
	docs := genDocs(700) // several 256-doc chunks plus a partial tail
	for _, keepSurface := range []bool{true, false} {
		opt := DefaultBuildOptions()
		opt.KeepSurface = keepSurface
		want := renderCorpus(FromStrings(docs, opt))
		for _, workers := range []int{1, 2, 8} {
			opt.Workers = workers
			c, err := BuildFromSource(SliceSource(docs), opt)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderCorpus(c); got != want {
				t.Fatalf("keepSurface=%v workers=%d: streamed corpus differs from FromStrings", keepSurface, workers)
			}
		}
	}
}

func TestBuildFromSourceLineSourceMatchesSlice(t *testing.T) {
	docs := genDocs(300)
	opt := DefaultBuildOptions()
	opt.Workers = 4
	fromSlice, err := BuildFromSource(SliceSource(docs), opt)
	if err != nil {
		t.Fatal(err)
	}
	fromLines, err := BuildFromSource(LineSource(strings.NewReader(strings.Join(docs, "\n")+"\n")), opt)
	if err != nil {
		t.Fatal(err)
	}
	if renderCorpus(fromLines) != renderCorpus(fromSlice) {
		t.Fatal("line-streamed corpus differs from slice-built corpus")
	}
}

func TestBuildFromSourcePropagatesError(t *testing.T) {
	r := &failingReader{data: strings.Repeat("a fine document line\n", 400)}
	for _, workers := range []int{1, 4} {
		opt := DefaultBuildOptions()
		opt.Workers = workers
		if _, err := BuildFromSource(LineSource(r), opt); err == nil {
			t.Fatalf("workers=%d: injected read failure not surfaced", workers)
		}
		r.data = strings.Repeat("a fine document line\n", 400)
	}
}

func TestLineReaderReportsTooLongLine(t *testing.T) {
	// White-box: shrink the cap so the test does not allocate 16 MiB.
	lr := newLineReaderSize(strings.NewReader("ok line\n"+strings.Repeat("x", 4<<20)), 1<<20)
	if _, ok := lr.next(); !ok {
		t.Fatal("first line should scan")
	}
	if _, ok := lr.next(); ok {
		t.Fatal("over-long line should stop the scanner")
	}
	err := lr.finish("reading documents")
	if err == nil {
		t.Fatal("over-long line should surface an error")
	}
	for _, want := range []string{"line 2", "exceeds 1 MiB"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestJSONLSourceNamesFailingLine(t *testing.T) {
	input := "{\"text\": \"fine\"}\n\n{\"text\": \"also fine\"}\n{\"wrong\": 1}\n"
	src := JSONLSource(strings.NewReader(input), "text")
	for i := 0; i < 2; i++ {
		if _, ok, err := src.Next(); !ok || err != nil {
			t.Fatalf("doc %d: ok=%v err=%v", i, ok, err)
		}
	}
	_, _, err := src.Next()
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error should name line 4 (blank lines still count), got %v", err)
	}
}

// TestBuilderCorpusSnapshot pins the Builder.Corpus contract: the
// returned corpus is a snapshot whose document list and token total
// are unaffected by later Adds, while already-snapshotted documents
// stay fully readable as the shared arena grows underneath them.
func TestBuilderCorpusSnapshot(t *testing.T) {
	b := NewBuilder(DefaultBuildOptions())
	b.Add("alpha beta gamma")
	snap := b.Corpus()
	if snap.NumDocs() != 1 || snap.TotalTokens != 3 {
		t.Fatalf("snapshot = %d docs / %d tokens, want 1/3", snap.NumDocs(), snap.TotalTokens)
	}
	for i := 0; i < 2000; i++ { // force several arena reallocations
		b.Add(fmt.Sprintf("delta epsilon zeta eta theta word%d", i))
	}
	if snap.NumDocs() != 1 || snap.TotalTokens != 3 {
		t.Fatalf("later Adds leaked into snapshot: %d docs / %d tokens", snap.NumDocs(), snap.TotalTokens)
	}
	seg := &snap.Docs[0].Segments[0]
	if seg.Len() != 3 || seg.Surface(0) != "alpha" || seg.Surface(2) != "gamma" {
		t.Fatalf("snapshotted segment unreadable after arena growth: len=%d %q %q",
			seg.Len(), seg.Surface(0), seg.Surface(2))
	}
	if got := b.Corpus(); got.NumDocs() != 2001 {
		t.Fatalf("fresh snapshot = %d docs, want 2001", got.NumDocs())
	}
}
