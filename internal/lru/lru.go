// Package lru provides a generic, sharded, byte-bounded LRU cache
// safe for concurrent use. Keys hash to one of N independently locked
// shards, so concurrent readers and writers on different shards never
// contend; each shard keeps its own recency list and evicts once its
// slice of the byte budget is exceeded. Hit/miss/eviction counters are
// maintained with atomics and readable at any time via Stats.
//
// The cache charges each entry the caller-provided size function's
// value (plus nothing else), so the budget bounds payload bytes, not
// total process memory; pick a size function that covers whatever
// dominates an entry (for string/[]byte payloads, their lengths).
package lru

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Cache is a sharded LRU mapping K to V, bounded by total payload
// bytes. The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	shards []*shard[K, V]
	seed   maphash.Seed
	sizeOf func(K, V) int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard[K comparable, V any] struct {
	mu       sync.Mutex
	entries  map[K]*list.Element
	order    *list.List // front = most recently used
	bytes    int64
	maxBytes int64
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// Stats is a point-in-time snapshot of cache effectiveness and size.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	MaxBytes  int64
}

// New builds a cache bounded to maxBytes total payload, split across
// nShards independently locked shards (values < 1 become 1). sizeOf
// reports the byte charge of one entry; it is called once at Put and
// must be consistent for a given pair. A single entry larger than its
// shard's budget is still admitted alone (the shard holds just it), so
// Put never silently discards.
func New[K comparable, V any](maxBytes int64, nShards int, sizeOf func(K, V) int) *Cache[K, V] {
	if nShards < 1 {
		nShards = 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	c := &Cache[K, V]{
		shards: make([]*shard[K, V], nShards),
		seed:   maphash.MakeSeed(),
		sizeOf: sizeOf,
	}
	per := maxBytes / int64(nShards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard[K, V]{
			entries:  make(map[K]*list.Element),
			order:    list.New(),
			maxBytes: per,
		}
	}
	return c
}

func (c *Cache[K, V]) shardFor(key K) *shard[K, V] {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	return c.shards[maphash.Comparable(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*entry[K, V]).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts or replaces key's value, evicting least-recently-used
// entries from the key's shard until the shard is back under budget.
func (c *Cache[K, V]) Put(key K, val V) {
	size := int64(c.sizeOf(key, val))
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		s.bytes += size - e.size
		e.val, e.size = val, size
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&entry[K, V]{key: key, val: val, size: size})
		s.bytes += size
	}
	var evicted uint64
	// Keep at least the newest entry even when it alone exceeds the
	// shard budget: evicting the value just written would turn every
	// oversized Put into a guaranteed miss.
	for s.bytes > s.maxBytes && s.order.Len() > 1 {
		el := s.order.Back()
		e := el.Value.(*entry[K, V])
		s.order.Remove(el)
		delete(s.entries, e.key)
		s.bytes -= e.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Remove drops key if present, returning whether it was cached.
func (c *Cache[K, V]) Remove(key K) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry[K, V])
	s.order.Remove(el)
	delete(s.entries, e.key)
	s.bytes -= e.size
	return true
}

// Purge empties the cache (counters are preserved; they are lifetime
// totals, not occupancy).
func (c *Cache[K, V]) Purge() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = make(map[K]*list.Element)
		s.order.Init()
		s.bytes = 0
		s.mu.Unlock()
	}
}

// Stats snapshots counters and occupancy. Counters are exact; Entries
// and Bytes are summed shard by shard, so a concurrent writer may make
// the totals momentarily inconsistent with each other — fine for
// metrics, not for invariants.
func (c *Cache[K, V]) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Entries += s.order.Len()
		st.Bytes += s.bytes
		st.MaxBytes += s.maxBytes
		s.mu.Unlock()
	}
	return st
}
