package lru

import (
	"fmt"
	"sync"
	"testing"
)

func sizeStr(k string, v string) int { return len(k) + len(v) }

func TestGetPutBasics(t *testing.T) {
	c := New[string, string](1<<20, 4, sizeStr)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", "1")
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("a", "22")
	if v, _ := c.Get("a"); v != "22" {
		t.Fatalf("overwrite lost: %q", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 entry", st)
	}
	if st.Bytes != int64(len("a")+len("22")) {
		t.Fatalf("bytes = %d after overwrite, want %d", st.Bytes, len("a")+len("22"))
	}
}

func TestEvictionIsLRU(t *testing.T) {
	// One shard so recency order is global and deterministic.
	c := New[string, string](20, 1, sizeStr)
	c.Put("a", "xxxxxxxxx") // 10 bytes
	c.Put("b", "yyyyyyyyy") // 10 bytes -> full
	c.Get("a")              // refresh a; b is now LRU
	c.Put("c", "zzzzzzzzz") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s was evicted but was not LRU", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestOversizedEntryStillCached(t *testing.T) {
	c := New[string, string](8, 1, sizeStr)
	c.Put("k", "a value far larger than the whole budget")
	if _, ok := c.Get("k"); !ok {
		t.Fatal("oversized entry was not admitted")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	// The next Put must evict it to get under budget again.
	c.Put("small", "v")
	if _, ok := c.Get("k"); ok {
		t.Fatal("oversized entry survived a later Put")
	}
}

func TestByteBudgetHeld(t *testing.T) {
	const budget = 1 << 10
	c := New[int, string](budget, 4, func(k int, v string) int { return 8 + len(v) })
	for i := 0; i < 1000; i++ {
		c.Put(i, "0123456789012345678901234567890123456789")
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under a tight budget")
	}
}

func TestRemoveAndPurge(t *testing.T) {
	c := New[string, string](1<<20, 2, sizeStr)
	c.Put("a", "1")
	c.Put("b", "2")
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false for cached key")
	}
	if c.Remove("a") {
		t.Fatal("Remove(a) = true for absent key")
	}
	c.Purge()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after purge: %+v", st)
	}
}

func TestStructKeys(t *testing.T) {
	type key struct {
		Model string
		Iters int
	}
	c := New[key, []byte](1<<20, 8, func(k key, v []byte) int { return len(k.Model) + len(v) })
	k1 := key{"m", 50}
	c.Put(k1, []byte("theta"))
	if v, ok := c.Get(key{"m", 50}); !ok || string(v) != "theta" {
		t.Fatalf("struct-key get = %q, %v", v, ok)
	}
	if _, ok := c.Get(key{"m", 51}); ok {
		t.Fatal("distinct struct key collided")
	}
}

// TestConcurrent hammers every shard from many goroutines; run under
// -race this is the package's data-race check.
func TestConcurrent(t *testing.T) {
	c := New[string, string](1<<12, 8, sizeStr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%64)
				if i%3 == 0 {
					c.Put(k, "some cached payload value")
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("budget violated: %d > %d", st.Bytes, st.MaxBytes)
	}
}
