package baselines

import (
	"strings"
	"testing"

	"topmine/internal/corpus"
	"topmine/internal/synth"
)

// smallCorpus builds a synthetic titles corpus small enough for the
// expensive baselines.
func smallCorpus(t *testing.T, docs int, seed uint64) *corpus.Corpus {
	t.Helper()
	spec := synth.TwentyConf()
	return synth.GenerateCorpus(spec, synth.Options{Docs: docs, Seed: seed}, corpus.DefaultBuildOptions())
}

// allMethods lists every comparator with cheap test parameters.
func allMethods() []Method {
	return []Method{
		LDAUnigrams{},
		TNG{},
		PDLDA{},
		KERT{},
		TurboTopics{Permutations: 2, MaxRounds: 2},
	}
}

func TestMethodNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allMethods() {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("bad or duplicate method name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestAllMethodsProduceTopics(t *testing.T) {
	c := smallCorpus(t, 150, 3)
	opt := Options{K: 3, Iterations: 30, Seed: 7, TopPhrases: 10, MinSupport: 2}
	for _, m := range allMethods() {
		out := m.Run(c, opt)
		if len(out) != opt.K {
			t.Fatalf("%s: %d topics, want %d", m.Name(), len(out), opt.K)
		}
		for k, tp := range out {
			if tp.Topic != k {
				t.Fatalf("%s: topic index mismatch", m.Name())
			}
			if len(tp.Unigrams) == 0 {
				t.Fatalf("%s: topic %d has no unigrams", m.Name(), k)
			}
			for _, p := range tp.Phrases {
				if len(p.Words) < 2 {
					t.Fatalf("%s: phrase with < 2 words: %+v", m.Name(), p)
				}
				if p.Display == "" {
					t.Fatalf("%s: empty display", m.Name())
				}
				if len(p.Words) > 0 && p.Score <= 0 {
					t.Fatalf("%s: non-positive score %v", m.Name(), p.Score)
				}
			}
		}
	}
}

func TestMethodsDeterministic(t *testing.T) {
	c := smallCorpus(t, 80, 5)
	opt := Options{K: 3, Iterations: 15, Seed: 11, TopPhrases: 8, MinSupport: 2}
	for _, mk := range []func() Method{
		func() Method { return TNG{} },
		func() Method { return PDLDA{} },
		func() Method { return KERT{} },
		func() Method { return TurboTopics{Permutations: 2, MaxRounds: 2} },
	} {
		a := mk().Run(c, opt)
		b := mk().Run(c, opt)
		for k := range a {
			if len(a[k].Phrases) != len(b[k].Phrases) {
				t.Fatalf("%s: nondeterministic phrase counts on topic %d", mk().Name(), k)
			}
			for i := range a[k].Phrases {
				if a[k].Phrases[i].Display != b[k].Phrases[i].Display {
					t.Fatalf("%s: nondeterministic ranking", mk().Name())
				}
			}
		}
	}
}

func TestTNGFindsSomePlantedPhrases(t *testing.T) {
	c := smallCorpus(t, 600, 13)
	out := TNG{}.Run(c, Options{K: 5, Iterations: 60, Seed: 17, TopPhrases: 15, MinSupport: 3})
	var all []string
	for _, tp := range out {
		for _, p := range tp.Phrases {
			all = append(all, p.Display)
		}
	}
	joined := strings.Join(all, "|")
	hits := 0
	for _, want := range []string{"data", "learning", "information", "language", "query"} {
		if strings.Contains(joined, want) {
			hits++
		}
	}
	if len(all) == 0 {
		t.Fatal("TNG produced no phrases at all")
	}
	if hits < 2 {
		t.Fatalf("TNG phrases look unrelated to planted topics: %v", all[:min(10, len(all))])
	}
}

func TestPDLDAPhrasesShareTopicWithinRun(t *testing.T) {
	// Structural property: every extracted phrase derives from a join
	// run, which by construction shares one topic. Just verify phrases
	// are non-empty and well-formed on a tiny corpus.
	c := smallCorpus(t, 120, 19)
	out := PDLDA{}.Run(c, Options{K: 3, Iterations: 25, Seed: 23, TopPhrases: 10, MinSupport: 2})
	total := 0
	for _, tp := range out {
		total += len(tp.Phrases)
	}
	if total == 0 {
		t.Fatal("PDLDA extracted no phrases")
	}
}

func TestKERTPatternsAreSortedSets(t *testing.T) {
	c := smallCorpus(t, 200, 29)
	out := KERT{}.Run(c, Options{K: 3, Iterations: 30, Seed: 31, TopPhrases: 10, MinSupport: 3})
	for _, tp := range out {
		for _, p := range tp.Phrases {
			for i := 1; i < len(p.Words); i++ {
				if p.Words[i-1] >= p.Words[i] {
					t.Fatalf("KERT itemset not a sorted set: %v", p.Words)
				}
			}
		}
	}
}

func TestKERTLongerThanBigrams(t *testing.T) {
	// KERT's unconstrained mining is known (per the paper) to favour
	// longer patterns; ensure the machinery can produce size > 2 sets.
	c := smallCorpus(t, 600, 37)
	out := KERT{}.Run(c, Options{K: 5, Iterations: 40, Seed: 41, TopPhrases: 20, MinSupport: 3})
	found := false
	for _, tp := range out {
		for _, p := range tp.Phrases {
			if len(p.Words) >= 3 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("KERT never produced a pattern of size >= 3")
	}
}

func TestTurboUnitsAreContiguousCounts(t *testing.T) {
	c := smallCorpus(t, 300, 43)
	out := TurboTopics{Permutations: 2, MaxRounds: 3}.Run(c,
		Options{K: 3, Iterations: 30, Seed: 47, TopPhrases: 10, MinSupport: 2})
	total := 0
	for _, tp := range out {
		total += len(tp.Phrases)
		for _, p := range tp.Phrases {
			if p.Score < 2 {
				t.Fatalf("Turbo phrase below support: %+v", p)
			}
		}
	}
	if total == 0 {
		t.Fatal("Turbo extracted no phrases")
	}
}

func TestLDAUnigramsNoPhrases(t *testing.T) {
	c := smallCorpus(t, 60, 53)
	out := LDAUnigrams{}.Run(c, Options{K: 2, Iterations: 10, Seed: 59})
	for _, tp := range out {
		if len(tp.Phrases) != 0 {
			t.Fatal("LDA baseline should not emit phrases")
		}
		if len(tp.Unigrams) == 0 {
			t.Fatal("LDA baseline missing unigrams")
		}
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	o := Options{K: 4}
	o.fill()
	if o.TopPhrases != 20 || o.MinSupport != 3 || o.Iterations != 200 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
