package baselines

import (
	"math"
	"sort"

	"topmine/internal/corpus"
	"topmine/internal/counter"
)

// KERT implements the post-LDA pipeline of Danilevsky et al. (SDM
// 2014): run LDA, group each document's words by their sampled topic,
// mine frequent *itemsets* (unconstrained by word order or adjacency)
// from each topic's per-document word bags, and rank the patterns by
// the paper's four heuristics — coverage (popularity), purity,
// phraseness and completeness.
//
// The unconstrained mining is exactly what the ToPMine paper credits
// for KERT's strong phrase-intrusion scores and blames for both its
// weak phrase quality and its memory blow-up on long documents
// (§7.2, §7.4): the number of itemsets grows combinatorially with bag
// size. This reproduction preserves that behaviour (bag size is capped
// only by the document length).
type KERT struct {
	// MaxPatternLen bounds itemset size (default 4).
	MaxPatternLen int
	// CompletenessTau: a pattern is dropped when a superset reaches
	// this fraction of its support (default 0.8).
	CompletenessTau float64
}

// Name implements Method.
func (KERT) Name() string { return "KERT" }

// Run implements Method.
func (k KERT) Run(c *corpus.Corpus, opt Options) []TopicPhrases {
	opt.fill()
	maxLen := k.MaxPatternLen
	if maxLen <= 0 {
		maxLen = 4
	}
	tau := k.CompletenessTau
	if tau <= 0 {
		tau = 0.8
	}
	m, docs := runLDA(c, opt)

	// Per-topic transactions: the distinct words of doc d assigned k.
	transactions := make([][][]int32, opt.K)
	for d := range docs {
		perTopic := make(map[int8][]int32)
		seen := make(map[int64]bool)
		for g, clique := range docs[d].Cliques {
			w := clique[0]
			kk := int8(m.Z[d][g])
			key := int64(kk)*int64(m.V) + int64(w)
			if !seen[key] {
				seen[key] = true
				perTopic[kk] = append(perTopic[kk], w)
			}
		}
		for kk, bag := range perTopic {
			sort.Slice(bag, func(a, b int) bool { return bag[a] < bag[b] })
			transactions[kk] = append(transactions[kk], bag)
		}
	}

	out := make([]TopicPhrases, opt.K)
	for kk := 0; kk < opt.K; kk++ {
		out[kk] = k.mineTopic(c, m.TopUnigrams(kk, opt.TopPhrases, c), kk,
			transactions, opt, maxLen, tau)
	}
	return out
}

// mineTopic runs Apriori over one topic's transactions and ranks the
// frequent itemsets.
func (k KERT) mineTopic(c *corpus.Corpus, unigrams []string, topic int,
	transactions [][][]int32, opt Options, maxLen int, tau float64) TopicPhrases {

	txs := transactions[topic]
	tp := TopicPhrases{Topic: topic, Unigrams: unigrams}
	if len(txs) == 0 {
		return tp
	}
	minSup := int64(opt.MinSupport)

	// support[key] = number of transactions containing the itemset.
	support := make(map[string]int64)
	// Level 1.
	var frequent []string
	{
		cnt := make(map[int32]int64)
		for _, tx := range txs {
			for _, w := range tx {
				cnt[w]++
			}
		}
		for w, n := range cnt {
			if n >= minSup {
				key := counter.Key([]int32{w})
				support[key] = n
				frequent = append(frequent, key)
			}
		}
	}
	sort.Strings(frequent)
	prevLevel := frequent
	for size := 2; size <= maxLen && len(prevLevel) > 0; size++ {
		// Candidate generation by prefix join, then support counting by
		// transaction scan (itemsets are sorted id slices).
		cands := make(map[string]int64)
		prevSet := make(map[string]bool, len(prevLevel))
		for _, p := range prevLevel {
			prevSet[p] = true
		}
		for i := 0; i < len(prevLevel); i++ {
			a := counter.Unkey(prevLevel[i])
			for j := i + 1; j < len(prevLevel); j++ {
				b := counter.Unkey(prevLevel[j])
				if !samePrefix(a, b) {
					break // sorted: once prefixes diverge, stop
				}
				merged := make([]int32, len(a)+1)
				copy(merged, a)
				merged[len(a)] = b[len(b)-1]
				// All (size-1)-subsets must be frequent.
				if !allSubsetsFrequent(merged, prevSet) {
					continue
				}
				cands[counter.Key(merged)] = 0
			}
		}
		if len(cands) == 0 {
			break
		}
		for _, tx := range txs {
			countContained(tx, cands)
		}
		var level []string
		for key, n := range cands {
			if n >= minSup {
				support[key] = n
				level = append(level, key)
			}
		}
		sort.Strings(level)
		prevLevel = level
	}

	// Completeness filter: drop a pattern when a frequent superset
	// explains most of its support.
	complete := make(map[string]bool, len(support))
	for key := range support {
		complete[key] = true
	}
	for key, sup := range support {
		words := counter.Unkey(key)
		if len(words) == 1 {
			continue
		}
		for drop := 0; drop < len(words); drop++ {
			sub := make([]int32, 0, len(words)-1)
			sub = append(sub, words[:drop]...)
			sub = append(sub, words[drop+1:]...)
			subKey := counter.Key(sub)
			if subSup, ok := support[subKey]; ok && float64(sup)/float64(subSup) >= tau {
				complete[subKey] = false
			}
		}
	}

	// Ranking: coverage * purity * phraseness (geometric spirit of the
	// KERT scoring function), multi-word patterns only.
	nTx := float64(len(txs))
	total := 0.0
	wordFreq := make(map[int32]int64)
	for _, tx := range txs {
		total += float64(len(tx))
		for _, w := range tx {
			wordFreq[w]++
		}
	}
	type scored struct {
		key   string
		score float64
		sup   int64
	}
	var items []scored
	for key, sup := range support {
		words := counter.Unkey(key)
		if len(words) < 2 || !complete[key] {
			continue
		}
		coverage := float64(sup) / nTx
		// Phraseness: log p(P|k) - sum log p(w|k).
		logP := math.Log(coverage)
		for _, w := range words {
			logP -= math.Log(float64(wordFreq[w]) / nTx)
		}
		// Purity: support share inside this topic versus the corpus
		// document frequency of the full word set.
		df := corpusDocFreq(words, transactions)
		purity := float64(sup) / float64(df)
		score := coverage * purity * math.Max(logP, 1e-3)
		items = append(items, scored{key, score, sup})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].score != items[j].score {
			return items[i].score > items[j].score
		}
		return items[i].key < items[j].key
	})
	if len(items) > opt.TopPhrases {
		items = items[:opt.TopPhrases]
	}
	for _, it := range items {
		words := counter.Unkey(it.key)
		tp.Phrases = append(tp.Phrases, RankedPhrase{
			Words: words, Display: displayWords(c, words), Score: it.score,
		})
	}
	return tp
}

// samePrefix reports whether a and b agree on all but the last element.
func samePrefix(a, b []int32) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent checks the Apriori condition for a sorted itemset.
func allSubsetsFrequent(items []int32, prev map[string]bool) bool {
	sub := make([]int32, len(items)-1)
	for drop := 0; drop < len(items); drop++ {
		copy(sub, items[:drop])
		copy(sub[drop:], items[drop+1:])
		if !prev[counter.Key(sub)] {
			return false
		}
	}
	return true
}

// countContained increments every candidate contained in tx (both
// sorted).
func countContained(tx []int32, cands map[string]int64) {
	for key, n := range cands {
		items := counter.Unkey(key)
		if containsSorted(tx, items) {
			cands[key] = n + 1
		}
	}
}

func containsSorted(tx, items []int32) bool {
	i := 0
	for _, w := range tx {
		if i == len(items) {
			return true
		}
		if w == items[i] {
			i++
		}
	}
	return i == len(items)
}

// corpusDocFreq counts transactions across all topics containing the
// word set.
func corpusDocFreq(words []int32, transactions [][][]int32) int64 {
	var df int64
	for _, txs := range transactions {
		for _, tx := range txs {
			if containsSorted(tx, words) {
				df++
			}
		}
	}
	if df == 0 {
		df = 1
	}
	return df
}
