package baselines

import (
	"math"
	"sort"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/xrand"
)

// TurboTopics implements the post-LDA phrase discovery of Blei &
// Lafferty ("Visualizing topics with multi-word expressions", 2009):
// for each topic, repeatedly grow multi-word units by testing whether
// an adjacent pair of units co-occurs more often than a back-off
// unigram model predicts, using a likelihood-ratio (G²) statistic whose
// critical value is estimated with a permutation test.
//
// The permutation test — re-scoring shuffled copies of the topic's
// token stream each round — is what makes the method orders of
// magnitude slower than LDA itself, the behaviour Table 3 of the
// ToPMine paper reports (">10 days" on medium corpora). This
// reproduction keeps that cost profile at reduced scale.
type TurboTopics struct {
	// Permutations per round (default 5).
	Permutations int
	// MaxRounds of merging (default 4, allowing phrases up to ~2^4
	// tokens in principle; in practice growth stops much earlier).
	MaxRounds int
}

// Name implements Method.
func (TurboTopics) Name() string { return "Turbo" }

// Run implements Method.
func (t TurboTopics) Run(c *corpus.Corpus, opt Options) []TopicPhrases {
	opt.fill()
	perms := t.Permutations
	if perms <= 0 {
		perms = 5
	}
	rounds := t.MaxRounds
	if rounds <= 0 {
		rounds = 4
	}
	m, docs := runLDA(c, opt)
	rng := xrand.New(opt.Seed + 1)

	// Build each topic's token stream: tokens assigned to the topic, in
	// reading order, with breaks (-1) wherever adjacency is interrupted
	// by a segment boundary, a document boundary, or a token of another
	// topic. Adjacency is tracked with a global position counter so the
	// construction is O(N).
	streams := make([][]int32, opt.K)
	lastPos := make([]int64, opt.K)
	for k := range lastPos {
		lastPos[k] = -10
	}
	var pos int64
	for d := range docs {
		pos += 2 // document boundary breaks adjacency
		prevSeg := -1
		for g, clique := range docs[d].Cliques {
			if seg := docs[d].Origin[g].Segment; seg != prevSeg {
				pos += 2 // segment boundary breaks adjacency
				prevSeg = seg
			}
			w := clique[0]
			k := m.Z[d][g]
			if lastPos[k] != pos-1 && len(streams[k]) > 0 {
				streams[k] = append(streams[k], -1)
			}
			streams[k] = append(streams[k], w)
			lastPos[k] = pos
			pos++
		}
	}

	out := make([]TopicPhrases, opt.K)
	for k := 0; k < opt.K; k++ {
		units := t.growUnits(streams[k], perms, rounds, int64(opt.MinSupport), rng)
		tp := TopicPhrases{Topic: k, Unigrams: m.TopUnigrams(k, opt.TopPhrases, c)}
		type kv struct {
			words []int32
			n     int64
		}
		var items []kv
		for key, n := range units {
			words := counter.Unkey(key)
			if len(words) >= 2 {
				items = append(items, kv{words, n})
			}
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].n != items[j].n {
				return items[i].n > items[j].n
			}
			return counter.Key(items[i].words) < counter.Key(items[j].words)
		})
		if len(items) > opt.TopPhrases {
			items = items[:opt.TopPhrases]
		}
		for _, it := range items {
			tp.Phrases = append(tp.Phrases, RankedPhrase{
				Words: it.words, Display: displayWords(c, it.words), Score: float64(it.n),
			})
		}
		out[k] = tp
	}
	return out
}

// unit is a grown multi-word expression identified by an id >= V.
type unitTable struct {
	next  int32
	words map[int32][]int32 // unit id -> constituent word ids
}

func (u *unitTable) wordsOf(id int32) []int32 {
	if w, ok := u.words[id]; ok {
		return w
	}
	return []int32{id}
}

// growUnits runs the merge rounds on one topic stream and returns
// counts keyed by the constituent-word key of every surviving unit.
func (t TurboTopics) growUnits(stream []int32, perms, rounds int, minSup int64, rng *xrand.RNG) map[string]int64 {
	if len(stream) == 0 {
		return nil
	}
	units := &unitTable{next: 1 << 24, words: make(map[int32][]int32)}
	cur := append([]int32(nil), stream...)

	for round := 0; round < rounds; round++ {
		real := pairG2(cur, minSup)
		if len(real) == 0 {
			break
		}
		// Permutation null: the maximum G² observed on shuffled streams
		// (shuffling within the whole stream, breaks kept in place).
		crit := 0.0
		shuffled := append([]int32(nil), cur...)
		for p := 0; p < perms; p++ {
			permuteTokens(shuffled, rng)
			for _, g := range pairG2(shuffled, minSup) {
				if g.g2 > crit {
					crit = g.g2
				}
			}
		}
		// Merge all significantly-associated pairs, most significant
		// first, consuming tokens greedily left to right.
		sort.Slice(real, func(i, j int) bool {
			if real[i].g2 != real[j].g2 {
				return real[i].g2 > real[j].g2
			}
			if real[i].a != real[j].a {
				return real[i].a < real[j].a
			}
			return real[i].b < real[j].b
		})
		accepted := make(map[int64]int32)
		merged := false
		for _, pr := range real {
			if pr.g2 <= crit {
				break
			}
			id := units.next
			units.next++
			w := append(append([]int32{}, units.wordsOf(pr.a)...), units.wordsOf(pr.b)...)
			units.words[id] = w
			accepted[pairKey(pr.a, pr.b)] = id
			merged = true
		}
		if !merged {
			break
		}
		cur = rewrite(cur, accepted)
	}

	counts := make(map[string]int64)
	for _, tok := range cur {
		if tok < 0 {
			continue
		}
		words := units.wordsOf(tok)
		counts[counter.Key(words)]++
	}
	for key, n := range counts {
		if n < minSup {
			delete(counts, key)
		}
	}
	return counts
}

type pairStat struct {
	a, b int32
	g2   float64
}

func pairKey(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

// pairG2 computes the likelihood-ratio statistic of each adjacent pair
// against a back-off unigram null: G² = 2·n_ab·log(n_ab·N / (n_a·n_b)),
// the dominant term of the full LR for n_ab ≫ expected.
func pairG2(stream []int32, minSup int64) []pairStat {
	uni := make(map[int32]int64)
	pairs := make(map[int64]int64)
	var n int64
	for i, tok := range stream {
		if tok < 0 {
			continue
		}
		uni[tok]++
		n++
		if i+1 < len(stream) && stream[i+1] >= 0 {
			pairs[pairKey(tok, stream[i+1])]++
		}
	}
	if n == 0 {
		return nil
	}
	var out []pairStat
	for key, nab := range pairs {
		if nab < minSup {
			continue
		}
		a := int32(key >> 32)
		b := int32(uint32(key))
		expected := float64(uni[a]) * float64(uni[b]) / float64(n)
		if float64(nab) <= expected {
			continue
		}
		g2 := 2 * float64(nab) * math.Log(float64(nab)/expected)
		out = append(out, pairStat{a, b, g2})
	}
	return out
}

// permuteTokens shuffles the non-break tokens of stream in place,
// leaving break markers where they are.
func permuteTokens(stream []int32, rng *xrand.RNG) {
	idx := make([]int, 0, len(stream))
	for i, tok := range stream {
		if tok >= 0 {
			idx = append(idx, i)
		}
	}
	rng.Shuffle(len(idx), func(i, j int) {
		stream[idx[i]], stream[idx[j]] = stream[idx[j]], stream[idx[i]]
	})
}

// rewrite replaces accepted adjacent pairs with their unit ids, left to
// right, longest-standing significance first (accepted map decides).
func rewrite(stream []int32, accepted map[int64]int32) []int32 {
	out := stream[:0]
	i := 0
	for i < len(stream) {
		tok := stream[i]
		if tok >= 0 && i+1 < len(stream) && stream[i+1] >= 0 {
			if id, ok := accepted[pairKey(tok, stream[i+1])]; ok {
				out = append(out, id)
				i += 2
				continue
			}
		}
		out = append(out, tok)
		i++
	}
	return out
}
