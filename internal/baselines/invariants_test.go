package baselines

import (
	"testing"
)

func TestPDLDARestaurantInvariants(t *testing.T) {
	c := smallCorpus(t, 120, 71)
	st := pdldaStateForTest(c, 3, 15, 11)
	if err := st.checkRestaurants(); err != nil {
		t.Fatal(err)
	}
}

func TestPDLDATokenConservation(t *testing.T) {
	c := smallCorpus(t, 80, 73)
	st := pdldaStateForTest(c, 3, 10, 13)
	// Every non-break token carries exactly one assignment; the number
	// of phrase draws recorded in nd must equal the number of phrase
	// starts (join == 0 tokens).
	for d := range st.docs {
		starts := int32(0)
		for i, w := range st.docs[d] {
			if w < 0 {
				continue
			}
			if st.join[d][i] == 0 {
				starts++
			} else if i == 0 || st.docs[d][i-1] < 0 {
				t.Fatalf("doc %d: join token at segment start", d)
			}
		}
		if starts != st.nd[d] {
			t.Fatalf("doc %d: nd=%d but %d phrase starts", d, st.nd[d], starts)
		}
		var ndkSum int32
		for _, v := range st.ndk[d] {
			if v < 0 {
				t.Fatalf("doc %d: negative ndk", d)
			}
			ndkSum += v
		}
		if ndkSum != st.nd[d] {
			t.Fatalf("doc %d: ndk sum %d != nd %d", d, ndkSum, st.nd[d])
		}
	}
}

func TestPDLDAJoinTopicsConsistent(t *testing.T) {
	c := smallCorpus(t, 80, 79)
	st := pdldaStateForTest(c, 4, 10, 17)
	// All tokens of one join run must share the topic of the run head —
	// the defining property PD-LDA shares with PhraseLDA.
	for d := range st.docs {
		for i, w := range st.docs[d] {
			if w < 0 || st.join[d][i] == 0 {
				continue
			}
			if st.z[d][i] != st.z[d][i-1] {
				t.Fatalf("doc %d pos %d: joined token changed topic", d, i)
			}
		}
	}
}

func TestTNGProducesBigramChains(t *testing.T) {
	// On a corpus saturated with one bigram, TNG should discover it.
	docs := make([]string, 0, 200)
	for i := 0; i < 100; i++ {
		docs = append(docs, "support vector rocks hard")
		docs = append(docs, "we adore support vector")
	}
	c := buildStrings(docs)
	out := TNG{}.Run(c, Options{K: 2, Iterations: 80, Seed: 7, TopPhrases: 10, MinSupport: 5})
	found := false
	for _, tp := range out {
		for _, p := range tp.Phrases {
			if p.Display == "support vector" {
				found = true
			}
		}
	}
	if !found {
		var got []string
		for _, tp := range out {
			for _, p := range tp.Phrases {
				got = append(got, p.Display)
			}
		}
		t.Fatalf("TNG missed the saturated bigram; got %v", got)
	}
}

func TestTurboDeterministicAcrossRuns(t *testing.T) {
	c := smallCorpus(t, 100, 83)
	opt := Options{K: 2, Iterations: 15, Seed: 3, TopPhrases: 8, MinSupport: 2}
	a := TurboTopics{Permutations: 2, MaxRounds: 2}.Run(c, opt)
	b := TurboTopics{Permutations: 2, MaxRounds: 2}.Run(c, opt)
	for k := range a {
		if len(a[k].Phrases) != len(b[k].Phrases) {
			t.Fatal("nondeterministic Turbo output")
		}
	}
}
