package baselines

import (
	"sort"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/xrand"
)

// TNG implements Topical N-Grams (Wang, McCallum & Wei, ICDM 2007).
//
// Every token i carries a topic z_i and a bigram-status bit x_i; when
// x_i = 1 the token continues an n-gram started by its predecessor and
// is generated from a per-(topic, previous-word) bigram distribution
// σ, otherwise from the per-topic unigram distribution φ. The status
// bit itself is drawn from a Bernoulli ψ conditioned on the previous
// word and its topic. Collapsed Gibbs samples (z_i, x_i) jointly from
// the 2K-way conditional. Phrases are maximal x=1 runs, labelled with
// the topic of their final token (as in the original paper).
//
// Known behaviour this reproduction preserves: many hyperparameters
// (α, β, γ, δ), slower mixing than LDA, and phrase lists assembled
// from bigram chains — the sources of its cost and its middling
// intrusion scores in the paper's Figures 3-5.
type TNG struct {
	// Alpha, Beta, Gamma, Delta are the four Dirichlet/Beta priors; all
	// have sensible defaults when zero.
	Alpha, Beta, Gamma, Delta float64
}

// Name implements Method.
func (TNG) Name() string { return "TNG" }

// tngState holds counts for the collapsed sampler.
type tngState struct {
	k, v int
	// token stream per document: flattened segments with boundaries.
	docs   [][]int32 // word ids; -1 marks a segment boundary
	z      [][]int8  // topic per token (int8: K <= 127 here)
	x      [][]int8  // bigram status per token
	ndk    [][]int32
	nwk    [][]int32 // unigram counts (x = 0 emissions)
	nk     []int64
	bern   map[int64][2]int32 // (zPrev*V + wPrev) -> {x=0 count, x=1 count}
	sigma  map[int64]map[int32]int32
	sigTot map[int64]int64 // (k*V + wPrev) -> total bigram emissions
}

func (s *tngState) sigKey(k int, w int32) int64  { return int64(k)*int64(s.v) + int64(w) }
func (s *tngState) bernKey(k int, w int32) int64 { return int64(k)*int64(s.v) + int64(w) }

// Run implements Method.
func (t TNG) Run(c *corpus.Corpus, opt Options) []TopicPhrases {
	opt.fill()
	alpha, beta, gamma, delta := t.Alpha, t.Beta, t.Gamma, t.Delta
	if alpha <= 0 {
		alpha = 50.0 / float64(opt.K)
	}
	if beta <= 0 {
		beta = 0.01
	}
	if gamma <= 0 {
		gamma = 0.1
	}
	if delta <= 0 {
		delta = 0.01
	}
	rng := xrand.New(opt.Seed)
	st := &tngState{
		k: opt.K, v: c.Vocab.Size(),
		ndk:    make([][]int32, c.NumDocs()),
		nwk:    make([][]int32, c.Vocab.Size()),
		nk:     make([]int64, opt.K),
		bern:   make(map[int64][2]int32),
		sigma:  make(map[int64]map[int32]int32),
		sigTot: make(map[int64]int64),
	}
	for w := range st.nwk {
		st.nwk[w] = make([]int32, opt.K)
	}
	// Flatten documents with segment boundaries so bigrams never cross
	// punctuation, matching the contiguity discipline of the others.
	st.docs = make([][]int32, c.NumDocs())
	st.z = make([][]int8, c.NumDocs())
	st.x = make([][]int8, c.NumDocs())
	for d, doc := range c.Docs {
		var stream []int32
		for si := range doc.Segments {
			if si > 0 {
				stream = append(stream, -1)
			}
			stream = append(stream, doc.Segments[si].Words()...)
		}
		st.docs[d] = stream
		st.z[d] = make([]int8, len(stream))
		st.x[d] = make([]int8, len(stream))
		st.ndk[d] = make([]int32, opt.K)
		for i, w := range stream {
			if w < 0 {
				continue
			}
			k := int8(rng.Intn(opt.K))
			st.z[d][i] = k
			st.x[d][i] = 0 // start as unigrams
			st.add(d, i, 1)
		}
	}

	vf := float64(st.v)
	weights := make([]float64, 2*opt.K)
	for it := 0; it < opt.Iterations; it++ {
		for d := range st.docs {
			stream := st.docs[d]
			for i, w := range stream {
				if w < 0 {
					continue
				}
				// The status bit of token i+1 is conditioned on z_i;
				// detach it while z_i is in flux.
				nextOK := i+1 < len(stream) && stream[i+1] >= 0
				if nextOK {
					st.bernAdd(d, i+1, -1)
				}
				st.remove(d, i)
				prevOK := i > 0 && stream[i-1] >= 0
				var pw int32
				var pz int8
				if prevOK {
					pw, pz = stream[i-1], st.z[d][i-1]
				}
				n := 0
				for k := 0; k < opt.K; k++ {
					docTerm := alpha + float64(st.ndk[d][k])
					// x = 0: unigram emission.
					w0 := docTerm * (beta + float64(st.nwk[w][k])) /
						(vf*beta + float64(st.nk[k]))
					if prevOK {
						b := st.bern[st.bernKey(int(pz), pw)]
						w0 *= (gamma + float64(b[0])) / (2*gamma + float64(b[0]+b[1]))
					}
					weights[n] = w0
					n++
					// x = 1: bigram emission, only after a word.
					if prevOK {
						b := st.bern[st.bernKey(int(pz), pw)]
						sk := st.sigKey(k, pw)
						var cnt int32
						if m := st.sigma[sk]; m != nil {
							cnt = m[w]
						}
						w1 := docTerm *
							((gamma + float64(b[1])) / (2*gamma + float64(b[0]+b[1]))) *
							(delta + float64(cnt)) / (vf*delta + float64(st.sigTot[sk]))
						weights[n] = w1
						n++
					}
				}
				pick := rng.Categorical(weights[:n])
				if prevOK {
					st.z[d][i] = int8(pick / 2)
					st.x[d][i] = int8(pick % 2)
				} else {
					st.z[d][i] = int8(pick)
					st.x[d][i] = 0
				}
				st.add(d, i, 1)
				if nextOK {
					st.bernAdd(d, i+1, 1)
				}
			}
		}
	}
	return st.extract(c, opt)
}

// add/remove update token i's own counts: doc-topic mass, its emission
// (unigram or bigram), and its receiver-side status count bern[z_{i-1},
// w_{i-1}][x_i]. The status count of the *next* token, which is
// conditioned on z_i, is handled separately via bernAdd around each
// resampling so counts always match assignments.
func (s *tngState) add(d, i int, sign int32) {
	w := s.docs[d][i]
	k := int(s.z[d][i])
	s.ndk[d][k] += sign
	if s.x[d][i] == 0 {
		s.nwk[w][k] += sign
		s.nk[k] += int64(sign)
	} else {
		pw := s.docs[d][i-1]
		sk := s.sigKey(k, pw)
		m := s.sigma[sk]
		if m == nil {
			m = make(map[int32]int32, 1)
			s.sigma[sk] = m
		}
		m[w] += sign
		if m[w] == 0 {
			delete(m, w)
		}
		s.sigTot[sk] += int64(sign)
	}
	s.bernAdd(d, i, sign)
}

// bernAdd updates the status count of token i conditioned on its
// predecessor's current assignment.
func (s *tngState) bernAdd(d, i int, sign int32) {
	if i == 0 || s.docs[d][i-1] < 0 {
		return
	}
	pw, pz := s.docs[d][i-1], int(s.z[d][i-1])
	key := s.bernKey(pz, pw)
	b := s.bern[key]
	b[s.x[d][i]] += sign
	s.bern[key] = b
}

func (s *tngState) remove(d, i int) { s.add(d, i, -1) }

// extract assembles maximal x=1 runs into phrases, labels each with the
// final token's topic, and ranks per topic by frequency.
func (s *tngState) extract(c *corpus.Corpus, opt Options) []TopicPhrases {
	perTopic := make([]map[string]int64, s.k)
	for k := range perTopic {
		perTopic[k] = make(map[string]int64)
	}
	for d := range s.docs {
		stream := s.docs[d]
		i := 0
		for i < len(stream) {
			if stream[i] < 0 {
				i++
				continue
			}
			j := i + 1
			for j < len(stream) && stream[j] >= 0 && s.x[d][j] == 1 {
				j++
			}
			if j-i >= 2 {
				words := stream[i:j]
				topic := int(s.z[d][j-1])
				perTopic[topic][counter.Key(words)]++
			}
			i = j
		}
	}
	out := make([]TopicPhrases, s.k)
	for k := 0; k < s.k; k++ {
		tp := TopicPhrases{Topic: k, Unigrams: s.topUnigrams(c, k, opt.TopPhrases)}
		type kv struct {
			key string
			n   int64
		}
		var items []kv
		for key, n := range perTopic[k] {
			if n >= int64(opt.MinSupport) {
				items = append(items, kv{key, n})
			}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].n != items[b].n {
				return items[a].n > items[b].n
			}
			return items[a].key < items[b].key
		})
		if len(items) > opt.TopPhrases {
			items = items[:opt.TopPhrases]
		}
		for _, it := range items {
			words := counter.Unkey(it.key)
			tp.Phrases = append(tp.Phrases, RankedPhrase{
				Words: words, Display: displayWords(c, words), Score: float64(it.n),
			})
		}
		out[k] = tp
	}
	return out
}

func (s *tngState) topUnigrams(c *corpus.Corpus, k, n int) []string {
	type wc struct {
		w int32
		n int32
	}
	var all []wc
	for w := 0; w < s.v; w++ {
		if cnt := s.nwk[w][k]; cnt > 0 {
			all = append(all, wc{int32(w), cnt})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := range out {
		out[i] = c.Vocab.Unstem(all[i].w)
	}
	return out
}
