package baselines

import (
	"fmt"

	"topmine/internal/corpus"
	"topmine/internal/xrand"
)

// Test-only hooks into unexported state.

// pdldaStateForTest runs PD-LDA's sampler for iters sweeps and returns
// the internal state for invariant checking.
func pdldaStateForTest(c *corpus.Corpus, k, iters int, seed uint64) *pdldaState {
	st := &pdldaState{
		k: k, v: c.Vocab.Size(),
		disc: 0.5, strength: 1.0, alpha: 50.0 / float64(k),
		rng:   xrand.New(seed + 7),
		rest1: make(map[int64]*restaurant),
		rest0: make([]*restaurant, k),
		ndk:   make([][]int32, c.NumDocs()),
		nd:    make([]int32, c.NumDocs()),
	}
	for i := range st.rest0 {
		st.rest0[i] = newRestaurant()
	}
	st.docs = make([][]int32, c.NumDocs())
	st.join = make([][]int8, c.NumDocs())
	st.z = make([][]int8, c.NumDocs())
	for d, doc := range c.Docs {
		var stream []int32
		for si := range doc.Segments {
			if si > 0 {
				stream = append(stream, -1)
			}
			stream = append(stream, doc.Segments[si].Words()...)
		}
		st.docs[d] = stream
		st.join[d] = make([]int8, len(stream))
		st.z[d] = make([]int8, len(stream))
		st.ndk[d] = make([]int32, k)
		for i, w := range stream {
			if w < 0 {
				continue
			}
			kk := int8(st.rng.Intn(k))
			st.z[d][i] = kk
			st.ndk[d][kk]++
			st.nd[d]++
			st.seat0(w, int(kk))
		}
	}
	weights := make([]float64, k+1)
	for it := 0; it < iters; it++ {
		for d := range st.docs {
			st.resampleDoc(d, weights)
		}
	}
	return st
}

// checkRestaurants verifies the CRP histogram invariants: counts are
// non-negative, 1 <= tables <= customers per dish, and totals match.
func (s *pdldaState) checkRestaurants() error {
	check := func(name string, r *restaurant) error {
		var ct, tt int64
		for w, c := range r.cw {
			if c <= 0 {
				return fmt.Errorf("%s: dish %d has %d customers", name, w, c)
			}
			t := r.tw[w]
			if t < 1 || t > c {
				return fmt.Errorf("%s: dish %d tables %d customers %d", name, w, t, c)
			}
			ct += int64(c)
		}
		for w, t := range r.tw {
			if _, ok := r.cw[w]; !ok && t != 0 {
				return fmt.Errorf("%s: dish %d has tables but no customers", name, w)
			}
			tt += int64(t)
		}
		if ct != r.ctot || tt != r.ttot {
			return fmt.Errorf("%s: totals drifted: c %d/%d t %d/%d", name, ct, r.ctot, tt, r.ttot)
		}
		return nil
	}
	for k, r := range s.rest0 {
		if err := check(fmt.Sprintf("rest0[%d]", k), r); err != nil {
			return err
		}
	}
	for key, r := range s.rest1 {
		if err := check(fmt.Sprintf("rest1[%d]", key), r); err != nil {
			return err
		}
	}
	return nil
}

// buildStrings builds a corpus from raw docs (test helper).
func buildStrings(docs []string) *corpus.Corpus {
	return corpus.FromStrings(docs, corpus.DefaultBuildOptions())
}
