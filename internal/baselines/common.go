// Package baselines re-implements, from their original papers, the
// four topical-phrase methods the paper compares against (§6-7):
//
//   - TNG — Topical N-Grams (Wang, McCallum, Wei; ICDM 2007): joint
//     inference of topics and bigram-status variables with per-topic,
//     per-previous-word bigram distributions.
//   - PD-LDA — Phrase-Discovering LDA (Lindsey, Headden, Stipicevic;
//     EMNLP-CoNLL 2012): n-gram segmentation with one topic per n-gram
//     and hierarchical Pitman-Yor word smoothing (simplified here to a
//     bounded context depth with fixed discount/strength — see
//     DESIGN.md §5).
//   - KERT (Danilevsky et al.; SDM 2014): post-LDA unconstrained
//     frequent itemset mining per topic with heuristic ranking.
//   - Turbo Topics (Blei, Lafferty; 2009): post-LDA phrase growth with
//     likelihood-ratio tests against a permutation null.
//
// All methods expose one interface so the evaluation harness (phrase
// intrusion, coherence, quality, runtime) treats them uniformly.
package baselines

import (
	"topmine/internal/corpus"
	"topmine/internal/topicmodel"
)

// RankedPhrase is one phrase in a method's per-topic output list.
type RankedPhrase struct {
	Words   []int32
	Display string
	Score   float64
}

// TopicPhrases is a method's output for one topic.
type TopicPhrases struct {
	Topic    int
	Unigrams []string
	Phrases  []RankedPhrase
}

// Options holds the parameters shared by every method.
type Options struct {
	K          int
	Iterations int
	Seed       uint64
	// TopPhrases bounds each output list (default 20).
	TopPhrases int
	// MinSupport applies to methods that mine patterns (KERT) or
	// extract recurring n-grams.
	MinSupport int
	// OptimizeHyper enables Dirichlet hyperparameter optimisation in
	// the methods built on the shared Gibbs topic model (LDA, KERT,
	// Turbo, ToPMine). The paper turns this on for its user-study and
	// perplexity runs and off for timed runs (§7.4).
	OptimizeHyper bool
}

func (o *Options) fill() {
	if o.TopPhrases <= 0 {
		o.TopPhrases = 20
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 3
	}
	if o.Iterations <= 0 {
		o.Iterations = 200
	}
}

// Method is a topical phrase extraction algorithm under comparison.
type Method interface {
	Name() string
	Run(c *corpus.Corpus, opt Options) []TopicPhrases
}

// runLDA fits plain LDA (PhraseLDA with singleton cliques) and returns
// the model; shared substrate for KERT and Turbo Topics, and the same
// code path ToPMine's topic stage uses, mirroring the paper's setup
// where all methods share a Gibbs-sampling topic model.
func runLDA(c *corpus.Corpus, opt Options) (*topicmodel.Model, []topicmodel.Doc) {
	docs := topicmodel.DocsUnigram(c)
	m := topicmodel.Train(docs, c.Vocab.Size(), topicmodel.Options{
		K: opt.K, Iterations: opt.Iterations, Seed: opt.Seed,
		OptimizeHyper: opt.OptimizeHyper,
	})
	return m, docs
}

// displayWords renders a phrase via the vocabulary's unstemmer.
func displayWords(c *corpus.Corpus, words []int32) string {
	return c.DisplayWords(words)
}

// LDAUnigrams is the trivial "LDA" comparator: top unigrams only, no
// phrases. It anchors the runtime comparison of Table 3.
type LDAUnigrams struct{}

// Name implements Method.
func (LDAUnigrams) Name() string { return "LDA" }

// Run implements Method.
func (LDAUnigrams) Run(c *corpus.Corpus, opt Options) []TopicPhrases {
	opt.fill()
	m, _ := runLDA(c, opt)
	out := make([]TopicPhrases, opt.K)
	for k := 0; k < opt.K; k++ {
		out[k] = TopicPhrases{Topic: k, Unigrams: m.TopUnigrams(k, opt.TopPhrases, c)}
	}
	return out
}
