package baselines

import (
	"topmine/internal/core"
	"topmine/internal/corpus"
	"topmine/internal/topicmodel"
)

// ToPMine adapts the full pipeline of this repository — frequent
// phrase mining (Alg. 1), significance-guided segmentation (Alg. 2)
// and PhraseLDA — to the Method interface so the comparison harness
// treats it exactly like the baselines.
type ToPMine struct {
	// MinSupport for mining (0: derived from Options.MinSupport).
	MinSupport int
	// Alpha is the segmentation significance threshold (default 5).
	SigAlpha float64
	// MaxPhraseLen bounds phrases (default 8).
	MaxPhraseLen int
	// Workers parallelises mining and segmentation (default 1, so
	// runtime comparisons are one-core against one-core).
	Workers int
	// FilterBackground applies the §8 background-phrase filter to the
	// visualised lists; BackgroundMaxDocFrac > 0 additionally filters
	// phrases occurring in more than that fraction of documents.
	FilterBackground     bool
	BackgroundMaxDocFrac float64
}

// Name implements Method.
func (ToPMine) Name() string { return "ToPMine" }

// Run implements Method.
func (t ToPMine) Run(c *corpus.Corpus, opt Options) []TopicPhrases {
	opt.fill()
	minSup := t.MinSupport
	if minSup <= 0 {
		minSup = opt.MinSupport
	}
	sigAlpha := t.SigAlpha
	if sigAlpha <= 0 {
		sigAlpha = 5
	}
	maxLen := t.MaxPhraseLen
	if maxLen <= 0 {
		maxLen = 8
	}
	workers := t.Workers
	if workers <= 0 {
		workers = 1
	}
	a := core.Run(c, core.Config{
		MinSupport:    minSup,
		MaxPhraseLen:  maxLen,
		SigAlpha:      sigAlpha,
		K:             opt.K,
		Iterations:    opt.Iterations,
		OptimizeHyper: opt.OptimizeHyper,
		Seed:          opt.Seed,
		Workers:       workers,
	})
	sums := a.Model.Visualize(c, topicmodel.VisualizeOptions{
		TopUnigrams: opt.TopPhrases, TopPhrases: opt.TopPhrases,
		FilterBackground:     t.FilterBackground,
		BackgroundMaxDocFrac: t.BackgroundMaxDocFrac,
	})
	out := make([]TopicPhrases, len(sums))
	for i, s := range sums {
		tp := TopicPhrases{Topic: s.Topic, Unigrams: s.Unigrams}
		for _, p := range s.Phrases {
			tp.Phrases = append(tp.Phrases, RankedPhrase{
				Words: p.Words, Display: p.Display, Score: float64(p.TF),
			})
		}
		out[i] = tp
	}
	return out
}
