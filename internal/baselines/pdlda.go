package baselines

import (
	"sort"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/xrand"
)

// PDLDA implements a simplified Phrase-Discovering LDA (Lindsey,
// Headden & Stipicevic, EMNLP-CoNLL 2012). Documents are segmented
// into n-grams by per-token join variables; every n-gram draws one
// topic from the document mixture (all its words share that topic —
// the property the ToPMine paper highlights as PD-LDA's relation to
// PhraseLDA), and words are emitted from a hierarchical Pitman-Yor
// process: a per-(topic, previous-word) restaurant backing off to a
// per-topic restaurant backing off to the uniform distribution.
//
// Simplifications versus the original (documented in DESIGN.md §5):
// context depth is bounded at one previous word, discount/strength are
// fixed rather than sampled, table bookkeeping uses the standard
// stochastic histogram approximation, and segmentation+topics are
// resampled with a blocked left-to-right pass per segment instead of
// full per-variable Gibbs. The cost profile — per-token CRP updates
// through two restaurant levels, easily the slowest method here —
// matches the original's placement in Table 3.
type PDLDA struct {
	// Discount and Strength are the PY parameters (defaults 0.5, 1.0).
	Discount, Strength float64
	// Alpha is the document-topic concentration (default 50/K).
	Alpha float64
}

// Name implements Method.
func (PDLDA) Name() string { return "PDLDA" }

// restaurant is a PY CRP with histogram-approximate table tracking.
type restaurant struct {
	cw   map[int32]int32
	tw   map[int32]int32
	ctot int64
	ttot int64
}

func newRestaurant() *restaurant {
	return &restaurant{cw: make(map[int32]int32), tw: make(map[int32]int32)}
}

type pdldaState struct {
	k, v           int
	disc, strength float64
	alpha          float64
	rng            *xrand.RNG

	// rest1[(k, prev)] is the depth-1 restaurant, rest0[k] the
	// per-topic unigram restaurant.
	rest1 map[int64]*restaurant
	rest0 []*restaurant

	ndk [][]int32 // phrases of doc d with topic k
	nd  []int32   // phrases in doc d

	// segmentation state: per doc, per token: join flag and the topic
	// of the phrase the token belongs to.
	docs [][]int32 // -1 = segment break
	join [][]int8
	z    [][]int8
}

func (s *pdldaState) key1(k int, prev int32) int64 {
	return int64(k)*int64(s.v) + int64(prev)
}

// p0 is the per-topic unigram predictive probability.
func (s *pdldaState) p0(w int32, k int) float64 {
	r := s.rest0[k]
	base := 1.0 / float64(s.v)
	num := float64(r.cw[w]) - s.disc*float64(r.tw[w])
	if num < 0 {
		num = 0
	}
	return (num + (s.strength+s.disc*float64(r.ttot))*base) / (s.strength + float64(r.ctot))
}

// p1 is the depth-1 predictive probability (context = previous word).
func (s *pdldaState) p1(w int32, k int, prev int32) float64 {
	r := s.rest1[s.key1(k, prev)]
	parent := s.p0(w, k)
	if r == nil {
		return parent
	}
	num := float64(r.cw[w]) - s.disc*float64(r.tw[w])
	if num < 0 {
		num = 0
	}
	return (num + (s.strength+s.disc*float64(r.ttot))*parent) / (s.strength + float64(r.ctot))
}

// seat0 adds a customer for w to the topic restaurant.
func (s *pdldaState) seat0(w int32, k int) {
	r := s.rest0[k]
	num := float64(r.cw[w]) - s.disc*float64(r.tw[w])
	if num < 0 {
		num = 0
	}
	newTable := (s.strength + s.disc*float64(r.ttot)) / float64(s.v)
	if r.cw[w] == 0 || s.rng.Float64()*(num+newTable) < newTable {
		r.tw[w]++
		r.ttot++
	}
	r.cw[w]++
	r.ctot++
}

// closeTable decides, under the histogram approximation, whether the
// departing customer closes a table. Invariants maintained: 1 <= tw <=
// cw while customers remain; tw == 0 when cw == 0.
func (s *pdldaState) closeTable(r *restaurant, w int32, cwBefore int32) bool {
	switch {
	case r.cw[w] == 0:
		return r.tw[w] > 0
	case r.tw[w] > r.cw[w]:
		return true
	case r.tw[w] > 1:
		return s.rng.Float64() < float64(r.tw[w])/float64(cwBefore)
	}
	return false
}

func (s *pdldaState) unseat0(w int32, k int) {
	r := s.rest0[k]
	cwBefore := r.cw[w]
	if cwBefore == 0 {
		return
	}
	r.cw[w] = cwBefore - 1
	r.ctot--
	if s.closeTable(r, w, cwBefore) {
		r.tw[w]--
		r.ttot--
	}
	if r.cw[w] == 0 {
		delete(r.cw, w)
		delete(r.tw, w)
	}
}

// seat1 adds a customer to the depth-1 restaurant, recursing to the
// parent when a new table opens.
func (s *pdldaState) seat1(w int32, k int, prev int32) {
	key := s.key1(k, prev)
	r := s.rest1[key]
	if r == nil {
		r = newRestaurant()
		s.rest1[key] = r
	}
	num := float64(r.cw[w]) - s.disc*float64(r.tw[w])
	if num < 0 {
		num = 0
	}
	newTable := (s.strength + s.disc*float64(r.ttot)) * s.p0(w, k)
	if r.cw[w] == 0 || s.rng.Float64()*(num+newTable) < newTable {
		r.tw[w]++
		r.ttot++
		s.seat0(w, k) // a new table sends its dish order upstream
	}
	r.cw[w]++
	r.ctot++
}

func (s *pdldaState) unseat1(w int32, k int, prev int32) {
	key := s.key1(k, prev)
	r := s.rest1[key]
	if r == nil || r.cw[w] == 0 {
		return
	}
	cwBefore := r.cw[w]
	r.cw[w] = cwBefore - 1
	r.ctot--
	if s.closeTable(r, w, cwBefore) {
		r.tw[w]--
		r.ttot--
		s.unseat0(w, k) // the closed table's upstream customer leaves too
	}
	if r.cw[w] == 0 {
		delete(r.cw, w)
		delete(r.tw, w)
	}
}

// Run implements Method.
func (p PDLDA) Run(c *corpus.Corpus, opt Options) []TopicPhrases {
	opt.fill()
	disc, strength, alpha := p.Discount, p.Strength, p.Alpha
	if disc <= 0 || disc >= 1 {
		disc = 0.5
	}
	if strength <= 0 {
		strength = 1.0
	}
	if alpha <= 0 {
		alpha = 50.0 / float64(opt.K)
	}
	st := &pdldaState{
		k: opt.K, v: c.Vocab.Size(),
		disc: disc, strength: strength, alpha: alpha,
		rng:   xrand.New(opt.Seed + 7),
		rest1: make(map[int64]*restaurant),
		rest0: make([]*restaurant, opt.K),
		ndk:   make([][]int32, c.NumDocs()),
		nd:    make([]int32, c.NumDocs()),
	}
	for k := range st.rest0 {
		st.rest0[k] = newRestaurant()
	}
	st.docs = make([][]int32, c.NumDocs())
	st.join = make([][]int8, c.NumDocs())
	st.z = make([][]int8, c.NumDocs())
	for d, doc := range c.Docs {
		var stream []int32
		for si := range doc.Segments {
			if si > 0 {
				stream = append(stream, -1)
			}
			stream = append(stream, doc.Segments[si].Words()...)
		}
		st.docs[d] = stream
		st.join[d] = make([]int8, len(stream))
		st.z[d] = make([]int8, len(stream))
		st.ndk[d] = make([]int32, opt.K)
		// Initialise: every token its own phrase with a random topic.
		for i, w := range stream {
			if w < 0 {
				continue
			}
			k := int8(st.rng.Intn(opt.K))
			st.z[d][i] = k
			st.ndk[d][k]++
			st.nd[d]++
			st.seat0(w, int(k))
		}
	}

	weights := make([]float64, opt.K+1)
	for it := 0; it < opt.Iterations; it++ {
		for d := range st.docs {
			st.resampleDoc(d, weights)
		}
	}
	return st.extract(c, opt)
}

// resampleDoc removes one document's phrases, then rebuilds its
// segmentation and topics with a blocked left-to-right pass.
func (s *pdldaState) resampleDoc(d int, weights []float64) {
	stream := s.docs[d]
	// Remove current counts (reverse order so depth-1 customers leave
	// before their context's unigram mass).
	for i := len(stream) - 1; i >= 0; i-- {
		w := stream[i]
		if w < 0 {
			continue
		}
		k := int(s.z[d][i])
		if s.join[d][i] == 1 {
			s.unseat1(w, k, stream[i-1])
		} else {
			s.unseat0(w, k)
			s.ndk[d][k]--
			s.nd[d]--
		}
	}
	// Rebuild left to right.
	for i, w := range stream {
		if w < 0 {
			continue
		}
		canJoin := i > 0 && stream[i-1] >= 0
		n := 0
		// Option 0..K-1: start a new phrase with topic k.
		for k := 0; k < s.k; k++ {
			weights[n] = (s.alpha + float64(s.ndk[d][k])) * s.p0(w, k)
			n++
		}
		// Option K: join the previous token's phrase (same topic).
		if canJoin {
			kPrev := int(s.z[d][i-1])
			weights[n] = (s.alpha + float64(s.ndk[d][kPrev])) * s.p1(w, kPrev, stream[i-1])
			n++
		}
		pick := s.rng.Categorical(weights[:n])
		if canJoin && pick == s.k {
			k := int(s.z[d][i-1])
			s.z[d][i] = int8(k)
			s.join[d][i] = 1
			s.seat1(w, k, stream[i-1])
		} else {
			s.z[d][i] = int8(pick)
			s.join[d][i] = 0
			s.ndk[d][pick]++
			s.nd[d]++
			s.seat0(w, pick)
		}
	}
}

// extract collects maximal join runs as phrases per topic.
func (s *pdldaState) extract(c *corpus.Corpus, opt Options) []TopicPhrases {
	perTopic := make([]map[string]int64, s.k)
	for k := range perTopic {
		perTopic[k] = make(map[string]int64)
	}
	uniCounts := make([]map[int32]int64, s.k)
	for k := range uniCounts {
		uniCounts[k] = make(map[int32]int64)
	}
	for d := range s.docs {
		stream := s.docs[d]
		i := 0
		for i < len(stream) {
			if stream[i] < 0 {
				i++
				continue
			}
			j := i + 1
			for j < len(stream) && stream[j] >= 0 && s.join[d][j] == 1 {
				j++
			}
			k := int(s.z[d][i])
			for _, w := range stream[i:j] {
				uniCounts[k][w]++
			}
			if j-i >= 2 {
				perTopic[k][counter.Key(stream[i:j])]++
			}
			i = j
		}
	}
	out := make([]TopicPhrases, s.k)
	for k := 0; k < s.k; k++ {
		tp := TopicPhrases{Topic: k}
		type wc struct {
			w int32
			n int64
		}
		var us []wc
		for w, n := range uniCounts[k] {
			us = append(us, wc{w, n})
		}
		sort.Slice(us, func(i, j int) bool {
			if us[i].n != us[j].n {
				return us[i].n > us[j].n
			}
			return us[i].w < us[j].w
		})
		for i := 0; i < len(us) && i < opt.TopPhrases; i++ {
			tp.Unigrams = append(tp.Unigrams, c.Vocab.Unstem(us[i].w))
		}
		type kv struct {
			key string
			n   int64
		}
		var items []kv
		for key, n := range perTopic[k] {
			if n >= int64(opt.MinSupport) {
				items = append(items, kv{key, n})
			}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].n != items[b].n {
				return items[a].n > items[b].n
			}
			return items[a].key < items[b].key
		})
		if len(items) > opt.TopPhrases {
			items = items[:opt.TopPhrases]
		}
		for _, it := range items {
			words := counter.Unkey(it.key)
			tp.Phrases = append(tp.Phrases, RankedPhrase{
				Words: words, Display: displayWords(c, words), Score: float64(it.n),
			})
		}
		out[k] = tp
	}
	return out
}
