// Package xrand provides a small, fast, deterministic random number
// generator used by every stochastic component in this repository.
//
// All samplers in the topic models and corpus generators draw from an
// *xrand.RNG seeded explicitly, so experiments are reproducible
// bit-for-bit across runs and across Go releases (math/rand's default
// source and shuffling internals have changed between versions; this
// package does not).
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// splitmix64, the combination recommended by its authors.
package xrand

import (
	"errors"
	"math"
)

// RNG is a xoshiro256** pseudo random number generator. It is NOT safe
// for concurrent use; give each goroutine its own RNG (see Split).
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seed and returns the next splitmix64 output.
// It is used only to initialise the xoshiro state so that seeds 0, 1, 2…
// yield well-mixed, independent-looking states.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns an RNG deterministically derived from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// State is the full xoshiro256** generator state: four 64-bit words.
// It round-trips through State/SetState so a generator's exact stream
// position can be checkpointed and restored (the distributed trainer
// persists it at sweep barriers).
type State [4]uint64

// State returns the generator's current state.
func (r *RNG) State() State {
	return State{r.s0, r.s1, r.s2, r.s3}
}

// SetState restores a state captured by State. The all-zero state is
// invalid for xoshiro (the generator would emit zeros forever) and is
// rejected; it can only come from a corrupted checkpoint, never from
// State itself.
func (r *RNG) SetState(s State) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errZeroState
	}
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
	return nil
}

// errZeroState is a sentinel kept unexported; callers classify through
// the error message, which names the only way to hit it.
var errZeroState = errors.New("xrand: all-zero generator state (corrupted checkpoint)")

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split returns a new RNG whose stream is independent of r's future
// output. It is used to hand child components their own generators.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits scaled by 2^-53, the standard conversion.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for n ≪ 2^64
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Categorical samples an index proportionally to the non-negative
// weights. It panics if the weights sum to zero or are empty. This is
// the inner loop of every Gibbs sampler in the repository.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if !(total > 0) || math.IsInf(total, 1) || math.IsNaN(total) {
		panic("xrand: Categorical requires positive finite total weight")
	}
	u := r.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Gamma samples from a Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method; used by the Dirichlet sampler.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma requires shape > 0")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Normal samples a standard normal via the polar Box–Muller method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Dirichlet samples a point on the simplex with the given concentration
// parameters, writing into dst (allocated if nil) and returning it.
func (r *RNG) Dirichlet(alpha []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(alpha))
	}
	var sum float64
	for i, a := range alpha {
		g := r.Gamma(a)
		dst[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw (possible for tiny alphas): fall back to uniform.
		for i := range dst {
			dst[i] = 1 / float64(len(dst))
		}
		return dst
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}
