package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws of 100", same)
	}
}

func TestSeedZeroWorks(t *testing.T) {
	r := New(0)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		t.Fatal("all-zero state after seeding with 0")
	}
	if x, y := r.Uint64(), r.Uint64(); x == 0 && y == 0 {
		t.Fatal("seed 0 produced zero output stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(5)] = true
	}
	for v := 0; v < 5; v++ {
		if !seen[v] {
			t.Fatalf("Intn(5) never produced %d in 1000 draws", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	x := []int{1, 2, 2, 3, 5, 8, 13, 21}
	sum := 0
	for _, v := range x {
		sum += v
	}
	r.Shuffle(len(x), func(i, j int) { x[i], x[j] = x[j], x[i] })
	got := 0
	for _, v := range x {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := New(17)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("category 0 frequency = %v, want ~0.25", frac0)
	}
}

func TestCategoricalSingleton(t *testing.T) {
	r := New(19)
	if got := r.Categorical([]float64{2.5}); got != 0 {
		t.Fatalf("Categorical singleton = %d, want 0", got)
	}
}

func TestCategoricalPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical with zero weights did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestCategoricalPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical with NaN weight did not panic")
		}
	}()
	New(1).Categorical([]float64{1, math.NaN()})
}

func TestGammaMoments(t *testing.T) {
	r := New(23)
	for _, shape := range []float64{0.5, 1, 2, 7.5} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Fatalf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestGammaPanicsOnNonPositiveShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestDirichletSimplex(t *testing.T) {
	r := New(31)
	alpha := []float64{0.5, 1.5, 3.0}
	for i := 0; i < 1000; i++ {
		p := r.Dirichlet(alpha, nil)
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative Dirichlet component %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sums to %v, want 1", sum)
		}
	}
}

func TestDirichletReusesDst(t *testing.T) {
	r := New(37)
	dst := make([]float64, 3)
	out := r.Dirichlet([]float64{1, 1, 1}, dst)
	if &out[0] != &dst[0] {
		t.Fatal("Dirichlet did not reuse provided destination slice")
	}
}

func TestDirichletMean(t *testing.T) {
	r := New(41)
	alpha := []float64{2, 6} // mean should be (0.25, 0.75)
	var sum0 float64
	const n = 50000
	for i := 0; i < n; i++ {
		p := r.Dirichlet(alpha, nil)
		sum0 += p[0]
	}
	if got := sum0 / n; math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Dirichlet mean[0] = %v, want ~0.25", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(43)
	child := r.Split()
	// Child stream should not equal parent's continued stream.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("%d of 64 draws identical between parent and split child", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkCategorical50(b *testing.B) {
	r := New(1)
	w := make([]float64, 50)
	for i := range w {
		w[i] = float64(i%7) + 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Categorical(w)
	}
}
