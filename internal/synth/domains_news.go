package synth

// APNews mirrors the TREC AP news (1989) dataset: 106K full articles,
// 19M tokens (~180 per article). Topic inventory echoes the paper's
// Table 5: environment/energy, religion, Israel/Palestine, the Bush
// (senior) administration and congress, and health care.
func APNews() DomainSpec {
	environment := Topic{
		Name: "environment and energy",
		Unigrams: []string{
			"plant", "nuclear", "environmental", "energy", "waste",
			"department", "power", "chemical", "pollution", "cleanup",
			"radiation", "emissions", "fuel", "reactor", "contamination",
			"toxic", "safety", "gas", "oil", "acid", "water", "spill",
			"weapons", "site", "agency", "state", "federal", "epa",
			"officials", "protection",
		},
		Phrases: []string{
			"energy department", "environmental protection agency",
			"nuclear weapons", "acid rain", "nuclear power plant",
			"hazardous waste", "savannah river", "rocky flats",
			"nuclear power", "natural gas", "toxic waste", "clean air",
		},
	}
	religion := Topic{
		Name: "religion",
		Unigrams: []string{
			"church", "catholic", "religious", "bishop", "pope", "roman",
			"jewish", "rev", "john", "christian", "faith", "priest",
			"parish", "vatican", "clergy", "worship", "congregation",
			"ministry", "archbishop", "baptist", "lutheran", "episcopal",
			"synagogue", "rabbi", "holy", "prayer", "mass", "diocese",
			"theology", "members",
		},
		Phrases: []string{
			"roman catholic", "pope john paul", "catholic church",
			"anti semitism", "baptist church", "lutheran church",
			"episcopal church", "church members", "john paul",
			"religious leaders", "christian church",
		},
	}
	mideast := Topic{
		Name: "israel and palestine",
		Unigrams: []string{
			"palestinian", "israeli", "israel", "arab", "plo", "army",
			"reported", "west", "bank", "state", "gaza", "occupied",
			"territories", "soldiers", "uprising", "radio", "jerusalem",
			"minister", "violence", "leaders", "peace", "talks", "military",
			"strip", "settlers", "intifada", "border", "troops", "killed",
			"jordan",
		},
		Phrases: []string{
			"gaza strip", "west bank", "palestine liberation organization",
			"united states", "prime minister", "yitzhak shamir",
			"israel radio", "occupied territories", "occupied west bank",
			"israeli army", "peace talks", "arab reports",
		},
	}
	bush := Topic{
		Name: "bush administration and congress",
		Unigrams: []string{
			"bush", "house", "senate", "year", "bill", "president",
			"congress", "tax", "budget", "committee", "administration",
			"federal", "billion", "spending", "vote", "legislation",
			"proposal", "defense", "members", "capital", "washington",
			"democrats", "republicans", "lawmakers", "veto", "deficit",
			"chairman", "secretary", "programs", "raise",
		},
		Phrases: []string{
			"president bush", "white house", "bush administration",
			"house and senate", "members of congress", "defense secretary",
			"capital gains tax", "pay raise", "house members",
			"committee chairman", "federal budget", "tax increase",
		},
	}
	health := Topic{
		Name: "health care",
		Unigrams: []string{
			"drug", "aid", "health", "hospital", "medical", "patients",
			"research", "test", "study", "disease", "virus", "treatment",
			"doctors", "care", "cancer", "infected", "blood", "epidemic",
			"testing", "vaccine", "abuse", "prevention", "clinical",
			"symptoms", "insurance", "medicare", "surgery", "therapy",
			"diagnosis", "federal",
		},
		Phrases: []string{
			"health care", "medical center", "aids virus", "drug abuse",
			"food and drug administration", "aids patient",
			"centers for disease control", "heart disease", "drug testing",
			"united states", "public health", "drug use",
		},
	}
	return DomainSpec{
		Name: "ap-news",
		Topics: []Topic{environment, religion, mideast, bush, health,
			newsTopicMarkets, newsTopicCourts, newsTopicDisaster, newsTopicSports},
		Background: []string{
			"said", "people", "time", "officials", "city", "government",
			"country", "week", "today", "day", "million", "report",
			"according", "group", "public", "national", "american",
			"states", "plan", "called",
		},
		BackgroundPhrases: []string{
			"last year", "new york", "united states", "last week",
		},
		DocLenMean:   150,
		DocLenJitter: 60,
		SentenceLen:  13,
		CommaRate:    0.06,
		StopwordRate: 0.32,
		PhraseRate:   0.20,
		BackgdRate:   0.15,
		TopicAlpha:   0.15,
	}
}
