package synth

import "topmine/internal/xrand"

func newTestRNG() *xrand.RNG { return xrand.New(12345) }
