package synth

// Additional Yelp review areas: the paper's Table 6 run used 10 topics
// over the full review dump; these three extra areas (nightlife, auto,
// salons) widen the planted inventory toward that scale.

var yelpTopicNightlife = Topic{
	Name: "bars and nightlife",
	Unigrams: []string{
		"bar", "drinks", "beer", "night", "music", "cocktails", "wine",
		"bartender", "club", "patio", "crowd", "vibe", "dj", "dance",
		"pool", "lounge", "shots", "draft", "karaoke", "bouncer",
		"cover", "atmosphere", "band", "trivia", "billiards", "dive",
		"mixology", "whiskey", "tequila", "pitcher",
	},
	Phrases: []string{
		"happy hour", "live music", "craft beer", "dance floor",
		"sports bar", "dive bar", "beer selection", "cover charge",
		"late night", "wine list", "draft beer", "bar area",
	},
}

var yelpTopicAuto = Topic{
	Name: "auto services",
	Unigrams: []string{
		"car", "oil", "tires", "repair", "shop", "mechanic", "brakes",
		"vehicle", "engine", "service", "dealership", "estimate",
		"honest", "inspection", "battery", "transmission", "alignment",
		"fixed", "quote", "warranty", "appointment", "diagnostic",
		"rental", "tow", "wash", "detailing", "suspension", "exhaust",
		"coolant", "fluids",
	},
	Phrases: []string{
		"oil change", "customer service", "auto repair", "body shop",
		"car wash", "fair price", "tire rotation", "check engine light",
		"brake pads", "great service", "same day", "free estimate",
	},
}

var yelpTopicSalon = Topic{
	Name: "salons and spas",
	Unigrams: []string{
		"hair", "nails", "massage", "salon", "spa", "stylist", "cut",
		"color", "appointment", "manicure", "pedicure", "facial",
		"relaxing", "polish", "gel", "waxing", "booked", "therapist",
		"treatment", "scalp", "blowout", "trim", "highlights", "lashes",
		"brows", "acrylic", "cuticle", "aromatherapy", "deep", "tissue",
	},
	Phrases: []string{
		"hair cut", "nail salon", "deep tissue massage", "gel manicure",
		"customer service", "first time", "hair color", "walk ins",
		"mani pedi", "massage therapist", "hot stone", "highly recommend",
	},
}
