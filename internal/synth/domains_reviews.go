package synth

// YelpReviews mirrors the Yelp reviews dataset: 230K reviews, 11.8M
// tokens (~51 per review). Topic inventory echoes the paper's Table 6:
// breakfast/coffee, Asian/Chinese food, hotels, shopping, Mexican food.
// Reviews carry a heavy sentiment-word background ("good", "love",
// "great"), which the paper notes degrades topical phrase quality —
// the generator reproduces that nuisance structure on purpose.
func YelpReviews() DomainSpec {
	breakfast := Topic{
		Name: "breakfast and coffee",
		Unigrams: []string{
			"coffee", "ice", "cream", "flavor", "egg", "chocolate",
			"breakfast", "tea", "cake", "sweet", "toast", "pancakes",
			"waffle", "syrup", "bacon", "brunch", "latte", "espresso",
			"muffin", "donut", "bagel", "crepe", "omelette", "juice",
			"vanilla", "caramel", "dessert", "pastry", "croissant", "scone",
		},
		Phrases: []string{
			"ice cream", "iced tea", "french toast", "hash browns",
			"frozen yogurt", "eggs benedict", "peanut butter",
			"cup of coffee", "iced coffee", "scrambled eggs",
			"whipped cream", "orange juice",
		},
	}
	asian := Topic{
		Name: "asian food",
		Unigrams: []string{
			"food", "ordered", "chicken", "roll", "sushi", "restaurant",
			"dish", "rice", "noodles", "soup", "shrimp", "beef", "pork",
			"spicy", "sauce", "menu", "dumplings", "tempura", "curry",
			"wok", "tofu", "ramen", "sashimi", "wasabi", "ginger",
			"teriyaki", "dim", "buffet", "lunch", "dinner",
		},
		Phrases: []string{
			"spring rolls", "fried rice", "egg rolls", "chinese food",
			"pad thai", "dim sum", "thai food", "lunch specials",
			"food was good", "sushi rolls", "hot and sour soup",
			"orange chicken",
		},
	}
	hotel := Topic{
		Name: "hotels",
		Unigrams: []string{
			"room", "parking", "hotel", "stay", "time", "nice", "place",
			"great", "area", "pool", "staff", "desk", "clean", "night",
			"resort", "lobby", "view", "bed", "casino", "strip", "check",
			"valet", "spa", "gym", "suite", "wifi", "shuttle", "vegas",
			"booked", "service",
		},
		Phrases: []string{
			"parking lot", "front desk", "spring training",
			"staying at the hotel", "dog park", "room was clean",
			"pool area", "great place", "staff is friendly", "free wifi",
			"customer service", "las vegas",
		},
	}
	shopping := Topic{
		Name: "shopping",
		Unigrams: []string{
			"store", "shop", "prices", "find", "place", "buy", "selection",
			"items", "love", "great", "mall", "clothes", "deals", "stuff",
			"cheap", "quality", "brands", "shoes", "market", "produce",
			"organic", "aisles", "employees", "checkout", "coupons",
			"discount", "bargain", "thrift", "antique", "boutique",
		},
		Phrases: []string{
			"grocery store", "great selection", "farmer's market",
			"great prices", "parking lot", "wal mart", "shopping center",
			"great place", "prices are reasonable", "love this place",
			"whole foods", "trader joe's",
		},
	}
	mexican := Topic{
		Name: "mexican food",
		Unigrams: []string{
			"good", "food", "place", "burger", "ordered", "fries",
			"chicken", "tacos", "cheese", "time", "salsa", "burrito",
			"beans", "guacamole", "chips", "margarita", "enchilada",
			"quesadilla", "carnitas", "tortilla", "nachos", "taco",
			"grilled", "bbq", "wings", "pizza", "sandwich", "hot", "dog",
			"beer",
		},
		Phrases: []string{
			"mexican food", "chips and salsa", "food was good", "hot dog",
			"rice and beans", "sweet potato fries", "pretty good",
			"carne asada", "mac and cheese", "fish tacos", "happy hour",
			"green chile",
		},
	}
	return DomainSpec{
		Name: "yelp-reviews",
		Topics: []Topic{breakfast, asian, hotel, shopping, mexican,
			yelpTopicNightlife, yelpTopicAuto, yelpTopicSalon},
		Background: []string{
			"good", "place", "great", "love", "time", "service", "really",
			"nice", "best", "definitely", "friendly", "delicious",
			"amazing", "pretty", "recommend", "awesome", "favorite",
			"fresh", "worth", "staff",
		},
		BackgroundPhrases: []string{
			"pretty good", "love this place", "great place",
			"customer service", "highly recommend", "first time",
		},
		DocLenMean:   51,
		DocLenJitter: 25,
		SentenceLen:  9,
		CommaRate:    0.05,
		StopwordRate: 0.34,
		PhraseRate:   0.20,
		BackgdRate:   0.22,
		TopicAlpha:   0.18,
	}
}

// Domains returns every built-in domain spec keyed by name.
func Domains() map[string]func() DomainSpec {
	return map[string]func() DomainSpec{
		"dblp-titles":    DBLPTitles,
		"20conf":         TwentyConf,
		"dblp-abstracts": DBLPAbstracts,
		"acl-abstracts":  ACLAbstracts,
		"ap-news":        APNews,
		"yelp-reviews":   YelpReviews,
	}
}
