// Package synth generates synthetic corpora with planted topic
// structure and planted collocations.
//
// The paper evaluates on six proprietary or licence-bound datasets
// (DBLP titles/abstracts, 20Conf, TREC AP news, ACL abstracts, Yelp
// reviews). This package substitutes generative corpora whose document
// length, vocabulary profile and topical structure mirror each dataset
// (see DESIGN.md §5): documents are produced by an LDA-style process
// (per-document Dirichlet topic mixture, Zipfian per-topic unigram
// distributions) into which multi-word collocations are planted at a
// controlled rate, interleaved with stop words and sentence/comma
// punctuation. Because the generator emits *raw text*, the entire
// production pipeline — tokenizer, stemmer, stop-word handling, phrase
// mining, topic modeling — runs exactly as it would on the real data,
// and the planted structure gives ground truth that the real data
// lacks.
package synth

import (
	"math"
	"strings"

	"topmine/internal/corpus"
	"topmine/internal/xrand"
)

// Topic is one planted topic: a themed unigram vocabulary and a set of
// signature multi-word phrases.
type Topic struct {
	Name     string
	Unigrams []string // ranked roughly by intended frequency (Zipfian)
	Phrases  []string // multi-word collocations planted for this topic
}

// DomainSpec describes one synthetic dataset.
type DomainSpec struct {
	Name   string
	Topics []Topic
	// Background words/phrases occur regardless of topic ("paper we
	// propose" in abstracts, "good"/"great" in reviews) — exactly the
	// nuisance structure §8 of the paper discusses.
	Background        []string
	BackgroundPhrases []string

	DocLenMean   int     // mean content tokens per document
	DocLenJitter int     // +- uniform jitter
	SentenceLen  int     // content tokens between periods
	CommaRate    float64 // chance of a comma after any token
	StopwordRate float64 // chance a slot emits a stop word instead
	PhraseRate   float64 // chance a content slot emits a planted phrase
	BackgdRate   float64 // chance a content slot is background
	TopicAlpha   float64 // Dirichlet concentration of per-doc mixtures
}

// Options controls corpus generation.
type Options struct {
	Docs int
	Seed uint64
}

// functionWords are interspersed to make the raw text realistic; the
// pipeline's stop-word removal must strip them again.
var functionWords = []string{
	"the", "of", "and", "a", "in", "to", "for", "with", "on", "is",
	"that", "by", "an", "are", "this", "from", "as", "at", "be", "we",
}

// zipf returns cumulative weights for ranks 0..n-1 with exponent s.
func zipf(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i)+2, s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// sampleRank draws a rank from cumulative weights.
func sampleRank(r *xrand.RNG, cum []float64) int {
	u := r.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Generate produces opt.Docs raw documents from the spec. The output is
// deterministic in (spec, opt).
func Generate(spec DomainSpec, opt Options) []string {
	docs, _ := GenerateLabeled(spec, opt)
	return docs
}

// GenerateLabeled is Generate plus ground-truth labels: for each
// document, the planted topic with the largest mixture weight. The
// document stream is identical to Generate's for the same inputs. The
// labels let evaluation code measure topic purity against ground truth
// — something the paper's real datasets cannot offer.
func GenerateLabeled(spec DomainSpec, opt Options) ([]string, []int) {
	r := xrand.New(opt.Seed)
	K := len(spec.Topics)
	alpha := make([]float64, K)
	for i := range alpha {
		alpha[i] = spec.TopicAlpha
	}
	uniCum := make([][]float64, K)
	phrCum := make([][]float64, K)
	for k, t := range spec.Topics {
		uniCum[k] = zipf(len(t.Unigrams), 0.85)
		if len(t.Phrases) > 0 {
			phrCum[k] = zipf(len(t.Phrases), 0.7)
		}
	}
	var bgCum, bgPhrCum []float64
	if len(spec.Background) > 0 {
		bgCum = zipf(len(spec.Background), 0.8)
	}
	if len(spec.BackgroundPhrases) > 0 {
		bgPhrCum = zipf(len(spec.BackgroundPhrases), 0.8)
	}
	stopCum := zipf(len(functionWords), 0.9)

	docs := make([]string, opt.Docs)
	labels := make([]int, opt.Docs)
	theta := make([]float64, K)
	var sb strings.Builder
	for d := 0; d < opt.Docs; d++ {
		sb.Reset()
		r.Dirichlet(alpha, theta)
		best := 0
		for k := 1; k < K; k++ {
			if theta[k] > theta[best] {
				best = k
			}
		}
		labels[d] = best
		docLen := spec.DocLenMean
		if spec.DocLenJitter > 0 {
			docLen += r.Intn(2*spec.DocLenJitter+1) - spec.DocLenJitter
		}
		if docLen < 3 {
			docLen = 3
		}
		emitted, sinceSentence := 0, 0
		first := true
		emit := func(tok string) {
			if !first {
				sb.WriteByte(' ')
			}
			sb.WriteString(tok)
			first = false
		}
		for emitted < docLen {
			if r.Float64() < spec.StopwordRate {
				emit(functionWords[sampleRank(r, stopCum)])
				continue // stop words do not count toward content length
			}
			u := r.Float64()
			switch {
			case u < spec.BackgdRate && len(spec.Background) > 0:
				if len(spec.BackgroundPhrases) > 0 && r.Float64() < 0.25 {
					p := spec.BackgroundPhrases[sampleRank(r, bgPhrCum)]
					emit(p)
					emitted += strings.Count(p, " ") + 1
					sinceSentence += strings.Count(p, " ") + 1
				} else {
					emit(spec.Background[sampleRank(r, bgCum)])
					emitted++
					sinceSentence++
				}
			default:
				k := r.Categorical(theta)
				t := &spec.Topics[k]
				if len(t.Phrases) > 0 && r.Float64() < spec.PhraseRate {
					p := t.Phrases[sampleRank(r, phrCum[k])]
					emit(p)
					n := strings.Count(p, " ") + 1
					emitted += n
					sinceSentence += n
				} else {
					emit(t.Unigrams[sampleRank(r, uniCum[k])])
					emitted++
					sinceSentence++
				}
			}
			if sinceSentence >= spec.SentenceLen && emitted < docLen {
				sb.WriteByte('.')
				sinceSentence = 0
			} else if r.Float64() < spec.CommaRate {
				sb.WriteByte(',')
			}
		}
		sb.WriteByte('.')
		docs[d] = sb.String()
	}
	return docs, labels
}

// GenerateCorpus generates raw documents and runs them through the
// standard corpus builder.
func GenerateCorpus(spec DomainSpec, opt Options, build corpus.BuildOptions) *corpus.Corpus {
	return corpus.FromStrings(Generate(spec, opt), build)
}

// PlantedPhrases returns every planted multi-word phrase of the spec
// (topic signatures plus background), for recovery tests.
func (s DomainSpec) PlantedPhrases() []string {
	var out []string
	for _, t := range s.Topics {
		out = append(out, t.Phrases...)
	}
	out = append(out, s.BackgroundPhrases...)
	return out
}

// NumTopics returns the number of planted topics.
func (s DomainSpec) NumTopics() int { return len(s.Topics) }
