package synth

import (
	"strings"
	"testing"

	"topmine/internal/corpus"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := DBLPTitles()
	opt := Options{Docs: 50, Seed: 42}
	a := Generate(spec, opt)
	b := Generate(spec, opt)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("doc %d differs between identical runs", i)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	spec := DBLPTitles()
	a := Generate(spec, Options{Docs: 20, Seed: 1})
	b := Generate(spec, Options{Docs: 20, Seed: 2})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateDocCountAndNonEmpty(t *testing.T) {
	for name, f := range Domains() {
		docs := Generate(f(), Options{Docs: 10, Seed: 3})
		if len(docs) != 10 {
			t.Fatalf("%s: got %d docs, want 10", name, len(docs))
		}
		for i, d := range docs {
			if strings.TrimSpace(d) == "" {
				t.Fatalf("%s: doc %d empty", name, i)
			}
			if !strings.HasSuffix(d, ".") {
				t.Fatalf("%s: doc %d does not end with a period: %q", name, i, d)
			}
		}
	}
}

func TestGenerateDocLengthsInRange(t *testing.T) {
	spec := APNews()
	docs := Generate(spec, Options{Docs: 30, Seed: 5})
	for i, d := range docs {
		n := len(strings.Fields(d))
		// Content length target +- jitter, plus stop words (~45%) and
		// phrase overshoot; sanity-check broad bounds only.
		min := spec.DocLenMean - spec.DocLenJitter
		max := int(float64(spec.DocLenMean+spec.DocLenJitter)*2.2) + 10
		if n < min || n > max {
			t.Fatalf("doc %d has %d whitespace tokens, want in [%d, %d]", i, n, min, max)
		}
	}
}

func TestGenerateContainsPlantedPhrases(t *testing.T) {
	spec := TwentyConf()
	docs := Generate(spec, Options{Docs: 500, Seed: 7})
	all := strings.Join(docs, "\n")
	found := 0
	for _, p := range spec.PlantedPhrases() {
		if strings.Contains(all, p) {
			found++
		}
	}
	total := len(spec.PlantedPhrases())
	if found < total*3/4 {
		t.Fatalf("only %d of %d planted phrases appear in 500 docs", found, total)
	}
}

func TestGenerateCorpusPipelineCompatible(t *testing.T) {
	spec := YelpReviews()
	c := GenerateCorpus(spec, Options{Docs: 50, Seed: 11}, corpus.DefaultBuildOptions())
	st := c.ComputeStats()
	if st.Docs != 50 {
		t.Fatalf("docs = %d", st.Docs)
	}
	if st.Tokens == 0 || st.VocabSize == 0 {
		t.Fatalf("degenerate corpus: %+v", st)
	}
	// Stop words injected by the generator must have been stripped.
	if _, ok := c.Vocab.ID("the"); ok {
		t.Fatal("'the' survived the pipeline")
	}
	// Average content length should be near the spec (generated stop
	// words removed again).
	if st.AvgDocLen < float64(spec.DocLenMean)*0.5 || st.AvgDocLen > float64(spec.DocLenMean)*1.6 {
		t.Fatalf("avg content len %.1f far from spec mean %d", st.AvgDocLen, spec.DocLenMean)
	}
}

func TestDomainsComplete(t *testing.T) {
	d := Domains()
	for _, name := range []string{
		"dblp-titles", "20conf", "dblp-abstracts", "acl-abstracts",
		"ap-news", "yelp-reviews",
	} {
		f, ok := d[name]
		if !ok {
			t.Fatalf("domain %s missing", name)
		}
		spec := f()
		if spec.NumTopics() < 5 {
			t.Fatalf("%s: only %d topics", name, spec.NumTopics())
		}
		for _, topic := range spec.Topics {
			if len(topic.Unigrams) < 20 {
				t.Fatalf("%s/%s: only %d unigrams", name, topic.Name, len(topic.Unigrams))
			}
			if len(topic.Phrases) < 8 {
				t.Fatalf("%s/%s: only %d phrases", name, topic.Name, len(topic.Phrases))
			}
			for _, p := range topic.Phrases {
				if !strings.Contains(p, " ") {
					t.Fatalf("%s/%s: planted phrase %q is a unigram", name, topic.Name, p)
				}
			}
		}
	}
}

func TestZipfCumulative(t *testing.T) {
	cum := zipf(10, 0.9)
	if len(cum) != 10 {
		t.Fatalf("len = %d", len(cum))
	}
	prev := 0.0
	for i, v := range cum {
		if v <= prev {
			t.Fatalf("cumulative not increasing at %d", i)
		}
		prev = v
	}
	if cum[9] < 0.999999 || cum[9] > 1.000001 {
		t.Fatalf("cumulative does not end at 1: %v", cum[9])
	}
	// Rank 0 must dominate rank 9.
	w0 := cum[0]
	w9 := cum[9] - cum[8]
	if w0 <= w9 {
		t.Fatalf("zipf not decreasing: w0=%v w9=%v", w0, w9)
	}
}

func TestSampleRankBounds(t *testing.T) {
	cum := zipf(5, 0.8)
	r := newTestRNG()
	for i := 0; i < 10000; i++ {
		k := sampleRank(r, cum)
		if k < 0 || k >= 5 {
			t.Fatalf("rank %d out of bounds", k)
		}
	}
}

func TestPlantedPhrasesIncludesBackground(t *testing.T) {
	spec := DBLPAbstracts()
	all := spec.PlantedPhrases()
	found := false
	for _, p := range all {
		if p == "paper we propose" {
			found = true
		}
	}
	if !found {
		t.Fatal("background phrase missing from PlantedPhrases")
	}
}
