package synth

// Additional AP-News (1989) areas: the paper's Table 5 run used 50
// topics over the full news wire; these four extra areas (markets,
// courts, disasters, sports) widen the planted inventory accordingly.

var newsTopicMarkets = Topic{
	Name: "economy and markets",
	Unigrams: []string{
		"stock", "market", "prices", "dollar", "trading", "shares",
		"economy", "interest", "rates", "investors", "exchange", "index",
		"billion", "profits", "earnings", "inflation", "economic",
		"growth", "bonds", "yen", "traders", "analysts", "quarter",
		"futures", "commodity", "recession", "banks", "lending",
		"treasury", "deficit",
	},
	Phrases: []string{
		"stock market", "interest rates", "wall street", "dow jones",
		"stock exchange", "federal reserve", "trade deficit",
		"oil prices", "consumer prices", "exchange rates",
		"gross national product", "blue chip",
	},
}

var newsTopicCourts = Topic{
	Name: "crime and courts",
	Unigrams: []string{
		"court", "judge", "trial", "charges", "prison", "attorney",
		"police", "jury", "convicted", "sentence", "prosecutors",
		"guilty", "appeal", "investigation", "murder", "fraud", "arrest",
		"testimony", "lawyers", "defendant", "indictment", "justice",
		"crime", "verdict", "probation", "bail", "detective", "custody",
		"felony", "witnesses",
	},
	Phrases: []string{
		"supreme court", "district court", "grand jury", "law enforcement",
		"death penalty", "attorney general", "federal court",
		"plea bargain", "drug trafficking", "appeals court",
		"life in prison", "criminal charges",
	},
}

var newsTopicDisaster = Topic{
	Name: "natural disasters",
	Unigrams: []string{
		"earthquake", "hurricane", "storm", "damage", "flood", "victims",
		"rescue", "emergency", "evacuated", "winds", "disaster", "relief",
		"injured", "homes", "destroyed", "magnitude", "tornado", "fire",
		"firefighters", "survivors", "shelter", "rain", "coast",
		"tremor", "aftershock", "epicenter", "debris", "homeless",
		"volcano", "landslide",
	},
	Phrases: []string{
		"national guard", "red cross", "san francisco", "hurricane hugo",
		"richter scale", "emergency management", "death toll",
		"disaster relief", "mobile homes", "high winds",
		"bay area", "federal emergency management agency",
	},
}

var newsTopicSports = Topic{
	Name: "sports",
	Unigrams: []string{
		"game", "team", "season", "players", "coach", "league", "win",
		"points", "championship", "football", "baseball", "basketball",
		"victory", "playoffs", "score", "inning", "quarterback",
		"tournament", "title", "record", "stadium", "fans", "contract",
		"draft", "pitcher", "touchdown", "defense", "offense", "manager",
		"rookie",
	},
	Phrases: []string{
		"world series", "super bowl", "major league", "san francisco",
		"home run", "free agent", "national league", "head coach",
		"regular season", "american league", "final four", "spring training",
	},
}
