package synth

// Computer-science domain specs mirroring the paper's DBLP titles,
// 20Conf titles, DBLP abstracts and ACL abstracts datasets. The topic
// inventories deliberately echo the areas the paper reports (Table 1:
// information retrieval; Table 4: search/optimization, NLP, machine
// learning, programming languages, data mining) so the regenerated
// visualisations are directly comparable.

var csTopicML = Topic{
	Name: "machine learning",
	Unigrams: []string{
		"learning", "model", "classification", "training", "features",
		"kernel", "supervised", "neural", "network", "regression",
		"bayesian", "inference", "prediction", "label", "accuracy",
		"classifier", "clustering", "ensemble", "boosting", "margin",
		"gradient", "loss", "sparse", "matrix", "latent", "estimation",
		"probabilistic", "sample", "generalization", "dimensionality",
	},
	Phrases: []string{
		"support vector machine", "machine learning", "feature selection",
		"learning algorithm", "neural network", "decision tree",
		"training data", "semi supervised learning", "logistic regression",
		"active learning", "reinforcement learning", "graphical model",
		"hidden markov model", "dimensionality reduction",
	},
}

var csTopicDM = Topic{
	Name: "data mining",
	Unigrams: []string{
		"mining", "data", "patterns", "rules", "itemsets", "frequent",
		"discovery", "association", "stream", "transaction", "events",
		"anomaly", "outlier", "sequence", "temporal", "spatial",
		"knowledge", "large", "scalable", "efficient", "pruning",
		"summarization", "correlation", "dense", "subgraph", "graph",
		"community", "evolution", "massive", "distributed",
	},
	Phrases: []string{
		"data mining", "data sets", "association rules", "data streams",
		"frequent itemsets", "frequent pattern mining", "time series",
		"data analysis", "mining algorithms", "spatio temporal",
		"data collection", "pattern discovery", "sequential patterns",
		"knowledge discovery",
	},
}

var csTopicIR = Topic{
	Name: "information retrieval",
	Unigrams: []string{
		"search", "web", "retrieval", "information", "query", "document",
		"ranking", "text", "user", "relevance", "index", "semantic",
		"social", "content", "click", "page", "recommendation", "link",
		"filtering", "feedback", "personalized", "news", "collection",
		"snippet", "engine", "crawl", "keyword", "corpus", "tag", "entity",
	},
	Phrases: []string{
		"information retrieval", "web search", "search engine",
		"social networks", "question answering", "web page",
		"information extraction", "text classification", "topic model",
		"collaborative filtering", "query expansion", "relevance feedback",
		"link analysis", "recommender systems",
	},
}

var csTopicNLP = Topic{
	Name: "natural language processing",
	Unigrams: []string{
		"language", "word", "speech", "translation", "text", "recognition",
		"parsing", "grammar", "sentences", "corpus", "syntax", "semantic",
		"character", "discourse", "dialogue", "lexical", "morphology",
		"tagging", "alignment", "bilingual", "phrase", "sentiment",
		"summarization", "generation", "annotation", "treebank",
		"dependency", "tokens", "linguistic", "spoken",
	},
	Phrases: []string{
		"natural language", "speech recognition", "language model",
		"machine translation", "natural language processing",
		"word sense disambiguation", "named entity recognition",
		"part of speech tagging", "context free grammars",
		"statistical machine translation", "sign language",
		"recognition rate", "character recognition", "recognition system",
	},
}

var csTopicPL = Topic{
	Name: "programming languages",
	Unigrams: []string{
		"programming", "language", "code", "type", "object", "compiler",
		"implementation", "system", "java", "data", "program", "execution",
		"semantics", "static", "dynamic", "analysis", "memory", "runtime",
		"verification", "specification", "abstraction", "concurrent",
		"software", "module", "interface", "garbage", "bytecode",
		"functional", "imperative", "checker",
	},
	Phrases: []string{
		"programming language", "source code", "object oriented",
		"type system", "data structure", "program execution", "run time",
		"code generation", "object oriented programming", "java programs",
		"model checking", "static analysis", "operating system",
		"points to analysis",
	},
}

var csTopicOpt = Topic{
	Name: "search and optimization",
	Unigrams: []string{
		"problem", "algorithm", "optimal", "solution", "search", "solve",
		"constraints", "programming", "heuristic", "genetic", "optimization",
		"complexity", "approximation", "bound", "greedy", "local",
		"stochastic", "convergence", "objective", "convex", "linear",
		"combinatorial", "planning", "scheduling", "cost", "iterative",
		"evolutionary", "swarm", "global", "branch",
	},
	Phrases: []string{
		"genetic algorithm", "optimization problem", "solve this problem",
		"optimal solution", "evolutionary algorithm", "local search",
		"search space", "optimization algorithm", "search algorithm",
		"objective function", "simulated annealing", "linear programming",
		"dynamic programming", "constraint satisfaction",
	},
}

var csTopicDB = Topic{
	Name: "databases",
	Unigrams: []string{
		"database", "query", "system", "data", "processing", "storage",
		"transaction", "index", "relational", "distributed", "schema",
		"xml", "join", "optimization", "cache", "concurrency", "recovery",
		"parallel", "management", "scalable", "workload", "tuning",
		"partitioning", "replication", "throughput", "latency", "views",
		"warehouse", "integration", "stream",
	},
	Phrases: []string{
		"query processing", "database systems", "query optimization",
		"data management", "data integration", "concurrency control",
		"main memory", "data warehouse", "access control",
		"nearest neighbor", "b tree", "sql queries", "view maintenance",
		"transaction processing",
	},
}

// csBackground carries the ubiquitous publication words that do not
// discriminate topics ("paper", "approach", "results" ...). Abstracts
// use both; titles use almost none.
var csBackground = []string{
	"paper", "approach", "method", "results", "proposed", "based",
	"novel", "new", "show", "present", "performance", "experimental",
	"evaluation", "framework", "technique", "study", "application",
	"effective", "problem", "improve",
}

var csBackgroundPhrases = []string{
	"paper we propose", "experimental results", "proposed method",
	"state of the art", "paper presents", "real world",
}

// DBLPTitles mirrors the paper's DBLP titles dataset: 1.9M short
// computer-science paper titles (11M tokens, ~5.8 content tokens each).
// Scaled by Options.Docs.
func DBLPTitles() DomainSpec {
	return DomainSpec{
		Name:         "dblp-titles",
		Topics:       wideCSTopics(),
		Background:   csBackground[:6],
		DocLenMean:   7,
		DocLenJitter: 3,
		SentenceLen:  12,
		CommaRate:    0.03,
		StopwordRate: 0.18,
		PhraseRate:   0.30,
		BackgdRate:   0.04,
		TopicAlpha:   0.08, // titles are near single-topic
	}
}

// TwentyConf mirrors the 20Conf dataset: titles from 20 conferences in
// AI, DB, DM, IR, ML and NLP (44K titles, 351K tokens).
func TwentyConf() DomainSpec {
	s := DBLPTitles()
	s.Name = "20conf"
	s.Topics = []Topic{csTopicML, csTopicDM, csTopicIR, csTopicNLP, csTopicDB}
	return s
}

// DBLPAbstracts mirrors the DBLP abstracts dataset: 529K abstracts,
// 39M tokens (~74 tokens per abstract).
func DBLPAbstracts() DomainSpec {
	return DomainSpec{
		Name:              "dblp-abstracts",
		Topics:            wideCSTopics(),
		Background:        csBackground,
		BackgroundPhrases: csBackgroundPhrases,
		DocLenMean:        74,
		DocLenJitter:      30,
		SentenceLen:       11,
		CommaRate:         0.05,
		StopwordRate:      0.30,
		PhraseRate:        0.22,
		BackgdRate:        0.14,
		TopicAlpha:        0.25,
	}
}

// ACLAbstracts mirrors the ACL anthology abstracts dataset: 2K
// abstracts, 231K tokens, NLP-centric topics.
func ACLAbstracts() DomainSpec {
	mt := Topic{
		Name: "machine translation",
		Unigrams: []string{
			"translation", "bilingual", "alignment", "decoder", "phrase",
			"source", "target", "reordering", "bleu", "parallel", "corpus",
			"fluency", "lexicon", "transfer", "interlingua", "segmentation",
			"tuning", "hierarchical", "rule", "quality",
		},
		Phrases: []string{
			"machine translation", "statistical machine translation",
			"word alignment", "translation model", "parallel corpora",
			"phrase based translation", "translation quality",
			"source language", "target language",
		},
	}
	parsing := Topic{
		Name: "parsing",
		Unigrams: []string{
			"parsing", "grammar", "parser", "syntactic", "tree", "dependency",
			"constituent", "derivation", "formalism", "treebank", "lexicalized",
			"chart", "ambiguity", "attachment", "head", "projective",
			"categorial", "unification", "fragment", "annotation",
		},
		Phrases: []string{
			"dependency parsing", "context free grammars", "parse tree",
			"syntactic analysis", "statistical parsing", "tree adjoining grammars",
			"part of speech tagging", "phrase structure",
		},
	}
	speech := Topic{
		Name: "speech",
		Unigrams: []string{
			"speech", "recognition", "acoustic", "spoken", "dialogue",
			"utterance", "prosody", "phoneme", "speaker", "transcription",
			"audio", "pronunciation", "vocabulary", "decoding", "error",
			"rate", "adaptation", "perplexity", "robustness", "telephone",
		},
		Phrases: []string{
			"speech recognition", "spoken language", "language model",
			"recognition rate", "dialogue system", "speech synthesis",
			"acoustic model", "error rate",
		},
	}
	semantics := Topic{
		Name: "lexical semantics",
		Unigrams: []string{
			"word", "sense", "semantic", "lexical", "meaning", "similarity",
			"wordnet", "disambiguation", "synonym", "ontology", "concept",
			"relation", "vector", "distributional", "context", "polysemy",
			"metaphor", "entailment", "hypernym", "thesaurus",
		},
		Phrases: []string{
			"word sense disambiguation", "lexical semantics",
			"semantic similarity", "semantic role labeling",
			"word senses", "vector space model", "lexical resources",
			"textual entailment",
		},
	}
	ie := Topic{
		Name: "information extraction",
		Unigrams: []string{
			"extraction", "entity", "relation", "named", "text", "pattern",
			"template", "corpus", "annotation", "coreference", "mention",
			"event", "slot", "bootstrapping", "wrapper", "supervised",
			"recall", "precision", "gazetteer", "document",
		},
		Phrases: []string{
			"information extraction", "named entity recognition",
			"relation extraction", "question answering", "text mining",
			"coreference resolution", "named entities", "event extraction",
		},
	}
	return DomainSpec{
		Name:              "acl-abstracts",
		Topics:            []Topic{mt, parsing, speech, semantics, ie},
		Background:        csBackground,
		BackgroundPhrases: csBackgroundPhrases,
		DocLenMean:        100,
		DocLenJitter:      40,
		SentenceLen:       12,
		CommaRate:         0.05,
		StopwordRate:      0.30,
		PhraseRate:        0.22,
		BackgdRate:        0.12,
		TopicAlpha:        0.20,
	}
}
