package synth

// Additional computer-science areas for the DBLP-wide domains. The
// paper's DBLP corpora span all of computer science (its Table 4 run
// uses 50 topics); these widen the planted inventory beyond the five
// 20Conf areas so the abstracts/titles corpora carry comparable
// topical diversity.

var csTopicVision = Topic{
	Name: "computer vision",
	Unigrams: []string{
		"image", "object", "detection", "segmentation", "visual", "video",
		"recognition", "camera", "motion", "tracking", "scene", "pixel",
		"shape", "texture", "stereo", "pose", "face", "edge", "contour",
		"depth", "illumination", "geometry", "calibration", "saliency",
		"foreground", "background", "frames", "descriptor", "keypoint",
		"matching",
	},
	Phrases: []string{
		"object detection", "image segmentation", "face recognition",
		"object tracking", "optical flow", "image retrieval",
		"feature extraction", "scene understanding", "pose estimation",
		"image processing", "action recognition", "edge detection",
	},
}

var csTopicSecurity = Topic{
	Name: "security",
	Unigrams: []string{
		"security", "attack", "encryption", "privacy", "key", "protocol",
		"authentication", "malware", "vulnerability", "secure", "threat",
		"cryptographic", "signature", "trust", "adversary", "intrusion",
		"defense", "leakage", "secret", "password", "exploit", "integrity",
		"anonymity", "forensics", "botnet", "phishing", "firewall",
		"cipher", "hash", "audit",
	},
	Phrases: []string{
		"access control", "intrusion detection", "public key",
		"side channel", "differential privacy", "key exchange",
		"denial of service", "secure computation", "digital signatures",
		"threat model", "data privacy", "anomaly detection",
	},
}

var csTopicNetworking = Topic{
	Name: "networking",
	Unigrams: []string{
		"network", "routing", "wireless", "protocol", "traffic", "packet",
		"node", "bandwidth", "latency", "sensor", "mobile", "channel",
		"congestion", "topology", "link", "throughput", "delay", "radio",
		"spectrum", "coverage", "interference", "gateway", "hop",
		"multicast", "broadcast", "energy", "deployment", "mesh",
		"cellular", "backbone",
	},
	Phrases: []string{
		"sensor networks", "wireless networks", "ad hoc networks",
		"congestion control", "routing protocol", "network traffic",
		"energy efficient", "packet loss", "software defined networking",
		"quality of service", "media access control", "peer to peer",
	},
}

var csTopicTheory = Topic{
	Name: "theory",
	Unigrams: []string{
		"bound", "complexity", "graph", "theorem", "proof", "polynomial",
		"approximation", "randomized", "lower", "upper", "vertex",
		"edge", "matching", "flow", "hardness", "reduction", "logarithmic",
		"conjecture", "combinatorial", "lattice", "spectral", "random",
		"deterministic", "competitive", "online", "streaming", "sampling",
		"sketch", "dimension", "metric",
	},
	Phrases: []string{
		"lower bounds", "approximation algorithms", "upper bound",
		"polynomial time", "np hard", "worst case", "competitive ratio",
		"graph theory", "random walks", "communication complexity",
		"online algorithms", "sample complexity",
	},
}

// WideCS returns the full CS topic inventory used by the DBLP-wide
// domains (the five 20Conf areas plus vision, security, networking and
// theory).
func wideCSTopics() []Topic {
	return []Topic{
		csTopicML, csTopicDM, csTopicIR, csTopicNLP, csTopicPL,
		csTopicOpt, csTopicDB, csTopicVision, csTopicSecurity,
		csTopicNetworking, csTopicTheory,
	}
}
