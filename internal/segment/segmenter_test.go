package segment

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/phrasemine"
	"topmine/internal/synth"
	"topmine/internal/textproc"
)

func minedFromDocs(docs []string, minSupport int) (*corpus.Corpus, *phrasemine.Result) {
	c := corpus.FromStrings(docs, corpus.DefaultBuildOptions())
	return c, phrasemine.Mine(c, phrasemine.Options{MinSupport: minSupport, MaxLen: 8})
}

func repeat(docs []string, n int) []string {
	out := make([]string, 0, len(docs)*n)
	for i := 0; i < n; i++ {
		out = append(out, docs...)
	}
	return out
}

func TestTStatKnownValue(t *testing.T) {
	// f1=f2=10, f12=10, L=1000: mu=0.1, sig=(10-0.1)/sqrt(10).
	got := TStat(10, 10, 10, 1000)
	want := (10 - 0.1) / math.Sqrt(10)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TStat = %v, want %v", got, want)
	}
}

func TestScoreFuncsUnobservedAreNegInf(t *testing.T) {
	for name, f := range map[string]ScoreFunc{"tstat": TStat, "pmi": PMI, "chi": ChiSquare} {
		if got := f(10, 10, 0, 1000); !math.IsInf(got, -1) {
			t.Errorf("%s(f12=0) = %v, want -Inf", name, got)
		}
	}
}

func TestTStatIndependencePairScoresLow(t *testing.T) {
	// A pair occurring exactly as often as chance predicts scores ~0.
	mu := 100.0 * 100.0 / 10000.0 // = 1
	got := TStat(100, 100, 1, 10000)
	if math.Abs(got-(1-mu)/1) > 1e-9 {
		t.Fatalf("independent pair score = %v, want 0", got)
	}
}

func TestPartitionCoversSegment(t *testing.T) {
	docs := repeat([]string{"support vector machines classify documents"}, 8)
	c, mined := minedFromDocs(docs, 5)
	seg := NewSegmenter(mined, Options{Alpha: 4, MaxPhraseLen: 8, Workers: 1})
	words := c.Docs[0].Segments[0].Words()
	spans := seg.Partition(words)
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	pos := 0
	for _, sp := range spans {
		if sp.Start != pos {
			t.Fatalf("gap or overlap at %d: %+v", pos, spans)
		}
		if sp.End <= sp.Start {
			t.Fatalf("empty span: %+v", sp)
		}
		pos = sp.End
	}
	if pos != len(words) {
		t.Fatalf("partition ends at %d, segment has %d tokens", pos, len(words))
	}
}

func TestPartitionMergesPlantedPhrase(t *testing.T) {
	docs := repeat([]string{
		"support vector machines rock",
		"we love support vector machines",
		"support vector machines win prizes",
		"novel kernels beat support vector machines",
		"deep kernels for support vector machines",
	}, 4)
	c, mined := minedFromDocs(docs, 5)
	seg := NewSegmenter(mined, Options{Alpha: 3, MaxPhraseLen: 8, Workers: 1})
	sd := seg.SegmentDocument(c.Docs[0])
	// The first segment is "support vector machines rock"; the planted
	// trigram must come out as one span and "rock" as another.
	spans := sd.Spans[0]
	var got []int
	for _, sp := range spans {
		got = append(got, sp.Len())
	}
	if len(spans) != 2 || spans[0].Len() != 3 {
		t.Fatalf("spans lengths = %v, want [3 1]", got)
	}
}

func TestPartitionHighAlphaKeepsSingletons(t *testing.T) {
	docs := repeat([]string{"alpha beta gamma"}, 10)
	c, mined := minedFromDocs(docs, 5)
	seg := NewSegmenter(mined, Options{Alpha: math.Inf(1), Workers: 1})
	spans := seg.Partition(c.Docs[0].Segments[0].Words())
	if len(spans) != 3 {
		t.Fatalf("alpha=+Inf should yield singletons, got %+v", spans)
	}
}

func TestPartitionSingleToken(t *testing.T) {
	docs := repeat([]string{"alpha"}, 6)
	c, mined := minedFromDocs(docs, 5)
	seg := NewSegmenter(mined, DefaultOptions())
	spans := seg.Partition(c.Docs[0].Segments[0].Words())
	if len(spans) != 1 || spans[0] != (Span{0, 1}) {
		t.Fatalf("single-token partition = %+v", spans)
	}
}

func TestPartitionEmptySegment(t *testing.T) {
	_, mined := minedFromDocs(repeat([]string{"alpha"}, 6), 5)
	seg := NewSegmenter(mined, DefaultOptions())
	if spans := seg.Partition(nil); spans != nil {
		t.Fatalf("empty segment partition = %+v, want nil", spans)
	}
}

func TestPartitionRespectsMaxPhraseLen(t *testing.T) {
	docs := repeat([]string{"alpha beta gamma delta"}, 12)
	c, mined := minedFromDocs(docs, 5)
	seg := NewSegmenter(mined, Options{Alpha: 0.5, MaxPhraseLen: 2, Workers: 1})
	spans := seg.Partition(c.Docs[0].Segments[0].Words())
	for _, sp := range spans {
		if sp.Len() > 2 {
			t.Fatalf("span exceeds MaxPhraseLen: %+v", spans)
		}
	}
}

func TestPartitionMergesWholeFrequentSegment(t *testing.T) {
	// A segment that always repeats verbatim should collapse entirely
	// when alpha is low.
	docs := repeat([]string{"alpha beta gamma delta"}, 12)
	c, mined := minedFromDocs(docs, 5)
	seg := NewSegmenter(mined, Options{Alpha: 0.5, MaxPhraseLen: 8, Workers: 1})
	spans := seg.Partition(c.Docs[0].Segments[0].Words())
	if len(spans) != 1 || spans[0].Len() != 4 {
		t.Fatalf("expected single 4-token phrase, got %+v", spans)
	}
}

func TestPartitionFreeRiderResisted(t *testing.T) {
	// "data mining" is a strong collocation; "conference" co-occurs with
	// it only occasionally. With enough independent occurrences of
	// "conference", the merge of ("data mining", "conference") must
	// score below the pair's own strength and stay separate.
	docs := append(
		repeat([]string{"data mining conference"}, 3),
		append(repeat([]string{"data mining advances rapidly"}, 30),
			repeat([]string{"the conference venue changed", "another conference happened"}, 30)...)...)
	c, mined := minedFromDocs(docs, 3)
	seg := NewSegmenter(mined, Options{Alpha: 4, MaxPhraseLen: 8, Workers: 1})
	sd := seg.SegmentDocument(c.Docs[0]) // "data mining conference"
	spans := sd.Spans[0]
	if len(spans) != 2 || spans[0].Len() != 2 {
		t.Fatalf("free-rider: got spans %+v, want [data mining][conference]", spans)
	}
}

func TestSegmentCorpusParallelMatchesSerial(t *testing.T) {
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 300, Seed: 5}, corpus.DefaultBuildOptions())
	mined := phrasemine.Mine(c, phrasemine.Options{MinSupport: 5, MaxLen: 6})
	serial := NewSegmenter(mined, Options{Alpha: 5, MaxPhraseLen: 6, Workers: 1}).SegmentCorpus(c)
	parallel := NewSegmenter(mined, Options{Alpha: 5, MaxPhraseLen: 6, Workers: 4}).SegmentCorpus(c)
	for i := range serial {
		if serial[i].NumPhrases() != parallel[i].NumPhrases() {
			t.Fatalf("doc %d: serial %d phrases, parallel %d",
				i, serial[i].NumPhrases(), parallel[i].NumPhrases())
		}
		for si := range serial[i].Spans {
			a, b := serial[i].Spans[si], parallel[i].Spans[si]
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("doc %d seg %d span %d differs", i, si, j)
				}
			}
		}
	}
}

func TestSegmentCorpusPartitionProperty(t *testing.T) {
	spec := synth.YelpReviews()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 120, Seed: 8}, corpus.DefaultBuildOptions())
	mined := phrasemine.Mine(c, phrasemine.Options{MinSupport: 4, MaxLen: 6})
	segs := NewSegmenter(mined, DefaultOptions()).SegmentCorpus(c)
	for i, sd := range segs {
		d := c.Docs[sd.DocID]
		if len(sd.Spans) != len(d.Segments) {
			t.Fatalf("doc %d: %d span lists for %d segments", i, len(sd.Spans), len(d.Segments))
		}
		for si, spans := range sd.Spans {
			n := d.Segments[si].Len()
			pos := 0
			for _, sp := range spans {
				if sp.Start != pos || sp.End <= sp.Start {
					t.Fatalf("doc %d seg %d: broken partition %+v", i, si, spans)
				}
				pos = sp.End
			}
			if pos != n {
				t.Fatalf("doc %d seg %d: partition covers %d of %d", i, si, pos, n)
			}
		}
	}
}

func TestPartitionPropertyQuick(t *testing.T) {
	// Random small corpora: the partition property must always hold.
	f := func(seed uint8, support uint8) bool {
		spec := synth.DBLPTitles()
		c := synth.GenerateCorpus(spec, synth.Options{Docs: 20, Seed: uint64(seed)}, corpus.DefaultBuildOptions())
		ms := int(support%6) + 1
		mined := phrasemine.Mine(c, phrasemine.Options{MinSupport: ms, MaxLen: 6})
		segs := NewSegmenter(mined, Options{Alpha: 2, MaxPhraseLen: 6, Workers: 1}).SegmentCorpus(c)
		for _, sd := range segs {
			d := c.Docs[sd.DocID]
			for si, spans := range sd.Spans {
				pos := 0
				for _, sp := range spans {
					if sp.Start != pos {
						return false
					}
					pos = sp.End
				}
				if pos != d.Segments[si].Len() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPhraseInstances(t *testing.T) {
	// Vary the context word so the trigram (8 occurrences) is frequent
	// but no 4-gram is (2 occurrences each < support 5).
	docs := repeat([]string{
		"support vector machines classify",
		"support vector machines rock",
		"support vector machines win",
		"support vector machines scale",
	}, 2)
	c, mined := minedFromDocs(docs, 5)
	segs := NewSegmenter(mined, Options{Alpha: 2, MaxPhraseLen: 8, Workers: 1}).SegmentCorpus(c)
	inst := PhraseInstances(c, segs)
	ids, ok := phraseIDs(c, "support vector machines")
	if !ok {
		t.Fatal("cannot resolve planted phrase")
	}
	if got := inst.Get(counter.Key(ids)); got != 8 {
		t.Fatalf("instance count = %d, want 8", got)
	}
}

func TestExamplePaperTitleSegmentation(t *testing.T) {
	// Mirrors Example 1 of the paper: with supporting context, the
	// title "Mining frequent patterns without candidate generation"
	// should yield "frequent pattern(s)" grouped, not split.
	support := repeat([]string{
		"mining frequent patterns efficiently",
		"frequent patterns in databases",
		"frequent patterns grow everywhere",
		"mining frequent patterns again",
		"we mine frequent patterns",
	}, 6)
	docs := append([]string{"mining frequent patterns without candidate generation"}, support...)
	c, mined := minedFromDocs(docs, 5)
	seg := NewSegmenter(mined, Options{Alpha: 3, MaxPhraseLen: 8, Workers: 1})
	sd := seg.SegmentDocument(c.Docs[0])
	// Find a span of length >= 2 containing "frequent pattern".
	words := c.Docs[0].Segments[0].Words()
	fid, _ := c.Vocab.ID("frequent")
	found := false
	for _, sp := range sd.Spans[0] {
		if sp.Len() >= 2 {
			for i := sp.Start; i < sp.End; i++ {
				if words[i] == fid {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("'frequent patterns' not grouped: %+v", sd.Spans[0])
	}
}

// phraseIDs maps a surface phrase to pipeline ids (stop words removed,
// stems looked up).
func phraseIDs(c *corpus.Corpus, phrase string) ([]int32, bool) {
	var ids []int32
	for _, w := range strings.Fields(phrase) {
		if textproc.IsStopword(w) {
			continue
		}
		id, ok := c.Vocab.ID(textproc.Stem(w))
		if !ok {
			return nil, false
		}
		ids = append(ids, id)
	}
	return ids, true
}
