package segment

// mergeHeap is a binary max-heap of candidate merges keyed by
// significance. Entries are invalidated implicitly: a popped entry is
// acted on only if both endpoints are still alive and adjacent, so no
// decrease-key operation is needed and every merge costs O(log n), the
// bound claimed in §4.2.1 of the paper.
type mergeHeap struct {
	entries []mergeEntry
}

type mergeEntry struct {
	score       float64
	left, right int32 // node ids
}

func (h *mergeHeap) len() int { return len(h.entries) }

func (h *mergeHeap) push(e mergeEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].score >= h.entries[i].score {
			break
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		i = parent
	}
}

func (h *mergeHeap) pop() mergeEntry {
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && h.entries[l].score > h.entries[largest].score {
			largest = l
		}
		if r < last && h.entries[r].score > h.entries[largest].score {
			largest = r
		}
		if largest == i {
			break
		}
		h.entries[i], h.entries[largest] = h.entries[largest], h.entries[i]
		i = largest
	}
	return top
}

// reset empties the heap while retaining capacity, so one heap can be
// reused across the segments of a worker.
func (h *mergeHeap) reset() { h.entries = h.entries[:0] }
