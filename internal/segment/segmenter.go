package segment

import (
	"runtime"
	"sync"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/phrasemine"
)

// Options configures phrase construction.
type Options struct {
	// Alpha is the significance threshold α: merging stops when the
	// best candidate merge scores below it. The paper's running example
	// (Fig. 1) uses α = 5, roughly "five standard deviations above
	// independence".
	Alpha float64
	// MaxPhraseLen bounds constructed phrase length; 0 = unbounded.
	MaxPhraseLen int
	// Score is the merge significance measure; nil means TStat (Eq. 1).
	Score ScoreFunc
	// Workers parallelises segmentation across documents; 0 means
	// GOMAXPROCS. Results are deterministic regardless.
	Workers int
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options { return Options{Alpha: 5, MaxPhraseLen: 8, Workers: 1} }

// Span is a phrase instance: tokens [Start, End) of one segment.
type Span struct {
	Start, End int
}

// Len returns the phrase length in tokens.
func (s Span) Len() int { return s.End - s.Start }

// SegmentedDoc is the partition of one document: for each of its
// segments, an ordered list of spans that concatenate back to the
// segment (the partition property of Definition 1).
type SegmentedDoc struct {
	DocID int
	Spans [][]Span
}

// NumPhrases returns the total number of phrase instances (G_d).
func (d *SegmentedDoc) NumPhrases() int {
	n := 0
	for _, s := range d.Spans {
		n += len(s)
	}
	return n
}

// Segmenter partitions documents into phrases using mined counts.
type Segmenter struct {
	counts *counter.NGrams
	l      float64
	opt    Options
}

// NewSegmenter builds a Segmenter from Algorithm 1's output.
func NewSegmenter(mined *phrasemine.Result, opt Options) *Segmenter {
	if opt.Score == nil {
		opt.Score = TStat
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	l := float64(mined.TotalTokens)
	if l < 1 {
		l = 1
	}
	return &Segmenter{counts: mined.Counts, l: l, opt: opt}
}

// workspace holds the per-segment scratch state reused across calls.
type workspace struct {
	start, end   []int32
	prev, next   []int32
	alive        []bool
	heap         mergeHeap
	keyBuf       []byte
	spansScratch []Span
	trace        *[]MergeStep // non-nil: record executed merges
}

func (w *workspace) resize(n int) {
	if cap(w.start) < 2*n {
		w.start = make([]int32, 0, 2*n)
		w.end = make([]int32, 0, 2*n)
		w.prev = make([]int32, 0, 2*n)
		w.next = make([]int32, 0, 2*n)
		w.alive = make([]bool, 0, 2*n)
	}
	w.start = w.start[:0]
	w.end = w.end[:0]
	w.prev = w.prev[:0]
	w.next = w.next[:0]
	w.alive = w.alive[:0]
	w.heap.reset()
}

// MergeStep records one executed merge of Algorithm 2, for tracing the
// bottom-up construction (the dendrogram of the paper's Figure 1).
type MergeStep struct {
	// Left and Right are the merged operand spans; Merged covers both.
	Left, Right, Merged Span
	// Sig is the significance score that triggered the merge.
	Sig float64
}

// Partition runs Algorithm 2 on one segment's word ids and returns its
// covering spans in order.
func (s *Segmenter) Partition(words []int32) []Span {
	var w workspace
	return s.partition(words, &w)
}

// Workspace is Partition's reusable working memory for hot callers
// (the serving path partitions every request's segments): the zero
// value is ready, and one Workspace amortises the per-call scratch
// across any number of sequential PartitionWith calls. Not safe for
// concurrent use.
type Workspace struct {
	w workspace
}

// PartitionWith is Partition drawing its scratch from ws. The
// returned spans alias the workspace and are only valid until its
// next use; callers that keep them must copy.
func (s *Segmenter) PartitionWith(words []int32, ws *Workspace) []Span {
	return s.partitionSpans(words, &ws.w)
}

// TracePartition is Partition plus the ordered list of merges it
// performed, highest significance first (the execution order).
func (s *Segmenter) TracePartition(words []int32) ([]Span, []MergeStep) {
	var w workspace
	w.trace = new([]MergeStep)
	spans := s.partition(words, &w)
	return spans, *w.trace
}

// partition runs Algorithm 2 and returns freshly allocated spans.
func (s *Segmenter) partition(words []int32, w *workspace) []Span {
	spans := s.partitionSpans(words, w)
	if spans == nil {
		return nil
	}
	out := make([]Span, len(spans))
	copy(out, spans)
	return out
}

// partitionSpans runs Algorithm 2 into the workspace's span scratch;
// the result is overwritten by the workspace's next use.
func (s *Segmenter) partitionSpans(words []int32, w *workspace) []Span {
	n := len(words)
	if n == 0 {
		return nil
	}
	if n == 1 {
		w.spansScratch = append(w.spansScratch[:0], Span{0, 1})
		return w.spansScratch
	}
	w.resize(n)
	for i := 0; i < n; i++ {
		w.start = append(w.start, int32(i))
		w.end = append(w.end, int32(i+1))
		w.prev = append(w.prev, int32(i-1))
		w.next = append(w.next, int32(i+1))
		w.alive = append(w.alive, true)
	}
	w.next[n-1] = -1

	// Seed the heap with all adjacent token pairs (Algorithm 2 line 2).
	for i := 0; i+1 < n; i++ {
		s.pushCandidate(words, w, int32(i), int32(i+1))
	}

	head := int32(0)
	for w.heap.len() > 0 {
		e := w.heap.pop()
		l, r := e.left, e.right
		if !w.alive[l] || !w.alive[r] || w.next[l] != r {
			continue // stale entry: one endpoint has since been merged
		}
		if w.trace != nil {
			*w.trace = append(*w.trace, MergeStep{
				Left:   Span{int(w.start[l]), int(w.end[l])},
				Right:  Span{int(w.start[r]), int(w.end[r])},
				Merged: Span{int(w.start[l]), int(w.end[r])},
				Sig:    e.score,
			})
		}
		// Merge (Algorithm 2 lines 6-8): the pair becomes a new node.
		m := int32(len(w.start))
		w.start = append(w.start, w.start[l])
		w.end = append(w.end, w.end[r])
		w.prev = append(w.prev, w.prev[l])
		w.next = append(w.next, w.next[r])
		w.alive = append(w.alive, true)
		w.alive[l] = false
		w.alive[r] = false
		if p := w.prev[m]; p >= 0 {
			w.next[p] = m
			s.pushCandidate(words, w, p, m)
		} else {
			head = m
		}
		if nx := w.next[m]; nx >= 0 {
			w.prev[nx] = m
			s.pushCandidate(words, w, m, nx)
		}
	}

	spans := w.spansScratch[:0]
	for id := head; id >= 0; id = w.next[id] {
		spans = append(spans, Span{int(w.start[id]), int(w.end[id])})
	}
	w.spansScratch = spans
	return spans
}

// pushCandidate scores the merge of adjacent nodes l and r and pushes
// it when it could ever be executed (score >= alpha). Candidates whose
// concatenation was not mined as frequent score -Inf and are dropped —
// this is the implicit filtering of false candidates (§4.2).
func (s *Segmenter) pushCandidate(words []int32, w *workspace, l, r int32) {
	lo, mid, hi := int(w.start[l]), int(w.end[l]), int(w.end[r])
	if s.opt.MaxPhraseLen > 0 && hi-lo > s.opt.MaxPhraseLen {
		return
	}
	w.keyBuf = counter.AppendKey(w.keyBuf, words, lo, hi)
	f12 := float64(s.counts.GetBytes(w.keyBuf))
	if f12 <= 0 {
		return
	}
	w.keyBuf = counter.AppendKey(w.keyBuf, words, lo, mid)
	f1 := float64(s.counts.GetBytes(w.keyBuf))
	w.keyBuf = counter.AppendKey(w.keyBuf, words, mid, hi)
	f2 := float64(s.counts.GetBytes(w.keyBuf))
	score := s.opt.Score(f1, f2, f12, s.l)
	if score >= s.opt.Alpha {
		w.heap.push(mergeEntry{score: score, left: l, right: r})
	}
}

// SegmentDocument partitions every segment of one document.
func (s *Segmenter) SegmentDocument(d *corpus.Document) *SegmentedDoc {
	var w workspace
	return s.segmentDocument(d, &w)
}

func (s *Segmenter) segmentDocument(d *corpus.Document, w *workspace) *SegmentedDoc {
	out := &SegmentedDoc{DocID: d.ID, Spans: make([][]Span, len(d.Segments))}
	for i := range d.Segments {
		out.Spans[i] = s.partition(d.Segments[i].Words(), w)
	}
	return out
}

// SegmentCorpus partitions every document, in parallel when configured.
// Output order matches corpus order and is deterministic.
func (s *Segmenter) SegmentCorpus(c *corpus.Corpus) []*SegmentedDoc {
	out := make([]*SegmentedDoc, len(c.Docs))
	workers := s.opt.Workers
	if workers <= 1 || len(c.Docs) < 16 {
		var w workspace
		for i, d := range c.Docs {
			out[i] = s.segmentDocument(d, &w)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(c.Docs) + workers - 1) / workers
	for k := 0; k < workers; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > len(c.Docs) {
			hi = len(c.Docs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var w workspace
			for i := lo; i < hi; i++ {
				out[i] = s.segmentDocument(c.Docs[i], &w)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// PhraseInstances returns, for every multi-word span in the segmented
// corpus, its packed key — convenient for aggregating instance counts.
func PhraseInstances(c *corpus.Corpus, segs []*SegmentedDoc) *counter.NGrams {
	out := counter.New()
	var kb []byte
	for _, sd := range segs {
		d := c.Docs[sd.DocID]
		for si, spans := range sd.Spans {
			words := d.Segments[si].Words()
			for _, sp := range spans {
				kb = counter.AppendKey(kb, words, sp.Start, sp.End)
				out.IncBytes(kb)
			}
		}
	}
	return out
}
