// Package segment implements Algorithm 2 of the paper: bottom-up
// agglomerative construction of phrases within each punctuation-
// delimited segment, guided by a statistical significance score, which
// induces a partition of every document into a bag of phrases.
package segment

import "math"

// ScoreFunc scores the merge of two adjacent phrase instances with
// corpus counts f1 and f2 whose concatenation has corpus count f12, in
// a corpus of L tokens. Higher means a stronger collocation. Scores
// for unobserved combinations (f12 == 0) must be -Inf.
type ScoreFunc func(f1, f2, f12, L float64) float64

// TStat is Equation 1 of the paper: the number of standard deviations
// the observed count of the merged phrase sits above its expectation
// under a Bernoulli-independence null model, with the sample count
// standing in for the variance:
//
//	sig(P1, P2) = (f(P1⊕P2) − L·p(P1)·p(P2)) / sqrt(f(P1⊕P2))
//
// It generalises the t-statistic used for dependent-bigram detection
// and, by scoring the merge of two *phrases* rather than all
// constituent words, avoids the "free-rider" problem where long junk
// phrases look significant.
func TStat(f1, f2, f12, L float64) float64 {
	if f12 <= 0 {
		return math.Inf(-1)
	}
	mu := f1 * f2 / L
	return (f12 - mu) / math.Sqrt(f12)
}

// PMI is an ablation alternative: pointwise mutual information of the
// two phrases. Unlike TStat it is scale-free, which over-rewards rare
// pairs — exactly the failure mode the paper's measure is designed to
// resist; the ablation benchmark quantifies the difference.
func PMI(f1, f2, f12, L float64) float64 {
	if f12 <= 0 || f1 <= 0 || f2 <= 0 {
		return math.Inf(-1)
	}
	return math.Log((f12 * L) / (f1 * f2))
}

// ChiSquare is a second ablation alternative: the signed one-cell χ²
// deviation of the observed pair count from independence.
func ChiSquare(f1, f2, f12, L float64) float64 {
	if f12 <= 0 {
		return math.Inf(-1)
	}
	mu := f1 * f2 / L
	if mu <= 0 {
		return math.Inf(-1)
	}
	d := f12 - mu
	chi := d * d / mu
	if d < 0 {
		return -chi
	}
	return chi
}
