package segment

import (
	"testing"
)

func TestTracePartitionRecordsMerges(t *testing.T) {
	docs := repeat([]string{
		"markov blanket feature selection for support vector machines",
		"markov blanket discovery rocks",
		"feature selection matters",
		"support vector machines win",
		"we use support vector machines",
		"markov blanket feature selection again",
		"feature selection for support vector machines",
	}, 5)
	c, mined := minedFromDocs(docs, 4)
	seg := NewSegmenter(mined, Options{Alpha: 2, MaxPhraseLen: 8, Workers: 1})
	words := c.Docs[0].Segments[0].Words()
	spans, steps := seg.TracePartition(words)
	if len(steps) == 0 {
		t.Fatal("no merges recorded")
	}
	// Every step's operands must be adjacent and the merged span their
	// union; all above threshold.
	for _, s := range steps {
		if s.Left.End != s.Right.Start {
			t.Fatalf("non-adjacent merge: %+v", s)
		}
		if s.Merged != (Span{s.Left.Start, s.Right.End}) {
			t.Fatalf("merged span wrong: %+v", s)
		}
		if s.Sig < 2 {
			t.Fatalf("merge below alpha: %+v", s)
		}
	}
	// Merge count equals tokens minus final phrase count (each merge
	// reduces the phrase count by one).
	if len(steps) != len(words)-len(spans) {
		t.Fatalf("merges %d != tokens %d - phrases %d", len(steps), len(words), len(spans))
	}
	// Spans must still form a partition.
	pos := 0
	for _, sp := range spans {
		if sp.Start != pos {
			t.Fatalf("partition broken: %+v", spans)
		}
		pos = sp.End
	}
	if pos != len(words) {
		t.Fatal("partition does not cover segment")
	}
}

func TestTracePartitionMatchesPartition(t *testing.T) {
	docs := repeat([]string{"alpha beta gamma delta"}, 10)
	c, mined := minedFromDocs(docs, 5)
	seg := NewSegmenter(mined, Options{Alpha: 1, MaxPhraseLen: 8, Workers: 1})
	words := c.Docs[0].Segments[0].Words()
	plain := seg.Partition(words)
	traced, _ := seg.TracePartition(words)
	if len(plain) != len(traced) {
		t.Fatalf("tracing changed the partition: %v vs %v", plain, traced)
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("span %d differs: %v vs %v", i, plain[i], traced[i])
		}
	}
}

func TestTracePartitionEmptyAndSingleton(t *testing.T) {
	_, mined := minedFromDocs(repeat([]string{"alpha"}, 6), 5)
	seg := NewSegmenter(mined, DefaultOptions())
	if spans, steps := seg.TracePartition(nil); spans != nil || len(steps) != 0 {
		t.Fatal("empty segment trace should be empty")
	}
	spans, steps := seg.TracePartition([]int32{0})
	if len(spans) != 1 || len(steps) != 0 {
		t.Fatal("singleton trace wrong")
	}
}
