package segment

import (
	"math"
	"testing"
)

// TestPMIOverMergesRarePairs demonstrates the pathology the paper's
// t-statistic avoids: a pair seen only a handful of times but always
// together gets a huge PMI yet a modest t-statistic, so PMI merges it
// at thresholds where the t-statistic correctly hesitates.
func TestPMIOverMergesRarePairs(t *testing.T) {
	// Corpus: "aaa bbb" always together 3 times (rare pair) among 3000
	// filler tokens; "data mining" together 60 times with constituents
	// also appearing apart.
	var docs []string
	for i := 0; i < 3; i++ {
		docs = append(docs, "aaa bbb")
	}
	for i := 0; i < 60; i++ {
		docs = append(docs, "data mining")
	}
	for i := 0; i < 30; i++ {
		docs = append(docs, "data structures", "text mining", "filler words here")
	}
	c, mined := minedFromDocs(repeat(docs, 1), 3)

	ids := func(ws ...string) []int32 {
		out, ok := phraseIDs(c, join(ws))
		if !ok {
			t.Fatalf("missing %v", ws)
		}
		return out
	}
	l := float64(mined.TotalTokens)
	get := func(words []int32) float64 {
		return float64(mined.Counts.Get(keyFor(words)))
	}
	rare := ids("aaa", "bbb")
	common := ids("data", "mining")

	pmiRare := PMI(get(rare[:1]), get(rare[1:]), get(rare), l)
	pmiCommon := PMI(get(common[:1]), get(common[1:]), get(common), l)
	tRare := TStat(get(rare[:1]), get(rare[1:]), get(rare), l)
	tCommon := TStat(get(common[:1]), get(common[1:]), get(common), l)

	if pmiRare <= pmiCommon {
		t.Fatalf("expected PMI to over-reward the rare pair: rare %v vs common %v", pmiRare, pmiCommon)
	}
	if tRare >= tCommon {
		t.Fatalf("expected the t-statistic to prefer the well-supported pair: rare %v vs common %v", tRare, tCommon)
	}
}

// TestAlphaSweepMonotone: raising alpha can only reduce the number of
// merges (phrases get no longer).
func TestAlphaSweepMonotone(t *testing.T) {
	docs := repeat([]string{
		"frequent pattern mining rocks",
		"frequent pattern trees grow",
		"mining frequent pattern sets",
	}, 10)
	c, mined := minedFromDocs(docs, 5)
	prevPhrases := -1
	for _, alpha := range []float64{0.5, 2, 4, 8, 16, math.Inf(1)} {
		seg := NewSegmenter(mined, Options{Alpha: alpha, MaxPhraseLen: 8, Workers: 1})
		total := 0
		for _, d := range c.Docs {
			sd := seg.SegmentDocument(d)
			total += sd.NumPhrases()
		}
		if prevPhrases > 0 && total < prevPhrases {
			t.Fatalf("alpha %v produced fewer phrases (%d) than a smaller alpha (%d): merging should shrink with alpha",
				alpha, total, prevPhrases)
		}
		prevPhrases = total
	}
}

// TestScoreFuncAblationStillPartitions: every score variant must
// preserve the partition invariant.
func TestScoreFuncAblationStillPartitions(t *testing.T) {
	docs := repeat([]string{"alpha beta gamma delta epsilon zeta"}, 8)
	c, mined := minedFromDocs(docs, 5)
	for name, f := range map[string]ScoreFunc{"tstat": TStat, "pmi": PMI, "chi": ChiSquare} {
		seg := NewSegmenter(mined, Options{Alpha: 0.1, MaxPhraseLen: 8, Workers: 1, Score: f})
		words := c.Docs[0].Segments[0].Words()
		spans := seg.Partition(words)
		pos := 0
		for _, sp := range spans {
			if sp.Start != pos {
				t.Fatalf("%s: partition broken", name)
			}
			pos = sp.End
		}
		if pos != len(words) {
			t.Fatalf("%s: partition incomplete", name)
		}
	}
}

func join(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

func keyFor(words []int32) string {
	return keyOfWords(words)
}

// keyOfWords mirrors counter.Key for test readability.
func keyOfWords(words []int32) string {
	buf := make([]byte, 0, 4*len(words))
	for _, w := range words {
		buf = append(buf, byte(uint32(w)>>24), byte(uint32(w)>>16), byte(uint32(w)>>8), byte(uint32(w)))
	}
	return string(buf)
}
