package phrasemine

import (
	"strings"
	"testing"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/synth"
	"topmine/internal/textproc"
)

// buildCorpus builds a corpus from raw docs with the default pipeline.
func buildCorpus(docs []string) *corpus.Corpus {
	return corpus.FromStrings(docs, corpus.DefaultBuildOptions())
}

// repeatDocs replicates docs n times so supports are controllable.
func repeatDocs(docs []string, n int) []string {
	out := make([]string, 0, len(docs)*n)
	for i := 0; i < n; i++ {
		out = append(out, docs...)
	}
	return out
}

func keyOf(c *corpus.Corpus, words ...string) (string, bool) {
	ids := make([]int32, len(words))
	for i, w := range words {
		id, ok := c.Vocab.ID(w)
		if !ok {
			return "", false
		}
		ids[i] = id
	}
	return counter.Key(ids), true
}

func TestMineFindsPlantedBigram(t *testing.T) {
	docs := repeatDocs([]string{
		"support vector machines are powerful",
		"we train support vector machines daily",
		"linear support vector machines scale",
	}, 3)
	c := buildCorpus(docs)
	res := Mine(c, Options{MinSupport: 5, MaxLen: 5})
	k, ok := keyOf(c, "support", "vector", "machin")
	if !ok {
		t.Fatal("vocabulary missing planted words")
	}
	if got := res.Counts.Get(k); got != 9 {
		t.Fatalf("count(support vector machine) = %d, want 9", got)
	}
}

func TestMineRespectsMinSupport(t *testing.T) {
	docs := repeatDocs([]string{"alpha beta gamma"}, 4)
	c := buildCorpus(docs)
	res := Mine(c, Options{MinSupport: 5, MaxLen: 5})
	if k, ok := keyOf(c, "alpha", "beta"); ok && res.Counts.Get(k) != 0 {
		t.Fatal("bigram below support reported as frequent")
	}
	// Unigrams at count 4 are also below support.
	if k, ok := keyOf(c, "alpha"); ok && res.Counts.Get(k) != 0 {
		t.Fatal("unigram below support reported")
	}
}

func TestMineUnigramCounts(t *testing.T) {
	docs := repeatDocs([]string{"alpha beta"}, 7)
	c := buildCorpus(docs)
	res := Mine(c, Options{MinSupport: 5, MaxLen: 5})
	k, _ := keyOf(c, "alpha")
	if got := res.Counts.Get(k); got != 7 {
		t.Fatalf("unigram count = %d, want 7", got)
	}
}

func TestMineDownwardClosureProperty(t *testing.T) {
	// Every contiguous sub-phrase of a frequent phrase must be frequent
	// with at least the super-phrase's count.
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 400, Seed: 9}, corpus.DefaultBuildOptions())
	res := Mine(c, Options{MinSupport: 5, MaxLen: 6})
	checked := 0
	res.Counts.Each(func(k string, v int64) {
		words := counter.Unkey(k)
		if len(words) < 2 {
			return
		}
		for i := 0; i < len(words); i++ {
			for j := i + 1; j <= len(words); j++ {
				if j-i == len(words) {
					continue
				}
				sub := counter.Key(words[i:j])
				if sv := res.Counts.Get(sub); sv < v {
					t.Fatalf("downward closure violated: sub %v count %d < super count %d",
						words[i:j], sv, v)
				}
				checked++
			}
		}
	})
	if checked == 0 {
		t.Fatal("no multi-word phrases mined; test vacuous")
	}
}

func TestMinePhrasesNeverCrossSegments(t *testing.T) {
	// "alpha beta" always separated by a comma: must not become frequent.
	docs := repeatDocs([]string{"alpha, beta gamma"}, 10)
	c := buildCorpus(docs)
	res := Mine(c, Options{MinSupport: 5, MaxLen: 5})
	if k, ok := keyOf(c, "alpha", "beta"); ok && res.Counts.Get(k) != 0 {
		t.Fatal("phrase crossed a punctuation boundary")
	}
	k, _ := keyOf(c, "beta", "gamma")
	if res.Counts.Get(k) != 10 {
		t.Fatalf("in-segment bigram count = %d, want 10", res.Counts.Get(k))
	}
}

func TestMineMaxLenBound(t *testing.T) {
	docs := repeatDocs([]string{"alpha beta gamma delta epsilon"}, 6)
	c := buildCorpus(docs)
	res := Mine(c, Options{MinSupport: 5, MaxLen: 3})
	if res.MaxPhraseLen > 3 {
		t.Fatalf("MaxPhraseLen = %d, want <= 3", res.MaxPhraseLen)
	}
	if k, ok := keyOf(c, "alpha", "beta", "gamma", "delta"); ok && res.Counts.Get(k) != 0 {
		t.Fatal("phrase longer than MaxLen mined")
	}
	k, _ := keyOf(c, "alpha", "beta", "gamma")
	if res.Counts.Get(k) != 6 {
		t.Fatalf("trigram count = %d, want 6", res.Counts.Get(k))
	}
}

func TestMineUnboundedLength(t *testing.T) {
	docs := repeatDocs([]string{"alpha beta gamma delta epsilon"}, 6)
	c := buildCorpus(docs)
	res := Mine(c, Options{MinSupport: 5, MaxLen: 0})
	if res.MaxPhraseLen != 5 {
		t.Fatalf("MaxPhraseLen = %d, want 5", res.MaxPhraseLen)
	}
	k, _ := keyOf(c, "alpha", "beta", "gamma", "delta", "epsilon")
	if res.Counts.Get(k) != 6 {
		t.Fatal("full-segment phrase not mined")
	}
}

func TestMineOverlappingOccurrences(t *testing.T) {
	// "a a a" contains the bigram "a a" twice (overlapping).
	docs := repeatDocs([]string{"alpha alpha alpha"}, 5)
	c := buildCorpus(docs)
	res := Mine(c, Options{MinSupport: 5, MaxLen: 4})
	k, _ := keyOf(c, "alpha", "alpha")
	if got := res.Counts.Get(k); got != 10 {
		t.Fatalf("overlapping bigram count = %d, want 10", got)
	}
}

func TestMineEmptyCorpus(t *testing.T) {
	c := buildCorpus(nil)
	res := Mine(c, Options{MinSupport: 5})
	if res.Counts.Len() != 0 || res.MaxPhraseLen != 0 {
		t.Fatalf("empty corpus produced phrases: %+v", res)
	}
}

func TestMineAllStopwordDocs(t *testing.T) {
	c := buildCorpus(repeatDocs([]string{"the of and", "is are was"}, 5))
	res := Mine(c, Options{MinSupport: 2})
	if res.Counts.Len() != 0 {
		t.Fatal("stop-word-only corpus produced phrases")
	}
}

func TestMineMinSupportFloor(t *testing.T) {
	c := buildCorpus([]string{"alpha beta"})
	res := Mine(c, Options{MinSupport: 0, MaxLen: 3})
	if res.MinSupport != 1 {
		t.Fatalf("MinSupport floor = %d, want 1", res.MinSupport)
	}
	k, _ := keyOf(c, "alpha", "beta")
	if res.Counts.Get(k) != 1 {
		t.Fatal("support floor of 1 should keep single occurrences")
	}
}

func TestMineParallelMatchesSerial(t *testing.T) {
	spec := synth.DBLPAbstracts()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 150, Seed: 21}, corpus.DefaultBuildOptions())
	serial := Mine(c, Options{MinSupport: 4, MaxLen: 6, Workers: 1})
	parallel := Mine(c, Options{MinSupport: 4, MaxLen: 6, Workers: 4})
	if serial.Counts.Len() != parallel.Counts.Len() {
		t.Fatalf("entry counts differ: serial %d, parallel %d",
			serial.Counts.Len(), parallel.Counts.Len())
	}
	mismatch := false
	serial.Counts.Each(func(k string, v int64) {
		if parallel.Counts.Get(k) != v {
			mismatch = true
		}
	})
	if mismatch {
		t.Fatal("parallel counts diverge from serial")
	}
	if serial.MaxPhraseLen != parallel.MaxPhraseLen {
		t.Fatal("MaxPhraseLen differs between serial and parallel")
	}
}

func TestMineLevelCandidatesShrink(t *testing.T) {
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 300, Seed: 2}, corpus.DefaultBuildOptions())
	res := Mine(c, Options{MinSupport: 5, MaxLen: 0})
	if len(res.LevelCandidates) < 3 {
		t.Fatalf("expected at least bigram level, got %v", res.LevelCandidates)
	}
	// Apriori pruning must make high levels much smaller than level 2.
	last := res.LevelCandidates[len(res.LevelCandidates)-1]
	if last > res.LevelCandidates[2] {
		t.Fatalf("candidate counts did not shrink: %v", res.LevelCandidates)
	}
}

func TestMineRecoversMostPlantedPhrases(t *testing.T) {
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 2000, Seed: 33}, corpus.DefaultBuildOptions())
	res := Mine(c, Options{MinSupport: 5, MaxLen: 6})
	found, total := 0, 0
	for _, p := range spec.PlantedPhrases() {
		ids, ok := phraseIDs(c, p)
		if !ok || len(ids) < 2 {
			continue // phrase reduces to < 2 tokens after stop-word removal
		}
		total++
		if res.Counts.Get(counter.Key(ids)) >= 5 {
			found++
		}
	}
	if total < 20 {
		t.Fatalf("only %d multi-token planted phrases resolvable; test vacuous", total)
	}
	if found < total*2/3 {
		t.Fatalf("recovered only %d of %d planted phrases", found, total)
	}
}

// phraseIDs maps a planted surface phrase to the id sequence the
// pipeline would produce for it (stop words removed, words stemmed).
func phraseIDs(c *corpus.Corpus, phrase string) ([]int32, bool) {
	var ids []int32
	for _, w := range strings.Fields(phrase) {
		if textproc.IsStopword(w) {
			continue
		}
		id, ok := c.Vocab.ID(textproc.Stem(w))
		if !ok {
			return nil, false
		}
		ids = append(ids, id)
	}
	return ids, true
}
