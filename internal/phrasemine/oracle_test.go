package phrasemine

import (
	"testing"
	"testing/quick"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/synth"
)

// naiveCounts counts every contiguous n-gram (1 <= n <= maxLen) of
// every segment by brute force — the specification Algorithm 1 must
// match after support filtering.
func naiveCounts(c *corpus.Corpus, maxLen int) *counter.NGrams {
	out := counter.New()
	for _, d := range c.Docs {
		for si := range d.Segments {
			words := d.Segments[si].Words()
			for i := 0; i < len(words); i++ {
				for n := 1; n <= maxLen && i+n <= len(words); n++ {
					out.Inc(counter.Key(words[i : i+n]))
				}
			}
		}
	}
	return out
}

// TestMineMatchesBruteForce is the oracle test: on random small
// corpora, Algorithm 1's output equals brute-force counting restricted
// to frequent phrases.
func TestMineMatchesBruteForce(t *testing.T) {
	f := func(seedByte, supportByte uint8) bool {
		seed := uint64(seedByte)
		support := int(supportByte%7) + 1
		c := synth.GenerateCorpus(synth.DBLPTitles(),
			synth.Options{Docs: 40, Seed: seed}, corpus.DefaultBuildOptions())
		const maxLen = 6
		mined := Mine(c, Options{MinSupport: support, MaxLen: maxLen, Workers: 1})
		naive := naiveCounts(c, maxLen)
		naive.Prune(int64(support))
		if mined.Counts.Len() != naive.Len() {
			t.Logf("seed=%d support=%d: mined %d entries, naive %d",
				seed, support, mined.Counts.Len(), naive.Len())
			return false
		}
		ok := true
		naive.Each(func(key string, want int64) {
			if got := mined.Counts.Get(key); got != want {
				t.Logf("seed=%d support=%d: phrase %v mined=%d naive=%d",
					seed, support, counter.Unkey(key), got, want)
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestMineMatchesBruteForceLongSegments stresses the boundary logic
// with repeated tokens and segment-length edge cases.
func TestMineMatchesBruteForceLongSegments(t *testing.T) {
	docs := []string{
		"a a a a a a a a",
		"a b a b a b a b",
		"x y z x y z x y z",
		"one",
		"two two",
		"p q r s t u v w x y z p q r s t u v w x y z",
	}
	// Repeat so everything clears support.
	var all []string
	for i := 0; i < 4; i++ {
		all = append(all, docs...)
	}
	c := corpus.FromStrings(all, corpus.DefaultBuildOptions())
	for _, support := range []int{1, 2, 4, 8} {
		mined := Mine(c, Options{MinSupport: support, MaxLen: 0, Workers: 1})
		naive := naiveCounts(c, 32)
		naive.Prune(int64(support))
		if mined.Counts.Len() != naive.Len() {
			t.Fatalf("support %d: mined %d entries, naive %d",
				support, mined.Counts.Len(), naive.Len())
		}
		naive.Each(func(key string, want int64) {
			if got := mined.Counts.Get(key); got != want {
				t.Fatalf("support %d: %v mined=%d naive=%d",
					support, counter.Unkey(key), got, want)
			}
		})
	}
}
