// Package phrasemine implements Algorithm 1 of the paper: frequent
// contiguous phrase mining with position-based Apriori pruning
// (downward closure) and document data-antimonotonicity.
//
// The mining unit is the punctuation-delimited segment (§4.1), which
// bounds per-unit work by a constant and makes total work linear in
// corpus size. At iteration n, candidate phrases of length n are
// counted only at "active indices" — positions whose length-(n-1)
// prefix is frequent and whose successor position is also active (so
// the length-(n-1) suffix is frequent too). Segments whose active set
// empties are dropped from all further consideration.
package phrasemine

import (
	"runtime"
	"sync"

	"topmine/internal/corpus"
	"topmine/internal/counter"
)

// Options configures mining.
type Options struct {
	// MinSupport is the paper's ε: the minimum corpus count for a
	// phrase to be considered frequent. Values < 1 are treated as 1.
	MinSupport int
	// MaxLen bounds phrase length; 0 means unbounded (mining stops when
	// no candidates survive, the natural termination of Algorithm 1).
	MaxLen int
	// Workers > 1 shards the per-level counting across goroutines with
	// per-worker counters merged between levels. Results are identical
	// to the serial run. 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the options used throughout the paper's
// experiments: an absolute support floor suitable for medium corpora.
func DefaultOptions() Options { return Options{MinSupport: 5, MaxLen: 8, Workers: 1} }

// Result carries the mined aggregate statistics.
type Result struct {
	// Counts maps every frequent phrase (length >= 1, count >= ε) to
	// its corpus count. This is the {(P, C(P))} of Algorithm 1 and the
	// input to the significance-guided segmentation.
	Counts *counter.NGrams
	// TotalTokens is L, the corpus token count used by the Bernoulli
	// null model of the significance score.
	TotalTokens int
	// MinSupport echoes the effective ε.
	MinSupport int
	// MaxPhraseLen is the length of the longest frequent phrase found.
	MaxPhraseLen int
	// LevelCandidates[n] is the number of distinct length-n candidates
	// counted (diagnostics: shows Apriori pruning at work).
	LevelCandidates []int
}

// segState tracks one segment still under consideration.
type segState struct {
	words  []int32
	active []int32 // indices whose length-(n-1) phrase is frequent
}

// Mine runs Algorithm 1 over the corpus.
func Mine(c *corpus.Corpus, opt Options) *Result {
	if opt.MinSupport < 1 {
		opt.MinSupport = 1
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	eps := int64(opt.MinSupport)
	res := &Result{
		Counts:          counter.New(),
		TotalTokens:     c.TotalTokens,
		MinSupport:      opt.MinSupport,
		LevelCandidates: []int{0}, // index 0 unused
	}

	// Level 1: count every unigram.
	uni := counter.New()
	var segs []*segState
	for _, d := range c.Docs {
		for i := range d.Segments {
			w := d.Segments[i].Words()
			if len(w) == 0 {
				continue
			}
			segs = append(segs, &segState{words: w})
			kb := make([]byte, 0, 4)
			for i := range w {
				kb = counter.AppendKey(kb, w, i, i+1)
				uni.IncBytes(kb)
			}
		}
	}
	res.LevelCandidates = append(res.LevelCandidates, uni.Len())
	uni.Prune(eps)
	res.Counts.Merge(uni)
	if uni.Len() > 0 {
		res.MaxPhraseLen = 1
	}

	// Compute level-2 active indices: positions with a frequent unigram.
	prev := uni
	for _, s := range segs {
		kb := make([]byte, 0, 4)
		for i := range s.words {
			kb = counter.AppendKey(kb, s.words, i, i+1)
			if prev.GetBytes(kb) >= eps {
				s.active = append(s.active, int32(i))
			}
		}
	}
	segs = compact(segs)

	for n := 2; len(segs) > 0 && (opt.MaxLen == 0 || n <= opt.MaxLen); n++ {
		level := countLevel(segs, n, opt.Workers)
		res.LevelCandidates = append(res.LevelCandidates, level.Len())
		level.Prune(eps)
		if level.Len() > 0 {
			res.MaxPhraseLen = n
		}
		res.Counts.Merge(level)

		// Recompute active indices for level n+1 using level-n counts,
		// dropping out-of-bounds starts (the paper's removal of the max
		// index) and exhausted segments (data-antimonotonicity).
		updateActive(segs, level, n, eps, opt.Workers)
		segs = compact(segs)
		if level.Len() == 0 {
			break // nothing frequent at this length: no longer ones exist
		}
	}
	return res
}

// countLevel counts all length-n candidates at active positions.
func countLevel(segs []*segState, n, workers int) *counter.NGrams {
	if workers <= 1 || len(segs) < 64 {
		out := counter.New()
		kb := make([]byte, 0, 4*n)
		for _, s := range segs {
			countSegment(out, s, n, &kb)
		}
		return out
	}
	locals := make([]*counter.NGrams, workers)
	var wg sync.WaitGroup
	chunk := (len(segs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(segs) {
			hi = len(segs)
		}
		if lo >= hi {
			locals[w] = counter.New()
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := counter.New()
			kb := make([]byte, 0, 4*n)
			for _, s := range segs[lo:hi] {
				countSegment(local, s, n, &kb)
			}
			locals[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	out := locals[0]
	for _, l := range locals[1:] {
		out.Merge(l)
	}
	return out
}

// countSegment counts length-n candidates in one segment: position i
// yields a candidate when i and i+1 are both active, i.e. both the
// length-(n-1) prefix and suffix of the candidate are frequent
// (Apriori) and the candidate cannot overflow the segment.
func countSegment(out *counter.NGrams, s *segState, n int, kb *[]byte) {
	act := s.active
	for idx := 0; idx+1 < len(act); idx++ {
		i := act[idx]
		if act[idx+1] != i+1 {
			continue
		}
		*kb = counter.AppendKey(*kb, s.words, int(i), int(i)+n)
		out.IncBytes(*kb)
	}
}

// updateActive recomputes per-segment active sets for level n+1: keep
// index i when the length-n phrase at i is frequent and a length-(n+1)
// phrase starting at i stays in bounds.
func updateActive(segs []*segState, level *counter.NGrams, n int, eps int64, workers int) {
	update := func(s *segState) {
		kb := make([]byte, 0, 4*n)
		next := s.active[:0]
		for _, i := range s.active {
			if int(i)+n > len(s.words) {
				continue // length-n phrase itself would overflow
			}
			kb = counter.AppendKey(kb, s.words, int(i), int(i)+n)
			if level.GetBytes(kb) >= eps {
				next = append(next, i)
			}
		}
		s.active = next
	}
	if workers <= 1 || len(segs) < 64 {
		for _, s := range segs {
			update(s)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(segs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(segs) {
			hi = len(segs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for _, s := range segs[lo:hi] {
				update(s)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// compact drops segments whose active set is empty (or too small to
// ever produce another candidate: a single active index cannot form a
// pair). This is the data-antimonotonicity pruning of Algorithm 1.
func compact(segs []*segState) []*segState {
	out := segs[:0]
	for _, s := range segs {
		if len(s.active) >= 2 {
			out = append(out, s)
		}
	}
	return out
}
