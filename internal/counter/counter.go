// Package counter implements the hash-based n-gram counter that
// Algorithm 1 of the paper uses to collect aggregate phrase counts
// ("fixed-length candidate phrases beginning at each active index are
// counted using an appropriate hash-based counter", §4.1).
//
// Keys are contiguous word-id sequences packed 4 bytes big-endian per
// id into a Go string: collision-free, order-preserving within one
// length class, and cheap to build. The counter stores *int64 values
// so that increments of existing keys go through the (allocation-free)
// m[string(buf)] read path and bump through the pointer; only the
// first occurrence of a candidate allocates its key.
package counter

import (
	"encoding/binary"
	"sort"
)

// Key packs the word ids into a map key.
func Key(words []int32) string {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(w))
	}
	return string(buf)
}

// AppendKey packs words[start:end] into dst (resetting it) and returns
// the updated buffer; use with GetBytes/IncBytes to avoid allocating
// on the hot path.
func AppendKey(dst []byte, words []int32, start, end int) []byte {
	dst = dst[:0]
	for _, w := range words[start:end] {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(w))
		dst = append(dst, b[:]...)
	}
	return dst
}

// Unkey unpacks a key back into word ids.
func Unkey(key string) []int32 {
	n := len(key) / 4
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(binary.BigEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return out
}

// KeyLen returns the number of words encoded in key.
func KeyLen(key string) int { return len(key) / 4 }

// NGrams counts phrase occurrences.
type NGrams struct {
	m map[string]*int64
}

// New returns an empty counter.
func New() *NGrams { return &NGrams{m: make(map[string]*int64)} }

// NewWithCapacity returns an empty counter pre-sized for n entries.
func NewWithCapacity(n int) *NGrams { return &NGrams{m: make(map[string]*int64, n)} }

// Inc adds one occurrence of key.
func (c *NGrams) Inc(key string) { c.Add(key, 1) }

// IncBytes adds one occurrence of the packed key held in buf. The
// lookup does not allocate; only first occurrences copy the key.
func (c *NGrams) IncBytes(buf []byte) {
	if p, ok := c.m[string(buf)]; ok {
		*p++
		return
	}
	v := int64(1)
	c.m[string(buf)] = &v
}

// Add adds delta occurrences of key.
func (c *NGrams) Add(key string, delta int64) {
	if p, ok := c.m[key]; ok {
		*p += delta
		return
	}
	v := delta
	c.m[key] = &v
}

// Get returns the count for key (0 when absent).
func (c *NGrams) Get(key string) int64 {
	if p, ok := c.m[key]; ok {
		return *p
	}
	return 0
}

// GetBytes looks up a packed key held in a byte buffer without
// allocating.
func (c *NGrams) GetBytes(key []byte) int64 {
	if p, ok := c.m[string(key)]; ok {
		return *p
	}
	return 0
}

// Has reports whether key is present.
func (c *NGrams) Has(key string) bool { _, ok := c.m[key]; return ok }

// Len returns the number of distinct keys.
func (c *NGrams) Len() int { return len(c.m) }

// Prune removes every entry with count < min and returns the number
// removed.
func (c *NGrams) Prune(min int64) int {
	removed := 0
	for k, v := range c.m {
		if *v < min {
			delete(c.m, k)
			removed++
		}
	}
	return removed
}

// Merge adds all counts from other into c.
func (c *NGrams) Merge(other *NGrams) {
	for k, v := range other.m {
		c.Add(k, *v)
	}
}

// Each calls f for every (key, count) pair in unspecified order.
func (c *NGrams) Each(f func(key string, count int64)) {
	for k, v := range c.m {
		f(k, *v)
	}
}

// Entry is one phrase with its corpus count.
type Entry struct {
	Words []int32
	Count int64
}

// Entries returns all entries with at least minWords words (0 = all),
// sorted by descending count then by key for determinism.
func (c *NGrams) Entries(minWords int) []Entry {
	type kv struct {
		k string
		v int64
	}
	tmp := make([]kv, 0, len(c.m))
	for k, v := range c.m {
		if KeyLen(k) >= minWords {
			tmp = append(tmp, kv{k, *v})
		}
	}
	sort.Slice(tmp, func(i, j int) bool {
		if tmp[i].v != tmp[j].v {
			return tmp[i].v > tmp[j].v
		}
		return tmp[i].k < tmp[j].k
	})
	out := make([]Entry, len(tmp))
	for i, e := range tmp {
		out[i] = Entry{Words: Unkey(e.k), Count: e.v}
	}
	return out
}
