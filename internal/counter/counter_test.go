package counter

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestKeyUnkeyRoundTrip(t *testing.T) {
	cases := [][]int32{
		{}, {0}, {1, 2, 3}, {2147483647}, {7, 7, 7, 7, 7},
	}
	for _, words := range cases {
		got := Unkey(Key(words))
		if len(words) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, words) {
			t.Errorf("round trip %v -> %v", words, got)
		}
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		words := make([]int32, len(raw))
		for i, r := range raw {
			words[i] = int32(r & 0x7fffffff)
		}
		back := Unkey(Key(words))
		if len(words) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(back, words)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyInjective(t *testing.T) {
	// Phrases that could collide under naive string joins must not.
	a := Key([]int32{1, 23})
	b := Key([]int32{12, 3})
	if a == b {
		t.Fatal("distinct phrases share a key")
	}
	if Key([]int32{1}) == Key([]int32{1, 0}) {
		t.Fatal("prefix phrase shares key with extension")
	}
}

func TestKeyLen(t *testing.T) {
	for n := 0; n < 6; n++ {
		words := make([]int32, n)
		if got := KeyLen(Key(words)); got != n {
			t.Errorf("KeyLen = %d, want %d", got, n)
		}
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	words := []int32{5, 9, 100, 3}
	buf := AppendKey(nil, words, 1, 3)
	if string(buf) != Key(words[1:3]) {
		t.Fatal("AppendKey and Key disagree")
	}
	// Reuse should reset.
	buf = AppendKey(buf, words, 0, 2)
	if string(buf) != Key(words[0:2]) {
		t.Fatal("AppendKey reuse did not reset buffer")
	}
}

func TestIncGet(t *testing.T) {
	c := New()
	k := Key([]int32{1, 2})
	if c.Get(k) != 0 {
		t.Fatal("fresh counter nonzero")
	}
	c.Inc(k)
	c.Inc(k)
	c.Add(k, 3)
	if got := c.Get(k); got != 5 {
		t.Fatalf("Get = %d, want 5", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestIncBytesEquivalentToInc(t *testing.T) {
	c := New()
	words := []int32{3, 1, 4}
	buf := AppendKey(nil, words, 0, 3)
	c.IncBytes(buf)
	c.IncBytes(buf)
	if got := c.Get(Key(words)); got != 2 {
		t.Fatalf("IncBytes count = %d, want 2", got)
	}
	if got := c.GetBytes(buf); got != 2 {
		t.Fatalf("GetBytes = %d, want 2", got)
	}
}

func TestPrune(t *testing.T) {
	c := New()
	c.Add(Key([]int32{1}), 10)
	c.Add(Key([]int32{2}), 4)
	c.Add(Key([]int32{3}), 5)
	removed := c.Prune(5)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if c.Has(Key([]int32{2})) {
		t.Fatal("below-threshold entry survived Prune")
	}
	if !c.Has(Key([]int32{3})) {
		t.Fatal("at-threshold entry removed by Prune")
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Add(Key([]int32{1}), 2)
	b.Add(Key([]int32{1}), 3)
	b.Add(Key([]int32{2}), 7)
	a.Merge(b)
	if a.Get(Key([]int32{1})) != 5 || a.Get(Key([]int32{2})) != 7 {
		t.Fatalf("merge wrong: %d, %d", a.Get(Key([]int32{1})), a.Get(Key([]int32{2})))
	}
}

func TestEachVisitsAll(t *testing.T) {
	c := New()
	c.Add(Key([]int32{1}), 1)
	c.Add(Key([]int32{2, 3}), 2)
	var total int64
	c.Each(func(k string, v int64) { total += v })
	if total != 3 {
		t.Fatalf("Each total = %d, want 3", total)
	}
}

func TestEntriesSortedAndFiltered(t *testing.T) {
	c := New()
	c.Add(Key([]int32{1}), 10)
	c.Add(Key([]int32{2, 3}), 30)
	c.Add(Key([]int32{4, 5}), 20)
	all := c.Entries(0)
	if len(all) != 3 || all[0].Count != 30 || all[2].Count != 10 {
		t.Fatalf("Entries(0) mis-sorted: %+v", all)
	}
	multi := c.Entries(2)
	if len(multi) != 2 {
		t.Fatalf("Entries(2) = %+v", multi)
	}
	for _, e := range multi {
		if len(e.Words) < 2 {
			t.Fatalf("unigram leaked through filter: %+v", e)
		}
	}
}

func TestEntriesDeterministicTieBreak(t *testing.T) {
	c := New()
	c.Add(Key([]int32{9}), 5)
	c.Add(Key([]int32{1}), 5)
	e := c.Entries(0)
	if e[0].Words[0] != 1 {
		t.Fatalf("tie not broken by key order: %+v", e)
	}
}

func BenchmarkIncBytesHot(b *testing.B) {
	c := New()
	words := []int32{10, 20, 30}
	buf := AppendKey(nil, words, 0, 3)
	c.IncBytes(buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.IncBytes(buf)
	}
}

func BenchmarkGetBytes(b *testing.B) {
	c := New()
	buf := AppendKey(nil, []int32{10, 20, 30}, 0, 3)
	c.IncBytes(buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.GetBytes(buf)
	}
}
