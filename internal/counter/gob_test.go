package counter

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestNGramsGobRoundTrip(t *testing.T) {
	c := New()
	c.Add(Key([]int32{1}), 7)
	c.Add(Key([]int32{2}), 3)
	c.Add(Key([]int32{1, 2}), 5)
	c.Add(Key([]int32{1, 2, 3}), 2)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := New()
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(got); err != nil {
		t.Fatalf("decode: %v", err)
	}

	if got.Len() != c.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), c.Len())
	}
	c.Each(func(k string, n int64) {
		if got.Get(k) != n {
			t.Fatalf("count for %v = %d, want %d", Unkey(k), got.Get(k), n)
		}
	})
	// The decoded counter stays fully functional.
	got.Inc(Key([]int32{1, 2}))
	if got.Get(Key([]int32{1, 2})) != 6 {
		t.Fatal("post-decode increment lost")
	}
}

func TestNGramsGobDeterministic(t *testing.T) {
	build := func() *NGrams {
		c := New()
		// Insert in different orders; encoding must not care.
		for i := int32(0); i < 50; i++ {
			c.Add(Key([]int32{i % 7, i}), int64(i))
		}
		return c
	}
	other := New()
	for i := int32(49); i >= 0; i-- {
		other.Add(Key([]int32{i % 7, i}), int64(i))
	}
	a, err := build().GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("equal counters encoded to different bytes")
	}
}

func TestNGramsGobCorrupt(t *testing.T) {
	c := New()
	if err := c.GobDecode([]byte("not gob data")); err == nil {
		t.Fatal("corrupt counter bytes accepted")
	}
}
