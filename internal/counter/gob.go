package counter

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// ngramsWire is the gob wire form of an NGrams counter: parallel key
// and count slices, keys sorted so identical counters serialise to
// identical bytes.
type ngramsWire struct {
	Keys   []string
	Counts []int64
}

// GobEncode serialises the counter so mined phrase statistics can be
// persisted in pipeline snapshots.
func (c *NGrams) GobEncode() ([]byte, error) {
	w := ngramsWire{
		Keys:   make([]string, 0, len(c.m)),
		Counts: make([]int64, 0, len(c.m)),
	}
	for k := range c.m {
		w.Keys = append(w.Keys, k)
	}
	sort.Strings(w.Keys)
	for _, k := range w.Keys {
		w.Counts = append(w.Counts, *c.m[k])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("counter: encoding ngrams: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode restores a counter serialised by GobEncode.
func (c *NGrams) GobDecode(data []byte) error {
	var w ngramsWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("counter: decoding ngrams: %w", err)
	}
	if len(w.Keys) != len(w.Counts) {
		return fmt.Errorf("counter: decoding ngrams: %d keys but %d counts", len(w.Keys), len(w.Counts))
	}
	c.m = make(map[string]*int64, len(w.Keys))
	for i, k := range w.Keys {
		v := w.Counts[i]
		c.m[k] = &v
	}
	return nil
}
