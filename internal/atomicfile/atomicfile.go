// Package atomicfile writes files atomically: content goes to an
// exclusively-created temporary file in the destination directory,
// which is renamed into place only after a complete, successful write.
// A failed or interrupted save therefore never destroys an existing
// file at the path, and no reader ever observes a half-written one.
// Both the pipeline snapshot writer and the corpus-file writer publish
// their artifacts through this package, so crash-safety fixes (e.g. a
// future fsync-before-rename) land in exactly one place.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Error marks a failure of the atomic-write machinery itself — temp
// creation, chmod, close, rename — as opposed to an error returned by
// the caller's write function, which Write propagates verbatim.
// Callers that prefix their own errors can therefore classify with
// errors.As instead of sniffing message strings.
type Error struct {
	Path string
	Err  error
}

func (e *Error) Error() string { return "atomically writing " + e.Path + ": " + e.Err.Error() }
func (e *Error) Unwrap() error { return e.Err }

// Write atomically replaces path with whatever fn writes. Errors
// returned by fn propagate verbatim (fn owns its error vocabulary);
// file-system failures come back as *Error carrying the path. The
// published file's permissions match a plain os.Create: an existing
// file's mode is preserved, and a fresh file gets 0666 filtered by the
// process umask.
func Write(path string, fn func(io.Writer) error) error {
	wrap := func(err error) error { return &Error{Path: path, Err: err} }
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must stage the temp file in the working
		// directory, not os.TempDir(): a cross-filesystem os.Rename
		// fails with EXDEV and would break the atomic replace.
		dir = "."
	}
	f, tmp, err := createExclusiveTemp(dir, base)
	if err != nil {
		return wrap(err)
	}
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if fi, err := os.Stat(path); err == nil {
		// Replacing an existing file: preserve its permissions.
		if err := f.Chmod(fi.Mode().Perm()); err != nil {
			cleanup()
			return wrap(err)
		}
	}
	if err := fn(f); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return wrap(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return wrap(err)
	}
	return nil
}

// createExclusiveTemp creates a uniquely named file in dir with mode
// 0666 filtered by the process umask (os.CreateTemp always uses 0600,
// which is wrong for a file that will be renamed into a shared
// artifact path).
func createExclusiveTemp(dir, base string) (*os.File, string, error) {
	for i := 0; i < 10000; i++ {
		name := filepath.Join(dir, fmt.Sprintf("%s.tmp%d-%d", base, os.Getpid(), i))
		f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
		if err == nil {
			return f, name, nil
		}
		if !os.IsExist(err) {
			return nil, "", err
		}
	}
	return nil, "", fmt.Errorf("could not create a temporary file in %s", dir)
}
