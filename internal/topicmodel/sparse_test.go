package topicmodel

import (
	"bytes"
	"math"
	"testing"

	"topmine/internal/corpus"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/synth"
)

// synthPhraseDocs builds a segmented synthetic corpus — the realistic
// PhraseLDA workload with mixed clique lengths — plus a held-out
// document-completion split for perplexity comparisons.
func synthPhraseDocs(t testing.TB, domain string, n int) ([]Doc, [][]int32, int) {
	t.Helper()
	c := synth.GenerateCorpus(synth.Domains()[domain](),
		synth.Options{Docs: n, Seed: 7}, corpus.DefaultBuildOptions())
	ho := corpus.SplitDocumentCompletion(c, 0.2, 1)
	mined := phrasemine.Mine(ho.Train, phrasemine.Options{MinSupport: 5, MaxLen: 8, Workers: 1})
	segs := segment.NewSegmenter(mined, segment.Options{Alpha: 3, MaxPhraseLen: 8, Workers: 1}).
		SegmentCorpus(ho.Train)
	return DocsFromSegmentation(ho.Train, segs), ho.Test, ho.Train.Vocab.Size()
}

// TestSparseDensePerplexityEquivalence is the statistical-equivalence
// gate: the sparse bucketed sampler and the dense reference sample the
// exact same conditional (TestSparseMatchesDenseConditional pins that
// per-draw), so they are two chains of the same posterior and their
// held-out perplexities must agree up to chain noise. A single seed's
// chains can land ±5% apart at this corpus size, so the test compares
// seed-averaged perplexities, which must match within 2%.
func TestSparseDensePerplexityEquivalence(t *testing.T) {
	seeds := []uint64{11, 12, 13, 14}
	for _, tc := range []struct {
		domain string
		docs   int
		k      int
	}{
		{"dblp-abstracts", 250, 10},
		{"20conf", 400, 8},
	} {
		_, test, v := synthPhraseDocs(t, tc.domain, tc.docs)
		var ps, pd float64
		for _, seed := range seeds {
			opt := Options{K: tc.k, Iterations: 300, Seed: seed}
			docsA, _, _ := synthPhraseDocs(t, tc.domain, tc.docs)
			p := Perplexity(Train(docsA, v, opt), test)
			if math.IsNaN(p) {
				t.Fatalf("%s: sparse perplexity NaN at seed %d", tc.domain, seed)
			}
			ps += p
			opt.DenseSampler = true
			docsB, _, _ := synthPhraseDocs(t, tc.domain, tc.docs)
			p = Perplexity(Train(docsB, v, opt), test)
			if math.IsNaN(p) {
				t.Fatalf("%s: dense perplexity NaN at seed %d", tc.domain, seed)
			}
			pd += p
		}
		ps /= float64(len(seeds))
		pd /= float64(len(seeds))
		if diff := math.Abs(ps-pd) / pd; diff > 0.02 {
			t.Errorf("%s: mean sparse perplexity %.3f vs dense %.3f (%.2f%% apart, want <= 2%%)",
				tc.domain, ps, pd, diff*100)
		} else {
			t.Logf("%s: mean sparse perplexity %.3f vs dense %.3f (%.2f%% apart)",
				tc.domain, ps, pd, diff*100)
		}
	}
}

// TestSparseMatchesDenseConditional walks a real training run and, at
// every draw point, reassembles the sparse sampler's per-topic
// probability from its buckets (smoothing term + document bucket +
// word bucket for unigrams; caught-up S_W term or exact Eq. 7 product
// for phrase cliques) and compares it against the dense conditional.
// This pins the tentpole's exactness claim draw-by-draw, so the
// perplexity equivalence test above only has to absorb chain noise.
func TestSparseMatchesDenseConditional(t *testing.T) {
	docs, _, v := synthPhraseDocs(t, "dblp-abstracts", 60)
	m := NewModel(docs, v, Options{K: 7, Iterations: 1, Seed: 5})
	sp := m.ensureSparse()
	sparse := make([]float64, m.K)
	for sweep := 0; sweep < 3; sweep++ {
		sp.refresh()
		for d := range m.Docs {
			if len(m.Docs[d].Cliques) == 0 {
				continue
			}
			sp.beginDoc(d)
			for g := range m.Docs[d].Cliques {
				clique := m.Docs[d].Cliques[g]
				sp.apply(clique, m.Z[d][g], -1)
				dense := m.denseCliqueWeights(d, clique)
				if W := len(clique); W == 1 {
					sp.catchUp(1)
					for k := 0; k < m.K; k++ {
						sparse[k] = sp.term[1][k] + float64(sp.ndkRow[k])*m.Beta*sp.invden[k]
					}
					for _, e := range sp.wt[clique[0]] {
						k := uint32(e)
						sparse[k] += float64(e>>32) * sp.qcoef[k]
					}
				} else {
					sp.catchUp(W)
					cands := make(map[int32]bool)
					for _, k := range sp.docTopics {
						cands[k] = true
					}
					for _, word := range clique {
						for _, e := range sp.wt[word] {
							cands[int32(uint32(e))] = true
						}
					}
					for k := 0; k < m.K; k++ {
						sparse[k] = sp.term[W][k]
					}
					for k := range cands {
						akn := m.Alpha[k] + float64(sp.ndkRow[k])
						den := m.BetaSum + float64(m.Nk[k])
						p := 1.0
						for j, word := range clique {
							fj := float64(j)
							p *= (akn + fj) * (m.Beta + float64(m.nwkRow(word)[k])) / (den + fj)
						}
						sparse[k] = p
					}
				}
				for k := 0; k < m.K; k++ {
					if math.Abs(sparse[k]-dense[k]) > 1e-9*dense[k] {
						t.Fatalf("sweep %d doc %d clique %d (W=%d) topic %d: sparse %.17g dense %.17g",
							sweep, d, g, len(clique), k, sparse[k], dense[k])
					}
				}
				k := int32(m.rng.Categorical(dense))
				m.Z[d][g] = k
				sp.apply(clique, k, 1)
			}
		}
	}
}

// TestSparseSweepInvariants runs serial sparse sweeps over a clique-
// heavy corpus and verifies count/assignment consistency (including
// the packed word-topic index) after every sweep.
func TestSparseSweepInvariants(t *testing.T) {
	docs, _, v := synthPhraseDocs(t, "dblp-abstracts", 120)
	m := NewModel(docs, v, Options{K: 6, Iterations: 1, Seed: 3})
	for i := 0; i < 5; i++ {
		m.Sweep()
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after sparse sweep %d: %v", i+1, err)
		}
	}
}

// TestMixedSerialParallelSweeps interleaves sparse serial sweeps and
// delta-reconciled parallel sweeps: the parallel path bulk-edits the
// counts behind the sparse sampler's index, which must rebuild and
// stay exact.
func TestMixedSerialParallelSweeps(t *testing.T) {
	docs, _, v := synthPhraseDocs(t, "dblp-abstracts", 150)
	m := NewModel(docs, v, Options{K: 5, Iterations: 1, Seed: 17})
	for i := 0; i < 3; i++ {
		m.Sweep()
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d after serial sweep: %v", i, err)
		}
		m.SweepParallel(4)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d after parallel sweep: %v", i, err)
		}
	}
}

// TestSparseHyperOptTraining exercises the sweep-start mass refresh:
// hyperparameter optimisation makes Alpha asymmetric and moves Beta
// between sweeps, and the sparse buckets must follow.
func TestSparseHyperOptTraining(t *testing.T) {
	docs := twoTopicDocs(20, 25)
	m := Train(docs, 10, Options{K: 2, Iterations: 60, Seed: 13,
		OptimizeHyper: true, HyperEvery: 10, BurnIn: 10})
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The planted data is symmetric, so Alpha may stay symmetric — but
	// the fixed-point update must have moved it off the 50/K initial
	// value, proving optimisation ran against the sparse sweeps.
	if m.AlphaSum == 50.0 {
		t.Fatal("hyperparameter optimisation never ran (AlphaSum still at its initial value)")
	}
	if m.Beta == 0.01 {
		t.Fatal("beta optimisation never ran")
	}
}

// TestSparseRecoversPlantedTopics is the planted-structure check on
// the default (sparse) sampler, mirroring the dense-era test.
func TestSparseRecoversPlantedTopics(t *testing.T) {
	docs := twoTopicDocs(30, 30)
	m := Train(docs, 10, Options{K: 2, Iterations: 100, Seed: 3})
	topicOf := func(w int32) int {
		if m.nwkRow(w)[0] >= m.nwkRow(w)[1] {
			return 0
		}
		return 1
	}
	a := topicOf(0)
	for w := int32(1); w < 5; w++ {
		if topicOf(w) != a {
			t.Fatalf("topic-A words split under sparse sampling: word %d", w)
		}
	}
	for w := int32(5); w < 10; w++ {
		if topicOf(w) == a {
			t.Fatalf("topic-B word %d merged into topic A", w)
		}
	}
}

// TestSweepParallelMemoryBounded pins the tentpole's memory claim:
// after the first sweep warms the reusable delta buffers, a parallel
// sweep must not allocate anything proportional to V×K (the old
// implementation copied V×K int32s per worker per sweep — thousands
// of allocations; the rewrite allocates only goroutine bookkeeping).
func TestSweepParallelMemoryBounded(t *testing.T) {
	docs, _, v := synthPhraseDocs(t, "dblp-abstracts", 150)
	m := NewModel(docs, v, Options{K: 50, Iterations: 1, Seed: 29})
	for i := 0; i < 3; i++ {
		m.SweepParallel(4) // warm the per-worker delta pools
	}
	allocs := testing.AllocsPerRun(3, func() { m.SweepParallel(4) })
	// 4 goroutines and a WaitGroup cost a handful of allocations; the
	// old V×K snapshot+copies cost >1000 on this corpus. The bound is
	// generous to stay robust under -race instrumentation.
	if allocs > 100 {
		t.Fatalf("SweepParallel allocates %v objects per sweep after warmup; want O(workers), not O(V)", allocs)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepSteadyStateAllocFree pins the serial sparse sweep's
// steady-state allocation behaviour: once the word-topic index and
// scratch have warmed, sweeping allocates nothing.
func TestSweepSteadyStateAllocFree(t *testing.T) {
	docs, _, v := synthPhraseDocs(t, "dblp-abstracts", 120)
	m := NewModel(docs, v, Options{K: 20, Iterations: 1, Seed: 31})
	for i := 0; i < 5; i++ {
		m.Sweep()
	}
	if allocs := testing.AllocsPerRun(3, func() { m.Sweep() }); allocs > 20 {
		t.Fatalf("steady-state sparse sweep allocates %v objects; want ~0", allocs)
	}
}

// TestInferThetaScratchEquivalence: the pooled-scratch inference path
// must be bit-identical to the allocating one, and reusing a scratch
// across calls (including across different clique shapes) must not
// leak state between calls.
func TestInferThetaScratchEquivalence(t *testing.T) {
	docs, _, v := synthPhraseDocs(t, "20conf", 200)
	m := Train(docs, v, Options{K: 6, Iterations: 30, Seed: 19})
	cliqA := [][]int32{{1, 2}, {3}, {4, 5, 6}}
	cliqB := [][]int32{{2}, {7}}
	want := m.InferTheta(cliqA, 20, 99)
	sc := &InferScratch{}
	for i := 0; i < 3; i++ {
		got := m.InferThetaScratch(cliqA, 20, 99, sc)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("call %d: scratch path diverges at topic %d: %v vs %v", i, k, got[k], want[k])
			}
		}
		// Interleave a different shape to poison any leaked state.
		_ = m.InferThetaScratch(cliqB, 10, 5, sc)
	}
	// The returned slice must be caller-owned: mutating it and
	// re-running must not see the mutation.
	got := m.InferThetaScratch(cliqA, 20, 99, sc)
	got[0] = -1
	again := m.InferThetaScratch(cliqA, 20, 99, sc)
	if again[0] == -1 {
		t.Fatal("InferThetaScratch returned pooled memory")
	}
}

// TestSparseSamplerAfterLoad: a gob round trip drops the unexported
// sampler state; training must resume on the sparse path with exact
// invariants (the compacted arenas and rebuilt index agreeing).
func TestSparseSamplerAfterLoad(t *testing.T) {
	docs, _, v := synthPhraseDocs(t, "dblp-abstracts", 100)
	m := Train(docs, v, Options{K: 5, Iterations: 10, Seed: 23})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf, 42)
	if err != nil {
		t.Fatal(err)
	}
	m2.Sweep()
	m2.SweepParallel(3)
	m2.Sweep()
	if err := m2.CheckInvariants(); err != nil {
		t.Fatalf("post-load mixed sweeps broke invariants: %v", err)
	}
}

// TestLoadRejectsCorruptCounts: a gob-valid stream whose count
// matrices disagree with its assignments must fail at Load with an
// error, not panic inside the first post-load sweep.
func TestLoadRejectsCorruptCounts(t *testing.T) {
	docs := twoTopicDocs(3, 6)
	m := Train(docs, 10, Options{K: 2, Iterations: 3, Seed: 53})
	m.Nwk[0][0]++ // desync counts from assignments
	m.Nk[0]++
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, 1); err == nil {
		t.Fatal("Load accepted a stream with counts inconsistent with assignments")
	}
}

// TestDenseSamplerSurvivesRoundTrip: resumed training must keep using
// the sampler it was configured with, or the RNG stream (and so the
// bit-for-bit reproducibility contract) silently changes.
func TestDenseSamplerSurvivesRoundTrip(t *testing.T) {
	docs := twoTopicDocs(4, 8)
	m := Train(docs, 10, Options{K: 2, Iterations: 5, Seed: 41, DenseSampler: true})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf, 41)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.DenseSampler {
		t.Fatal("DenseSampler flag lost across Save/Load")
	}
}
