package topicmodel

import (
	"math"
	"testing"
)

// skewedDocs builds a corpus whose first document dwarfs the rest —
// the shape that stalls equal-document chunking at the sweep barrier.
func skewedDocs(nSmall, bigTokens int) []Doc {
	docs := make([]Doc, 0, nSmall+1)
	big := Doc{ID: 0}
	for t := 0; t < bigTokens; t++ {
		big.Cliques = append(big.Cliques, []int32{int32(t % 10)})
	}
	docs = append(docs, big)
	for d := 0; d < nSmall; d++ {
		docs = append(docs, Doc{ID: d + 1, Cliques: [][]int32{{int32(d % 10)}}})
	}
	return docs
}

// TestShardRangesTokenBalance pins the shard-imbalance fix: boundaries
// follow cumulative token counts, so on a skewed corpus the giant
// document no longer drags half the small ones into its shard.
func TestShardRangesTokenBalance(t *testing.T) {
	docs := skewedDocs(300, 300)
	ranges := ShardRanges(docs, 2)
	if ranges[0] != [2]int{0, 1} {
		t.Fatalf("giant doc should fill shard 0 alone, got %v", ranges)
	}
	if ranges[1] != [2]int{1, 301} {
		t.Fatalf("shard 1 should hold all small docs, got %v", ranges)
	}

	// Balanced corpora split near-evenly on tokens, cover [0, n)
	// contiguously, and the boundaries are deterministic.
	docs = twoTopicDocs(41, 27)
	total := 0
	for i := range docs {
		total += docs[i].NumTokens()
	}
	for _, workers := range []int{1, 2, 3, 4, 7} {
		ranges := ShardRanges(docs, workers)
		if len(ranges) != workers {
			t.Fatalf("%d workers: got %d ranges", workers, len(ranges))
		}
		prev := 0
		for wi, r := range ranges {
			if r[0] != prev {
				t.Fatalf("%d workers: range %d starts at %d, want %d", workers, wi, r[0], prev)
			}
			prev = r[1]
			tok := 0
			for d := r[0]; d < r[1]; d++ {
				tok += docs[d].NumTokens()
			}
			// Each shard is within one max-document of the ideal share.
			maxDoc := 0
			for i := range docs {
				if n := docs[i].NumTokens(); n > maxDoc {
					maxDoc = n
				}
			}
			if ideal := total / workers; tok > ideal+maxDoc {
				t.Fatalf("%d workers: shard %d holds %d tokens, ideal %d (max doc %d)", workers, wi, tok, ideal, maxDoc)
			}
		}
		if prev != len(docs) {
			t.Fatalf("%d workers: ranges end at %d, want %d", workers, prev, len(docs))
		}
		again := ShardRanges(docs, workers)
		for wi := range ranges {
			if ranges[wi] != again[wi] {
				t.Fatalf("%d workers: ShardRanges not deterministic", workers)
			}
		}
	}
}

// TestSweepParallelSkewedDeterministic pins that training stays
// deterministic (fixed topology) with token-balanced shards on a
// skewed corpus, and that invariants hold.
func TestSweepParallelSkewedDeterministic(t *testing.T) {
	opt := Options{K: 3, Iterations: 10, Seed: 211}
	a := TrainParallel(skewedDocs(50, 120), 10, opt, 3)
	b := TrainParallel(skewedDocs(50, 120), 10, opt, 3)
	for d := range a.Z {
		for g := range a.Z[d] {
			if a.Z[d][g] != b.Z[d][g] {
				t.Fatal("skewed parallel training nondeterministic")
			}
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepStatsHook pins the per-sweep timing hook: parallel sweeps
// report worker count and per-worker sample durations; clearing the
// hook stops reporting.
func TestSweepStatsHook(t *testing.T) {
	docs := twoTopicDocs(20, 20)
	m := NewModel(docs, 10, Options{K: 2, Iterations: 1, Seed: 13})
	var got []SweepStats
	m.SetSweepStats(func(st SweepStats) { got = append(got, st) })
	m.SweepParallel(4)
	m.SweepParallel(4)
	if len(got) != 2 {
		t.Fatalf("expected 2 stats reports, got %d", len(got))
	}
	for _, st := range got {
		if st.Workers != 4 || len(st.WorkerSample) != 4 {
			t.Fatalf("bad stats shape: %+v", st)
		}
		if st.Sample <= 0 {
			t.Fatalf("sample duration not measured: %+v", st)
		}
	}
	m.SetSweepStats(nil)
	m.SweepParallel(4)
	if len(got) != 2 {
		t.Fatal("cleared hook still reporting")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepParallelPreservesInvariants(t *testing.T) {
	docs := twoTopicDocs(20, 20)
	m := NewModel(docs, 10, Options{K: 3, Iterations: 1, Seed: 91})
	for i := 0; i < 5; i++ {
		m.SweepParallel(4)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepParallelFallsBackWhenTiny(t *testing.T) {
	docs := twoTopicDocs(1, 5) // 2 docs: fewer than 2*workers
	m := NewModel(docs, 10, Options{K: 2, Iterations: 1, Seed: 93})
	m.SweepParallel(8) // must not panic; falls back to serial
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainParallelDeterministic(t *testing.T) {
	opt := Options{K: 2, Iterations: 15, Seed: 97}
	a := TrainParallel(twoTopicDocs(10, 10), 10, opt, 4)
	b := TrainParallel(twoTopicDocs(10, 10), 10, opt, 4)
	for d := range a.Z {
		for g := range a.Z[d] {
			if a.Z[d][g] != b.Z[d][g] {
				t.Fatal("parallel training nondeterministic for fixed worker count")
			}
		}
	}
}

func TestTrainParallelQualityComparable(t *testing.T) {
	// AD-LDA approximation: held-out perplexity should land close to
	// the serial sampler's (within 10%).
	mkDocs := func() []Doc { return twoTopicDocs(40, 30) }
	test := make([][]int32, 80)
	for d := range test {
		base := int32(0)
		if d >= 40 {
			base = 5
		}
		test[d] = []int32{base, base + 2}
	}
	serial := Train(mkDocs(), 10, Options{K: 2, Iterations: 60, Seed: 101})
	parallel := TrainParallel(mkDocs(), 10, Options{K: 2, Iterations: 60, Seed: 101}, 4)
	ps := Perplexity(serial, test)
	pp := Perplexity(parallel, test)
	if math.IsNaN(ps) || math.IsNaN(pp) {
		t.Fatalf("NaN perplexities: %v %v", ps, pp)
	}
	if pp > ps*1.10 || pp < ps*0.90 {
		t.Fatalf("parallel perplexity %v too far from serial %v", pp, ps)
	}
}

func TestTrainParallelRecoversTopics(t *testing.T) {
	docs := twoTopicDocs(30, 30)
	m := TrainParallel(docs, 10, Options{K: 2, Iterations: 100, Seed: 103}, 4)
	topicOf := func(w int32) int {
		if m.Nwk[w][0] >= m.Nwk[w][1] {
			return 0
		}
		return 1
	}
	a := topicOf(0)
	for w := int32(1); w < 5; w++ {
		if topicOf(w) != a {
			t.Fatalf("topic-A words split under parallel training: word %d", w)
		}
	}
	for w := int32(5); w < 10; w++ {
		if topicOf(w) == a {
			t.Fatalf("topic-B word %d merged into topic A", w)
		}
	}
}

func TestSweepParallelWithCliques(t *testing.T) {
	// Multi-word cliques across many docs, parallel sweeps: invariants
	// must hold exactly after reconciliation.
	var docs []Doc
	for d := 0; d < 50; d++ {
		docs = append(docs, Doc{ID: d, Cliques: [][]int32{
			{int32(d % 4), int32((d + 1) % 4)},
			{int32(d % 7)},
			{4, 5, 6},
		}})
	}
	m := NewModel(docs, 10, Options{K: 4, Iterations: 1, Seed: 107})
	for i := 0; i < 8; i++ {
		m.SweepParallel(4)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
