package topicmodel

import (
	"math"
	"testing"
)

func TestSweepParallelPreservesInvariants(t *testing.T) {
	docs := twoTopicDocs(20, 20)
	m := NewModel(docs, 10, Options{K: 3, Iterations: 1, Seed: 91})
	for i := 0; i < 5; i++ {
		m.SweepParallel(4)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepParallelFallsBackWhenTiny(t *testing.T) {
	docs := twoTopicDocs(1, 5) // 2 docs: fewer than 2*workers
	m := NewModel(docs, 10, Options{K: 2, Iterations: 1, Seed: 93})
	m.SweepParallel(8) // must not panic; falls back to serial
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainParallelDeterministic(t *testing.T) {
	opt := Options{K: 2, Iterations: 15, Seed: 97}
	a := TrainParallel(twoTopicDocs(10, 10), 10, opt, 4)
	b := TrainParallel(twoTopicDocs(10, 10), 10, opt, 4)
	for d := range a.Z {
		for g := range a.Z[d] {
			if a.Z[d][g] != b.Z[d][g] {
				t.Fatal("parallel training nondeterministic for fixed worker count")
			}
		}
	}
}

func TestTrainParallelQualityComparable(t *testing.T) {
	// AD-LDA approximation: held-out perplexity should land close to
	// the serial sampler's (within 10%).
	mkDocs := func() []Doc { return twoTopicDocs(40, 30) }
	test := make([][]int32, 80)
	for d := range test {
		base := int32(0)
		if d >= 40 {
			base = 5
		}
		test[d] = []int32{base, base + 2}
	}
	serial := Train(mkDocs(), 10, Options{K: 2, Iterations: 60, Seed: 101})
	parallel := TrainParallel(mkDocs(), 10, Options{K: 2, Iterations: 60, Seed: 101}, 4)
	ps := Perplexity(serial, test)
	pp := Perplexity(parallel, test)
	if math.IsNaN(ps) || math.IsNaN(pp) {
		t.Fatalf("NaN perplexities: %v %v", ps, pp)
	}
	if pp > ps*1.10 || pp < ps*0.90 {
		t.Fatalf("parallel perplexity %v too far from serial %v", pp, ps)
	}
}

func TestTrainParallelRecoversTopics(t *testing.T) {
	docs := twoTopicDocs(30, 30)
	m := TrainParallel(docs, 10, Options{K: 2, Iterations: 100, Seed: 103}, 4)
	topicOf := func(w int32) int {
		if m.Nwk[w][0] >= m.Nwk[w][1] {
			return 0
		}
		return 1
	}
	a := topicOf(0)
	for w := int32(1); w < 5; w++ {
		if topicOf(w) != a {
			t.Fatalf("topic-A words split under parallel training: word %d", w)
		}
	}
	for w := int32(5); w < 10; w++ {
		if topicOf(w) == a {
			t.Fatalf("topic-B word %d merged into topic A", w)
		}
	}
}

func TestSweepParallelWithCliques(t *testing.T) {
	// Multi-word cliques across many docs, parallel sweeps: invariants
	// must hold exactly after reconciliation.
	var docs []Doc
	for d := 0; d < 50; d++ {
		docs = append(docs, Doc{ID: d, Cliques: [][]int32{
			{int32(d % 4), int32((d + 1) % 4)},
			{int32(d % 7)},
			{4, 5, 6},
		}})
	}
	m := NewModel(docs, 10, Options{K: 4, Iterations: 1, Seed: 107})
	for i := 0; i < 8; i++ {
		m.SweepParallel(4)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
