package topicmodel

import "math"

// Perplexity computes held-out per-token perplexity by document
// completion, the evaluation behind Figures 6 and 7: each training
// document d has a withheld tail test[d] of token ids, scored with the
// model's point estimates
//
//	p(w | d) = Σ_k θ̂_dk · φ̂_kw ,  perplexity = exp(−Σ log p / N).
//
// Because the generative processes of PhraseLDA and LDA are identical
// (§5.2), the two models' values are directly comparable. Documents
// with empty tails contribute nothing. The result is in nats converted
// to the conventional exp scale; divide log by ln 2 for "bits".
func Perplexity(m *Model, test [][]int32) float64 {
	if len(test) != len(m.Docs) {
		panic("topicmodel: test set does not align with training docs")
	}
	theta := make([]float64, m.K)
	phiW := make([]float64, m.K)
	var logSum float64
	var n int
	for d, toks := range test {
		if len(toks) == 0 {
			continue
		}
		m.Theta(d, theta)
		for _, w := range toks {
			if int(w) >= m.V {
				continue // out-of-vocabulary guard
			}
			row := m.nwkRow(w)
			var p float64
			for k := 0; k < m.K; k++ {
				phiW[k] = (float64(row[k]) + m.Beta) / (float64(m.Nk[k]) + m.BetaSum)
				p += theta[k] * phiW[k]
			}
			logSum += math.Log(p)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(-logSum / float64(n))
}

// TrainPerplexity computes in-sample per-token perplexity over the
// training documents themselves — cheap to evaluate every sweep and
// monotone-ish as the chain mixes; used for quick convergence checks.
func TrainPerplexity(m *Model) float64 {
	theta := make([]float64, m.K)
	var logSum float64
	var n int
	for d := range m.Docs {
		if len(m.Docs[d].Cliques) == 0 {
			continue
		}
		m.Theta(d, theta)
		for _, clique := range m.Docs[d].Cliques {
			for _, w := range clique {
				row := m.nwkRow(w)
				var p float64
				for k := 0; k < m.K; k++ {
					p += theta[k] * (float64(row[k]) + m.Beta) / (float64(m.Nk[k]) + m.BetaSum)
				}
				logSum += math.Log(p)
				n++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(-logSum / float64(n))
}
