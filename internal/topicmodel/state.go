package topicmodel

import (
	"fmt"

	"topmine/internal/xrand"
)

// Checkpoint/restore support for distributed training: a model's full
// Gibbs state at a sweep barrier is (Z, priors, RNG position) — the
// count matrices are a pure function of Z and the documents, so a
// barrier snapshot rebuilds them instead of trusting them off disk.

// NewModelFromState builds a model whose assignments are the given z
// (deep-copied) and whose count matrices are recomputed from those
// assignments — the restore path for barrier checkpoints, where Z is
// globally synchronized and therefore fully determines the counts.
// The alpha vector is copied; betaSum is taken verbatim rather than
// recomputed so the float bits match the checkpointed run exactly.
// The sampler RNG starts from seed 0; callers restoring a checkpoint
// follow up with SetSamplerState.
func NewModelFromState(docs []Doc, vocabSize, k int, alpha []float64, alphaSum, beta, betaSum float64, z [][]int32) (*Model, error) {
	if k <= 0 || vocabSize <= 0 {
		return nil, fmt.Errorf("topicmodel: restored model needs positive K and V, got K=%d V=%d", k, vocabSize)
	}
	if len(alpha) != k {
		return nil, fmt.Errorf("topicmodel: restored alpha has %d entries, want %d", len(alpha), k)
	}
	if len(z) != len(docs) {
		return nil, fmt.Errorf("topicmodel: restored state has %d z rows for %d docs", len(z), len(docs))
	}
	m := &Model{
		K:        k,
		V:        vocabSize,
		Alpha:    append([]float64(nil), alpha...),
		AlphaSum: alphaSum,
		Beta:     beta,
		BetaSum:  betaSum,
		Docs:     docs,
		rng:      xrand.New(0),
		weights:  make([]float64, k),
	}
	m.Z = make([][]int32, len(docs))
	m.nwk = make([]int32, vocabSize*k)
	m.Nwk = make([][]int32, vocabSize)
	for w := range m.Nwk {
		m.Nwk[w] = m.nwk[w*k : (w+1)*k : (w+1)*k]
	}
	m.ndk = make([]int32, len(docs)*k)
	m.Ndk = make([][]int32, len(docs))
	m.Nk = make([]int64, k)
	m.Nd = make([]int32, len(docs))
	for d := range docs {
		m.Ndk[d] = m.ndk[d*k : (d+1)*k : (d+1)*k]
		if len(z[d]) != len(docs[d].Cliques) {
			return nil, fmt.Errorf("topicmodel: restored doc %d has %d assignments for %d cliques", d, len(z[d]), len(docs[d].Cliques))
		}
		m.Z[d] = append([]int32(nil), z[d]...)
		row := m.Ndk[d]
		for g, clique := range docs[d].Cliques {
			zk := z[d][g]
			if zk < 0 || int(zk) >= k {
				return nil, fmt.Errorf("topicmodel: restored doc %d clique %d: topic %d out of range", d, g, zk)
			}
			for _, w := range clique {
				if w < 0 || int(w) >= vocabSize {
					return nil, fmt.Errorf("topicmodel: restored doc %d clique %d holds word %d, vocabulary is %d", d, g, w, vocabSize)
				}
				m.nwkRow(w)[zk]++
			}
			row[zk] += int32(len(clique))
			m.Nk[zk] += int64(len(clique))
			m.Nd[d] += int32(len(clique))
		}
	}
	return m, nil
}

// SamplerState returns the exact position of the model's sweep-schedule
// RNG, for barrier checkpoints. Restoring it with SetSamplerState makes
// the next NextSweepBase draw identical to what an uninterrupted run
// would have drawn.
func (m *Model) SamplerState() xrand.State { return m.rng.State() }

// SetSamplerState restores an RNG position captured by SamplerState.
func (m *Model) SetSamplerState(s xrand.State) error {
	if err := m.rng.SetState(s); err != nil {
		return fmt.Errorf("topicmodel: %w", err)
	}
	return nil
}
