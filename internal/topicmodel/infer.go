package topicmodel

import "topmine/internal/xrand"

// InferScratch holds the per-call working memory of InferTheta so a
// serving layer can pool it across requests instead of allocating
// four slices and an RNG per inference. The zero value is ready to
// use; a scratch adapts itself to any model/document shape, so one
// pool can serve models of different K.
type InferScratch struct {
	ndk     []int32
	z       []int32
	weights []float64
	acc     []float64
	rng     xrand.RNG
}

// grow returns a zeroed slice of length n, reusing s's backing array
// when it is large enough.
func grow[T int32 | float64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// InferTheta folds an unseen document into a trained model: the
// model's topic-word counts stay fixed while the new document's clique
// assignments are Gibbs-sampled for iters sweeps (plus an equal burn-
// in), and the returned vector is the posterior-mean topic mixture
// averaged over the sampling half. The model is not modified, so
// concurrent inference on different documents is safe as long as the
// model itself is not training.
//
// Burn-in contract: one call runs exactly 2×iters full Gibbs sweeps —
// iters discarded as burn-in, then iters contributing samples. Anyone
// budgeting CPU per call (e.g. a serving layer capping request work)
// must count 2×iters sweeps, not iters.
func (m *Model) InferTheta(cliques [][]int32, iters int, seed uint64) []float64 {
	return m.InferThetaScratch(cliques, iters, seed, nil)
}

// InferThetaScratch is InferTheta drawing its working memory from s
// (allocated internally when nil). The returned mixture is always a
// fresh slice — the only allocation when a scratch is supplied — so
// callers may retain it while recycling s. A scratch must not be used
// concurrently; pool it (see topmine.Inferencer) or keep one per
// goroutine.
func (m *Model) InferThetaScratch(cliques [][]int32, iters int, seed uint64, s *InferScratch) []float64 {
	if iters <= 0 {
		iters = 50
	}
	if s == nil {
		s = &InferScratch{}
	}
	s.rng.Seed(seed)
	rng := &s.rng
	ndk := grow(s.ndk, m.K)
	z := grow(s.z, len(cliques))
	var nd int32
	for g, clique := range cliques {
		k := int32(rng.Intn(m.K))
		z[g] = k
		ndk[k] += int32(len(clique))
		nd += int32(len(clique))
	}
	weights := grow(s.weights, m.K)
	acc := grow(s.acc, m.K)
	s.ndk, s.z, s.weights, s.acc = ndk, z, weights, acc
	samples := 0
	total := 2 * iters
	for it := 0; it < total; it++ {
		for g, clique := range cliques {
			old := z[g]
			ndk[old] -= int32(len(clique))
			for k := 0; k < m.K; k++ {
				p := 1.0
				ak := m.Alpha[k] + float64(ndk[k])
				denom := m.BetaSum + float64(m.Nk[k])
				for j, word := range clique {
					fj := float64(j)
					p *= (ak + fj) * (m.Beta + float64(m.nwkRow(word)[k])) / (denom + fj)
				}
				weights[k] = p
			}
			k := int32(rng.Categorical(weights))
			z[g] = k
			ndk[k] += int32(len(clique))
		}
		if it >= iters {
			denom := float64(nd) + m.AlphaSum
			for k := 0; k < m.K; k++ {
				acc[k] += (float64(ndk[k]) + m.Alpha[k]) / denom
			}
			samples++
		}
	}
	out := make([]float64, m.K)
	if samples == 0 {
		denom := float64(nd) + m.AlphaSum
		for k := 0; k < m.K; k++ {
			out[k] = (float64(ndk[k]) + m.Alpha[k]) / denom
		}
		return out
	}
	for k := range acc {
		out[k] = acc[k] / float64(samples)
	}
	return out
}

// BestTopic returns the argmax of a topic mixture.
func BestTopic(theta []float64) int {
	best, bestV := 0, -1.0
	for k, v := range theta {
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}
