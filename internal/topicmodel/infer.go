package topicmodel

import "topmine/internal/xrand"

// InferTheta folds an unseen document into a trained model: the
// model's topic-word counts stay fixed while the new document's clique
// assignments are Gibbs-sampled for iters sweeps (plus an equal burn-
// in), and the returned vector is the posterior-mean topic mixture
// averaged over the sampling half. The model is not modified, so
// concurrent inference on different documents is safe as long as the
// model itself is not training.
//
// Burn-in contract: one call runs exactly 2×iters full Gibbs sweeps —
// iters discarded as burn-in, then iters contributing samples. Anyone
// budgeting CPU per call (e.g. a serving layer capping request work)
// must count 2×iters sweeps, not iters.
func (m *Model) InferTheta(cliques [][]int32, iters int, seed uint64) []float64 {
	if iters <= 0 {
		iters = 50
	}
	rng := xrand.New(seed)
	ndk := make([]int32, m.K)
	z := make([]int32, len(cliques))
	var nd int32
	for g, clique := range cliques {
		k := int32(rng.Intn(m.K))
		z[g] = k
		ndk[k] += int32(len(clique))
		nd += int32(len(clique))
	}
	weights := make([]float64, m.K)
	acc := make([]float64, m.K)
	samples := 0
	total := 2 * iters
	for it := 0; it < total; it++ {
		for g, clique := range cliques {
			old := z[g]
			ndk[old] -= int32(len(clique))
			for k := 0; k < m.K; k++ {
				p := 1.0
				ak := m.Alpha[k] + float64(ndk[k])
				denom := m.BetaSum + float64(m.Nk[k])
				for j, word := range clique {
					fj := float64(j)
					p *= (ak + fj) * (m.Beta + float64(m.Nwk[word][k])) / (denom + fj)
				}
				weights[k] = p
			}
			k := int32(rng.Categorical(weights))
			z[g] = k
			ndk[k] += int32(len(clique))
		}
		if it >= iters {
			denom := float64(nd) + m.AlphaSum
			for k := 0; k < m.K; k++ {
				acc[k] += (float64(ndk[k]) + m.Alpha[k]) / denom
			}
			samples++
		}
	}
	if samples == 0 {
		denom := float64(nd) + m.AlphaSum
		for k := 0; k < m.K; k++ {
			acc[k] = (float64(ndk[k]) + m.Alpha[k]) / denom
		}
		return acc
	}
	for k := range acc {
		acc[k] /= float64(samples)
	}
	return acc
}

// BestTopic returns the argmax of a topic mixture.
func BestTopic(theta []float64) int {
	best, bestV := 0, -1.0
	for k, v := range theta {
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}
