package topicmodel

import (
	"bytes"
	"testing"
)

// grownDocs builds new-topic documents over ids [10, 10+extraV) plus
// some overlap with the original 10-word vocabulary.
func grownDocs(n, tokens, extraV int) []Doc {
	var docs []Doc
	for d := 0; d < n; d++ {
		doc := Doc{ID: 1000 + d}
		for i := 0; i < tokens; i++ {
			var w int32
			if i%3 == 0 {
				w = int32((i + d) % 10) // overlap with the base vocabulary
			} else {
				w = int32(10 + (i+d)%extraV)
			}
			doc.Cliques = append(doc.Cliques, []int32{w})
		}
		docs = append(docs, doc)
	}
	return docs
}

func TestExtendInvariants(t *testing.T) {
	m := Train(twoTopicDocs(5, 15), 10, Options{K: 3, Iterations: 10, Seed: 5})
	oldD, oldTok := len(m.Docs), m.TotalTokens()
	newDocs := grownDocs(4, 12, 6)
	if err := m.Extend(newDocs, 16, 99); err != nil {
		t.Fatal(err)
	}
	if m.V != 16 || m.BetaSum != m.Beta*16 {
		t.Fatalf("V = %d, BetaSum = %g after Extend", m.V, m.BetaSum)
	}
	if len(m.Docs) != oldD+4 {
		t.Fatalf("len(Docs) = %d, want %d", len(m.Docs), oldD+4)
	}
	if m.TotalTokens() != oldTok+4*12 {
		t.Fatalf("TotalTokens = %d, want %d", m.TotalTokens(), oldTok+4*12)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Training continues over the grown set with both samplers.
	for i := 0; i < 5; i++ {
		m.Sweep()
	}
	m.SweepDense()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendDeterministic(t *testing.T) {
	build := func() *Model {
		m := Train(twoTopicDocs(5, 15), 10, Options{K: 3, Iterations: 10, Seed: 5})
		if err := m.Extend(grownDocs(4, 12, 6), 16, 42); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			m.Sweep()
		}
		return m
	}
	a, b := build(), build()
	for d := range a.Z {
		for g := range a.Z[d] {
			if a.Z[d][g] != b.Z[d][g] {
				t.Fatalf("assignments diverge at doc %d clique %d", d, g)
			}
		}
	}
}

func TestExtendAfterLoad(t *testing.T) {
	// Extend must work on a freshly decoded model (arenas unarmed).
	m := Train(twoTopicDocs(4, 10), 10, Options{K: 2, Iterations: 5, Seed: 3})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Extend(grownDocs(2, 8, 4), 14, 7); err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	loaded.Sweep()
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendSameVocab(t *testing.T) {
	// Growing only the document set (no new words) must work too.
	m := Train(twoTopicDocs(3, 10), 10, Options{K: 2, Iterations: 5, Seed: 1})
	if err := m.Extend(twoTopicDocs(2, 10), 10, 8); err != nil {
		t.Fatal(err)
	}
	if m.V != 10 {
		t.Fatalf("V = %d, want 10", m.V)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendRejects(t *testing.T) {
	m := Train(twoTopicDocs(3, 10), 10, Options{K: 2, Iterations: 2, Seed: 1})
	if err := m.Extend(nil, 9, 0); err == nil {
		t.Fatal("shrinking vocabulary should fail")
	}
	bad := []Doc{{ID: 1, Cliques: [][]int32{{12}}}}
	if err := m.Extend(bad, 12, 0); err == nil {
		t.Fatal("out-of-range word id should fail")
	}
	// A failed Extend leaves the model usable.
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
