package topicmodel

import (
	"bytes"
	"math"
	"testing"

	"topmine/internal/corpus"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/synth"
)

// twoTopicDocs builds pure-topic unigram documents over a 10-word
// vocabulary: ids 0-4 belong to topic A docs, 5-9 to topic B docs.
func twoTopicDocs(docsPerTopic, tokensPerDoc int) []Doc {
	var docs []Doc
	id := 0
	for t := 0; t < 2; t++ {
		for d := 0; d < docsPerTopic; d++ {
			doc := Doc{ID: id}
			for i := 0; i < tokensPerDoc; i++ {
				w := int32(t*5 + (i+d)%5)
				doc.Cliques = append(doc.Cliques, []int32{w})
			}
			docs = append(docs, doc)
			id++
		}
	}
	return docs
}

func TestNewModelInvariants(t *testing.T) {
	docs := twoTopicDocs(10, 20)
	m := NewModel(docs, 10, Options{K: 2, Iterations: 1, Seed: 1})
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.TotalTokens() != 2*10*20 {
		t.Fatalf("TotalTokens = %d", m.TotalTokens())
	}
}

func TestSweepPreservesInvariants(t *testing.T) {
	docs := twoTopicDocs(5, 15)
	m := NewModel(docs, 10, Options{K: 3, Iterations: 1, Seed: 7})
	for i := 0; i < 10; i++ {
		m.Sweep()
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainDeterministic(t *testing.T) {
	docs := twoTopicDocs(5, 10)
	opt := Options{K: 2, Iterations: 20, Seed: 11}
	a := Train(docs, 10, opt)
	b := Train(twoTopicDocs(5, 10), 10, opt)
	for d := range a.Z {
		for g := range a.Z[d] {
			if a.Z[d][g] != b.Z[d][g] {
				t.Fatalf("assignments diverge at doc %d clique %d", d, g)
			}
		}
	}
}

func TestLDARecoversPlantedTopics(t *testing.T) {
	docs := twoTopicDocs(30, 30)
	m := Train(docs, 10, Options{K: 2, Iterations: 100, Seed: 3})
	// Words 0-4 should mostly occupy one topic and 5-9 the other.
	topicOf := func(w int32) int {
		if m.Nwk[w][0] >= m.Nwk[w][1] {
			return 0
		}
		return 1
	}
	a := topicOf(0)
	for w := int32(1); w < 5; w++ {
		if topicOf(w) != a {
			t.Fatalf("topic-A words split: word %d", w)
		}
	}
	for w := int32(5); w < 10; w++ {
		if topicOf(w) == a {
			t.Fatalf("topic-B word %d landed in topic A", w)
		}
	}
}

func TestPhraseCliquesShareTopicCounts(t *testing.T) {
	// One doc with one 3-word clique: all three words' counts must sit
	// in the clique's single topic.
	docs := []Doc{{ID: 0, Cliques: [][]int32{{0, 1, 2}}}}
	m := NewModel(docs, 3, Options{K: 4, Iterations: 1, Seed: 5})
	m.Sweep()
	k := m.Z[0][0]
	for w := int32(0); w < 3; w++ {
		if m.Nwk[w][k] != 1 {
			t.Fatalf("word %d not counted in clique topic %d", w, k)
		}
		for kk := 0; kk < 4; kk++ {
			if int32(kk) != k && m.Nwk[w][kk] != 0 {
				t.Fatalf("word %d leaked into topic %d", w, kk)
			}
		}
	}
	if m.Ndk[0][k] != 3 || m.Nk[k] != 3 {
		t.Fatal("clique token mass mis-counted")
	}
}

func TestThetaPhiNormalised(t *testing.T) {
	docs := twoTopicDocs(4, 12)
	m := Train(docs, 10, Options{K: 3, Iterations: 10, Seed: 9})
	theta := m.Theta(0, nil)
	var sum float64
	for _, v := range theta {
		if v <= 0 {
			t.Fatalf("theta component %v not positive", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %v", sum)
	}
	phi := m.Phi(0, nil)
	sum = 0
	for _, v := range phi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("phi sums to %v", sum)
	}
	if got := m.PhiAt(0, 3); math.Abs(got-phi[3]) > 1e-12 {
		t.Fatalf("PhiAt = %v, Phi row = %v", got, phi[3])
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{K: 5}
	o.fill()
	if o.Alpha != 10 { // 50/5
		t.Fatalf("default alpha = %v, want 10", o.Alpha)
	}
	if o.Beta != 0.01 || o.Iterations != 1000 || o.HyperEvery != 25 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestOptionsPanicsWithoutK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for K=0")
		}
	}()
	Train(nil, 10, Options{})
}

func TestDigammaKnownValues(t *testing.T) {
	const gamma = 0.5772156649015329
	cases := map[float64]float64{
		1.0: -gamma,
		0.5: -gamma - 2*math.Ln2,
		2.0: 1 - gamma,
		10:  2.251752589066721, // psi(10)
	}
	for x, want := range cases {
		if got := Digamma(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("Digamma(%v) = %v, want %v", x, got, want)
		}
	}
	if !math.IsNaN(Digamma(0)) || !math.IsNaN(Digamma(-1)) {
		t.Error("Digamma of non-positive input should be NaN")
	}
}

func TestDigammaRecurrenceProperty(t *testing.T) {
	// psi(x+1) = psi(x) + 1/x
	for _, x := range []float64{0.1, 0.7, 1.3, 4.9, 25} {
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Errorf("recurrence broken at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestOptimizeAlphaStaysPositiveAndAdapts(t *testing.T) {
	docs := twoTopicDocs(20, 25)
	m := Train(docs, 10, Options{K: 2, Iterations: 30, Seed: 13})
	before := append([]float64(nil), m.Alpha...)
	m.OptimizeAlpha(10)
	changed := false
	sum := 0.0
	for k, a := range m.Alpha {
		if a <= 0 {
			t.Fatalf("alpha[%d] = %v not positive", k, a)
		}
		if math.Abs(a-before[k]) > 1e-9 {
			changed = true
		}
		sum += a
	}
	if !changed {
		t.Fatal("alpha did not adapt")
	}
	if math.Abs(sum-m.AlphaSum) > 1e-9 {
		t.Fatal("AlphaSum out of sync")
	}
}

func TestOptimizeBetaStaysPositive(t *testing.T) {
	docs := twoTopicDocs(20, 25)
	m := Train(docs, 10, Options{K: 2, Iterations: 30, Seed: 13})
	m.OptimizeBeta(10)
	if m.Beta <= 0 {
		t.Fatalf("beta = %v", m.Beta)
	}
	if math.Abs(m.BetaSum-m.Beta*float64(m.V)) > 1e-9 {
		t.Fatal("BetaSum out of sync")
	}
}

func TestPerplexityFiniteAndImproves(t *testing.T) {
	docs := twoTopicDocs(30, 30)
	test := make([][]int32, len(docs))
	for d := range docs {
		// Withhold two synthetic tokens matching the doc's topic.
		base := int32(0)
		if d >= 30 {
			base = 5
		}
		test[d] = []int32{base, base + 1}
	}
	m0 := NewModel(twoTopicDocs(30, 30), 10, Options{K: 2, Iterations: 1, Seed: 17})
	p0 := Perplexity(m0, test)
	m := Train(docs, 10, Options{K: 2, Iterations: 80, Seed: 17})
	p1 := Perplexity(m, test)
	if math.IsNaN(p0) || math.IsNaN(p1) || p1 <= 0 {
		t.Fatalf("perplexities not finite: %v, %v", p0, p1)
	}
	if p1 >= p0 {
		t.Fatalf("training did not reduce held-out perplexity: %v -> %v", p0, p1)
	}
}

func TestPerplexityAlignmentPanic(t *testing.T) {
	docs := twoTopicDocs(2, 5)
	m := NewModel(docs, 10, Options{K: 2, Iterations: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on misaligned test set")
		}
	}()
	Perplexity(m, make([][]int32, 1))
}

func TestTrainPerplexityFinite(t *testing.T) {
	docs := twoTopicDocs(5, 10)
	m := Train(docs, 10, Options{K: 2, Iterations: 10, Seed: 19})
	p := TrainPerplexity(m)
	if math.IsNaN(p) || p <= 1 {
		t.Fatalf("train perplexity = %v", p)
	}
}

func TestOnIterationCallback(t *testing.T) {
	docs := twoTopicDocs(2, 5)
	var iters []int
	Train(docs, 10, Options{K: 2, Iterations: 5, Seed: 1,
		OnIteration: func(it int, m *Model) { iters = append(iters, it) }})
	if len(iters) != 5 || iters[0] != 1 || iters[4] != 5 {
		t.Fatalf("callback iterations = %v", iters)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	docs := twoTopicDocs(3, 8)
	m := Train(docs, 10, Options{K: 2, Iterations: 10, Seed: 23})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf, 99)
	if err != nil {
		t.Fatal(err)
	}
	if m2.K != m.K || m2.V != m.V || m2.Beta != m.Beta {
		t.Fatal("scalar fields lost")
	}
	for d := range m.Z {
		for g := range m.Z[d] {
			if m.Z[d][g] != m2.Z[d][g] {
				t.Fatal("assignments lost")
			}
		}
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatalf("loaded model inconsistent: %v", err)
	}
	// Loaded model must be trainable.
	m2.Sweep()
	if err := m2.CheckInvariants(); err != nil {
		t.Fatalf("post-load sweep broke invariants: %v", err)
	}
}

func TestDocsFromSegmentationAlignment(t *testing.T) {
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: 60, Seed: 4}, corpus.DefaultBuildOptions())
	mined := phrasemine.Mine(c, phrasemine.Options{MinSupport: 4, MaxLen: 6})
	segs := segment.NewSegmenter(mined, segment.Options{Alpha: 4, MaxPhraseLen: 6, Workers: 1}).SegmentCorpus(c)
	docs := DocsFromSegmentation(c, segs)
	if len(docs) != c.NumDocs() {
		t.Fatalf("doc count: %d vs %d", len(docs), c.NumDocs())
	}
	for i := range docs {
		if docs[i].NumTokens() != c.Docs[i].Len() {
			t.Fatalf("doc %d token count mismatch: %d vs %d",
				i, docs[i].NumTokens(), c.Docs[i].Len())
		}
		if len(docs[i].Cliques) != segs[i].NumPhrases() {
			t.Fatalf("doc %d clique count mismatch", i)
		}
	}
}

func TestDocsUnigramSingletons(t *testing.T) {
	c := corpus.FromStrings([]string{"alpha beta gamma, delta"}, corpus.DefaultBuildOptions())
	docs := DocsUnigram(c)
	if len(docs) != 1 {
		t.Fatal("doc count")
	}
	if len(docs[0].Cliques) != 4 {
		t.Fatalf("clique count = %d, want 4", len(docs[0].Cliques))
	}
	for _, cl := range docs[0].Cliques {
		if len(cl) != 1 {
			t.Fatalf("non-singleton clique in unigram mode: %v", cl)
		}
	}
}
