package topicmodel

import (
	"testing"
)

// mixedCliqueDocs builds a corpus with multi-word cliques and varied
// document lengths — both sampler paths (unigram and phrase) and
// uneven shard boundaries get exercised.
func mixedCliqueDocs(n int) []Doc {
	docs := make([]Doc, n)
	for d := 0; d < n; d++ {
		doc := Doc{ID: d, Cliques: [][]int32{
			{int32(d % 4), int32((d + 1) % 4)},
			{int32(d % 7)},
			{4, 5, 6},
		}}
		for j := 0; j < d%5; j++ {
			doc.Cliques = append(doc.Cliques, [][]int32{{int32((d + j) % 9)}}...)
		}
		docs[d] = doc
	}
	return docs
}

// distSimulate reproduces the distributed training loop in-package —
// shard models, wire-codec round trips at every barrier, value
// rebroadcast, hyper-barrier Ndk uploads, final state install — so the
// byte-identity contract is pinned without sockets. internal/dtrain
// re-tests it across real connections and processes.
func distSimulate(t *testing.T, docs []Doc, v int, opt Options, workers int) *Model {
	t.Helper()
	opt = opt.Filled()
	cm := NewModel(docs, v, opt)
	ranges := ShardRanges(docs, workers)

	shards := make([]*Model, workers)
	for wi, r := range ranges {
		lo, hi := r[0], r[1]
		sdocs := make([]Doc, hi-lo)
		copy(sdocs, docs[lo:hi])
		z := make([][]int32, hi-lo)
		for i := range z {
			z[i] = append([]int32(nil), cm.Z[lo+i]...)
		}
		nwk := make([]int32, v*opt.K)
		for w := 0; w < v; w++ {
			copy(nwk[w*opt.K:(w+1)*opt.K], cm.Nwk[w])
		}
		nk := append([]int64(nil), cm.Nk...)
		alpha := append([]float64(nil), cm.Alpha...)
		sm, err := NewShardModel(sdocs, v, opt.K, alpha, cm.AlphaSum, cm.Beta, z, nwk, nk)
		if err != nil {
			t.Fatalf("shard %d: %v", wi, err)
		}
		shards[wi] = sm
	}

	for it := 1; it <= opt.Iterations; it++ {
		base := cm.NextSweepBase()
		hyper := opt.OptimizeHyper && it > opt.BurnIn && it%opt.HyperEvery == 0
		deltas := make([]*CountRows, workers)
		for wi, sm := range shards {
			if err := sm.SetPriors(cm.Alpha, cm.AlphaSum, cm.Beta, cm.BetaSum); err != nil {
				t.Fatal(err)
			}
			d := sm.ShardSweep(wi, base)
			wire := d.AppendTo(nil)
			dec, n, err := DecodeCountRows(wire, v, opt.K)
			if err != nil || n != len(wire) {
				t.Fatalf("delta codec round trip: n=%d len=%d err=%v", n, len(wire), err)
			}
			deltas[wi] = dec
			sm.ResetShardDelta()
		}
		combined, err := cm.FoldShardDeltas(deltas)
		if err != nil {
			t.Fatal(err)
		}
		if hyper {
			for wi, sm := range shards {
				lo := ranges[wi][0]
				for i := range sm.Ndk {
					copy(cm.Ndk[lo+i], sm.Ndk[i])
				}
			}
		}
		wire := combined.AppendTo(nil)
		dec, _, err := DecodeCountRows(wire, v, opt.K)
		if err != nil {
			t.Fatalf("globals codec: %v", err)
		}
		for _, sm := range shards {
			if err := sm.SetGlobalRows(dec); err != nil {
				t.Fatal(err)
			}
		}
		if hyper {
			cm.OptimizeAlpha(5)
			cm.OptimizeBeta(5)
		}
	}

	for wi, sm := range shards {
		if err := cm.InstallShardState(ranges[wi][0], sm.Z); err != nil {
			t.Fatalf("install shard %d: %v", wi, err)
		}
	}
	return cm
}

func assertModelsIdentical(t *testing.T, want, got *Model) {
	t.Helper()
	for d := range want.Z {
		if !int32SlicesEq(want.Z[d], got.Z[d]) {
			t.Fatalf("Z[%d] differs: %v vs %v", d, want.Z[d], got.Z[d])
		}
		if !int32SlicesEq(want.Ndk[d], got.Ndk[d]) {
			t.Fatalf("Ndk[%d] differs", d)
		}
	}
	for w := range want.Nwk {
		if !int32SlicesEq(want.Nwk[w], got.Nwk[w]) {
			t.Fatalf("Nwk[%d] differs: %v vs %v", w, want.Nwk[w], got.Nwk[w])
		}
	}
	for k := range want.Nk {
		if want.Nk[k] != got.Nk[k] {
			t.Fatalf("Nk[%d]: %d vs %d", k, want.Nk[k], got.Nk[k])
		}
	}
	for k := range want.Alpha {
		if want.Alpha[k] != got.Alpha[k] {
			t.Fatalf("Alpha[%d]: %v vs %v", k, want.Alpha[k], got.Alpha[k])
		}
	}
	if want.AlphaSum != got.AlphaSum || want.Beta != got.Beta || want.BetaSum != got.BetaSum {
		t.Fatalf("priors differ: %v/%v/%v vs %v/%v/%v",
			want.AlphaSum, want.Beta, want.BetaSum, got.AlphaSum, got.Beta, got.BetaSum)
	}
}

func int32SlicesEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDistBarrierMatchesSweepParallel is the core byte-identity pin:
// the distributed barrier protocol (shard models + wire codec + value
// rebroadcast), driven with the same topology, reproduces
// TrainParallel's final state exactly — including across hyperparameter
// optimisation barriers.
func TestDistBarrierMatchesSweepParallel(t *testing.T) {
	// workers >= 2: SweepParallel(1) falls back to the serial sampler,
	// which the distributed protocol deliberately does not mimic.
	docs := mixedCliqueDocs(60)
	for _, workers := range []int{2, 3} {
		opt := Options{K: 3, Iterations: 40, OptimizeHyper: true, HyperEvery: 10, BurnIn: 5, Seed: 77}
		want := TrainParallel(docs, 10, opt, workers)
		got := distSimulate(t, docs, 10, opt, workers)
		assertModelsIdentical(t, want, got)
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("%d workers: coordinator invariants: %v", workers, err)
		}
	}
}

// TestDistBarrierSkewedCorpus runs the same pin over a skewed corpus,
// where one shard is a single giant document.
func TestDistBarrierSkewedCorpus(t *testing.T) {
	docs := skewedDocs(40, 100)
	opt := Options{K: 3, Iterations: 15, Seed: 19}
	want := TrainParallel(docs, 10, opt, 2)
	got := distSimulate(t, docs, 10, opt, 2)
	assertModelsIdentical(t, want, got)
}

func TestCountRowsCodecErrors(t *testing.T) {
	cr := &CountRows{K: 2, Words: []int32{3}, Rows: [][]int32{{1, -2}}, Nk: []int64{5, -5}}
	wire := cr.AppendTo(nil)
	if _, _, err := DecodeCountRows(wire, 4, 2); err != nil {
		t.Fatalf("valid decode failed: %v", err)
	}
	if dec, _, _ := DecodeCountRows(wire, 4, 2); dec.Rows[0][1] != -2 || dec.Nk[1] != -5 {
		t.Fatal("negative deltas mangled in transit")
	}
	if _, _, err := DecodeCountRows(wire[:len(wire)-1], 4, 2); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, _, err := DecodeCountRows(wire, 4, 3); err == nil {
		t.Fatal("K mismatch accepted")
	}
	if _, _, err := DecodeCountRows(wire, 3, 2); err == nil {
		t.Fatal("word id beyond vocab accepted")
	}
	if _, _, err := DecodeCountRows(nil, 4, 2); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestFoldShardDeltasRejectsBadDeltas(t *testing.T) {
	docs := mixedCliqueDocs(10)
	m := NewModel(docs, 10, Options{K: 2, Iterations: 1, Seed: 3})
	if _, err := m.FoldShardDeltas([]*CountRows{{K: 3, Nk: []int64{0, 0, 0}}}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	bad := &CountRows{K: 2, Words: []int32{99}, Rows: [][]int32{{1, 0}}, Nk: []int64{1, 0}}
	if _, err := m.FoldShardDeltas([]*CountRows{bad}); err == nil {
		t.Fatal("out-of-vocab word accepted")
	}
	// A delta that drives a count negative must be rejected loudly.
	neg := &CountRows{K: 2, Words: []int32{0}, Rows: [][]int32{{-1000, 0}}, Nk: []int64{-1000, 0}}
	if _, err := m.FoldShardDeltas([]*CountRows{neg}); err == nil {
		t.Fatal("negative fold accepted")
	}
}

func TestNewShardModelValidation(t *testing.T) {
	docs := mixedCliqueDocs(4)
	alpha := []float64{1, 1}
	goodZ := make([][]int32, len(docs))
	for i := range goodZ {
		goodZ[i] = make([]int32, len(docs[i].Cliques))
	}
	nwk := make([]int32, 10*2)
	nk := make([]int64, 2)
	if _, err := NewShardModel(docs, 10, 2, alpha, 2, 0.01, goodZ, nwk, nk); err != nil {
		t.Fatalf("valid shard rejected: %v", err)
	}
	if _, err := NewShardModel(docs, 10, 2, alpha[:1], 2, 0.01, goodZ, nwk, nk); err == nil {
		t.Fatal("short alpha accepted")
	}
	if _, err := NewShardModel(docs, 10, 2, alpha, 2, 0.01, goodZ[:2], nwk, nk); err == nil {
		t.Fatal("z/doc count mismatch accepted")
	}
	if _, err := NewShardModel(docs, 10, 2, alpha, 2, 0.01, goodZ, nwk[:5], nk); err == nil {
		t.Fatal("short nwk arena accepted")
	}
	badZ := make([][]int32, len(docs))
	for i := range badZ {
		badZ[i] = make([]int32, len(docs[i].Cliques))
	}
	badZ[0][0] = 7
	if _, err := NewShardModel(docs, 10, 2, alpha, 2, 0.01, badZ, nwk, nk); err == nil {
		t.Fatal("out-of-range topic accepted")
	}
}

func TestDocsChecksum(t *testing.T) {
	a := mixedCliqueDocs(8)
	b := mixedCliqueDocs(8)
	if DocsChecksum(a) != DocsChecksum(b) {
		t.Fatal("identical docs, different checksums")
	}
	// IDs are excluded: a rebased shard must checksum the same.
	for i := range b {
		b[i].ID = i + 100
	}
	if DocsChecksum(a) != DocsChecksum(b) {
		t.Fatal("doc IDs leaked into the checksum")
	}
	b[3].Cliques[0][0]++
	if DocsChecksum(a) == DocsChecksum(b) {
		t.Fatal("word change not detected")
	}
	if DocsChecksum(a[:4]) == DocsChecksum(a) {
		t.Fatal("range change not detected")
	}
}
