package topicmodel

import "math"

// Digamma computes ψ(x) = d/dx ln Γ(x) for x > 0 using the standard
// recurrence-plus-asymptotic-series method (relative error below 1e-12
// for the count-offset arguments the optimiser feeds it).
func Digamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion: ψ(x) ≈ ln x − 1/(2x) − Σ B_2n / (2n x^2n).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*1.0/132))))
	return result
}

// OptimizeAlpha runs iters rounds of Minka's fixed-point update for
// the asymmetric document-topic prior (Minka 2000, Eq. 55; the method
// §5.3 of the paper adopts):
//
//	α_k ← α_k · (Σ_d ψ(N_dk+α_k) − D·ψ(α_k)) / (Σ_d ψ(N_d+Σα) − D·ψ(Σα))
func (m *Model) OptimizeAlpha(iters int) {
	d := float64(len(m.Docs))
	if d == 0 {
		return
	}
	for it := 0; it < iters; it++ {
		denom := 0.0
		psiSum := Digamma(m.AlphaSum)
		for di := range m.Docs {
			denom += Digamma(float64(m.Nd[di])+m.AlphaSum) - psiSum
		}
		if denom <= 0 {
			return
		}
		newSum := 0.0
		for k := 0; k < m.K; k++ {
			num := 0.0
			psiAk := Digamma(m.Alpha[k])
			for di := range m.Docs {
				if n := m.ndkRow(di)[k]; n > 0 {
					num += Digamma(float64(n)+m.Alpha[k]) - psiAk
				}
			}
			ak := m.Alpha[k] * num / denom
			if ak < 1e-8 {
				ak = 1e-8 // keep the prior proper
			}
			m.Alpha[k] = ak
			newSum += ak
		}
		m.AlphaSum = newSum
	}
}

// OptimizeBeta runs iters rounds of the symmetric fixed-point update
// for the topic-word prior:
//
//	β ← β · (Σ_k Σ_w ψ(N_wk+β) − K·V·ψ(β)) / (V·(Σ_k ψ(N_k+Vβ) − K·ψ(Vβ)))
func (m *Model) OptimizeBeta(iters int) {
	if m.V == 0 || m.K == 0 {
		return
	}
	kf, vf := float64(m.K), float64(m.V)
	for it := 0; it < iters; it++ {
		psiB := Digamma(m.Beta)
		num := 0.0
		for w := 0; w < m.V; w++ {
			row := m.nwkRow(int32(w))
			for k := 0; k < m.K; k++ {
				if row[k] > 0 {
					num += Digamma(float64(row[k])+m.Beta) - psiB
				}
			}
		}
		psiVB := Digamma(m.BetaSum)
		denom := 0.0
		for k := 0; k < m.K; k++ {
			denom += Digamma(float64(m.Nk[k])+m.BetaSum) - psiVB
		}
		denom *= vf
		if denom <= 0 || num <= 0 {
			return
		}
		beta := m.Beta * num / denom
		if beta < 1e-8 {
			beta = 1e-8
		}
		m.Beta = beta
		m.BetaSum = beta * vf
		_ = kf
	}
}
