package topicmodel

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"topmine/internal/xrand"
)

// Save serialises the model (counts, assignments, priors, documents)
// with encoding/gob. The sampler's RNG position is not saved; a loaded
// model resumes from a fresh seed.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("topicmodel: encoding model: %w", err)
	}
	return nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("topicmodel: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Frozen returns a serving-only view of the model: the priors and
// topic-word counts that InferTheta and Perplexity read, without the
// per-document training state (Docs, Z, Ndk, Nd). The count slices are
// shared with the receiver, not copied, so the view stays read-only by
// contract. Frozen models cannot Sweep, Theta, or Visualize — they
// exist to make persisted serving artifacts independent of corpus
// size.
func (m *Model) Frozen() *Model {
	f := &Model{
		K: m.K, V: m.V,
		Alpha: m.Alpha, AlphaSum: m.AlphaSum,
		Beta: m.Beta, BetaSum: m.BetaSum,
		Nwk: m.Nwk, Nk: m.Nk,
	}
	f.ResetSampler(0)
	return f
}

// ResetSampler re-arms the unexported sampler state (RNG, scratch
// buffers) that gob does not transmit. It must be called on any model
// materialised by decoding — Load does so automatically; callers that
// embed a Model in their own serialised structures (e.g. pipeline
// snapshots) call it after decode. Inference (InferTheta) and
// visualisation do not touch this state, but Sweep/Train do.
func (m *Model) ResetSampler(seed uint64) {
	m.rng = xrand.New(seed)
	m.weights = make([]float64, m.K)
}

// Load reads a model serialised by Save and re-arms its sampler with
// the given seed so training can continue deterministically.
func Load(r io.Reader, seed uint64) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("topicmodel: decoding model: %w", err)
	}
	m.ResetSampler(seed)
	return &m, nil
}

// LoadFile reads a model from path.
func LoadFile(path string, seed uint64) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topicmodel: %w", err)
	}
	defer f.Close()
	return Load(f, seed)
}
