package topicmodel

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"topmine/internal/xrand"
)

// Save serialises the model (counts, assignments, priors, documents)
// with encoding/gob. The sampler's RNG position is not saved; a loaded
// model resumes from a fresh seed.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("topicmodel: encoding model: %w", err)
	}
	return nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("topicmodel: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a model serialised by Save and re-arms its sampler with
// the given seed so training can continue deterministically.
func Load(r io.Reader, seed uint64) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("topicmodel: decoding model: %w", err)
	}
	m.rng = xrand.New(seed)
	m.weights = make([]float64, m.K)
	return &m, nil
}

// LoadFile reads a model from path.
func LoadFile(path string, seed uint64) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topicmodel: %w", err)
	}
	defer f.Close()
	return Load(f, seed)
}
