package topicmodel

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"topmine/internal/xrand"
)

// Save serialises the model (counts, assignments, priors, documents)
// with encoding/gob. The sampler's RNG position is not saved; a loaded
// model resumes from a fresh seed.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("topicmodel: encoding model: %w", err)
	}
	return nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("topicmodel: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Frozen returns a serving-only view of the model: the priors and
// topic-word counts that InferTheta and Perplexity read, without the
// per-document training state (Docs, Z, Ndk, Nd). The count slices
// (and their flat arena) are shared with the receiver, not copied, so
// the view stays read-only by contract. Frozen models cannot Sweep,
// Theta, or Visualize — they exist to make persisted serving
// artifacts independent of corpus size.
func (m *Model) Frozen() *Model {
	f := &Model{
		K: m.K, V: m.V,
		Alpha: m.Alpha, AlphaSum: m.AlphaSum,
		Beta: m.Beta, BetaSum: m.BetaSum,
		Nwk: m.Nwk, Nk: m.Nk,
		DenseSampler: m.DenseSampler,
	}
	f.nwk = m.nwk
	f.ResetSampler(0)
	return f
}

// ResetSampler re-arms the unexported sampler state (RNG, scratch
// buffers, flat count arenas) that gob does not transmit. It must be
// called on any model materialised by decoding — Load does so
// automatically; callers that embed a Model in their own serialised
// structures (e.g. pipeline snapshots) call it after decode. The gob
// wire format carries the counts as the row-per-word/doc [][]int32 of
// the exported fields — unchanged since the first release — and this
// hook migrates the decoded rows into the K-stride arenas the
// samplers index. Any incremental sampler state (the sparse word-
// topic index, parallel worker deltas) is dropped and will be rebuilt
// lazily. Inference (InferTheta) and visualisation work without this
// state, but Sweep/Train need it.
func (m *Model) ResetSampler(seed uint64) {
	m.rng = xrand.New(seed)
	m.weights = make([]float64, m.K)
	m.sp = nil
	m.par = nil
	m.compactCounts()
}

// Load reads a model serialised by Save and re-arms its sampler with
// the given seed so training can continue deterministically. Decoded
// models are validated before the samplers arm — shapes, value
// ranges, and (for models carrying training state) a full recount of
// the matrices against the assignments — so a corrupt but gob-valid
// stream fails here with an error instead of panicking inside a
// later sweep. Loading is a cold path; the recount is O(corpus) like
// the decode itself.
func Load(r io.Reader, seed uint64) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("topicmodel: decoding model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m.ResetSampler(seed)
	return &m, nil
}

// Validate checks a decoded model before its samplers arm: shape
// consistency of every matrix against K/V/Docs, value ranges, and —
// for models carrying training state — a full recount of the count
// matrices against the assignments. Frozen (serving-only) models pass
// with their training-state fields empty. Callers that embed a Model
// in their own serialised structures (pipeline snapshots) run this
// after decode, before ResetSampler.
func (m *Model) Validate() error {
	if err := m.validateShapes(); err != nil {
		return err
	}
	if len(m.Docs) > 0 {
		if err := m.CheckInvariants(); err != nil {
			return fmt.Errorf("topicmodel: decoded model corrupt: %w", err)
		}
	}
	return nil
}

// validateShapes rejects count matrices inconsistent with K/V/Docs.
func (m *Model) validateShapes() error {
	if m.K <= 0 || m.V < 0 {
		return fmt.Errorf("topicmodel: decoded model has K=%d V=%d", m.K, m.V)
	}
	if len(m.Alpha) != m.K || len(m.Nk) != m.K || len(m.Nwk) != m.V {
		return fmt.Errorf("topicmodel: decoded model shapes inconsistent: K=%d V=%d but len(Alpha)=%d len(Nk)=%d len(Nwk)=%d",
			m.K, m.V, len(m.Alpha), len(m.Nk), len(m.Nwk))
	}
	for w := range m.Nwk {
		if len(m.Nwk[w]) != m.K {
			return fmt.Errorf("topicmodel: decoded model shapes inconsistent: Nwk[%d] has %d topics, want %d", w, len(m.Nwk[w]), m.K)
		}
		for k, c := range m.Nwk[w] {
			if c < 0 {
				return fmt.Errorf("topicmodel: decoded model corrupt: Nwk[%d][%d] = %d", w, k, c)
			}
		}
	}
	for k, c := range m.Nk {
		if c < 0 {
			return fmt.Errorf("topicmodel: decoded model corrupt: Nk[%d] = %d", k, c)
		}
	}
	if len(m.Ndk) != len(m.Docs) || len(m.Nd) != len(m.Docs) || len(m.Z) != len(m.Docs) {
		return fmt.Errorf("topicmodel: decoded model shapes inconsistent: %d docs but len(Ndk)=%d len(Nd)=%d len(Z)=%d",
			len(m.Docs), len(m.Ndk), len(m.Nd), len(m.Z))
	}
	for d := range m.Docs {
		if len(m.Ndk[d]) != m.K {
			return fmt.Errorf("topicmodel: decoded model shapes inconsistent: Ndk[%d] has %d topics, want %d", d, len(m.Ndk[d]), m.K)
		}
		if len(m.Z[d]) != len(m.Docs[d].Cliques) {
			return fmt.Errorf("topicmodel: decoded model shapes inconsistent: doc %d has %d cliques but %d assignments",
				d, len(m.Docs[d].Cliques), len(m.Z[d]))
		}
		for g, clique := range m.Docs[d].Cliques {
			if k := m.Z[d][g]; k < 0 || int(k) >= m.K {
				return fmt.Errorf("topicmodel: decoded model corrupt: Z[%d][%d] = %d, want [0,%d)", d, g, k, m.K)
			}
			for _, w := range clique {
				if w < 0 || int(w) >= m.V {
					return fmt.Errorf("topicmodel: decoded model corrupt: doc %d clique %d holds word %d, vocabulary is %d", d, g, w, m.V)
				}
			}
		}
	}
	return nil
}

// LoadFile reads a model from path.
func LoadFile(path string, seed uint64) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topicmodel: %w", err)
	}
	defer f.Close()
	return Load(f, seed)
}
