package topicmodel

import (
	"strings"
	"testing"

	"topmine/internal/corpus"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/synth"
)

// trainedOnSynth runs the full pipeline (mine -> segment -> PhraseLDA)
// on a small synthetic corpus.
func trainedOnSynth(t *testing.T, docs int, iters int) (*Model, *corpus.Corpus) {
	t.Helper()
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: docs, Seed: 31}, corpus.DefaultBuildOptions())
	mined := phrasemine.Mine(c, phrasemine.Options{MinSupport: 5, MaxLen: 6})
	segs := segment.NewSegmenter(mined, segment.Options{Alpha: 4, MaxPhraseLen: 6, Workers: 1}).SegmentCorpus(c)
	mdocs := DocsFromSegmentation(c, segs)
	m := Train(mdocs, c.Vocab.Size(), Options{K: 5, Iterations: iters, Seed: 37})
	return m, c
}

func TestVisualizeShapes(t *testing.T) {
	m, c := trainedOnSynth(t, 400, 60)
	sums := m.Visualize(c, VisualizeOptions{TopUnigrams: 8, TopPhrases: 6})
	if len(sums) != m.K {
		t.Fatalf("summaries = %d, want %d", len(sums), m.K)
	}
	for _, s := range sums {
		if len(s.Unigrams) == 0 {
			t.Fatalf("topic %d has no unigrams", s.Topic)
		}
		if len(s.Unigrams) > 8 || len(s.Phrases) > 6 {
			t.Fatalf("topic %d exceeds limits", s.Topic)
		}
		for _, p := range s.Phrases {
			if len(p.Words) < 2 {
				t.Fatalf("unigram leaked into phrase list: %+v", p)
			}
			if p.TF <= 0 || p.Display == "" {
				t.Fatalf("bad phrase info: %+v", p)
			}
		}
	}
}

func TestVisualizeFindsPlantedPhrases(t *testing.T) {
	m, c := trainedOnSynth(t, 800, 80)
	sums := m.Visualize(c, VisualizeOptions{TopPhrases: 10})
	var all []string
	for _, s := range sums {
		for _, p := range s.Phrases {
			all = append(all, p.Display)
		}
	}
	joined := strings.Join(all, "|")
	// At least some of the planted signature phrases should surface in
	// the top-10 lists.
	hits := 0
	for _, want := range []string{"data mining", "information retrieval",
		"machine learning", "support vector", "language model", "query processing"} {
		if strings.Contains(joined, want) {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("only %d planted phrases visible in topics; got %v", hits, all)
	}
}

func TestVisualizeTopicPhrasesShareTopic(t *testing.T) {
	// Phrases within one topic's list should co-occur with that topic's
	// unigrams more than with a random other topic's. Weak sanity: the
	// same display phrase should not dominate two different topics.
	m, c := trainedOnSynth(t, 400, 60)
	sums := m.Visualize(c, VisualizeOptions{TopPhrases: 5})
	seen := map[string]int{}
	for _, s := range sums {
		for i, p := range s.Phrases {
			if i == 0 {
				seen[p.Display]++
			}
		}
	}
	for d, n := range seen {
		if n > 1 {
			t.Fatalf("phrase %q is the #1 phrase of %d topics", d, n)
		}
	}
}

func TestTopUnigramsOrdering(t *testing.T) {
	docs := twoTopicDocs(10, 20)
	m := Train(docs, 10, Options{K: 2, Iterations: 30, Seed: 41})
	top := m.TopUnigrams(0, 5, nil)
	if len(top) == 0 {
		t.Fatal("no unigrams")
	}
	// Without a corpus the rendering is opaque ids.
	if !strings.HasPrefix(top[0], "w") {
		t.Fatalf("expected opaque id rendering, got %q", top[0])
	}
}

func TestBackgroundFilter(t *testing.T) {
	// Build docs where phrase {0,1} concentrates in one topic and
	// phrase {2,3} spreads across all: with per-doc single topics, give
	// every doc the spread phrase.
	var docs []Doc
	for d := 0; d < 40; d++ {
		doc := Doc{ID: d}
		doc.Cliques = append(doc.Cliques, []int32{2, 3}) // background
		if d%2 == 0 {
			doc.Cliques = append(doc.Cliques, []int32{0, 1}, []int32{4}, []int32{5})
		} else {
			doc.Cliques = append(doc.Cliques, []int32{6, 7}, []int32{8}, []int32{9})
		}
		docs = append(docs, doc)
	}
	// A sparse alpha keeps each document on its planted topic so the
	// ubiquitous phrase's instances split across topics.
	m := Train(docs, 10, Options{K: 2, Alpha: 0.1, Iterations: 60, Seed: 43})
	bg := m.BackgroundPhrases(nil, 0.75, 10)
	found := false
	for _, p := range bg {
		if len(p.Words) == 2 && p.Words[0] == 2 && p.Words[1] == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("background phrase {2,3} not detected: %+v", bg)
	}
	// With filtering on, {2,3} should vanish from topic lists while the
	// concentrated phrases remain.
	sums := m.Visualize(nil, VisualizeOptions{TopPhrases: 10, FilterBackground: true, BackgroundMaxShare: 0.75})
	for _, s := range sums {
		for _, p := range s.Phrases {
			if len(p.Words) == 2 && p.Words[0] == 2 && p.Words[1] == 3 {
				t.Fatal("background phrase survived filtering")
			}
		}
	}
}

func TestFormatTopics(t *testing.T) {
	m, c := trainedOnSynth(t, 200, 30)
	out := FormatTopics(m.Visualize(c, VisualizeOptions{}))
	if !strings.Contains(out, "Topic 0") || !strings.Contains(out, "unigrams:") {
		t.Fatalf("unexpected format:\n%s", out)
	}
}
