package topicmodel

import (
	"fmt"
	"math"
	"sort"
)

// Sparse bucketed Gibbs sampling in the style of SparseLDA (Yao,
// Mimno, McCallum: "Efficient Methods for Topic Model Inference on
// Streaming Document Collections", KDD 2009), generalised to
// PhraseLDA's clique conditional (Eq. 7 of the paper).
//
// For a unigram clique the conditional factors into three buckets
//
//	p(k) ∝ α_k·β/(Σβ+N_k)            smoothing: dense but tiny mass
//	     + N_dk·β/(Σβ+N_k)           document: nonzero only on K_d topics
//	     + (α_k+N_dk)·N_wk/(Σβ+N_k)  word: nonzero only on K_w topics
//
// so a draw costs O(K_d + K_w) after maintaining the bucket masses
// incrementally: the smoothing mass changes only through N_k (two
// topics per draw), the document mass and the q-coefficients
// (α_k+N_dk)/(Σβ+N_k) are rebuilt in O(K) once per document and
// patched per draw, and the word bucket walks word w's nonzero topic
// list, kept as packed (count<<32|topic) entries in decreasing count
// order so the walk usually stops after one or two entries.
//
// A phrase clique of length W keeps the exact Eq. 7 product but only
// evaluates it on the candidate topics where it can differ from the
// "all counts zero" baseline — the document's nonzero topics plus
// each clique word's nonzero topics. All other topics share the
// precomputed smoothing mass S_W = Σ_k Π_j (α_k+j)·β/(Σβ+N_k+j),
// one such mass per clique length present in the corpus.
//
// The per-length masses are not patched eagerly on every draw (that
// would cost a division per maintained length per count change, most
// of it wasted on the unigram draws that dominate a sweep). Instead
// every N_k change is appended to a journal, and a draw of length W
// catches its mass up by replaying the journal entries it has not
// seen — re-deriving the per-topic term and folding the difference
// into S_W — or recomputing from scratch when the backlog exceeds K.
//
// All masses are floating-point accumulators, so they are recomputed
// at every sweep start (which also absorbs hyperparameter updates)
// and guarded during sampling: a draw whose total mass is not a
// positive finite number falls back to the dense O(K) path, which is
// always exact.

// sparseSampler carries the incremental state of the sparse sweep. It
// lives on the Model but is rebuilt on demand: parallel sweeps and
// deserialisation invalidate the word-topic index wholesale.
type sparseSampler struct {
	m     *Model
	valid bool       // wt mirrors Nwk
	wt    [][]uint64 // per word: packed (count<<32 | topic), count-descending

	lengths []int       // distinct clique lengths in the corpus, ascending
	betaPow []float64   // [W] β^W, refreshed per sweep
	aprod   [][]float64 // [W][k] Π_{j<W} (α_k+j), refreshed per sweep
	smooth  []float64   // [W] smoothing-bucket mass S_W (0 for absent W)
	term    [][]float64 // [W][k] the term of k folded into smooth[W]
	invden  []float64   // [k] 1/(Σβ+N_k), patched on every count change
	nkLog   []int32     // journal of topics whose N_k changed this sweep
	cursor  []int       // [W] nkLog prefix already folded into smooth[W]

	// Per-document state, rebuilt by beginDoc in O(K).
	ndkRow    []int32   // current doc's count row
	qcoef     []float64 // [k] (α_k + N_dk) / (Σβ + N_k)
	docR      float64   // document-bucket mass (unigram cliques)
	docTopics []int32   // topics with N_dk > 0
	docPos    []int32   // [k] index into docTopics, or -1

	// Phrase-clique scratch.
	rows  [][]int32 // per-word count rows of the clique at hand
	cand  []int32
	cw    []float64
	mark  []int64 // [k] stamp marks
	stamp int64
}

// ensureSparse returns a sampler whose word-topic index is in sync
// with the count matrices, building whatever is stale.
func (m *Model) ensureSparse() *sparseSampler {
	if m.sp == nil {
		sp := &sparseSampler{
			m:      m,
			qcoef:  make([]float64, m.K),
			invden: make([]float64, m.K),
			docPos: make([]int32, m.K),
			mark:   make([]int64, m.K),
		}
		seen := make(map[int]bool)
		for d := range m.Docs {
			for _, c := range m.Docs[d].Cliques {
				seen[len(c)] = true
			}
		}
		for l := range seen {
			sp.lengths = append(sp.lengths, l)
		}
		sort.Ints(sp.lengths)
		maxW := 0
		if n := len(sp.lengths); n > 0 {
			maxW = sp.lengths[n-1]
		}
		sp.smooth = make([]float64, maxW+1)
		sp.betaPow = make([]float64, maxW+1)
		sp.aprod = make([][]float64, maxW+1)
		sp.term = make([][]float64, maxW+1)
		sp.cursor = make([]int, maxW+1)
		for _, l := range sp.lengths {
			sp.aprod[l] = make([]float64, m.K)
			sp.term[l] = make([]float64, m.K)
		}
		sp.rows = make([][]int32, maxW)
		m.sp = sp
	}
	if !m.sp.valid {
		m.sp.buildWordLists()
	}
	return m.sp
}

// invalidateSparse marks the word-topic index stale; any path that
// mutates Nwk without maintaining the index must call it.
func (m *Model) invalidateSparse() {
	if m.sp != nil {
		m.sp.valid = false
	}
}

// buildWordLists materialises the packed per-word nonzero topic lists
// from the count matrix: one O(V·K) scan, paid only after the index
// was invalidated (first sparse sweep, or a sparse sweep following
// parallel training).
func (sp *sparseSampler) buildWordLists() {
	m := sp.m
	if sp.wt == nil {
		sp.wt = make([][]uint64, m.V)
	}
	for w := 0; w < m.V; w++ {
		list := sp.wt[w][:0]
		row := m.nwkRow(int32(w))
		for k, c := range row {
			if c > 0 {
				list = append(list, uint64(c)<<32|uint64(k))
			}
		}
		// Descending packed order = descending count order; frequent
		// topics come first so bucket walks exit early.
		sort.Slice(list, func(i, j int) bool { return list[i] > list[j] })
		sp.wt[w] = list
	}
	sp.valid = true
}

// checkWordLists verifies the packed index against the count matrix;
// used by Model.CheckInvariants.
func (sp *sparseSampler) checkWordLists() error {
	m := sp.m
	for w := 0; w < m.V; w++ {
		row := m.nwkRow(int32(w))
		nnz := 0
		for _, c := range row {
			if c > 0 {
				nnz++
			}
		}
		if nnz != len(sp.wt[w]) {
			return fmt.Errorf("sparse index: word %d has %d entries, counts say %d", w, len(sp.wt[w]), nnz)
		}
		for _, e := range sp.wt[w] {
			k := uint32(e)
			if int(k) >= m.K || row[k] != int32(e>>32) {
				return fmt.Errorf("sparse index: word %d topic %d listed as %d, counts say %d",
					w, k, e>>32, row[k])
			}
		}
	}
	return nil
}

// refresh recomputes every maintained mass from the current counts
// and priors — run at each sweep start so hyperparameter updates and
// within-sweep floating-point drift never outlive a sweep.
func (sp *sparseSampler) refresh() {
	m := sp.m
	for k := 0; k < m.K; k++ {
		sp.invden[k] = 1 / (m.BetaSum + float64(m.Nk[k]))
	}
	sp.nkLog = sp.nkLog[:0]
	for _, W := range sp.lengths {
		bp := 1.0
		for j := 0; j < W; j++ {
			bp *= m.Beta
		}
		sp.betaPow[W] = bp
		ap := sp.aprod[W]
		for k := 0; k < m.K; k++ {
			a := 1.0
			for j := 0; j < W; j++ {
				a *= m.Alpha[k] + float64(j)
			}
			ap[k] = a
		}
		sp.recomputeSmooth(W)
	}
}

// recomputeSmooth rebuilds S_W and its per-topic terms from scratch
// and marks the whole journal as seen by length W.
func (sp *sparseSampler) recomputeSmooth(W int) {
	m := sp.m
	ap, bp, tm := sp.aprod[W], sp.betaPow[W], sp.term[W]
	total := 0.0
	if W == 1 {
		for k := 0; k < m.K; k++ {
			t := ap[k] * bp * sp.invden[k]
			tm[k] = t
			total += t
		}
	} else {
		for k := 0; k < m.K; k++ {
			t := ap[k] * bp / denProd(m.BetaSum+float64(m.Nk[k]), W)
			tm[k] = t
			total += t
		}
	}
	sp.smooth[W] = total
	sp.cursor[W] = len(sp.nkLog)
}

// catchUp folds every journaled N_k change that length W has not seen
// into S_W. Replay cost is the backlog length with an O(K) full
// recompute cap, so a sweep's total catch-up work is bounded by
// O(changes × lengths) no matter how draws interleave.
func (sp *sparseSampler) catchUp(W int) {
	cur := sp.cursor[W]
	if cur == len(sp.nkLog) {
		return
	}
	if len(sp.nkLog)-cur >= sp.m.K {
		sp.recomputeSmooth(W)
		return
	}
	m := sp.m
	ap, bp, tm := sp.aprod[W], sp.betaPow[W], sp.term[W]
	s := sp.smooth[W]
	if W == 1 {
		for _, k := range sp.nkLog[cur:] {
			t := ap[k] * bp * sp.invden[k]
			s += t - tm[k]
			tm[k] = t
		}
	} else {
		for _, k := range sp.nkLog[cur:] {
			t := ap[k] * bp / denProd(m.BetaSum+float64(m.Nk[k]), W)
			s += t - tm[k]
			tm[k] = t
		}
	}
	sp.smooth[W] = s
	sp.cursor[W] = len(sp.nkLog)
}

// denProd returns Π_{j<W} (den + j), the denominator chain of Eq. 7.
func denProd(den float64, W int) float64 {
	p := den
	for j := 1; j < W; j++ {
		p *= den + float64(j)
	}
	return p
}

// sweepSparse is Model.Sweep's default implementation.
func (m *Model) sweepSparse() {
	sp := m.ensureSparse()
	sp.refresh()
	for d := range m.Docs {
		if len(m.Docs[d].Cliques) == 0 {
			continue
		}
		sp.beginDoc(d)
		for g := range m.Docs[d].Cliques {
			sp.sample(d, g)
		}
	}
}

// beginDoc rebuilds the per-document state in O(K), amortised over
// the document's cliques.
func (sp *sparseSampler) beginDoc(d int) {
	m := sp.m
	sp.ndkRow = m.ndkRow(d)
	sp.docTopics = sp.docTopics[:0]
	r := 0.0
	for k := 0; k < m.K; k++ {
		inv := sp.invden[k]
		n := sp.ndkRow[k]
		sp.qcoef[k] = (m.Alpha[k] + float64(n)) * inv
		sp.docPos[k] = -1
		if n > 0 {
			sp.docPos[k] = int32(len(sp.docTopics))
			sp.docTopics = append(sp.docTopics, int32(k))
			r += float64(n) * m.Beta * inv
		}
	}
	sp.docR = r
}

// sample resamples clique g of the current document d.
func (sp *sparseSampler) sample(d, g int) {
	m := sp.m
	clique := m.Docs[d].Cliques[g]
	old := m.Z[d][g]
	sp.apply(clique, old, -1)
	var k int32
	if len(clique) == 1 {
		k = sp.drawUnigram(clique)
	} else {
		k = sp.drawPhrase(clique)
	}
	m.Z[d][g] = k
	sp.apply(clique, k, 1)
}

// apply adds (sign=+1) or removes (sign=-1) a clique's counts for
// topic k in the current document, patching the count matrices, the
// word-topic index, the reciprocal denominator, the document bucket,
// and the q-coefficient of k, and journaling the N_k change for the
// lazily maintained smoothing masses. Cost: O(W) plus one division.
func (sp *sparseSampler) apply(clique []int32, k int32, sign int32) {
	m := sp.m
	ki := int(k)
	w := int32(len(clique))
	oldNdk := sp.ndkRow[ki]
	newNdk := oldNdk + sign*w

	sp.ndkRow[ki] = newNdk
	m.Nk[ki] += int64(sign) * int64(w)
	if sign > 0 {
		for _, word := range clique {
			m.nwkRow(word)[ki]++
			sp.wt[word] = wtInc(sp.wt[word], uint32(k))
		}
	} else {
		for _, word := range clique {
			m.nwkRow(word)[ki]--
			sp.wt[word] = wtDec(sp.wt[word], uint32(k))
		}
	}

	// Document topic list membership.
	switch {
	case oldNdk == 0 && newNdk > 0:
		sp.docPos[ki] = int32(len(sp.docTopics))
		sp.docTopics = append(sp.docTopics, k)
	case oldNdk > 0 && newNdk == 0:
		pos := sp.docPos[ki]
		last := int32(len(sp.docTopics) - 1)
		moved := sp.docTopics[last]
		sp.docTopics[pos] = moved
		sp.docPos[moved] = pos
		sp.docTopics = sp.docTopics[:last]
		sp.docPos[ki] = -1
	}

	oldInv := sp.invden[ki]
	newInv := 1 / (m.BetaSum + float64(m.Nk[ki]))
	sp.invden[ki] = newInv
	sp.nkLog = append(sp.nkLog, k)
	if len(sp.nkLog) >= 4*m.K {
		sp.compactLog()
	}
	sp.docR += float64(newNdk)*m.Beta*newInv - float64(oldNdk)*m.Beta*oldInv
	sp.qcoef[ki] = (m.Alpha[ki] + float64(newNdk)) * newInv
}

// compactLog bounds the journal: entries more than K behind every
// cursor can never be replayed (catchUp recomputes from scratch at
// that backlog), so once the log reaches a few K the lengths are all
// folded up to date and the log reset. This keeps the journal O(K)
// for the model's lifetime instead of O(cliques) per sweep, at an
// amortised O(#lengths) cost per draw.
func (sp *sparseSampler) compactLog() {
	for _, W := range sp.lengths {
		sp.catchUp(W)
	}
	sp.nkLog = sp.nkLog[:0]
	for _, W := range sp.lengths {
		sp.cursor[W] = 0
	}
}

// drawUnigram draws from the three-bucket decomposition of the W=1
// conditional. Cost: O(K_w) for the word-bucket mass plus the walk of
// whichever bucket the uniform lands in; the O(K) smoothing walk is
// hit with probability s/(s+r+q), which is tiny on trained models.
func (sp *sparseSampler) drawUnigram(clique []int32) int32 {
	m := sp.m
	w := clique[0]
	sp.catchUp(1)
	list := sp.wt[w]
	var q float64
	for _, e := range list {
		q += float64(e>>32) * sp.qcoef[uint32(e)]
	}
	total := q + sp.docR + sp.smooth[1]
	if !(total > 0) || math.IsInf(total, 1) || math.IsNaN(total) {
		return m.denseDraw(clique)
	}
	u := m.rng.Float64() * total
	if u < q {
		for _, e := range list {
			u -= float64(e>>32) * sp.qcoef[uint32(e)]
			if u < 0 {
				return int32(uint32(e))
			}
		}
		return int32(uint32(list[len(list)-1])) // float slack
	}
	u -= q
	if u < sp.docR && len(sp.docTopics) > 0 {
		for _, k := range sp.docTopics {
			u -= float64(sp.ndkRow[k]) * m.Beta * sp.invden[k]
			if u < 0 {
				return k
			}
		}
		return sp.docTopics[len(sp.docTopics)-1] // float slack
	}
	u -= sp.docR
	tm := sp.term[1]
	for k := 0; k < m.K; k++ {
		u -= tm[k]
		if u < 0 {
			return int32(k)
		}
	}
	return int32(m.K - 1) // float slack: every topic has smoothing mass
}

// drawPhrase draws a W>1 clique's topic: the exact Eq. 7 product on
// the candidate topics (document nonzeros ∪ each word's nonzeros),
// the caught-up smoothing mass S_W for everything else.
func (sp *sparseSampler) drawPhrase(clique []int32) int32 {
	m := sp.m
	W := len(clique)
	sp.catchUp(W)
	sp.stamp++
	st := sp.stamp
	cand := sp.cand[:0]
	rows := sp.rows[:0]
	for _, k := range sp.docTopics {
		sp.mark[k] = st
		cand = append(cand, k)
	}
	for _, word := range clique {
		rows = append(rows, m.nwkRow(word))
		for _, e := range sp.wt[word] {
			k := int32(uint32(e))
			if sp.mark[k] != st {
				sp.mark[k] = st
				cand = append(cand, k)
			}
		}
	}
	sp.cand, sp.rows = cand, rows

	tm := sp.term[W]
	cw := sp.cw[:0]
	var psum, corr float64
	for _, k := range cand {
		akn := m.Alpha[k] + float64(sp.ndkRow[k])
		den := m.BetaSum + float64(m.Nk[k])
		p := 1.0
		for j := range clique {
			fj := float64(j)
			p *= (akn + fj) * (m.Beta + float64(rows[j][k])) / (den + fj)
		}
		cw = append(cw, p)
		psum += p
		corr += tm[k]
	}
	sp.cw = cw
	rest := sp.smooth[W] - corr
	if rest < 0 {
		rest = 0 // candidates held the entire maintained mass; drift guard
	}
	total := psum + rest
	if !(total > 0) || math.IsInf(total, 1) || math.IsNaN(total) {
		return m.denseDraw(clique)
	}
	u := m.rng.Float64() * total
	if u < psum {
		for i, p := range cw {
			u -= p
			if u < 0 {
				return cand[i]
			}
		}
		return cand[len(cand)-1] // float slack
	}
	u -= psum
	for k := 0; k < m.K; k++ {
		if sp.mark[k] == st {
			continue
		}
		u -= tm[k]
		if u < 0 {
			return int32(k)
		}
	}
	for k := m.K - 1; k >= 0; k-- { // float slack: last non-candidate
		if sp.mark[k] != st {
			return int32(k)
		}
	}
	return cand[len(cand)-1] // every topic was a candidate
}

// denseDraw is the exact fallback: the full O(K) conditional of the
// (already removed) clique in the current document. It is reached
// only when the maintained masses cannot produce a positive finite
// total — degenerate priors, drift at the edge of float range.
func (m *Model) denseDraw(clique []int32) int32 {
	return int32(m.rng.Categorical(m.cliqueWeightsInto(m.sp.ndkRow, clique)))
}

// wtInc bumps topic k in a packed word-topic list, inserting it at
// count 1 if absent, and restores decreasing-count order by bubbling
// the entry left past its equals — O(distance moved), usually O(1).
func wtInc(list []uint64, k uint32) []uint64 {
	for i, e := range list {
		if uint32(e) == k {
			e += 1 << 32
			for i > 0 && list[i-1] < e {
				list[i] = list[i-1]
				i--
			}
			list[i] = e
			return list
		}
	}
	return append(list, 1<<32|uint64(k))
}

// wtDec decrements topic k, dropping the entry when its count reaches
// zero (swap-with-last: the tail of the list holds the minimal
// counts) and bubbling right otherwise.
func wtDec(list []uint64, k uint32) []uint64 {
	for i, e := range list {
		if uint32(e) == k {
			if e>>32 <= 1 {
				last := len(list) - 1
				list[i] = list[last]
				return list[:last]
			}
			e -= 1 << 32
			for i < len(list)-1 && list[i+1] > e {
				list[i] = list[i+1]
				i++
			}
			list[i] = e
			return list
		}
	}
	panic("topicmodel: word-topic index out of sync with counts")
}
