package topicmodel

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Distributed AD-LDA support: the pieces of the sweep barrier that
// cross process boundaries. A coordinator holds the full model and
// drives the schedule exactly like SweepParallel — one RNG base draw
// per sweep (NextSweepBase), token-balanced shard ranges
// (ShardRanges), a fold of every worker's sparse N_wk delta
// (FoldShardDeltas) — while each worker holds a shard model
// (NewShardModel) whose document state covers only its range but whose
// word-topic counts are the globals frozen at the last barrier.
// Because every input to the per-clique draw (frozen globals, private
// delta, document counts, RNG stream) is bit-identical to what the
// corresponding in-process SweepParallel worker would see, the trained
// model — and therefore its rendered topics — is byte-identical to an
// in-process run with the same topology (worker count, ranges, seed).
//
// The wire unit is CountRows: a sparse set of K-stride word rows plus
// the K topic totals. Uploaded by a worker it carries the shard's
// sweep delta; rebroadcast by the coordinator it carries the updated
// values of every row touched this sweep (workers overwrite rather
// than re-apply, so the two sides cannot drift).

// CountRows is a sparse set of word-topic count rows plus topic
// totals, the payload exchanged at each distributed sweep barrier.
// Rows may alias internal model buffers; treat as read-only and
// consume before the next sweep.
type CountRows struct {
	K     int
	Words []int32
	Rows  [][]int32
	Nk    []int64
}

// AppendTo appends the little-endian wire encoding of cr to buf:
//
//	u32 nrows | u32 K | nrows × { u32 word | K × i32 } | K × i64
func (cr *CountRows) AppendTo(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cr.Words)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cr.K))
	for i, w := range cr.Words {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w))
		for _, v := range cr.Rows[i] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	for _, v := range cr.Nk {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// DecodeCountRows decodes one CountRows from data, validating shape
// against the expected vocabulary size v and topic count k. It returns
// the decoded value and the number of bytes consumed; the returned
// slices point into freshly allocated memory, not into data.
func DecodeCountRows(data []byte, v, k int) (*CountRows, int, error) {
	if len(data) < 8 {
		return nil, 0, fmt.Errorf("topicmodel: count rows truncated (%d bytes)", len(data))
	}
	nrows := int(binary.LittleEndian.Uint32(data))
	gotK := int(binary.LittleEndian.Uint32(data[4:]))
	if gotK != k {
		return nil, 0, fmt.Errorf("topicmodel: count rows K=%d, want %d", gotK, k)
	}
	if nrows > v {
		return nil, 0, fmt.Errorf("topicmodel: count rows claims %d rows for vocab %d", nrows, v)
	}
	need := 8 + nrows*(4+4*k) + 8*k
	if len(data) < need {
		return nil, 0, fmt.Errorf("topicmodel: count rows truncated: %d bytes, need %d", len(data), need)
	}
	cr := &CountRows{
		K:     k,
		Words: make([]int32, nrows),
		Rows:  make([][]int32, nrows),
		Nk:    make([]int64, k),
	}
	off := 8
	arena := make([]int32, nrows*k)
	for i := 0; i < nrows; i++ {
		w := binary.LittleEndian.Uint32(data[off:])
		if int(w) >= v {
			return nil, 0, fmt.Errorf("topicmodel: count row word %d out of vocab %d", w, v)
		}
		cr.Words[i] = int32(w)
		off += 4
		row := arena[i*k : (i+1)*k : (i+1)*k]
		for j := 0; j < k; j++ {
			row[j] = int32(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
		cr.Rows[i] = row
	}
	for j := 0; j < k; j++ {
		cr.Nk[j] = int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	return cr, off, nil
}

// NewShardModel builds a worker-side model over one shard's documents:
// document state (Z, Ndk, Nd) is local to the shard, while the
// word-topic counts (nwk arena, nk) are the coordinator-broadcast
// globals — which include every other shard's tokens, so the usual
// count invariants deliberately do not hold on a shard model. z rows
// are adopted (not copied); nwk must have vocabSize×k entries and is
// adopted as the count arena.
func NewShardModel(docs []Doc, vocabSize, k int, alpha []float64, alphaSum, beta float64, z [][]int32, nwk []int32, nk []int64) (*Model, error) {
	if k <= 0 || vocabSize <= 0 {
		return nil, fmt.Errorf("topicmodel: shard model needs positive K and V, got K=%d V=%d", k, vocabSize)
	}
	if len(alpha) != k {
		return nil, fmt.Errorf("topicmodel: shard alpha has %d entries, want %d", len(alpha), k)
	}
	if len(z) != len(docs) {
		return nil, fmt.Errorf("topicmodel: shard has %d z rows for %d docs", len(z), len(docs))
	}
	if len(nwk) != vocabSize*k {
		return nil, fmt.Errorf("topicmodel: shard nwk arena has %d entries, want %d", len(nwk), vocabSize*k)
	}
	if len(nk) != k {
		return nil, fmt.Errorf("topicmodel: shard nk has %d entries, want %d", len(nk), k)
	}
	m := &Model{
		K:        k,
		V:        vocabSize,
		Alpha:    alpha,
		AlphaSum: alphaSum,
		Beta:     beta,
		BetaSum:  beta * float64(vocabSize),
		Docs:     docs,
		Z:        z,
		Nk:       nk,
		nwk:      nwk,
		weights:  make([]float64, k),
	}
	m.Nwk = make([][]int32, vocabSize)
	for w := range m.Nwk {
		m.Nwk[w] = nwk[w*k : (w+1)*k : (w+1)*k]
	}
	m.ndk = make([]int32, len(docs)*k)
	m.Ndk = make([][]int32, len(docs))
	m.Nd = make([]int32, len(docs))
	for d := range docs {
		m.Ndk[d] = m.ndk[d*k : (d+1)*k : (d+1)*k]
		row := m.Ndk[d]
		if len(z[d]) != len(docs[d].Cliques) {
			return nil, fmt.Errorf("topicmodel: shard doc %d has %d assignments for %d cliques", d, len(z[d]), len(docs[d].Cliques))
		}
		for g, clique := range docs[d].Cliques {
			zk := z[d][g]
			if zk < 0 || int(zk) >= k {
				return nil, fmt.Errorf("topicmodel: shard doc %d clique %d: topic %d out of range", d, g, zk)
			}
			row[zk] += int32(len(clique))
			m.Nd[d] += int32(len(clique))
		}
	}
	return m, nil
}

// SetPriors installs coordinator-broadcast prior values before a
// sweep. Sums are taken from the wire rather than recomputed so the
// float bits match the coordinator's exactly.
func (m *Model) SetPriors(alpha []float64, alphaSum, beta, betaSum float64) error {
	if len(alpha) != m.K {
		return fmt.Errorf("topicmodel: priors have %d alphas, want %d", len(alpha), m.K)
	}
	copy(m.Alpha, alpha)
	m.AlphaSum = alphaSum
	m.Beta = beta
	m.BetaSum = betaSum
	return nil
}

// ShardSweep runs one sweep of this (shard) model as distributed
// worker workerIndex: the same RNG stream, visit order and per-clique
// math as the corresponding SweepParallel goroutine. It returns the
// shard's sparse N_wk delta; the rows alias reusable worker buffers,
// so the caller must encode (or copy) the delta and then call
// ResetShardDelta before the next sweep.
func (m *Model) ShardSweep(workerIndex int, base uint64) *CountRows {
	ps := m.ensurePar(1)
	ws := ps.workers[0]
	ws.rng.Seed(base + uint64(workerIndex)*workerSeedStride)
	for d := range m.Docs {
		for g := range m.Docs[d].Cliques {
			m.sampleCliqueDelta(ws, d, g)
		}
	}
	cr := &CountRows{
		K:     m.K,
		Words: ws.touched,
		Rows:  make([][]int32, len(ws.touched)),
		Nk:    ws.nk,
	}
	for i, w := range ws.touched {
		cr.Rows[i] = ws.rows[ws.rowOf[w]]
	}
	return cr
}

// ResetShardDelta zeroes the worker delta produced by the last
// ShardSweep without applying it — the coordinator owns the fold; the
// worker instead receives the folded row values back via
// SetGlobalRows.
func (m *Model) ResetShardDelta() {
	if m.par == nil || len(m.par.workers) != 1 {
		return
	}
	ws := m.par.workers[0]
	for _, w := range ws.touched {
		row := ws.rows[ws.rowOf[w]]
		for k := range row {
			row[k] = 0
		}
		ws.rowOf[w] = -1
	}
	ws.touched = ws.touched[:0]
	ws.used = 0
	for k := range ws.nk {
		ws.nk[k] = 0
	}
}

// foldState is the coordinator's reusable scratch for FoldShardDeltas:
// an O(V) index of rows touched in the current fold plus the touch
// order, mirroring parWorker's sparse-delta bookkeeping.
type foldState struct {
	rowOf []int32 // [V], -1 = untouched this fold
	words []int32 // touched words in first-touch order
}

// FoldShardDeltas applies every worker's sweep delta to the global
// counts — the distributed form of SweepParallel's reconcile — and
// returns the rebroadcast payload: the post-fold values of every row
// touched this sweep plus the full topic totals. The returned rows
// alias the model's count arena and its Nk slice; they are valid until
// the next mutation of the model. Folding is integer addition, so the
// result is independent of delta order.
func (m *Model) FoldShardDeltas(deltas []*CountRows) (*CountRows, error) {
	if m.fold == nil {
		f := &foldState{rowOf: make([]int32, m.V)}
		for w := range f.rowOf {
			f.rowOf[w] = -1
		}
		m.fold = f
	}
	f := m.fold
	for _, w := range f.words {
		f.rowOf[w] = -1
	}
	f.words = f.words[:0]

	for di, cr := range deltas {
		if cr.K != m.K {
			return nil, fmt.Errorf("topicmodel: delta %d has K=%d, want %d", di, cr.K, m.K)
		}
		if len(cr.Nk) != m.K {
			return nil, fmt.Errorf("topicmodel: delta %d has %d topic totals, want %d", di, len(cr.Nk), m.K)
		}
		for i, w := range cr.Words {
			if w < 0 || int(w) >= m.V {
				return nil, fmt.Errorf("topicmodel: delta %d touches word %d outside vocab %d", di, w, m.V)
			}
			if f.rowOf[w] < 0 {
				f.rowOf[w] = int32(len(f.words))
				f.words = append(f.words, w)
			}
			dst := m.nwkRow(w)
			for k, v := range cr.Rows[i] {
				dst[k] += v
			}
		}
		for k, v := range cr.Nk {
			m.Nk[k] += v
		}
	}
	// A negative count can only come from a corrupted or mismatched
	// delta; catch it at the barrier instead of training on garbage.
	out := &CountRows{K: m.K, Words: f.words, Rows: make([][]int32, len(f.words)), Nk: m.Nk}
	for i, w := range f.words {
		row := m.nwkRow(w)
		for k, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("topicmodel: fold drove Nwk[%d][%d] negative (%d)", w, k, v)
			}
		}
		out.Rows[i] = row
	}
	for k, v := range m.Nk {
		if v < 0 {
			return nil, fmt.Errorf("topicmodel: fold drove Nk[%d] negative (%d)", k, v)
		}
	}
	m.invalidateSparse()
	return out, nil
}

// SetGlobalRows overwrites the model's word-topic counts with
// coordinator-broadcast post-fold values: the listed rows wholesale
// plus the full topic-total vector. Workers call this after each
// barrier; untouched rows are already equal on both sides.
func (m *Model) SetGlobalRows(cr *CountRows) error {
	if cr.K != m.K {
		return fmt.Errorf("topicmodel: global rows have K=%d, want %d", cr.K, m.K)
	}
	if len(cr.Nk) != m.K {
		return fmt.Errorf("topicmodel: global rows have %d topic totals, want %d", len(cr.Nk), m.K)
	}
	for i, w := range cr.Words {
		if w < 0 || int(w) >= m.V {
			return fmt.Errorf("topicmodel: global row word %d outside vocab %d", w, m.V)
		}
		copy(m.nwkRow(w), cr.Rows[i])
	}
	copy(m.Nk, cr.Nk)
	m.invalidateSparse()
	return nil
}

// InstallShardState copies a shard's final topic assignments back into
// the full model (docs [lo, lo+len(z))) after the last distributed
// sweep, recomputing the affected document-topic rows from the
// assignments rather than trusting them off the wire.
func (m *Model) InstallShardState(lo int, z [][]int32) error {
	if lo < 0 || lo+len(z) > len(m.Docs) {
		return fmt.Errorf("topicmodel: shard state [%d, %d) outside %d docs", lo, lo+len(z), len(m.Docs))
	}
	for i, zr := range z {
		d := lo + i
		if len(zr) != len(m.Docs[d].Cliques) {
			return fmt.Errorf("topicmodel: shard doc %d has %d assignments for %d cliques", d, len(zr), len(m.Docs[d].Cliques))
		}
		row := m.ndkRow(d)
		for k := range row {
			row[k] = 0
		}
		for g, k := range zr {
			if k < 0 || int(k) >= m.K {
				return fmt.Errorf("topicmodel: shard doc %d clique %d: topic %d out of range", d, g, k)
			}
			row[k] += int32(len(m.Docs[d].Cliques[g]))
		}
		copy(m.Z[d], zr)
	}
	m.invalidateSparse()
	return nil
}

// DocsChecksum returns a CRC over the clique structure of docs — word
// ids and clique boundaries, not document IDs — so a distributed
// worker can verify the shard it rebuilt from the corpus file against
// the coordinator's before training on it.
func DocsChecksum(docs []Doc) uint32 {
	crc := crc32.NewIEEE()
	var buf [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:], v)
		crc.Write(buf[:])
	}
	for i := range docs {
		put(uint32(len(docs[i].Cliques)))
		for _, clique := range docs[i].Cliques {
			put(uint32(len(clique)))
			for _, w := range clique {
				put(uint32(w))
			}
		}
	}
	return crc.Sum32()
}
