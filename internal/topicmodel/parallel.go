package topicmodel

import (
	"sync"
	"time"

	"topmine/internal/xrand"
)

// Parallel training: an approximate distributed Gibbs sampler in the
// style of AD-LDA (Newman et al., "Distributed Algorithms for Topic
// Models"), addressing the §8 future-work item on further scalability
// of the topic-modeling stage. Documents are sharded across workers;
// each sweep, every worker samples its shard against the global
// topic-word counts frozen at the sweep barrier plus its own private
// delta, and the deltas are reconciled at the barrier:
//
//	global' = global + Σ_w delta_w
//
// Because every clique belongs to exactly one worker, the reconciled
// counts equal the counts recomputed from the final assignments — the
// model invariants hold exactly; only the *conditional distributions
// sampled from* are stale within a sweep, which is the standard AD-LDA
// approximation. Results are deterministic for a fixed worker count
// but differ from the serial sampler's.
//
// Memory: a worker's delta is sparse — one reusable K-stride row per
// word its shard actually touched, plus an O(V) row index — so a
// sweep's footprint is O(cells touched) instead of the V×K count copy
// per worker the first implementation snapshotted (4·V·K bytes per
// worker per sweep). The buffers persist across sweeps: after the
// first sweep of a training run, SweepParallel allocates nothing
// proportional to the model. Reconciliation likewise walks only the
// touched rows, worker-outermost, each row one contiguous K-stride
// block of the arena.

// workerSeedStride separates the per-worker RNG streams derived from a
// sweep's base draw. The distributed worker (dist.go) must use the
// same constant for its streams to match in-process ones.
const workerSeedStride = 0x9e3779b97f4a7c15

// ShardRanges splits docs into `workers` contiguous [lo, hi) ranges
// balanced on cumulative token counts, so one long-document shard
// doesn't stall the sweep barrier the way equal-document chunking did.
// The boundaries are a pure function of (docs, workers): shard wi ends
// at the first document whose cumulative token count reaches
// total·(wi+1)/workers. Ranges cover [0, len(docs)) exactly; a range
// may be empty under extreme skew.
func ShardRanges(docs []Doc, workers int) [][2]int {
	ranges := make([][2]int, workers)
	total := 0
	for i := range docs {
		total += docs[i].NumTokens()
	}
	d, cum := 0, 0
	for wi := 0; wi < workers; wi++ {
		lo := d
		if wi == workers-1 {
			d = len(docs)
		} else {
			target := total * (wi + 1) / workers
			for d < len(docs) && cum < target {
				cum += docs[d].NumTokens()
				d++
			}
		}
		ranges[wi] = [2]int{lo, d}
	}
	return ranges
}

// SweepStats is one parallel (or distributed) sweep's timing breakdown,
// delivered through the hook installed by Options.SweepStats or
// SetSweepStats. Sample is the barrier wait — sweep start to the
// slowest worker finishing (for a distributed run, to its delta frame
// arriving) — and Reconcile covers folding the deltas back into the
// global counts (plus the rebroadcast, when distributed).
type SweepStats struct {
	// Sweep is the 1-based sweep this breakdown describes. In-process
	// parallel training counts SweepParallel calls since the model was
	// built; a distributed run reports the coordinator's schedule
	// iteration, which rewinds with the rollback after an elastic
	// recovery (so the same sweep number can be reported twice).
	Sweep        int
	Workers      int
	Sample       time.Duration
	Reconcile    time.Duration
	WorkerSample []time.Duration // per-worker sample wall time
	// Checkpoint is the time spent writing this barrier's on-disk
	// checkpoint; zero on barriers that did not write one. Distributed
	// runs only.
	Checkpoint time.Duration
	// Recovered counts the workers re-accepted after failures so far in
	// the run (cumulative). Nonzero only for elastic distributed runs
	// that actually lost and replaced workers.
	Recovered int
}

// SetSweepStats installs (or clears) the per-sweep timing hook. Only
// the parallel and distributed sweep paths report; timing is not
// measured when no hook is set.
func (m *Model) SetSweepStats(fn func(SweepStats)) { m.sweepStats = fn }

// NextSweepBase draws the per-sweep RNG base exactly as SweepParallel
// does. The distributed coordinator calls it once per sweep so worker
// RNG streams match the in-process sampler draw for draw.
func (m *Model) NextSweepBase() uint64 { return m.rng.Uint64() }

// SweepParallel runs one Gibbs pass with the given number of workers.
// workers <= 1 falls back to the exact serial sweep.
func (m *Model) SweepParallel(workers int) {
	m.sweepSeq++
	if workers <= 1 || len(m.Docs) < 2*workers {
		m.Sweep()
		return
	}
	base := m.NextSweepBase()
	ps := m.ensurePar(workers)

	stats := m.sweepStats
	var t0 time.Time
	var perWorker []time.Duration
	if stats != nil {
		t0 = time.Now()
		perWorker = make([]time.Duration, workers)
	}

	var wg sync.WaitGroup
	for wi, r := range ShardRanges(m.Docs, workers) {
		lo, hi := r[0], r[1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(ws *parWorker, wi, lo, hi int) {
			defer wg.Done()
			var start time.Time
			if stats != nil {
				start = time.Now()
			}
			ws.rng.Seed(base + uint64(wi)*workerSeedStride)
			for d := lo; d < hi; d++ {
				for g := range m.Docs[d].Cliques {
					m.sampleCliqueDelta(ws, d, g)
				}
			}
			if stats != nil {
				perWorker[wi] = time.Since(start)
			}
		}(ps.workers[wi], wi, lo, hi)
	}
	wg.Wait()

	var sampleDur time.Duration
	var t1 time.Time
	if stats != nil {
		sampleDur = time.Since(t0)
		t1 = time.Now()
	}

	// Reconcile worker-outermost: each worker's touched rows are
	// contiguous K-stride blocks, applied and re-zeroed in one pass,
	// O(touched rows × K) total.
	for _, ws := range ps.workers {
		for _, w := range ws.touched {
			row := ws.rows[ws.rowOf[w]]
			dst := m.nwkRow(w)
			for k, v := range row {
				dst[k] += v
				row[k] = 0
			}
			ws.rowOf[w] = -1
		}
		ws.touched = ws.touched[:0]
		ws.used = 0
		for k, v := range ws.nk {
			m.Nk[k] += v
			ws.nk[k] = 0
		}
	}
	// The bulk count update bypassed the sparse sampler's word-topic
	// index; rebuild it lazily on the next serial sparse sweep.
	m.invalidateSparse()

	if stats != nil {
		stats(SweepStats{
			Sweep:        m.sweepSeq,
			Workers:      workers,
			Sample:       sampleDur,
			Reconcile:    time.Since(t1),
			WorkerSample: perWorker,
		})
	}
}

// parState holds the reusable worker buffers across sweeps.
type parState struct {
	workers []*parWorker
}

// parWorker is one worker's sparse delta against the frozen global
// counts, plus its sampling scratch. All buffers are reused; rows are
// zeroed during reconciliation so a sweep starts clean.
type parWorker struct {
	rowOf   []int32   // [V] index into rows, -1 = word untouched
	rows    [][]int32 // row pool, each K entries
	used    int       // rows handed out this sweep
	touched []int32   // words with a live row, in first-touch order
	nk      []int64   // [K] topic-total delta
	weights []float64 // [K] sampling scratch
	rowPtr  [][]int32 // per-clique delta-row cache (phrase cliques)
	gRowPtr [][]int32 // per-clique global-row cache (phrase cliques)
	rng     *xrand.RNG
}

// ensurePar returns reusable worker state for the given worker count,
// building it when the count changes (determinism is only promised
// for a fixed count, so a rebuild never mixes streams).
func (m *Model) ensurePar(workers int) *parState {
	if m.par != nil && len(m.par.workers) == workers {
		return m.par
	}
	ps := &parState{workers: make([]*parWorker, workers)}
	for i := range ps.workers {
		ws := &parWorker{
			rowOf:   make([]int32, m.V),
			nk:      make([]int64, m.K),
			weights: make([]float64, m.K),
			rng:     xrand.New(0),
		}
		for w := range ws.rowOf {
			ws.rowOf[w] = -1
		}
		ps.workers[i] = ws
	}
	m.par = ps
	return ps
}

// deltaRow returns the worker's delta row for word w, creating (or
// recycling) one on first touch.
func (ws *parWorker) deltaRow(w int32, k int) []int32 {
	if ri := ws.rowOf[w]; ri >= 0 {
		return ws.rows[ri]
	}
	if ws.used == len(ws.rows) {
		ws.rows = append(ws.rows, make([]int32, k))
	}
	row := ws.rows[ws.used]
	ws.rowOf[w] = int32(ws.used)
	ws.used++
	ws.touched = append(ws.touched, w)
	return row
}

// sampleCliqueDelta is the dense clique draw against the worker's view
// of the counts: frozen global + private delta. Ndk/Nd rows are owned
// by the document's worker, so they mutate in place.
func (m *Model) sampleCliqueDelta(ws *parWorker, d, g int) {
	clique := m.Docs[d].Cliques[g]
	old := m.Z[d][g]
	ndk := m.ndkRow(d)
	ndk[old] -= int32(len(clique))
	for _, w := range clique {
		ws.deltaRow(w, m.K)[old]--
	}
	ws.nk[old] -= int64(len(clique))

	wts := ws.weights
	if len(clique) == 1 {
		word := clique[0]
		gRow := m.nwkRow(word)
		dRow := ws.rows[ws.rowOf[word]] // live: the removal above touched it
		for k := 0; k < m.K; k++ {
			wts[k] = (m.Alpha[k] + float64(ndk[k])) *
				(m.Beta + float64(gRow[k]+dRow[k])) /
				(m.BetaSum + float64(m.Nk[k]+ws.nk[k]))
		}
	} else {
		dRows := ws.rowPtr[:0]
		gRows := ws.gRowPtr[:0]
		for _, w := range clique {
			dRows = append(dRows, ws.rows[ws.rowOf[w]])
			gRows = append(gRows, m.nwkRow(w))
		}
		ws.rowPtr, ws.gRowPtr = dRows, gRows
		for k := 0; k < m.K; k++ {
			p := 1.0
			ak := m.Alpha[k] + float64(ndk[k])
			denom := m.BetaSum + float64(m.Nk[k]+ws.nk[k])
			for j := range clique {
				fj := float64(j)
				nw := gRows[j][k] + dRows[j][k]
				p *= (ak + fj) * (m.Beta + float64(nw)) / (denom + fj)
			}
			wts[k] = p
		}
	}
	k := int32(ws.rng.Categorical(wts))
	m.Z[d][g] = k
	ndk[k] += int32(len(clique))
	for _, w := range clique {
		ws.deltaRow(w, m.K)[k]++
	}
	ws.nk[k] += int64(len(clique))
}

// TrainParallel is Train with SweepParallel; see the package-level
// notes on the AD-LDA approximation.
func TrainParallel(docs []Doc, vocabSize int, opt Options, workers int) *Model {
	opt.fill()
	m := NewModel(docs, vocabSize, opt)
	for it := 1; it <= opt.Iterations; it++ {
		m.SweepParallel(workers)
		if opt.OptimizeHyper && it > opt.BurnIn && it%opt.HyperEvery == 0 {
			m.OptimizeAlpha(5)
			m.OptimizeBeta(5)
		}
		if opt.OnIteration != nil {
			opt.OnIteration(it, m)
		}
	}
	return m
}
