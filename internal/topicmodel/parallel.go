package topicmodel

import (
	"sync"

	"topmine/internal/xrand"
)

// Parallel training: an approximate distributed Gibbs sampler in the
// style of AD-LDA (Newman et al., "Distributed Algorithms for Topic
// Models"), addressing the §8 future-work item on further scalability
// of the topic-modeling stage. Documents are sharded across workers;
// each sweep, every worker samples its shard against a private copy of
// the topic-word counts seeded from the global state, and the workers'
// deltas are reconciled at the sweep barrier:
//
//	global' = snapshot + Σ_w (local_w − snapshot)
//
// Because every clique belongs to exactly one worker, the reconciled
// counts equal the counts recomputed from the final assignments — the
// model invariants hold exactly; only the *conditional distributions
// sampled from* are stale within a sweep, which is the standard AD-LDA
// approximation. Results are deterministic for a fixed worker count
// but differ from the serial sampler's.
//
// Memory: each worker holds a V×K count copy (4·V·K bytes).

// SweepParallel runs one Gibbs pass with the given number of workers.
// workers <= 1 falls back to the exact serial sweep.
func (m *Model) SweepParallel(workers int) {
	if workers <= 1 || len(m.Docs) < 2*workers {
		m.Sweep()
		return
	}
	base := m.rng.Uint64()

	// Snapshot the global topic-word state.
	snapNwk := make([][]int32, m.V)
	for w := range snapNwk {
		snapNwk[w] = append([]int32(nil), m.Nwk[w]...)
	}
	snapNk := append([]int64(nil), m.Nk...)

	locals := make([]*workerState, workers)
	var wg sync.WaitGroup
	chunk := (len(m.Docs) + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		lo, hi := wi*chunk, (wi+1)*chunk
		if hi > len(m.Docs) {
			hi = len(m.Docs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			ws := newWorkerState(snapNwk, snapNk, xrand.New(base+uint64(wi)*0x9e3779b97f4a7c15), m.K)
			for d := lo; d < hi; d++ {
				for g := range m.Docs[d].Cliques {
					m.sampleCliqueLocal(ws, d, g)
				}
			}
			locals[wi] = ws
		}(wi, lo, hi)
	}
	wg.Wait()

	// Reconcile: global = snapshot + sum of worker deltas.
	for w := 0; w < m.V; w++ {
		row := m.Nwk[w]
		snap := snapNwk[w]
		for k := 0; k < m.K; k++ {
			v := snap[k]
			for _, ws := range locals {
				if ws != nil {
					v += ws.nwk[w][k] - snap[k]
				}
			}
			row[k] = v
		}
	}
	for k := 0; k < m.K; k++ {
		v := snapNk[k]
		for _, ws := range locals {
			if ws != nil {
				v += ws.nk[k] - snapNk[k]
			}
		}
		m.Nk[k] = v
	}
}

type workerState struct {
	nwk     [][]int32
	nk      []int64
	rng     *xrand.RNG
	weights []float64
}

func newWorkerState(snapNwk [][]int32, snapNk []int64, rng *xrand.RNG, k int) *workerState {
	ws := &workerState{
		nwk:     make([][]int32, len(snapNwk)),
		nk:      append([]int64(nil), snapNk...),
		rng:     rng,
		weights: make([]float64, k),
	}
	for w := range snapNwk {
		ws.nwk[w] = append([]int32(nil), snapNwk[w]...)
	}
	return ws
}

// sampleCliqueLocal is sampleClique against a worker's private counts.
// Ndk/Nd are owned by the document's worker, so they mutate in place.
func (m *Model) sampleCliqueLocal(ws *workerState, d, g int) {
	clique := m.Docs[d].Cliques[g]
	old := m.Z[d][g]
	m.Ndk[d][old] -= int32(len(clique))
	for _, w := range clique {
		ws.nwk[w][old]--
	}
	ws.nk[old] -= int64(len(clique))

	ndk := m.Ndk[d]
	wts := ws.weights
	if len(clique) == 1 {
		word := clique[0]
		row := ws.nwk[word]
		for k := 0; k < m.K; k++ {
			wts[k] = (m.Alpha[k] + float64(ndk[k])) *
				(m.Beta + float64(row[k])) /
				(m.BetaSum + float64(ws.nk[k]))
		}
	} else {
		for k := 0; k < m.K; k++ {
			p := 1.0
			ak := m.Alpha[k] + float64(ndk[k])
			denom := m.BetaSum + float64(ws.nk[k])
			for j, word := range clique {
				fj := float64(j)
				p *= (ak + fj) * (m.Beta + float64(ws.nwk[word][k])) / (denom + fj)
			}
			wts[k] = p
		}
	}
	k := int32(ws.rng.Categorical(wts))
	m.Z[d][g] = k
	m.Ndk[d][k] += int32(len(clique))
	for _, w := range clique {
		ws.nwk[w][k]++
	}
	ws.nk[k] += int64(len(clique))
}

// TrainParallel is Train with SweepParallel; see the package-level
// notes on the AD-LDA approximation.
func TrainParallel(docs []Doc, vocabSize int, opt Options, workers int) *Model {
	opt.fill()
	m := NewModel(docs, vocabSize, opt)
	for it := 1; it <= opt.Iterations; it++ {
		m.SweepParallel(workers)
		if opt.OptimizeHyper && it > opt.BurnIn && it%opt.HyperEvery == 0 {
			m.OptimizeAlpha(5)
			m.OptimizeBeta(5)
		}
		if opt.OnIteration != nil {
			opt.OnIteration(it, m)
		}
	}
	return m
}
