package topicmodel

import (
	"fmt"

	"topmine/internal/xrand"
)

// Options configures training.
type Options struct {
	// K is the number of topics.
	K int
	// Alpha is the initial symmetric document-topic concentration; 0
	// means the common 50/K default. Hyperparameter optimisation makes
	// the vector asymmetric over time.
	Alpha float64
	// Beta is the symmetric topic-word concentration; 0 means 0.01.
	Beta float64
	// Iterations is the number of full Gibbs sweeps.
	Iterations int
	// OptimizeHyper enables Minka fixed-point updates of alpha and beta
	// every HyperEvery sweeps after BurnIn (§5.3 uses the fixed-point
	// method of Minka 2000).
	OptimizeHyper bool
	// HyperEvery defaults to 25.
	HyperEvery int
	// BurnIn defaults to Iterations/10.
	BurnIn int
	// Seed drives the sampler deterministically.
	Seed uint64
	// DenseSampler selects the reference O(K)-per-clique dense sampler
	// instead of the default sparse bucketed one. Both draw from the
	// exact conditional of Eq. 7; the dense path exists as the
	// correctness baseline for equivalence tests and benchmarks.
	DenseSampler bool
	// OnIteration, when set, runs after each sweep (1-based); used for
	// perplexity curves and runtime instrumentation.
	OnIteration func(iter int, m *Model)
	// SweepStats, when set, receives a per-sweep timing breakdown from
	// the parallel and distributed sweep paths (sample vs. barrier/
	// reconcile wait). Serial sweeps do not report.
	SweepStats func(SweepStats)
}

// DefaultOptions returns the options used by the paper's experiments:
// 1000-2000 sweeps, hyperparameter optimisation on for quality runs.
func DefaultOptions(k int) Options {
	return Options{K: k, Iterations: 1000, OptimizeHyper: true}
}

func (o *Options) fill() {
	if o.K <= 0 {
		panic("topicmodel: K must be positive")
	}
	if o.Alpha <= 0 {
		o.Alpha = 50.0 / float64(o.K)
	}
	if o.Beta <= 0 {
		o.Beta = 0.01
	}
	if o.Iterations <= 0 {
		o.Iterations = 1000
	}
	if o.HyperEvery <= 0 {
		o.HyperEvery = 25
	}
	if o.BurnIn <= 0 {
		o.BurnIn = o.Iterations / 10
	}
}

// Filled returns o with the documented defaults substituted, so
// external schedulers (the distributed coordinator) can see the
// effective Iterations/HyperEvery/BurnIn values NewModel will use.
// Like NewModel, it panics when K is not positive.
func (o Options) Filled() Options {
	o.fill()
	return o
}

// Model is a (Phrase)LDA model trained by collapsed Gibbs sampling.
// Exported fields support gob serialisation.
type Model struct {
	K, V int
	// Alpha is the (possibly asymmetric) document-topic prior; AlphaSum
	// caches its sum.
	Alpha    []float64
	AlphaSum float64
	// Beta is the symmetric topic-word prior; BetaSum = V*Beta.
	Beta    float64
	BetaSum float64

	// Docs are the training documents (cliques).
	Docs []Doc
	// Z[d][g] is the topic of clique g in document d.
	Z [][]int32

	// Ndk[d][k]: tokens of doc d assigned to topic k. The rows are
	// K-stride views into one flat arena (see compactCounts); the
	// exported [][]int32 shape is kept for the gob wire format and for
	// read access, and the arena keeps the hot sampling loops
	// cache-local with no per-row pointer chase.
	Ndk [][]int32
	// Nwk[w][k]: tokens with word w assigned to topic k. Arena-backed
	// like Ndk. Callers must treat the rows as read-only: the sampler
	// maintains sparse per-word topic indexes that mirror these counts.
	Nwk [][]int32
	// Nk[k]: tokens assigned to topic k.
	Nk []int64
	// Nd[d]: tokens in doc d.
	Nd []int32
	// DenseSampler records Options.DenseSampler so the choice survives
	// a Save/Load round trip (resumed training must consume the same
	// sampler's RNG stream to stay reproducible). Gob skips unknown
	// fields, so snapshots stay loadable in both directions across
	// this addition.
	DenseSampler bool

	// Flat count arenas backing the exported row views. nwk has V×K
	// entries (row w at nwk[w*K:]), ndk has len(Docs)×K. They are nil
	// only on a freshly gob-decoded model before ResetSampler runs.
	nwk []int32
	ndk []int32

	rng        *xrand.RNG
	weights    []float64 // scratch for dense sampling
	denseRows  [][]int32 // per-clique row cache for the dense path
	sp         *sparseSampler
	par        *parState
	sweepStats func(SweepStats) // optional timing hook; never serialised
	sweepSeq   int              // SweepParallel calls since construction; never serialised
	fold       *foldState       // coordinator-side delta fold scratch (dist.go)
}

// NewModel allocates a model and randomly initialises assignments.
func NewModel(docs []Doc, vocabSize int, opt Options) *Model {
	opt.fill()
	m := &Model{
		K:            opt.K,
		V:            vocabSize,
		Beta:         opt.Beta,
		BetaSum:      opt.Beta * float64(vocabSize),
		Docs:         docs,
		rng:          xrand.New(opt.Seed),
		weights:      make([]float64, opt.K),
		DenseSampler: opt.DenseSampler,
		sweepStats:   opt.SweepStats,
	}
	m.Alpha = make([]float64, opt.K)
	for k := range m.Alpha {
		m.Alpha[k] = opt.Alpha
	}
	m.AlphaSum = opt.Alpha * float64(opt.K)

	m.Z = make([][]int32, len(docs))
	m.nwk = make([]int32, vocabSize*opt.K)
	m.Nwk = make([][]int32, vocabSize)
	for w := range m.Nwk {
		m.Nwk[w] = m.nwk[w*opt.K : (w+1)*opt.K : (w+1)*opt.K]
	}
	m.ndk = make([]int32, len(docs)*opt.K)
	m.Ndk = make([][]int32, len(docs))
	m.Nk = make([]int64, opt.K)
	m.Nd = make([]int32, len(docs))

	for d := range docs {
		m.Ndk[d] = m.ndk[d*opt.K : (d+1)*opt.K : (d+1)*opt.K]
		m.Z[d] = make([]int32, len(docs[d].Cliques))
		for g, clique := range docs[d].Cliques {
			k := int32(m.rng.Intn(opt.K))
			m.Z[d][g] = k
			m.addClique(d, clique, k, 1)
			m.Nd[d] += int32(len(clique))
		}
	}
	return m
}

// nwkRow returns word w's topic-count row out of the flat arena.
// Every construction path arms the arena (NewModel natively, Load and
// LoadSnapshot via shape validation + ResetSampler, Frozen by
// sharing), so no view fallback is needed.
func (m *Model) nwkRow(w int32) []int32 {
	return m.nwk[int(w)*m.K : (int(w)+1)*m.K]
}

// ndkRow returns document d's topic-count row (see nwkRow).
func (m *Model) ndkRow(d int) []int32 {
	return m.ndk[d*m.K : (d+1)*m.K]
}

// compactCounts (re)builds the flat arenas and re-points the exported
// Ndk/Nwk rows into them. It is a no-op when the views already alias
// the arenas, so calling it on a natively-built model costs nothing;
// after a gob decode it migrates the independently-allocated rows into
// cache-local storage. Malformed matrices (rows of the wrong length)
// are left untouched for the caller's shape validation to reject.
func (m *Model) compactCounts() {
	m.nwk = compactMatrix(m.Nwk, m.nwk, m.K)
	m.ndk = compactMatrix(m.Ndk, m.ndk, m.K)
}

func compactMatrix(rows [][]int32, arena []int32, k int) []int32 {
	if len(rows) == 0 || k <= 0 {
		return nil
	}
	for _, r := range rows {
		if len(r) != k {
			return nil
		}
	}
	if arena != nil && len(arena) == len(rows)*k && &rows[0][0] == &arena[0] {
		return arena // views already alias this arena
	}
	arena = make([]int32, len(rows)*k)
	for i, r := range rows {
		copy(arena[i*k:], r)
		rows[i] = arena[i*k : (i+1)*k : (i+1)*k]
	}
	return arena
}

// addClique adds (sign=+1) or removes (sign=-1) a clique's counts. It
// bypasses the sparse sampler's word-topic index, so it invalidates
// it — the sparse path maintains counts through sparseSampler.apply
// instead.
func (m *Model) addClique(d int, clique []int32, k int32, sign int32) {
	m.invalidateSparse()
	m.ndkRow(d)[k] += sign * int32(len(clique))
	for _, w := range clique {
		m.nwkRow(w)[k] += sign
	}
	m.Nk[k] += int64(sign) * int64(len(clique))
}

// denseCliqueWeights fills m.weights with the unnormalised conditional
// posterior of a (removed) clique in document d, Equation 7 of the
// paper:
//
//	p(C = k | ·) ∝ Π_{j=1..W} (α_k + N_dk^-  + j−1) ·
//	               (β_wj + N_{wj,k}^-) / (Σβ + N_k^- + j−1)
func (m *Model) denseCliqueWeights(d int, clique []int32) []float64 {
	return m.cliqueWeightsInto(m.ndkRow(d), clique)
}

// cliqueWeightsInto is denseCliqueWeights against an explicit
// document count row — the sparse sampler's fallback reuses it with
// its cached row.
func (m *Model) cliqueWeightsInto(ndk []int32, clique []int32) []float64 {
	w := m.weights
	if len(clique) == 1 {
		// LDA fast path (W = 1).
		row := m.nwkRow(clique[0])
		for k := 0; k < m.K; k++ {
			w[k] = (m.Alpha[k] + float64(ndk[k])) *
				(m.Beta + float64(row[k])) /
				(m.BetaSum + float64(m.Nk[k]))
		}
	} else {
		rows := m.denseRows[:0]
		for _, word := range clique {
			rows = append(rows, m.nwkRow(word))
		}
		m.denseRows = rows
		for k := 0; k < m.K; k++ {
			p := 1.0
			ak := m.Alpha[k] + float64(ndk[k])
			denom := m.BetaSum + float64(m.Nk[k])
			for j := range clique {
				fj := float64(j)
				p *= (ak + fj) * (m.Beta + float64(rows[j][k])) / (denom + fj)
			}
			w[k] = p
		}
	}
	return w
}

// sampleCliqueDense resamples the topic of clique g of document d from
// its full conditional with the O(K) dense scan — the reference
// sampler the sparse bucketed path is tested against.
func (m *Model) sampleCliqueDense(d, g int) {
	clique := m.Docs[d].Cliques[g]
	old := m.Z[d][g]
	m.addClique(d, clique, old, -1)
	k := int32(m.rng.Categorical(m.denseCliqueWeights(d, clique)))
	m.Z[d][g] = k
	m.addClique(d, clique, k, 1)
}

// Sweep runs one full Gibbs pass over all cliques. By default it uses
// the sparse bucketed sampler (amortised O(K_d + K_w) per clique, see
// sparse.go); models built with Options.DenseSampler use the dense
// O(K) reference path. Both sample from the exact conditional.
func (m *Model) Sweep() {
	if m.DenseSampler {
		m.SweepDense()
		return
	}
	m.sweepSparse()
}

// SweepDense runs one full Gibbs pass with the reference dense
// sampler, regardless of how the model was configured. (addClique
// invalidates the sparse word-topic index as it mutates counts.)
func (m *Model) SweepDense() {
	for d := range m.Docs {
		for g := range m.Docs[d].Cliques {
			m.sampleCliqueDense(d, g)
		}
	}
}

// Train runs the full collapsed Gibbs schedule described by opt over
// the documents and returns the trained model.
func Train(docs []Doc, vocabSize int, opt Options) *Model {
	opt.fill()
	m := NewModel(docs, vocabSize, opt)
	for it := 1; it <= opt.Iterations; it++ {
		m.Sweep()
		if opt.OptimizeHyper && it > opt.BurnIn && it%opt.HyperEvery == 0 {
			m.OptimizeAlpha(5)
			m.OptimizeBeta(5)
		}
		if opt.OnIteration != nil {
			opt.OnIteration(it, m)
		}
	}
	return m
}

// Theta returns the point estimate of document d's topic mixture.
func (m *Model) Theta(d int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.K)
	}
	denom := float64(m.Nd[d]) + m.AlphaSum
	ndk := m.ndkRow(d)
	for k := 0; k < m.K; k++ {
		dst[k] = (float64(ndk[k]) + m.Alpha[k]) / denom
	}
	return dst
}

// Phi returns the point estimate of topic k's word distribution.
func (m *Model) Phi(k int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.V)
	}
	denom := float64(m.Nk[k]) + m.BetaSum
	for w := 0; w < m.V; w++ {
		dst[w] = (float64(m.nwkRow(int32(w))[k]) + m.Beta) / denom
	}
	return dst
}

// PhiAt returns φ_k,w without materialising the full row.
func (m *Model) PhiAt(k int, w int32) float64 {
	return (float64(m.nwkRow(w)[k]) + m.Beta) / (float64(m.Nk[k]) + m.BetaSum)
}

// TotalTokens returns the number of tokens in the training set.
func (m *Model) TotalTokens() int {
	n := 0
	for _, v := range m.Nd {
		n += int(v)
	}
	return n
}

// CheckInvariants verifies count-matrix consistency with assignments;
// it is used by tests and returns an error describing the first
// violation found. When the sparse sampler's word-topic index is
// live, its agreement with the count matrix is verified too.
func (m *Model) CheckInvariants() error {
	ndk := make([][]int32, len(m.Docs))
	nwk := make(map[int64]int32)
	nk := make([]int64, m.K)
	for d := range m.Docs {
		ndk[d] = make([]int32, m.K)
		for g, clique := range m.Docs[d].Cliques {
			k := m.Z[d][g]
			if k < 0 || int(k) >= m.K {
				return fmt.Errorf("doc %d clique %d: topic %d out of range", d, g, k)
			}
			ndk[d][k] += int32(len(clique))
			nk[k] += int64(len(clique))
			for _, w := range clique {
				nwk[int64(w)*int64(m.K)+int64(k)]++
			}
		}
	}
	for d := range m.Docs {
		for k := 0; k < m.K; k++ {
			if ndk[d][k] != m.Ndk[d][k] {
				return fmt.Errorf("Ndk[%d][%d] = %d, recomputed %d", d, k, m.Ndk[d][k], ndk[d][k])
			}
			if m.ndk != nil && m.ndk[d*m.K+k] != m.Ndk[d][k] {
				return fmt.Errorf("ndk arena desynced from Ndk view at [%d][%d]", d, k)
			}
		}
	}
	for k := 0; k < m.K; k++ {
		if nk[k] != m.Nk[k] {
			return fmt.Errorf("Nk[%d] = %d, recomputed %d", k, m.Nk[k], nk[k])
		}
	}
	for w := 0; w < m.V; w++ {
		for k := 0; k < m.K; k++ {
			want := nwk[int64(w)*int64(m.K)+int64(k)]
			if m.Nwk[w][k] != want {
				return fmt.Errorf("Nwk[%d][%d] = %d, recomputed %d", w, k, m.Nwk[w][k], want)
			}
			if m.nwk != nil && m.nwk[w*m.K+k] != want {
				return fmt.Errorf("nwk arena desynced from Nwk view at [%d][%d]", w, k)
			}
		}
	}
	if m.sp != nil && m.sp.valid {
		if err := m.sp.checkWordLists(); err != nil {
			return err
		}
	}
	return nil
}
