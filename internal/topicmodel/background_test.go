package topicmodel

import "testing"

// TestBackgroundDFCriterion covers the asymmetric-prior failure mode:
// a ubiquitous phrase whose instances all collect in ONE topic evades
// the spread test but is caught by document frequency.
func TestBackgroundDFCriterion(t *testing.T) {
	var docs []Doc
	for d := 0; d < 40; d++ {
		doc := Doc{ID: d}
		// Ubiquitous phrase in every document.
		doc.Cliques = append(doc.Cliques, []int32{8, 9})
		if d%2 == 0 {
			doc.Cliques = append(doc.Cliques, []int32{0, 1}, []int32{2})
		} else {
			doc.Cliques = append(doc.Cliques, []int32{4, 5}, []int32{6})
		}
		docs = append(docs, doc)
	}
	m := Train(docs, 10, Options{K: 2, Alpha: 25, Iterations: 60, Seed: 111})
	// Force the scenario: reassign every {8,9} clique to topic 0 so the
	// spread criterion cannot fire.
	for d := range m.Docs {
		for g, clique := range m.Docs[d].Cliques {
			if len(clique) == 2 && clique[0] == 8 {
				old := m.Z[d][g]
				m.addClique(d, clique, old, -1)
				m.Z[d][g] = 0
				m.addClique(d, clique, 0, 1)
			}
		}
	}
	// Spread-only: not background (concentrated in topic 0).
	spreadOnly := m.BackgroundPhrasesDF(nil, 0.5, 0, 10)
	for _, p := range spreadOnly {
		if p.Words[0] == 8 {
			t.Fatal("concentrated phrase flagged by spread criterion alone")
		}
	}
	// With DF criterion at 0.5 (phrase occurs in 100% of docs): caught.
	withDF := m.BackgroundPhrasesDF(nil, 0.5, 0.5, 10)
	found := false
	for _, p := range withDF {
		if len(p.Words) == 2 && p.Words[0] == 8 && p.Words[1] == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("DF criterion missed the ubiquitous phrase")
	}
	// The topical phrases {0,1}, {4,5} appear in 50% of docs each: must
	// NOT be flagged at maxDocFrac 0.5 (not strictly greater).
	for _, p := range withDF {
		if p.Words[0] == 0 || p.Words[0] == 4 {
			t.Fatalf("topical phrase wrongly flagged: %+v", p)
		}
	}
	// Visualize with the DF filter drops the ubiquitous phrase.
	sums := m.Visualize(nil, VisualizeOptions{
		TopPhrases: 10, FilterBackground: true,
		BackgroundMaxShare: 0.5, BackgroundMaxDocFrac: 0.5,
	})
	for _, s := range sums {
		for _, p := range s.Phrases {
			if len(p.Words) == 2 && p.Words[0] == 8 {
				t.Fatal("ubiquitous phrase survived the DF filter")
			}
		}
	}
}

// TestBackgroundDFDisabledByDefault ensures maxDocFrac = 0 keeps the
// pre-existing spread-only behaviour.
func TestBackgroundDFDisabledByDefault(t *testing.T) {
	docs := []Doc{{ID: 0, Cliques: [][]int32{{0, 1}}}}
	m := Train(docs, 4, Options{K: 1, Iterations: 5, Seed: 1})
	// One doc, one phrase, fully concentrated: not background.
	sums := m.Visualize(nil, VisualizeOptions{TopPhrases: 5, FilterBackground: true})
	if len(sums[0].Phrases) != 1 {
		t.Fatal("spread-only filter dropped a concentrated phrase")
	}
}
