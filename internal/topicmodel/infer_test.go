package topicmodel

import (
	"math"
	"testing"
)

func TestInferThetaOnPlantedTopics(t *testing.T) {
	docs := twoTopicDocs(30, 30)
	m := Train(docs, 10, Options{K: 2, Alpha: 0.5, Iterations: 100, Seed: 71})
	// Identify which topic holds word 0 (topic-A vocabulary).
	topicA := 0
	if m.Nwk[0][1] > m.Nwk[0][0] {
		topicA = 1
	}
	thetaA := m.InferTheta([][]int32{{0}, {1}, {2}, {3, 4}}, 40, 5)
	thetaB := m.InferTheta([][]int32{{5}, {6}, {7}, {8, 9}}, 40, 5)
	if BestTopic(thetaA) != topicA {
		t.Fatalf("topic-A doc inferred %d (theta %v)", BestTopic(thetaA), thetaA)
	}
	if BestTopic(thetaB) == topicA {
		t.Fatalf("topic-B doc inferred topic A (theta %v)", thetaB)
	}
}

func TestInferThetaNormalised(t *testing.T) {
	docs := twoTopicDocs(5, 10)
	m := Train(docs, 10, Options{K: 3, Iterations: 20, Seed: 73})
	theta := m.InferTheta([][]int32{{0, 1}}, 10, 1)
	var sum float64
	for _, v := range theta {
		if v < 0 {
			t.Fatalf("negative theta %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %v", sum)
	}
}

func TestInferThetaDoesNotMutateModel(t *testing.T) {
	docs := twoTopicDocs(5, 10)
	m := Train(docs, 10, Options{K: 2, Iterations: 20, Seed: 79})
	nkBefore := append([]int64(nil), m.Nk...)
	m.InferTheta([][]int32{{0}, {5}}, 25, 2)
	for k := range nkBefore {
		if m.Nk[k] != nkBefore[k] {
			t.Fatal("inference mutated model counts")
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInferThetaEmptyDoc(t *testing.T) {
	docs := twoTopicDocs(5, 10)
	m := Train(docs, 10, Options{K: 2, Iterations: 10, Seed: 83})
	theta := m.InferTheta(nil, 10, 3)
	var sum float64
	for _, v := range theta {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("empty-doc theta sums to %v", sum)
	}
}

func TestBestTopic(t *testing.T) {
	if BestTopic([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Fatal("argmax wrong")
	}
	if BestTopic([]float64{0.5}) != 0 {
		t.Fatal("singleton wrong")
	}
}

func TestMergeReorderingsVisualize(t *testing.T) {
	// Plant two orderings of the same word pair in separate cliques;
	// with MergeReorderings the visualisation pools them.
	var docs []Doc
	for d := 0; d < 30; d++ {
		doc := Doc{ID: d}
		if d%3 == 0 {
			doc.Cliques = append(doc.Cliques, []int32{1, 0}) // minority order
		} else {
			doc.Cliques = append(doc.Cliques, []int32{0, 1}) // majority order
		}
		doc.Cliques = append(doc.Cliques, []int32{2}, []int32{3})
		docs = append(docs, doc)
	}
	m := Train(docs, 4, Options{K: 1, Iterations: 10, Seed: 89})
	plain := m.Visualize(nil, VisualizeOptions{TopPhrases: 5})
	merged := m.Visualize(nil, VisualizeOptions{TopPhrases: 5, MergeReorderings: true})
	if len(plain[0].Phrases) != 2 {
		t.Fatalf("expected 2 distinct orderings unmerged, got %d", len(plain[0].Phrases))
	}
	if len(merged[0].Phrases) != 1 {
		t.Fatalf("expected 1 merged phrase, got %d", len(merged[0].Phrases))
	}
	p := merged[0].Phrases[0]
	if p.TF != 30 {
		t.Fatalf("merged TF = %d, want 30", p.TF)
	}
	if p.Words[0] != 0 || p.Words[1] != 1 {
		t.Fatalf("merged representative should be the majority order, got %v", p.Words)
	}
}
