package topicmodel

import (
	"fmt"
	"sort"
	"strings"

	"topmine/internal/corpus"
	"topmine/internal/counter"
)

// PhraseInfo is one ranked phrase in a topic visualisation.
type PhraseInfo struct {
	Words   []int32
	Display string
	// TF is the topical frequency of Eq. 8: the number of phrase
	// instances assigned to the topic at the final Gibbs state.
	TF int
}

// TopicSummary is the paper's visualisation unit (Tables 1, 4-6): the
// most probable unigrams of a topic above its highest-TF phrases.
type TopicSummary struct {
	Topic    int
	Unigrams []string
	Phrases  []PhraseInfo
}

// VisualizeOptions controls topic rendering.
type VisualizeOptions struct {
	// TopUnigrams and TopPhrases bound list lengths (defaults 10).
	TopUnigrams int
	TopPhrases  int
	// MinPhraseLen filters the phrase list (default 2: multi-word only,
	// as in the paper's n-gram rows).
	MinPhraseLen int
	// FilterBackground drops background phrases ("paper we propose"),
	// the §8 future-work item, using two complementary signals: the
	// phrase's topical frequency is spread thinly across topics
	// (max-topic share below BackgroundMaxShare — the symmetric-prior
	// signature), or the phrase occurs in more than BackgroundMaxDocFrac
	// of all documents (the signature under an optimised asymmetric
	// prior, where background mass collects in one dedicated topic).
	FilterBackground   bool
	BackgroundMaxShare float64 // default 0.5
	// BackgroundMaxDocFrac enables the document-frequency criterion
	// when positive (e.g. 0.25); zero disables it.
	BackgroundMaxDocFrac float64
	// MergeReorderings ties phrases that are word-order variants of one
	// another ("pattern mining frequent" / "frequent pattern mining"),
	// pooling their topical frequency under the variant realised most
	// often — the §8 future-work item on tying similar phrases for
	// better recall.
	MergeReorderings bool
}

func (o *VisualizeOptions) fill() {
	if o.TopUnigrams <= 0 {
		o.TopUnigrams = 10
	}
	if o.TopPhrases <= 0 {
		o.TopPhrases = 10
	}
	if o.MinPhraseLen <= 0 {
		o.MinPhraseLen = 2
	}
	if o.BackgroundMaxShare <= 0 {
		o.BackgroundMaxShare = 0.5
	}
}

// tfEntry aggregates one phrase across the corpus.
type tfEntry struct {
	words    []int32
	perTopic []int32
	displays map[string]int
	df       int32 // documents containing at least one instance
	lastDoc  int32 // internal: last document counted toward df
}

// topicalFrequencies walks the final assignment state and aggregates
// TF(phrase, k) plus display-form votes for every clique.
func (m *Model) topicalFrequencies(c *corpus.Corpus, minLen int) map[string]*tfEntry {
	agg := make(map[string]*tfEntry)
	for d := range m.Docs {
		doc := &m.Docs[d]
		var src *corpus.Document
		if c != nil && doc.ID < len(c.Docs) {
			src = c.Docs[doc.ID]
		}
		for g, clique := range doc.Cliques {
			if len(clique) < minLen {
				continue
			}
			key := counter.Key(clique)
			e := agg[key]
			if e == nil {
				e = &tfEntry{
					words:    clique,
					perTopic: make([]int32, m.K),
					displays: make(map[string]int, 1),
					lastDoc:  -1,
				}
				agg[key] = e
			}
			e.perTopic[m.Z[d][g]]++
			if e.lastDoc != int32(d) {
				e.lastDoc = int32(d)
				e.df++
			}
			if src != nil && doc.Origin != nil {
				o := doc.Origin[g]
				seg := &src.Segments[o.Segment]
				e.displays[c.DisplayPhrase(seg, o.Span.Start, o.Span.End)]++
			}
		}
	}
	return agg
}

// bestDisplay returns the majority display form, ties broken
// lexicographically; falls back to un-stemmed words.
func bestDisplay(e *tfEntry, c *corpus.Corpus) string {
	best, bestN := "", -1
	for s, n := range e.displays {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	if best != "" {
		return best
	}
	if c != nil {
		return c.DisplayWords(e.words)
	}
	parts := make([]string, len(e.words))
	for i, w := range e.words {
		parts[i] = fmt.Sprintf("w%d", w)
	}
	return strings.Join(parts, " ")
}

// isBackground reports whether the phrase looks like corpus-wide
// background: topical mass spread below the max-share threshold, or
// document frequency above maxDocFrac (when enabled) of numDocs.
func isBackground(e *tfEntry, maxShare, maxDocFrac float64, numDocs int) bool {
	var total, max int32
	for _, v := range e.perTopic {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return true
	}
	if float64(max)/float64(total) < maxShare {
		return true
	}
	if maxDocFrac > 0 && numDocs > 0 &&
		float64(e.df)/float64(numDocs) > maxDocFrac {
		return true
	}
	return false
}

// mergeReorderings pools entries whose word multisets match, keeping
// the most frequent realised order as the representative.
func mergeReorderings(agg map[string]*tfEntry) map[string]*tfEntry {
	canonical := func(words []int32) string {
		s := append([]int32(nil), words...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return counter.Key(s)
	}
	total := func(e *tfEntry) int64 {
		var t int64
		for _, v := range e.perTopic {
			t += int64(v)
		}
		return t
	}
	groups := make(map[string]*tfEntry)
	for _, e := range agg {
		key := canonical(e.words)
		g := groups[key]
		if g == nil {
			groups[key] = e
			continue
		}
		// Pool counts and displays; keep the heavier variant's order
		// (ties: lexicographically smaller key, for determinism).
		if total(e) > total(g) ||
			(total(e) == total(g) && counter.Key(e.words) < counter.Key(g.words)) {
			g.words = e.words
		}
		for k := range g.perTopic {
			g.perTopic[k] += e.perTopic[k]
		}
		for s, n := range e.displays {
			g.displays[s] += n
		}
		g.df += e.df // approximate: variants may share documents
	}
	out := make(map[string]*tfEntry, len(groups))
	for _, g := range groups {
		out[counter.Key(g.words)] = g
	}
	return out
}

// Visualize renders every topic as ranked unigrams plus ranked phrases
// (topical frequency, Eq. 8). The corpus may be nil, in which case
// word ids are rendered opaquely.
func (m *Model) Visualize(c *corpus.Corpus, opt VisualizeOptions) []TopicSummary {
	opt.fill()
	agg := m.topicalFrequencies(c, opt.MinPhraseLen)
	if opt.MergeReorderings {
		agg = mergeReorderings(agg)
	}

	out := make([]TopicSummary, m.K)
	type scored struct {
		e  *tfEntry
		tf int32
	}
	perTopic := make([][]scored, m.K)
	for _, e := range agg {
		if opt.FilterBackground &&
			isBackground(e, opt.BackgroundMaxShare, opt.BackgroundMaxDocFrac, len(m.Docs)) {
			continue
		}
		for k := 0; k < m.K; k++ {
			if e.perTopic[k] > 0 {
				perTopic[k] = append(perTopic[k], scored{e, e.perTopic[k]})
			}
		}
	}
	for k := 0; k < m.K; k++ {
		s := perTopic[k]
		sort.Slice(s, func(i, j int) bool {
			if s[i].tf != s[j].tf {
				return s[i].tf > s[j].tf
			}
			return counter.Key(s[i].e.words) < counter.Key(s[j].e.words)
		})
		n := opt.TopPhrases
		if n > len(s) {
			n = len(s)
		}
		sum := TopicSummary{Topic: k, Unigrams: m.TopUnigrams(k, opt.TopUnigrams, c)}
		for _, sc := range s[:n] {
			sum.Phrases = append(sum.Phrases, PhraseInfo{
				Words:   sc.e.words,
				Display: bestDisplay(sc.e, c),
				TF:      int(sc.tf),
			})
		}
		out[k] = sum
	}
	return out
}

// TopUnigrams returns topic k's n most probable words, un-stemmed for
// display when a corpus is supplied.
func (m *Model) TopUnigrams(k, n int, c *corpus.Corpus) []string {
	type wc struct {
		w int32
		n int32
	}
	all := make([]wc, 0, 64)
	for w := 0; w < m.V; w++ {
		if cnt := m.nwkRow(int32(w))[k]; cnt > 0 {
			all = append(all, wc{int32(w), cnt})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		if c != nil {
			out[i] = c.Vocab.Unstem(all[i].w)
		} else {
			out[i] = fmt.Sprintf("w%d", all[i].w)
		}
	}
	return out
}

// BackgroundPhrases returns the phrases the background filter would
// remove, ranked by total frequency — useful for inspecting what §8's
// principled filtering catches. Pass maxDocFrac <= 0 to use the
// topical-spread criterion alone.
func (m *Model) BackgroundPhrases(c *corpus.Corpus, maxShare float64, limit int) []PhraseInfo {
	return m.BackgroundPhrasesDF(c, maxShare, 0, limit)
}

// BackgroundPhrasesDF is BackgroundPhrases with the document-frequency
// criterion enabled at maxDocFrac.
func (m *Model) BackgroundPhrasesDF(c *corpus.Corpus, maxShare, maxDocFrac float64, limit int) []PhraseInfo {
	if maxShare <= 0 {
		maxShare = 0.5
	}
	agg := m.topicalFrequencies(c, 2)
	var out []PhraseInfo
	for _, e := range agg {
		if !isBackground(e, maxShare, maxDocFrac, len(m.Docs)) {
			continue
		}
		total := 0
		for _, v := range e.perTopic {
			total += int(v)
		}
		out = append(out, PhraseInfo{Words: e.words, Display: bestDisplay(e, c), TF: total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TF != out[j].TF {
			return out[i].TF > out[j].TF
		}
		return out[i].Display < out[j].Display
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// FormatTopics renders summaries as an aligned text table, one column
// per topic, mirroring the layout of Tables 4-6.
func FormatTopics(summaries []TopicSummary) string {
	var b strings.Builder
	for _, s := range summaries {
		fmt.Fprintf(&b, "Topic %d\n", s.Topic)
		b.WriteString("  unigrams: ")
		b.WriteString(strings.Join(s.Unigrams, ", "))
		b.WriteString("\n  phrases:\n")
		for _, p := range s.Phrases {
			fmt.Fprintf(&b, "    %-40s tf=%d\n", p.Display, p.TF)
		}
	}
	return b.String()
}
