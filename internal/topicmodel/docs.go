// Package topicmodel implements the paper's PhraseLDA — latent
// Dirichlet allocation constrained so that all tokens of one phrase
// (one clique of the chain graph, §5.2) share a topic — together with
// plain LDA as the special case of singleton cliques, a collapsed
// Gibbs sampler (Eq. 7), Minka fixed-point hyperparameter optimisation,
// held-out perplexity evaluation, topical-frequency phrase ranking
// (Eq. 8) and model serialisation.
package topicmodel

import (
	"topmine/internal/corpus"
	"topmine/internal/segment"
)

// Doc is one document prepared for topic modeling: an ordered list of
// cliques (phrase instances). Each clique's tokens are forced to share
// one topic by the sampler.
type Doc struct {
	ID int
	// Cliques holds the word ids of each phrase instance, in document
	// order. Singleton cliques reduce the model to plain LDA.
	Cliques [][]int32
	// Origin links clique g back to (segment, span) in the source
	// corpus so visualisations can re-insert stop words. Nil when the
	// document was built without segmentation (unigram mode).
	Origin []CliqueOrigin
}

// CliqueOrigin locates a clique in its source document.
type CliqueOrigin struct {
	Segment int
	Span    segment.Span
}

// NumTokens returns the token count of the document.
func (d *Doc) NumTokens() int {
	n := 0
	for _, c := range d.Cliques {
		n += len(c)
	}
	return n
}

// DocsFromSegmentation converts a segmented corpus into modeling
// documents whose cliques are the mined phrases — the 'bag of phrases'
// input to PhraseLDA. Order follows the corpus; documents with no
// tokens yield zero cliques but keep their slot.
func DocsFromSegmentation(c *corpus.Corpus, segs []*segment.SegmentedDoc) []Doc {
	docs := make([]Doc, len(segs))
	for i, sd := range segs {
		src := c.Docs[sd.DocID]
		d := Doc{ID: sd.DocID}
		for si, spans := range sd.Spans {
			words := src.Segments[si].Words()
			for _, sp := range spans {
				clique := make([]int32, sp.Len())
				copy(clique, words[sp.Start:sp.End])
				d.Cliques = append(d.Cliques, clique)
				d.Origin = append(d.Origin, CliqueOrigin{Segment: si, Span: sp})
			}
		}
		docs[i] = d
	}
	return docs
}

// DocsUnigram converts a corpus into modeling documents where every
// token is its own singleton clique: plain LDA. ("LDA is a special
// case of PhraseLDA", §7.4.)
func DocsUnigram(c *corpus.Corpus) []Doc {
	docs := make([]Doc, len(c.Docs))
	for i, src := range c.Docs {
		d := Doc{ID: src.ID}
		for si := range src.Segments {
			words := src.Segments[si].Words()
			for t, w := range words {
				d.Cliques = append(d.Cliques, []int32{w})
				d.Origin = append(d.Origin, CliqueOrigin{
					Segment: si, Span: segment.Span{Start: t, End: t + 1},
				})
			}
		}
		docs[i] = d
	}
	return docs
}
