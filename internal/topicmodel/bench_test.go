package topicmodel

import (
	"fmt"
	"sync"
	"testing"
)

// Sweep benchmarks — the headline numbers of the training layer. One
// op is one full Gibbs sweep; tokens/s is the throughput a training
// run sustains, and B/op shows the steady-state allocation behaviour
// (zero for the serial sparse path, O(goroutines) for parallel).
//
// Models are warmed with training sweeps before timing: a sweep from
// random initialisation touches near-dense count matrices — the worst
// case for any sparse sampler and not what the 1000-2000 sweeps of a
// real run (§5.3) pay. CI runs these as a smoke pass and archives the
// results as BENCH_topicmodel.json (see cmd/benchjson).

var (
	benchFixtureOnce sync.Once
	benchFixtureDocs []Doc
	benchFixtureV    int
)

const benchWarmupSweeps = 30

func sweepBenchFixture(b *testing.B) ([]Doc, int) {
	b.Helper()
	benchFixtureOnce.Do(func() {
		docs, _, v := synthPhraseDocs(b, "dblp-abstracts", 400)
		benchFixtureDocs, benchFixtureV = docs, v
	})
	return benchFixtureDocs, benchFixtureV
}

func BenchmarkSweep(b *testing.B) {
	docs, v := sweepBenchFixture(b)
	for _, k := range []int{50, 200, 1000} {
		for _, mode := range []string{"sparse", "dense"} {
			b.Run(fmt.Sprintf("K%d/%s", k, mode), func(b *testing.B) {
				m := NewModel(docs, v, Options{K: k, Iterations: 1, Seed: 42,
					DenseSampler: mode == "dense"})
				for i := 0; i < benchWarmupSweeps; i++ {
					m.Sweep()
				}
				tokens := float64(m.TotalTokens())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Sweep()
				}
				b.ReportMetric(tokens*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
			})
		}
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	docs, v := sweepBenchFixture(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("K200/workers%d", workers), func(b *testing.B) {
			m := NewModel(docs, v, Options{K: 200, Iterations: 1, Seed: 42})
			for i := 0; i < benchWarmupSweeps; i++ {
				m.SweepParallel(workers)
			}
			tokens := float64(m.TotalTokens())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.SweepParallel(workers)
			}
			b.ReportMetric(tokens*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
		})
	}
}

// BenchmarkInferTheta isolates the serve-path fold-in cost: the
// pooled-scratch variant allocates only the returned mixture.
func BenchmarkInferTheta(b *testing.B) {
	docs, v := sweepBenchFixture(b)
	m := Train(docs, v, Options{K: 50, Iterations: 20, Seed: 42})
	cliques := [][]int32{{1, 2}, {3}, {4, 5, 6}, {7}, {8}, {9, 10}}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.InferTheta(cliques, 20, uint64(i))
		}
	})
	b.Run("scratch", func(b *testing.B) {
		sc := &InferScratch{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = m.InferThetaScratch(cliques, 20, uint64(i), sc)
		}
	})
}
