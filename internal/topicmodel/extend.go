package topicmodel

import (
	"fmt"

	"topmine/internal/xrand"
)

// Extend grows a trained model in place so training can continue over
// an enlarged corpus: newDocs are appended to the training set and the
// vocabulary grows from V to newV (ids are append-only, so every
// existing word keeps its row). The existing documents' assignments,
// counts and priors are untouched — incremental training resumes from
// the converged state instead of re-burning in from scratch.
//
// The new documents' cliques are initialised by a single sequential
// sampling pass from the model's current conditional (Equation 7 with
// the grown V in the β denominator), driven by a fresh RNG seeded with
// seed — so extension is deterministic for a fixed seed regardless of
// how the model was trained. The incremental sampler state (sparse
// word-topic index, parallel worker deltas) is dropped and rebuilt
// lazily by the next sweep.
func (m *Model) Extend(newDocs []Doc, newV int, seed uint64) error {
	if newV < m.V {
		return fmt.Errorf("topicmodel: Extend: vocabulary cannot shrink (have %d, got %d); ids are append-only", m.V, newV)
	}
	for di, doc := range newDocs {
		for g, clique := range doc.Cliques {
			for _, w := range clique {
				if w < 0 || int(w) >= newV {
					return fmt.Errorf("topicmodel: Extend: new doc %d clique %d holds word %d, vocabulary is %d", di, g, w, newV)
				}
			}
		}
	}

	// Arm scratch state first: compactCounts migrates a decoded model's
	// rows into the flat arenas the grow step below copies from.
	m.rng = xrand.New(seed)
	m.weights = make([]float64, m.K)
	m.sp = nil
	m.par = nil
	m.compactCounts()

	// Grow the word-topic arena to newV rows; existing rows keep their
	// offsets because the stride (K) is unchanged.
	if newV > m.V {
		nwk := make([]int32, newV*m.K)
		copy(nwk, m.nwk)
		m.nwk = nwk
		m.Nwk = make([][]int32, newV)
		for w := range m.Nwk {
			m.Nwk[w] = nwk[w*m.K : (w+1)*m.K : (w+1)*m.K]
		}
		m.V = newV
		m.BetaSum = m.Beta * float64(newV)
	}

	// Grow the document-topic arena and append the new documents.
	oldD := len(m.Docs)
	nD := oldD + len(newDocs)
	ndk := make([]int32, nD*m.K)
	copy(ndk, m.ndk)
	m.ndk = ndk
	m.Ndk = make([][]int32, nD)
	for d := range m.Ndk {
		m.Ndk[d] = ndk[d*m.K : (d+1)*m.K : (d+1)*m.K]
	}
	m.Docs = append(m.Docs, newDocs...)
	m.Z = append(m.Z, make([][]int32, len(newDocs))...)
	m.Nd = append(m.Nd, make([]int32, len(newDocs))...)

	for d := oldD; d < nD; d++ {
		cliques := m.Docs[d].Cliques
		m.Z[d] = make([]int32, len(cliques))
		for g, clique := range cliques {
			w := m.cliqueWeightsInto(m.ndkRow(d), clique)
			k := int32(m.rng.Categorical(w))
			m.Z[d][g] = k
			m.addClique(d, clique, k, 1)
			m.Nd[d] += int32(len(clique))
		}
	}
	return nil
}
