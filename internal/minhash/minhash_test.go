package minhash

import (
	"fmt"
	"math/rand"
	"testing"
)

// docStems builds a synthetic stem sequence with a controllable prefix
// so tests can dial in approximate Jaccard overlap between documents.
func docStems(seed int64, n int) []string {
	r := rand.New(rand.NewSource(seed))
	stems := make([]string, n)
	for i := range stems {
		stems[i] = fmt.Sprintf("w%03d", r.Intn(400))
	}
	return stems
}

func TestSketchDeterministic(t *testing.T) {
	stems := docStems(1, 200)
	h1 := NewHasher(64, CanonicalSeed)
	h2 := NewHasher(64, CanonicalSeed)
	a, b := h1.Sketch(stems), h2.Sketch(stems)
	if len(a) != 64 || len(b) != 64 {
		t.Fatalf("sketch sizes %d, %d, want 64", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position %d differs across identically seeded hashers", i)
		}
	}
	// A different seed must produce a different permutation family.
	c := NewHasher(64, CanonicalSeed+1).Sketch(stems)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("differently seeded hashers produced identical sketches")
	}
}

func TestJaccardIdenticalAndDisjoint(t *testing.T) {
	h := NewHasher(DefaultK, CanonicalSeed)
	a := h.Sketch(docStems(1, 300))
	if got := Jaccard(a, a); got != 1 {
		t.Fatalf("Jaccard(a, a) = %g, want 1", got)
	}
	// Disjoint token universes: shingle sets share nothing, so the
	// estimate should be (near) zero.
	b := h.Sketch([]string{"xx1", "xx2", "xx3", "xx4", "xx5", "xx6"})
	if got := Jaccard(a, b); got > 0.05 {
		t.Fatalf("Jaccard of disjoint documents = %g, want ~0", got)
	}
}

func TestJaccardEstimatesOverlap(t *testing.T) {
	// Two documents sharing a long common prefix should score high;
	// unrelated documents of the same shape should score low.
	h := NewHasher(256, CanonicalSeed)
	common := docStems(7, 300)
	near := append(append([]string{}, common...), "tail1", "tail2", "tail3")
	far := docStems(8, 300)
	hi := Jaccard(h.Sketch(common), h.Sketch(near))
	lo := Jaccard(h.Sketch(common), h.Sketch(far))
	if hi < 0.8 {
		t.Fatalf("near-duplicate Jaccard = %g, want >= 0.8", hi)
	}
	if lo > 0.3 {
		t.Fatalf("unrelated Jaccard = %g, want <= 0.3", lo)
	}
	if hi <= lo {
		t.Fatalf("near (%g) should exceed far (%g)", hi, lo)
	}
}

func TestEmptyAndTinyDocs(t *testing.T) {
	h := NewHasher(32, CanonicalSeed)
	empty := h.Sketch(nil)
	if !empty.Empty() {
		t.Fatal("sketch of no stems should be Empty")
	}
	// Empty documents never match anything, including each other.
	if got := Jaccard(empty, h.Sketch(nil)); got != 0 {
		t.Fatalf("Jaccard of two empty sketches = %g, want 0", got)
	}
	// One-token documents use the unigram fallback and still match
	// themselves.
	one := h.Sketch([]string{"solo"})
	if one.Empty() {
		t.Fatal("one-token sketch should not be Empty")
	}
	if got := Jaccard(one, h.Sketch([]string{"solo"})); got != 1 {
		t.Fatalf("Jaccard of identical one-token docs = %g, want 1", got)
	}
	if got := Jaccard(one, h.Sketch([]string{"other"})); got > 0.1 {
		t.Fatalf("Jaccard of distinct one-token docs = %g, want ~0", got)
	}
	// Mismatched sizes estimate 0 instead of panicking.
	if got := Jaccard(one, NewHasher(64, CanonicalSeed).Sketch([]string{"solo"})); got != 0 {
		t.Fatalf("Jaccard of mismatched sizes = %g, want 0", got)
	}
	if got := Jaccard(nil, one); got != 0 {
		t.Fatalf("Jaccard with nil = %g, want 0", got)
	}
}

func TestIndexCandidates(t *testing.T) {
	h := NewHasher(DefaultK, CanonicalSeed)
	ix := NewIndex(DefaultK)
	docs := [][]string{
		docStems(10, 200),
		docStems(11, 200),
		docStems(12, 200),
	}
	for i, d := range docs {
		ix.Add(int32(i), h.Sketch(d))
	}
	// A near-duplicate of doc 1 must surface doc 1 as a candidate.
	q := append(append([]string{}, docs[1]...), "extra")
	cands := ix.Candidates(h.Sketch(q), nil)
	found := false
	for _, id := range cands {
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("candidates %v do not include the near-duplicate's id 1", cands)
	}
	// Candidates are distinct.
	seen := map[int32]bool{}
	for _, id := range cands {
		if seen[id] {
			t.Fatalf("duplicate candidate id %d in %v", id, cands)
		}
		seen[id] = true
	}
	// Empty sketches are neither indexed nor queried.
	ix.Add(99, h.Sketch(nil))
	if got := ix.Candidates(h.Sketch(nil), nil); len(got) != 0 {
		t.Fatalf("empty-sketch query returned %v, want none", got)
	}
}
