// Package minhash implements fixed-size min-hash sketches over
// document shingles for near-duplicate suppression during corpus
// growth, following the min-hashing construction of "Topic Discovery
// in Massive Text Corpora Based on Min-Hashing" (Fuentes-Pineda &
// Meza-Ruiz): a document's sketch is the element-wise minimum of k
// independent hash functions over its shingle set, and the fraction of
// agreeing sketch positions is an unbiased estimate of the Jaccard
// similarity between the shingle sets.
//
// Sketches are built over consecutive stem pairs (2-shingles), so they
// are independent of vocabulary ids — a sketch computed from raw text
// at append time is comparable to one computed from (or stored
// alongside) any corpus file, regardless of interning order. All
// hashing is deterministically seeded: the same document always yields
// the same sketch, on every host.
package minhash

// DefaultK is the default sketch size. 128 positions estimate Jaccard
// similarity with a standard error of 1/sqrt(128) ≈ 0.09 — enough to
// separate near-duplicates (≥0.9) from merely related documents —
// at a cost of 1 KiB per document.
const DefaultK = 128

// CanonicalSeed is the hasher seed every persisted sketch is built
// with. Pinning one seed is what makes sketches comparable across
// corpus files, appends and processes; it is part of the .tpc sketch
// section's contract and must never change.
const CanonicalSeed uint64 = 0x746f706d696e6531 // "topmine1"

// Sketch is one document's min-hash signature: K 64-bit minima. Two
// sketches are comparable only when built by Hashers with the same
// size and seed.
type Sketch []uint64

// Hasher derives k pseudo-independent hash functions from one strong
// 64-bit shingle hash via multiply-shift permutations a_i·x + b_i (odd
// a_i), the standard trick that avoids hashing every shingle k times.
type Hasher struct {
	k    int
	a, b []uint64
}

// NewHasher returns a Hasher producing k-position sketches (k <= 0
// selects DefaultK). Two Hashers with equal (k, seed) are
// interchangeable; corpus files store sketches built with the
// package-level canonical seed so they stay comparable across files.
func NewHasher(k int, seed uint64) *Hasher {
	if k <= 0 {
		k = DefaultK
	}
	h := &Hasher{k: k, a: make([]uint64, k), b: make([]uint64, k)}
	s := seed
	for i := 0; i < k; i++ {
		h.a[i] = splitmix(&s) | 1
		h.b[i] = splitmix(&s)
	}
	return h
}

// K returns the sketch size this hasher produces.
func (h *Hasher) K() int { return h.k }

// Sketch builds the min-hash signature of the document whose kept,
// stemmed tokens are stems (in reading order, segments concatenated).
// Shingles are consecutive stem pairs; a one-token document falls back
// to its single unigram shingle, and an empty document yields the
// all-max sketch, which matches nothing (including other empty
// documents — emptiness is not similarity).
func (h *Hasher) Sketch(stems []string) Sketch {
	sk := make(Sketch, h.k)
	for i := range sk {
		sk[i] = ^uint64(0)
	}
	switch n := len(stems); {
	case n == 0:
	case n == 1:
		h.fold(sk, hashShingle(stems[0], ""))
	default:
		for i := 0; i+1 < n; i++ {
			h.fold(sk, hashShingle(stems[i], stems[i+1]))
		}
	}
	return sk
}

func (h *Hasher) fold(sk Sketch, x uint64) {
	for i := range sk {
		if v := h.a[i]*x + h.b[i]; v < sk[i] {
			sk[i] = v
		}
	}
}

// Empty reports whether the sketch saw no shingles (all-max positions
// never occur for a real shingle after finalisation, up to a 2^-64
// fluke per position).
func (s Sketch) Empty() bool {
	for _, v := range s {
		if v != ^uint64(0) {
			return false
		}
	}
	return true
}

// Jaccard estimates the Jaccard similarity of the two sketched
// shingle sets as the fraction of agreeing positions. Sketches of
// mismatched sizes, empty sketches, and nil sketches estimate 0.
func Jaccard(a, b Sketch) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			if a[i] == ^uint64(0) {
				continue // both empty at this position; not evidence
			}
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// bandRows is the LSH banding width: sketches are cut into bands of
// this many positions and a document lands in one bucket per band.
// Four rows tunes the index for high thresholds — at Jaccard 0.9 a
// band collides with probability 0.9^4 ≈ 0.66, so with k/4 bands a
// true near-duplicate is essentially never missed, while documents
// below ~0.4 similarity rarely surface as candidates at all.
const bandRows = 4

// Index is a banded locality-sensitive index over sketches: Add files
// a document under one bucket per band, Candidates returns the
// documents sharing at least one bucket with a query sketch. It
// returns candidates, not matches — callers confirm with Jaccard.
type Index struct {
	k     int
	bands []map[uint64][]int32
}

// NewIndex returns an index for sketches of size k (k <= 0 selects
// DefaultK).
func NewIndex(k int) *Index {
	if k <= 0 {
		k = DefaultK
	}
	nb := k / bandRows
	if nb == 0 {
		nb = 1
	}
	ix := &Index{k: k, bands: make([]map[uint64][]int32, nb)}
	for i := range ix.bands {
		ix.bands[i] = make(map[uint64][]int32)
	}
	return ix
}

// Add files document id under the sketch's band buckets. Empty
// sketches are not indexed (empty documents never count as
// duplicates).
func (ix *Index) Add(id int32, s Sketch) {
	if len(s) != ix.k || s.Empty() {
		return
	}
	for bi := range ix.bands {
		ix.bands[bi][bandKey(s, bi)] = append(ix.bands[bi][bandKey(s, bi)], id)
	}
}

// Candidates appends to dst the distinct ids sharing at least one band
// bucket with s, in first-seen order, and returns the extended slice.
func (ix *Index) Candidates(s Sketch, dst []int32) []int32 {
	if len(s) != ix.k || s.Empty() {
		return dst
	}
	start := len(dst)
	for bi := range ix.bands {
		for _, id := range ix.bands[bi][bandKey(s, bi)] {
			dup := false
			for _, seen := range dst[start:] {
				if seen == id {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, id)
			}
		}
	}
	return dst
}

// bandKey combines one band's sketch positions into a bucket key.
func bandKey(s Sketch, band int) uint64 {
	lo := band * bandRows
	hi := lo + bandRows
	if hi > len(s) {
		hi = len(s)
	}
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range s[lo:hi] {
		h = mix64(h ^ v)
	}
	return h
}

// hashShingle hashes a stem pair into a well-mixed 64-bit value
// (FNV-1a over the pair with a separator, then a finalising mix so
// multiply-shift permutations see uniform input).
func hashShingle(a, b string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(a); i++ {
		h = (h ^ uint64(a[i])) * prime64
	}
	h = (h ^ 0x1f) * prime64 // separator: "ab","c" never collides with "a","bc"
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finaliser.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitmix advances a splitmix64 state and returns the next value —
// the seed expander for the hasher's permutation parameters.
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	return mix64(*s)
}
