package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("test_ops_total", "Operations.")
	g := NewGauge("test_depth", "Queue depth.")
	fg := NewFloatGauge("test_rate", "Rate.")
	r.Register(c, g, fg)
	c.Add(3)
	g.Set(-2)
	fg.Set(1.5)
	got := render(t, r)
	want := "# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 3\n" +
		"# HELP test_depth Queue depth.\n# TYPE test_depth gauge\ntest_depth -2\n" +
		"# HELP test_rate Rate.\n# TYPE test_rate gauge\ntest_rate 1.5\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := NewCounterVec("test_weird_total", "Weird labels.", "path")
	r.Register(v)
	v.Inc(`C:\dir`)
	v.Inc("say \"hi\"")
	v.Inc("two\nlines")
	got := render(t, r)
	for _, want := range []string{
		`test_weird_total{path="C:\\dir"} 1`,
		`test_weird_total{path="say \"hi\""} 1`,
		`test_weird_total{path="two\nlines"} 1`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing escaped sample %q in:\n%s", want, got)
		}
	}
	if err := Lint([]byte(got)); err != nil {
		t.Fatalf("lint rejects escaped output: %v\n%s", err, got)
	}
}

func TestHistogramCumulativeAndInf(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram("test_seconds", "Durations.", []float64{0.1, 1, 10})
	r.Register(h)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	got := render(t, r)
	want := "# HELP test_seconds Durations.\n# TYPE test_seconds histogram\n" +
		"test_seconds_bucket{le=\"0.1\"} 1\n" +
		"test_seconds_bucket{le=\"1\"} 3\n" +
		"test_seconds_bucket{le=\"10\"} 4\n" +
		"test_seconds_bucket{le=\"+Inf\"} 5\n" +
		"test_seconds_sum 56.05\n" +
		"test_seconds_count 5\n"
	if got != want {
		t.Fatalf("histogram mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram("test_seconds", "d", []float64{1})
	h.Observe(1) // le="1" is inclusive per the spec
	var w Writer
	h.Collect(&w)
	if s := string(w.Bytes()); !strings.Contains(s, "test_seconds_bucket{le=\"1\"} 1\n") {
		t.Fatalf("boundary observation not in inclusive bucket:\n%s", s)
	}
}

func TestHistogramVecSortedByLabel(t *testing.T) {
	r := NewRegistry()
	v := NewHistogramVec("test_lag_seconds", "Lag.", []float64{1}, "worker")
	r.Register(v)
	v.Observe(0.5, "1")
	v.Observe(2, "0")
	v.Observe(0.2, "10")
	got := render(t, r)
	i0 := strings.Index(got, `worker="0",le=`)
	i1 := strings.Index(got, `worker="1",le=`)
	i10 := strings.Index(got, `worker="10",le=`)
	if !(i0 >= 0 && i0 < i1 && i1 < i10) {
		t.Fatalf("series not sorted by label value: 0@%d 1@%d 10@%d\n%s", i0, i1, i10, got)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestCounterVecTupleSort(t *testing.T) {
	v := NewCounterVec("test_req_total", "r", "endpoint", "code")
	v.Inc("/v1/infer", "200")
	v.Inc("/v1/infer", "400")
	v.Inc("/healthz", "200")
	var w Writer
	v.Collect(&w)
	got := string(w.Bytes())
	wantOrder := []string{
		`test_req_total{endpoint="/healthz",code="200"} 1`,
		`test_req_total{endpoint="/v1/infer",code="200"} 1`,
		`test_req_total{endpoint="/v1/infer",code="400"} 1`,
	}
	last := -1
	for _, line := range wantOrder {
		i := strings.Index(got, line)
		if i < 0 || i < last {
			t.Fatalf("order wrong, want %q after %d in:\n%s", line, last, got)
		}
		last = i
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no trailing newline": "# HELP a b\n# TYPE a counter\na 1",
		"sample before TYPE":  "a 1\n",
		"bad escape":          "# HELP a b\n# TYPE a counter\na{x=\"\\q\"} 1\n",
		"bad value":           "# HELP a b\n# TYPE a counter\na bogus\n",
		"duplicate series":    "# HELP a b\n# TYPE a counter\na 1\na 2\n",
		"negative counter":    "# HELP a b\n# TYPE a counter\na -1\n",
		"missing +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"count != +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n",
		"foreign sample in family": "# HELP a b\n# TYPE a counter\nother 1\n",
		"unterminated labels":      "# HELP a b\n# TYPE a counter\na{x=\"1\" 1\n",
	}
	for name, payload := range cases {
		if err := Lint([]byte(payload)); err == nil {
			t.Errorf("%s: lint accepted bad payload:\n%s", name, payload)
		}
	}
}

func TestLintAcceptsInfValues(t *testing.T) {
	payload := "# HELP a b\n# TYPE a gauge\na +Inf\n"
	if err := Lint([]byte(payload)); err != nil {
		t.Fatalf("lint rejects +Inf gauge: %v", err)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("test_total", "t")
	c.Inc()
	r.Register(c)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "test_total 1\n") {
		t.Fatalf("payload missing sample:\n%s", buf.String())
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramVec("test_seconds", "d", []float64{0.001, 1}, "w")
	c := NewCounter("test_total", "t")
	r.Register(h, c)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(0.5, "0")
				h.Observe(2, "1")
				c.Inc()
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if err := Lint(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d: torn exposition: %v\n%s", i, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}
