package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Collector renders one or more metric families into a Writer at
// scrape time. Instruments implement it over their own state; code
// whose truth lives elsewhere (a cache, a registry) implements it as a
// CollectorFunc reading the owner live, which keeps a single source of
// truth and makes the series impossible to leave stale.
type Collector interface {
	Collect(w *Writer)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(*Writer)

func (f CollectorFunc) Collect(w *Writer) { f(w) }

// Counter is a lock-free monotonically increasing counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

func NewCounter(name, help string) *Counter {
	return &Counter{name: name, help: help}
}

func (c *Counter) Inc()          { c.v.Add(1) }
func (c *Counter) Add(n uint64)  { c.v.Add(n) }
func (c *Counter) Value() uint64 { return c.v.Load() }
func (c *Counter) Collect(w *Writer) {
	w.Family(c.name, "counter", c.help)
	w.Sample(c.name, nil, Uint(c.v.Load()))
}

// Gauge is a lock-free integer gauge.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

func NewGauge(name, help string) *Gauge {
	return &Gauge{name: name, help: help}
}

func (g *Gauge) Set(v int64)  { g.v.Store(v) }
func (g *Gauge) Add(d int64)  { g.v.Add(d) }
func (g *Gauge) Value() int64 { return g.v.Load() }
func (g *Gauge) Collect(w *Writer) {
	w.Family(g.name, "gauge", g.help)
	w.Sample(g.name, nil, Int(g.v.Load()))
}

// FloatGauge is a lock-free float gauge (rates, ages, ratios).
type FloatGauge struct {
	name, help string
	bits       atomic.Uint64
}

func NewFloatGauge(name, help string) *FloatGauge {
	return &FloatGauge{name: name, help: help}
}

func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }
func (g *FloatGauge) Value() float64 {
	return math.Float64frombits(g.bits.Load())
}
func (g *FloatGauge) Collect(w *Writer) {
	w.Family(g.name, "gauge", g.help)
	w.Sample(g.name, nil, Float(g.Value()))
}

// GaugeFunc returns a collector for a gauge family whose single sample
// is read live from f at scrape time.
func GaugeFunc(name, help string, f func() Value) Collector {
	return CollectorFunc(func(w *Writer) {
		w.Family(name, "gauge", help)
		w.Sample(name, nil, f())
	})
}

// CounterFunc returns a collector for a counter family whose single
// sample is read live from f at scrape time.
func CounterFunc(name, help string, f func() uint64) Collector {
	return CollectorFunc(func(w *Writer) {
		w.Family(name, "counter", help)
		w.Sample(name, nil, Uint(f()))
	})
}

// Histogram is a fixed-bucket cumulative histogram. One mutex guards
// the counts; an observation is nanoseconds against the milliseconds
// of the operations being timed, so contention is irrelevant.
type Histogram struct {
	name, help string
	buckets    []float64 // ascending upper bounds; +Inf implicit
	mu         sync.Mutex
	counts     []uint64 // len(buckets)+1, last is overflow
	sum        float64
	count      uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is copied; a trailing +Inf bound, if
// present, is dropped (the overflow bucket always exists).
func NewHistogram(name, help string, buckets []float64) *Histogram {
	bs := normalizeBuckets(buckets)
	return &Histogram{
		name:    name,
		help:    help,
		buckets: bs,
		counts:  make([]uint64, len(bs)+1),
	}
}

func normalizeBuckets(buckets []float64) []float64 {
	bs := append([]float64(nil), buckets...)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	if n := len(bs); n > 0 && math.IsInf(bs[n-1], +1) {
		bs = bs[:n-1]
	}
	return bs
}

func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

func (h *Histogram) Collect(w *Writer) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	w.Family(h.name, "histogram", h.help)
	w.Histogram(h.name, nil, h.buckets, counts, sum, count)
}

// vecKey joins label values with NUL, which no caller's label values
// contain and which sorts below every other byte, so lexical order of
// keys equals lexicographic order of the value tuples.
func vecKey(values []string) string { return strings.Join(values, "\x00") }

// CounterVec is a counter family keyed by label values. Series appear
// on first use and are emitted sorted by value tuple.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	m          map[string]*vecCounter
}

type vecCounter struct {
	values []string
	n      uint64
}

func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{
		name:   name,
		help:   help,
		labels: labelNames,
		m:      make(map[string]*vecCounter),
	}
}

func (v *CounterVec) Add(n uint64, labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic("obs: wrong label value count for " + v.name)
	}
	k := vecKey(labelValues)
	v.mu.Lock()
	c := v.m[k]
	if c == nil {
		c = &vecCounter{values: append([]string(nil), labelValues...)}
		v.m[k] = c
	}
	c.n += n
	v.mu.Unlock()
}

func (v *CounterVec) Inc(labelValues ...string) { v.Add(1, labelValues...) }

func (v *CounterVec) zip(values []string) []Label {
	ls := make([]Label, len(v.labels))
	for i, n := range v.labels {
		ls[i] = Label{Name: n, Value: values[i]}
	}
	return ls
}

func (v *CounterVec) Collect(w *Writer) {
	w.Family(v.name, "counter", v.help)
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		values []string
		n      uint64
	}
	rows := make([]row, len(keys))
	for i, k := range keys {
		rows[i] = row{v.m[k].values, v.m[k].n}
	}
	v.mu.Unlock()
	for _, r := range rows {
		w.Sample(v.name, v.zip(r.values), Uint(r.n))
	}
}

// HistogramVec is a histogram family keyed by label values; the le
// label is appended after the declared labels on bucket lines.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.Mutex
	m          map[string]*vecHistogram
}

type vecHistogram struct {
	values []string
	counts []uint64
	sum    float64
	count  uint64
}

func NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{
		name:    name,
		help:    help,
		labels:  labelNames,
		buckets: normalizeBuckets(buckets),
		m:       make(map[string]*vecHistogram),
	}
}

func (v *HistogramVec) Observe(val float64, labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic("obs: wrong label value count for " + v.name)
	}
	i := sort.SearchFloat64s(v.buckets, val)
	k := vecKey(labelValues)
	v.mu.Lock()
	h := v.m[k]
	if h == nil {
		h = &vecHistogram{
			values: append([]string(nil), labelValues...),
			counts: make([]uint64, len(v.buckets)+1),
		}
		v.m[k] = h
	}
	h.counts[i]++
	h.sum += val
	h.count++
	v.mu.Unlock()
}

func (v *HistogramVec) Collect(w *Writer) {
	w.Family(v.name, "histogram", v.help)
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		values []string
		counts []uint64
		sum    float64
		count  uint64
	}
	rows := make([]row, len(keys))
	for i, k := range keys {
		h := v.m[k]
		rows[i] = row{h.values, append([]uint64(nil), h.counts...), h.sum, h.count}
	}
	v.mu.Unlock()
	for _, r := range rows {
		ls := make([]Label, len(v.labels))
		for i, n := range v.labels {
			ls[i] = Label{Name: n, Value: r.values[i]}
		}
		w.Histogram(v.name, ls, v.buckets, r.counts, r.sum, r.count)
	}
}
