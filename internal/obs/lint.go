package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a text-exposition payload against the Prometheus
// 0.0.4 text format: metric and label name syntax, label-value escape
// sequences, numeric sample values, HELP/TYPE headers preceding their
// samples, no duplicate series, and — for histograms — a mandatory
// +Inf bucket, cumulative (non-decreasing) bucket counts, and a _count
// equal to the +Inf bucket. It is the parse-back test both the serve
// and train registries are pinned by.
func Lint(data []byte) error {
	type histSeries struct {
		buckets map[string]uint64 // le value -> cumulative count
		count   *uint64
		hasSum  bool
	}
	famType := map[string]string{}
	famHelp := map[string]bool{}
	var cur, curType string
	seen := map[string]bool{}
	hists := map[string]map[string]*histSeries{} // family -> series key -> state

	lineNo := 0
	text := string(data)
	for len(text) > 0 {
		lineNo++
		var line string
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			line = text[:i]
			text = text[i+1:]
		} else {
			return fmt.Errorf("line %d: missing trailing newline", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch kind {
			case "HELP":
				if famHelp[name] {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				famHelp[name] = true
			case "TYPE":
				if _, dup := famType[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: invalid type %q for %s", lineNo, rest, name)
				}
				famType[name] = rest
				cur, curType = name, rest
			}
			continue
		}

		name, labels, valStr, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, valStr)
		}
		base := name
		suffix := ""
		if curType == "histogram" && cur != name {
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				if name == cur+s {
					base, suffix = cur, s
					break
				}
			}
		}
		if base != cur {
			return fmt.Errorf("line %d: sample %s outside its family (current family %q)", lineNo, name, cur)
		}
		if famType[base] == "counter" && val < 0 {
			return fmt.Errorf("line %d: negative counter value %s", lineNo, valStr)
		}
		key := name + "{" + joinLabels(labels) + "}"
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true

		if famType[base] == "histogram" {
			series := hists[base]
			if series == nil {
				series = map[string]*histSeries{}
				hists[base] = series
			}
			le := ""
			var rest []Label
			for _, l := range labels {
				if l.Name == "le" {
					le = l.Value
				} else {
					rest = append(rest, l)
				}
			}
			sk := joinLabels(rest)
			hs := series[sk]
			if hs == nil {
				hs = &histSeries{buckets: map[string]uint64{}}
				series[sk] = hs
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				hs.buckets[le] = uint64(val)
			case "_count":
				c := uint64(val)
				hs.count = &c
			case "_sum":
				hs.hasSum = true
			default:
				return fmt.Errorf("line %d: bare sample %s in histogram family", lineNo, name)
			}
		}
	}

	for fam, series := range hists {
		for sk, hs := range series {
			inf, ok := hs.buckets["+Inf"]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", fam, sk)
			}
			if hs.count == nil || hs.hasSum == false {
				return fmt.Errorf("histogram %s{%s}: missing _sum or _count", fam, sk)
			}
			if *hs.count != inf {
				return fmt.Errorf("histogram %s{%s}: _count %d != +Inf bucket %d", fam, sk, *hs.count, inf)
			}
			type bk struct {
				ub  float64
				cum uint64
			}
			bks := make([]bk, 0, len(hs.buckets))
			for le, cum := range hs.buckets {
				ub, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("histogram %s{%s}: bad le %q", fam, sk, le)
				}
				bks = append(bks, bk{ub, cum})
			}
			sort.Slice(bks, func(i, j int) bool { return bks[i].ub < bks[j].ub })
			for i := 1; i < len(bks); i++ {
				if bks[i].cum < bks[i-1].cum {
					return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative at le=%v", fam, sk, bks[i].ub)
				}
			}
		}
	}
	return nil
}

func parseComment(line string) (kind, name, rest string, err error) {
	for _, k := range []string{"# HELP ", "# TYPE "} {
		if strings.HasPrefix(line, k) {
			body := line[len(k):]
			sp := strings.IndexByte(body, ' ')
			if sp < 0 {
				return "", "", "", fmt.Errorf("truncated %s line", strings.TrimSpace(k))
			}
			return strings.TrimSpace(k[2:]), body[:sp], body[sp+1:], nil
		}
	}
	return "", "", "", fmt.Errorf("unrecognized comment %q", line)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample splits one sample line into name, labels (unescaped) and
// the value string, rejecting malformed label syntax and invalid
// escape sequences on the way.
func parseSample(line string) (name string, labels []Label, value string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return "", nil, "", fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("label without '='")
			}
			ln := rest[:eq]
			if !validLabelName(ln) {
				return "", nil, "", fmt.Errorf("invalid label name %q", ln)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("label value for %s not quoted", ln)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' {
					if j+1 >= len(rest) {
						return "", nil, "", fmt.Errorf("dangling escape in label %s", ln)
					}
					switch rest[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("invalid escape \\%c in label %s", rest[j+1], ln)
					}
					j++
					continue
				}
				if c == '"' {
					labels = append(labels, Label{Name: ln, Value: val.String()})
					rest = rest[j+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, "", fmt.Errorf("unterminated label value for %s", ln)
			}
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	if rest == "" || rest[0] != ' ' {
		return "", nil, "", fmt.Errorf("missing value separator in %q", line)
	}
	value = rest[1:]
	if value == "" || strings.ContainsAny(value, " \t") {
		return "", nil, "", fmt.Errorf("malformed value %q", value)
	}
	return name, labels, value, nil
}

// joinLabels renders labels back into a canonical key for duplicate
// detection; the escaped form keeps distinct values distinct.
func joinLabels(labels []Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString("=")
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}
