// Package obs is the shared telemetry core: stdlib-only counters,
// gauges, fixed-bucket histograms and labeled families, rendered in
// the Prometheus text exposition format (version 0.0.4) through a
// Registry. It was extracted from the serving fleet's hand-rolled
// metrics writer so the training stack could share one exposition
// path; both sides register their series here and the wire bytes stay
// identical to what each emitted before the extraction.
//
// Exposition order is registration order — Prometheus does not care,
// but deterministic output keeps scrapes diffable in tests — and
// within a labeled family samples are sorted by label values.
package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
)

// Value is one sample value. Counters and integer gauges render with
// integer formatting ("3", not "3e+00"); float gauges and histogram
// sums render in the shortest round-trip 'g' form with IEEE infinities
// spelled +Inf/-Inf. Keeping the distinction in the type preserves the
// exact bytes the pre-extraction writers produced.
type Value struct {
	f    float64
	i    int64
	u    uint64
	kind uint8 // 0 float, 1 int64, 2 uint64
}

// Float wraps a float64 sample value.
func Float(v float64) Value { return Value{f: v} }

// Int wraps a signed integer sample value.
func Int(v int64) Value { return Value{i: v, kind: 1} }

// Uint wraps an unsigned integer sample value (counter reads).
func Uint(v uint64) Value { return Value{u: v, kind: 2} }

func (v Value) String() string {
	switch v.kind {
	case 1:
		return strconv.FormatInt(v.i, 10)
	case 2:
		return strconv.FormatUint(v.u, 10)
	}
	return FormatFloat(v.f)
}

// FormatFloat renders a float for the exposition format: shortest
// round-trip decimal, with infinities spelled the way the text format
// (and PromQL) expects.
func FormatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Label is one name="value" pair. Values are escaped at write time;
// names are the caller's responsibility (they come from a fixed set
// declared next to each instrument, not from request data).
type Label struct {
	Name  string
	Value string
}

// escapeLabel writes a label value with the three escapes the 0.0.4
// text format defines for quoted label values: backslash, double
// quote, and line feed.
func escapeLabel(buf *bytes.Buffer, v string) {
	if !strings.ContainsAny(v, "\\\"\n") {
		buf.WriteString(v)
		return
	}
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			buf.WriteString(`\\`)
		case '"':
			buf.WriteString(`\"`)
		case '\n':
			buf.WriteString(`\n`)
		default:
			buf.WriteByte(c)
		}
	}
}

// escapeHelp writes HELP text, which escapes only backslash and line
// feed (quotes are legal verbatim on comment lines).
func escapeHelp(buf *bytes.Buffer, v string) {
	if !strings.ContainsAny(v, "\\\n") {
		buf.WriteString(v)
		return
	}
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			buf.WriteString(`\\`)
		case '\n':
			buf.WriteString(`\n`)
		default:
			buf.WriteByte(c)
		}
	}
}

// Writer accumulates exposition text. Collectors render into one
// Writer per scrape; the Registry flushes it with a single Write so a
// slow scraper never holds any instrument's lock.
type Writer struct {
	buf bytes.Buffer
}

// Family emits the # HELP and # TYPE header for a metric family.
// typ is one of "counter", "gauge", "histogram".
func (w *Writer) Family(name, typ, help string) {
	w.buf.WriteString("# HELP ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	escapeHelp(&w.buf, help)
	w.buf.WriteString("\n# TYPE ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(typ)
	w.buf.WriteByte('\n')
}

// Sample emits one sample line: name{labels} value.
func (w *Writer) Sample(name string, labels []Label, v Value) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteString(l.Name)
			w.buf.WriteString(`="`)
			escapeLabel(&w.buf, l.Value)
			w.buf.WriteByte('"')
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(v.String())
	w.buf.WriteByte('\n')
}

// Histogram emits a full cumulative histogram: one _bucket line per
// upper bound, the mandatory +Inf bucket, then _sum and _count.
// counts holds per-bucket (non-cumulative) observation counts with
// counts[len(buckets)] the overflow bucket; labels (may be nil) are
// emitted before the le label on every bucket line.
func (w *Writer) Histogram(name string, labels []Label, buckets []float64, counts []uint64, sum float64, count uint64) {
	ls := make([]Label, len(labels)+1)
	copy(ls, labels)
	cum := uint64(0)
	for i, ub := range buckets {
		cum += counts[i]
		ls[len(labels)] = Label{Name: "le", Value: FormatFloat(ub)}
		w.Sample(name+"_bucket", ls, Uint(cum))
	}
	cum += counts[len(buckets)]
	ls[len(labels)] = Label{Name: "le", Value: "+Inf"}
	w.Sample(name+"_bucket", ls, Uint(cum))
	w.Sample(name+"_sum", labels, Float(sum))
	w.Sample(name+"_count", labels, Uint(count))
}

// Bytes exposes the accumulated exposition text.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }
