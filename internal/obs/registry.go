package obs

import (
	"io"
	"net/http"
	"sync"
)

// Registry is an ordered set of collectors rendered together by one
// scrape. Registration order is exposition order, so callers control
// the layout of their /metrics payload exactly.
type Registry struct {
	mu   sync.Mutex
	cols []Collector
}

func NewRegistry() *Registry { return &Registry{} }

// Register appends collectors to the exposition sequence.
func (r *Registry) Register(cs ...Collector) {
	r.mu.Lock()
	r.cols = append(r.cols, cs...)
	r.mu.Unlock()
}

// WriteText renders every registered collector into an in-memory
// buffer and writes it out in one shot: instrument locks are shared
// with hot paths, so none may be held while blocked on a scraper's
// connection.
func (r *Registry) WriteText(out io.Writer) error {
	r.mu.Lock()
	cols := make([]Collector, len(r.cols))
	copy(cols, r.cols)
	r.mu.Unlock()
	var w Writer
	for _, c := range cols {
		c.Collect(&w)
	}
	_, err := out.Write(w.Bytes())
	return err
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WriteText(w)
	})
}
