package dtrain

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"

	"topmine/internal/corpusfile"
	"topmine/internal/segment"
	"topmine/internal/topicmodel"
	"topmine/internal/xrand"
)

// WorkerOptions configures one worker run.
type WorkerOptions struct {
	// CorpusPath overrides the coordinator-sent path — for workers on
	// hosts where the .tpc lives elsewhere. Empty uses the job's path.
	CorpusPath string
	// BarrierTimeout bounds every frame exchange with the coordinator
	// (default 120s). It must cover the coordinator's slowest barrier
	// work (fold + hyperparameter optimisation) and the other shards'
	// sample time.
	BarrierTimeout time.Duration
	// Logf, when set, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

// RunWorker serves one training job over an established coordinator
// connection: it rebuilds its assigned document range from the corpus
// file (mmap doc-range view + local re-segmentation with the
// coordinator's mined phrase statistics), then answers sweep barriers
// until FINISH. A SETUP arriving mid-run means the coordinator
// recovered from a lost peer and resharded: the worker abandons its
// current shard and rebuilds from the new SETUP. The caller dials; the
// connection is closed on return.
//
// Failures split into two classes. Local and protocol failures are
// fatal and reported to the coordinator as ABORT frames before
// returning, so the run fails loudly on both sides. Connection-level
// failures — the coordinator died or stalled — wrap
// ErrCoordinatorLost, which the reconnecting loop in the public API
// treats as retryable (the coordinator may come back via Resume).
func RunWorker(conn net.Conn, opt WorkerOptions) error {
	defer conn.Close()
	if opt.BarrierTimeout <= 0 {
		opt.BarrierTimeout = 120 * time.Second
	}
	logf := func(format string, args ...any) {
		if opt.Logf != nil {
			opt.Logf(format, args...)
		}
	}
	fr := &framer{conn: conn, timeout: opt.BarrierTimeout}

	var hello []byte
	hello = binary.LittleEndian.AppendUint32(hello, protoVersion)
	if err := fr.send(fHello, hello); err != nil {
		return coordErr("hello", err)
	}
	setup, err := fr.recvExpect(fSetup)
	if err != nil {
		return coordErr("setup", err)
	}
	for {
		next, err := serveShard(fr, setup, opt, logf)
		if err != nil {
			return err
		}
		if next == nil {
			return nil
		}
		setup = next
	}
}

// serveShard handles one SETUP's worth of work: rebuild the shard,
// verify it via READY, answer sweep barriers. It returns (nil, nil)
// after FINISH, or the payload of a new SETUP when the coordinator
// resharded mid-run (elastic recovery) so the caller can start over.
func serveShard(fr *framer, payload []byte, opt WorkerOptions, logf func(string, ...any)) ([]byte, error) {
	abortf := func(format string, args ...any) error {
		err := fmt.Errorf(format, args...)
		fr.abort(err.Error())
		return err
	}
	var setup setupMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&setup); err != nil {
		return nil, abortf("dtrain: decode setup: %v", err)
	}
	if setup.Proto != protoVersion {
		return nil, abortf("dtrain: coordinator speaks protocol %d, worker %d", setup.Proto, protoVersion)
	}

	// Rebuild the shard: zero-copy doc-range view of the corpus file,
	// re-segmented locally with the coordinator's mined counts. The
	// per-document partition depends only on the document's tokens and
	// those counts, so this reproduces the coordinator's docs exactly —
	// cross-checked by the READY checksum.
	path := setup.CorpusPath
	if opt.CorpusPath != "" {
		path = opt.CorpusPath
	}
	f, err := corpusfile.Open(path)
	if err != nil {
		return nil, abortf("dtrain: open corpus %s: %v", path, err)
	}
	defer f.Close()
	sub, err := f.DocRange(setup.Lo, setup.Hi)
	if err != nil {
		return nil, abortf("dtrain: doc range [%d, %d): %v", setup.Lo, setup.Hi, err)
	}
	segs := segment.NewSegmenter(setup.Mined, segment.Options{
		Alpha:        setup.SigAlpha,
		MaxPhraseLen: setup.MaxPhraseLen,
	}).SegmentCorpus(sub)
	docs := topicmodel.DocsFromSegmentation(sub, segs)
	tokens := 0
	for i := range docs {
		tokens += docs[i].NumTokens()
	}
	logf("dtrain: worker %d/%d: shard [%d, %d), %d docs, %d tokens",
		setup.Index, setup.NumWorkers, setup.Lo, setup.Hi, len(docs), tokens)

	globals, err := fr.recvExpect(fGlobals)
	if err != nil {
		return nil, coordErr("globals", err)
	}
	gr := wireReader{data: globals}
	gv, gk := int(gr.u32()), int(gr.u32())
	if gr.err == nil && (gv != setup.V || gk != setup.K) {
		gr.err = fmt.Errorf("%w: globals are %dx%d, setup says %dx%d", ErrProtocol, gv, gk, setup.V, setup.K)
	}
	nwk := gr.i32s(make([]int32, setup.V*setup.K))
	nk := gr.i64s(make([]int64, setup.K))
	if gr.err != nil {
		return nil, abortf("dtrain: globals: %v", gr.err)
	}

	m, err := topicmodel.NewShardModel(docs, setup.V, setup.K,
		append([]float64(nil), setup.Alpha...), setup.AlphaSum, setup.Beta, setup.Z, nwk, nk)
	if err != nil {
		return nil, abortf("dtrain: shard model: %v", err)
	}

	var ready []byte
	ready = binary.LittleEndian.AppendUint32(ready, topicmodel.DocsChecksum(docs))
	ready = binary.LittleEndian.AppendUint64(ready, uint64(tokens))
	if err := fr.send(fReady, ready); err != nil {
		return nil, coordErr("ready", err)
	}

	alpha := make([]float64, setup.K)
	var out []byte
	sweeps := 0
	for {
		t, payload, err := fr.recv()
		if err != nil {
			return nil, coordErr("barrier", err)
		}
		switch t {
		case fSweep:
			r := wireReader{data: payload}
			r.u32() // iteration, for symmetry/debugging only
			base := r.u64()
			wantZ := r.u8() == 1
			alpha = r.f64s(alpha)
			alphaSum, beta, betaSum := r.f64(), r.f64(), r.f64()
			if r.err != nil {
				return nil, abortf("dtrain: sweep frame: %v", r.err)
			}
			if err := m.SetPriors(alpha, alphaSum, beta, betaSum); err != nil {
				return nil, abortf("dtrain: priors: %v", err)
			}
			t0 := time.Now()
			delta := m.ShardSweep(setup.Index, base)
			sampleNs := time.Since(t0).Nanoseconds()

			out = out[:0]
			out = binary.LittleEndian.AppendUint64(out, uint64(sampleNs))
			out = delta.AppendTo(out)
			if err := fr.send(fDelta, out); err != nil {
				return nil, coordErr("delta", err)
			}
			m.ResetShardDelta()
			if wantZ {
				out = appendShardZ(out[:0], m, len(docs))
				if err := fr.send(fCkpt, out); err != nil {
					return nil, coordErr("ckpt", err)
				}
			}

			// The post-fold rows normally follow; a SETUP here instead
			// means a peer died during this barrier and the coordinator is
			// resharding — hand it up and start over.
			t, rows, err := fr.recv()
			if err != nil {
				return nil, coordErr("rows", err)
			}
			switch t {
			case fRows:
			case fSetup:
				logf("dtrain: worker %d: resync at mid-sweep barrier", setup.Index)
				return append([]byte(nil), rows...), nil
			case fAbort:
				return nil, fmt.Errorf("dtrain: coordinator aborted: %s", string(rows))
			default:
				return nil, abortf("dtrain: unexpected frame type %d awaiting rows", t)
			}
			cr, _, err := topicmodel.DecodeCountRows(rows, setup.V, setup.K)
			if err != nil {
				return nil, abortf("dtrain: rows: %v", err)
			}
			if err := m.SetGlobalRows(cr); err != nil {
				return nil, abortf("dtrain: rows: %v", err)
			}
			sweeps++

		case fFinish:
			out = appendShardZ(out[:0], m, len(docs))
			if err := fr.send(fFinal, out); err != nil {
				return nil, coordErr("final", err)
			}
			logf("dtrain: worker %d: done after %d sweeps", setup.Index, sweeps)
			return nil, nil

		case fSetup:
			logf("dtrain: worker %d: resync after %d sweeps", setup.Index, sweeps)
			return append([]byte(nil), payload...), nil

		case fAbort:
			return nil, fmt.Errorf("dtrain: coordinator aborted: %s", string(payload))

		default:
			return nil, abortf("dtrain: unexpected frame type %d", t)
		}
	}
}

// appendShardZ encodes the shard's per-document assignments — the
// shared payload of CKPT and FINAL frames.
func appendShardZ(out []byte, m *topicmodel.Model, ndocs int) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(ndocs))
	for d := 0; d < ndocs; d++ {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Z[d])))
		out = appendI32s(out, m.Z[d])
	}
	return out
}

// coordErr classifies a coordinator-exchange failure: explicit aborts
// and protocol violations stay fatal verbatim; anything else is a
// connection-level loss, wrapped in retryable ErrCoordinatorLost.
func coordErr(op string, err error) error {
	var ae *abortError
	if errors.As(err, &ae) || errors.Is(err, ErrProtocol) {
		return fmt.Errorf("dtrain: %s: %w", op, err)
	}
	return fmt.Errorf("%w: %s: %v", ErrCoordinatorLost, op, err)
}

// Dial connects to a coordinator, retrying with jittered exponential
// backoff until the coordinator is listening or the timeout elapses —
// worker processes are routinely started before (or while) the
// coordinator binds its port, and they reconnect through the same path
// after a coordinator restart. The jitter keeps a fleet of workers
// restarted together from hammering the port in lockstep.
func Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	deadline := time.Now().Add(timeout)
	rng := xrand.New(uint64(time.Now().UnixNano()))
	backoff := 50 * time.Millisecond
	for {
		attempt := time.Until(deadline)
		if attempt > 5*time.Second {
			attempt = 5 * time.Second
		}
		if attempt <= 0 {
			attempt = time.Millisecond
		}
		conn, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			return conn, nil
		}
		// Sleep a uniform draw from [backoff/2, backoff), doubling the
		// ceiling up to 2s; give up when the next attempt would start
		// past the deadline.
		sleep := backoff/2 + time.Duration(rng.Intn(int(backoff/2)))
		if time.Now().Add(sleep).After(deadline) {
			return nil, fmt.Errorf("dtrain: dial %s: %w", addr, err)
		}
		time.Sleep(sleep)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}
