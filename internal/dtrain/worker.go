package dtrain

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"topmine/internal/corpusfile"
	"topmine/internal/segment"
	"topmine/internal/topicmodel"
)

// WorkerOptions configures one worker run.
type WorkerOptions struct {
	// CorpusPath overrides the coordinator-sent path — for workers on
	// hosts where the .tpc lives elsewhere. Empty uses the job's path.
	CorpusPath string
	// BarrierTimeout bounds every frame exchange with the coordinator
	// (default 120s). It must cover the coordinator's slowest barrier
	// work (fold + hyperparameter optimisation) and the other shards'
	// sample time.
	BarrierTimeout time.Duration
	// Logf, when set, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

// RunWorker serves one training job over an established coordinator
// connection: it rebuilds its assigned document range from the corpus
// file (mmap doc-range view + local re-segmentation with the
// coordinator's mined phrase statistics), then answers sweep barriers
// until FINISH. The caller dials; the connection is closed on return.
// Local failures are reported to the coordinator as ABORT frames
// before returning, so the run fails loudly on both sides.
func RunWorker(conn net.Conn, opt WorkerOptions) error {
	defer conn.Close()
	if opt.BarrierTimeout <= 0 {
		opt.BarrierTimeout = 120 * time.Second
	}
	logf := func(format string, args ...any) {
		if opt.Logf != nil {
			opt.Logf(format, args...)
		}
	}
	fr := &framer{conn: conn, timeout: opt.BarrierTimeout}
	abortf := func(format string, args ...any) error {
		err := fmt.Errorf(format, args...)
		fr.abort(err.Error())
		return err
	}

	var hello []byte
	hello = binary.LittleEndian.AppendUint32(hello, protoVersion)
	if err := fr.send(fHello, hello); err != nil {
		return fmt.Errorf("dtrain: hello: %w", err)
	}
	payload, err := fr.recvExpect(fSetup)
	if err != nil {
		return fmt.Errorf("dtrain: setup: %w", err)
	}
	var setup setupMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&setup); err != nil {
		return abortf("dtrain: decode setup: %v", err)
	}
	if setup.Proto != protoVersion {
		return abortf("dtrain: coordinator speaks protocol %d, worker %d", setup.Proto, protoVersion)
	}

	// Rebuild the shard: zero-copy doc-range view of the corpus file,
	// re-segmented locally with the coordinator's mined counts. The
	// per-document partition depends only on the document's tokens and
	// those counts, so this reproduces the coordinator's docs exactly —
	// cross-checked by the READY checksum.
	path := setup.CorpusPath
	if opt.CorpusPath != "" {
		path = opt.CorpusPath
	}
	f, err := corpusfile.Open(path)
	if err != nil {
		return abortf("dtrain: open corpus %s: %v", path, err)
	}
	defer f.Close()
	sub, err := f.DocRange(setup.Lo, setup.Hi)
	if err != nil {
		return abortf("dtrain: doc range [%d, %d): %v", setup.Lo, setup.Hi, err)
	}
	segs := segment.NewSegmenter(setup.Mined, segment.Options{
		Alpha:        setup.SigAlpha,
		MaxPhraseLen: setup.MaxPhraseLen,
	}).SegmentCorpus(sub)
	docs := topicmodel.DocsFromSegmentation(sub, segs)
	tokens := 0
	for i := range docs {
		tokens += docs[i].NumTokens()
	}
	logf("dtrain: worker %d/%d: shard [%d, %d), %d docs, %d tokens",
		setup.Index, setup.NumWorkers, setup.Lo, setup.Hi, len(docs), tokens)

	globals, err := fr.recvExpect(fGlobals)
	if err != nil {
		return fmt.Errorf("dtrain: globals: %w", err)
	}
	gr := wireReader{data: globals}
	gv, gk := int(gr.u32()), int(gr.u32())
	if gr.err == nil && (gv != setup.V || gk != setup.K) {
		gr.err = fmt.Errorf("%w: globals are %dx%d, setup says %dx%d", ErrProtocol, gv, gk, setup.V, setup.K)
	}
	nwk := gr.i32s(make([]int32, setup.V*setup.K))
	nk := gr.i64s(make([]int64, setup.K))
	if gr.err != nil {
		return abortf("dtrain: globals: %v", gr.err)
	}

	m, err := topicmodel.NewShardModel(docs, setup.V, setup.K,
		append([]float64(nil), setup.Alpha...), setup.AlphaSum, setup.Beta, setup.Z, nwk, nk)
	if err != nil {
		return abortf("dtrain: shard model: %v", err)
	}

	var ready []byte
	ready = binary.LittleEndian.AppendUint32(ready, topicmodel.DocsChecksum(docs))
	ready = binary.LittleEndian.AppendUint64(ready, uint64(tokens))
	if err := fr.send(fReady, ready); err != nil {
		return fmt.Errorf("dtrain: ready: %w", err)
	}

	alpha := make([]float64, setup.K)
	var out []byte
	sweeps := 0
	for {
		t, payload, err := fr.recv()
		if err != nil {
			return fmt.Errorf("dtrain: barrier: %w", err)
		}
		switch t {
		case fSweep:
			r := wireReader{data: payload}
			r.u32() // iteration, for symmetry/debugging only
			base := r.u64()
			wantNdk := r.u8() == 1
			alpha = r.f64s(alpha)
			alphaSum, beta, betaSum := r.f64(), r.f64(), r.f64()
			if r.err != nil {
				return abortf("dtrain: sweep frame: %v", r.err)
			}
			if err := m.SetPriors(alpha, alphaSum, beta, betaSum); err != nil {
				return abortf("dtrain: priors: %v", err)
			}
			t0 := time.Now()
			delta := m.ShardSweep(setup.Index, base)
			sampleNs := time.Since(t0).Nanoseconds()

			out = out[:0]
			out = binary.LittleEndian.AppendUint64(out, uint64(sampleNs))
			if wantNdk {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
			out = delta.AppendTo(out)
			if wantNdk {
				out = binary.LittleEndian.AppendUint32(out, uint32(len(docs)))
				for d := range docs {
					out = appendI32s(out, m.Ndk[d])
				}
			}
			if err := fr.send(fDelta, out); err != nil {
				return fmt.Errorf("dtrain: delta: %w", err)
			}
			m.ResetShardDelta()

			rows, err := fr.recvExpect(fRows)
			if err != nil {
				return fmt.Errorf("dtrain: rows: %w", err)
			}
			cr, _, err := topicmodel.DecodeCountRows(rows, setup.V, setup.K)
			if err != nil {
				return abortf("dtrain: rows: %v", err)
			}
			if err := m.SetGlobalRows(cr); err != nil {
				return abortf("dtrain: rows: %v", err)
			}
			sweeps++

		case fFinish:
			out = out[:0]
			out = binary.LittleEndian.AppendUint32(out, uint32(len(docs)))
			for d := range docs {
				out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Z[d])))
				out = appendI32s(out, m.Z[d])
			}
			if err := fr.send(fFinal, out); err != nil {
				return fmt.Errorf("dtrain: final: %w", err)
			}
			logf("dtrain: worker %d: done after %d sweeps", setup.Index, sweeps)
			return nil

		case fAbort:
			return fmt.Errorf("dtrain: coordinator aborted: %s", string(payload))

		default:
			return abortf("dtrain: unexpected frame type %d", t)
		}
	}
}

// Dial connects to a coordinator, retrying until the coordinator is
// listening or the timeout elapses — worker processes are routinely
// started before (or while) the coordinator binds its port.
func Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dtrain: dial %s: %w", addr, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
