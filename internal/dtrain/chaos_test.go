package dtrain

// Fault-injection coverage for the elastic/checkpoint layer: checkpoint
// round-trips and corruption sweeps, resume byte-identity, elastic
// recovery with replacement workers, a chaos proxy that kills, wedges
// or truncates worker connections mid-run, worker-side error
// classification, and the accept-loop total budget. The invariant
// every test leans on: whatever faults fire, a run either completes
// with the byte-exact model of an uninterrupted run of the same
// topology, or fails with a named error — never a hang, never silent
// divergence.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"topmine/internal/topicmodel"
)

// trainOpts is the shared schedule for the recovery tests: long enough
// to cross checkpoint and hyperparameter barriers, short enough to stay
// fast. It matches TestDistributedMatchesInProcess so the byte-identity
// baseline is the same trajectory the tentpole gate already pins.
func trainOpts() topicmodel.Options {
	return topicmodel.Options{
		K: 4, Iterations: 40, Seed: 11,
		OptimizeHyper: true, HyperEvery: 10, BurnIn: 5,
	}
}

func namedCkptErr(err error) bool {
	for _, want := range []error{ErrCkptBadMagic, ErrCkptVersion, ErrCkptTruncated, ErrCkptChecksum, ErrCkptFormat} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// TestCheckpointRoundTrip: a captured checkpoint survives the .tpd
// container byte-for-byte — decode restores every field, and the
// restored model is bit-identical to the captured one, RNG position
// included.
func TestCheckpointRoundTrip(t *testing.T) {
	fix := buildFixture(t, "20conf", 20)
	opt := topicmodel.Options{K: 3, Iterations: 8, Seed: 2, OptimizeHyper: true, HyperEvery: 4, BurnIn: 2}
	m := topicmodel.TrainParallel(fix.docs, fix.v, opt, 1)
	ck := captureCheckpoint(m, opt.Filled(), 8, topicmodel.DocsChecksum(fix.docs))

	path := filepath.Join(t.TempDir(), "ck.tpd")
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.K != ck.K || got.V != ck.V || got.Sweep != ck.Sweep ||
		got.Iterations != ck.Iterations || got.HyperEvery != ck.HyperEvery ||
		got.BurnIn != ck.BurnIn || got.OptimizeHyper != ck.OptimizeHyper ||
		got.DenseSampler != ck.DenseSampler || got.CorpusChecksum != ck.CorpusChecksum ||
		got.TotalTokens != ck.TotalTokens || got.RNG != ck.RNG ||
		got.AlphaSum != ck.AlphaSum || got.Beta != ck.Beta || got.BetaSum != ck.BetaSum {
		t.Fatalf("scalar fields did not round-trip:\ngot  %+v\nwant %+v", got, ck)
	}
	rm, err := got.restoreModel(fix.docs, fix.v)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	assertModelsIdentical(t, rm, m)
	if rm.SamplerState() != m.SamplerState() {
		t.Fatalf("RNG position did not round-trip: %v vs %v", rm.SamplerState(), m.SamplerState())
	}
}

// TestCheckpointCorruption sweeps every single-byte flip and every
// truncation length over a written .tpd and demands a named checkpoint
// error for each — no panic, no silent acceptance. The per-section CRCs
// cover the payloads, and the header/table validation covers the rest,
// so the sweep is exhaustive by construction; this pins that no
// unvalidated byte sneaks into a future format revision.
func TestCheckpointCorruption(t *testing.T) {
	fix := buildFixture(t, "20conf", 20)
	opt := topicmodel.Options{K: 3, Iterations: 5, Seed: 2}
	m := topicmodel.TrainParallel(fix.docs, fix.v, opt, 1)
	ck := captureCheckpoint(m, opt.Filled(), 3, topicmodel.DocsChecksum(fix.docs))
	path := filepath.Join(t.TempDir(), "ck.tpd")
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if _, err := decodeCheckpoint(data); err != nil {
		t.Fatalf("pristine checkpoint does not decode: %v", err)
	}

	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		_, err := decodeCheckpoint(mut)
		if err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(data))
		}
		if !namedCkptErr(err) {
			t.Fatalf("flipping byte %d: error %v does not wrap a named checkpoint error", i, err)
		}
	}
	for n := 0; n < len(data); n++ {
		_, err := decodeCheckpoint(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(data))
		}
		if !namedCkptErr(err) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap a named checkpoint error", n, err)
		}
	}

	// The same classification must reach callers going through the file
	// path (a byte-flipped file on disk, as the CI chaos step sees it).
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x40
	bad := filepath.Join(t.TempDir(), "bad.tpd")
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatalf("write mutated: %v", err)
	}
	if _, err := ReadCheckpointFile(bad); !namedCkptErr(err) {
		t.Fatalf("ReadCheckpointFile on a corrupted file: %v", err)
	}

	// A checkpoint resumed against the wrong corpus (different .tpc, or
	// different mining parameters) fails with ErrCorpusMismatch before
	// any worker is accepted — Resume's fail-fast trial restore.
	other := buildFixture(t, "20conf", 30)
	if _, err := ck.restoreModel(other.docs, other.v); !errors.Is(err, ErrCorpusMismatch) {
		t.Fatalf("restore against a different corpus: %v, want ErrCorpusMismatch", err)
	}
	otherJob := other.job
	if _, err := Resume(nil, otherJob, ck, Options{Workers: 1}); !errors.Is(err, ErrCorpusMismatch) {
		t.Fatalf("Resume against a different corpus: %v, want ErrCorpusMismatch", err)
	}
}

// drainWorkers asserts every worker goroutine terminates, returning the
// collected errors; a worker still running after the run ended is a
// propagation bug.
func drainWorkers(t *testing.T, chs []chan error, within time.Duration) []error {
	t.Helper()
	errs := make([]error, len(chs))
	for i, ch := range chs {
		select {
		case errs[i] = <-ch:
		case <-time.After(within):
			t.Fatalf("worker %d still running %v after the coordinator returned", i, within)
		}
	}
	return errs
}

// TestResumeFromCheckpoint is the crash-recovery pin: a run that dies
// mid-run (after its sweep-10 checkpoint) restarts from the .tpd with
// `Resume` and lands on the byte-exact model of a run that was never
// interrupted — and a resumed run is free to change its worker count,
// staying deterministic for the new topology.
func TestResumeFromCheckpoint(t *testing.T) {
	fix := buildFixture(t, "20conf", 120)
	opt := trainOpts()
	want := topicmodel.TrainParallel(fix.docs, fix.v, opt, 2)
	ckpt := filepath.Join(t.TempDir(), "run.tpd")

	// Run 1 crashes: worker 0 dies around sweep 14, without Elastic, so
	// the run fails — the "coordinator lost between checkpoints"
	// scenario, leaving the sweep-10 checkpoint on disk.
	ln := listen(t)
	wrap := func(i int, c net.Conn) net.Conn {
		if i != 0 {
			return c
		}
		return &dyingConn{Conn: c, limit: 34}
	}
	chs := startWorkers(t, ln.Addr().String(), 2, WorkerOptions{BarrierTimeout: 15 * time.Second}, wrap)
	job := fix.job
	job.Model = opt
	_, err := Train(ln, job, Options{
		Workers: 2, BarrierTimeout: 15 * time.Second,
		Checkpoint: CheckpointSpec{Path: ckpt, Every: 10},
	})
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("interrupted run: %v, want ErrWorkerLost", err)
	}
	drainWorkers(t, chs, 20*time.Second)

	ck, err := ReadCheckpointFile(ckpt)
	if err != nil {
		t.Fatalf("reading checkpoint of crashed run: %v", err)
	}
	if ck.Sweep != 10 {
		t.Fatalf("checkpoint is at sweep %d, want 10", ck.Sweep)
	}

	// Run 2 resumes with the same worker count. job.Model is left zero:
	// the schedule must come from the checkpoint.
	ln2 := listen(t)
	chs2 := startWorkers(t, ln2.Addr().String(), 2, WorkerOptions{}, nil)
	job2 := fix.job
	got, err := Resume(ln2, job2, ck, Options{Workers: 2, BarrierTimeout: 15 * time.Second})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	for i, werr := range drainWorkers(t, chs2, 20*time.Second) {
		if werr != nil {
			t.Fatalf("resume worker %d: %v", i, werr)
		}
	}
	assertModelsIdentical(t, got, want)

	// Runs 3 and 4 resume with a different worker count: the trajectory
	// differs from the 2-worker one (AD-LDA is deterministic per
	// topology, not across them) but must be reproducible.
	models := make([]*topicmodel.Model, 2)
	for round := range models {
		ln3 := listen(t)
		chs3 := startWorkers(t, ln3.Addr().String(), 3, WorkerOptions{}, nil)
		m3, err := Resume(ln3, fix.job, ck, Options{Workers: 3, BarrierTimeout: 15 * time.Second})
		if err != nil {
			t.Fatalf("Resume with 3 workers (round %d): %v", round, err)
		}
		drainWorkers(t, chs3, 20*time.Second)
		models[round] = m3
	}
	assertModelsIdentical(t, models[1], models[0])
}

// TestElasticRecovery: with Elastic set, a worker dying mid-run rolls
// the model back to the last barrier snapshot, a spare worker is
// re-accepted, and the run completes — byte-identical to a run that
// never lost anyone, because the recovered topology matches.
func TestElasticRecovery(t *testing.T) {
	fix := buildFixture(t, "20conf", 120)
	opt := trainOpts()
	want := topicmodel.TrainParallel(fix.docs, fix.v, opt, 2)

	ln := listen(t)
	addr := ln.Addr().String()
	wrap := func(i int, c net.Conn) net.Conn {
		if i != 0 {
			return c
		}
		return &dyingConn{Conn: c, limit: 30}
	}
	chs := startWorkers(t, addr, 2, WorkerOptions{BarrierTimeout: 15 * time.Second}, wrap)

	// The spare dials only once the run is underway, so startup
	// deterministically accepts the two original workers; it then sits
	// in the accept backlog until recovery picks it up.
	started := make(chan struct{})
	var once sync.Once
	spare := make(chan error, 1)
	go func() {
		<-started
		conn, err := Dial(addr, 10*time.Second)
		if err != nil {
			spare <- err
			return
		}
		spare <- RunWorker(conn, WorkerOptions{BarrierTimeout: 15 * time.Second})
	}()

	job := fix.job
	job.Model = opt
	recovered := 0
	got, err := Train(ln, job, Options{
		Workers: 2, BarrierTimeout: 15 * time.Second,
		Elastic: true, Checkpoint: CheckpointSpec{Every: 10},
		ReacceptTimeout: 10 * time.Second,
		SweepStats: func(st topicmodel.SweepStats) {
			once.Do(func() { close(started) })
			recovered = st.Recovered
		},
	})
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("SweepStats reported %d recovered workers, want 1", recovered)
	}
	assertModelsIdentical(t, got, want)

	errs := drainWorkers(t, append(chs, spare), 20*time.Second)
	if errs[0] == nil {
		t.Fatal("the killed worker finished cleanly")
	}
	if errs[1] != nil {
		t.Fatalf("surviving worker failed to resync: %v", errs[1])
	}
	if errs[2] != nil {
		t.Fatalf("replacement worker: %v", errs[2])
	}
}

// chaosProxy forwards a single worker connection to the coordinator and
// injects one fault in the worker→coordinator direction once a byte
// budget is spent: kill closes both sides, truncate forwards a partial
// frame first, wedge silently discards everything from then on while
// keeping the connection open (the worst case: only deadlines help).
func chaosProxy(t *testing.T, target, fault string, after int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", target)
		if err != nil {
			conn.Close()
			return
		}
		go func() {
			buf := make([]byte, 4096)
			for {
				n, err := up.Read(buf)
				if n > 0 {
					if _, werr := conn.Write(buf[:n]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}()
		sent, wedged := 0, false
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if n > 0 && !wedged {
				if sent+n >= after {
					switch fault {
					case "kill":
						conn.Close()
						up.Close()
						return
					case "truncate":
						_, _ = up.Write(buf[:after-sent])
						conn.Close()
						up.Close()
						return
					case "wedge":
						wedged = true
					}
				}
				if !wedged {
					if _, werr := up.Write(buf[:n]); werr != nil {
						conn.Close()
						return
					}
				}
			}
			sent += n
			if err != nil {
				up.Close()
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestChaosMatrix drives an elastic run through the chaos proxy across
// the fault matrix: killed mid-handshake (at READY), killed mid-sweep,
// a torn frame, and a wedged-but-open connection. Every scenario must
// recover via the spare worker and finish byte-identical to the
// uninterrupted 2-worker run, inside a hard watchdog.
func TestChaosMatrix(t *testing.T) {
	fix := buildFixture(t, "20conf", 120)
	opt := trainOpts()
	want := topicmodel.TrainParallel(fix.docs, fix.v, opt, 2)

	cases := []struct {
		fault string
		after int // worker→coordinator bytes before the fault fires
	}{
		{"kill", 30},       // mid-READY: dies during the setup handshake
		{"kill", 6000},     // mid-sweep: dies between barriers
		{"truncate", 9000}, // torn frame: partial DELTA then EOF
		{"wedge", 6000},    // alive but silent: only the barrier deadline saves the run
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s@%d", tc.fault, tc.after), func(t *testing.T) {
			ln := listen(t)
			addr := ln.Addr().String()
			proxied := chaosProxy(t, addr, tc.fault, tc.after)

			wopt := WorkerOptions{BarrierTimeout: 5 * time.Second}
			chs := make([]chan error, 3)
			for i := range chs {
				chs[i] = make(chan error, 1)
			}
			dialVia := func(i int, via string) {
				conn, err := Dial(via, 10*time.Second)
				if err != nil {
					chs[i] <- err
					return
				}
				chs[i] <- RunWorker(conn, wopt)
			}
			go dialVia(0, proxied)
			go dialVia(1, addr)
			// The spare dials only after startup accepted the two
			// originals (epoch start logs "workers connected"), so every
			// recovery — even one during the READY handshake — refills the
			// topology back to 2 workers.
			started := make(chan struct{})
			var once sync.Once
			go func() {
				<-started
				dialVia(2, addr)
			}()

			job := fix.job
			job.Model = opt
			type result struct {
				m   *topicmodel.Model
				err error
			}
			done := make(chan result, 1)
			go func() {
				m, err := Train(ln, job, Options{
					Workers: 2, BarrierTimeout: 1500 * time.Millisecond,
					Elastic: true, Checkpoint: CheckpointSpec{Every: 5},
					ReacceptTimeout: 10 * time.Second,
					Logf: func(format string, args ...any) {
						if strings.Contains(format, "workers connected") {
							once.Do(func() { close(started) })
						}
					},
				})
				done <- result{m, err}
			}()

			select {
			case res := <-done:
				if res.err != nil {
					t.Fatalf("chaos run (%s after %d bytes) failed: %v", tc.fault, tc.after, res.err)
				}
				assertModelsIdentical(t, res.m, want)
			case <-time.After(90 * time.Second):
				t.Fatalf("chaos run (%s after %d bytes) hung", tc.fault, tc.after)
			}
			errs := drainWorkers(t, chs, 30*time.Second)
			if errs[0] == nil {
				t.Fatalf("faulted worker finished cleanly despite %s", tc.fault)
			}
			if errs[1] != nil {
				t.Fatalf("direct worker: %v", errs[1])
			}
			if errs[2] != nil {
				t.Fatalf("spare worker: %v", errs[2])
			}
		})
	}
}

// TestWorkerErrorClassification pins the worker-side retryability
// split: a dead coordinator connection wraps ErrCoordinatorLost (the
// public reconnect loop's signal), while an explicit coordinator ABORT
// stays fatal with its message intact.
func TestWorkerErrorClassification(t *testing.T) {
	client, server := net.Pipe()
	server.Close()
	if err := RunWorker(client, WorkerOptions{}); !errors.Is(err, ErrCoordinatorLost) {
		t.Fatalf("dead peer: %v, want ErrCoordinatorLost", err)
	}

	client, server = net.Pipe()
	go func() {
		fr := &framer{conn: server, timeout: 10 * time.Second}
		if _, err := fr.recvExpect(fHello); err != nil {
			return
		}
		_ = fr.send(fAbort, []byte("scheduled maintenance"))
	}()
	err := RunWorker(client, WorkerOptions{BarrierTimeout: 10 * time.Second})
	if err == nil || errors.Is(err, ErrCoordinatorLost) {
		t.Fatalf("explicit abort must stay fatal, got %v", err)
	}
	if !strings.Contains(err.Error(), "scheduled maintenance") {
		t.Fatalf("abort cause lost: %v", err)
	}
}

// TestAcceptBudgetIsTotal pins the accept-loop fix: AcceptTimeout is a
// total budget for the whole startup handshake, so a connection that
// never completes HELLO cannot stretch startup past it (previously each
// accept got its own timeout, N-fold in the worst case).
func TestAcceptBudgetIsTotal(t *testing.T) {
	fix := buildFixture(t, "20conf", 20)
	ln := listen(t)
	addr := ln.Addr().String()
	go func() {
		conn, err := Dial(addr, 10*time.Second)
		if err == nil {
			_ = RunWorker(conn, WorkerOptions{BarrierTimeout: 3 * time.Second})
		}
	}()
	mute, err := net.Dial("tcp", addr) // connects but never sends HELLO
	if err != nil {
		t.Fatalf("mute dial: %v", err)
	}
	defer mute.Close()

	job := fix.job
	job.Model = topicmodel.Options{K: 2, Iterations: 2, Seed: 1}
	budget := 1 * time.Second
	start := time.Now()
	_, err = Train(ln, job, Options{Workers: 2, AcceptTimeout: budget, BarrierTimeout: 3 * time.Second})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Train succeeded without a second worker handshake")
	}
	if elapsed > budget+3*time.Second {
		t.Fatalf("startup took %v against a %v total accept budget", elapsed, budget)
	}
}
