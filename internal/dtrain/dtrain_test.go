package dtrain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"topmine/internal/corpus"
	"topmine/internal/corpusfile"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/synth"
	"topmine/internal/topicmodel"
)

// fixture is one preprocessed corpus on disk plus the coordinator-side
// view of it: the exact docs an in-process run would train on.
type fixture struct {
	path  string
	docs  []topicmodel.Doc
	v     int
	mined *phrasemine.Result
	job   Job
}

const (
	fixSigAlpha = 3.0
	fixMaxLen   = 8
)

func buildFixture(tb testing.TB, domain string, nDocs int) *fixture {
	tb.Helper()
	c := synth.GenerateCorpus(synth.Domains()[domain](),
		synth.Options{Docs: nDocs, Seed: 7}, corpus.DefaultBuildOptions())
	path := filepath.Join(tb.TempDir(), "corpus.tpc")
	if err := corpusfile.WriteFile(path, c, nil); err != nil {
		tb.Fatalf("write corpus: %v", err)
	}
	// Preprocess from the file's own view of the corpus, exactly as a
	// coordinator process would.
	f, err := corpusfile.Open(path)
	if err != nil {
		tb.Fatalf("open corpus: %v", err)
	}
	tb.Cleanup(func() { f.Close() })
	fc := f.Corpus()
	mined := phrasemine.Mine(fc, phrasemine.Options{MinSupport: 5, MaxLen: fixMaxLen, Workers: 1})
	segs := segment.NewSegmenter(mined, segment.Options{Alpha: fixSigAlpha, MaxPhraseLen: fixMaxLen}).
		SegmentCorpus(fc)
	docs := topicmodel.DocsFromSegmentation(fc, segs)
	return &fixture{
		path:  path,
		docs:  docs,
		v:     fc.Vocab.Size(),
		mined: mined,
		job: Job{
			CorpusPath:   path,
			Docs:         docs,
			VocabSize:    fc.Vocab.Size(),
			Mined:        mined,
			SigAlpha:     fixSigAlpha,
			MaxPhraseLen: fixMaxLen,
		},
	}
}

// startWorkers dials n workers at addr in goroutines, each optionally
// wrapping its connection, and returns a channel per worker carrying
// RunWorker's result.
func startWorkers(t *testing.T, addr string, n int, wopt WorkerOptions, wrap func(i int, c net.Conn) net.Conn) []chan error {
	t.Helper()
	chs := make([]chan error, n)
	for i := range chs {
		ch := make(chan error, 1)
		chs[i] = ch
		go func(i int) {
			conn, err := Dial(addr, 10*time.Second)
			if err != nil {
				ch <- err
				return
			}
			if wrap != nil {
				conn = wrap(i, conn)
			}
			ch <- RunWorker(conn, wopt)
		}(i)
	}
	return chs
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

func assertModelsIdentical(t *testing.T, got, want *topicmodel.Model) {
	t.Helper()
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("distributed model invariants: %v", err)
	}
	for d := range want.Z {
		for i := range want.Z[d] {
			if got.Z[d][i] != want.Z[d][i] {
				t.Fatalf("Z[%d][%d] = %d, want %d", d, i, got.Z[d][i], want.Z[d][i])
			}
		}
	}
	for w := range want.Nwk {
		for k := range want.Nwk[w] {
			if got.Nwk[w][k] != want.Nwk[w][k] {
				t.Fatalf("Nwk[%d][%d] = %d, want %d", w, k, got.Nwk[w][k], want.Nwk[w][k])
			}
		}
	}
	for k := range want.Nk {
		if got.Nk[k] != want.Nk[k] {
			t.Fatalf("Nk[%d] = %d, want %d", k, got.Nk[k], want.Nk[k])
		}
	}
	for k := range want.Alpha {
		if got.Alpha[k] != want.Alpha[k] {
			t.Fatalf("Alpha[%d] = %v, want %v (bits differ)", k, got.Alpha[k], want.Alpha[k])
		}
	}
	if got.AlphaSum != want.AlphaSum || got.Beta != want.Beta || got.BetaSum != want.BetaSum {
		t.Fatalf("priors differ: alphaSum %v/%v beta %v/%v betaSum %v/%v",
			got.AlphaSum, want.AlphaSum, got.Beta, want.Beta, got.BetaSum, want.BetaSum)
	}
}

// TestDistributedMatchesInProcess is the tentpole gate: a real
// multi-process-shaped run (coordinator + workers over loopback TCP,
// workers rebuilding shards from the corpus file) must land on the
// bit-exact model state of in-process SweepParallel with the same
// topology — including through hyperparameter-optimisation barriers.
func TestDistributedMatchesInProcess(t *testing.T) {
	fix := buildFixture(t, "20conf", 120)
	for _, workers := range []int{2, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opt := topicmodel.Options{
				K: 4, Iterations: 40, Seed: 11,
				OptimizeHyper: true, HyperEvery: 10, BurnIn: 5,
			}
			want := topicmodel.TrainParallel(fix.docs, fix.v, opt, workers)

			ln := listen(t)
			chs := startWorkers(t, ln.Addr().String(), workers, WorkerOptions{}, nil)
			job := fix.job
			job.Model = opt
			sweeps := 0
			got, err := Train(ln, job, Options{
				Workers: workers,
				SweepStats: func(st topicmodel.SweepStats) {
					sweeps++
					if st.Workers != workers || len(st.WorkerSample) != workers {
						t.Errorf("sweep stats shape: %+v", st)
					}
				},
			})
			if err != nil {
				t.Fatalf("Train: %v", err)
			}
			for i, ch := range chs {
				if werr := <-ch; werr != nil {
					t.Fatalf("worker %d: %v", i, werr)
				}
			}
			if sweeps != opt.Iterations {
				t.Fatalf("got %d sweep stats, want %d", sweeps, opt.Iterations)
			}
			assertModelsIdentical(t, got, want)
		})
	}
}

func TestTrainValidation(t *testing.T) {
	fix := buildFixture(t, "20conf", 10)
	job := fix.job
	job.Model = topicmodel.Options{K: 2, Iterations: 2, Seed: 1}
	if _, err := Train(nil, job, Options{Workers: 0}); err == nil {
		t.Fatal("Train with 0 workers succeeded")
	}
	if _, err := Train(nil, job, Options{Workers: len(fix.docs)}); err == nil {
		t.Fatal("Train with more workers than corpus can shard succeeded")
	}
}

// dyingConn closes its connection after a fixed number of writes,
// simulating a worker process crashing mid-run.
type dyingConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
	limit  int
}

func (c *dyingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	dead := c.writes > c.limit
	c.mu.Unlock()
	if dead {
		c.Conn.Close()
		return 0, errors.New("injected worker death")
	}
	return c.Conn.Write(p)
}

// TestWorkerDeathAborts: a worker that dies mid-training (connection
// closed between barriers) must fail the run with ErrWorkerLost —
// promptly, not after the barrier timeout, since the coordinator sees
// the closed connection immediately.
func TestWorkerDeathAborts(t *testing.T) {
	fix := buildFixture(t, "20conf", 60)
	ln := listen(t)
	// The framer writes header and payload separately: HELLO and READY
	// cost two writes each, every sweep's DELTA two more. A limit of 8
	// kills worker 0 on its third sweep, well inside the run.
	wrap := func(i int, c net.Conn) net.Conn {
		if i != 0 {
			return c
		}
		return &dyingConn{Conn: c, limit: 8}
	}
	chs := startWorkers(t, ln.Addr().String(), 2, WorkerOptions{}, wrap)
	job := fix.job
	job.Model = topicmodel.Options{K: 3, Iterations: 200, Seed: 5}
	start := time.Now()
	_, err := Train(ln, job, Options{Workers: 2, BarrierTimeout: 30 * time.Second})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("Train error = %v, want ErrWorkerLost", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("coordinator took %v to notice a dead worker", elapsed)
	}
	// The surviving worker must be released too (abort or closed conn),
	// not left hanging.
	for i, ch := range chs {
		select {
		case werr := <-ch:
			if werr == nil {
				t.Fatalf("worker %d finished cleanly after an aborted run", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d still running after coordinator abort", i)
		}
	}
}

// stallConn stops delivering writes after a fixed count without
// closing the connection — the pathological case where a worker
// process is alive but wedged. Only the barrier deadline can save the
// coordinator here.
type stallConn struct {
	net.Conn
	mu      sync.Mutex
	writes  int
	limit   int
	release chan struct{}
}

func (c *stallConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	stalled := c.writes > c.limit
	c.mu.Unlock()
	if stalled {
		<-c.release
		return 0, errors.New("stalled write released")
	}
	return c.Conn.Write(p)
}

func TestWorkerStallTimesOut(t *testing.T) {
	fix := buildFixture(t, "20conf", 60)
	ln := listen(t)
	release := make(chan struct{})
	defer close(release)
	wrap := func(i int, c net.Conn) net.Conn {
		if i != 0 {
			return c
		}
		return &stallConn{Conn: c, limit: 8, release: release}
	}
	startWorkers(t, ln.Addr().String(), 2, WorkerOptions{}, wrap)
	job := fix.job
	job.Model = topicmodel.Options{K: 3, Iterations: 200, Seed: 5}
	barrier := 1500 * time.Millisecond
	start := time.Now()
	_, err := Train(ln, job, Options{Workers: 2, BarrierTimeout: barrier})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("Train error = %v, want ErrWorkerLost", err)
	}
	if elapsed > barrier+8*time.Second {
		t.Fatalf("coordinator took %v to time out a stalled worker (barrier %v)", elapsed, barrier)
	}
}

// TestWorkerAbortPropagates: a worker that fails locally (here: its
// corpus path does not resolve) reports the cause in an ABORT frame,
// and the coordinator surfaces that exact cause instead of a generic
// connection error.
func TestWorkerAbortPropagates(t *testing.T) {
	fix := buildFixture(t, "20conf", 60)
	ln := listen(t)
	wopt := func(i int) WorkerOptions {
		if i == 1 {
			return WorkerOptions{CorpusPath: filepath.Join(t.TempDir(), "missing.tpc")}
		}
		return WorkerOptions{}
	}
	for i := 0; i < 2; i++ {
		go func(i int) {
			conn, err := Dial(ln.Addr().String(), 10*time.Second)
			if err != nil {
				return
			}
			_ = RunWorker(conn, wopt(i))
		}(i)
	}
	job := fix.job
	job.Model = topicmodel.Options{K: 3, Iterations: 5, Seed: 5}
	_, err := Train(ln, job, Options{Workers: 2, BarrierTimeout: 30 * time.Second})
	if err == nil {
		t.Fatal("Train succeeded with a worker that cannot open the corpus")
	}
	if errors.Is(err, ErrWorkerLost) {
		t.Fatalf("worker abort misclassified as lost connection: %v", err)
	}
	if !strings.Contains(err.Error(), "aborted") || !strings.Contains(err.Error(), "open corpus") {
		t.Fatalf("abort cause not propagated: %v", err)
	}
}

// TestShardMismatchAborts: a worker whose rebuilt shard does not match
// the coordinator's documents must be rejected at the READY checksum
// barrier, before any sweep runs. Worker 1 is a minimal in-test
// protocol speaker that reports a bogus checksum.
func TestShardMismatchAborts(t *testing.T) {
	fix := buildFixture(t, "20conf", 60)
	ln := listen(t)
	go func() {
		conn, err := Dial(ln.Addr().String(), 10*time.Second)
		if err != nil {
			return
		}
		defer conn.Close()
		_ = RunWorker(conn, WorkerOptions{})
	}()
	go func() {
		conn, err := Dial(ln.Addr().String(), 10*time.Second)
		if err != nil {
			return
		}
		defer conn.Close()
		fr := &framer{conn: conn, timeout: 10 * time.Second}
		var hello []byte
		hello = binary.LittleEndian.AppendUint32(hello, protoVersion)
		_ = fr.send(fHello, hello)
		if _, err := fr.recvExpect(fSetup); err != nil {
			return
		}
		if _, err := fr.recvExpect(fGlobals); err != nil {
			return
		}
		var ready []byte
		ready = binary.LittleEndian.AppendUint32(ready, 0xdeadbeef)
		ready = binary.LittleEndian.AppendUint64(ready, 1)
		_ = fr.send(fReady, ready)
		_, _, _ = fr.recv() // coordinator's abort
	}()
	job := fix.job
	job.Model = topicmodel.Options{K: 3, Iterations: 5, Seed: 5}
	_, err := Train(ln, job, Options{Workers: 2, BarrierTimeout: 30 * time.Second})
	if err == nil {
		t.Fatal("Train succeeded with a worker reporting a wrong shard checksum")
	}
	if !strings.Contains(err.Error(), "shard mismatch") {
		t.Fatalf("checksum failure not reported as shard mismatch: %v", err)
	}
}
