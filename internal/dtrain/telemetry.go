package dtrain

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"topmine/internal/obs"
)

// trainBuckets spans sub-millisecond barrier phases on toy corpora up
// to multi-minute sweeps on corpora that page.
var trainBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Progress is one atomic snapshot of a coordinator's run state — the
// payload of the status plane's /v1/progress endpoint. WorkerLagMs is
// indexed by the current epoch's worker indices; after an elastic
// re-shard the indices (and the slice length) change with the
// topology. Age and elapsed fields are computed at read time from the
// monotonic clock.
type Progress struct {
	// Phase is one of "waiting" (accepting workers), "training",
	// "recovering" (rolling back after a lost worker), "done", "failed".
	Phase       string `json:"phase"`
	Sweep       int    `json:"sweep"`
	TotalSweeps int    `json:"total_sweeps"`
	Workers     int    `json:"workers"`
	// TokensPerSec is the last completed sweep's sampling throughput
	// (corpus tokens over the sweep's sample+reconcile+checkpoint wall
	// time).
	TokensPerSec float64 `json:"tokens_per_sec"`
	// WorkerLagMs is each worker's barrier lag on the last sweep: how
	// long after the first worker's DELTA its own arrived. The gating
	// (slowest) worker holds the maximum.
	WorkerLagMs              []float64 `json:"worker_lag_ms"`
	LastCheckpointSweep      int       `json:"last_checkpoint_sweep"`
	LastCheckpointAgeSeconds float64   `json:"last_checkpoint_age_seconds"`
	Recoveries               int       `json:"recoveries"`
	RecoveredWorkers         int       `json:"recovered_workers"`
	ElapsedSeconds           float64   `json:"elapsed_seconds"`
	Error                    string    `json:"error,omitempty"`
}

// progSnap is the immutable snapshot behind the atomic pointer; the
// monotonic times ride alongside so ages can be materialised per read.
type progSnap struct {
	p          Progress
	lastCkptAt time.Time
}

// Telemetry is a coordinator run's observability plane: an
// obs.Registry of training series, an atomically swapped progress
// snapshot behind /v1/progress, and an optional structured trace log
// (one JSON line per run/setup/delta/sweep/checkpoint/recovery/finish
// event, timestamped with the monotonic clock). All instrument updates
// happen on the coordinator's own goroutine after each barrier — the
// per-worker barrier path only stamps arrival times into pre-sized
// slices — so a scrape never contends with the sweep loop. A nil
// *Telemetry is valid and inert: every method no-ops.
type Telemetry struct {
	start time.Time
	reg   *obs.Registry

	sweep        *obs.Gauge
	totalSweeps  *obs.Gauge
	sweepsTotal  *obs.Counter
	workers      *obs.Gauge
	tokensTotal  *obs.Counter
	tokensPerSec *obs.FloatGauge
	sampleHist   *obs.Histogram
	reconcile    *obs.Histogram
	ckptWrite    *obs.Histogram
	ckptSweep    *obs.Gauge
	recoveries   *obs.Counter
	reaccepted   *obs.Counter
	deltaBytes   *obs.Counter
	deltaRows    *obs.Counter
	workerLag    *obs.HistogramVec
	workerSample *obs.HistogramVec

	snap atomic.Pointer[progSnap]

	traceMu sync.Mutex
	trace   io.Writer
}

// NewTelemetry builds the training observability plane. trace, when
// non-nil, receives the structured event log (callers own its
// lifetime; writes are serialised here).
func NewTelemetry(trace io.Writer) *Telemetry {
	t := &Telemetry{
		start: time.Now(),
		reg:   obs.NewRegistry(),
		trace: trace,
		sweep: obs.NewGauge("topmine_train_sweep",
			"Last completed training sweep (rewinds on elastic rollback)."),
		totalSweeps: obs.NewGauge("topmine_train_total_sweeps",
			"Sweeps in the training schedule."),
		sweepsTotal: obs.NewCounter("topmine_train_sweeps_total",
			"Sweep barriers completed, including sweeps replayed after recoveries."),
		workers: obs.NewGauge("topmine_train_workers",
			"Workers in the current epoch's topology."),
		tokensTotal: obs.NewCounter("topmine_train_tokens_total",
			"Corpus tokens sampled across all completed sweeps."),
		tokensPerSec: obs.NewFloatGauge("topmine_train_tokens_per_second",
			"Sampling throughput of the last completed sweep."),
		sampleHist: obs.NewHistogram("topmine_train_sample_seconds",
			"Per-sweep barrier wait: sweep start to the slowest worker's delta.", trainBuckets),
		reconcile: obs.NewHistogram("topmine_train_reconcile_seconds",
			"Per-sweep delta fold + row rebroadcast (and hyperparameter update).", trainBuckets),
		ckptWrite: obs.NewHistogram("topmine_train_checkpoint_write_seconds",
			"On-disk .tpd checkpoint write latency.", trainBuckets),
		ckptSweep: obs.NewGauge("topmine_train_checkpoint_last_sweep",
			"Sweep of the last on-disk checkpoint (0 = none yet)."),
		recoveries: obs.NewCounter("topmine_train_recoveries_total",
			"Elastic recovery rounds: lost worker, rollback, re-shard."),
		reaccepted: obs.NewCounter("topmine_train_recovered_workers_total",
			"Replacement workers re-accepted across all recoveries."),
		deltaBytes: obs.NewCounter("topmine_train_delta_bytes_total",
			"DELTA payload bytes received from workers."),
		deltaRows: obs.NewCounter("topmine_train_delta_rows_total",
			"Sparse word-topic rows received in worker deltas."),
		workerLag: obs.NewHistogramVec("topmine_train_worker_barrier_lag_seconds",
			"Per-worker barrier lag: delta arrival after the sweep's first arrival.",
			trainBuckets, "worker"),
		workerSample: obs.NewHistogramVec("topmine_train_worker_sample_seconds",
			"Per-worker self-reported shard sample time.",
			trainBuckets, "worker"),
	}
	t.reg.Register(
		t.sweep, t.totalSweeps, t.sweepsTotal, t.workers,
		t.tokensTotal, t.tokensPerSec,
		t.sampleHist, t.reconcile, t.ckptWrite, t.ckptSweep,
		obs.GaugeFunc("topmine_train_checkpoint_age_seconds",
			"Seconds since the last on-disk checkpoint (0 = none yet).",
			func() obs.Value {
				if s := t.snap.Load(); s != nil && !s.lastCkptAt.IsZero() {
					return obs.Float(time.Since(s.lastCkptAt).Seconds())
				}
				return obs.Float(0)
			}),
		t.recoveries, t.reaccepted, t.deltaBytes, t.deltaRows,
		t.workerLag, t.workerSample,
		obs.GaugeFunc("topmine_train_uptime_seconds",
			"Seconds since the telemetry plane was constructed.",
			func() obs.Value { return obs.Float(time.Since(t.start).Seconds()) }),
	)
	return t
}

// Registry exposes the training series for embedding into a larger
// exposition (tests, future multi-run daemons).
func (t *Telemetry) Registry() *obs.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Progress returns the latest snapshot with live age/elapsed fields.
func (t *Telemetry) Progress() Progress {
	if t == nil {
		return Progress{}
	}
	s := t.snap.Load()
	if s == nil {
		return Progress{Phase: "waiting"}
	}
	p := s.p
	if !s.lastCkptAt.IsZero() {
		p.LastCheckpointAgeSeconds = roundMs(time.Since(s.lastCkptAt)) / 1000
	}
	p.ElapsedSeconds = roundMs(time.Since(t.start)) / 1000
	return p
}

// Handler serves the status plane: /metrics (Prometheus text),
// /v1/progress (JSON) and /debug/pprof/*.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", t.reg.Handler())
	mux.HandleFunc("/v1/progress", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t.Progress())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// roundMs converts a duration to milliseconds with 3 decimals, the
// precision every trace timestamp and duration field carries.
func roundMs(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

func (t *Telemetry) now() float64 { return roundMs(time.Since(t.start)) }

// emit marshals one trace event and appends it to the trace log.
func (t *Telemetry) emit(ev any) {
	if t == nil || t.trace == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	b = append(b, '\n')
	t.traceMu.Lock()
	t.trace.Write(b)
	t.traceMu.Unlock()
}

// swap installs a new progress snapshot derived from the current one.
func (t *Telemetry) swap(f func(*progSnap)) {
	var next progSnap
	if cur := t.snap.Load(); cur != nil {
		next = *cur
	}
	f(&next)
	t.snap.Store(&next)
}

// Trace event shapes. Every event carries ev (the discriminator) and
// t_ms, milliseconds since the run started on the monotonic clock.
type traceRun struct {
	Ev             string  `json:"ev"` // "run"
	TMs            float64 `json:"t_ms"`
	TotalSweeps    int     `json:"total_sweeps"`
	StartSweep     int     `json:"start_sweep"`
	TokensPerSweep int64   `json:"tokens_per_sweep"`
	WantWorkers    int     `json:"want_workers"`
	Resumed        bool    `json:"resumed,omitempty"`
}

type traceSetup struct {
	Ev        string  `json:"ev"` // "setup"
	TMs       float64 `json:"t_ms"`
	FromSweep int     `json:"from_sweep"`
	Workers   int     `json:"workers"`
}

type traceDelta struct {
	Ev        string  `json:"ev"` // "delta"
	TMs       float64 `json:"t_ms"`
	Sweep     int     `json:"sweep"`
	Worker    int     `json:"worker"`
	ArrivalMs float64 `json:"arrival_ms"` // since sweep broadcast
	LagMs     float64 `json:"lag_ms"`     // since first arrival this sweep
	SampleMs  float64 `json:"sample_ms"`  // worker's self-reported sample time
	Bytes     int64   `json:"bytes"`
	Rows      int64   `json:"rows"`
}

type traceSweep struct {
	Ev           string  `json:"ev"` // "sweep"
	TMs          float64 `json:"t_ms"`
	Sweep        int     `json:"sweep"`
	Workers      int     `json:"workers"`
	SampleMs     float64 `json:"sample_ms"`
	ReconcileMs  float64 `json:"reconcile_ms"`
	CheckpointMs float64 `json:"checkpoint_ms,omitempty"`
	GatingWorker int     `json:"gating_worker"`
	GatingLagMs  float64 `json:"gating_lag_ms"`
	TokensPerSec float64 `json:"tokens_per_sec"`
}

type traceCheckpoint struct {
	Ev      string  `json:"ev"` // "checkpoint"
	TMs     float64 `json:"t_ms"`
	Sweep   int     `json:"sweep"`
	WriteMs float64 `json:"write_ms"`
	Path    string  `json:"path"`
}

type traceRecovery struct {
	Ev            string  `json:"ev"` // "recovery"
	TMs           float64 `json:"t_ms"`
	RollbackSweep int     `json:"rollback_sweep"`
	LostWorker    int     `json:"lost_worker"`
	Survivors     int     `json:"survivors"`
	Reaccepted    int     `json:"reaccepted"`
	Cause         string  `json:"cause"`
}

type traceFinish struct {
	Ev    string  `json:"ev"` // "finish"
	TMs   float64 `json:"t_ms"`
	Error string  `json:"error,omitempty"`
}

// sweepObs is everything the coordinator measured for one completed
// sweep barrier. The slices are the coordinator's reusable per-epoch
// buffers — consumed synchronously, never retained.
type sweepObs struct {
	sweep       int
	totalSweeps int
	workers     int
	sample      time.Duration
	reconcile   time.Duration
	checkpoint  time.Duration
	arrivalNs   []int64 // per-worker DELTA arrival, ns since broadcast
	sampleNs    []int64 // per-worker self-reported sample ns
	deltaBytes  []int64
	deltaRows   []int64
	tokens      int64 // corpus tokens sampled per sweep
	recoveries  int
	recovered   int
}

func (t *Telemetry) runStarted(totalSweeps, startSweep int, tokensPerSweep int64, wantWorkers int, resumed bool) {
	if t == nil {
		return
	}
	t.totalSweeps.Set(int64(totalSweeps))
	t.swap(func(s *progSnap) {
		s.p.Phase = "waiting"
		s.p.Sweep = startSweep
		s.p.TotalSweeps = totalSweeps
	})
	t.emit(traceRun{Ev: "run", TMs: t.now(), TotalSweeps: totalSweeps,
		StartSweep: startSweep, TokensPerSweep: tokensPerSweep,
		WantWorkers: wantWorkers, Resumed: resumed})
}

func (t *Telemetry) epochStarted(workers, fromSweep int) {
	if t == nil {
		return
	}
	t.workers.Set(int64(workers))
	t.swap(func(s *progSnap) {
		s.p.Phase = "training"
		s.p.Workers = workers
	})
	t.emit(traceSetup{Ev: "setup", TMs: t.now(), FromSweep: fromSweep, Workers: workers})
}

func (t *Telemetry) sweepDone(o sweepObs) {
	if t == nil {
		return
	}
	tms := t.now()
	minArr := int64(math.MaxInt64)
	for _, a := range o.arrivalNs[:o.workers] {
		if a < minArr {
			minArr = a
		}
	}
	gating, gatingLag := 0, int64(0)
	lagMs := make([]float64, o.workers)
	var bytes, rows int64
	for i := 0; i < o.workers; i++ {
		lag := o.arrivalNs[i] - minArr
		if lag > gatingLag {
			gating, gatingLag = i, lag
		}
		lagMs[i] = roundMs(time.Duration(lag))
		bytes += o.deltaBytes[i]
		rows += o.deltaRows[i]
		wl := strconv.Itoa(i)
		t.workerLag.Observe(time.Duration(lag).Seconds(), wl)
		t.workerSample.Observe(time.Duration(o.sampleNs[i]).Seconds(), wl)
		t.emit(traceDelta{Ev: "delta", TMs: tms, Sweep: o.sweep, Worker: i,
			ArrivalMs: roundMs(time.Duration(o.arrivalNs[i])),
			LagMs:     lagMs[i],
			SampleMs:  roundMs(time.Duration(o.sampleNs[i])),
			Bytes:     o.deltaBytes[i], Rows: o.deltaRows[i]})
	}
	wall := o.sample + o.reconcile + o.checkpoint
	tps := 0.0
	if wall > 0 {
		tps = float64(o.tokens) / wall.Seconds()
	}

	t.sweep.Set(int64(o.sweep))
	t.sweepsTotal.Inc()
	t.workers.Set(int64(o.workers))
	t.tokensTotal.Add(uint64(o.tokens))
	t.tokensPerSec.Set(tps)
	t.sampleHist.Observe(o.sample.Seconds())
	t.reconcile.Observe(o.reconcile.Seconds())
	if o.checkpoint > 0 {
		t.ckptWrite.Observe(o.checkpoint.Seconds())
	}
	t.deltaBytes.Add(uint64(bytes))
	t.deltaRows.Add(uint64(rows))

	t.swap(func(s *progSnap) {
		s.p.Phase = "training"
		s.p.Sweep = o.sweep
		s.p.TotalSweeps = o.totalSweeps
		s.p.Workers = o.workers
		s.p.TokensPerSec = tps
		s.p.WorkerLagMs = lagMs
		s.p.Recoveries = o.recoveries
		s.p.RecoveredWorkers = o.recovered
	})
	t.emit(traceSweep{Ev: "sweep", TMs: tms, Sweep: o.sweep, Workers: o.workers,
		SampleMs:    roundMs(o.sample),
		ReconcileMs: roundMs(o.reconcile), CheckpointMs: roundMs(o.checkpoint),
		GatingWorker: gating, GatingLagMs: roundMs(time.Duration(gatingLag)),
		TokensPerSec: tps})
}

func (t *Telemetry) checkpointWritten(sweep int, write time.Duration, path string) {
	if t == nil {
		return
	}
	t.ckptSweep.Set(int64(sweep))
	now := time.Now()
	t.swap(func(s *progSnap) {
		s.p.LastCheckpointSweep = sweep
		s.lastCkptAt = now
	})
	t.emit(traceCheckpoint{Ev: "checkpoint", TMs: t.now(), Sweep: sweep,
		WriteMs: roundMs(write), Path: path})
}

func (t *Telemetry) recoveryDone(rollbackSweep, lostWorker, survivors, reaccepted int, cause string) {
	if t == nil {
		return
	}
	t.recoveries.Inc()
	t.reaccepted.Add(uint64(reaccepted))
	t.swap(func(s *progSnap) {
		s.p.Phase = "recovering"
		s.p.Sweep = rollbackSweep
		s.p.Recoveries++
		s.p.RecoveredWorkers += reaccepted
	})
	t.emit(traceRecovery{Ev: "recovery", TMs: t.now(), RollbackSweep: rollbackSweep,
		LostWorker: lostWorker, Survivors: survivors, Reaccepted: reaccepted, Cause: cause})
}

func (t *Telemetry) runFinished(err error) {
	if t == nil {
		return
	}
	msg := ""
	phase := "done"
	if err != nil {
		msg = err.Error()
		phase = "failed"
	}
	t.swap(func(s *progSnap) {
		s.p.Phase = phase
		s.p.Error = msg
	})
	t.emit(traceFinish{Ev: "finish", TMs: t.now(), Error: msg})
}
