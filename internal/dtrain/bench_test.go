package dtrain

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"topmine/internal/topicmodel"
)

// TestMain doubles as the worker-process entry point: when
// DTRAIN_WORKER_ADDR is set, the test binary dials the coordinator and
// serves one training job instead of running tests. That lets
// BenchmarkDistributedSweep measure genuine multi-process training —
// separate address spaces, real loopback TCP — without shipping a
// separate worker binary.
func TestMain(m *testing.M) {
	if addr := os.Getenv("DTRAIN_WORKER_ADDR"); addr != "" {
		conn, err := Dial(addr, 30*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtrain bench worker:", err)
			os.Exit(1)
		}
		if err := RunWorker(conn, WorkerOptions{}); err != nil {
			fmt.Fprintln(os.Stderr, "dtrain bench worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// BenchmarkDistributedSweep — the distributed training headline. One
// op is a full coordinator-side run (spawn workers, ship state, train,
// collect); tokens/s is computed from the coordinator's per-sweep
// barrier timings only (sample wait + reconcile), so process spawn and
// corpus preprocessing do not pollute the scaling ratio between worker
// counts. On multi-core machines the 2-worker figure should approach
// 2x the 1-worker figure; a single-core machine timeshares the worker
// processes and shows ~1x.
func BenchmarkDistributedSweep(b *testing.B) {
	const benchSweeps = 15
	exe, err := os.Executable()
	if err != nil {
		b.Fatalf("executable: %v", err)
	}
	fix := buildFixture(b, "dblp-abstracts", 400)
	tokens := 0
	for i := range fix.docs {
		tokens += fix.docs[i].NumTokens()
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("K96/workers%d", workers), func(b *testing.B) {
			var sweepTime time.Duration
			for i := 0; i < b.N; i++ {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatalf("listen: %v", err)
				}
				cmds := make([]*exec.Cmd, workers)
				for w := range cmds {
					cmd := exec.Command(exe, "-test.run=^$")
					cmd.Env = append(os.Environ(), "DTRAIN_WORKER_ADDR="+ln.Addr().String())
					cmd.Stderr = os.Stderr
					if err := cmd.Start(); err != nil {
						b.Fatalf("start worker: %v", err)
					}
					cmds[w] = cmd
				}
				job := fix.job
				job.Model = topicmodel.Options{K: 96, Iterations: benchSweeps, Seed: 42}
				_, err = Train(ln, job, Options{
					Workers: workers,
					SweepStats: func(st topicmodel.SweepStats) {
						sweepTime += st.Sample + st.Reconcile
					},
				})
				if err != nil {
					b.Fatalf("Train: %v", err)
				}
				for _, cmd := range cmds {
					if err := cmd.Wait(); err != nil {
						b.Fatalf("worker exit: %v", err)
					}
				}
				ln.Close()
			}
			b.ReportMetric(float64(tokens*benchSweeps*b.N)/sweepTime.Seconds(), "tokens/s")
		})
	}
}
