// Package dtrain implements multi-process AD-LDA training: a
// coordinator that owns the full model and the sweep schedule, and
// workers that each train one contiguous document range of a .tpc
// corpus file against globals frozen at the sweep barrier.
//
// The protocol (one TCP/loopback connection per worker) is a strict
// lockstep of length-prefixed, CRC-checked frames, reusing the framing
// idiom of internal/corpusfile's section container:
//
//	worker → HELLO                    protocol version
//	coord  → SETUP                    doc range, priors, shard Z, mined phrases (gob)
//	coord  → GLOBALS                  dense word-topic counts + topic totals
//	worker → READY                    shard checksum — worker rebuilt the same docs
//	per sweep:
//	  coord  → SWEEP                  iteration, RNG base, wantZ flag, current priors
//	  worker → DELTA                  sparse N_wk delta
//	  worker → CKPT                   full shard Z (only when SWEEP set wantZ)
//	  coord  → ROWS                   post-fold values of all touched rows
//	coord  → FINISH; worker → FINAL   final shard assignments
//	either → ABORT                    named failure, human-readable cause
//
// The SWEEP wantZ flag is set at hyperparameter-optimization barriers
// (the coordinator recomputes every document-topic row from the
// uploaded assignments) and at checkpoint barriers (the coordinator
// snapshots the globally synchronized state, in memory for elastic
// recovery and optionally to a .tpd file). A coordinator recovering
// from a lost worker re-sends SETUP mid-run; workers treat SETUP at
// any point as "abandon the current shard and resync".
//
// Every draw a worker makes replicates the corresponding in-process
// SweepParallel goroutine bit for bit (same RNG stream, same frozen
// globals, same visit order), so a distributed run's trained model —
// and its rendered topics — is byte-identical to SweepParallel with
// the same topology (worker count, shard ranges, seed). Output still
// differs from the serial sampler's: that is the AD-LDA approximation,
// deterministic per topology, not a bug.
package dtrain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"time"
)

const (
	protoVersion = 2
	headerSize   = 16
	maxFrame     = 1 << 30
)

var frameMagic = [4]byte{'t', 'p', 'd', 'F'}

// Frame types.
const (
	fHello byte = iota + 1
	fSetup
	fGlobals
	fReady
	fSweep
	fDelta
	fRows
	fFinish
	fFinal
	fAbort
	fCkpt
)

var (
	// ErrWorkerLost is returned by the coordinator when a worker
	// connection dies or misses a barrier deadline mid-run. Shard
	// assignments live only in the worker, so the run cannot continue;
	// it aborts loudly instead of hanging.
	ErrWorkerLost = errors.New("dtrain: worker lost")
	// ErrProtocol marks a malformed frame: bad magic, CRC mismatch, or
	// an unexpected frame type.
	ErrProtocol = errors.New("dtrain: protocol error")
	// ErrCoordinatorLost is returned by RunWorker when the coordinator
	// connection dies or misses a barrier deadline. It marks the one
	// retryable worker-side failure class: the coordinator may have
	// restarted (possibly resuming from a checkpoint), so the public
	// worker loop can dial again, unlike explicit aborts or protocol
	// violations, which stay fatal.
	ErrCoordinatorLost = errors.New("dtrain: coordinator lost")
)

// abortError carries the other side's ABORT message.
type abortError struct{ msg string }

func (e *abortError) Error() string { return "peer aborted: " + e.msg }

// framer sends and receives frames over one connection with a
// per-operation deadline. The receive buffer is reused; a frame's
// payload is valid until the next recv.
type framer struct {
	conn    net.Conn
	timeout time.Duration
	hdr     [headerSize]byte
	buf     []byte
}

func (f *framer) send(t byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, len(payload))
	}
	if f.timeout > 0 {
		if err := f.conn.SetWriteDeadline(time.Now().Add(f.timeout)); err != nil {
			return err
		}
	}
	var hdr [headerSize]byte
	copy(hdr[:4], frameMagic[:])
	hdr[4] = t
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(payload))
	if _, err := f.conn.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := f.conn.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func (f *framer) recv() (byte, []byte, error) {
	if f.timeout > 0 {
		if err := f.conn.SetReadDeadline(time.Now().Add(f.timeout)); err != nil {
			return 0, nil, err
		}
	}
	if _, err := io.ReadFull(f.conn, f.hdr[:]); err != nil {
		return 0, nil, err
	}
	if [4]byte(f.hdr[:4]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad frame magic %q", ErrProtocol, f.hdr[:4])
	}
	t := f.hdr[4]
	n := binary.LittleEndian.Uint32(f.hdr[8:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, n)
	}
	if cap(f.buf) < int(n) {
		f.buf = make([]byte, n)
	}
	payload := f.buf[:n]
	if _, err := io.ReadFull(f.conn, payload); err != nil {
		return 0, nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(f.hdr[12:]) {
		return 0, nil, fmt.Errorf("%w: frame CRC mismatch", ErrProtocol)
	}
	return t, payload, nil
}

// recvExpect receives one frame of the given type; an ABORT frame
// surfaces as *abortError, anything else as ErrProtocol.
func (f *framer) recvExpect(want byte) ([]byte, error) {
	t, payload, err := f.recv()
	if err != nil {
		return nil, err
	}
	if t == fAbort {
		return nil, &abortError{msg: string(payload)}
	}
	if t != want {
		return nil, fmt.Errorf("%w: got frame type %d, want %d", ErrProtocol, t, want)
	}
	return payload, nil
}

// abortTimeout bounds the best-effort ABORT write. Failure propagation
// fans out to every surviving peer; with the regular BarrierTimeout a
// single wedged connection (full TCP window, stalled reader) could
// stall that fan-out for minutes, so the courtesy notification gets its
// own short budget instead.
const abortTimeout = 2 * time.Second

// abort best-effort sends an ABORT frame carrying the cause, bounded
// by abortTimeout rather than the frame timeout.
func (f *framer) abort(msg string) {
	saved := f.timeout
	if saved <= 0 || saved > abortTimeout {
		f.timeout = abortTimeout
	}
	_ = f.send(fAbort, []byte(msg))
	f.timeout = saved
}

// Little-endian append/read helpers shared by the fixed-layout frames.

func appendI32s(buf []byte, vs []int32) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

func appendI64s(buf []byte, vs []int64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

type wireReader struct {
	data []byte
	err  error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data) < n {
		r.err = fmt.Errorf("%w: payload truncated (need %d bytes, have %d)", ErrProtocol, n, len(r.data))
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *wireReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) i32s(dst []int32) []int32 {
	b := r.take(4 * len(dst))
	if b == nil {
		return dst
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return dst
}

func (r *wireReader) i64s(dst []int64) []int64 {
	b := r.take(8 * len(dst))
	if b == nil {
		return dst
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst
}

func (r *wireReader) f64s(dst []float64) []float64 {
	b := r.take(8 * len(dst))
	if b == nil {
		return dst
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst
}
