package dtrain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"topmine/internal/atomicfile"
	"topmine/internal/topicmodel"
	"topmine/internal/xrand"
)

// Barrier checkpoints: the .tpd on-disk format. AD-LDA is tolerant of
// resuming from any globally synchronized state, and a sweep barrier
// is exactly that — every worker's assignments folded back into one
// model. A checkpoint therefore needs only (Z, priors, RNG position,
// sweep number, schedule): the count matrices are a pure function of Z
// and the documents, and the documents rebuild deterministically from
// the corpus file (verified by the stored corpus checksum). A resumed
// run with the same topology is byte-identical to a run that was never
// interrupted, and any worker count can pick the state up — the shard
// split happens after restore.
//
// The container reuses the corpusfile idiom: magic, version,
// byte-order marker, a section table with per-section IEEE CRC-32, and
// offset/length validation against the file size before anything is
// decoded — so torn writes, bit rot and foreign files all fail with a
// named error, never a panic. Files are published via temp-file +
// rename (atomicfile), so a coordinator killed mid-write never
// destroys the previous checkpoint.
//
// Layout:
//
//	offset 0   magic "TPDCKPT\x00" (8 bytes)
//	       8   format version, uint16 LE
//	      10   reserved, uint16 (zero)
//	      12   byte-order marker, uint32 LE
//	      16   section count, uint32 LE
//	      20   section table: count × (id u32, crc u32, offset u64, length u64)
//	      ...  section payloads, in table order, no padding
const (
	ckptMagic   = "TPDCKPT\x00"
	ckptVersion = uint16(1)
	// ckptOrderMarker mirrors corpusfile's guard against a
	// foreign-endian writer: byte-swapped files decode a different value
	// and are rejected up front.
	ckptOrderMarker uint32 = 0x1CC0FFEE
	ckptHeaderSize         = 8 + 2 + 2 + 4 + 4
	ckptEntrySize          = 4 + 4 + 8 + 8
)

// Checkpoint section ids.
const (
	ckSecMeta   uint32 = 1 // fixed-size counts, schedule, RNG state, corpus checksum
	ckSecPriors uint32 = 2 // alpha vector + alphaSum + beta + betaSum
	ckSecZ      uint32 = 3 // per-doc assignment counts, then all assignments
	ckSecNk     uint32 = 4 // topic totals, cross-checked against Z on restore
)

// ckptMetaSize is the fixed meta-section payload: K, V (u32), ndocs,
// sweep (u64), iterations, hyperEvery, burnIn, flags, corpus checksum
// (u32), RNG state (4×u64), total tokens (u64).
const ckptMetaSize = 4 + 4 + 8 + 8 + 4 + 4 + 4 + 4 + 4 + 32 + 8

// Meta flag bits.
const (
	ckptFlagOptimizeHyper uint32 = 1 << iota
	ckptFlagDenseSampler
)

// Named checkpoint error conditions. Every failure returned by
// ReadCheckpointFile (and the corpus validation in Resume) wraps
// exactly one of these, so callers classify with errors.Is instead of
// parsing messages.
var (
	// ErrCkptBadMagic marks a file that is not a .tpd checkpoint at all.
	ErrCkptBadMagic = errors.New("dtrain: not a checkpoint file (bad magic)")
	// ErrCkptVersion marks a checkpoint written by an incompatible
	// format version.
	ErrCkptVersion = errors.New("dtrain: unsupported checkpoint version")
	// ErrCkptTruncated marks a checkpoint shorter than its section table
	// claims — a torn write that escaped the atomic rename, or external
	// truncation.
	ErrCkptTruncated = errors.New("dtrain: checkpoint truncated")
	// ErrCkptChecksum marks a section whose payload fails its CRC.
	ErrCkptChecksum = errors.New("dtrain: checkpoint corrupted (checksum mismatch)")
	// ErrCkptFormat marks a structurally inconsistent checkpoint:
	// impossible counts, out-of-range values, missing sections, or
	// stored topic totals that disagree with the stored assignments.
	ErrCkptFormat = errors.New("dtrain: malformed checkpoint")
	// ErrCorpusMismatch is returned by Resume when the documents rebuilt
	// from the corpus file do not match the checksum the checkpoint was
	// trained against — a different .tpc, or different mining or
	// segmentation parameters.
	ErrCorpusMismatch = errors.New("dtrain: checkpoint does not match corpus")
)

// Checkpoint is one barrier's globally synchronized training state: the
// unit the coordinator snapshots in memory for elastic recovery and
// writes to disk as a .tpd file. Z rows and the slices are owned by the
// checkpoint (deep-copied at capture), so a later sweep cannot mutate a
// snapshot out from under a rollback.
type Checkpoint struct {
	K, V int
	// Sweep is the number of completed sweeps at capture; a resumed run
	// continues with sweep Sweep+1.
	Sweep int
	// The sweep schedule, carried so a resumed run replays the exact
	// remaining barriers (hyper cadence is a function of the absolute
	// sweep number).
	Iterations, HyperEvery, BurnIn int
	OptimizeHyper, DenseSampler    bool
	// CorpusChecksum is DocsChecksum over the full modeling document
	// set; Resume verifies the rebuilt documents against it.
	CorpusChecksum uint32
	// TotalTokens is a redundant integrity cross-check alongside Nk.
	TotalTokens int
	// RNG is the coordinator's sweep-schedule RNG position at the
	// barrier (after the barrier sweep's base draw).
	RNG xrand.State
	// Priors as of the barrier (post hyperparameter update when the
	// barrier was a hyper barrier).
	Alpha                   []float64
	AlphaSum, Beta, BetaSum float64
	// Z holds every document's clique assignments at the barrier.
	Z [][]int32
	// Nk is stored as an integrity cross-check: restore recomputes the
	// counts from Z and fails with ErrCkptFormat if they disagree.
	Nk []int64
}

// captureCheckpoint deep-copies the model's barrier state. It must be
// called only at a barrier where every shard's Z has been installed
// into m (a wantZ barrier, or before the first sweep).
func captureCheckpoint(m *topicmodel.Model, mopt topicmodel.Options, sweep int, corpusSum uint32) *Checkpoint {
	ck := &Checkpoint{
		K: m.K, V: m.V,
		Sweep:          sweep,
		Iterations:     mopt.Iterations,
		HyperEvery:     mopt.HyperEvery,
		BurnIn:         mopt.BurnIn,
		OptimizeHyper:  mopt.OptimizeHyper,
		DenseSampler:   mopt.DenseSampler,
		CorpusChecksum: corpusSum,
		TotalTokens:    m.TotalTokens(),
		RNG:            m.SamplerState(),
		Alpha:          append([]float64(nil), m.Alpha...),
		AlphaSum:       m.AlphaSum,
		Beta:           m.Beta,
		BetaSum:        m.BetaSum,
		Nk:             append([]int64(nil), m.Nk...),
	}
	ck.Z = make([][]int32, len(m.Z))
	for d := range m.Z {
		ck.Z[d] = append([]int32(nil), m.Z[d]...)
	}
	return ck
}

// schedule reconstructs the filled training options a resumed run
// replays. The seed is irrelevant — the RNG position is restored
// exactly — but K must be positive for Filled not to panic, which the
// read path has already validated.
func (ck *Checkpoint) schedule() topicmodel.Options {
	return topicmodel.Options{
		K:             ck.K,
		Iterations:    ck.Iterations,
		HyperEvery:    ck.HyperEvery,
		BurnIn:        ck.BurnIn,
		OptimizeHyper: ck.OptimizeHyper,
		DenseSampler:  ck.DenseSampler,
	}
}

// restoreModel rebuilds the full coordinator model from the checkpoint
// against the freshly rebuilt documents: corpus checksum first (a
// mismatched corpus fails before any allocation), then counts
// recomputed from Z, then the stored topic totals cross-checked
// against the recomputation, then the RNG position.
func (ck *Checkpoint) restoreModel(docs []topicmodel.Doc, vocabSize int) (*topicmodel.Model, error) {
	if got := topicmodel.DocsChecksum(docs); got != ck.CorpusChecksum {
		return nil, fmt.Errorf("%w: rebuilt documents checksum %08x, checkpoint trained against %08x — different corpus file or mining/segmentation parameters",
			ErrCorpusMismatch, got, ck.CorpusChecksum)
	}
	if vocabSize != ck.V {
		return nil, fmt.Errorf("%w: corpus vocabulary is %d, checkpoint trained against %d", ErrCorpusMismatch, vocabSize, ck.V)
	}
	if len(docs) != len(ck.Z) {
		return nil, fmt.Errorf("%w: corpus has %d documents, checkpoint holds %d", ErrCorpusMismatch, len(docs), len(ck.Z))
	}
	m, err := topicmodel.NewModelFromState(docs, ck.V, ck.K, ck.Alpha, ck.AlphaSum, ck.Beta, ck.BetaSum, ck.Z)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCkptFormat, err)
	}
	m.DenseSampler = ck.DenseSampler
	if len(ck.Nk) != ck.K {
		return nil, fmt.Errorf("%w: %d topic totals for K=%d", ErrCkptFormat, len(ck.Nk), ck.K)
	}
	tokens := 0
	for k, want := range ck.Nk {
		if m.Nk[k] != want {
			return nil, fmt.Errorf("%w: stored Nk[%d]=%d but assignments recount to %d", ErrCkptFormat, k, want, m.Nk[k])
		}
		tokens += int(want)
	}
	if tokens != ck.TotalTokens {
		return nil, fmt.Errorf("%w: stored token total %d, topic totals sum to %d", ErrCkptFormat, ck.TotalTokens, tokens)
	}
	if err := m.SetSamplerState(ck.RNG); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCkptFormat, err)
	}
	return m, nil
}

// WriteCheckpointFile atomically writes ck to path: the bytes go to an
// exclusively created temp file in the destination directory and are
// renamed into place only after a complete write, so a crash mid-write
// never corrupts the previous checkpoint.
func WriteCheckpointFile(path string, ck *Checkpoint) error {
	return atomicfile.Write(path, func(w io.Writer) error {
		_, err := w.Write(ck.encode())
		return err
	})
}

// encode serialises the checkpoint into the .tpd container.
func (ck *Checkpoint) encode() []byte {
	var flags uint32
	if ck.OptimizeHyper {
		flags |= ckptFlagOptimizeHyper
	}
	if ck.DenseSampler {
		flags |= ckptFlagDenseSampler
	}
	meta := make([]byte, 0, ckptMetaSize)
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ck.K))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ck.V))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(len(ck.Z)))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(ck.Sweep))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ck.Iterations))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ck.HyperEvery))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ck.BurnIn))
	meta = binary.LittleEndian.AppendUint32(meta, flags)
	meta = binary.LittleEndian.AppendUint32(meta, ck.CorpusChecksum)
	for _, s := range ck.RNG {
		meta = binary.LittleEndian.AppendUint64(meta, s)
	}
	meta = binary.LittleEndian.AppendUint64(meta, uint64(ck.TotalTokens))

	priors := make([]byte, 0, (len(ck.Alpha)+3)*8)
	for _, a := range ck.Alpha {
		priors = appendF64(priors, a)
	}
	priors = appendF64(priors, ck.AlphaSum)
	priors = appendF64(priors, ck.Beta)
	priors = appendF64(priors, ck.BetaSum)

	assigns := 0
	for d := range ck.Z {
		assigns += len(ck.Z[d])
	}
	zsec := make([]byte, 0, 4*len(ck.Z)+4*assigns)
	for d := range ck.Z {
		zsec = binary.LittleEndian.AppendUint32(zsec, uint32(len(ck.Z[d])))
	}
	for d := range ck.Z {
		zsec = appendI32s(zsec, ck.Z[d])
	}

	nksec := appendI64s(make([]byte, 0, 8*len(ck.Nk)), ck.Nk)

	sections := []struct {
		id      uint32
		payload []byte
	}{
		{ckSecMeta, meta},
		{ckSecPriors, priors},
		{ckSecZ, zsec},
		{ckSecNk, nksec},
	}
	out := make([]byte, 0, ckptHeaderSize+len(sections)*ckptEntrySize+len(meta)+len(priors)+len(zsec)+len(nksec))
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint16(out, ckptVersion)
	out = binary.LittleEndian.AppendUint16(out, 0)
	out = binary.LittleEndian.AppendUint32(out, ckptOrderMarker)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sections)))
	off := uint64(ckptHeaderSize + len(sections)*ckptEntrySize)
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint32(out, s.id)
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(s.payload))
		out = binary.LittleEndian.AppendUint64(out, off)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		off += uint64(len(s.payload))
	}
	for _, s := range sections {
		out = append(out, s.payload...)
	}
	return out
}

// ReadCheckpointFile reads and fully validates a .tpd checkpoint.
// Every structural failure wraps one of the named Ckpt errors; the
// count-vs-assignment cross-check happens later, in restoreModel,
// because it needs the rebuilt documents.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dtrain: reading checkpoint: %w", err)
	}
	return decodeCheckpoint(data)
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < ckptHeaderSize {
		if len(data) >= 8 && string(data[:8]) != ckptMagic {
			return nil, fmt.Errorf("%w: %q", ErrCkptBadMagic, data[:8])
		}
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCkptTruncated, len(data))
	}
	if string(data[:8]) != ckptMagic {
		return nil, fmt.Errorf("%w: %q", ErrCkptBadMagic, data[:8])
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != ckptVersion {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrCkptVersion, v, ckptVersion)
	}
	if rsv := binary.LittleEndian.Uint16(data[10:]); rsv != 0 {
		return nil, fmt.Errorf("%w: reserved header bytes %04x", ErrCkptFormat, rsv)
	}
	if om := binary.LittleEndian.Uint32(data[12:]); om != ckptOrderMarker {
		return nil, fmt.Errorf("%w: byte-order marker %08x, want %08x", ErrCkptFormat, om, ckptOrderMarker)
	}
	nsec := int(binary.LittleEndian.Uint32(data[16:]))
	if nsec < 1 || nsec > 64 {
		return nil, fmt.Errorf("%w: claims %d sections", ErrCkptFormat, nsec)
	}
	if len(data) < ckptHeaderSize+nsec*ckptEntrySize {
		return nil, fmt.Errorf("%w: %d bytes cannot hold a %d-entry section table", ErrCkptTruncated, len(data), nsec)
	}
	secs := make(map[uint32][]byte, nsec)
	for i := 0; i < nsec; i++ {
		e := data[ckptHeaderSize+i*ckptEntrySize:]
		id := binary.LittleEndian.Uint32(e)
		crc := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d) of a %d-byte file", ErrCkptTruncated, id, off, off+length, len(data))
		}
		payload := data[off : off+length]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("%w: section %d CRC %08x, want %08x", ErrCkptChecksum, id, got, crc)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCkptFormat, id)
		}
		secs[id] = payload
	}
	for _, id := range []uint32{ckSecMeta, ckSecPriors, ckSecZ, ckSecNk} {
		if _, ok := secs[id]; !ok {
			return nil, fmt.Errorf("%w: missing section %d", ErrCkptFormat, id)
		}
	}

	meta := secs[ckSecMeta]
	if len(meta) != ckptMetaSize {
		return nil, fmt.Errorf("%w: meta section is %d bytes, want %d", ErrCkptFormat, len(meta), ckptMetaSize)
	}
	r := wireReader{data: meta}
	ck := &Checkpoint{
		K: int(r.u32()),
		V: int(r.u32()),
	}
	ndocs := int(r.u64())
	ck.Sweep = int(r.u64())
	ck.Iterations = int(r.u32())
	ck.HyperEvery = int(r.u32())
	ck.BurnIn = int(r.u32())
	flags := r.u32()
	ck.CorpusChecksum = r.u32()
	for i := range ck.RNG {
		ck.RNG[i] = r.u64()
	}
	ck.TotalTokens = int(r.u64())
	ck.OptimizeHyper = flags&ckptFlagOptimizeHyper != 0
	ck.DenseSampler = flags&ckptFlagDenseSampler != 0
	if ck.K <= 0 || ck.K > 1<<20 || ck.V <= 0 || ndocs < 0 || ck.Sweep < 0 ||
		ck.Iterations <= 0 || ck.Sweep > ck.Iterations || ck.HyperEvery <= 0 || ck.BurnIn < 0 {
		return nil, fmt.Errorf("%w: meta holds K=%d V=%d docs=%d sweep=%d/%d hyperEvery=%d burnIn=%d",
			ErrCkptFormat, ck.K, ck.V, ndocs, ck.Sweep, ck.Iterations, ck.HyperEvery, ck.BurnIn)
	}

	priors := secs[ckSecPriors]
	if len(priors) != (ck.K+3)*8 {
		return nil, fmt.Errorf("%w: priors section is %d bytes, want %d for K=%d", ErrCkptFormat, len(priors), (ck.K+3)*8, ck.K)
	}
	pr := wireReader{data: priors}
	ck.Alpha = pr.f64s(make([]float64, ck.K))
	ck.AlphaSum, ck.Beta, ck.BetaSum = pr.f64(), pr.f64(), pr.f64()
	for k, a := range ck.Alpha {
		if !(a > 0) {
			return nil, fmt.Errorf("%w: alpha[%d] = %v", ErrCkptFormat, k, a)
		}
	}
	if !(ck.AlphaSum > 0) || !(ck.Beta > 0) || !(ck.BetaSum > 0) {
		return nil, fmt.Errorf("%w: priors alphaSum=%v beta=%v betaSum=%v", ErrCkptFormat, ck.AlphaSum, ck.Beta, ck.BetaSum)
	}

	zsec := secs[ckSecZ]
	if len(zsec) < 4*ndocs {
		return nil, fmt.Errorf("%w: Z section is %d bytes, shorter than its %d-doc length table", ErrCkptFormat, len(zsec), ndocs)
	}
	zr := wireReader{data: zsec}
	lens := make([]uint32, ndocs)
	total := 0
	for d := range lens {
		lens[d] = zr.u32()
		total += int(lens[d])
	}
	if len(zsec) != 4*ndocs+4*total {
		return nil, fmt.Errorf("%w: Z section is %d bytes, lengths imply %d", ErrCkptFormat, len(zsec), 4*ndocs+4*total)
	}
	arena := zr.i32s(make([]int32, total))
	if zr.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCkptFormat, zr.err)
	}
	ck.Z = make([][]int32, ndocs)
	off := 0
	for d := range ck.Z {
		n := int(lens[d])
		ck.Z[d] = arena[off : off+n : off+n]
		off += n
		for g, k := range ck.Z[d] {
			if k < 0 || int(k) >= ck.K {
				return nil, fmt.Errorf("%w: Z[%d][%d] = %d, want [0,%d)", ErrCkptFormat, d, g, k, ck.K)
			}
		}
	}

	nksec := secs[ckSecNk]
	if len(nksec) != 8*ck.K {
		return nil, fmt.Errorf("%w: Nk section is %d bytes, want %d for K=%d", ErrCkptFormat, len(nksec), 8*ck.K, ck.K)
	}
	nr := wireReader{data: nksec}
	ck.Nk = nr.i64s(make([]int64, ck.K))
	for k, v := range ck.Nk {
		if v < 0 {
			return nil, fmt.Errorf("%w: Nk[%d] = %d", ErrCkptFormat, k, v)
		}
	}
	return ck, nil
}
