package dtrain

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"topmine/internal/obs"
	"topmine/internal/topicmodel"
)

// traceEvent is the analyzer-side view of one trace line, enough to
// count and sanity-check events here.
type traceEvent struct {
	Ev           string  `json:"ev"`
	TMs          float64 `json:"t_ms"`
	Sweep        int     `json:"sweep"`
	Worker       int     `json:"worker"`
	GatingWorker int     `json:"gating_worker"`
	GatingLagMs  float64 `json:"gating_lag_ms"`
	Workers      int     `json:"workers"`
	WriteMs      float64 `json:"write_ms"`
	Path         string  `json:"path"`
	Reaccepted   int     `json:"reaccepted"`
	Error        string  `json:"error"`
}

func decodeTrace(t *testing.T, raw []byte) []traceEvent {
	t.Helper()
	var evs []traceEvent
	for i, line := range bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n")) {
		var ev traceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %d: %v: %s", i+1, err, line)
		}
		evs = append(evs, ev)
	}
	return evs
}

func countEv(evs []traceEvent, kind string) int {
	n := 0
	for _, ev := range evs {
		if ev.Ev == kind {
			n++
		}
	}
	return n
}

// scrapePlane GETs /metrics and /v1/progress once, failing on a torn
// or malformed read: the metrics page must parse back as Prometheus
// 0.0.4 text and the progress JSON must decode with sane bounds.
func scrapePlane(t *testing.T, base string, totalSweeps int) Progress {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if err := obs.Lint(body); err != nil {
		t.Fatalf("/metrics does not parse back: %v\n%s", err, body)
	}
	resp, err = http.Get(base + "/v1/progress")
	if err != nil {
		t.Fatalf("scrape /v1/progress: %v", err)
	}
	var p Progress
	err = json.NewDecoder(resp.Body).Decode(&p)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode /v1/progress: %v", err)
	}
	if p.Sweep < 0 || p.Sweep > totalSweeps {
		t.Fatalf("progress sweep %d out of [0,%d]", p.Sweep, totalSweeps)
	}
	switch p.Phase {
	case "waiting", "training", "recovering", "done", "failed":
	default:
		t.Fatalf("progress phase %q unknown", p.Phase)
	}
	return p
}

// TestTelemetryPlane runs a full distributed training with the status
// plane live and a trace log attached, scraping /metrics and
// /v1/progress concurrently throughout, and then checks three things:
// the trained model is byte-identical to a telemetry-free run (purely
// observational), the trace log carries exactly the expected event
// counts, and the final exposition exposes the training series.
func TestTelemetryPlane(t *testing.T) {
	fix := buildFixture(t, "20conf", 120)
	opt := trainOpts()
	const workers = 2
	want := topicmodel.TrainParallel(fix.docs, fix.v, opt, workers)

	// Baseline: same distributed run with no telemetry at all.
	{
		ln := listen(t)
		chs := startWorkers(t, ln.Addr().String(), workers, WorkerOptions{}, nil)
		job := fix.job
		job.Model = opt
		plain, err := Train(ln, job, Options{Workers: workers})
		if err != nil {
			t.Fatalf("telemetry-free run: %v", err)
		}
		drainWorkers(t, chs, 20*time.Second)
		assertModelsIdentical(t, plain, want)
	}

	var trace syncBuffer
	tel := NewTelemetry(&trace)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	// Before the run the plane must already answer.
	if p := scrapePlane(t, srv.URL, opt.Iterations); p.Phase != "waiting" {
		t.Fatalf("pre-run phase %q, want waiting", p.Phase)
	}

	ln := listen(t)
	chs := startWorkers(t, ln.Addr().String(), workers, WorkerOptions{}, nil)
	job := fix.job
	job.Model = opt
	ckpt := filepath.Join(t.TempDir(), "ck.tpd")

	// Scrape continuously while training; every read must be coherent.
	stop := make(chan struct{})
	var scrapes int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastSweep := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := scrapePlane(t, srv.URL, opt.Iterations)
			// No recoveries in this run, so the live sweep may never
			// move backwards.
			if p.Sweep < lastSweep {
				t.Errorf("live sweep went backwards: %d after %d", p.Sweep, lastSweep)
			}
			lastSweep = p.Sweep
			scrapes++
		}
	}()

	got, err := Train(ln, job, Options{
		Workers:    workers,
		Checkpoint: CheckpointSpec{Path: ckpt, Every: 10},
		Telemetry:  tel,
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	drainWorkers(t, chs, 20*time.Second)
	t.Logf("%d concurrent scrapes during the run", scrapes)

	// Byte-identical to both the in-process reference and the
	// telemetry-free distributed run (checked against `want` above).
	assertModelsIdentical(t, got, want)

	// Final progress: done, at the last sweep, with per-worker lag.
	p := scrapePlane(t, srv.URL, opt.Iterations)
	if p.Phase != "done" || p.Sweep != opt.Iterations || p.TotalSweeps != opt.Iterations {
		t.Fatalf("final progress %+v", p)
	}
	if len(p.WorkerLagMs) != workers {
		t.Fatalf("final worker_lag_ms has %d entries, want %d", len(p.WorkerLagMs), workers)
	}
	if p.LastCheckpointSweep != opt.Iterations {
		t.Fatalf("last_checkpoint_sweep %d, want %d", p.LastCheckpointSweep, opt.Iterations)
	}
	if p.TokensPerSec <= 0 {
		t.Fatalf("tokens_per_sec %v, want > 0", p.TokensPerSec)
	}

	// Exposition: the training series exist with the expected shapes.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf("topmine_train_sweep %d\n", opt.Iterations),
		fmt.Sprintf("topmine_train_sweeps_total %d\n", opt.Iterations),
		fmt.Sprintf("topmine_train_workers %d\n", workers),
		fmt.Sprintf("topmine_train_checkpoint_last_sweep %d\n", opt.Iterations),
		"topmine_train_recoveries_total 0\n",
		fmt.Sprintf("topmine_train_sample_seconds_count %d\n", opt.Iterations),
		"topmine_train_checkpoint_write_seconds_count 4\n",
		`topmine_train_worker_barrier_lag_seconds_bucket{worker="0",le="+Inf"}`,
		`topmine_train_worker_barrier_lag_seconds_bucket{worker="1",le="+Inf"}`,
		`topmine_train_worker_sample_seconds_count{worker="0"}`,
		"topmine_train_delta_bytes_total",
		"topmine_train_tokens_per_second",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Trace log: exact event counts for a clean 40-sweep 2-worker run
	// with checkpoints every 10 sweeps.
	evs := decodeTrace(t, trace.bytes())
	if n := countEv(evs, "run"); n != 1 {
		t.Errorf("%d run events, want 1", n)
	}
	if n := countEv(evs, "setup"); n != 1 {
		t.Errorf("%d setup events, want 1", n)
	}
	if n := countEv(evs, "sweep"); n != opt.Iterations {
		t.Errorf("%d sweep events, want %d", n, opt.Iterations)
	}
	if n := countEv(evs, "delta"); n != opt.Iterations*workers {
		t.Errorf("%d delta events, want %d", n, opt.Iterations*workers)
	}
	if n := countEv(evs, "checkpoint"); n != 4 {
		t.Errorf("%d checkpoint events, want 4", n)
	}
	if n := countEv(evs, "recovery"); n != 0 {
		t.Errorf("%d recovery events, want 0", n)
	}
	if n := countEv(evs, "finish"); n != 1 {
		t.Errorf("%d finish events, want 1", n)
	}
	// Timestamps are monotone in file order, checkpoints carry the
	// configured path, and every sweep names a plausible gating worker.
	last := -1.0
	for i, ev := range evs {
		if ev.TMs < last {
			t.Fatalf("event %d: t_ms %v before %v", i, ev.TMs, last)
		}
		last = ev.TMs
		switch ev.Ev {
		case "checkpoint":
			if ev.Path != ckpt {
				t.Errorf("checkpoint path %q, want %q", ev.Path, ckpt)
			}
		case "sweep":
			if ev.GatingWorker < 0 || ev.GatingWorker >= workers {
				t.Errorf("sweep %d: gating worker %d out of range", ev.Sweep, ev.GatingWorker)
			}
		}
	}
	if evs[len(evs)-1].Ev != "finish" {
		t.Errorf("last event %q, want finish", evs[len(evs)-1].Ev)
	}
}

// TestTelemetryElastic kills a worker mid-run (the TestElasticRecovery
// choreography) with the status plane being scraped throughout: every
// concurrent read must stay coherent across the rollback, and the
// recovery must land in the progress JSON, the metrics and the trace.
func TestTelemetryElastic(t *testing.T) {
	fix := buildFixture(t, "20conf", 120)
	opt := trainOpts()
	want := topicmodel.TrainParallel(fix.docs, fix.v, opt, 2)

	var trace syncBuffer
	tel := NewTelemetry(&trace)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	ln := listen(t)
	addr := ln.Addr().String()
	wrap := func(i int, c net.Conn) net.Conn {
		if i != 0 {
			return c
		}
		return &dyingConn{Conn: c, limit: 30}
	}
	chs := startWorkers(t, addr, 2, WorkerOptions{BarrierTimeout: 15 * time.Second}, wrap)

	started := make(chan struct{})
	var once sync.Once
	spare := make(chan error, 1)
	go func() {
		<-started
		conn, err := Dial(addr, 10*time.Second)
		if err != nil {
			spare <- err
			return
		}
		spare <- RunWorker(conn, WorkerOptions{BarrierTimeout: 15 * time.Second})
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			scrapePlane(t, srv.URL, opt.Iterations)
		}
	}()

	job := fix.job
	job.Model = opt
	got, err := Train(ln, job, Options{
		Workers: 2, BarrierTimeout: 15 * time.Second,
		Elastic: true, Checkpoint: CheckpointSpec{Every: 10},
		ReacceptTimeout: 10 * time.Second,
		Telemetry:       tel,
		SweepStats: func(st topicmodel.SweepStats) {
			once.Do(func() { close(started) })
		},
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	assertModelsIdentical(t, got, want)
	drainWorkers(t, append(chs, spare), 20*time.Second)

	p := scrapePlane(t, srv.URL, opt.Iterations)
	if p.Phase != "done" || p.Recoveries != 1 || p.RecoveredWorkers != 1 {
		t.Fatalf("final progress after recovery: %+v", p)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"topmine_train_recoveries_total 1\n",
		"topmine_train_recovered_workers_total 1\n",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	evs := decodeTrace(t, trace.bytes())
	if n := countEv(evs, "recovery"); n != 1 {
		t.Errorf("%d recovery events, want 1", n)
	}
	// The rollback replays sweeps, so the trace holds more sweep
	// events than the schedule; the run event plus two setups (initial
	// epoch and post-recovery epoch) bracket them.
	if n := countEv(evs, "setup"); n != 2 {
		t.Errorf("%d setup events, want 2", n)
	}
	if n := countEv(evs, "sweep"); n < opt.Iterations {
		t.Errorf("%d sweep events, want >= %d", n, opt.Iterations)
	}
	for _, ev := range evs {
		if ev.Ev == "recovery" && ev.Reaccepted != 1 {
			t.Errorf("recovery event re-accepted %d, want 1", ev.Reaccepted)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the trace writer is
// called from the coordinator goroutine while tests read at the end,
// and the race detector wants the handoff explicit.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
