package dtrain

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"topmine/internal/phrasemine"
	"topmine/internal/topicmodel"
)

// Job describes one distributed training run. The coordinator builds
// the full model (so initialisation consumes the seed exactly like
// in-process training) and ships each worker everything it needs to
// rebuild its shard from the corpus file: the mined phrase statistics,
// segmentation parameters and the shard's initial assignments.
type Job struct {
	// CorpusPath is the .tpc file workers open; it must resolve on the
	// worker hosts (workers may override it locally).
	CorpusPath string
	// Docs are the coordinator's modeling documents for the whole
	// corpus, in corpus order — the same DocsFromSegmentation output an
	// in-process run would train on.
	Docs      []topicmodel.Doc
	VocabSize int
	// Mined and the segmentation parameters let each worker re-segment
	// its document range locally: per-document partitioning depends
	// only on the document's tokens and the mined counts, so the shard
	// rebuild is deterministic (and cross-checked via READY checksums).
	Mined        *phrasemine.Result
	SigAlpha     float64
	MaxPhraseLen int
	// Model parameterises training; custom significance scores cannot
	// cross a process boundary, so jobs using segment.Options.Score
	// overrides are not supported.
	Model topicmodel.Options
}

// CheckpointSpec configures barrier checkpointing.
type CheckpointSpec struct {
	// Path is the .tpd file the coordinator rewrites (atomically, via
	// temp file + rename) at checkpoint barriers. Empty disables
	// on-disk checkpoints.
	Path string
	// Every is the sweep interval between checkpoint barriers; 0
	// defaults to 50 when Path is set. With Path empty and Elastic set,
	// Every still controls how often the in-memory recovery snapshot is
	// refreshed (its own default is every 25 sweeps).
	Every int
}

// Options configures the coordinator side of a run.
type Options struct {
	// Workers is the number of worker processes to wait for.
	Workers int
	// AcceptTimeout is the total budget for all Workers handshakes at
	// startup — accept plus HELLO, so neither slow connectors nor
	// half-open connections can stretch startup past it (default 60s).
	AcceptTimeout time.Duration
	// BarrierTimeout bounds every per-worker frame exchange; a worker
	// that dies or stalls past it fails the run with ErrWorkerLost —
	// or, with Elastic set, triggers recovery — instead of hanging
	// (default 120s).
	BarrierTimeout time.Duration
	// Checkpoint enables barrier checkpointing to a .tpd file; see
	// Resume for restarting a dead run from one.
	Checkpoint CheckpointSpec
	// Elastic keeps the run alive across lost workers: the coordinator
	// rolls the model back to the last synchronized barrier snapshot,
	// re-accepts replacement workers for up to ReacceptTimeout,
	// re-shards over the resulting worker set and continues. Results
	// stay deterministic per topology: if the worker count ends up the
	// same, the final model is byte-identical to an uninterrupted run.
	Elastic bool
	// ReacceptTimeout bounds the wait for replacement workers during
	// one elastic recovery (default 15s). When it elapses the run
	// continues with the survivors; if none remain, it fails.
	ReacceptTimeout time.Duration
	// MaxRecoveries caps elastic recoveries per run so a flapping
	// fleet cannot loop forever (default 5).
	MaxRecoveries int
	// SweepStats, when set, receives one timing breakdown per sweep:
	// Sample is the barrier wait for the slowest worker's delta,
	// WorkerSample the workers' self-reported sample times, Reconcile
	// the fold + rebroadcast, Checkpoint the .tpd write (when one
	// happened), Recovered the cumulative re-accepted worker count.
	SweepStats func(topicmodel.SweepStats)
	// Telemetry, when set, receives the full observability feed — per
	// sweep, per worker-delta, per checkpoint and per recovery — and
	// exposes it as /metrics, /v1/progress and a structured trace log
	// (see NewTelemetry). Purely observational: a nil Telemetry runs
	// the identical training trajectory.
	Telemetry *Telemetry
	// Logf, when set, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.AcceptTimeout <= 0 {
		o.AcceptTimeout = 60 * time.Second
	}
	if o.BarrierTimeout <= 0 {
		o.BarrierTimeout = 120 * time.Second
	}
	if o.Checkpoint.Path != "" && o.Checkpoint.Every <= 0 {
		o.Checkpoint.Every = 50
	}
	if o.ReacceptTimeout <= 0 {
		o.ReacceptTimeout = 15 * time.Second
	}
	if o.MaxRecoveries <= 0 {
		o.MaxRecoveries = 5
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// setupMsg is the gob-encoded SETUP payload.
type setupMsg struct {
	Proto        int
	CorpusPath   string
	Lo, Hi       int
	Index        int
	NumWorkers   int
	K, V         int
	Alpha        []float64
	AlphaSum     float64
	Beta         float64
	BetaSum      float64
	Z            [][]int32
	SigAlpha     float64
	MaxPhraseLen int
	Mined        *phrasemine.Result
}

// wconn is the coordinator's handle on one worker.
type wconn struct {
	fr     *framer
	index  int
	lo, hi int
}

// coordinator carries one run's state across epochs. An epoch is a
// stretch of sweeps under a fixed worker topology; a lost worker ends
// the epoch, and (when Elastic) recovery rolls the model back to recov
// — the last globally synchronized barrier snapshot — and starts the
// next epoch over the surviving + re-accepted workers.
type coordinator struct {
	ln        net.Listener
	job       Job
	opt       Options
	mopt      topicmodel.Options
	corpusSum uint32
	// recov is the rollback point: always valid, captured before the
	// first sweep and refreshed at every wantZ barrier. Its Sweep field
	// is where the next epoch resumes.
	recov      *Checkpoint
	recovered  int   // workers re-accepted after failures, cumulative
	recoveries int   // recovery rounds consumed, vs opt.MaxRecoveries
	syncEvery  int   // in-memory snapshot cadence (0 = only hyper/ckpt barriers)
	tokens     int64 // corpus tokens sampled per sweep (for throughput telemetry)
}

func validateJob(job Job, opt Options) error {
	if opt.Workers < 1 {
		return fmt.Errorf("dtrain: need at least 1 worker, got %d", opt.Workers)
	}
	if len(job.Docs) < 2*opt.Workers {
		return fmt.Errorf("dtrain: corpus of %d docs is too small for %d workers (need >= %d)",
			len(job.Docs), opt.Workers, 2*opt.Workers)
	}
	return nil
}

func newCoordinator(ln net.Listener, job Job, opt Options, mopt topicmodel.Options, recov *Checkpoint) *coordinator {
	c := &coordinator{ln: ln, job: job, opt: opt, mopt: mopt, corpusSum: recov.CorpusChecksum, recov: recov}
	for i := range job.Docs {
		c.tokens += int64(job.Docs[i].NumTokens())
	}
	if opt.Elastic {
		c.syncEvery = opt.Checkpoint.Every
		if c.syncEvery <= 0 {
			c.syncEvery = 25
		}
	}
	return c
}

// Train runs one distributed training job over ln, waiting for
// opt.Workers workers to connect, and returns the trained model. The
// listener is not closed. Without opt.Elastic, any worker failure —
// death, stall past the barrier timeout, shard mismatch, explicit
// abort — fails the whole run; with it, lost workers trigger rollback
// to the last barrier snapshot and the run continues (see Options).
func Train(ln net.Listener, job Job, opt Options) (*topicmodel.Model, error) {
	opt.fill()
	if err := validateJob(job, opt); err != nil {
		return nil, err
	}
	mopt := job.Model.Filled()
	m := topicmodel.NewModel(job.Docs, job.VocabSize, mopt)
	ck := captureCheckpoint(m, mopt, 0, topicmodel.DocsChecksum(job.Docs))
	return newCoordinator(ln, job, opt, mopt, ck).train()
}

// Resume restarts a dead run from a barrier checkpoint, with any
// worker count — the shard split happens after the restore, so the
// topology is free to change (the final model then corresponds to the
// new topology's deterministic trajectory from that barrier). The
// training schedule (iterations, hyperparameter cadence, burn-in)
// comes from the checkpoint, not job.Model; job must rebuild the same
// documents the checkpoint was trained against, which is verified via
// the stored corpus checksum before any worker is accepted.
func Resume(ln net.Listener, job Job, ck *Checkpoint, opt Options) (*topicmodel.Model, error) {
	opt.fill()
	if err := validateJob(job, opt); err != nil {
		return nil, err
	}
	// Fail fast — a checkpoint/corpus mismatch should surface before we
	// sit waiting for workers. The trial restore also proves the stored
	// counts are consistent with the stored assignments.
	if _, err := ck.restoreModel(job.Docs, job.VocabSize); err != nil {
		return nil, err
	}
	return newCoordinator(ln, job, opt, ck.schedule(), ck).train()
}

func (c *coordinator) train() (*topicmodel.Model, error) {
	tel := c.opt.Telemetry
	tel.runStarted(c.mopt.Iterations, c.recov.Sweep, c.tokens, c.opt.Workers, c.recov.Sweep > 0)
	ws, err := acceptWorkers(c.ln, c.opt.Workers, time.Now().Add(c.opt.AcceptTimeout), c.opt, false)
	if err != nil {
		tel.runFinished(err)
		return nil, err
	}
	defer func() {
		for _, w := range ws {
			_ = w.fr.conn.Close()
		}
	}()
	for {
		m, failed, err := c.epoch(ws)
		if err == nil {
			tel.runFinished(nil)
			return m, nil
		}
		ws, err = c.recoverOrFail(ws, failed, err)
		if err != nil {
			tel.runFinished(err)
			return nil, err
		}
	}
}

// recoverOrFail decides what a failed epoch means: a lost worker under
// Elastic (with recovery budget left) shrinks/refills the worker set
// and lets the caller start the next epoch; everything else aborts the
// surviving workers and fails the run. failed == nil marks an internal
// coordinator failure (fold, restore, checkpoint write), always fatal.
func (c *coordinator) recoverOrFail(ws []*wconn, failed *wconn, cause error) ([]*wconn, error) {
	if failed == nil {
		abortAll(ws, cause.Error())
		return nil, cause
	}
	err := classify(failed, cause)
	if !errors.Is(err, ErrWorkerLost) || !c.opt.Elastic {
		abortAll(ws, err.Error())
		return nil, err
	}
	if c.recoveries >= c.opt.MaxRecoveries {
		err = fmt.Errorf("%w (recovery budget of %d exhausted)", err, c.opt.MaxRecoveries)
		abortAll(ws, err.Error())
		return nil, err
	}
	c.recoveries++
	_ = failed.fr.conn.Close()
	survivors := make([]*wconn, 0, len(ws))
	for _, w := range ws {
		if w != failed {
			survivors = append(survivors, w)
		}
	}
	want := c.opt.Workers - len(survivors)
	c.opt.logf("dtrain: worker %d lost (%v); rolling back to sweep %d, %d survivors, accepting up to %d replacements for %v",
		failed.index, cause, c.recov.Sweep, len(survivors), want, c.opt.ReacceptTimeout)
	fresh, err := acceptWorkers(c.ln, want, time.Now().Add(c.opt.ReacceptTimeout), c.opt, true)
	if err != nil {
		abortAll(survivors, err.Error())
		return nil, err
	}
	if len(survivors)+len(fresh) == 0 {
		return nil, fmt.Errorf("%w: all %d workers lost and none reconnected within %v",
			ErrWorkerLost, c.opt.Workers, c.opt.ReacceptTimeout)
	}
	c.recovered += len(fresh)
	c.opt.logf("dtrain: recovery %d/%d: continuing from sweep %d with %d workers (%d re-accepted)",
		c.recoveries, c.opt.MaxRecoveries, c.recov.Sweep, len(survivors)+len(fresh), len(fresh))
	c.opt.Telemetry.recoveryDone(c.recov.Sweep, failed.index, len(survivors), len(fresh), cause.Error())
	return append(survivors, fresh...), nil
}

// epoch restores the model from the recovery snapshot, (re)distributes
// shards over ws, and trains from recov.Sweep+1 to the end. It returns
// the failing worker alongside the error when one worker's exchange
// failed (recoverable under Elastic), or a nil worker for internal
// coordinator failures (always fatal).
func (c *coordinator) epoch(ws []*wconn) (*topicmodel.Model, *wconn, error) {
	// Rolling the model forward from the snapshot — rather than keeping
	// a separate live model — makes the first epoch and every recovery
	// epoch take the identical code path, which is what the determinism
	// contract (resumed == uninterrupted, per topology) leans on.
	m, err := c.recov.restoreModel(c.job.Docs, c.job.VocabSize)
	if err != nil {
		return nil, nil, err
	}
	ranges := topicmodel.ShardRanges(c.job.Docs, len(ws))
	for wi, w := range ws {
		w.index, w.lo, w.hi = wi, ranges[wi][0], ranges[wi][1]
	}
	c.opt.logf("dtrain: %d workers connected, shard ranges %v", len(ws), ranges)

	// SETUP + GLOBALS, then the READY checksum barrier. Setup frames
	// carry per-shard state; sends run per worker concurrently.
	globals := encodeGlobals(m)
	err = each(ws, func(w *wconn) error {
		return c.setupWorker(w, m, globals, len(ws))
	})
	if err != nil {
		w, cause := splitWorkerErr(ws, err)
		return nil, w, cause
	}
	c.opt.logf("dtrain: all shards verified, training sweeps %d..%d", c.recov.Sweep+1, c.mopt.Iterations)
	c.opt.Telemetry.epochStarted(len(ws), c.recov.Sweep+1)

	deltas := make([]*topicmodel.CountRows, len(ws))
	zs := make([][][]int32, len(ws))
	sampleNs := make([]int64, len(ws))
	// Telemetry capture slots, written lock-free by the per-worker
	// barrier goroutines (each owns its own index, like sampleNs) and
	// consumed synchronously after the barrier.
	arrivalNs := make([]int64, len(ws))
	deltaBytes := make([]int64, len(ws))
	deltaRows := make([]int64, len(ws))
	for it := c.recov.Sweep + 1; it <= c.mopt.Iterations; it++ {
		base := m.NextSweepBase()
		hyper := c.mopt.OptimizeHyper && it > c.mopt.BurnIn && it%c.mopt.HyperEvery == 0
		ckptDue := c.opt.Checkpoint.Path != "" && it%c.opt.Checkpoint.Every == 0
		// wantZ barriers pull every shard's assignments up: hyper
		// optimization needs the document-topic rows, and snapshots need
		// the globally synchronized Z. Both recompute from Z, so the two
		// uses share one upload.
		wantZ := hyper || ckptDue || (c.syncEvery > 0 && it%c.syncEvery == 0)

		// SWEEP broadcast: iteration, RNG base, wantZ flag, current priors.
		var sweep []byte
		sweep = binary.LittleEndian.AppendUint32(sweep, uint32(it))
		sweep = binary.LittleEndian.AppendUint64(sweep, base)
		if wantZ {
			sweep = append(sweep, 1)
		} else {
			sweep = append(sweep, 0)
		}
		for _, a := range m.Alpha {
			sweep = appendF64(sweep, a)
		}
		sweep = appendF64(sweep, m.AlphaSum)
		sweep = appendF64(sweep, m.Beta)
		sweep = appendF64(sweep, m.BetaSum)

		t0 := time.Now()
		err = each(ws, func(w *wconn) error {
			if err := w.fr.send(fSweep, sweep); err != nil {
				return err
			}
			payload, err := w.fr.recvExpect(fDelta)
			if err != nil {
				return err
			}
			arrivalNs[w.index] = int64(time.Since(t0))
			deltaBytes[w.index] = int64(len(payload))
			if err := decodeDelta(payload, w, m.K, m.V, deltas, sampleNs); err != nil {
				return err
			}
			deltaRows[w.index] = int64(len(deltas[w.index].Words))
			if wantZ {
				payload, err := w.fr.recvExpect(fCkpt)
				if err != nil {
					return err
				}
				z, err := decodeShardZ(payload, w.hi-w.lo)
				if err != nil {
					return err
				}
				zs[w.index] = z
			}
			return nil
		})
		if err != nil {
			w, cause := splitWorkerErr(ws, err)
			return nil, w, cause
		}
		sampleDur := time.Since(t0)

		t1 := time.Now()
		combined, err := m.FoldShardDeltas(deltas)
		if err != nil {
			return nil, nil, fmt.Errorf("dtrain: reconcile failed: %w", err)
		}
		if wantZ {
			// Install every shard's assignments: Ndk rows recompute from Z
			// (bit-identical to uploading them, since counts are pure
			// functions of assignments) and m.Z becomes globally
			// synchronized — exactly the state a snapshot may capture.
			for _, w := range ws {
				if err := m.InstallShardState(w.lo, zs[w.index]); err != nil {
					return nil, nil, fmt.Errorf("dtrain: install shard state: %w", err)
				}
			}
		}
		rows := combined.AppendTo(nil)
		err = each(ws, func(w *wconn) error {
			return w.fr.send(fRows, rows)
		})
		if err != nil {
			w, cause := splitWorkerErr(ws, err)
			return nil, w, cause
		}
		if hyper {
			m.OptimizeAlpha(5)
			m.OptimizeBeta(5)
		}
		reconcileDur := time.Since(t1)

		var ckptDur time.Duration
		if wantZ {
			// The in-memory snapshot is refreshed at every wantZ barrier
			// (post hyper update, so rollback replays the same priors);
			// the .tpd write only at its own cadence.
			c.recov = captureCheckpoint(m, c.mopt, it, c.corpusSum)
			if ckptDue {
				tc := time.Now()
				if err := WriteCheckpointFile(c.opt.Checkpoint.Path, c.recov); err != nil {
					return nil, nil, fmt.Errorf("dtrain: sweep %d: writing checkpoint: %w", it, err)
				}
				ckptDur = time.Since(tc)
				c.opt.logf("dtrain: sweep %d: checkpoint written to %s (%v)", it, c.opt.Checkpoint.Path, ckptDur)
				c.opt.Telemetry.checkpointWritten(it, ckptDur, c.opt.Checkpoint.Path)
			}
		}

		if c.opt.SweepStats != nil {
			per := make([]time.Duration, len(ws))
			for i, ns := range sampleNs {
				per[i] = time.Duration(ns)
			}
			c.opt.SweepStats(topicmodel.SweepStats{
				Sweep:        it,
				Workers:      len(ws),
				Sample:       sampleDur,
				Reconcile:    reconcileDur,
				WorkerSample: per,
				Checkpoint:   ckptDur,
				Recovered:    c.recovered,
			})
		}
		c.opt.Telemetry.sweepDone(sweepObs{
			sweep:       it,
			totalSweeps: c.mopt.Iterations,
			workers:     len(ws),
			sample:      sampleDur,
			reconcile:   reconcileDur,
			checkpoint:  ckptDur,
			arrivalNs:   arrivalNs,
			sampleNs:    sampleNs,
			deltaBytes:  deltaBytes,
			deltaRows:   deltaRows,
			tokens:      c.tokens,
			recoveries:  c.recoveries,
			recovered:   c.recovered,
		})
	}

	// FINISH: collect final shard assignments and install them.
	finals := make([][][]int32, len(ws))
	err = each(ws, func(w *wconn) error {
		if err := w.fr.send(fFinish, nil); err != nil {
			return err
		}
		payload, err := w.fr.recvExpect(fFinal)
		if err != nil {
			return err
		}
		z, err := decodeShardZ(payload, w.hi-w.lo)
		if err != nil {
			return err
		}
		finals[w.index] = z
		return nil
	})
	if err != nil {
		w, cause := splitWorkerErr(ws, err)
		return nil, w, cause
	}
	for _, w := range ws {
		if err := m.InstallShardState(w.lo, finals[w.index]); err != nil {
			return nil, nil, fmt.Errorf("dtrain: install final state: %w", err)
		}
	}
	c.opt.logf("dtrain: training complete")
	return m, nil, nil
}

// setupWorker ships one worker its shard and waits for the READY
// checksum. A surviving worker being resynced after a recovery may
// still have stale barrier output (DELTA, CKPT) in flight from the
// interrupted sweep; those frames are drained and discarded until the
// READY for this SETUP arrives.
func (c *coordinator) setupWorker(w *wconn, m *topicmodel.Model, globals []byte, numWorkers int) error {
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(&setupMsg{
		Proto:        protoVersion,
		CorpusPath:   c.job.CorpusPath,
		Lo:           w.lo,
		Hi:           w.hi,
		Index:        w.index,
		NumWorkers:   numWorkers,
		K:            m.K,
		V:            m.V,
		Alpha:        m.Alpha,
		AlphaSum:     m.AlphaSum,
		Beta:         m.Beta,
		BetaSum:      m.BetaSum,
		Z:            m.Z[w.lo:w.hi],
		SigAlpha:     c.job.SigAlpha,
		MaxPhraseLen: c.job.MaxPhraseLen,
		Mined:        c.job.Mined,
	}); err != nil {
		return fmt.Errorf("encode setup: %w", err)
	}
	if err := w.fr.send(fSetup, payload.Bytes()); err != nil {
		return err
	}
	if err := w.fr.send(fGlobals, globals); err != nil {
		return err
	}
	for stale := 0; ; {
		t, ready, err := w.fr.recv()
		if err != nil {
			return err
		}
		switch t {
		case fDelta, fCkpt:
			// Stale output from the barrier the recovery interrupted; at
			// most one of each can be in flight per lockstep sweep.
			stale++
			if stale > 2 {
				return fmt.Errorf("%w: worker still streaming barrier frames after SETUP", ErrProtocol)
			}
			continue
		case fAbort:
			return &abortError{msg: string(ready)}
		case fReady:
			r := wireReader{data: ready}
			sum, tokens := r.u32(), r.u64()
			if r.err != nil {
				return r.err
			}
			shard := c.job.Docs[w.lo:w.hi]
			wantTokens := 0
			for i := range shard {
				wantTokens += shard[i].NumTokens()
			}
			if want := topicmodel.DocsChecksum(shard); sum != want || tokens != uint64(wantTokens) {
				return fmt.Errorf("shard mismatch: worker rebuilt checksum %08x/%d tokens, coordinator has %08x/%d — differing corpus file or parameters",
					sum, tokens, want, wantTokens)
			}
			return nil
		default:
			return fmt.Errorf("%w: got frame type %d, want %d", ErrProtocol, t, fReady)
		}
	}
}

// acceptWorkers collects up to `want` HELLO handshakes by `deadline` —
// a total budget covering accepts and handshake reads both, so neither
// slow connectors nor half-open connections can stretch it N-fold.
// Worker index is assignment order; any assignment yields the same
// result, since the topology is (count, ranges, seed), not which
// process got which shard. In tolerant mode (elastic re-accept) the
// deadline and broken handshakes just end the collection early: the
// caller proceeds with whoever showed up.
func acceptWorkers(ln net.Listener, want int, deadline time.Time, opt Options, tolerant bool) ([]*wconn, error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		_ = d.SetDeadline(deadline)
		defer func() { _ = d.SetDeadline(time.Time{}) }()
	}
	ws := make([]*wconn, 0, max(want, 0))
	fail := func(err error) ([]*wconn, error) {
		for _, w := range ws {
			_ = w.fr.conn.Close()
		}
		return nil, err
	}
	for len(ws) < want {
		conn, err := ln.Accept()
		if err != nil {
			if tolerant {
				return ws, nil
			}
			return fail(fmt.Errorf("%w: %d/%d workers connected: %v", ErrWorkerLost, len(ws), want, err))
		}
		// The HELLO read is bounded by the remaining accept budget, not
		// BarrierTimeout: a connection that never completes the handshake
		// must not consume more than the loop's total allowance.
		rem := time.Until(deadline)
		if rem <= 0 {
			rem = time.Millisecond
		}
		fr := &framer{conn: conn, timeout: rem}
		hello, err := fr.recvExpect(fHello)
		if err == nil {
			r := wireReader{data: hello}
			if v := r.u32(); r.err == nil && int(v) != protoVersion {
				err = fmt.Errorf("%w: worker speaks protocol %d, coordinator %d", ErrProtocol, v, protoVersion)
			} else {
				err = r.err
			}
		}
		if err != nil {
			fr.abort(fmt.Sprintf("handshake failed: %v", err))
			_ = conn.Close()
			if tolerant {
				continue
			}
			return fail(fmt.Errorf("dtrain: worker handshake: %w", err))
		}
		fr.timeout = opt.BarrierTimeout
		ws = append(ws, &wconn{fr: fr})
	}
	return ws, nil
}

// abortAll best-effort notifies every worker of the failure,
// concurrently — combined with the abort write deadline, a wedged
// connection costs the fan-out abortTimeout once, not per peer.
func abortAll(ws []*wconn, msg string) {
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *wconn) {
			defer wg.Done()
			w.fr.abort(msg)
		}(w)
	}
	wg.Wait()
}

// decodeDelta parses a DELTA payload into the per-worker slots.
func decodeDelta(payload []byte, w *wconn, k, v int, deltas []*topicmodel.CountRows, sampleNs []int64) error {
	r := wireReader{data: payload}
	sampleNs[w.index] = int64(r.u64())
	if r.err != nil {
		return r.err
	}
	cr, n, err := topicmodel.DecodeCountRows(r.data, v, k)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if n != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes after delta", ErrProtocol, len(r.data)-n)
	}
	deltas[w.index] = cr
	return nil
}

// decodeShardZ parses a CKPT or FINAL payload — the shard's per-doc
// topic assignments — validating the document count against the shard.
func decodeShardZ(payload []byte, wantDocs int) ([][]int32, error) {
	r := wireReader{data: payload}
	ndocs := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if ndocs != wantDocs {
		return nil, fmt.Errorf("%w: shard state has %d docs, shard has %d", ErrProtocol, ndocs, wantDocs)
	}
	z := make([][]int32, ndocs)
	for i := range z {
		n := int(r.u32())
		if n > len(r.data)/4 {
			return nil, fmt.Errorf("%w: doc %d claims %d assignments, %d bytes remain", ErrProtocol, i, n, len(r.data))
		}
		z[i] = r.i32s(make([]int32, n))
	}
	if r.err == nil && len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after shard state", ErrProtocol, len(r.data))
	}
	return z, r.err
}

// encodeGlobals serialises the dense word-topic counts + topic totals.
func encodeGlobals(m *topicmodel.Model) []byte {
	buf := make([]byte, 0, 8+4*m.V*m.K+8*m.K)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.V))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.K))
	for w := 0; w < m.V; w++ {
		buf = appendI32s(buf, m.Nwk[w])
	}
	return appendI64s(buf, m.Nk)
}

// workerErr tags an error with the worker it came from so the
// concurrent barrier helper can report which one failed.
type workerErr struct {
	index int
	err   error
}

func (e *workerErr) Error() string { return fmt.Sprintf("worker %d: %v", e.index, e.err) }
func (e *workerErr) Unwrap() error { return e.err }

// each runs fn for every worker concurrently and waits for all of
// them, returning the first failure (lowest worker index) wrapped as a
// *workerErr.
func each(ws []*wconn, fn func(w *wconn) error) error {
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *wconn) {
			defer wg.Done()
			errs[i] = fn(w)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return &workerErr{index: i, err: err}
		}
	}
	return nil
}

// splitWorkerErr recovers the failing worker from an each() error.
func splitWorkerErr(ws []*wconn, err error) (*wconn, error) {
	var we *workerErr
	if errors.As(err, &we) {
		return ws[we.index], we.err
	}
	return ws[0], err
}

// classify turns a worker failure into the caller-facing error: an
// explicit ABORT keeps its message; a dead or stalled connection is
// ErrWorkerLost (the one class elastic recovery acts on).
func classify(w *wconn, err error) error {
	var ae *abortError
	if errors.As(err, &ae) {
		return fmt.Errorf("dtrain: worker %d aborted: %s", w.index, ae.msg)
	}
	if errors.Is(err, ErrProtocol) {
		return fmt.Errorf("dtrain: worker %d: %w", w.index, err)
	}
	return fmt.Errorf("%w: worker %d: %v", ErrWorkerLost, w.index, err)
}
