package dtrain

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"topmine/internal/phrasemine"
	"topmine/internal/topicmodel"
)

// Job describes one distributed training run. The coordinator builds
// the full model (so initialisation consumes the seed exactly like
// in-process training) and ships each worker everything it needs to
// rebuild its shard from the corpus file: the mined phrase statistics,
// segmentation parameters and the shard's initial assignments.
type Job struct {
	// CorpusPath is the .tpc file workers open; it must resolve on the
	// worker hosts (workers may override it locally).
	CorpusPath string
	// Docs are the coordinator's modeling documents for the whole
	// corpus, in corpus order — the same DocsFromSegmentation output an
	// in-process run would train on.
	Docs      []topicmodel.Doc
	VocabSize int
	// Mined and the segmentation parameters let each worker re-segment
	// its document range locally: per-document partitioning depends
	// only on the document's tokens and the mined counts, so the shard
	// rebuild is deterministic (and cross-checked via READY checksums).
	Mined        *phrasemine.Result
	SigAlpha     float64
	MaxPhraseLen int
	// Model parameterises training; custom significance scores cannot
	// cross a process boundary, so jobs using segment.Options.Score
	// overrides are not supported.
	Model topicmodel.Options
}

// Options configures the coordinator side of a run.
type Options struct {
	// Workers is the number of worker processes to wait for.
	Workers int
	// AcceptTimeout bounds the wait for all workers to connect
	// (default 60s).
	AcceptTimeout time.Duration
	// BarrierTimeout bounds every per-worker frame exchange; a worker
	// that dies or stalls past it fails the run with ErrWorkerLost
	// instead of hanging (default 120s).
	BarrierTimeout time.Duration
	// SweepStats, when set, receives one timing breakdown per sweep:
	// Sample is the barrier wait for the slowest worker's delta,
	// WorkerSample the workers' self-reported sample times, Reconcile
	// the fold + rebroadcast.
	SweepStats func(topicmodel.SweepStats)
	// Logf, when set, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.AcceptTimeout <= 0 {
		o.AcceptTimeout = 60 * time.Second
	}
	if o.BarrierTimeout <= 0 {
		o.BarrierTimeout = 120 * time.Second
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// setupMsg is the gob-encoded SETUP payload.
type setupMsg struct {
	Proto        int
	CorpusPath   string
	Lo, Hi       int
	Index        int
	NumWorkers   int
	K, V         int
	Alpha        []float64
	AlphaSum     float64
	Beta         float64
	BetaSum      float64
	Z            [][]int32
	SigAlpha     float64
	MaxPhraseLen int
	Mined        *phrasemine.Result
}

// wconn is the coordinator's handle on one worker.
type wconn struct {
	fr     *framer
	index  int
	lo, hi int
}

// Train runs one distributed training job over ln, waiting for
// opt.Workers workers to connect, and returns the trained model. The
// listener is not closed. Any worker failure — death, stall past the
// barrier timeout, shard mismatch, explicit abort — fails the whole
// run: shard state lives only in workers, so there is no mid-sweep
// recovery, by design (documented in the README).
func Train(ln net.Listener, job Job, opt Options) (*topicmodel.Model, error) {
	opt.fill()
	if opt.Workers < 1 {
		return nil, fmt.Errorf("dtrain: need at least 1 worker, got %d", opt.Workers)
	}
	if len(job.Docs) < 2*opt.Workers {
		return nil, fmt.Errorf("dtrain: corpus of %d docs is too small for %d workers (need >= %d)",
			len(job.Docs), opt.Workers, 2*opt.Workers)
	}
	mopt := job.Model.Filled()
	m := topicmodel.NewModel(job.Docs, job.VocabSize, mopt)
	ranges := topicmodel.ShardRanges(job.Docs, opt.Workers)

	ws, err := acceptWorkers(ln, opt)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, w := range ws {
			_ = w.fr.conn.Close()
		}
	}()
	fail := func(w *wconn, err error) error {
		err = classify(w, err)
		for _, o := range ws {
			o.fr.abort(err.Error())
		}
		return err
	}

	for wi, w := range ws {
		w.index, w.lo, w.hi = wi, ranges[wi][0], ranges[wi][1]
	}
	opt.logf("dtrain: %d workers connected, shard ranges %v", len(ws), ranges)

	// SETUP + GLOBALS, then the READY checksum barrier. Setup frames
	// carry per-shard state; sends run per worker concurrently.
	globals := encodeGlobals(m)
	err = each(ws, func(w *wconn) error {
		var payload bytes.Buffer
		enc := gob.NewEncoder(&payload)
		if err := enc.Encode(&setupMsg{
			Proto:        protoVersion,
			CorpusPath:   job.CorpusPath,
			Lo:           w.lo,
			Hi:           w.hi,
			Index:        w.index,
			NumWorkers:   len(ws),
			K:            m.K,
			V:            m.V,
			Alpha:        m.Alpha,
			AlphaSum:     m.AlphaSum,
			Beta:         m.Beta,
			BetaSum:      m.BetaSum,
			Z:            m.Z[w.lo:w.hi],
			SigAlpha:     job.SigAlpha,
			MaxPhraseLen: job.MaxPhraseLen,
			Mined:        job.Mined,
		}); err != nil {
			return fmt.Errorf("encode setup: %w", err)
		}
		if err := w.fr.send(fSetup, payload.Bytes()); err != nil {
			return err
		}
		if err := w.fr.send(fGlobals, globals); err != nil {
			return err
		}
		ready, err := w.fr.recvExpect(fReady)
		if err != nil {
			return err
		}
		r := wireReader{data: ready}
		sum, tokens := r.u32(), r.u64()
		if r.err != nil {
			return r.err
		}
		shard := job.Docs[w.lo:w.hi]
		wantTokens := 0
		for i := range shard {
			wantTokens += shard[i].NumTokens()
		}
		if want := topicmodel.DocsChecksum(shard); sum != want || tokens != uint64(wantTokens) {
			return fmt.Errorf("shard mismatch: worker rebuilt checksum %08x/%d tokens, coordinator has %08x/%d — differing corpus file or parameters",
				sum, tokens, want, wantTokens)
		}
		return nil
	})
	if err != nil {
		w, cause := splitWorkerErr(ws, err)
		return nil, fail(w, cause)
	}
	opt.logf("dtrain: all shards verified, training %d sweeps", mopt.Iterations)

	deltas := make([]*topicmodel.CountRows, len(ws))
	ndks := make([][]int32, len(ws))
	sampleNs := make([]int64, len(ws))
	for it := 1; it <= mopt.Iterations; it++ {
		base := m.NextSweepBase()
		hyper := mopt.OptimizeHyper && it > mopt.BurnIn && it%mopt.HyperEvery == 0

		// SWEEP broadcast: iteration, RNG base, current priors.
		var sweep []byte
		sweep = binary.LittleEndian.AppendUint32(sweep, uint32(it))
		sweep = binary.LittleEndian.AppendUint64(sweep, base)
		if hyper {
			sweep = append(sweep, 1)
		} else {
			sweep = append(sweep, 0)
		}
		for _, a := range m.Alpha {
			sweep = appendF64(sweep, a)
		}
		sweep = appendF64(sweep, m.AlphaSum)
		sweep = appendF64(sweep, m.Beta)
		sweep = appendF64(sweep, m.BetaSum)

		t0 := time.Now()
		err = each(ws, func(w *wconn) error {
			if err := w.fr.send(fSweep, sweep); err != nil {
				return err
			}
			payload, err := w.fr.recvExpect(fDelta)
			if err != nil {
				return err
			}
			return decodeDelta(payload, w, m.K, m.V, hyper, deltas, ndks, sampleNs)
		})
		if err != nil {
			w, cause := splitWorkerErr(ws, err)
			return nil, fail(w, cause)
		}
		sampleDur := time.Since(t0)

		t1 := time.Now()
		combined, err := m.FoldShardDeltas(deltas)
		if err != nil {
			for _, o := range ws {
				o.fr.abort(err.Error())
			}
			return nil, fmt.Errorf("dtrain: reconcile failed: %w", err)
		}
		if hyper {
			// Hyperparameter optimisation reads every document-topic row,
			// so workers uploaded their current Ndk alongside the delta.
			for _, w := range ws {
				rows := ndks[w.index]
				for i := 0; i < w.hi-w.lo; i++ {
					copy(m.Ndk[w.lo+i], rows[i*m.K:(i+1)*m.K])
				}
			}
		}
		rows := combined.AppendTo(nil)
		err = each(ws, func(w *wconn) error {
			return w.fr.send(fRows, rows)
		})
		if err != nil {
			w, cause := splitWorkerErr(ws, err)
			return nil, fail(w, cause)
		}
		if hyper {
			m.OptimizeAlpha(5)
			m.OptimizeBeta(5)
		}
		if opt.SweepStats != nil {
			per := make([]time.Duration, len(ws))
			for i, ns := range sampleNs {
				per[i] = time.Duration(ns)
			}
			opt.SweepStats(topicmodel.SweepStats{
				Workers:      len(ws),
				Sample:       sampleDur,
				Reconcile:    time.Since(t1),
				WorkerSample: per,
			})
		}
	}

	// FINISH: collect final shard assignments and install them.
	type finalState struct {
		z [][]int32
	}
	finals := make([]finalState, len(ws))
	err = each(ws, func(w *wconn) error {
		if err := w.fr.send(fFinish, nil); err != nil {
			return err
		}
		payload, err := w.fr.recvExpect(fFinal)
		if err != nil {
			return err
		}
		r := wireReader{data: payload}
		ndocs := int(r.u32())
		if ndocs != w.hi-w.lo {
			return fmt.Errorf("%w: final state has %d docs, shard has %d", ErrProtocol, ndocs, w.hi-w.lo)
		}
		z := make([][]int32, ndocs)
		for i := range z {
			z[i] = r.i32s(make([]int32, int(r.u32())))
		}
		if r.err != nil {
			return r.err
		}
		finals[w.index] = finalState{z: z}
		return nil
	})
	if err != nil {
		w, cause := splitWorkerErr(ws, err)
		return nil, fail(w, cause)
	}
	for _, w := range ws {
		if err := m.InstallShardState(w.lo, finals[w.index].z); err != nil {
			return nil, fail(w, err)
		}
	}
	opt.logf("dtrain: training complete")
	return m, nil
}

// acceptWorkers collects opt.Workers HELLO handshakes. Worker index is
// assignment order; any assignment yields the same result, since the
// topology is (count, ranges, seed), not which process got which shard.
func acceptWorkers(ln net.Listener, opt Options) ([]*wconn, error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		_ = d.SetDeadline(time.Now().Add(opt.AcceptTimeout))
		defer func() { _ = d.SetDeadline(time.Time{}) }()
	}
	ws := make([]*wconn, 0, opt.Workers)
	for len(ws) < opt.Workers {
		conn, err := ln.Accept()
		if err != nil {
			for _, w := range ws {
				_ = w.fr.conn.Close()
			}
			return nil, fmt.Errorf("%w: %d/%d workers connected: %v", ErrWorkerLost, len(ws), opt.Workers, err)
		}
		fr := &framer{conn: conn, timeout: opt.BarrierTimeout}
		hello, err := fr.recvExpect(fHello)
		if err == nil {
			r := wireReader{data: hello}
			if v := r.u32(); r.err == nil && int(v) != protoVersion {
				err = fmt.Errorf("%w: worker speaks protocol %d, coordinator %d", ErrProtocol, v, protoVersion)
			} else {
				err = r.err
			}
		}
		if err != nil {
			fr.abort(fmt.Sprintf("handshake failed: %v", err))
			_ = conn.Close()
			for _, w := range ws {
				_ = w.fr.conn.Close()
			}
			return nil, fmt.Errorf("dtrain: worker handshake: %w", err)
		}
		ws = append(ws, &wconn{fr: fr})
	}
	return ws, nil
}

// decodeDelta parses a DELTA payload into the per-worker slots.
func decodeDelta(payload []byte, w *wconn, k, v int, wantNdk bool, deltas []*topicmodel.CountRows, ndks [][]int32, sampleNs []int64) error {
	r := wireReader{data: payload}
	sampleNs[w.index] = int64(r.u64())
	hasNdk := r.u8() == 1
	if r.err != nil {
		return r.err
	}
	if hasNdk != wantNdk {
		return fmt.Errorf("%w: delta ndk presence %v, want %v", ErrProtocol, hasNdk, wantNdk)
	}
	cr, n, err := topicmodel.DecodeCountRows(r.data, v, k)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	r.data = r.data[n:]
	deltas[w.index] = cr
	if wantNdk {
		ndocs := int(r.u32())
		if ndocs != w.hi-w.lo {
			return fmt.Errorf("%w: ndk block has %d docs, shard has %d", ErrProtocol, ndocs, w.hi-w.lo)
		}
		if cap(ndks[w.index]) < ndocs*k {
			ndks[w.index] = make([]int32, ndocs*k)
		}
		ndks[w.index] = r.i32s(ndks[w.index][:ndocs*k])
	}
	return r.err
}

// encodeGlobals serialises the dense word-topic counts + topic totals.
func encodeGlobals(m *topicmodel.Model) []byte {
	buf := make([]byte, 0, 8+4*m.V*m.K+8*m.K)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.V))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.K))
	for w := 0; w < m.V; w++ {
		buf = appendI32s(buf, m.Nwk[w])
	}
	return appendI64s(buf, m.Nk)
}

// workerErr tags an error with the worker it came from so the
// concurrent barrier helper can report which one failed.
type workerErr struct {
	index int
	err   error
}

func (e *workerErr) Error() string { return fmt.Sprintf("worker %d: %v", e.index, e.err) }
func (e *workerErr) Unwrap() error { return e.err }

// each runs fn for every worker concurrently and waits for all of
// them, returning the first failure (lowest worker index) wrapped as a
// *workerErr.
func each(ws []*wconn, fn func(w *wconn) error) error {
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *wconn) {
			defer wg.Done()
			errs[i] = fn(w)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return &workerErr{index: i, err: err}
		}
	}
	return nil
}

// splitWorkerErr recovers the failing worker from an each() error.
func splitWorkerErr(ws []*wconn, err error) (*wconn, error) {
	var we *workerErr
	if errors.As(err, &we) {
		return ws[we.index], we.err
	}
	return ws[0], err
}

// classify turns a worker failure into the caller-facing error: an
// explicit ABORT keeps its message; a dead or stalled connection is
// ErrWorkerLost.
func classify(w *wconn, err error) error {
	var ae *abortError
	if errors.As(err, &ae) {
		return fmt.Errorf("dtrain: worker %d aborted: %s", w.index, ae.msg)
	}
	if errors.Is(err, ErrProtocol) {
		return fmt.Errorf("dtrain: worker %d: %w", w.index, err)
	}
	return fmt.Errorf("%w: worker %d: %v", ErrWorkerLost, w.index, err)
}
