package corpusfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
)

var testDocs = []string{
	"frequent pattern mining finds frequent patterns in large data sets.",
	"topic models such as latent dirichlet allocation model documents; topic models are generative.",
	"", // empty documents keep their slot
	"frequent pattern mining, again: frequent pattern mining!",
	"support vector machines and support vector regression use kernels.",
	"mining frequent patterns from data streams is harder than mining static data.",
}

func buildTestCorpus(t testing.TB, keepSurface bool) *corpus.Corpus {
	t.Helper()
	opt := corpus.DefaultBuildOptions()
	opt.KeepSurface = keepSurface
	return corpus.FromStrings(testDocs, opt)
}

func mineAndSegment(t testing.TB, c *corpus.Corpus) *Artifacts {
	t.Helper()
	mined := phrasemine.Mine(c, phrasemine.Options{MinSupport: 2, MaxLen: 8, Workers: 1})
	segs := segment.NewSegmenter(mined, segment.Options{Alpha: 1, MaxPhraseLen: 8, Workers: 1}).SegmentCorpus(c)
	return &Artifacts{
		Params: Params{MinSupport: 2, MaxPhraseLen: 8, SigThreshold: 1},
		Mined:  mined,
		Segs:   segs,
	}
}

// sameCorpus verifies that two corpora are observationally identical:
// same stats, same tokens, same surfaces/gaps, same vocabulary.
func sameCorpus(t *testing.T, want, got *corpus.Corpus) {
	t.Helper()
	if w, g := want.ComputeStats(), got.ComputeStats(); w != g {
		t.Fatalf("stats differ:\nwant %v\ngot  %v", w, g)
	}
	if want.TotalTokens != got.TotalTokens {
		t.Fatalf("TotalTokens: want %d, got %d", want.TotalTokens, got.TotalTokens)
	}
	if want.BuildOpts.Stem != got.BuildOpts.Stem ||
		want.BuildOpts.RemoveStopwords != got.BuildOpts.RemoveStopwords ||
		want.BuildOpts.KeepSurface != got.BuildOpts.KeepSurface {
		t.Fatalf("BuildOpts: want %+v, got %+v", want.BuildOpts, got.BuildOpts)
	}
	if w, g := want.Vocab.Size(), got.Vocab.Size(); w != g {
		t.Fatalf("vocab size: want %d, got %d", w, g)
	}
	for id := int32(0); int(id) < want.Vocab.Size(); id++ {
		if w, g := want.Vocab.Word(id), got.Vocab.Word(id); w != g {
			t.Fatalf("vocab word %d: want %q, got %q", id, w, g)
		}
		if w, g := want.Vocab.Unstem(id), got.Vocab.Unstem(id); w != g {
			t.Fatalf("vocab unstem %d: want %q, got %q", id, w, g)
		}
		if w, g := want.Vocab.Count(id), got.Vocab.Count(id); w != g {
			t.Fatalf("vocab count %d: want %d, got %d", id, w, g)
		}
	}
	for d := range want.Docs {
		wd, gd := want.Docs[d], got.Docs[d]
		if len(wd.Segments) != len(gd.Segments) {
			t.Fatalf("doc %d: want %d segments, got %d", d, len(wd.Segments), len(gd.Segments))
		}
		for si := range wd.Segments {
			ws, gs := &wd.Segments[si], &gd.Segments[si]
			if !reflect.DeepEqual(ws.Words(), gs.Words()) {
				t.Fatalf("doc %d seg %d words: want %v, got %v", d, si, ws.Words(), gs.Words())
			}
			if ws.HasSurface() != gs.HasSurface() {
				t.Fatalf("doc %d seg %d HasSurface: want %v, got %v", d, si, ws.HasSurface(), gs.HasSurface())
			}
			for i := 0; i < ws.Len(); i++ {
				if ws.Surface(i) != gs.Surface(i) || ws.Gap(i) != gs.Gap(i) {
					t.Fatalf("doc %d seg %d token %d: want %q/%q, got %q/%q",
						d, si, i, ws.Surface(i), ws.Gap(i), gs.Surface(i), gs.Gap(i))
				}
			}
		}
	}
}

func TestRoundTripLoad(t *testing.T) {
	for _, keep := range []bool{true, false} {
		c := buildTestCorpus(t, keep)
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("keep=%v: Write: %v", keep, err)
		}
		f, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("keep=%v: Load: %v", keep, err)
		}
		sameCorpus(t, c, f.Corpus())
		if f.Mined() != nil || f.Segmented() != nil {
			t.Fatalf("keep=%v: corpus-only file carries artifacts", keep)
		}
		if f.Mapped() {
			t.Fatalf("keep=%v: Load must not report a mapping", keep)
		}
	}
}

func TestRoundTripArtifacts(t *testing.T) {
	c := buildTestCorpus(t, true)
	art := mineAndSegment(t, c)
	var buf bytes.Buffer
	if err := WriteArtifacts(&buf, c, art); err != nil {
		t.Fatal(err)
	}
	f, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameCorpus(t, c, f.Corpus())
	if f.Params() != art.Params {
		t.Fatalf("params: want %+v, got %+v", art.Params, f.Params())
	}
	if f.Mined() == nil || f.Mined().Counts.Len() != art.Mined.Counts.Len() {
		t.Fatalf("mined phrases not restored")
	}
	if f.Mined().MinSupport != art.Mined.MinSupport || f.Mined().MaxPhraseLen != art.Mined.MaxPhraseLen {
		t.Fatalf("mined metadata differs: %+v vs %+v", f.Mined(), art.Mined)
	}
	wantEntries := art.Mined.Counts.Entries(1)
	gotEntries := f.Mined().Counts.Entries(1)
	if !reflect.DeepEqual(wantEntries, gotEntries) {
		t.Fatalf("mined entries differ")
	}
	if !reflect.DeepEqual(art.Segs, f.Segmented()) {
		t.Fatalf("segmented docs differ:\nwant %+v\ngot  %+v", art.Segs, f.Segmented())
	}
}

func TestOpenMmap(t *testing.T) {
	c := buildTestCorpus(t, true)
	art := mineAndSegment(t, c)
	path := filepath.Join(t.TempDir(), "corpus.tpc")
	if err := WriteFile(path, c, art); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Mapped() && hostLittle {
		t.Error("Open did not mmap on a little-endian unix host")
	}
	sameCorpus(t, c, f.Corpus())
	if !reflect.DeepEqual(art.Segs, f.Segmented()) {
		t.Fatalf("segmented docs differ after mmap open")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	c := buildTestCorpus(t, false)
	path := filepath.Join(t.TempDir(), "corpus.tpc")
	if err := WriteFile(path, c, nil); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second corpus; the file must stay valid.
	if err := WriteFile(path, c, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sameCorpus(t, c, f.Corpus())
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

// corrupt loads a mutated copy of a valid file image and returns the
// error (failing the test on success or panic).
func loadCorrupt(t *testing.T, img []byte, mutate func([]byte)) error {
	t.Helper()
	b := append([]byte(nil), img...)
	if mutate != nil {
		mutate(b)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Load panicked on corrupt input: %v", r)
		}
	}()
	f, err := Load(bytes.NewReader(b))
	if err == nil {
		t.Fatalf("Load accepted corrupt input (got corpus with %d docs)", len(f.Corpus().Docs))
	}
	return err
}

func validImage(t *testing.T) []byte {
	t.Helper()
	c := buildTestCorpus(t, true)
	art := mineAndSegment(t, c)
	var buf bytes.Buffer
	if err := WriteArtifacts(&buf, c, art); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCorruptBadMagic(t *testing.T) {
	img := validImage(t)
	err := loadCorrupt(t, img, func(b []byte) { b[0] = 'X' })
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	// A foreign file entirely.
	err = loadCorrupt(t, []byte("this is not a corpus file at all"), nil)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	// An empty file.
	err = loadCorrupt(t, nil, nil)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestCorruptVersion(t *testing.T) {
	err := loadCorrupt(t, validImage(t), func(b []byte) { b[8] = 0xFF })
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestCorruptChecksum(t *testing.T) {
	img := validImage(t)
	// Flip one byte in the middle of the token arena (well past the
	// header and table, before the trailing sections).
	err := loadCorrupt(t, img, func(b []byte) { b[len(b)/3] ^= 0x40 })
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
}

func TestCorruptTruncatedArena(t *testing.T) {
	img := validImage(t)
	// Cut the file in half: some section (the arena or a later one) now
	// extends past EOF, which the table bounds check must catch.
	err := loadCorrupt(t, img[:len(img)/2], nil)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

// TestCorruptEveryTruncation chops the file at a sweep of lengths and
// requires a named error (and no panic) at every cut. Every cut in the
// header+table region is tried individually — a cut between the magic
// and the end of the header once panicked instead of erroring — plus a
// stepped sweep over the section payloads.
func TestCorruptEveryTruncation(t *testing.T) {
	img := validImage(t)
	check := func(cut int) {
		t.Helper()
		err := loadCorrupt(t, img[:cut], nil)
		if !(errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTruncated) ||
			errors.Is(err, ErrChecksum) || errors.Is(err, ErrFormat) || errors.Is(err, ErrVersion)) {
			t.Fatalf("cut at %d/%d: unclassified error %v", cut, len(img), err)
		}
	}
	dense := 4 * sectionAlign // all of header + table + first padding
	if dense > len(img) {
		dense = len(img)
	}
	for cut := 0; cut < dense; cut++ {
		check(cut)
	}
	step := len(img)/97 + 1
	for cut := dense; cut < len(img); cut += step {
		check(cut)
	}
}

// TestCorruptEveryByteFlip flips one byte at a sweep of positions; the
// reader must either reject the file with a named error or (for bytes
// in padding) still decode it — never panic. Flips inside CRC-covered
// payloads must be detected.
func TestCorruptEveryByteFlip(t *testing.T) {
	img := validImage(t)
	step := len(img)/211 + 1
	for pos := 0; pos < len(img); pos += step {
		b := append([]byte(nil), img...)
		b[pos] ^= 0xA5
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at %d: Load panicked: %v", pos, r)
				}
			}()
			Load(bytes.NewReader(b))
		}()
	}
}

func TestCorruptSectionTable(t *testing.T) {
	img := validImage(t)
	// Point the first section's offset past EOF.
	err := loadCorrupt(t, img, func(b []byte) {
		off := uint64(len(b)) + sectionAlign
		off &^= uint64(sectionAlign - 1)
		for i := 0; i < 8; i++ {
			b[headerSize+8+i] = byte(off >> (8 * i))
		}
	})
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated for out-of-file section, got %v", err)
	}
	// Unaligned offset.
	err = loadCorrupt(t, img, func(b []byte) { b[headerSize+8]++ })
	if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrFormat/ErrTruncated for unaligned section, got %v", err)
	}
}

// TestValidateMinedRejectsBadWordIDs pins that a CRC-valid file whose
// mined phrases reference out-of-vocabulary word ids is rejected at
// load (display paths index vocabulary tables by id and would panic).
func TestValidateMinedRejectsBadWordIDs(t *testing.T) {
	c := buildTestCorpus(t, true)
	art := mineAndSegment(t, c)
	art.Segs = nil // keep the hostile phrase out of span validation
	art.Mined.Counts.Inc(counter.Key([]int32{int32(c.Vocab.Size() + 7)}))
	var buf bytes.Buffer
	if err := WriteArtifacts(&buf, c, art); err != nil {
		t.Fatal(err)
	}
	_, err := Load(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("want ErrFormat for out-of-vocab mined phrase, got %v", err)
	}
}

// TestDecodeSpansRejectsHugeCount pins that a crafted span count is
// rejected before it can size an allocation (a CRC-valid file can
// still carry hostile counts).
func TestDecodeSpansRejectsHugeCount(t *testing.T) {
	c := buildTestCorpus(t, false)
	var b []byte
	u32 := func(v uint32) { b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
	u32(uint32(len(c.Docs)))
	u32(uint32(len(c.Docs[0].Segments))) // doc 0 segment count (valid)
	u32(0xFFFFFFFF)                      // hostile span count for segment 0
	_, err := decodeSpans(b, c)
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("want ErrFormat for hostile span count, got %v", err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent.tpc")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}
