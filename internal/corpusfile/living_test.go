package corpusfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"topmine/internal/corpus"
	"topmine/internal/minhash"
	"topmine/internal/phrasemine"
)

var appendDocs = []string{
	"incremental corpus growth appends new documents without rewriting old ones.",
	"",
	"streaming data arrives in shards; shards merge into one corpus.",
	"frequent pattern mining finds frequent patterns in streaming data too.",
}

func writeShard(t *testing.T, dir, name string, docs []string, keep bool) string {
	t.Helper()
	opt := corpus.DefaultBuildOptions()
	opt.KeepSurface = keep
	path := filepath.Join(dir, name)
	if err := WriteFile(path, corpus.FromStrings(docs, opt), nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func appendDocsTo(t *testing.T, path string, docs []string, opt AppendOptions) *AppendStats {
	t.Helper()
	stats, err := AppendFile(path, corpus.SliceSource(docs), opt)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestAppendFileEquivalence pins the core growth contract at the file
// layer: a corpus grown by AppendFile is observationally identical to
// one preprocessed from the concatenated input, and re-persisting it
// reproduces the from-scratch .tpc image byte for byte.
func TestAppendFileEquivalence(t *testing.T) {
	for _, keep := range []bool{true, false} {
		dir := t.TempDir()
		path := writeShard(t, dir, "grow.tpc", testDocs, keep)
		stats := appendDocsTo(t, path, appendDocs, AppendOptions{})
		if stats.DocsAdded != len(appendDocs) || stats.DocsSkipped != 0 || stats.Segments != 1 {
			t.Fatalf("stats = %+v", stats)
		}

		f, err := Open(path)
		if err != nil {
			t.Fatalf("keep=%v: open grown file: %v", keep, err)
		}
		defer f.Close()
		if f.Version() != VersionMulti || f.AppendedSegments() != 1 {
			t.Fatalf("version=%d segments=%d", f.Version(), f.AppendedSegments())
		}

		opt := corpus.DefaultBuildOptions()
		opt.KeepSurface = keep
		want := corpus.FromStrings(append(append([]string{}, testDocs...), appendDocs...), opt)
		sameCorpus(t, want, f.Corpus())

		var wantBuf, gotBuf bytes.Buffer
		if err := Write(&wantBuf, want); err != nil {
			t.Fatal(err)
		}
		if err := Write(&gotBuf, f.Corpus()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
			t.Fatalf("keep=%v: re-persisted grown corpus differs from from-scratch image", keep)
		}
	}
}

// TestAppendFileTwice grows a grown file again: two appended segments,
// still equivalent to the triple concatenation.
func TestAppendFileTwice(t *testing.T) {
	dir := t.TempDir()
	path := writeShard(t, dir, "grow.tpc", testDocs, true)
	appendDocsTo(t, path, appendDocs, AppendOptions{})
	more := []string{"a third shard arrives later still."}
	stats := appendDocsTo(t, path, more, AppendOptions{})
	if stats.Segments != 2 {
		t.Fatalf("Segments = %d, want 2", stats.Segments)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.AppendedSegments() != 2 {
		t.Fatalf("AppendedSegments = %d", f.AppendedSegments())
	}
	all := append(append(append([]string{}, testDocs...), appendDocs...), more...)
	sameCorpus(t, corpus.FromStrings(all, corpus.DefaultBuildOptions()), f.Corpus())
}

// TestDocRangeViews pins the zero-copy doc-range open a distributed
// training worker relies on: over a 2-segment v2 file, two disjoint
// ranges must reproduce the full open's token and segment data byte
// for byte, share (not copy) the token arena, surface pool and
// vocabulary, and rebase document IDs to the range.
func TestDocRangeViews(t *testing.T) {
	dir := t.TempDir()
	path := writeShard(t, dir, "grow.tpc", testDocs, true)
	appendDocsTo(t, path, appendDocs, AppendOptions{})

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Version() != VersionMulti {
		t.Fatalf("fixture is not a v2 file (version %d)", f.Version())
	}
	full := f.Corpus()
	n := len(full.Docs)
	mid := len(testDocs) // base-segment/appended-segment boundary

	wantTokens := 0
	for _, r := range [][2]int{{0, mid}, {mid, n}} {
		sub, err := f.DocRange(r[0], r[1])
		if err != nil {
			t.Fatalf("DocRange(%d, %d): %v", r[0], r[1], err)
		}
		if len(sub.Docs) != r[1]-r[0] {
			t.Fatalf("range %v: %d docs", r, len(sub.Docs))
		}
		if sub.Vocab != full.Vocab {
			t.Fatalf("range %v: vocabulary copied instead of shared", r)
		}
		tokens := 0
		for i, sd := range sub.Docs {
			fd := full.Docs[r[0]+i]
			if sd.ID != i {
				t.Fatalf("range %v doc %d: ID %d not rebased", r, i, sd.ID)
			}
			if len(sd.Segments) != len(fd.Segments) {
				t.Fatalf("range %v doc %d: %d segments, want %d", r, i, len(sd.Segments), len(fd.Segments))
			}
			for si := range sd.Segments {
				sw, fw := sd.Segments[si].Words(), fd.Segments[si].Words()
				if len(sw) != len(fw) {
					t.Fatalf("range %v doc %d seg %d: %d words, want %d", r, i, si, len(sw), len(fw))
				}
				for wi := range sw {
					if sw[wi] != fw[wi] {
						t.Fatalf("range %v doc %d seg %d word %d: %d != %d", r, i, si, wi, sw[wi], fw[wi])
					}
				}
				// Zero-copy: the view's words alias the full open's arena.
				if len(sw) > 0 && &sw[0] != &fw[0] {
					t.Fatalf("range %v doc %d seg %d: token data copied", r, i, si)
				}
				for wi := 0; wi < sd.Segments[si].Len(); wi++ {
					if sd.Segments[si].Surface(wi) != fd.Segments[si].Surface(wi) ||
						sd.Segments[si].Gap(wi) != fd.Segments[si].Gap(wi) {
						t.Fatalf("range %v doc %d seg %d: surface/gap pool diverged", r, i, si)
					}
				}
			}
			tokens += sd.Len()
		}
		if sub.TotalTokens != tokens {
			t.Fatalf("range %v: TotalTokens %d, counted %d", r, sub.TotalTokens, tokens)
		}
		wantTokens += tokens
	}
	if wantTokens != full.TotalTokens {
		t.Fatalf("disjoint ranges cover %d tokens, full corpus has %d", wantTokens, full.TotalTokens)
	}

	for _, r := range [][2]int{{-1, 2}, {0, n + 1}, {5, 3}} {
		if _, err := f.DocRange(r[0], r[1]); err == nil {
			t.Fatalf("DocRange(%d, %d): no error", r[0], r[1])
		}
	}
}

// TestAppendFileNoOp: appending nothing must leave the file untouched.
func TestAppendFileNoOp(t *testing.T) {
	dir := t.TempDir()
	path := writeShard(t, dir, "grow.tpc", testDocs, true)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stats := appendDocsTo(t, path, nil, AppendOptions{Sketch: true})
	if stats.DocsAdded != 0 || stats.Segments != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("zero-document append rewrote the file")
	}
}

// TestAppendStaleArtifacts: artifacts bundled before an append must be
// dropped loudly, never served against the grown corpus.
func TestAppendStaleArtifacts(t *testing.T) {
	dir := t.TempDir()
	c := buildTestCorpus(t, true)
	path := filepath.Join(dir, "art.tpc")
	if err := WriteFile(path, c, mineAndSegment(t, c)); err != nil {
		t.Fatal(err)
	}
	appendDocsTo(t, path, appendDocs, AppendOptions{})
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mined() != nil || f.Segmented() != nil {
		t.Fatal("stale artifacts served after append")
	}
	if f.StaleArtifacts() == "" {
		t.Fatal("StaleArtifacts is silent about the drop")
	}
}

// TestAppendDedup exercises both dedup paths: sketches recomputed from
// the stored corpus, and sketches read back from the file.
func TestAppendDedup(t *testing.T) {
	for _, stored := range []bool{false, true} {
		dir := t.TempDir()
		opt := corpus.DefaultBuildOptions()
		c := corpus.FromStrings(testDocs, opt)
		path := filepath.Join(dir, "dedup.tpc")
		var sketches []minhash.Sketch
		if stored {
			h := minhash.NewHasher(minhash.DefaultK, minhash.CanonicalSeed)
			for _, d := range testDocs {
				sketches = append(sketches, h.Sketch(stemsOf(d, opt)))
			}
		}
		if err := WriteFileSketched(path, c, nil, sketches); err != nil {
			t.Fatal(err)
		}
		incoming := []string{
			testDocs[0], // exact duplicate of a stored doc
			"a genuinely new document about completely different things.",
			testDocs[5], // another stored duplicate
			"a genuinely new document about completely different things.", // dup within the batch
			"", // empty docs are never duplicates
		}
		stats := appendDocsTo(t, path, incoming, AppendOptions{Dedup: true})
		if stats.DocsSkipped != 3 {
			t.Fatalf("stored=%v: DocsSkipped = %d, want 3 (stats %+v)", stored, stats.DocsSkipped, stats)
		}
		if stats.DocsAdded != 2 {
			t.Fatalf("stored=%v: DocsAdded = %d, want 2", stored, stats.DocsAdded)
		}
		f, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(f.Corpus().Docs); got != len(testDocs)+2 {
			t.Fatalf("grown corpus has %d docs, want %d", got, len(testDocs)+2)
		}
		f.Close()
	}
}

// TestSketchRoundTrip pins sketch persistence and the all-or-nothing
// coverage rule.
func TestSketchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := corpus.DefaultBuildOptions()
	c := corpus.FromStrings(testDocs, opt)
	h := minhash.NewHasher(minhash.DefaultK, minhash.CanonicalSeed)
	var sketches []minhash.Sketch
	for _, d := range testDocs {
		sketches = append(sketches, h.Sketch(stemsOf(d, opt)))
	}
	path := filepath.Join(dir, "sk.tpc")
	if err := WriteFileSketched(path, c, nil, sketches); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.SketchK() != minhash.DefaultK || len(f.Sketches()) != len(testDocs) {
		t.Fatalf("k=%d n=%d", f.SketchK(), len(f.Sketches()))
	}
	for i, sk := range f.Sketches() {
		if !reflect.DeepEqual([]uint64(sk), []uint64(sketches[i])) {
			t.Fatalf("sketch %d round-trip mismatch", i)
		}
	}
	f.Close()

	// Sketched append keeps coverage; a later sketchless append breaks
	// it for the whole file.
	appendDocsTo(t, path, appendDocs, AppendOptions{Sketch: true})
	f, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sketches()) != len(testDocs)+len(appendDocs) {
		t.Fatalf("coverage after sketched append: %d sketches", len(f.Sketches()))
	}
	f.Close()
	appendDocsTo(t, path, []string{"no sketch for this one"}, AppendOptions{})
	f, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Sketches() != nil {
		t.Fatal("partial sketch coverage should read back as none")
	}
	f.Close()
}

// TestMergeFilesEquivalence: a k-way merge of artifact-free shards is
// byte-identical to preprocessing the concatenated input.
func TestMergeFilesEquivalence(t *testing.T) {
	for _, keep := range []bool{true, false} {
		dir := t.TempDir()
		shards := [][]string{testDocs[:3], testDocs[3:], appendDocs}
		var paths []string
		var all []string
		for i, docs := range shards {
			paths = append(paths, writeShard(t, dir, filepath.Base(dir)+string(rune('a'+i))+".tpc", docs, keep))
			all = append(all, docs...)
		}
		dst := filepath.Join(dir, "merged.tpc")
		stats, err := MergeFiles(dst, paths...)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Sources != 3 || stats.Docs != len(all) {
			t.Fatalf("stats = %+v", stats)
		}
		opt := corpus.DefaultBuildOptions()
		opt.KeepSurface = keep
		var wantBuf bytes.Buffer
		if err := Write(&wantBuf, corpus.FromStrings(all, opt)); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBuf.Bytes(), got) {
			t.Fatalf("keep=%v: merged file differs from from-scratch image", keep)
		}
	}
}

// TestMergeFilesArtifacts: with unpruned mining (min_support 1), the
// merged phrase statistics equal a from-scratch mine over the union —
// and the whole merged file matches the from-scratch image byte for
// byte. With pruning, artifacts are dropped with a recorded reason.
func TestMergeFilesArtifacts(t *testing.T) {
	dir := t.TempDir()
	shards := [][]string{testDocs, appendDocs}
	mineOpt := phrasemine.Options{MinSupport: 1, MaxLen: 8, Workers: 1}
	prm := Params{MinSupport: 1, MaxPhraseLen: 8, SigThreshold: 1}
	var paths []string
	var all []string
	for i, docs := range shards {
		c := corpus.FromStrings(docs, corpus.DefaultBuildOptions())
		path := filepath.Join(dir, string(rune('a'+i))+".tpc")
		art := &Artifacts{Params: prm, Mined: phrasemine.Mine(c, mineOpt)}
		if err := WriteFile(path, c, art); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		all = append(all, docs...)
	}
	dst := filepath.Join(dir, "merged.tpc")
	stats, err := MergeFiles(dst, paths...)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ArtifactsMerged || stats.ArtifactsDropped != "" {
		t.Fatalf("stats = %+v", stats)
	}
	union := corpus.FromStrings(all, corpus.DefaultBuildOptions())
	wantMined := phrasemine.Mine(union, mineOpt)
	var wantBuf bytes.Buffer
	if err := WriteArtifacts(&wantBuf, union, &Artifacts{Params: prm, Mined: wantMined}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), got) {
		t.Fatal("merged file with artifacts differs from from-scratch image")
	}

	// Pruned sources: merge succeeds, artifacts dropped loudly.
	prunedPrm := Params{MinSupport: 2, MaxPhraseLen: 8, SigThreshold: 1}
	var prunedPaths []string
	for i, docs := range shards {
		c := corpus.FromStrings(docs, corpus.DefaultBuildOptions())
		path := filepath.Join(dir, "p"+string(rune('a'+i))+".tpc")
		art := &Artifacts{Params: prunedPrm, Mined: phrasemine.Mine(c, phrasemine.Options{MinSupport: 2, MaxLen: 8, Workers: 1})}
		if err := WriteFile(path, c, art); err != nil {
			t.Fatal(err)
		}
		prunedPaths = append(prunedPaths, path)
	}
	dst2 := filepath.Join(dir, "merged2.tpc")
	stats, err = MergeFiles(dst2, prunedPaths...)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ArtifactsMerged || stats.ArtifactsDropped == "" {
		t.Fatalf("pruned merge stats = %+v", stats)
	}
	f, err := Open(dst2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mined() != nil {
		t.Fatal("pruned artifacts leaked into the merged file")
	}
	f.Close()
}

// TestMergeFilesRejects pins the validation errors.
func TestMergeFilesRejects(t *testing.T) {
	dir := t.TempDir()
	a := writeShard(t, dir, "a.tpc", testDocs, true)
	b := writeShard(t, dir, "b.tpc", appendDocs, false) // different build options
	if _, err := MergeFiles(filepath.Join(dir, "out.tpc"), a); err == nil {
		t.Fatal("merge of one source accepted")
	}
	if _, err := MergeFiles(filepath.Join(dir, "out.tpc"), a, b); err == nil {
		t.Fatal("merge of incompatible build options accepted")
	}
}

// grownImage builds a version-2 image (base with artifacts and
// sketches, one sketched appended segment) for the corrupt-tail
// sweeps, returning the image and the base image's length.
func grownImage(t *testing.T) ([]byte, int) {
	t.Helper()
	dir := t.TempDir()
	opt := corpus.DefaultBuildOptions()
	c := corpus.FromStrings(testDocs, opt)
	h := minhash.NewHasher(minhash.DefaultK, minhash.CanonicalSeed)
	var sketches []minhash.Sketch
	for _, d := range testDocs {
		sketches = append(sketches, h.Sketch(stemsOf(d, opt)))
	}
	path := filepath.Join(dir, "grown.tpc")
	if err := WriteFileSketched(path, c, mineAndSegment(t, c), sketches); err != nil {
		t.Fatal(err)
	}
	base, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	appendDocsTo(t, path, appendDocs, AppendOptions{Sketch: true})
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return img, len(base)
}

// TestCorruptAppendedTailTruncation cuts a version-2 file at every
// position from the base boundary to EOF: each cut must fail with a
// named error — in particular, a file cut exactly at the base image
// must NOT silently open as the pre-append corpus.
func TestCorruptAppendedTailTruncation(t *testing.T) {
	img, baseLen := grownImage(t)
	for cut := baseLen; cut < len(img); cut++ {
		err := loadCorrupt(t, img[:cut], nil)
		if !(errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) || errors.Is(err, ErrFormat)) {
			t.Fatalf("cut at %d/%d (base %d): unclassified error %v", cut, len(img), baseLen, err)
		}
	}
}

// TestCorruptAppendedTailByteFlip flips every byte of the appended
// region: the reader must reject the flip with a named error or (for
// padding bytes) still decode — never panic, never misread.
func TestCorruptAppendedTailByteFlip(t *testing.T) {
	img, baseLen := grownImage(t)
	for pos := baseLen; pos < len(img); pos++ {
		b := append([]byte(nil), img...)
		b[pos] ^= 0xA5
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at %d: Load panicked: %v", pos, r)
				}
			}()
			f, err := Load(bytes.NewReader(b))
			if err == nil {
				// Only padding flips may decode; the corpus must still
				// be the full grown one.
				if len(f.Corpus().Docs) != len(testDocs)+len(appendDocs) {
					t.Fatalf("flip at %d: decoded %d docs", pos, len(f.Corpus().Docs))
				}
				return
			}
			if !(errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) ||
				errors.Is(err, ErrFormat) || errors.Is(err, ErrVersion) || errors.Is(err, ErrBadMagic)) {
				t.Fatalf("flip at %d: unclassified error %v", pos, err)
			}
		}()
	}
}

// TestOpenNamedErrors pins the misleading-input classifications.
func TestOpenNamedErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); !errors.Is(err, ErrFormat) {
		t.Fatalf("Open(directory): want ErrFormat, got %v", err)
	}
	empty := filepath.Join(dir, "empty.tpc")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(empty); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Open(empty): want ErrTruncated, got %v", err)
	}
}

// TestCloseIdempotent: Close must be callable any number of times.
func TestCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := writeShard(t, dir, "c.tpc", testDocs, true)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
}

// TestV1GoldenFixture opens the committed version-1 fixture and checks
// both directions of format stability: the reader reconstructs the
// expected corpus, and the writer still produces those exact bytes.
// If this test fails after a format change, the change broke
// compatibility with every .tpc file already on disk.
func TestV1GoldenFixture(t *testing.T) {
	img, err := os.ReadFile(filepath.Join("testdata", "v1_golden.tpc"))
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with go run ./testdata/gen_golden.go): %v", err)
	}
	f, err := Load(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("golden v1 fixture no longer opens: %v", err)
	}
	if f.Version() != Version {
		t.Fatalf("fixture version = %d", f.Version())
	}
	want := corpus.FromStrings(goldenDocs, corpus.DefaultBuildOptions())
	sameCorpus(t, want, f.Corpus())
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), img) {
		t.Fatal("writer no longer reproduces the golden v1 image")
	}
}

// goldenDocs is the fixed input behind testdata/v1_golden.tpc. Do not
// change it: the fixture pins the on-disk format, not this corpus.
var goldenDocs = []string{
	"topical phrase mining extracts topical phrases from text corpora.",
	"latent dirichlet allocation is a generative topic model.",
	"phrase mining and topic modeling combine in topmine.",
}
