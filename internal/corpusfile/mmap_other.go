//go:build !unix

package corpusfile

import "errors"

// errNoMmap makes Open fall back to reading the file into memory on
// platforms without a usable mmap; the decoded corpus is identical.
var errNoMmap = errors.New("corpusfile: mmap unsupported on this platform")

func mmapFile(f interface{ Fd() uintptr }, size int64) ([]byte, error) {
	return nil, errNoMmap
}

func munmapFile(b []byte) error { return nil }
