//go:build ignore

// Generates v1_golden.tpc, the committed fixture TestV1GoldenFixture
// pins the version-1 format against. Run from internal/corpusfile:
//
//	go run ./testdata/gen_golden.go
//
// The input documents must match goldenDocs in living_test.go.
package main

import (
	"topmine/internal/corpus"
	"topmine/internal/corpusfile"
)

func main() {
	docs := []string{
		"topical phrase mining extracts topical phrases from text corpora.",
		"latent dirichlet allocation is a generative topic model.",
		"phrase mining and topic modeling combine in topmine.",
	}
	c := corpus.FromStrings(docs, corpus.DefaultBuildOptions())
	if err := corpusfile.WriteFile("testdata/v1_golden.tpc", c, nil); err != nil {
		panic(err)
	}
}
