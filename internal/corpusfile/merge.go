package corpusfile

import (
	"fmt"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/minhash"
	"topmine/internal/phrasemine"
	"topmine/internal/textproc"
)

// MergeStats reports what MergeFiles produced and, when it had to
// drop something, why — a merge never silently loses artifacts.
type MergeStats struct {
	Sources int
	Docs    int
	Tokens  int // kept tokens in the merged corpus
	// ArtifactsMerged is true when the sources' mined phrase counts
	// were re-aggregated exactly into the output.
	ArtifactsMerged bool
	// ArtifactsDropped explains why artifacts were not merged ("" when
	// they were, or when no source carried any).
	ArtifactsDropped string
	// SketchesCarried is true when every source stored sketches of the
	// same size and the output carries their concatenation.
	SketchesCarried bool
}

// MergeFiles k-way-merges the corpus files at srcs (in order) into a
// fresh single-segment file at dst, written atomically. The merged
// corpus is bit-identical to one preprocessed from the concatenated
// inputs: source vocabularies are unioned in source order through the
// same remap primitive the parallel builder uses (textproc.MergeInto),
// string pools are re-interned in first-occurrence order, and every
// token column is rewritten under the union ids.
//
// Bundled phrase statistics are re-aggregated exactly — and only
// exactly — when every source carries artifacts mined under identical
// parameters with no support pruning (MinSupport <= 1 and
// RelativeSupport == 0); per-source pruning at higher thresholds
// discards counts that cross-source mass could have pushed over the
// threshold, so merging them would be wrong and they are dropped with
// the reason recorded in MergeStats. Per-document segmentations are
// always dropped: they were chosen against per-source phrase
// statistics. Sketches are carried over whenever every source stores
// them at one size.
func MergeFiles(dst string, srcs ...string) (*MergeStats, error) {
	if len(srcs) < 2 {
		return nil, fmt.Errorf("corpusfile: Merge: need at least 2 sources, have %d", len(srcs))
	}
	files := make([]*File, 0, len(srcs))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	raws := make([]*corpus.Raw, len(srcs))
	for i, path := range srcs {
		f, err := Open(path)
		if err != nil {
			return nil, fmt.Errorf("corpusfile: Merge: source %s: %w", path, err)
		}
		files = append(files, f)
		raw, err := f.Corpus().Raw()
		if err != nil {
			return nil, fmt.Errorf("corpusfile: Merge: source %s: %w", path, err)
		}
		raws[i] = raw
		if raw.BuildOpts != raws[0].BuildOpts {
			return nil, fmt.Errorf("corpusfile: Merge: source %s was built with %+v, source %s with %+v",
				srcs[i], raw.BuildOpts, srcs[0], raws[0].BuildOpts)
		}
	}

	merged, remaps := mergeRaws(raws)
	stats := &MergeStats{Sources: len(srcs), Docs: len(merged.SegCounts), Tokens: merged.TotalTokens}

	art := mergeArtifacts(files, srcs, remaps, stats)
	sketches := mergeSketches(files, stats)

	// Round-trip the merged columns through the corpus assembler: it
	// runs the full structural validation (offsets, pool ids, word
	// ids), so an internal merge bug fails here instead of producing a
	// corrupt file.
	c, err := corpus.FromRaw(merged)
	if err != nil {
		return nil, fmt.Errorf("corpusfile: Merge: %w", err)
	}
	if err := WriteFileSketched(dst, c, art, sketches); err != nil {
		return nil, err
	}
	return stats, nil
}

// mergeRaws concatenates the sources' columns under a union
// vocabulary and pool, returning the merged view plus each source's
// word-id remap table (needed again for artifact re-aggregation).
func mergeRaws(raws []*corpus.Raw) (*corpus.Raw, [][]int32) {
	vocab := textproc.NewVocab()
	remaps := make([][]int32, len(raws))
	for i, raw := range raws {
		remaps[i] = raw.Vocab.MergeInto(vocab)
	}
	nTok, nDocs, nSegs := 0, 0, 0
	for _, raw := range raws {
		nTok += len(raw.Words)
		nDocs += len(raw.SegCounts)
		nSegs += len(raw.SegOffs)
	}
	keep := raws[0].KeepSurface
	merged := &corpus.Raw{
		Words:       make([]int32, 0, nTok),
		KeepSurface: keep,
		SegCounts:   make([]int32, 0, nDocs),
		SegOffs:     make([]int32, 0, nSegs),
		SegLens:     make([]int32, 0, nSegs),
		Vocab:       vocab,
		BuildOpts:   raws[0].BuildOpts,
	}
	var poolIDs map[string]uint32
	if keep {
		merged.Surface = make([]uint32, 0, nTok)
		merged.Gaps = make([]uint32, 0, nTok)
		poolIDs = make(map[string]uint32)
	}
	for i, raw := range raws {
		remap := remaps[i]
		for _, w := range raw.Words {
			merged.Words = append(merged.Words, remap[w])
		}
		if keep {
			// Re-intern this source's pool in id order — its own
			// first-occurrence order — so the merged pool is exactly
			// what a serial build over the concatenated input interns.
			poolRemap := make([]uint32, len(raw.Pool))
			for pid, s := range raw.Pool {
				gid, ok := poolIDs[s]
				if !ok {
					gid = uint32(len(merged.Pool))
					poolIDs[s] = gid
					merged.Pool = append(merged.Pool, s)
				}
				poolRemap[pid] = gid
			}
			for _, v := range raw.Surface {
				merged.Surface = append(merged.Surface, poolRemap[v])
			}
			for _, v := range raw.Gaps {
				merged.Gaps = append(merged.Gaps, poolRemap[v])
			}
		}
		tokenBase := int32(len(merged.Words) - len(raw.Words))
		merged.SegCounts = append(merged.SegCounts, raw.SegCounts...)
		for _, off := range raw.SegOffs {
			merged.SegOffs = append(merged.SegOffs, tokenBase+off)
		}
		merged.SegLens = append(merged.SegLens, raw.SegLens...)
		merged.TotalTokens += raw.TotalTokens
	}
	return merged, remaps
}

// mergeArtifacts re-aggregates the sources' mined phrase statistics
// when that is exact, or records why it is not.
func mergeArtifacts(files []*File, srcs []string, remaps [][]int32, stats *MergeStats) *Artifacts {
	anyStale := false
	for i, f := range files {
		if f.Mined() == nil {
			if f.StaleArtifacts() != "" {
				anyStale = true
			}
			stats.ArtifactsDropped = fmt.Sprintf("source %s carries no mined phrases", srcs[i])
			if anyStale {
				stats.ArtifactsDropped += " (its artifacts went stale when the corpus was appended to)"
			}
			return nil
		}
	}
	prm := files[0].Params()
	for i, f := range files {
		if f.Params() != prm {
			stats.ArtifactsDropped = fmt.Sprintf("source %s was mined with %+v, source %s with %+v",
				srcs[i], f.Params(), srcs[0], prm)
			return nil
		}
	}
	if prm.MinSupport > 1 || prm.RelativeSupport != 0 {
		stats.ArtifactsDropped = fmt.Sprintf(
			"sources were mined with support pruning (min_support=%d, relative=%g); per-source pruning loses cross-source counts, re-mine the merged corpus",
			prm.MinSupport, prm.RelativeSupport)
		return nil
	}

	counts := counter.New()
	totalTokens := 0
	for i, f := range files {
		remap := remaps[i]
		f.Mined().Counts.Each(func(key string, n int64) {
			ids := counter.Unkey(key)
			for j, w := range ids {
				ids[j] = remap[w]
			}
			counts.Add(counter.Key(ids), n)
		})
		totalTokens += f.Mined().TotalTokens
	}
	// With min_support 1 nothing was pruned, so the level-candidate
	// diagnostics of a from-scratch mine over the union are exactly
	// the distinct phrase counts per length.
	maxLen := 0
	counts.Each(func(key string, _ int64) {
		if l := counter.KeyLen(key); l > maxLen {
			maxLen = l
		}
	})
	levels := make([]int, maxLen+1)
	counts.Each(func(key string, _ int64) {
		levels[counter.KeyLen(key)]++
	})
	stats.ArtifactsMerged = true
	return &Artifacts{
		Params: prm,
		Mined: &phrasemine.Result{
			Counts:          counts,
			TotalTokens:     totalTokens,
			MinSupport:      files[0].Mined().MinSupport,
			MaxPhraseLen:    maxLen,
			LevelCandidates: levels,
		},
	}
}

// mergeSketches concatenates per-source sketches when every source
// carries them at one size.
func mergeSketches(files []*File, stats *MergeStats) []minhash.Sketch {
	k := files[0].SketchK()
	if k == 0 {
		return nil
	}
	total := 0
	for _, f := range files {
		if f.Sketches() == nil || f.SketchK() != k {
			return nil
		}
		total += len(f.Sketches())
	}
	out := make([]minhash.Sketch, 0, total)
	for _, f := range files {
		out = append(out, f.Sketches()...)
	}
	stats.SketchesCarried = true
	return out
}
