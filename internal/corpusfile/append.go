package corpusfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"topmine/internal/atomicfile"
	"topmine/internal/corpus"
	"topmine/internal/minhash"
	"topmine/internal/textproc"
)

// AppendOptions controls AppendFile.
type AppendOptions struct {
	// Dedup skips incoming documents whose estimated Jaccard
	// similarity to any document already in the file (or appended
	// earlier in the same batch) reaches DedupThreshold.
	Dedup bool
	// DedupThreshold is the near-duplicate cutoff; <= 0 means 0.9.
	DedupThreshold float64
	// Sketch stores the appended documents' min-hash sketches in the
	// new segment, so future appends can deduplicate against them
	// without retokenizing the stored corpus. Sketches are only served
	// back by Open when every segment (including the base image)
	// carries them.
	Sketch bool
	// SketchK is the sketch size for corpora that do not already store
	// sketches; <= 0 means minhash.DefaultK. A file with stored
	// sketches dictates its own size — sketches must stay comparable.
	SketchK int
}

// AppendStats reports what one AppendFile call did.
type AppendStats struct {
	DocsAdded   int
	DocsSkipped int // near-duplicates dropped by Dedup
	TokensAdded int // kept tokens in the appended documents
	Segments    int // appended segments the file carries afterwards
}

// AppendFile grows the corpus file at path with the documents of src,
// in place and without rewriting stored data: the existing image is
// copied byte-for-byte (its section CRCs untouched), the header
// version becomes 2, and one new segment holding the appended token
// columns, updated vocabulary and document table is written after it,
// through the same atomic temp+rename path as WriteFile. Appending is
// equivalent to rebuilding from the concatenated input: the grown
// corpus trains identically, and re-persisting it yields the same
// sections a from-scratch build would.
//
// Appending zero documents (an empty source, or every document
// deduplicated away) leaves the file untouched.
//
// Artifacts bundled in the file describe only the pre-append corpus;
// after a successful append, Open reports them as stale and callers
// re-mine. With Dedup, incoming documents are tokenized twice — once
// for the sketch, once for interning — which keeps the skip decision
// strictly before any corpus mutation.
func AppendFile(path string, src corpus.Source, opt AppendOptions) (*AppendStats, error) {
	if opt.DedupThreshold <= 0 {
		opt.DedupThreshold = 0.9
	}
	if opt.SketchK <= 0 {
		opt.SketchK = minhash.DefaultK
	}
	f, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c := f.Corpus()
	ap, err := corpus.NewAppender(c)
	if err != nil {
		return nil, fmt.Errorf("corpusfile: Append: %w", err)
	}

	stats := &AppendStats{Segments: f.nAppended}
	needSketch := opt.Sketch || opt.Dedup
	var (
		hasher      *minhash.Hasher
		index       *minhash.Index
		all         []minhash.Sketch // sketch per doc id, for Jaccard confirmation
		newSketches []minhash.Sketch // appended docs only, for the segment section
		candBuf     []int32
	)
	if needSketch {
		k := opt.SketchK
		if f.sketchK > 0 {
			k = f.sketchK
		}
		hasher = minhash.NewHasher(k, minhash.CanonicalSeed)
		if opt.Dedup {
			existing := f.sketches
			if existing == nil {
				existing = sketchCorpus(c, hasher)
			}
			index = minhash.NewIndex(k)
			all = append(all, existing...)
			for i, sk := range existing {
				index.Add(int32(i), sk)
			}
		}
	}

	for {
		text, ok, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("corpusfile: Append: reading source: %w", err)
		}
		if !ok {
			break
		}
		var sk minhash.Sketch
		if needSketch {
			sk = hasher.Sketch(stemsOf(text, c.BuildOpts))
		}
		if opt.Dedup {
			candBuf = index.Candidates(sk, candBuf[:0])
			dup := false
			for _, id := range candBuf {
				if minhash.Jaccard(sk, all[id]) >= opt.DedupThreshold {
					dup = true
					break
				}
			}
			if dup {
				stats.DocsSkipped++
				continue
			}
			index.Add(int32(len(all)), sk)
			all = append(all, sk)
		}
		if opt.Sketch {
			newSketches = append(newSketches, sk)
		}
		ap.Add(text)
	}

	stats.DocsAdded = ap.DocsAdded()
	stats.TokensAdded = ap.TokensAdded()
	if stats.DocsAdded == 0 {
		return stats, nil
	}

	if err := writeAppended(path, f, ap, newSketches, opt.Sketch); err != nil {
		return nil, err
	}
	stats.Segments = f.nAppended + 1
	return stats, nil
}

// writeAppended atomically replaces the file at path with its own
// image (version bumped to 2) plus one appended segment holding the
// appender's delta.
func writeAppended(path string, f *File, ap *corpus.Appender, sketches []minhash.Sketch, withSketch bool) error {
	g := ap.Group()
	c := f.Corpus()
	vocabGob, err := encodeVocab(c.Vocab)
	if err != nil {
		return err
	}
	gp := groupPayload{
		totalTokens: g.TotalTokens,
		flags:       buildFlags(c.BuildOpts, c.BuildOpts.KeepSurface),
		words:       g.Words,
		keepSurface: c.BuildOpts.KeepSurface,
		surface:     g.Surface,
		gaps:        g.Gaps,
		pool:        g.PoolDelta,
		vocabGob:    vocabGob,
		segCounts:   g.SegCounts,
		segOffs:     g.SegOffs,
		segLens:     g.SegLens,
	}
	if withSketch {
		gp.sketches = sketches
	}
	sections, err := groupSections(gp)
	if err != nil {
		return err
	}
	if err := checksumSections(sections); err != nil {
		return err
	}
	image := f.image
	segStart := alignUp(uint64(len(image)))
	tableEnd := segStart + segHeaderSize + uint64(len(sections))*tableEntrySize
	offsets, _ := layoutSections(tableEnd, sections)

	err = atomicfile.Write(path, func(w io.Writer) error {
		bw := bufio.NewWriterSize(w, 1<<20)
		// The stored image is copied verbatim except for the 2-byte
		// version field. It is never patched in place: image may be a
		// read-only mmap of the very file being replaced.
		if _, err := bw.Write(image[:8]); err != nil {
			return err
		}
		var ver [2]byte
		binary.LittleEndian.PutUint16(ver[:], VersionMulti)
		if _, err := bw.Write(ver[:]); err != nil {
			return err
		}
		if _, err := bw.Write(image[10:]); err != nil {
			return err
		}
		if err := writeZeros(bw, segStart-uint64(len(image))); err != nil {
			return err
		}
		var hdr [segHeaderSize]byte
		copy(hdr[:8], segMagic)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(sections)))
		tb := tableBytes(sections, offsets)
		binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(tb))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(tb); err != nil {
			return err
		}
		if err := emitPayloads(bw, sections, offsets, tableEnd); err != nil {
			return err
		}
		return bw.Flush()
	})
	var ae *atomicfile.Error
	if errors.As(err, &ae) {
		return fmt.Errorf("corpusfile: %w", err)
	}
	return err
}

// stemsOf runs the corpus's tokenize→filter→stem path over one raw
// document and returns the kept stem sequence (segments concatenated
// in order) — the representation sketches are defined over.
func stemsOf(text string, opt corpus.BuildOptions) []string {
	var stems []string
	for _, rawSeg := range textproc.Tokenize(text) {
		for _, tok := range textproc.Filter(rawSeg, opt.RemoveStopwords) {
			stem := tok.Surface
			if opt.Stem {
				stem = textproc.Stem(stem)
			}
			stems = append(stems, stem)
		}
	}
	return stems
}

// ComputeSketches builds the canonical-seed min-hash sketch of every
// document in c (k <= 0 selects minhash.DefaultK) — what
// WriteFileSketched persists so later appends deduplicate against the
// stored corpus without retokenizing it.
func ComputeSketches(c *corpus.Corpus, k int) []minhash.Sketch {
	if k <= 0 {
		k = minhash.DefaultK
	}
	return sketchCorpus(c, minhash.NewHasher(k, minhash.CanonicalSeed))
}

// sketchCorpus rebuilds every stored document's sketch from its
// interned token ids — the fallback dedup path for files that do not
// carry a sketch section. The stems recovered through the vocabulary
// are exactly the kept stem sequence stemsOf produces from raw text,
// so the two paths yield identical sketches.
func sketchCorpus(c *corpus.Corpus, h *minhash.Hasher) []minhash.Sketch {
	sketches := make([]minhash.Sketch, len(c.Docs))
	var stems []string
	for i, d := range c.Docs {
		stems = stems[:0]
		for si := range d.Segments {
			for _, w := range d.Segments[si].Words() {
				stems = append(stems, c.Vocab.Word(w))
			}
		}
		sketches[i] = h.Sketch(stems)
	}
	return sketches
}
