package corpusfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"topmine/internal/atomicfile"
	"topmine/internal/corpus"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
)

// Params records the mining/segmentation parameterisation the bundled
// artifacts were produced with. A reader reuses stored artifacts only
// when its own parameters match; otherwise it recomputes them from the
// corpus, so a .tpc file never silently serves phrases mined under a
// different support threshold.
type Params struct {
	MinSupport      int
	RelativeSupport float64
	MaxPhraseLen    int
	SigThreshold    float64
}

// Artifacts bundles the downstream preprocessing products that can
// ride along with a corpus: the frequent-phrase statistics of
// Algorithm 1 and the per-document phrase partitions of Algorithm 2.
// Mined is required; Segs may be nil to persist mining results alone.
type Artifacts struct {
	Params Params
	Mined  *phrasemine.Result
	Segs   []*segment.SegmentedDoc
}

// artifactsPayload is the gob wire form of the artifacts section
// (spans are stored separately in flat binary — gob on millions of
// tiny Span structs is both bigger and slower).
type artifactsPayload struct {
	Params Params
	Mined  *phrasemine.Result
}

// section is one planned payload: its table entry plus a writer that
// must produce exactly size bytes. The writer runs twice — once into a
// CRC hasher, once into the output — so payloads never need to be
// buffered whole (the big array sections stream straight out of the
// corpus columns).
type section struct {
	id    uint32
	size  uint64
	crc   uint32
	write func(io.Writer) error
}

// Write persists the corpus alone; see WriteArtifacts.
func Write(w io.Writer, c *corpus.Corpus) error {
	return WriteArtifacts(w, c, nil)
}

// WriteArtifacts persists the corpus as a .tpc file, bundling the
// given mining/segmentation artifacts when art is non-nil. The token
// arena columns are written little-endian at 64-byte-aligned offsets,
// which is what lets Open hand back zero-copy views into an mmap'd
// file.
func WriteArtifacts(w io.Writer, c *corpus.Corpus, art *Artifacts) error {
	if c == nil {
		return fmt.Errorf("corpusfile: Write: nil corpus")
	}
	raw, err := c.Raw()
	if err != nil {
		return fmt.Errorf("corpusfile: Write: %w", err)
	}
	if art != nil {
		if art.Mined == nil || art.Mined.Counts == nil {
			return fmt.Errorf("corpusfile: Write: artifacts carry no mined phrases")
		}
		if art.Segs != nil && len(art.Segs) != len(raw.SegCounts) {
			return fmt.Errorf("corpusfile: Write: %d segmented docs for a %d-doc corpus",
				len(art.Segs), len(raw.SegCounts))
		}
		for i, sd := range art.Segs {
			if sd == nil || sd.DocID != i {
				return fmt.Errorf("corpusfile: Write: segmented docs must follow corpus order (doc %d)", i)
			}
		}
	}

	var vocabBuf bytes.Buffer
	if err := gob.NewEncoder(&vocabBuf).Encode(raw.Vocab); err != nil {
		return fmt.Errorf("corpusfile: encoding vocabulary: %w", err)
	}

	var flags uint32
	if raw.KeepSurface {
		flags |= flagKeepSurface
	}
	if raw.BuildOpts.Stem {
		flags |= flagStem
	}
	if raw.BuildOpts.RemoveStopwords {
		flags |= flagRemoveStopwords
	}
	numTokens := len(raw.Words)
	sections := []section{
		{id: secMeta, size: metaSize, write: func(w io.Writer) error {
			var b [metaSize]byte
			binary.LittleEndian.PutUint64(b[0:], uint64(raw.TotalTokens))
			binary.LittleEndian.PutUint64(b[8:], uint64(len(raw.SegCounts)))
			binary.LittleEndian.PutUint64(b[16:], uint64(len(raw.SegOffs)))
			binary.LittleEndian.PutUint64(b[24:], uint64(numTokens))
			binary.LittleEndian.PutUint32(b[32:], flags)
			_, err := w.Write(b[:])
			return err
		}},
		{id: secTokens, size: uint64(numTokens) * 4, write: func(w io.Writer) error {
			return writeInt32s(w, raw.Words)
		}},
	}
	if raw.KeepSurface {
		sections = append(sections,
			section{id: secSurface, size: uint64(numTokens) * 4, write: func(w io.Writer) error {
				return writeUint32s(w, raw.Surface)
			}},
			section{id: secGaps, size: uint64(numTokens) * 4, write: func(w io.Writer) error {
				return writeUint32s(w, raw.Gaps)
			}},
			section{id: secPool, size: poolSize(raw.Pool), write: func(w io.Writer) error {
				return writePool(w, raw.Pool)
			}},
		)
	}
	sections = append(sections,
		section{id: secVocab, size: uint64(vocabBuf.Len()), write: func(w io.Writer) error {
			_, err := w.Write(vocabBuf.Bytes())
			return err
		}},
		section{id: secDocs, size: uint64(len(raw.SegCounts))*4 + uint64(len(raw.SegOffs))*8,
			write: func(w io.Writer) error {
				if err := writeInt32s(w, raw.SegCounts); err != nil {
					return err
				}
				if err := writeInt32s(w, raw.SegOffs); err != nil {
					return err
				}
				return writeInt32s(w, raw.SegLens)
			}},
	)
	if art != nil {
		var artBuf bytes.Buffer
		if err := gob.NewEncoder(&artBuf).Encode(artifactsPayload{Params: art.Params, Mined: art.Mined}); err != nil {
			return fmt.Errorf("corpusfile: encoding artifacts: %w", err)
		}
		sections = append(sections, section{id: secArtifacts, size: uint64(artBuf.Len()),
			write: func(w io.Writer) error {
				_, err := w.Write(artBuf.Bytes())
				return err
			}})
		if art.Segs != nil {
			sections = append(sections, section{id: secSpans, size: spansSize(art.Segs),
				write: func(w io.Writer) error {
					return writeSpans(w, art.Segs)
				}})
		}
	}

	// Pass 1: checksum every payload.
	for i := range sections {
		h := crc32.NewIEEE()
		cw := &countWriter{w: h}
		if err := sections[i].write(cw); err != nil {
			return fmt.Errorf("corpusfile: hashing section %d: %w", sections[i].id, err)
		}
		if cw.n != sections[i].size {
			return fmt.Errorf("corpusfile: internal error: section %d wrote %d bytes, planned %d",
				sections[i].id, cw.n, sections[i].size)
		}
		sections[i].crc = h.Sum32()
	}

	// Lay sections out back to back at 64-byte-aligned offsets.
	offsets := make([]uint64, len(sections))
	pos := alignUp(uint64(headerSize + len(sections)*tableEntrySize))
	for i := range sections {
		offsets[i] = pos
		pos = alignUp(pos + sections[i].size)
	}

	// Pass 2: emit header, table, payloads.
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], orderMarker)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(sections)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("corpusfile: writing header: %w", err)
	}
	var ent [tableEntrySize]byte
	for i, s := range sections {
		binary.LittleEndian.PutUint32(ent[0:], s.id)
		binary.LittleEndian.PutUint32(ent[4:], s.crc)
		binary.LittleEndian.PutUint64(ent[8:], offsets[i])
		binary.LittleEndian.PutUint64(ent[16:], s.size)
		if _, err := bw.Write(ent[:]); err != nil {
			return fmt.Errorf("corpusfile: writing section table: %w", err)
		}
	}
	written := uint64(headerSize + len(sections)*tableEntrySize)
	for i, s := range sections {
		if err := writeZeros(bw, offsets[i]-written); err != nil {
			return fmt.Errorf("corpusfile: writing padding: %w", err)
		}
		if err := s.write(bw); err != nil {
			return fmt.Errorf("corpusfile: writing section %d: %w", s.id, err)
		}
		written = offsets[i] + s.size
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("corpusfile: writing corpus file: %w", err)
	}
	return nil
}

// WriteFile writes the corpus (and optional artifacts) to path
// atomically (see internal/atomicfile: exclusive temp + rename, an
// existing file's permissions preserved, fresh files 0666 filtered by
// the umask — the same contract as the snapshot writer).
func WriteFile(path string, c *corpus.Corpus, art *Artifacts) error {
	err := atomicfile.Write(path, func(w io.Writer) error {
		return WriteArtifacts(w, c, art)
	})
	// Encoding errors already carry the corpusfile prefix; the
	// atomic-write machinery's own failures get it added here.
	var ae *atomicfile.Error
	if errors.As(err, &ae) {
		return fmt.Errorf("corpusfile: %w", err)
	}
	return err
}

// alignUp rounds n up to the next sectionAlign boundary.
func alignUp(n uint64) uint64 {
	return (n + sectionAlign - 1) &^ uint64(sectionAlign-1)
}

// countWriter counts bytes so the emit pass can verify planned sizes.
type countWriter struct {
	w io.Writer
	n uint64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

var zeros [sectionAlign]byte

func writeZeros(w io.Writer, n uint64) error {
	for n > 0 {
		chunk := n
		if chunk > sectionAlign {
			chunk = sectionAlign
		}
		if _, err := w.Write(zeros[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

// int32sAsBytes reinterprets an int32 slice as its in-memory bytes —
// valid as the little-endian wire form only on little-endian hosts.
func int32sAsBytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func uint32sAsBytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// writeInt32s writes the slice little-endian: one bulk write on LE
// hosts, a chunked conversion loop elsewhere.
func writeInt32s(w io.Writer, s []int32) error {
	if hostLittle {
		_, err := w.Write(int32sAsBytes(s))
		return err
	}
	return writeConverted(w, len(s), func(b []byte, i int) {
		binary.LittleEndian.PutUint32(b, uint32(s[i]))
	})
}

func writeUint32s(w io.Writer, s []uint32) error {
	if hostLittle {
		_, err := w.Write(uint32sAsBytes(s))
		return err
	}
	return writeConverted(w, len(s), func(b []byte, i int) {
		binary.LittleEndian.PutUint32(b, s[i])
	})
}

func writeConverted(w io.Writer, n int, put func(b []byte, i int)) error {
	var buf [8192]byte
	for start := 0; start < n; {
		end := start + len(buf)/4
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			put(buf[(i-start)*4:], i)
		}
		if _, err := w.Write(buf[:(end-start)*4]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Pool section layout: count u32, then count × length u32, then the
// concatenated string bytes.
func poolSize(pool []string) uint64 {
	n := uint64(4 + 4*len(pool))
	for _, s := range pool {
		n += uint64(len(s))
	}
	return n
}

func writePool(w io.Writer, pool []string) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(pool)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	for _, s := range pool {
		binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	for _, s := range pool {
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	return nil
}

// Spans section layout: numDocs u32, then per document: nseg u32, per
// segment: nspan u32, per span: start u32, end u32.
func spansSize(segs []*segment.SegmentedDoc) uint64 {
	n := uint64(4)
	for _, sd := range segs {
		n += 4
		for _, spans := range sd.Spans {
			n += 4 + 8*uint64(len(spans))
		}
	}
	return n
}

func writeSpans(w io.Writer, segs []*segment.SegmentedDoc) error {
	bw := bufio.NewWriterSize(w, 64*1024)
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(len(segs)))
	if _, err := bw.Write(b[:4]); err != nil {
		return err
	}
	for _, sd := range segs {
		binary.LittleEndian.PutUint32(b[:4], uint32(len(sd.Spans)))
		if _, err := bw.Write(b[:4]); err != nil {
			return err
		}
		for _, spans := range sd.Spans {
			binary.LittleEndian.PutUint32(b[:4], uint32(len(spans)))
			if _, err := bw.Write(b[:4]); err != nil {
				return err
			}
			for _, sp := range spans {
				binary.LittleEndian.PutUint32(b[:4], uint32(sp.Start))
				binary.LittleEndian.PutUint32(b[4:], uint32(sp.End))
				if _, err := bw.Write(b[:]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
