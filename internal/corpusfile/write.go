package corpusfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"topmine/internal/atomicfile"
	"topmine/internal/corpus"
	"topmine/internal/minhash"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/textproc"
)

// Params records the mining/segmentation parameterisation the bundled
// artifacts were produced with. A reader reuses stored artifacts only
// when its own parameters match; otherwise it recomputes them from the
// corpus, so a .tpc file never silently serves phrases mined under a
// different support threshold.
type Params struct {
	MinSupport      int
	RelativeSupport float64
	MaxPhraseLen    int
	SigThreshold    float64
}

// Artifacts bundles the downstream preprocessing products that can
// ride along with a corpus: the frequent-phrase statistics of
// Algorithm 1 and the per-document phrase partitions of Algorithm 2.
// Mined is required; Segs may be nil to persist mining results alone.
type Artifacts struct {
	Params Params
	Mined  *phrasemine.Result
	Segs   []*segment.SegmentedDoc
}

// artifactsPayload is the gob wire form of the artifacts section
// (spans are stored separately in flat binary — gob on millions of
// tiny Span structs is both bigger and slower).
type artifactsPayload struct {
	Params Params
	Mined  *phrasemine.Result
}

// section is one planned payload: its table entry plus a writer that
// must produce exactly size bytes. The writer runs twice — once into a
// CRC hasher, once into the output — so payloads never need to be
// buffered whole (the big array sections stream straight out of the
// corpus columns).
type section struct {
	id    uint32
	size  uint64
	crc   uint32
	write func(io.Writer) error
}

// Write persists the corpus alone; see WriteArtifacts.
func Write(w io.Writer, c *corpus.Corpus) error {
	return WriteArtifacts(w, c, nil)
}

// WriteArtifacts persists the corpus as a .tpc file, bundling the
// given mining/segmentation artifacts when art is non-nil. The token
// arena columns are written little-endian at 64-byte-aligned offsets,
// which is what lets Open hand back zero-copy views into an mmap'd
// file.
func WriteArtifacts(w io.Writer, c *corpus.Corpus, art *Artifacts) error {
	return WriteSketched(w, c, art, nil)
}

// WriteSketched is WriteArtifacts plus an optional per-document
// min-hash sketch section (one sketch per document, all the same
// size, built with minhash.CanonicalSeed). Sketches let a later
// Append deduplicate against the stored corpus without re-reading any
// document text.
func WriteSketched(w io.Writer, c *corpus.Corpus, art *Artifacts, sketches []minhash.Sketch) error {
	if c == nil {
		return fmt.Errorf("corpusfile: Write: nil corpus")
	}
	raw, err := c.Raw()
	if err != nil {
		return fmt.Errorf("corpusfile: Write: %w", err)
	}
	return writeRaw(w, raw, art, sketches)
}

// writeRaw emits a complete single-segment (version 1) image.
func writeRaw(w io.Writer, raw *corpus.Raw, art *Artifacts, sketches []minhash.Sketch) error {
	if art != nil {
		if art.Mined == nil || art.Mined.Counts == nil {
			return fmt.Errorf("corpusfile: Write: artifacts carry no mined phrases")
		}
		if art.Segs != nil && len(art.Segs) != len(raw.SegCounts) {
			return fmt.Errorf("corpusfile: Write: %d segmented docs for a %d-doc corpus",
				len(art.Segs), len(raw.SegCounts))
		}
		for i, sd := range art.Segs {
			if sd == nil || sd.DocID != i {
				return fmt.Errorf("corpusfile: Write: segmented docs must follow corpus order (doc %d)", i)
			}
		}
	}

	vocabBuf, err := encodeVocab(raw.Vocab)
	if err != nil {
		return err
	}
	sections, err := groupSections(groupPayload{
		totalTokens: raw.TotalTokens,
		flags:       buildFlags(raw.BuildOpts, raw.KeepSurface),
		words:       raw.Words,
		keepSurface: raw.KeepSurface,
		surface:     raw.Surface,
		gaps:        raw.Gaps,
		pool:        raw.Pool,
		vocabGob:    vocabBuf,
		segCounts:   raw.SegCounts,
		segOffs:     raw.SegOffs,
		segLens:     raw.SegLens,
		sketches:    sketches,
	})
	if err != nil {
		return err
	}
	if art != nil {
		var artBuf bytes.Buffer
		if err := gob.NewEncoder(&artBuf).Encode(artifactsPayload{Params: art.Params, Mined: art.Mined}); err != nil {
			return fmt.Errorf("corpusfile: encoding artifacts: %w", err)
		}
		sections = append(sections, section{id: secArtifacts, size: uint64(artBuf.Len()),
			write: func(w io.Writer) error {
				_, err := w.Write(artBuf.Bytes())
				return err
			}})
		if art.Segs != nil {
			sections = append(sections, section{id: secSpans, size: spansSize(art.Segs),
				write: func(w io.Writer) error {
					return writeSpans(w, art.Segs)
				}})
		}
	}

	if err := checksumSections(sections); err != nil {
		return err
	}
	tableEnd := uint64(headerSize + len(sections)*tableEntrySize)
	offsets, _ := layoutSections(tableEnd, sections)

	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], orderMarker)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(sections)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("corpusfile: writing header: %w", err)
	}
	if _, err := bw.Write(tableBytes(sections, offsets)); err != nil {
		return fmt.Errorf("corpusfile: writing section table: %w", err)
	}
	if err := emitPayloads(bw, sections, offsets, tableEnd); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("corpusfile: writing corpus file: %w", err)
	}
	return nil
}

// groupPayload is one section group's worth of corpus columns — the
// whole corpus for the base image, the appended delta for a segment.
// The writer does not care which: the section layout is identical.
type groupPayload struct {
	totalTokens int
	flags       uint32
	words       []int32
	keepSurface bool
	surface     []uint32
	gaps        []uint32
	pool        []string // full pool (base) or delta strings (segment)
	vocabGob    []byte
	segCounts   []int32
	segOffs     []int32
	segLens     []int32
	sketches    []minhash.Sketch // optional; one per document
}

// groupSections builds the section list shared by the base image and
// appended segments: meta, token columns, vocabulary, doc table and
// the optional sketch section.
func groupSections(gp groupPayload) ([]section, error) {
	numTokens := len(gp.words)
	sections := []section{
		{id: secMeta, size: metaSize, write: func(w io.Writer) error {
			var b [metaSize]byte
			binary.LittleEndian.PutUint64(b[0:], uint64(gp.totalTokens))
			binary.LittleEndian.PutUint64(b[8:], uint64(len(gp.segCounts)))
			binary.LittleEndian.PutUint64(b[16:], uint64(len(gp.segOffs)))
			binary.LittleEndian.PutUint64(b[24:], uint64(numTokens))
			binary.LittleEndian.PutUint32(b[32:], gp.flags)
			_, err := w.Write(b[:])
			return err
		}},
		{id: secTokens, size: uint64(numTokens) * 4, write: func(w io.Writer) error {
			return writeInt32s(w, gp.words)
		}},
	}
	if gp.keepSurface {
		sections = append(sections,
			section{id: secSurface, size: uint64(numTokens) * 4, write: func(w io.Writer) error {
				return writeUint32s(w, gp.surface)
			}},
			section{id: secGaps, size: uint64(numTokens) * 4, write: func(w io.Writer) error {
				return writeUint32s(w, gp.gaps)
			}},
			section{id: secPool, size: poolSize(gp.pool), write: func(w io.Writer) error {
				return writePool(w, gp.pool)
			}},
		)
	}
	sections = append(sections,
		section{id: secVocab, size: uint64(len(gp.vocabGob)), write: func(w io.Writer) error {
			_, err := w.Write(gp.vocabGob)
			return err
		}},
		section{id: secDocs, size: uint64(len(gp.segCounts))*4 + uint64(len(gp.segOffs))*8,
			write: func(w io.Writer) error {
				if err := writeInt32s(w, gp.segCounts); err != nil {
					return err
				}
				if err := writeInt32s(w, gp.segOffs); err != nil {
					return err
				}
				return writeInt32s(w, gp.segLens)
			}},
	)
	if gp.sketches != nil {
		if len(gp.sketches) != len(gp.segCounts) {
			return nil, fmt.Errorf("corpusfile: Write: %d sketches for %d documents",
				len(gp.sketches), len(gp.segCounts))
		}
		k := len(gp.sketches[0])
		for i, sk := range gp.sketches {
			if len(sk) != k {
				return nil, fmt.Errorf("corpusfile: Write: sketch %d has %d positions, sketch 0 has %d",
					i, len(sk), k)
			}
		}
		sections = append(sections, section{id: secSketch, size: sketchSize(k, len(gp.sketches)),
			write: func(w io.Writer) error {
				return writeSketchSection(w, k, gp.sketches)
			}})
	}
	return sections, nil
}

// buildFlags packs the build options into the meta section's flag word.
func buildFlags(opts corpus.BuildOptions, keepSurface bool) uint32 {
	var flags uint32
	if keepSurface {
		flags |= flagKeepSurface
	}
	if opts.Stem {
		flags |= flagStem
	}
	if opts.RemoveStopwords {
		flags |= flagRemoveStopwords
	}
	return flags
}

// encodeVocab gob-encodes a vocabulary for its section.
func encodeVocab(v *textproc.Vocab) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("corpusfile: encoding vocabulary: %w", err)
	}
	return buf.Bytes(), nil
}

// checksumSections runs the hashing pass: every section's writer is
// executed once into a CRC hasher and verified against its planned
// size, so the emit pass can stream payloads without buffering them.
func checksumSections(sections []section) error {
	for i := range sections {
		h := crc32.NewIEEE()
		cw := &countWriter{w: h}
		if err := sections[i].write(cw); err != nil {
			return fmt.Errorf("corpusfile: hashing section %d: %w", sections[i].id, err)
		}
		if cw.n != sections[i].size {
			return fmt.Errorf("corpusfile: internal error: section %d wrote %d bytes, planned %d",
				sections[i].id, cw.n, sections[i].size)
		}
		sections[i].crc = h.Sum32()
	}
	return nil
}

// layoutSections assigns each section a 64-byte-aligned offset packed
// after tableEnd and returns the offsets plus the end of the last
// payload.
func layoutSections(tableEnd uint64, sections []section) (offsets []uint64, end uint64) {
	offsets = make([]uint64, len(sections))
	pos := alignUp(tableEnd)
	for i := range sections {
		offsets[i] = pos
		pos = alignUp(pos + sections[i].size)
		end = offsets[i] + sections[i].size
	}
	return offsets, end
}

// tableBytes serialises the section table.
func tableBytes(sections []section, offsets []uint64) []byte {
	b := make([]byte, len(sections)*tableEntrySize)
	for i, s := range sections {
		ent := b[i*tableEntrySize:]
		binary.LittleEndian.PutUint32(ent[0:], s.id)
		binary.LittleEndian.PutUint32(ent[4:], s.crc)
		binary.LittleEndian.PutUint64(ent[8:], offsets[i])
		binary.LittleEndian.PutUint64(ent[16:], s.size)
	}
	return b
}

// emitPayloads streams padding plus payloads, assuming bw is
// positioned at file offset written.
func emitPayloads(bw *bufio.Writer, sections []section, offsets []uint64, written uint64) error {
	for i, s := range sections {
		if err := writeZeros(bw, offsets[i]-written); err != nil {
			return fmt.Errorf("corpusfile: writing padding: %w", err)
		}
		if err := s.write(bw); err != nil {
			return fmt.Errorf("corpusfile: writing section %d: %w", s.id, err)
		}
		written = offsets[i] + s.size
	}
	return nil
}

// WriteFile writes the corpus (and optional artifacts) to path
// atomically (see internal/atomicfile: exclusive temp + rename, an
// existing file's permissions preserved, fresh files 0666 filtered by
// the umask — the same contract as the snapshot writer).
func WriteFile(path string, c *corpus.Corpus, art *Artifacts) error {
	return WriteFileSketched(path, c, art, nil)
}

// WriteFileSketched is WriteFile with an optional sketch section (see
// WriteSketched).
func WriteFileSketched(path string, c *corpus.Corpus, art *Artifacts, sketches []minhash.Sketch) error {
	err := atomicfile.Write(path, func(w io.Writer) error {
		return WriteSketched(w, c, art, sketches)
	})
	// Encoding errors already carry the corpusfile prefix; the
	// atomic-write machinery's own failures get it added here.
	var ae *atomicfile.Error
	if errors.As(err, &ae) {
		return fmt.Errorf("corpusfile: %w", err)
	}
	return err
}

// alignUp rounds n up to the next sectionAlign boundary.
func alignUp(n uint64) uint64 {
	return (n + sectionAlign - 1) &^ uint64(sectionAlign-1)
}

// countWriter counts bytes so the emit pass can verify planned sizes.
type countWriter struct {
	w io.Writer
	n uint64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

var zeros [sectionAlign]byte

func writeZeros(w io.Writer, n uint64) error {
	for n > 0 {
		chunk := n
		if chunk > sectionAlign {
			chunk = sectionAlign
		}
		if _, err := w.Write(zeros[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

// int32sAsBytes reinterprets an int32 slice as its in-memory bytes —
// valid as the little-endian wire form only on little-endian hosts.
func int32sAsBytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func uint32sAsBytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// writeInt32s writes the slice little-endian: one bulk write on LE
// hosts, a chunked conversion loop elsewhere.
func writeInt32s(w io.Writer, s []int32) error {
	if hostLittle {
		_, err := w.Write(int32sAsBytes(s))
		return err
	}
	return writeConverted(w, len(s), func(b []byte, i int) {
		binary.LittleEndian.PutUint32(b, uint32(s[i]))
	})
}

func writeUint32s(w io.Writer, s []uint32) error {
	if hostLittle {
		_, err := w.Write(uint32sAsBytes(s))
		return err
	}
	return writeConverted(w, len(s), func(b []byte, i int) {
		binary.LittleEndian.PutUint32(b, s[i])
	})
}

func uint64sAsBytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func writeUint64s(w io.Writer, s []uint64) error {
	if hostLittle {
		_, err := w.Write(uint64sAsBytes(s))
		return err
	}
	var buf [8192]byte
	for start := 0; start < len(s); {
		end := start + len(buf)/8
		if end > len(s) {
			end = len(s)
		}
		for i := start; i < end; i++ {
			binary.LittleEndian.PutUint64(buf[(i-start)*8:], s[i])
		}
		if _, err := w.Write(buf[:(end-start)*8]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Sketch section layout: k u32, numDocs u32, then numDocs × k u64
// sketch positions in document order.
func sketchSize(k, numDocs int) uint64 {
	return 8 + 8*uint64(k)*uint64(numDocs)
}

func writeSketchSection(w io.Writer, k int, sketches []minhash.Sketch) error {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(k))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(sketches)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	for _, sk := range sketches {
		if err := writeUint64s(w, sk); err != nil {
			return err
		}
	}
	return nil
}

func writeConverted(w io.Writer, n int, put func(b []byte, i int)) error {
	var buf [8192]byte
	for start := 0; start < n; {
		end := start + len(buf)/4
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			put(buf[(i-start)*4:], i)
		}
		if _, err := w.Write(buf[:(end-start)*4]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Pool section layout: count u32, then count × length u32, then the
// concatenated string bytes.
func poolSize(pool []string) uint64 {
	n := uint64(4 + 4*len(pool))
	for _, s := range pool {
		n += uint64(len(s))
	}
	return n
}

func writePool(w io.Writer, pool []string) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(pool)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	for _, s := range pool {
		binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	for _, s := range pool {
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	return nil
}

// Spans section layout: numDocs u32, then per document: nseg u32, per
// segment: nspan u32, per span: start u32, end u32.
func spansSize(segs []*segment.SegmentedDoc) uint64 {
	n := uint64(4)
	for _, sd := range segs {
		n += 4
		for _, spans := range sd.Spans {
			n += 4 + 8*uint64(len(spans))
		}
	}
	return n
}

func writeSpans(w io.Writer, segs []*segment.SegmentedDoc) error {
	bw := bufio.NewWriterSize(w, 64*1024)
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(len(segs)))
	if _, err := bw.Write(b[:4]); err != nil {
		return err
	}
	for _, sd := range segs {
		binary.LittleEndian.PutUint32(b[:4], uint32(len(sd.Spans)))
		if _, err := bw.Write(b[:4]); err != nil {
			return err
		}
		for _, spans := range sd.Spans {
			binary.LittleEndian.PutUint32(b[:4], uint32(len(spans)))
			if _, err := bw.Write(b[:4]); err != nil {
				return err
			}
			for _, sp := range spans {
				binary.LittleEndian.PutUint32(b[:4], uint32(sp.Start))
				binary.LittleEndian.PutUint32(b[4:], uint32(sp.End))
				if _, err := bw.Write(b[:]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
