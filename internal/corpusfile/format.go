// Package corpusfile defines the .tpc on-disk corpus format: a
// versioned, CRC-checked, section-based binary container for the
// preprocessed ToPMine corpus (the columnar token arena, segment
// offset table, interned surface/gap string pool and vocabulary of
// internal/corpus), optionally bundled with the downstream phrase
// mining and segmentation artifacts.
//
// The point of the format is that preprocessing runs once: tokenizing,
// vocab interning, phrase mining and segmentation — the expensive
// front half of the pipeline — are persisted, and every later training
// job starts from Open in milliseconds instead of minutes. The token
// arena sections are laid out 64-byte-aligned and little-endian so
// Open can hand the pipeline zero-copy views straight into the mmap'd
// file; corpora therefore also stop being bounded by RAM — the kernel
// pages token data in and out on demand.
//
// # Layout
//
//	offset 0   magic "TPCFILE\x00" (8 bytes)
//	       8   format version, uint16 LE
//	      10   reserved, uint16 (zero)
//	      12   byte-order marker, uint32 LE (orderMarker)
//	      16   section count, uint32 LE
//	      20   section table: count × (id u32, crc u32, offset u64, length u64)
//	      ...  section payloads, each starting at a 64-byte-aligned
//	           offset (zero padding between sections, not CRC-covered)
//
// Sections appear in the table in ascending offset order, so Load can
// consume the file from a plain io.Reader without seeking. Every
// payload is covered by its table entry's IEEE CRC-32; offsets and
// lengths are validated against the file size before anything is
// decoded, so truncation, bit rot and foreign files all fail with a
// named error — never a panic.
//
// All multi-byte values are little-endian, including the raw
// int32/uint32 array sections, which on little-endian hosts (the only
// kind this package fast-paths) are exactly the in-memory layout the
// pipeline reads.
//
// # Multi-segment files (version 2)
//
// Appending to a corpus file never rewrites what is already on disk.
// Append copies the existing image byte-for-byte (bumping only the
// header's version field to 2), pads to the next 64-byte boundary, and
// emits one appended segment:
//
//	offset A   segment magic "TPCSEG\x00\x00" (8 bytes)
//	     A+8   section count, uint32 LE
//	    A+12   section table CRC-32, uint32 LE (over the table bytes)
//	    A+16   section table, same entry layout as the base table,
//	           offsets absolute within the file
//	     ...   section payloads, 64-byte-aligned as in the base image
//
// A segment reuses the base section ids with delta semantics: secMeta
// carries the counts this segment adds, secTokens/secSurface/secGaps
// are the appended token columns, secPool holds only the strings first
// interned by this segment (the effective pool is the previous pool
// plus the delta), secDocs is the appended documents' segment table
// with group-relative offsets, and secSketch (when present) covers the
// appended documents alone. secVocab is the exception: each segment
// stores the full updated vocabulary — vocabularies only grow by
// appending ids, so the last segment's vocabulary serves the whole
// file and every earlier one must be a prefix of it (validated on
// open). Because every payload keeps its own CRC and old bytes are
// never touched, the base image's checksums remain valid forever, and
// a version-1 reader build simply rejects the file by version instead
// of misreading it.
//
// Artifacts bundled in the base image describe only the base corpus,
// so a multi-segment file drops them on open with a recorded notice
// (StaleArtifacts) — phrases must be re-mined over the grown corpus.
package corpusfile

import (
	"errors"
	"unsafe"
)

const (
	// magic identifies a .tpc corpus file.
	magic = "TPCFILE\x00"
	// Version marks a single-segment file — what Write always emits, so
	// freshly preprocessed corpora stay readable by older builds.
	Version uint16 = 1
	// VersionMulti marks a file grown in place by Append: the original
	// image followed by one appended segment per append. Readers accept
	// both versions; only Append produces version 2.
	VersionMulti uint16 = 2
	// segMagic introduces each appended segment in a version-2 file
	// (padded to the same 8 bytes as the file magic).
	segMagic = "TPCSEG\x00\x00"
	// segHeaderSize is an appended segment's fixed header: magic,
	// section count u32, and a CRC-32 over the segment's section table
	// (the base table is implicitly covered by opening the file; an
	// appended table needs its own guard).
	segHeaderSize = 8 + 4 + 4
	// orderMarker, decoded little-endian, guards against a
	// foreign-endian writer ever existing: a byte-swapped file decodes
	// the marker to a different value and is rejected up front.
	orderMarker uint32 = 0x1CC0FFEE
	// sectionAlign is the file-offset alignment of every section
	// payload. 64 covers the strictest alignment any zero-copy view
	// needs (int32/uint32 arrays need 4) with cache-line headroom.
	sectionAlign = 64
	// headerSize is everything before the section table.
	headerSize = 8 + 2 + 2 + 4 + 4
	// tableEntrySize is one section-table entry.
	tableEntrySize = 4 + 4 + 8 + 8
)

// Section ids. Presence is signalled by the table: surface/gaps/pool
// appear only when the corpus retains surfaces, artifacts/spans only
// when mining+segmentation results were bundled.
const (
	secMeta      uint32 = 1 // fixed-size counts and flags
	secTokens    uint32 = 2 // token arena: numTokens × int32 word ids
	secSurface   uint32 = 3 // numTokens × uint32 string-pool ids
	secGaps      uint32 = 4 // numTokens × uint32 string-pool ids
	secPool      uint32 = 5 // interned string table
	secVocab     uint32 = 6 // gob-encoded textproc.Vocab
	secDocs      uint32 = 7 // per-doc segment counts + per-segment (off, len)
	secArtifacts uint32 = 8 // gob: mining params + mined phrase counts
	secSpans     uint32 = 9 // flat per-document phrase spans (Algorithm 2 output)
	secSketch    uint32 = 10 // per-doc min-hash sketches: k u32, ndocs u32, ndocs×k u64
)

// meta-section flag bits.
const (
	flagKeepSurface uint32 = 1 << iota
	flagStem
	flagRemoveStopwords
)

// metaSize is the fixed meta-section payload: four u64 counts plus a
// u32 flag word.
const metaSize = 8*4 + 4

// Named error conditions. Every failure returned by Load/Open wraps
// exactly one of these (plus detail), so callers can classify bad
// inputs with errors.Is without parsing messages.
var (
	// ErrBadMagic marks a file that is not a .tpc corpus file at all.
	ErrBadMagic = errors.New("corpusfile: not a corpus file (bad magic)")
	// ErrVersion marks a corpus file written by an incompatible format
	// version.
	ErrVersion = errors.New("corpusfile: unsupported corpus file version")
	// ErrTruncated marks a file shorter than its section table claims.
	ErrTruncated = errors.New("corpusfile: corpus file truncated")
	// ErrChecksum marks a section whose payload fails its CRC.
	ErrChecksum = errors.New("corpusfile: corpus file corrupted (checksum mismatch)")
	// ErrFormat marks a structurally inconsistent file: impossible
	// counts, out-of-range offsets, missing required sections.
	ErrFormat = errors.New("corpusfile: malformed corpus file")
)

// hostLittle reports whether this machine is little-endian — the only
// byte order the zero-copy array views are valid for. Big-endian hosts
// still read and write the format through the conversion path.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()
