//go:build unix

package corpusfile

import "syscall"

// mmapFile maps the file read-only. The returned region is valid
// independently of the file descriptor (the mapping keeps its own
// reference), so callers may close the file immediately.
func mmapFile(f interface{ Fd() uintptr }, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
