package corpusfile

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/textproc"
)

// File is an opened .tpc corpus: the reconstructed corpus plus any
// bundled artifacts, and — when Open mmap'd the file — the mapping
// backing the corpus's token arena.
//
// The corpus (and everything derived from its token slices) is valid
// only until Close. Trained models are safe to keep: the topic-model
// documents copy their cliques out of the arena.
type File struct {
	c      *corpus.Corpus
	mined  *phrasemine.Result
	segs   []*segment.SegmentedDoc
	prm    Params
	data   []byte // mmap'd region; nil when heap-backed
	mapped bool
}

// Corpus returns the reconstructed corpus. Its token arena may alias
// the mmap'd file; it is valid until Close.
func (f *File) Corpus() *corpus.Corpus { return f.c }

// Mined returns the bundled frequent-phrase statistics, or nil when
// the file carries a corpus alone.
func (f *File) Mined() *phrasemine.Result { return f.mined }

// Segmented returns the bundled per-document phrase partitions, or nil.
func (f *File) Segmented() []*segment.SegmentedDoc { return f.segs }

// Params returns the mining/segmentation parameters the bundled
// artifacts were produced with (zero when no artifacts are stored).
func (f *File) Params() Params { return f.prm }

// Mapped reports whether the token arena is a zero-copy view into an
// mmap'd file (false on platforms without mmap, for Load, and on
// big-endian hosts, which take the conversion path).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping, if any. The corpus returned by Corpus
// must not be used afterwards. Close is idempotent.
func (f *File) Close() error {
	if !f.mapped || f.data == nil {
		return nil
	}
	data := f.data
	f.data = nil
	f.mapped = false
	if err := munmapFile(data); err != nil {
		return fmt.Errorf("corpusfile: unmapping corpus file: %w", err)
	}
	return nil
}

// Open maps the corpus file at path and reconstructs its corpus with
// zero-copy views into the mapping: the token arena columns and the
// segment tables are read in place, so opening costs decoding the
// string pool, vocabulary and artifacts plus one CRC pass — not a
// rebuild of the corpus. On platforms without mmap (and on big-endian
// hosts) it falls back to reading the file into memory; the result is
// identical either way.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpusfile: %w", err)
	}
	defer f.Close()
	if hostLittle {
		if fi, err := f.Stat(); err == nil && fi.Size() > 0 && int64(int(fi.Size())) == fi.Size() {
			if data, merr := mmapFile(f, fi.Size()); merr == nil {
				cf, derr := decode(data)
				if derr != nil {
					munmapFile(data)
					return nil, derr
				}
				cf.data = data
				cf.mapped = true
				return cf, nil
			}
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("corpusfile: reading %s: %w", path, err)
	}
	return decode(data)
}

// Load reads a corpus file from a plain reader (no mmap). The whole
// file is materialised in memory; on little-endian hosts the token
// arena still aliases that buffer rather than being copied again.
func Load(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("corpusfile: reading corpus file: %w", err)
	}
	return decode(data)
}

// tableEntry is one parsed section-table row.
type tableEntry struct {
	id   uint32
	crc  uint32
	off  uint64
	size uint64
}

// decode parses and validates a complete .tpc image. On little-endian
// hosts the returned corpus's array columns alias data; the caller
// decides whether data is an mmap region or a heap buffer.
func decode(data []byte) (*File, error) {
	if len(data) < 8 || !bytes.Equal(data[:8], []byte(magic)) {
		return nil, fmt.Errorf("%w", ErrBadMagic)
	}
	// The full-header length check must precede every fixed-offset read
	// below — a file cut just past the magic would otherwise index out
	// of range instead of returning a named error.
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file ends inside the header", ErrTruncated, len(data))
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, v, Version)
	}
	if m := binary.LittleEndian.Uint32(data[12:]); m != orderMarker {
		return nil, fmt.Errorf("%w: byte-order marker %08x, want %08x", ErrFormat, m, orderMarker)
	}
	nsec := int(binary.LittleEndian.Uint32(data[16:]))
	if nsec < 1 || nsec > 64 {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrFormat, nsec)
	}
	tableEnd := headerSize + nsec*tableEntrySize
	if len(data) < tableEnd {
		return nil, fmt.Errorf("%w: file ends inside the section table", ErrTruncated)
	}
	secs := make(map[uint32]tableEntry, nsec)
	for i := 0; i < nsec; i++ {
		e := tableEntry{
			id:   binary.LittleEndian.Uint32(data[headerSize+i*tableEntrySize:]),
			crc:  binary.LittleEndian.Uint32(data[headerSize+i*tableEntrySize+4:]),
			off:  binary.LittleEndian.Uint64(data[headerSize+i*tableEntrySize+8:]),
			size: binary.LittleEndian.Uint64(data[headerSize+i*tableEntrySize+16:]),
		}
		if e.off%sectionAlign != 0 {
			return nil, fmt.Errorf("%w: section %d at unaligned offset %d", ErrFormat, e.id, e.off)
		}
		if e.off > uint64(len(data)) || e.size > uint64(len(data))-e.off {
			return nil, fmt.Errorf("%w: section %d spans [%d,%d) of a %d-byte file",
				ErrTruncated, e.id, e.off, e.off+e.size, len(data))
		}
		if _, dup := secs[e.id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrFormat, e.id)
		}
		secs[e.id] = e
	}
	body := func(id uint32) ([]byte, bool) {
		e, ok := secs[id]
		if !ok {
			return nil, false
		}
		return data[e.off : e.off+e.size : e.off+e.size], true
	}
	for _, e := range secs {
		if got := crc32.ChecksumIEEE(data[e.off : e.off+e.size]); got != e.crc {
			return nil, fmt.Errorf("%w: section %d payload CRC %08x, table says %08x",
				ErrChecksum, e.id, got, e.crc)
		}
	}

	metaB, ok := body(secMeta)
	if !ok || len(metaB) != metaSize {
		return nil, fmt.Errorf("%w: missing or misshapen meta section", ErrFormat)
	}
	totalTokens := binary.LittleEndian.Uint64(metaB[0:])
	numDocs := binary.LittleEndian.Uint64(metaB[8:])
	numSegs := binary.LittleEndian.Uint64(metaB[16:])
	numTokens := binary.LittleEndian.Uint64(metaB[24:])
	flags := binary.LittleEndian.Uint32(metaB[32:])
	const maxCount = 1 << 31 // every count fits int32 by construction
	if totalTokens > maxCount || numDocs > maxCount || numSegs > maxCount || numTokens > maxCount {
		return nil, fmt.Errorf("%w: implausible counts (tokens=%d docs=%d segs=%d arena=%d)",
			ErrFormat, totalTokens, numDocs, numSegs, numTokens)
	}
	keepSurface := flags&flagKeepSurface != 0

	raw := &corpus.Raw{
		KeepSurface: keepSurface,
		TotalTokens: int(totalTokens),
		BuildOpts: corpus.BuildOptions{
			Stem:            flags&flagStem != 0,
			RemoveStopwords: flags&flagRemoveStopwords != 0,
			KeepSurface:     keepSurface,
		},
	}

	tokB, ok := body(secTokens)
	if !ok || uint64(len(tokB)) != numTokens*4 {
		return nil, fmt.Errorf("%w: token arena section is %d bytes, meta claims %d tokens",
			ErrFormat, len(tokB), numTokens)
	}
	raw.Words = int32sFromBytes(tokB)

	if keepSurface {
		surB, ok1 := body(secSurface)
		gapB, ok2 := body(secGaps)
		poolB, ok3 := body(secPool)
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("%w: surface flag set but surface/gap/pool sections missing", ErrFormat)
		}
		if uint64(len(surB)) != numTokens*4 || uint64(len(gapB)) != numTokens*4 {
			return nil, fmt.Errorf("%w: surface/gap sections are %d/%d bytes, meta claims %d tokens",
				ErrFormat, len(surB), len(gapB), numTokens)
		}
		raw.Surface = uint32sFromBytes(surB)
		raw.Gaps = uint32sFromBytes(gapB)
		pool, err := decodePool(poolB)
		if err != nil {
			return nil, err
		}
		raw.Pool = pool
	}

	vocB, ok := body(secVocab)
	if !ok {
		return nil, fmt.Errorf("%w: missing vocabulary section", ErrFormat)
	}
	vocab := textproc.NewVocab()
	if err := gob.NewDecoder(bytes.NewReader(vocB)).Decode(vocab); err != nil {
		return nil, fmt.Errorf("%w: decoding vocabulary: %v", ErrFormat, err)
	}
	raw.Vocab = vocab

	docB, ok := body(secDocs)
	if !ok || uint64(len(docB)) != numDocs*4+numSegs*8 {
		return nil, fmt.Errorf("%w: docs section is %d bytes for %d docs / %d segments",
			ErrFormat, len(docB), numDocs, numSegs)
	}
	raw.SegCounts = int32sFromBytes(docB[:numDocs*4])
	raw.SegOffs = int32sFromBytes(docB[numDocs*4 : numDocs*4+numSegs*4])
	raw.SegLens = int32sFromBytes(docB[numDocs*4+numSegs*4:])

	c, err := corpus.FromRaw(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}

	cf := &File{c: c}
	if artB, ok := body(secArtifacts); ok {
		var payload artifactsPayload
		if err := gob.NewDecoder(bytes.NewReader(artB)).Decode(&payload); err != nil {
			return nil, fmt.Errorf("%w: decoding artifacts: %v", ErrFormat, err)
		}
		if payload.Mined == nil || payload.Mined.Counts == nil {
			return nil, fmt.Errorf("%w: artifacts section carries no mined phrases", ErrFormat)
		}
		if payload.Mined.TotalTokens != c.TotalTokens {
			return nil, fmt.Errorf("%w: mined phrases counted %d tokens, corpus has %d",
				ErrFormat, payload.Mined.TotalTokens, c.TotalTokens)
		}
		if err := validateMined(payload.Mined, c.Vocab.Size()); err != nil {
			return nil, err
		}
		cf.mined = payload.Mined
		cf.prm = payload.Params
		if spanB, ok := body(secSpans); ok {
			segs, err := decodeSpans(spanB, c)
			if err != nil {
				return nil, err
			}
			cf.segs = segs
		}
	} else if _, ok := body(secSpans); ok {
		return nil, fmt.Errorf("%w: spans section without artifacts section", ErrFormat)
	}
	return cf, nil
}

// int32sFromBytes reinterprets a little-endian byte section as int32s.
// On little-endian hosts this is a zero-copy cast (the write side
// guarantees 4-byte alignment via the 64-byte section alignment);
// elsewhere it converts into a fresh slice.
func int32sFromBytes(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func uint32sFromBytes(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// decodePool decodes the interned string table. Strings are copied to
// the heap — they are small next to the arena, and heap copies keep
// them valid past Close.
func decodePool(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: string pool section too short", ErrFormat)
	}
	count := binary.LittleEndian.Uint32(b)
	// Bound and slice in 64-bit arithmetic: 4+4*count wraps in uint32
	// for counts near 2^30, which would let a hostile header pass the
	// check and panic on the first out-of-range read.
	lensEnd := 4 + 4*uint64(count)
	if uint64(len(b)) < lensEnd {
		return nil, fmt.Errorf("%w: string pool claims %d entries in %d bytes", ErrFormat, count, len(b))
	}
	lens := b[4:lensEnd]
	blob := b[lensEnd:]
	pool := make([]string, count)
	pos := uint64(0)
	for i := range pool {
		n := uint64(binary.LittleEndian.Uint32(lens[i*4:]))
		if pos+n > uint64(len(blob)) {
			return nil, fmt.Errorf("%w: string pool entry %d overruns the section", ErrFormat, i)
		}
		pool[i] = string(blob[pos : pos+n])
		pos += n
	}
	if pos != uint64(len(blob)) {
		return nil, fmt.Errorf("%w: string pool has %d trailing bytes", ErrFormat, uint64(len(blob))-pos)
	}
	return pool, nil
}

// validateMined checks every mined phrase against the vocabulary —
// the keys pack word ids, and a CRC-valid but hostile file could
// otherwise smuggle out-of-range ids into display paths (Unstem
// indexes vocabulary tables by id) and panic instead of erroring.
func validateMined(m *phrasemine.Result, vocabSize int) error {
	var bad error
	m.Counts.Each(func(key string, count int64) {
		if bad != nil {
			return
		}
		if len(key) == 0 || len(key)%4 != 0 {
			bad = fmt.Errorf("%w: mined phrase key of %d bytes", ErrFormat, len(key))
			return
		}
		if count < 1 {
			bad = fmt.Errorf("%w: mined phrase with count %d", ErrFormat, count)
			return
		}
		for _, w := range counter.Unkey(key) {
			if w < 0 || int(w) >= vocabSize {
				bad = fmt.Errorf("%w: mined phrase holds word id %d, vocabulary size is %d",
					ErrFormat, w, vocabSize)
				return
			}
		}
	})
	return bad
}

// decodeSpans decodes the flat phrase-partition section and validates
// it against the corpus: every document's span lists must tile its
// segments exactly (the partition property of Definition 1), so a
// corrupt file fails here instead of feeding the trainer out-of-range
// token ranges.
func decodeSpans(b []byte, c *corpus.Corpus) ([]*segment.SegmentedDoc, error) {
	rd := spanReader{b: b}
	nd, ok := rd.u32()
	if !ok || int(nd) != len(c.Docs) {
		return nil, fmt.Errorf("%w: spans section covers %d docs, corpus has %d", ErrFormat, nd, len(c.Docs))
	}
	segs := make([]*segment.SegmentedDoc, nd)
	for d := range segs {
		nseg, ok := rd.u32()
		if !ok || int(nseg) != len(c.Docs[d].Segments) {
			return nil, fmt.Errorf("%w: spans for doc %d cover %d segments, corpus has %d",
				ErrFormat, d, nseg, len(c.Docs[d].Segments))
		}
		sd := &segment.SegmentedDoc{DocID: d, Spans: make([][]segment.Span, nseg)}
		for si := 0; si < int(nseg); si++ {
			nspan, ok := rd.u32()
			if !ok {
				return nil, fmt.Errorf("%w: spans section ends inside doc %d", ErrFormat, d)
			}
			segLen := c.Docs[d].Segments[si].Len()
			// Every valid span covers at least one token, so nspan is
			// bounded by the segment length; checking before the
			// allocation keeps a crafted count from forcing a huge
			// make and aborting the process instead of erroring.
			if int64(nspan) > int64(segLen) {
				return nil, fmt.Errorf("%w: doc %d segment %d claims %d spans over %d tokens",
					ErrFormat, d, si, nspan, segLen)
			}
			spans := make([]segment.Span, nspan)
			prev := 0
			for j := range spans {
				s, ok1 := rd.u32()
				e, ok2 := rd.u32()
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("%w: spans section ends inside doc %d", ErrFormat, d)
				}
				if int(s) != prev || e <= s || int(e) > segLen {
					return nil, fmt.Errorf("%w: doc %d segment %d span [%d,%d) does not tile a %d-token segment",
						ErrFormat, d, si, s, e, segLen)
				}
				spans[j] = segment.Span{Start: int(s), End: int(e)}
				prev = int(e)
			}
			if prev != segLen {
				return nil, fmt.Errorf("%w: doc %d segment %d spans cover %d of %d tokens",
					ErrFormat, d, si, prev, segLen)
			}
			sd.Spans[si] = spans
		}
		segs[d] = sd
	}
	if len(rd.b) != rd.pos {
		return nil, fmt.Errorf("%w: spans section has %d trailing bytes", ErrFormat, len(rd.b)-rd.pos)
	}
	return segs, nil
}

type spanReader struct {
	b   []byte
	pos int
}

func (r *spanReader) u32() (uint32, bool) {
	if r.pos+4 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v, true
}
