package corpusfile

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"unsafe"

	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/minhash"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/textproc"
)

// File is an opened .tpc corpus: the reconstructed corpus plus any
// bundled artifacts, and — when Open mmap'd the file — the mapping
// backing the corpus's token arena.
//
// The corpus (and everything derived from its token slices, including
// Sketches) is valid only until Close. Trained models are safe to
// keep: the topic-model documents copy their cliques out of the arena.
type File struct {
	c         *corpus.Corpus
	mined     *phrasemine.Result
	segs      []*segment.SegmentedDoc
	prm       Params
	version   uint16
	nAppended int
	stale     string
	sketchK   int
	sketches  []minhash.Sketch
	image     []byte // complete file image (aliases data when mapped)

	mu     sync.Mutex
	data   []byte // mmap'd region; nil when heap-backed
	mapped bool
}

// Corpus returns the reconstructed corpus. Its token arena may alias
// the mmap'd file; it is valid until Close.
func (f *File) Corpus() *corpus.Corpus { return f.c }

// DocRange returns a zero-copy corpus view of documents [lo, hi) of
// the stored corpus: segments, token arena, surface pool and
// vocabulary are shared with the full Corpus(), document IDs are
// rebased to the range. For a mapped file only the pages the range's
// segments touch ever fault in, so a distributed training worker can
// open a many-GB .tpc and pay only for its own partition. The view is
// valid until Close.
func (f *File) DocRange(lo, hi int) (*corpus.Corpus, error) {
	return f.c.DocRange(lo, hi)
}

// Mined returns the bundled frequent-phrase statistics, or nil when
// the file carries a corpus alone (or its artifacts went stale; see
// StaleArtifacts).
func (f *File) Mined() *phrasemine.Result { return f.mined }

// Segmented returns the bundled per-document phrase partitions, or nil.
func (f *File) Segmented() []*segment.SegmentedDoc { return f.segs }

// Params returns the mining/segmentation parameters the bundled
// artifacts were produced with (zero when no artifacts are stored).
func (f *File) Params() Params { return f.prm }

// Mapped reports whether the token arena is a zero-copy view into an
// mmap'd file (false on platforms without mmap, for Load, and on
// big-endian hosts, which take the conversion path).
func (f *File) Mapped() bool { return f.mapped }

// Version returns the file's format version: 1 for a single-segment
// file, 2 for a corpus grown in place by Append.
func (f *File) Version() uint16 { return f.version }

// AppendedSegments returns how many appended segments the file
// carries (zero for a version-1 file).
func (f *File) AppendedSegments() int { return f.nAppended }

// StaleArtifacts explains why bundled artifacts were dropped on open
// ("" when nothing was dropped). A multi-segment file's base artifacts
// describe only the pre-append corpus, so the reader refuses to serve
// them and callers re-mine instead of training on stale phrases.
func (f *File) StaleArtifacts() string { return f.stale }

// Sketches returns the per-document min-hash sketches when the file
// carries complete coverage (the base image and every appended segment
// store sketches of the same size), or nil. The slices alias the
// file's data and are valid until Close.
func (f *File) Sketches() []minhash.Sketch { return f.sketches }

// SketchK returns the stored sketches' position count (0 when
// Sketches is nil).
func (f *File) SketchK() int { return f.sketchK }

// Close releases the mapping, if any. The corpus returned by Corpus
// must not be used afterwards. Close is idempotent and safe for
// concurrent use.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.mapped || f.data == nil {
		return nil
	}
	data := f.data
	f.data = nil
	f.mapped = false
	f.image = nil
	if err := munmapFile(data); err != nil {
		return fmt.Errorf("corpusfile: unmapping corpus file: %w", err)
	}
	return nil
}

// Open maps the corpus file at path and reconstructs its corpus with
// zero-copy views into the mapping: the token arena columns and the
// segment tables are read in place, so opening costs decoding the
// string pool, vocabulary and artifacts plus one CRC pass — not a
// rebuild of the corpus. On platforms without mmap (and on big-endian
// hosts) it falls back to reading the file into memory; the result is
// identical either way.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpusfile: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("corpusfile: %w", err)
	}
	// Classify the two non-files a caller most plausibly points at by
	// mistake before any read: a directory would fail with a bare
	// EISDIR, an empty file with ErrBadMagic — both technically true
	// and both misleading.
	if fi.IsDir() {
		return nil, fmt.Errorf("%w: %s is a directory", ErrFormat, path)
	}
	if fi.Size() == 0 {
		return nil, fmt.Errorf("%w: %s is empty", ErrTruncated, path)
	}
	if hostLittle {
		if int64(int(fi.Size())) == fi.Size() {
			if data, merr := mmapFile(f, fi.Size()); merr == nil {
				cf, derr := decode(data)
				if derr != nil {
					munmapFile(data)
					return nil, derr
				}
				cf.data = data
				cf.mapped = true
				return cf, nil
			}
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("corpusfile: reading %s: %w", path, err)
	}
	return decode(data)
}

// Load reads a corpus file from a plain reader (no mmap). The whole
// file is materialised in memory; on little-endian hosts the token
// arena still aliases that buffer rather than being copied again.
func Load(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("corpusfile: reading corpus file: %w", err)
	}
	return decode(data)
}

// tableEntry is one parsed section-table row.
type tableEntry struct {
	id   uint32
	crc  uint32
	off  uint64
	size uint64
}

// parseTable parses and bounds-checks nsec table entries starting at
// tableStart, returning the section map and the end offset of the
// group (the table end or the furthest payload byte, whichever is
// greater — the point an appended segment may start after).
func parseTable(data []byte, tableStart, nsec int) (map[uint32]tableEntry, uint64, error) {
	tableEnd := tableStart + nsec*tableEntrySize
	if len(data) < tableEnd {
		return nil, 0, fmt.Errorf("%w: file ends inside a section table", ErrTruncated)
	}
	secs := make(map[uint32]tableEntry, nsec)
	end := uint64(tableEnd)
	for i := 0; i < nsec; i++ {
		e := tableEntry{
			id:   binary.LittleEndian.Uint32(data[tableStart+i*tableEntrySize:]),
			crc:  binary.LittleEndian.Uint32(data[tableStart+i*tableEntrySize+4:]),
			off:  binary.LittleEndian.Uint64(data[tableStart+i*tableEntrySize+8:]),
			size: binary.LittleEndian.Uint64(data[tableStart+i*tableEntrySize+16:]),
		}
		if e.off%sectionAlign != 0 {
			return nil, 0, fmt.Errorf("%w: section %d at unaligned offset %d", ErrFormat, e.id, e.off)
		}
		if e.off > uint64(len(data)) || e.size > uint64(len(data))-e.off {
			return nil, 0, fmt.Errorf("%w: section %d spans [%d,%d) of a %d-byte file",
				ErrTruncated, e.id, e.off, e.off+e.size, len(data))
		}
		if _, dup := secs[e.id]; dup {
			return nil, 0, fmt.Errorf("%w: duplicate section %d", ErrFormat, e.id)
		}
		if e.off+e.size > end {
			end = e.off + e.size
		}
		secs[e.id] = e
	}
	return secs, end, nil
}

// verifyCRCs checks every section payload against its table CRC.
func verifyCRCs(data []byte, secs map[uint32]tableEntry) error {
	for _, e := range secs {
		if got := crc32.ChecksumIEEE(data[e.off : e.off+e.size]); got != e.crc {
			return fmt.Errorf("%w: section %d payload CRC %08x, table says %08x",
				ErrChecksum, e.id, got, e.crc)
		}
	}
	return nil
}

// group is one decoded section group: the whole corpus for the base
// image, one appended delta for a version-2 segment.
type group struct {
	totalTokens uint64
	numDocs     uint64
	numSegs     uint64
	numTokens   uint64
	flags       uint32
	keepSurface bool

	words     []int32
	surface   []uint32
	gaps      []uint32
	pool      []string // full pool (base) or delta strings (segment)
	vocab     *textproc.Vocab
	segCounts []int32
	segOffs   []int32
	segLens   []int32

	sketchK  int
	sketches []minhash.Sketch // nil when the group stores none

	hasArtifacts bool
	hasSpans     bool
}

// decodeGroup decodes one section group. base is nil for the base
// image; for an appended segment it supplies the flags the segment
// must agree with.
func decodeGroup(data []byte, secs map[uint32]tableEntry, base *group) (*group, error) {
	body := func(id uint32) ([]byte, bool) {
		e, ok := secs[id]
		if !ok {
			return nil, false
		}
		return data[e.off : e.off+e.size : e.off+e.size], true
	}

	metaB, ok := body(secMeta)
	if !ok || len(metaB) != metaSize {
		return nil, fmt.Errorf("%w: missing or misshapen meta section", ErrFormat)
	}
	g := &group{
		totalTokens: binary.LittleEndian.Uint64(metaB[0:]),
		numDocs:     binary.LittleEndian.Uint64(metaB[8:]),
		numSegs:     binary.LittleEndian.Uint64(metaB[16:]),
		numTokens:   binary.LittleEndian.Uint64(metaB[24:]),
		flags:       binary.LittleEndian.Uint32(metaB[32:]),
	}
	const maxCount = 1 << 31 // every count fits int32 by construction
	if g.totalTokens > maxCount || g.numDocs > maxCount || g.numSegs > maxCount || g.numTokens > maxCount {
		return nil, fmt.Errorf("%w: implausible counts (tokens=%d docs=%d segs=%d arena=%d)",
			ErrFormat, g.totalTokens, g.numDocs, g.numSegs, g.numTokens)
	}
	if base != nil && g.flags != base.flags {
		return nil, fmt.Errorf("%w: appended segment flags %#x disagree with the base image's %#x",
			ErrFormat, g.flags, base.flags)
	}
	g.keepSurface = g.flags&flagKeepSurface != 0

	tokB, ok := body(secTokens)
	if !ok || uint64(len(tokB)) != g.numTokens*4 {
		return nil, fmt.Errorf("%w: token arena section is %d bytes, meta claims %d tokens",
			ErrFormat, len(tokB), g.numTokens)
	}
	g.words = int32sFromBytes(tokB)

	if g.keepSurface {
		surB, ok1 := body(secSurface)
		gapB, ok2 := body(secGaps)
		poolB, ok3 := body(secPool)
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("%w: surface flag set but surface/gap/pool sections missing", ErrFormat)
		}
		if uint64(len(surB)) != g.numTokens*4 || uint64(len(gapB)) != g.numTokens*4 {
			return nil, fmt.Errorf("%w: surface/gap sections are %d/%d bytes, meta claims %d tokens",
				ErrFormat, len(surB), len(gapB), g.numTokens)
		}
		g.surface = uint32sFromBytes(surB)
		g.gaps = uint32sFromBytes(gapB)
		pool, err := decodePool(poolB)
		if err != nil {
			return nil, err
		}
		g.pool = pool
	}

	vocB, ok := body(secVocab)
	if !ok {
		return nil, fmt.Errorf("%w: missing vocabulary section", ErrFormat)
	}
	vocab := textproc.NewVocab()
	if err := gob.NewDecoder(bytes.NewReader(vocB)).Decode(vocab); err != nil {
		return nil, fmt.Errorf("%w: decoding vocabulary: %v", ErrFormat, err)
	}
	g.vocab = vocab

	docB, ok := body(secDocs)
	if !ok || uint64(len(docB)) != g.numDocs*4+g.numSegs*8 {
		return nil, fmt.Errorf("%w: docs section is %d bytes for %d docs / %d segments",
			ErrFormat, len(docB), g.numDocs, g.numSegs)
	}
	g.segCounts = int32sFromBytes(docB[:g.numDocs*4])
	g.segOffs = int32sFromBytes(docB[g.numDocs*4 : g.numDocs*4+g.numSegs*4])
	g.segLens = int32sFromBytes(docB[g.numDocs*4+g.numSegs*4:])

	if skB, ok := body(secSketch); ok {
		k, sketches, err := decodeSketchSection(skB, g.numDocs)
		if err != nil {
			return nil, err
		}
		g.sketchK, g.sketches = k, sketches
	}

	_, g.hasArtifacts = secs[secArtifacts]
	_, g.hasSpans = secs[secSpans]
	return g, nil
}

// decode parses and validates a complete .tpc image. On little-endian
// hosts the returned corpus's array columns alias data; the caller
// decides whether data is an mmap region or a heap buffer.
func decode(data []byte) (*File, error) {
	if len(data) < 8 || !bytes.Equal(data[:8], []byte(magic)) {
		return nil, fmt.Errorf("%w", ErrBadMagic)
	}
	// The full-header length check must precede every fixed-offset read
	// below — a file cut just past the magic would otherwise index out
	// of range instead of returning a named error.
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file ends inside the header", ErrTruncated, len(data))
	}
	version := binary.LittleEndian.Uint16(data[8:])
	if version != Version && version != VersionMulti {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d and %d",
			ErrVersion, version, Version, VersionMulti)
	}
	if m := binary.LittleEndian.Uint32(data[12:]); m != orderMarker {
		return nil, fmt.Errorf("%w: byte-order marker %08x, want %08x", ErrFormat, m, orderMarker)
	}
	nsec := int(binary.LittleEndian.Uint32(data[16:]))
	if nsec < 1 || nsec > 64 {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrFormat, nsec)
	}
	secs, baseEnd, err := parseTable(data, headerSize, nsec)
	if err != nil {
		return nil, err
	}
	if err := verifyCRCs(data, secs); err != nil {
		return nil, err
	}
	g, err := decodeGroup(data, secs, nil)
	if err != nil {
		return nil, err
	}

	raw := &corpus.Raw{
		Words:       g.words,
		Surface:     g.surface,
		Gaps:        g.gaps,
		Pool:        g.pool,
		KeepSurface: g.keepSurface,
		SegCounts:   g.segCounts,
		SegOffs:     g.segOffs,
		SegLens:     g.segLens,
		Vocab:       g.vocab,
		TotalTokens: int(g.totalTokens),
		BuildOpts: corpus.BuildOptions{
			Stem:            g.flags&flagStem != 0,
			RemoveStopwords: g.flags&flagRemoveStopwords != 0,
			KeepSurface:     g.keepSurface,
		},
	}

	if version == VersionMulti {
		return decodeMulti(data, raw, g, baseEnd)
	}

	c, err := corpus.FromRaw(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	cf := &File{c: c, version: version, image: data, sketchK: g.sketchK, sketches: g.sketches}
	body := func(id uint32) ([]byte, bool) {
		e, ok := secs[id]
		if !ok {
			return nil, false
		}
		return data[e.off : e.off+e.size : e.off+e.size], true
	}
	if artB, ok := body(secArtifacts); ok {
		var payload artifactsPayload
		if err := gob.NewDecoder(bytes.NewReader(artB)).Decode(&payload); err != nil {
			return nil, fmt.Errorf("%w: decoding artifacts: %v", ErrFormat, err)
		}
		if payload.Mined == nil || payload.Mined.Counts == nil {
			return nil, fmt.Errorf("%w: artifacts section carries no mined phrases", ErrFormat)
		}
		if payload.Mined.TotalTokens != c.TotalTokens {
			return nil, fmt.Errorf("%w: mined phrases counted %d tokens, corpus has %d",
				ErrFormat, payload.Mined.TotalTokens, c.TotalTokens)
		}
		if err := validateMined(payload.Mined, c.Vocab.Size()); err != nil {
			return nil, err
		}
		cf.mined = payload.Mined
		cf.prm = payload.Params
		if spanB, ok := body(secSpans); ok {
			segs, err := decodeSpans(spanB, c)
			if err != nil {
				return nil, err
			}
			cf.segs = segs
		}
	} else if _, ok := body(secSpans); ok {
		return nil, fmt.Errorf("%w: spans section without artifacts section", ErrFormat)
	}
	return cf, nil
}

// decodeMulti finishes decoding a version-2 file: it walks the
// appended segments after the base image, validates the vocabulary
// prefix chain, and assembles the grown corpus from the base columns
// plus per-segment deltas without copying either.
func decodeMulti(data []byte, base *corpus.Raw, bg *group, baseEnd uint64) (*File, error) {
	var groups []corpus.RawGroup
	vocabs := []*textproc.Vocab{bg.vocab}
	sketchOK := bg.sketches != nil
	allSketches := bg.sketches
	sketchK := bg.sketchK
	nseg := 0
	pos := alignUp(baseEnd)
	for pos < uint64(len(data)) {
		sg, segEnd, err := decodeSegment(data, pos, bg)
		if err != nil {
			return nil, err
		}
		groups = append(groups, corpus.RawGroup{
			Words:       sg.words,
			Surface:     sg.surface,
			Gaps:        sg.gaps,
			PoolDelta:   sg.pool,
			SegCounts:   sg.segCounts,
			SegOffs:     sg.segOffs,
			SegLens:     sg.segLens,
			TotalTokens: int(sg.totalTokens),
		})
		vocabs = append(vocabs, sg.vocab)
		if sketchOK && sg.sketches != nil && sg.sketchK == sketchK {
			allSketches = append(allSketches, sg.sketches...)
		} else {
			sketchOK = false
		}
		nseg++
		// segEnd covers at least the segment's own table, which starts
		// past pos, so the walk always advances.
		pos = alignUp(segEnd)
	}
	if nseg == 0 {
		return nil, fmt.Errorf("%w: multi-segment file ends before its first appended segment", ErrTruncated)
	}
	// Each vocabulary snapshot must extend the previous one: ids only
	// ever grow, and the last segment's vocabulary serves the whole
	// file. A file violating this would silently re-label tokens.
	for i := 0; i+1 < len(vocabs); i++ {
		if !vocabs[i].IsPrefixOf(vocabs[i+1]) {
			return nil, fmt.Errorf("%w: segment %d vocabulary is not an extension of its predecessor", ErrFormat, i+1)
		}
	}
	base.Vocab = vocabs[len(vocabs)-1]
	c, err := corpus.FromRawGroups(base, groups)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	cf := &File{c: c, version: VersionMulti, nAppended: nseg, image: data}
	if bg.hasArtifacts {
		cf.stale = fmt.Sprintf("bundled artifacts predate %d appended segment(s) and were dropped; re-mine the grown corpus to refresh them", nseg)
	}
	if sketchOK {
		cf.sketchK, cf.sketches = sketchK, allSketches
	}
	return cf, nil
}

// decodeSegment parses one appended segment starting at pos.
func decodeSegment(data []byte, pos uint64, base *group) (*group, uint64, error) {
	if uint64(len(data)) < pos+segHeaderSize {
		return nil, 0, fmt.Errorf("%w: file ends inside an appended segment header", ErrTruncated)
	}
	hdr := data[pos:]
	if !bytes.Equal(hdr[:8], []byte(segMagic)) {
		return nil, 0, fmt.Errorf("%w: appended segment at offset %d has bad magic", ErrFormat, pos)
	}
	nsec := int(binary.LittleEndian.Uint32(hdr[8:]))
	if nsec < 1 || nsec > 64 {
		return nil, 0, fmt.Errorf("%w: appended segment claims %d sections", ErrFormat, nsec)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[12:])
	tableStart := int(pos) + segHeaderSize
	secs, end, err := parseTable(data, tableStart, nsec)
	if err != nil {
		return nil, 0, err
	}
	if got := crc32.ChecksumIEEE(data[tableStart : tableStart+nsec*tableEntrySize]); got != wantCRC {
		return nil, 0, fmt.Errorf("%w: appended segment table CRC %08x, header says %08x",
			ErrChecksum, got, wantCRC)
	}
	if err := verifyCRCs(data, secs); err != nil {
		return nil, 0, err
	}
	g, err := decodeGroup(data, secs, base)
	if err != nil {
		return nil, 0, err
	}
	if g.hasArtifacts || g.hasSpans {
		return nil, 0, fmt.Errorf("%w: appended segment carries artifact sections", ErrFormat)
	}
	return g, end, nil
}

// int32sFromBytes reinterprets a little-endian byte section as int32s.
// On little-endian hosts this is a zero-copy cast (the write side
// guarantees 4-byte alignment via the 64-byte section alignment);
// elsewhere it converts into a fresh slice.
func int32sFromBytes(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func uint32sFromBytes(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func uint64sFromBytes(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// decodeSketchSection decodes one group's sketch section and checks
// it covers exactly the group's documents.
func decodeSketchSection(b []byte, numDocs uint64) (int, []minhash.Sketch, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: sketch section too short", ErrFormat)
	}
	k := binary.LittleEndian.Uint32(b)
	n := binary.LittleEndian.Uint32(b[4:])
	if k == 0 || k > 1<<16 {
		return 0, nil, fmt.Errorf("%w: implausible sketch size %d", ErrFormat, k)
	}
	if uint64(n) != numDocs {
		return 0, nil, fmt.Errorf("%w: sketch section covers %d docs, group has %d", ErrFormat, n, numDocs)
	}
	if uint64(len(b)) != 8+8*uint64(k)*uint64(n) {
		return 0, nil, fmt.Errorf("%w: sketch section is %d bytes for %d×%d positions", ErrFormat, len(b), n, k)
	}
	all := uint64sFromBytes(b[8:])
	sketches := make([]minhash.Sketch, n)
	for i := range sketches {
		sketches[i] = all[i*int(k) : (i+1)*int(k) : (i+1)*int(k)]
	}
	return int(k), sketches, nil
}

// decodePool decodes the interned string table. Strings are copied to
// the heap — they are small next to the arena, and heap copies keep
// them valid past Close.
func decodePool(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: string pool section too short", ErrFormat)
	}
	count := binary.LittleEndian.Uint32(b)
	// Bound and slice in 64-bit arithmetic: 4+4*count wraps in uint32
	// for counts near 2^30, which would let a hostile header pass the
	// check and panic on the first out-of-range read.
	lensEnd := 4 + 4*uint64(count)
	if uint64(len(b)) < lensEnd {
		return nil, fmt.Errorf("%w: string pool claims %d entries in %d bytes", ErrFormat, count, len(b))
	}
	lens := b[4:lensEnd]
	blob := b[lensEnd:]
	pool := make([]string, count)
	pos := uint64(0)
	for i := range pool {
		n := uint64(binary.LittleEndian.Uint32(lens[i*4:]))
		if pos+n > uint64(len(blob)) {
			return nil, fmt.Errorf("%w: string pool entry %d overruns the section", ErrFormat, i)
		}
		pool[i] = string(blob[pos : pos+n])
		pos += n
	}
	if pos != uint64(len(blob)) {
		return nil, fmt.Errorf("%w: string pool has %d trailing bytes", ErrFormat, uint64(len(blob))-pos)
	}
	return pool, nil
}

// validateMined checks every mined phrase against the vocabulary —
// the keys pack word ids, and a CRC-valid but hostile file could
// otherwise smuggle out-of-range ids into display paths (Unstem
// indexes vocabulary tables by id) and panic instead of erroring.
func validateMined(m *phrasemine.Result, vocabSize int) error {
	var bad error
	m.Counts.Each(func(key string, count int64) {
		if bad != nil {
			return
		}
		if len(key) == 0 || len(key)%4 != 0 {
			bad = fmt.Errorf("%w: mined phrase key of %d bytes", ErrFormat, len(key))
			return
		}
		if count < 1 {
			bad = fmt.Errorf("%w: mined phrase with count %d", ErrFormat, count)
			return
		}
		for _, w := range counter.Unkey(key) {
			if w < 0 || int(w) >= vocabSize {
				bad = fmt.Errorf("%w: mined phrase holds word id %d, vocabulary size is %d",
					ErrFormat, w, vocabSize)
				return
			}
		}
	})
	return bad
}

// decodeSpans decodes the flat phrase-partition section and validates
// it against the corpus: every document's span lists must tile its
// segments exactly (the partition property of Definition 1), so a
// corrupt file fails here instead of feeding the trainer out-of-range
// token ranges.
func decodeSpans(b []byte, c *corpus.Corpus) ([]*segment.SegmentedDoc, error) {
	rd := spanReader{b: b}
	nd, ok := rd.u32()
	if !ok || int(nd) != len(c.Docs) {
		return nil, fmt.Errorf("%w: spans section covers %d docs, corpus has %d", ErrFormat, nd, len(c.Docs))
	}
	segs := make([]*segment.SegmentedDoc, nd)
	for d := range segs {
		nseg, ok := rd.u32()
		if !ok || int(nseg) != len(c.Docs[d].Segments) {
			return nil, fmt.Errorf("%w: spans for doc %d cover %d segments, corpus has %d",
				ErrFormat, d, nseg, len(c.Docs[d].Segments))
		}
		sd := &segment.SegmentedDoc{DocID: d, Spans: make([][]segment.Span, nseg)}
		for si := 0; si < int(nseg); si++ {
			nspan, ok := rd.u32()
			if !ok {
				return nil, fmt.Errorf("%w: spans section ends inside doc %d", ErrFormat, d)
			}
			segLen := c.Docs[d].Segments[si].Len()
			// Every valid span covers at least one token, so nspan is
			// bounded by the segment length; checking before the
			// allocation keeps a crafted count from forcing a huge
			// make and aborting the process instead of erroring.
			if int64(nspan) > int64(segLen) {
				return nil, fmt.Errorf("%w: doc %d segment %d claims %d spans over %d tokens",
					ErrFormat, d, si, nspan, segLen)
			}
			spans := make([]segment.Span, nspan)
			prev := 0
			for j := range spans {
				s, ok1 := rd.u32()
				e, ok2 := rd.u32()
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("%w: spans section ends inside doc %d", ErrFormat, d)
				}
				if int(s) != prev || e <= s || int(e) > segLen {
					return nil, fmt.Errorf("%w: doc %d segment %d span [%d,%d) does not tile a %d-token segment",
						ErrFormat, d, si, s, e, segLen)
				}
				spans[j] = segment.Span{Start: int(s), End: int(e)}
				prev = int(e)
			}
			if prev != segLen {
				return nil, fmt.Errorf("%w: doc %d segment %d spans cover %d of %d tokens",
					ErrFormat, d, si, prev, segLen)
			}
			sd.Spans[si] = spans
		}
		segs[d] = sd
	}
	if len(rd.b) != rd.pos {
		return nil, fmt.Errorf("%w: spans section has %d trailing bytes", ErrFormat, len(rd.b)-rd.pos)
	}
	return segs, nil
}

type spanReader struct {
	b   []byte
	pos int
}

func (r *spanReader) u32() (uint32, bool) {
	if r.pos+4 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v, true
}
