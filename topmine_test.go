package topmine

import (
	"math"
	"os"
	"strings"
	"testing"
)

func smallOpts() Options {
	o := DefaultOptions()
	o.Topics = 5
	o.Iterations = 60
	o.MinSupport = 5
	o.SigThreshold = 4
	o.Seed = 42
	o.Workers = 1
	return o
}

func TestRunEndToEnd(t *testing.T) {
	docs, err := GenerateExampleCorpus("20conf", 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(docs, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Corpus.NumDocs() != 500 {
		t.Fatalf("docs = %d", res.Corpus.NumDocs())
	}
	if len(res.Topics) != 5 {
		t.Fatalf("topics = %d", len(res.Topics))
	}
	if res.Mined.Counts.Len() == 0 {
		t.Fatal("no phrases mined")
	}
	if len(res.Segmented) != 500 {
		t.Fatal("segmentation incomplete")
	}
	// At least one topic shows a multi-word phrase.
	hasPhrase := false
	for _, tp := range res.Topics {
		if len(tp.Phrases) > 0 {
			hasPhrase = true
		}
	}
	if !hasPhrase {
		t.Fatal("no topical phrases surfaced")
	}
}

func TestRunDeterministic(t *testing.T) {
	docs, _ := GenerateExampleCorpus("20conf", 150, 9)
	a, err := Run(docs, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(docs, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := FormatTopics(a.Topics), FormatTopics(b.Topics)
	if fa != fb {
		t.Fatal("identical runs produced different topics")
	}
}

func TestFrequentPhrasesSortedAndDisplayable(t *testing.T) {
	docs, _ := GenerateExampleCorpus("20conf", 400, 11)
	res, err := Run(docs, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	phrases := res.FrequentPhrases(2)
	if len(phrases) == 0 {
		t.Fatal("no multi-word frequent phrases")
	}
	for i := 1; i < len(phrases); i++ {
		if phrases[i].Count > phrases[i-1].Count {
			t.Fatal("phrases not sorted by count")
		}
	}
	if s := res.PhraseString(phrases[0]); s == "" || !strings.Contains(s, " ") {
		t.Fatalf("bad display %q", s)
	}
}

func TestRelativeSupport(t *testing.T) {
	docs, _ := GenerateExampleCorpus("20conf", 300, 13)
	c := BuildCorpus(docs, DefaultCorpusOptions())
	opt := smallOpts()
	opt.MinSupport = 1
	opt.RelativeSupport = 0.01 // 1% of tokens: very aggressive
	mined := MinePhrases(c, opt)
	if mined.MinSupport <= 1 {
		t.Fatalf("relative support not applied: %d", mined.MinSupport)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run([]string{"doc"}, Options{Topics: 0}); err == nil {
		t.Fatal("Topics=0 accepted")
	}
	if _, err := Run([]string{"doc"}, Options{Topics: 2, MaxPhraseLen: -1}); err == nil {
		t.Fatal("negative MaxPhraseLen accepted")
	}
}

func TestPerplexityComparablePhraseLDAvsLDA(t *testing.T) {
	// The Figure 6/7 shape at miniature scale: PhraseLDA's held-out
	// perplexity lands in the same range as LDA's (within 15%).
	docs, _ := GenerateExampleCorpus("yelp-reviews", 250, 17)
	c := BuildCorpus(docs, DefaultCorpusOptions())
	ho := SplitHeldOut(c, 0.2)
	opt := smallOpts()
	opt.Topics = 5
	opt.Iterations = 120
	opt.OptimizeHyper = false

	mined := MinePhrases(ho.Train, opt)
	segs := SegmentCorpus(ho.Train, mined, opt)
	plda := TrainModel(ho.Train, segs, opt)
	lda := TrainLDA(ho.Train, opt)

	pp := Perplexity(plda, ho)
	pl := Perplexity(lda, ho)
	if math.IsNaN(pp) || math.IsNaN(pl) {
		t.Fatalf("perplexities NaN: %v %v", pp, pl)
	}
	ratio := pp / pl
	if ratio > 1.15 || ratio < 0.5 {
		t.Fatalf("PhraseLDA perplexity %v too far from LDA %v (ratio %v)", pp, pl, ratio)
	}
}

func TestGenerateExampleCorpusDomains(t *testing.T) {
	for _, d := range ExampleDomains() {
		docs, err := GenerateExampleCorpus(d, 5, 1)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(docs) != 5 {
			t.Fatalf("%s: %d docs", d, len(docs))
		}
	}
	if _, err := GenerateExampleCorpus("nope", 5, 1); err == nil {
		t.Fatal("unknown domain accepted")
	}
}

func TestStagewiseEqualsRun(t *testing.T) {
	docs, _ := GenerateExampleCorpus("20conf", 120, 19)
	opt := smallOpts()
	res, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := BuildCorpus(docs, DefaultCorpusOptions())
	mined := MinePhrases(c, opt)
	segs := SegmentCorpus(c, mined, opt)
	model := TrainModel(c, segs, opt)
	if model.TotalTokens() != res.Model.TotalTokens() {
		t.Fatal("stagewise pipeline diverges from Run")
	}
	for d := range model.Z {
		for g := range model.Z[d] {
			if model.Z[d][g] != res.Model.Z[d][g] {
				t.Fatal("assignments diverge between stagewise and Run")
			}
		}
	}
}

func TestBackgroundFilterOptionRuns(t *testing.T) {
	docs, _ := GenerateExampleCorpus("dblp-abstracts", 120, 23)
	opt := smallOpts()
	opt.FilterBackground = true
	opt.Iterations = 30
	if _, err := Run(docs, opt); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCorpusJSONL(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/reviews.jsonl"
	content := `{"stars": 5, "text": "great ice cream and iced coffee"}
{"stars": 2, "text": "parking lot was full"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCorpusJSONL(path, "text", DefaultCorpusOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
	if _, ok := c.Vocab.ID("cream"); !ok {
		t.Fatal("text not processed")
	}
	if _, err := LoadCorpusJSONL(path, "missing", DefaultCorpusOptions()); err == nil {
		t.Fatal("missing field accepted")
	}
}
