package topmine

import (
	"fmt"

	"topmine/internal/core"
	"topmine/internal/corpusfile"
	"topmine/internal/topicmodel"
)

// This file is the public face of "living corpora": a .tpc corpus file
// is not a one-shot artifact but an index that grows with its corpus.
//
//	# grow a stored corpus in place (old bytes untouched)
//	stats, _ := topmine.AppendCorpusFile("corpus.tpc", src, topmine.AppendOptions{Dedup: true})
//
//	# combine independently preprocessed shards
//	topmine.MergeCorpusFiles("all.tpc", "shard1.tpc", "shard2.tpc")
//
//	# continue training a snapshot over the grown corpus
//	res, _ := topmine.LoadSnapshotFile("model.tpm") // saved with training state
//	cf, _ := topmine.OpenCorpusFile("corpus.tpc")
//	err := res.UpdateTraining(cf, 200)

// AppendOptions controls AppendCorpusFile (near-duplicate suppression,
// sketch persistence).
type AppendOptions = corpusfile.AppendOptions

// AppendStats reports what one AppendCorpusFile call did.
type AppendStats = corpusfile.AppendStats

// MergeStats reports what MergeCorpusFiles produced, including why
// bundled artifacts were dropped when they could not be re-aggregated
// exactly.
type MergeStats = corpusfile.MergeStats

// AppendCorpusFile grows the .tpc corpus file at path with the
// documents of src, in place and atomically: the stored image is
// copied byte-for-byte (every section CRC preserved) and one appended
// segment carries the new documents, so append cost scales with the
// appended text, not the stored corpus. The grown file is equivalent
// to one preprocessed from the concatenated input — it trains
// identically, and re-persisting it reproduces a from-scratch build's
// bytes. Bundled mining/segmentation artifacts describe only the
// pre-append corpus; after an append, OpenCorpusFile reports them
// stale (StaleArtifacts) and training recomputes them over the union.
//
// With opt.Dedup, incoming documents whose estimated Jaccard
// similarity to any stored (or earlier-in-batch) document reaches
// opt.DedupThreshold (default 0.9) are skipped; the skip total is
// returned in AppendStats.DocsSkipped.
func AppendCorpusFile(path string, src Source, opt AppendOptions) (*AppendStats, error) {
	return corpusfile.AppendFile(path, src, opt)
}

// MergeCorpusFiles k-way-merges independently preprocessed .tpc files
// into a fresh single-segment file at dst (written atomically). The
// merged corpus is bit-identical to one preprocessed from the
// concatenated inputs. Bundled phrase statistics are re-aggregated
// exactly when every source was mined with identical parameters and no
// support pruning; otherwise they are dropped with the reason recorded
// in MergeStats — re-mine the merged corpus.
func MergeCorpusFiles(dst string, srcs ...string) (*MergeStats, error) {
	return corpusfile.MergeFiles(dst, srcs...)
}

// SaveCorpusFileSketched is SaveCorpusFile plus a per-document
// min-hash sketch section, so later AppendCorpusFile calls with Dedup
// compare incoming documents against the stored corpus without
// retokenizing it.
func SaveCorpusFileSketched(path string, r *Result) error {
	switch {
	case r == nil:
		return fmt.Errorf("topmine: SaveCorpusFileSketched: nil Result")
	case r.Corpus == nil || r.Corpus.Vocab == nil:
		return fmt.Errorf("topmine: SaveCorpusFileSketched: Result has no corpus")
	}
	var art *corpusfile.Artifacts
	if r.Mined != nil {
		art = &corpusfile.Artifacts{
			Params: artifactParams(r.Options),
			Mined:  r.Mined,
			Segs:   r.Segmented,
		}
	}
	return corpusfile.WriteFileSketched(path, r.Corpus, art, corpusfile.ComputeSketches(r.Corpus, 0))
}

// Version reports the file's format version: 1 for a single-segment
// file, 2 once it has been grown by AppendCorpusFile.
func (cf *CorpusFile) Version() uint16 { return cf.f.Version() }

// AppendedSegments reports how many appended segments the file
// carries (0 for a file never grown in place).
func (cf *CorpusFile) AppendedSegments() int { return cf.f.AppendedSegments() }

// StaleArtifacts explains why bundled mining/segmentation artifacts
// were dropped at open time ("" when nothing was dropped): artifacts
// written before an append describe only the pre-append corpus.
func (cf *CorpusFile) StaleArtifacts() string { return cf.f.StaleArtifacts() }

// UpdateTraining continues this Result's Gibbs training over the grown
// corpus in cf — the incremental path for corpora that gained
// documents (AppendCorpusFile, MergeCorpusFiles) since the model
// trained. The Result must carry training state (Resumable, as saved
// by SaveTrainingSnapshot), and cf's corpus must extend the one the
// model trained on: same preprocessing, the old vocabulary as an
// id-for-id prefix, the old documents first.
//
// Existing documents keep their Gibbs assignments; the grown corpus is
// re-mined and re-segmented (reusing cf's stored artifacts when their
// parameters match), the count arenas reshape for the grown
// vocabulary, and the new documents' cliques are initialised from the
// trained model's conditional — then iters more sweeps run over the
// union. The whole update is deterministic for a fixed seed. iters may
// be 0 to only fold the new documents in and re-render Topics.
//
// On success the Result adopts cf's corpus (holding its own reference
// on the mapping, like CorpusFile.Run) and releases whatever backed
// the previous corpus. On error the Result is unchanged.
func (r *Result) UpdateTraining(cf *CorpusFile, iters int) error {
	if iters < 0 {
		return fmt.Errorf("topmine: UpdateTraining: iters must be >= 0, got %d", iters)
	}
	if !r.Resumable() {
		return fmt.Errorf("topmine: UpdateTraining: model carries no training state; save with SaveTrainingSnapshot (topmine -save-state) to update later")
	}
	if r.Corpus == nil || r.Corpus.Vocab == nil {
		return fmt.Errorf("topmine: UpdateTraining: Result has no corpus")
	}
	// The model's documents are the training-corpus count; a Result
	// loaded from a training snapshot carries them even though its
	// Corpus deliberately stores no documents.
	oldD := len(r.Model.Docs)
	if n := len(r.Corpus.Docs); n != 0 && n != oldD {
		return fmt.Errorf("topmine: UpdateTraining: model trained on %d documents but the Result's corpus has %d",
			oldD, n)
	}
	if !cf.retain() {
		return fmt.Errorf("topmine: UpdateTraining: corpus file is closed (mapping released)")
	}
	c := cf.Corpus()
	fail := func(err error) error {
		cf.release()
		return err
	}
	if len(c.Docs) < oldD {
		return fail(fmt.Errorf("topmine: UpdateTraining: corpus file has %d documents, fewer than the model's %d — not a grown version of the training corpus",
			len(c.Docs), oldD))
	}
	if !r.Corpus.Vocab.IsPrefixOf(c.Vocab) {
		return fail(fmt.Errorf("topmine: UpdateTraining: the corpus file's vocabulary does not extend the model's — the file is not a grown version of the training corpus"))
	}

	// Phrase statistics must cover the union: reuse the file's bundled
	// artifacts when their parameters match, recompute otherwise (an
	// appended file always recomputes — its artifacts went stale).
	var mined *MinedPhrases
	var segs []*SegmentedDoc
	if cf.CanReuseArtifacts(r.Options) {
		mined, segs = cf.Mined(), cf.Segmented()
	}
	if mined == nil {
		mined = core.Mine(c, toCoreConfig(r.Options, nil))
	}
	if segs == nil {
		segs = core.Segment(c, mined, toCoreConfig(r.Options, nil))
	}

	newDocs := topicmodel.DocsFromSegmentation(c, segs[oldD:])
	if err := r.Model.Extend(newDocs, c.Vocab.Size(), r.Options.Seed); err != nil {
		return fail(err)
	}

	// Point of no return: the model now spans the union. Adopt the
	// grown corpus and release whatever backed the old one.
	r.Corpus, r.Mined, r.Segmented = c, mined, segs
	r.inferMu.Lock()
	oldCloser := r.closer
	r.closer = &resultCloser{cf: cf} // adopts the reference taken above
	r.inferer = nil                  // captured the pre-update corpus and counts
	r.inferMu.Unlock()
	if oldCloser != nil {
		oldCloser.Close()
	}

	if iters > 0 {
		return r.ResumeTraining(iters)
	}
	r.Topics = r.Model.Visualize(c, visualizeOptions(r.Options))
	return nil
}
