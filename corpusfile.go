package topmine

import (
	"fmt"
	"sync"

	"topmine/internal/core"
	"topmine/internal/corpus"
	"topmine/internal/corpusfile"
)

// This file is the public face of the persistent corpus store
// (internal/corpusfile): preprocessing runs once, its output — the
// columnar corpus plus the mined phrases and phrase partitions — is
// persisted as a .tpc file, and every later training job starts from
// OpenCorpusFile in milliseconds with the token arena mmap'd straight
// out of the file (so corpora larger than RAM stay trainable; the
// kernel pages token data on demand).
//
//	# preprocess once
//	res, _ := topmine.Preprocess(src, opt)
//	topmine.SaveCorpusFile("corpus.tpc", res)
//
//	# train many, varying K/iterations/seed freely
//	res, _ := topmine.RunCorpusFile("corpus.tpc", opt)
//	defer res.Close()

// Preprocess runs the front half of the pipeline — streaming ingest,
// frequent phrase mining (Algorithm 1) and phrase segmentation
// (Algorithm 2) — without training a topic model. The returned Result
// carries Corpus, Mined and Segmented (Model and Topics are nil) and
// is what SaveCorpusFile persists. opt.Topics is not needed and
// defaults when unset.
func Preprocess(src Source, opt Options) (*Result, error) {
	copt := DefaultCorpusOptions()
	copt.Workers = opt.Workers
	c, err := corpus.BuildFromSource(src, copt)
	if err != nil {
		return nil, err
	}
	return PreprocessCorpus(c, opt)
}

// PreprocessCorpus is Preprocess over a prebuilt corpus.
func PreprocessCorpus(c *Corpus, opt Options) (*Result, error) {
	if opt.Topics <= 0 {
		opt.Topics = 10 // irrelevant to mining/segmentation; satisfy validation
	}
	if err := opt.fill(); err != nil {
		return nil, err
	}
	res := &Result{Corpus: c, Options: opt}
	res.Mined = core.Mine(c, toCoreConfig(opt, nil))
	res.Segmented = core.Segment(c, res.Mined, toCoreConfig(opt, nil))
	return res, nil
}

// SaveCorpusFile persists a Result's preprocessed corpus as a .tpc
// corpus file at path (written atomically). When the Result carries
// mined phrases they are bundled — together with Segmented, when
// present — so a later RunCorpusFile with matching mining parameters
// skips straight to Gibbs training. A Result with only a Corpus saves
// a corpus-only file; training jobs then redo mining and segmentation
// (still skipping ingest).
func SaveCorpusFile(path string, r *Result) error {
	switch {
	case r == nil:
		return fmt.Errorf("topmine: SaveCorpusFile: nil Result")
	case r.Corpus == nil || r.Corpus.Vocab == nil:
		return fmt.Errorf("topmine: SaveCorpusFile: Result has no corpus")
	}
	var art *corpusfile.Artifacts
	if r.Mined != nil {
		art = &corpusfile.Artifacts{
			Params: artifactParams(r.Options),
			Mined:  r.Mined,
			Segs:   r.Segmented,
		}
	}
	return corpusfile.WriteFile(path, r.Corpus, art)
}

// artifactParams extracts the option subset that determines mining and
// segmentation output. Artifacts are reused only under an exact match.
func artifactParams(opt Options) corpusfile.Params {
	return corpusfile.Params{
		MinSupport:      opt.MinSupport,
		RelativeSupport: opt.RelativeSupport,
		MaxPhraseLen:    opt.MaxPhraseLen,
		SigThreshold:    opt.SigThreshold,
	}
}

// CorpusFile is an opened .tpc corpus file. On little-endian unix
// hosts the corpus's token arena is a zero-copy view into the mmap'd
// file (Mapped reports true); elsewhere the file is read into memory
// with identical results.
//
// The mapping is reference-counted: the open handle holds one
// reference and every Result returned by Run holds another, so
// "preprocess once, train many" is safe — closing one Result (or the
// handle) never unmaps the arena out from under the others. The
// region is released when the handle and every Result are closed.
type CorpusFile struct {
	f *corpusfile.File

	mu     sync.Mutex
	refs   int  // open handle (1) + outstanding Results
	closed bool // the handle's own reference already released
}

// OpenCorpusFile opens a corpus file written by SaveCorpusFile.
// Corrupted, truncated or foreign files return errors classifiable
// with the corpusfile named error values — never a panic.
func OpenCorpusFile(path string) (*CorpusFile, error) {
	f, err := corpusfile.Open(path)
	if err != nil {
		return nil, err
	}
	return &CorpusFile{f: f, refs: 1}, nil
}

// retain adds one reference to the mapping, failing once the last
// reference has gone (the region may already be unmapped — handing
// out another view would trade this error for a segfault).
func (cf *CorpusFile) retain() bool {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.refs <= 0 {
		return false
	}
	cf.refs++
	return true
}

// release drops one reference, unmapping when the last one goes.
func (cf *CorpusFile) release() error {
	cf.mu.Lock()
	cf.refs--
	last := cf.refs == 0
	cf.mu.Unlock()
	if last {
		return cf.f.Close()
	}
	return nil
}

// resultCloser is the per-Result handle on the shared mapping.
type resultCloser struct{ cf *CorpusFile }

func (rc *resultCloser) Close() error { return rc.cf.release() }

// Corpus returns the reconstructed corpus (valid until Close).
func (cf *CorpusFile) Corpus() *Corpus { return cf.f.Corpus() }

// Mined returns the bundled phrase-mining result, or nil for a
// corpus-only file.
func (cf *CorpusFile) Mined() *MinedPhrases { return cf.f.Mined() }

// Segmented returns the bundled phrase partitions, or nil.
func (cf *CorpusFile) Segmented() []*SegmentedDoc { return cf.f.Segmented() }

// Mapped reports whether the token arena aliases an mmap'd file.
func (cf *CorpusFile) Mapped() bool { return cf.f.Mapped() }

// Close releases the handle's reference on the mapping. The region is
// actually unmapped once every Result trained from this file is also
// closed; until then their corpora stay valid. Close is idempotent.
func (cf *CorpusFile) Close() error {
	cf.mu.Lock()
	if cf.closed {
		cf.mu.Unlock()
		return nil
	}
	cf.closed = true
	cf.mu.Unlock()
	return cf.release()
}

// CanReuseArtifacts reports whether the file bundles mining artifacts
// produced under exactly the mining/segmentation parameters of opt.
// A Run with those options then skips phrase mining, and also skips
// segmentation when the file stores the phrase partitions (Segmented
// non-nil); a mined-only file still recomputes segmentation.
func (cf *CorpusFile) CanReuseArtifacts(opt Options) bool {
	if cf.f.Mined() == nil {
		return false
	}
	if opt.Topics <= 0 {
		opt.Topics = 10
	}
	if err := opt.fill(); err != nil {
		return false
	}
	return cf.f.Params() == artifactParams(opt)
}

// Run trains a topic model from the opened corpus file: stored mining
// and segmentation artifacts are reused when their parameters match
// opt (recomputed from the corpus otherwise), then PhraseLDA trains
// exactly as RunCorpus would — for a fixed seed the topics are
// byte-identical to a full in-memory run over the same documents.
//
// Run may be called any number of times per open file (varying K,
// seed, iterations); every returned Result holds its own reference on
// the mapping, released by Result.Close. The region is unmapped when
// the handle and all Results are closed.
func (cf *CorpusFile) Run(opt Options) (*Result, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	// Hold a reference for the whole run: training reads the mmap'd
	// arena throughout, and the returned Result keeps aliasing it.
	if !cf.retain() {
		return nil, fmt.Errorf("topmine: CorpusFile.Run: corpus file is closed (mapping released)")
	}
	c := cf.f.Corpus()
	var mined *MinedPhrases
	var segs []*SegmentedDoc
	if cf.CanReuseArtifacts(opt) {
		mined = cf.f.Mined()
		segs = cf.f.Segmented()
	}
	if mined == nil {
		mined = core.Mine(c, toCoreConfig(opt, nil))
	}
	if segs == nil {
		segs = core.Segment(c, mined, toCoreConfig(opt, nil))
	}
	res := trainAndVisualize(c, mined, segs, opt)
	res.closer = &resultCloser{cf: cf} // adopts the reference taken above
	return res, nil
}

// RunCorpusFile executes the back half of the pipeline against a .tpc
// corpus file: open (mmap), reuse the stored preprocessing, train,
// visualize. Call Result.Close when done to release the mapping (the
// transient open handle is already released here).
func RunCorpusFile(path string, opt Options) (*Result, error) {
	cf, err := OpenCorpusFile(path)
	if err != nil {
		return nil, err
	}
	res, err := cf.Run(opt)
	cf.Close() // drop the handle's reference; res (if any) keeps its own
	if err != nil {
		return nil, err
	}
	return res, nil
}
