package topmine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"topmine/internal/textproc"
)

// Snapshot file layout: an 8-byte magic string, a big-endian uint16
// format version, the big-endian uint64 payload length, the IEEE
// CRC-32 of the payload, then the gob-encoded snapshotPayload itself.
// The header makes files self-describing so stale or foreign files
// fail fast with a useful error, and the length + checksum guarantee
// that truncated or bit-flipped files are detected (gob alone carries
// no integrity check).
const snapshotMagic = "TPMSNAP\x00"

// SnapshotVersion is the current snapshot format version. LoadSnapshot
// rejects files written by a different version.
const SnapshotVersion uint16 = 1

// snapshotPayload is the persisted pipeline artifact: everything the
// serving path (Inferencer, topic listing) needs, and nothing tied to
// the training corpus's raw documents. Segmented docs, the corpus
// body, and the model's per-document training state (Docs, Z, Ndk —
// stripped via Model.Frozen) are intentionally omitted: they are
// training-time artifacts reproducible from the source text, and
// keeping them would make snapshot size grow with the corpus instead
// of with the vocabulary.
type snapshotPayload struct {
	Options    Options
	CorpusOpts CorpusOptions
	Vocab      *textproc.Vocab
	Mined      *MinedPhrases
	Model      *Model
	Topics     []TopicSummary
}

// SaveSnapshot persists a trained pipeline Result as one versioned,
// self-describing file: vocabulary, corpus preprocessing options,
// mined phrase statistics, pipeline options, the model's frozen
// serving parameters, and rendered topic summaries. The Result must
// carry a corpus (for its vocabulary), mined phrases, and a model;
// Segmented may be nil. To persist a model's full training state for
// later resumption, use Model.Save instead.
func SaveSnapshot(w io.Writer, r *Result) error {
	switch {
	case r == nil:
		return fmt.Errorf("topmine: SaveSnapshot: nil Result")
	case r.Corpus == nil || r.Corpus.Vocab == nil:
		return fmt.Errorf("topmine: SaveSnapshot: Result has no corpus vocabulary")
	case r.Mined == nil:
		return fmt.Errorf("topmine: SaveSnapshot: Result has no mined phrases")
	case r.Model == nil:
		return fmt.Errorf("topmine: SaveSnapshot: Result has no trained model")
	case r.Model.V != r.Corpus.Vocab.Size():
		return fmt.Errorf("topmine: SaveSnapshot: model vocabulary size %d does not match corpus vocabulary %d",
			r.Model.V, r.Corpus.Vocab.Size())
	}
	payload := snapshotPayload{
		Options:    r.Options,
		CorpusOpts: r.Corpus.BuildOpts,
		Vocab:      r.Corpus.Vocab,
		Mined:      r.Mined,
		Model:      r.Model.Frozen(),
		Topics:     r.Topics,
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return fmt.Errorf("topmine: encoding snapshot: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("topmine: writing snapshot header: %w", err)
	}
	if err := binary.Write(bw, binary.BigEndian, SnapshotVersion); err != nil {
		return fmt.Errorf("topmine: writing snapshot header: %w", err)
	}
	if err := binary.Write(bw, binary.BigEndian, uint64(body.Len())); err != nil {
		return fmt.Errorf("topmine: writing snapshot header: %w", err)
	}
	if err := binary.Write(bw, binary.BigEndian, crc32.ChecksumIEEE(body.Bytes())); err != nil {
		return fmt.Errorf("topmine: writing snapshot header: %w", err)
	}
	if _, err := bw.Write(body.Bytes()); err != nil {
		return fmt.Errorf("topmine: writing snapshot payload: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("topmine: writing snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads a file written by SaveSnapshot and reconstructs a
// Result ready for inference and serving. The returned Result's Corpus
// carries the vocabulary but no documents, Segmented is nil, and the
// Model holds only frozen serving parameters (no per-document training
// state): all are training-time artifacts the snapshot deliberately
// omits. Corrupted, truncated, or foreign files return errors —
// LoadSnapshot never panics on bad input.
func LoadSnapshot(r io.Reader) (*Result, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot header: %w", err)
	}
	if !bytes.Equal(magic, []byte(snapshotMagic)) {
		return nil, fmt.Errorf("topmine: not a topmine snapshot (bad magic %q)", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot header: %w", err)
	}
	if version != SnapshotVersion {
		return nil, fmt.Errorf("topmine: unsupported snapshot version %d (this build reads version %d)",
			version, SnapshotVersion)
	}
	var payloadLen uint64
	if err := binary.Read(br, binary.BigEndian, &payloadLen); err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot header: %w", err)
	}
	var wantCRC uint32
	if err := binary.Read(br, binary.BigEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot header: %w", err)
	}
	// Copy through a LimitReader rather than pre-allocating payloadLen,
	// so a corrupt length field cannot force a huge allocation.
	var body bytes.Buffer
	n, err := io.Copy(&body, io.LimitReader(br, int64(payloadLen)))
	if err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot payload: %w", err)
	}
	if uint64(n) != payloadLen {
		return nil, fmt.Errorf("topmine: snapshot truncated: payload is %d of %d bytes", n, payloadLen)
	}
	if got := crc32.ChecksumIEEE(body.Bytes()); got != wantCRC {
		return nil, fmt.Errorf("topmine: snapshot corrupted: payload CRC %08x, header says %08x", got, wantCRC)
	}
	var payload snapshotPayload
	if err := gob.NewDecoder(&body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("topmine: decoding snapshot: %w", err)
	}
	switch {
	case payload.Vocab == nil:
		return nil, fmt.Errorf("topmine: snapshot missing vocabulary")
	case payload.Mined == nil || payload.Mined.Counts == nil:
		return nil, fmt.Errorf("topmine: snapshot missing mined phrases")
	case payload.Model == nil:
		return nil, fmt.Errorf("topmine: snapshot missing model")
	case payload.Model.K <= 0:
		return nil, fmt.Errorf("topmine: snapshot model has %d topics", payload.Model.K)
	case payload.Model.V != payload.Vocab.Size():
		return nil, fmt.Errorf("topmine: snapshot model vocabulary size %d does not match stored vocabulary %d",
			payload.Model.V, payload.Vocab.Size())
	}
	// Shape-check the frozen parameters so a malformed (but
	// CRC-valid) file fails here with an error instead of panicking
	// with an index-out-of-range inside a later inference call.
	m := payload.Model
	if len(m.Alpha) != m.K || len(m.Nk) != m.K || len(m.Nwk) != m.V {
		return nil, fmt.Errorf("topmine: snapshot model shapes inconsistent: K=%d V=%d but len(Alpha)=%d len(Nk)=%d len(Nwk)=%d",
			m.K, m.V, len(m.Alpha), len(m.Nk), len(m.Nwk))
	}
	for w := range m.Nwk {
		if len(m.Nwk[w]) != m.K {
			return nil, fmt.Errorf("topmine: snapshot model shapes inconsistent: Nwk[%d] has %d topics, want %d",
				w, len(m.Nwk[w]), m.K)
		}
	}
	payload.Model.ResetSampler(payload.Options.Seed)
	return &Result{
		Corpus: &Corpus{
			Vocab:       payload.Vocab,
			TotalTokens: payload.Mined.TotalTokens,
			BuildOpts:   payload.CorpusOpts,
		},
		Mined:   payload.Mined,
		Model:   payload.Model,
		Topics:  payload.Topics,
		Options: payload.Options,
	}, nil
}

// SaveSnapshotFile writes a snapshot to path atomically: the bytes go
// to a temporary file in the same directory which is renamed into
// place only after a successful write, so a failed or interrupted save
// never destroys an existing snapshot at path. The file's permissions
// match what a plain os.Create(path) would produce — an existing
// file's mode is preserved, and a fresh file gets 0644 filtered by the
// process umask.
func SaveSnapshotFile(path string, r *Result) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must stage the temp file in the working
		// directory, not os.TempDir(): a cross-filesystem os.Rename
		// fails with EXDEV and would break the atomic replace.
		dir = "."
	}
	// The temp file is created with mode 0666 minus the umask — what a
	// plain os.Create(path) would give a fresh snapshot — so nothing is
	// ever visible at path until the finished bytes rename into place.
	f, tmp, err := createExclusiveTemp(dir, base)
	if err != nil {
		return fmt.Errorf("topmine: %w", err)
	}
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if fi, err := os.Stat(path); err == nil {
		// Replacing an existing snapshot: preserve its permissions.
		if err := f.Chmod(fi.Mode().Perm()); err != nil {
			cleanup()
			return fmt.Errorf("topmine: %w", err)
		}
	}
	if err := SaveSnapshot(f, r); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("topmine: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("topmine: replacing snapshot: %w", err)
	}
	return nil
}

// createExclusiveTemp creates a uniquely named file in dir with mode
// 0666 filtered by the process umask (os.CreateTemp always uses 0600,
// which is wrong for a file that will be renamed into a shared
// artifact path).
func createExclusiveTemp(dir, base string) (*os.File, string, error) {
	for i := 0; i < 10000; i++ {
		name := filepath.Join(dir, fmt.Sprintf("%s.tmp%d-%d", base, os.Getpid(), i))
		f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
		if err == nil {
			return f, name, nil
		}
		if !os.IsExist(err) {
			return nil, "", err
		}
	}
	return nil, "", fmt.Errorf("could not create a temporary snapshot file in %s", dir)
}

// LoadSnapshotFile reads a snapshot from path.
func LoadSnapshotFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topmine: %w", err)
	}
	defer f.Close()
	return LoadSnapshot(f)
}
