package topmine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"topmine/internal/atomicfile"
	"topmine/internal/textproc"
)

// Snapshot file layout: an 8-byte magic string, a big-endian uint16
// format version, the big-endian uint64 payload length, the IEEE
// CRC-32 of the payload, then the gob-encoded snapshotPayload itself.
// The header makes files self-describing so stale or foreign files
// fail fast with a useful error, and the length + checksum guarantee
// that truncated or bit-flipped files are detected (gob alone carries
// no integrity check).
const snapshotMagic = "TPMSNAP\x00"

// SnapshotVersion is the current snapshot format version. LoadSnapshot
// rejects files written by a different version.
const SnapshotVersion uint16 = 1

// snapshotPayload is the persisted pipeline artifact: everything the
// serving path (Inferencer, topic listing) needs, and nothing tied to
// the training corpus's raw documents. Segmented docs, the corpus
// body, and the model's per-document training state (Docs, Z, Ndk —
// stripped via Model.Frozen) are intentionally omitted: they are
// training-time artifacts reproducible from the source text, and
// keeping them would make snapshot size grow with the corpus instead
// of with the vocabulary.
type snapshotPayload struct {
	Options    Options
	CorpusOpts CorpusOptions
	Vocab      *textproc.Vocab
	Mined      *MinedPhrases
	Model      *Model
	Topics     []TopicSummary
}

// SaveSnapshot persists a trained pipeline Result as one versioned,
// self-describing file: vocabulary, corpus preprocessing options,
// mined phrase statistics, pipeline options, the model's frozen
// serving parameters, and rendered topic summaries. The Result must
// carry a corpus (for its vocabulary), mined phrases, and a model;
// Segmented may be nil. To persist the model's full training state so
// Gibbs sweeps can continue later, use SaveTrainingSnapshot instead.
func SaveSnapshot(w io.Writer, r *Result) error {
	return saveSnapshot(w, r, false)
}

// SaveTrainingSnapshot is SaveSnapshot, but the model keeps its
// per-document training state (documents, assignments, document-topic
// counts) instead of being frozen to serving parameters. A snapshot
// saved this way loads into a Result whose Resumable method reports
// true, and ResumeTraining (or `topmine -load snap.tpm -iters N`)
// continues collapsed Gibbs sweeps exactly where training stopped.
// The file format is unchanged — training snapshots load in builds
// that predate resumption (they simply served from the embedded
// counts) — but size grows with the corpus, not just the vocabulary.
func SaveTrainingSnapshot(w io.Writer, r *Result) error {
	return saveSnapshot(w, r, true)
}

func saveSnapshot(w io.Writer, r *Result, keepTraining bool) error {
	switch {
	case r == nil:
		return fmt.Errorf("topmine: SaveSnapshot: nil Result")
	case r.Corpus == nil || r.Corpus.Vocab == nil:
		return fmt.Errorf("topmine: SaveSnapshot: Result has no corpus vocabulary")
	case r.Mined == nil:
		return fmt.Errorf("topmine: SaveSnapshot: Result has no mined phrases")
	case r.Model == nil:
		return fmt.Errorf("topmine: SaveSnapshot: Result has no trained model")
	case r.Model.V != r.Corpus.Vocab.Size():
		return fmt.Errorf("topmine: SaveSnapshot: model vocabulary size %d does not match corpus vocabulary %d",
			r.Model.V, r.Corpus.Vocab.Size())
	}
	model := r.Model.Frozen()
	if keepTraining {
		if len(r.Model.Docs) == 0 {
			return fmt.Errorf("topmine: SaveTrainingSnapshot: model carries no training state (was it loaded from a frozen snapshot?)")
		}
		model = r.Model
	}
	payload := snapshotPayload{
		Options:    r.Options,
		CorpusOpts: r.Corpus.BuildOpts,
		Vocab:      r.Corpus.Vocab,
		Mined:      r.Mined,
		Model:      model,
		Topics:     r.Topics,
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return fmt.Errorf("topmine: encoding snapshot: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("topmine: writing snapshot header: %w", err)
	}
	if err := binary.Write(bw, binary.BigEndian, SnapshotVersion); err != nil {
		return fmt.Errorf("topmine: writing snapshot header: %w", err)
	}
	if err := binary.Write(bw, binary.BigEndian, uint64(body.Len())); err != nil {
		return fmt.Errorf("topmine: writing snapshot header: %w", err)
	}
	if err := binary.Write(bw, binary.BigEndian, crc32.ChecksumIEEE(body.Bytes())); err != nil {
		return fmt.Errorf("topmine: writing snapshot header: %w", err)
	}
	if _, err := bw.Write(body.Bytes()); err != nil {
		return fmt.Errorf("topmine: writing snapshot payload: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("topmine: writing snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads a file written by SaveSnapshot and reconstructs a
// Result ready for inference and serving. The returned Result's Corpus
// carries the vocabulary but no documents, Segmented is nil, and the
// Model holds only frozen serving parameters (no per-document training
// state): all are training-time artifacts the snapshot deliberately
// omits. Corrupted, truncated, or foreign files return errors —
// LoadSnapshot never panics on bad input.
func LoadSnapshot(r io.Reader) (*Result, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot header: %w", err)
	}
	if !bytes.Equal(magic, []byte(snapshotMagic)) {
		return nil, fmt.Errorf("topmine: not a topmine snapshot (bad magic %q)", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot header: %w", err)
	}
	if version != SnapshotVersion {
		return nil, fmt.Errorf("topmine: unsupported snapshot version %d (this build reads version %d)",
			version, SnapshotVersion)
	}
	var payloadLen uint64
	if err := binary.Read(br, binary.BigEndian, &payloadLen); err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot header: %w", err)
	}
	var wantCRC uint32
	if err := binary.Read(br, binary.BigEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot header: %w", err)
	}
	// Copy through a LimitReader rather than pre-allocating payloadLen,
	// so a corrupt length field cannot force a huge allocation.
	var body bytes.Buffer
	n, err := io.Copy(&body, io.LimitReader(br, int64(payloadLen)))
	if err != nil {
		return nil, fmt.Errorf("topmine: reading snapshot payload: %w", err)
	}
	if uint64(n) != payloadLen {
		return nil, fmt.Errorf("topmine: snapshot truncated: payload is %d of %d bytes", n, payloadLen)
	}
	if got := crc32.ChecksumIEEE(body.Bytes()); got != wantCRC {
		return nil, fmt.Errorf("topmine: snapshot corrupted: payload CRC %08x, header says %08x", got, wantCRC)
	}
	var payload snapshotPayload
	if err := gob.NewDecoder(&body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("topmine: decoding snapshot: %w", err)
	}
	switch {
	case payload.Vocab == nil:
		return nil, fmt.Errorf("topmine: snapshot missing vocabulary")
	case payload.Mined == nil || payload.Mined.Counts == nil:
		return nil, fmt.Errorf("topmine: snapshot missing mined phrases")
	case payload.Model == nil:
		return nil, fmt.Errorf("topmine: snapshot missing model")
	case payload.Model.K <= 0:
		return nil, fmt.Errorf("topmine: snapshot model has %d topics", payload.Model.K)
	case payload.Model.V != payload.Vocab.Size():
		return nil, fmt.Errorf("topmine: snapshot model vocabulary size %d does not match stored vocabulary %d",
			payload.Model.V, payload.Vocab.Size())
	}
	// Validate the model — shapes always, plus a full recount against
	// the assignments when the snapshot carries training state — so a
	// malformed (but CRC-valid) file fails here with an error instead
	// of panicking inside a later inference call or resumed sweep.
	if err := payload.Model.Validate(); err != nil {
		return nil, fmt.Errorf("topmine: snapshot model invalid: %w", err)
	}
	payload.Model.ResetSampler(payload.Options.Seed)
	return &Result{
		Corpus: &Corpus{
			Vocab:       payload.Vocab,
			TotalTokens: payload.Mined.TotalTokens,
			BuildOpts:   payload.CorpusOpts,
		},
		Mined:   payload.Mined,
		Model:   payload.Model,
		Topics:  payload.Topics,
		Options: payload.Options,
	}, nil
}

// SaveSnapshotFile writes a snapshot to path atomically: the bytes go
// to a temporary file in the same directory which is renamed into
// place only after a successful write, so a failed or interrupted save
// never destroys an existing snapshot at path. The file's permissions
// match what a plain os.Create(path) would produce — an existing
// file's mode is preserved, and a fresh file gets 0644 filtered by the
// process umask.
func SaveSnapshotFile(path string, r *Result) error {
	return saveSnapshotFile(path, r, SaveSnapshot)
}

func saveSnapshotFile(path string, r *Result, save func(io.Writer, *Result) error) error {
	err := atomicfile.Write(path, func(w io.Writer) error {
		return save(w, r)
	})
	// Encoding errors (from save) already carry the topmine prefix;
	// the atomic-write machinery's own failures get it added here.
	var ae *atomicfile.Error
	if errors.As(err, &ae) {
		return fmt.Errorf("topmine: %w", err)
	}
	return err
}

// SaveTrainingSnapshotFile writes a training snapshot (see
// SaveTrainingSnapshot) to path with the same atomic-replace semantics
// as SaveSnapshotFile.
func SaveTrainingSnapshotFile(path string, r *Result) error {
	return saveSnapshotFile(path, r, SaveTrainingSnapshot)
}

// LoadSnapshotFile reads a snapshot from path.
func LoadSnapshotFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topmine: %w", err)
	}
	defer f.Close()
	return LoadSnapshot(f)
}
